#include "check/audit_daemon.hh"

#include "sim/log.hh"

namespace hos::check {

AuditDaemon::AuditDaemon(vmm::Vmm &vmm, sim::EventQueue &queue,
                         sim::Duration interval,
                         sim::StatRegistry *registry)
    : vmm_(vmm), queue_(queue), interval_(interval), registry_(registry)
{
    hos_assert(interval_ > 0, "audit interval must be non-zero");
}

void
AuditDaemon::start()
{
    if (started_)
        return;
    started_ = true;
    queue_.schedulePeriodic(interval_, [this](sim::Duration period) {
        AuditResult r = runOnce();
        if (enforce_)
            enforce(r);
        return period;
    });
}

AuditResult
AuditDaemon::runOnce()
{
    AuditResult r = auditVmm(vmm_, registry_);
    ++audits_run_;
    checks_run_ += r.checks;
    failures_found_ += r.failures.size();
    return r;
}

} // namespace hos::check
