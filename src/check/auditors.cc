#include "check/auditors.hh"

#include <algorithm>
#include <array>
#include <map>
#include <string>
#include <unordered_set>
#include <utility>

#include "check/page_state.hh"
#include "guestos/page_types.hh"
#include "sim/log.hh"
#include "sim/time.hh"

namespace hos::check {

using guestos::Gpfn;
using guestos::invalidGpfn;
using guestos::LruState;
using guestos::PageRef;
using guestos::PageArray;
using guestos::PageList;
using guestos::PageType;

void
AuditResult::merge(AuditResult &&other)
{
    checks += other.checks;
    for (auto &f : other.failures)
        failures.push_back(std::move(f));
}

void
AuditResult::addFailure(CheckKind kind, std::uint64_t subject,
                        std::string where, std::string what)
{
    CheckFailure f;
    f.kind = kind;
    f.tick = sim::currentTick();
    f.subject = subject;
    f.where = std::move(where);
    f.what = std::move(what);
    failures.push_back(std::move(f));
}

AuditResult
auditList(const PageArray &pages, const PageList &list,
          const std::string &where)
{
    AuditResult r;

    Gpfn prev = invalidGpfn;
    Gpfn cur = list.head();
    std::uint64_t walked = 0;
    while (cur != invalidGpfn && walked <= list.size()) {
        if (cur >= pages.size()) {
            r.addFailure(CheckKind::ListIntegrity, cur, where,
                         "list link points outside the page array");
            return r;
        }
        const PageRef p = pages.page(cur);
        r.checks += 2;
        if (p.list_id() != list.id()) {
            r.addFailure(CheckKind::ListIntegrity, cur, where,
                         "member carries list id " +
                             std::to_string(p.list_id()) + " (tag " +
                             std::to_string(p.on_list()) +
                             "), expected id " +
                             std::to_string(list.id()) + " (tag " +
                             std::to_string(list.tag()) + ")");
            // The links are untrustworthy past an id mismatch.
            return r;
        }
        if (p.link_prev() != prev) {
            r.addFailure(CheckKind::ListIntegrity, cur, where,
                         "broken back-link (prev points elsewhere)");
            return r;
        }
        prev = cur;
        cur = p.link_next();
        ++walked;
    }

    r.checks += 3;
    if (cur != invalidGpfn) {
        r.addFailure(CheckKind::ListIntegrity, cur, where,
                     "cycle or overrun: walked past the stored count (" +
                         std::to_string(list.size()) + ")");
        return r;
    }
    if (walked != list.size()) {
        r.addFailure(CheckKind::ListIntegrity, invalidSubject, where,
                     "stored count " + std::to_string(list.size()) +
                         " != walked length " + std::to_string(walked));
    }
    if (prev != list.tail()) {
        r.addFailure(CheckKind::ListIntegrity,
                     prev == invalidGpfn ? invalidSubject : prev, where,
                     "tail index does not match the last walked member");
    }
    return r;
}

namespace {

/** Audit one zone's buddy allocator: lists, block state, accounting. */
AuditResult
auditBuddy(const PageArray &pages, const guestos::BuddyAllocator &buddy,
           const std::string &where)
{
    AuditResult r;
    std::uint64_t listed_free = 0;

    for (unsigned o = 0; o < guestos::BuddyAllocator::maxOrder; ++o) {
        const PageList &fl = buddy.freeList(o);
        const std::string lw = where + ".order" + std::to_string(o);
        r.merge(auditList(pages, fl, lw));

        const std::uint64_t block = std::uint64_t(1) << o;
        for (Gpfn head = fl.head();
             head != invalidGpfn && head < pages.size();
             head = pages.page(head).link_next()) {
            const PageRef hp = pages.page(head);
            if (hp.list_id() != fl.id())
                break; // auditList already reported; links unsafe
            r.checks += 3;
            if (!hp.in_buddy() || hp.buddy_order() != o) {
                r.addFailure(CheckKind::ZoneAccounting, head, lw,
                             "free-list head lost its in_buddy/order "
                             "marking");
            }
            if ((head - buddy.base()) % block != 0) {
                r.addFailure(CheckKind::ZoneAccounting, head, lw,
                             "free block head misaligned for its order");
            }
            const Gpfn end = std::min<Gpfn>(head + block, pages.size());
            for (Gpfn pfn = head; pfn < end; ++pfn) {
                const PageRef p = pages.page(pfn);
                r.checks += 3;
                if (p.allocated()) {
                    r.addFailure(
                        CheckKind::ZoneAccounting, pfn, lw,
                        "allocated page inside a buddy free block");
                }
                if (p.type() != PageType::Free) {
                    r.addFailure(CheckKind::ZoneAccounting, pfn, lw,
                                 "free-block page still typed " +
                                     std::string(pageTypeName(p.type())));
                }
                if (pfn != head && (p.in_buddy() ||
                                    p.list_id() != guestos::noListId)) {
                    r.addFailure(CheckKind::ZoneAccounting, pfn, lw,
                                 "interior free-block page marked as a "
                                 "block head or linked on a list");
                }
            }
            listed_free += block;
        }
    }

    r.checks += 1;
    if (listed_free != buddy.freePages()) {
        r.addFailure(CheckKind::ZoneAccounting, invalidSubject, where,
                     "free_pages counter " +
                         std::to_string(buddy.freePages()) +
                         " != pages on free lists " +
                         std::to_string(listed_free));
    }
    return r;
}

/** Audit one zone's split LRU: list health plus per-member state. */
AuditResult
auditZoneLru(const PageArray &pages, const guestos::SplitLru &lru,
             const std::string &where)
{
    AuditResult r;

    const std::array<std::pair<const PageList *, LruState>, 2> lists = {
        std::make_pair(&lru.activeList(), LruState::Active),
        std::make_pair(&lru.inactiveList(), LruState::Inactive),
    };
    for (const auto &[list, state] : lists) {
        const std::string lw =
            where + (state == LruState::Active ? ".active" : ".inactive");
        r.merge(auditList(pages, *list, lw));
        for (Gpfn pfn = list->head();
             pfn != invalidGpfn && pfn < pages.size();
             pfn = pages.page(pfn).link_next()) {
            const PageRef p = pages.page(pfn);
            if (p.list_id() != list->id())
                break; // links unsafe past a reported id mismatch
            r.checks += 3;
            if (p.lru() != state) {
                r.addFailure(CheckKind::Lru, pfn, lw,
                             "page's lru state disagrees with the list "
                             "it sits on");
            }
            if (!p.allocated()) {
                r.addFailure(CheckKind::Lru, pfn, lw,
                             "unallocated page resident on an LRU");
            }
            if (!lruManagedType(p.type())) {
                r.addFailure(CheckKind::PageState, pfn, lw,
                             "LRU-resident page retyped to non-LRU type " +
                                 std::string(pageTypeName(p.type())));
            }
        }
    }
    return r;
}

} // namespace

AuditResult
auditKernel(guestos::GuestKernel &kernel)
{
    AuditResult r;
    const PageArray &pages = kernel.pages();
    guestos::PerCpuPageLists &percpu = kernel.percpu();

    for (unsigned n = 0; n < kernel.numNodes(); ++n) {
        guestos::NumaNode &node = kernel.node(n);
        const std::string nw = kernel.name() + ".node" + std::to_string(n);

        std::uint64_t lru_total = 0;
        for (std::size_t z = 0; z < node.numZones(); ++z) {
            const guestos::Zone &zone = node.zone(z);
            const std::string zw =
                nw + "." + guestos::zoneKindName(zone.kind());
            r.merge(auditBuddy(pages, zone.buddy(), zw + ".buddy"));
            r.merge(auditZoneLru(pages, zone.lru(), zw + ".lru"));
            lru_total += zone.lru().totalCount();
        }

        // Per-CPU caches holding this node's pages.
        for (unsigned cpu = 0; cpu < percpu.cpus(); ++cpu) {
            const PageList &cache = percpu.cacheList(cpu, n);
            const std::string cw = nw + ".percpu" + std::to_string(cpu);
            r.merge(auditList(pages, cache, cw));
            for (Gpfn pfn = cache.head();
                 pfn != invalidGpfn && pfn < pages.size();
                 pfn = pages.page(pfn).link_next()) {
                const PageRef p = pages.page(pfn);
                if (p.list_id() != cache.id())
                    break;
                r.checks += 2;
                if (p.allocated() || p.type() != PageType::Free ||
                    p.lru() != LruState::None) {
                    r.addFailure(CheckKind::PageState, pfn, cw,
                                 "per-CPU cached page is not in the "
                                 "free state");
                }
                if (p.numa_node() != n) {
                    r.addFailure(CheckKind::ZoneAccounting, pfn, cw,
                                 "page cached under the wrong node");
                }
            }
        }

        // Span walk: allocated census + per-page placement rules.
        std::uint64_t allocated = 0;
        std::uint64_t on_lru = 0;
        for (Gpfn pfn = node.base(); pfn < node.base() + node.spanPages();
             ++pfn) {
            const PageRef p = pages.page(pfn);
            r.checks += 2;
            if (p.allocated())
                ++allocated;
            if (p.lru() != LruState::None)
                ++on_lru;
            // NetBuf is exempt: skbuffs are slab-backed and pinned
            // by design; the cache types must stay evictable here.
            if (p.allocated() && (p.type() == PageType::PageCache ||
                                  p.type() == PageType::BufferCache) &&
                p.unevictable() && p.mem_type() == mem::MemType::FastMem) {
                r.addFailure(CheckKind::Placement, pfn, nw,
                             "I/O cache page pinned in FastMem");
            }
            if (p.lru() != LruState::None && !p.allocated()) {
                r.addFailure(CheckKind::PageState, pfn, nw,
                             "unallocated page claims LRU residence");
            }
        }

        r.checks += 2;
        if (on_lru != lru_total) {
            r.addFailure(CheckKind::Lru, invalidSubject, nw,
                         "pages marked LRU-resident (" +
                             std::to_string(on_lru) +
                             ") != zone LRU membership (" +
                             std::to_string(lru_total) + ")");
        }

        // The node-level conservation identity. Every managed page is
        // in exactly one of: a buddy free list, a per-CPU cache, or
        // allocated to a user.
        const std::uint64_t cached = percpu.cachedOnNode(n);
        const std::uint64_t expected =
            node.freePages() + cached + allocated;
        if (node.managedPages() != expected) {
            r.addFailure(
                CheckKind::ZoneAccounting, invalidSubject, nw,
                "managed " + std::to_string(node.managedPages()) +
                    " != free " + std::to_string(node.freePages()) +
                    " + cached " + std::to_string(cached) +
                    " + allocated " + std::to_string(allocated));
        }
    }

    // Allocated-range hint: the popcount aggregation over the
    // allocated bitmap must equal a per-bit census (the sweep skip
    // relies on zero meaning "whole chunk free"; this catches word-
    // range bugs in allocatedInChunk and stray bits past size()).
    {
        const std::string cw = kernel.name() + ".chunk_hint";
        std::vector<std::uint32_t> census(pages.numChunks(), 0);
        for (Gpfn pfn = 0; pfn < pages.size(); ++pfn) {
            if (pages.page(pfn).allocated())
                ++census[pfn >> PageArray::chunkShift];
        }
        for (std::uint64_t c = 0; c < pages.numChunks(); ++c) {
            ++r.checks;
            if (census[c] != pages.allocatedInChunk(c)) {
                r.addFailure(
                    CheckKind::ZoneAccounting, c, cw,
                    "chunk allocated counter " +
                        std::to_string(pages.allocatedInChunk(c)) +
                        " != descriptor census " +
                        std::to_string(census[c]));
            }
        }
    }

    r.merge(auditResidency(kernel));
    return r;
}

AuditResult
auditResidency(guestos::GuestKernel &kernel)
{
    AuditResult r;
    guestos::ResidencyIndex &res = kernel.residency();
    const PageArray &pages = kernel.pages();

    for (guestos::RegionHandle h = 0; h < res.regionTableSize(); ++h) {
        if (!res.regionLive(h))
            continue;
        const guestos::ProcessId pid = res.regionPid(h);
        const std::uint64_t vma_start = res.regionVmaStart(h);
        const std::string rw = kernel.name() + ".residency.region" +
                               std::to_string(h);
        if (!kernel.hasProcess(pid)) {
            r.addFailure(CheckKind::Residency, invalidSubject, rw,
                         "registered region owned by a dead process");
            continue;
        }
        guestos::AddressSpace &as = kernel.process(pid);

        std::uint64_t fast_count = 0;
        const std::uint64_t count = res.pageCount(h);
        for (std::uint64_t idx = 0; idx < count; ++idx) {
            const Gpfn bound = res.binding(h, idx);
            const std::uint64_t va = vma_start + idx * mem::pageSize;

            // Re-derive the effective binding exactly as the legacy
            // regionPage refresh would: trust the bound gpfn while
            // the descriptor still maps this (process, va); otherwise
            // ask the page table; keep the stale gpfn when the va is
            // unmapped (balloon swap-out).
            Gpfn effective = bound;
            const PageRef p = pages.page(bound);
            if (!p.allocated() || p.vaddr() != va ||
                p.owner_process() != pid) {
                if (auto cur = as.translate(va))
                    effective = *cur;
            }

            r.checks += 2;
            if (effective != bound) {
                r.addFailure(CheckKind::Residency, bound, rw,
                             "binding for index " + std::to_string(idx) +
                                 " lags the page table (maps gpfn " +
                                 std::to_string(effective) + ")");
            }
            const bool fast = kernel.backingOf(effective) ==
                              mem::MemType::FastMem;
            if (fast != res.fastBit(h, idx)) {
                r.addFailure(CheckKind::Residency, bound, rw,
                             "fast bit for index " + std::to_string(idx) +
                                 " disagrees with the placement oracle");
            }
            if (fast)
                ++fast_count;
        }

        ++r.checks;
        if (fast_count != res.fastTotal(h)) {
            r.addFailure(CheckKind::Residency, invalidSubject, rw,
                         "fast_total " + std::to_string(res.fastTotal(h)) +
                             " != recounted " +
                             std::to_string(fast_count));
        }
    }
    return r;
}

AuditResult
auditStats(guestos::GuestKernel &kernel, sim::StatRegistry &registry)
{
    AuditResult r;
    const std::string &gname = kernel.stats().name();

    sim::StatGroup *group = registry.find(gname);
    r.checks += 1;
    if (group == nullptr) {
        r.addFailure(CheckKind::StatDrift, invalidSubject, gname,
                     "kernel stat group is not registered");
        return r;
    }

    registry.refreshAll();

    // Recompute the node gauges exactly as syncStats() publishes them
    // (last node of a type wins when types repeat).
    std::map<std::string, std::int64_t> expected;
    for (unsigned n = 0; n < kernel.numNodes(); ++n) {
        guestos::NumaNode &node = kernel.node(n);
        const std::string prefix =
            std::string("node.") + mem::memTypeName(node.memType());
        expected[prefix + ".free_pages"] =
            static_cast<std::int64_t>(node.freePages());
        expected[prefix + ".managed_pages"] =
            static_cast<std::int64_t>(node.managedPages());
    }

    for (const auto &[stat, want] : expected) {
        r.checks += 1;
        if (!group->hasGauge(stat)) {
            r.addFailure(CheckKind::StatDrift, invalidSubject,
                         gname + "." + stat,
                         "gauge missing after a registry refresh "
                         "(dead refresh hook?)");
            continue;
        }
        const std::int64_t got = group->findGauge(stat).value();
        if (got != want) {
            r.addFailure(CheckKind::StatDrift, invalidSubject,
                         gname + "." + stat,
                         "gauge reads " + std::to_string(got) +
                             " but live state says " +
                             std::to_string(want));
        }
    }
    return r;
}

AuditResult
auditP2m(vmm::VmContext &vm, mem::MachineMemory &machine)
{
    AuditResult r;
    guestos::GuestKernel &kernel = vm.kernel();
    const vmm::P2m &p2m = vm.p2m();
    const PageArray &pages = kernel.pages();
    const std::string where = kernel.name() + ".p2m";

    r.checks += 1;
    if (p2m.size() != pages.size()) {
        r.addFailure(CheckKind::P2m, invalidSubject, where,
                     "P2M covers " + std::to_string(p2m.size()) +
                         " gpfns but the guest has " +
                         std::to_string(pages.size()));
    }

    std::unordered_set<mem::Mfn> seen;
    std::array<std::uint64_t, mem::numMemTypes> tally{};
    std::uint64_t populated = 0;
    const Gpfn limit = std::min<Gpfn>(p2m.size(), pages.size());

    for (Gpfn gpfn = 0; gpfn < limit; ++gpfn) {
        const bool pop = p2m.populated(gpfn);
        r.checks += 2;
        if (pop != pages.page(gpfn).populated()) {
            r.addFailure(CheckKind::P2m, gpfn, where,
                         pop ? "P2M maps a gpfn the guest believes "
                               "unpopulated"
                             : "guest believes the gpfn populated but "
                               "the P2M has no mapping");
        }
        if (!pop) {
            if (vm.fastBacked().count(gpfn) != 0) {
                r.addFailure(CheckKind::P2m, gpfn, where,
                             "unpopulated gpfn listed as FastMem-backed");
            }
            continue;
        }
        ++populated;

        const mem::Mfn mfn = p2m.mfnOf(gpfn);
        r.checks += 4;
        if (!seen.insert(mfn).second) {
            r.addFailure(CheckKind::P2m, gpfn, where,
                         "machine frame double-mapped (mfn " +
                             std::to_string(mfn) + ")");
            continue;
        }

        mem::MachineNode *mnode = nullptr;
        for (unsigned i = 0; i < machine.numNodes(); ++i) {
            if (machine.node(i).containsMfn(mfn)) {
                mnode = &machine.node(i);
                break;
            }
        }
        if (mnode == nullptr) {
            r.addFailure(CheckKind::P2m, gpfn, where,
                         "mapped mfn " + std::to_string(mfn) +
                             " belongs to no machine node");
            continue;
        }
        if (mnode->frameOwner(mfn) != vm.owner()) {
            r.addFailure(CheckKind::P2m, gpfn, where,
                         "backing frame owned by " +
                             std::to_string(mnode->frameOwner(mfn)) +
                             ", not this VM");
        }

        const mem::MemType tier = p2m.tierOf(gpfn);
        if (tier != mnode->type()) {
            r.addFailure(CheckKind::P2m, gpfn, where,
                         "P2M tier cache says " +
                             std::string(mem::memTypeName(tier)) +
                             " but the frame lives in " +
                             mem::memTypeName(mnode->type()));
        }
        tally[static_cast<std::size_t>(mnode->type())] += 1;

        const bool fast = vm.fastBacked().count(gpfn) != 0;
        if (fast != (mnode->type() == mem::MemType::FastMem)) {
            r.addFailure(CheckKind::P2m, gpfn, where,
                         "fast-backed set disagrees with the backing "
                         "tier");
        }

        // For heterogeneity-aware VMs the guest node type must match
        // the real backing tier; hidden VMs see a nominal type.
        if (!vm.config().hide_heterogeneity) {
            r.checks += 1;
            guestos::NumaNode *gnode = nullptr;
            for (unsigned i = 0; i < kernel.numNodes(); ++i) {
                if (kernel.node(i).containsGpfn(gpfn)) {
                    gnode = &kernel.node(i);
                    break;
                }
            }
            if (gnode == nullptr) {
                r.addFailure(CheckKind::P2m, gpfn, where,
                             "populated gpfn outside every guest node");
            } else if (gnode->memType() != mnode->type()) {
                r.addFailure(CheckKind::P2m, gpfn, where,
                             "guest node advertises " +
                                 std::string(mem::memTypeName(
                                     gnode->memType())) +
                                 " but the frame lives in " +
                                 mem::memTypeName(mnode->type()));
            }
        }
    }

    for (std::size_t t = 0; t < mem::numMemTypes; ++t) {
        const auto type = static_cast<mem::MemType>(t);
        r.checks += 1;
        if (p2m.populatedOfTier(type) != tally[t]) {
            r.addFailure(CheckKind::P2m, invalidSubject, where,
                         std::string("per-tier tally for ") +
                             mem::memTypeName(type) + " reads " +
                             std::to_string(p2m.populatedOfTier(type)) +
                             " but the walk counted " +
                             std::to_string(tally[t]));
        }
    }
    r.checks += 2;
    if (p2m.populatedCount() != populated) {
        r.addFailure(CheckKind::P2m, invalidSubject, where,
                     "populated_count " +
                         std::to_string(p2m.populatedCount()) +
                         " != mapped gpfns " + std::to_string(populated));
    }

    // Leak check: every machine frame this VM owns must be reachable
    // through its P2M.
    std::uint64_t owned = 0;
    for (unsigned i = 0; i < machine.numNodes(); ++i)
        owned += machine.node(i).framesOwnedBy(vm.owner());
    if (owned != populated) {
        r.addFailure(CheckKind::P2m, invalidSubject, where,
                     "VM owns " + std::to_string(owned) +
                         " machine frames but maps " +
                         std::to_string(populated) +
                         " (leaked or stolen frames)");
    }
    return r;
}

AuditResult
auditVmm(vmm::Vmm &vmm, sim::StatRegistry *registry)
{
    AuditResult r;
    for (vmm::VmId id = 0; id < vmm.numVms(); ++id) {
        vmm::VmContext &vm = vmm.vm(id);
        r.merge(auditKernel(vm.kernel()));
        r.merge(auditP2m(vm, vmm.machine()));
        if (registry != nullptr)
            r.merge(auditStats(vm.kernel(), *registry));
    }
    return r;
}

AuditResult
auditXray(vmm::Vmm &vmm, const xray::Recorder &recorder)
{
    AuditResult r;
    // No hooks fired at HOS_XRAY=off (or on a disabled recorder):
    // the shadow is legitimately empty, not corrupt.
    if (!xray::xrayCompiled || !recorder.enabled())
        return r;
    for (vmm::VmId id = 0; id < vmm.numVms(); ++id) {
        guestos::GuestKernel &kernel = vmm.vm(id).kernel();
        const PageArray &pages = kernel.pages();
        const std::string where = kernel.name() + ".xray";
        const auto vm = static_cast<std::uint16_t>(id);
        const std::uint16_t threshold = recorder.thresholdOf(vm);

        std::uint64_t tier_pages[xray::numTiers] = {};
        std::uint64_t tier_hot[xray::numTiers] = {};
        std::uint64_t tier_heat[xray::numTiers] = {};
        std::uint64_t tier_hot_heat[xray::numTiers] = {};

        for (Gpfn pfn = 0; pfn < pages.size(); ++pfn) {
            const PageRef p = pages.page(pfn);
            if (!p.allocated()) {
                ++r.checks;
                if (recorder.live(vm, pfn)) {
                    r.addFailure(CheckKind::Xray, pfn, where,
                                 "shadow still tracks a page the guest "
                                 "freed");
                }
                continue;
            }
            r.checks += 3;
            if (!recorder.live(vm, pfn)) {
                r.addFailure(CheckKind::Xray, pfn, where,
                             "allocated page missing from the shadow");
                continue;
            }
            if (recorder.shadowHeat(vm, pfn) != p.heat()) {
                r.addFailure(
                    CheckKind::Xray, pfn, where,
                    "shadow heat " +
                        std::to_string(recorder.shadowHeat(vm, pfn)) +
                        " != tracker heat " + std::to_string(p.heat()));
            }
            const auto tier = static_cast<std::uint8_t>(
                kernel.backingOf(pfn));
            if (recorder.shadowTier(vm, pfn) != tier) {
                r.addFailure(
                    CheckKind::Xray, pfn, where,
                    std::string("shadow tier ") +
                        xray::tierName(recorder.shadowTier(vm, pfn)) +
                        " != effective backing tier " +
                        xray::tierName(tier));
            }
            if (tier >= xray::numTiers)
                continue;
            ++tier_pages[tier];
            tier_heat[tier] += p.heat();
            if (p.heat() >= threshold) {
                ++tier_hot[tier];
                tier_hot_heat[tier] += p.heat();
            }
        }

        for (std::size_t t = 0; t < xray::numTiers; ++t) {
            const auto tier = static_cast<std::uint8_t>(t);
            const std::string tw =
                where + "." + xray::tierName(tier);
            r.checks += 4;
            if (recorder.pagesIn(vm, tier) != tier_pages[t]) {
                r.addFailure(CheckKind::Xray, invalidSubject, tw,
                             "page count " +
                                 std::to_string(recorder.pagesIn(vm,
                                                                 tier)) +
                                 " != walked " +
                                 std::to_string(tier_pages[t]));
            }
            if (recorder.hotIn(vm, tier) != tier_hot[t]) {
                r.addFailure(CheckKind::Xray, invalidSubject, tw,
                             "hot count " +
                                 std::to_string(recorder.hotIn(vm,
                                                               tier)) +
                                 " != walked " +
                                 std::to_string(tier_hot[t]));
            }
            if (recorder.heatMassIn(vm, tier) != tier_heat[t]) {
                r.addFailure(
                    CheckKind::Xray, invalidSubject, tw,
                    "heat mass " +
                        std::to_string(recorder.heatMassIn(vm, tier)) +
                        " != walked " + std::to_string(tier_heat[t]));
            }
            if (recorder.hotHeatMassIn(vm, tier) != tier_hot_heat[t]) {
                r.addFailure(
                    CheckKind::Xray, invalidSubject, tw,
                    "hot heat mass " +
                        std::to_string(
                            recorder.hotHeatMassIn(vm, tier)) +
                        " != walked " +
                        std::to_string(tier_hot_heat[t]));
            }
        }

        // The derived misplacement metrics are linear combinations of
        // the per-tier aggregates; re-derive them from the walk so a
        // broken combination cannot hide behind correct per-tier rows.
        std::uint64_t hot_total = 0, misplaced_mass = 0;
        for (std::size_t t = 0; t < xray::numTiers; ++t) {
            hot_total += tier_hot[t];
            if (t != xray::fastTier)
                misplaced_mass += tier_hot_heat[t];
        }
        r.checks += 2;
        if (recorder.hotMisplaced(vm) !=
            hot_total - tier_hot[xray::fastTier]) {
            r.addFailure(CheckKind::Xray, invalidSubject, where,
                         "hot_misplaced " +
                             std::to_string(recorder.hotMisplaced(vm)) +
                             " != walked " +
                             std::to_string(
                                 hot_total -
                                 tier_hot[xray::fastTier]));
        }
        if (recorder.misplacedHeatMass(vm) != misplaced_mass) {
            r.addFailure(
                CheckKind::Xray, invalidSubject, where,
                "misplaced heat mass " +
                    std::to_string(recorder.misplacedHeatMass(vm)) +
                    " != walked " + std::to_string(misplaced_mass));
        }
    }
    return r;
}

AuditResult
auditMetrics(vmm::Vmm &vmm, const metrics::Collector &collector)
{
    AuditResult r;
    // No hooks fired at HOS_METRICS=off (or on a disabled collector):
    // empty aggregates are legitimate, not corrupt.
    if (!metrics::metricsCompiled || !collector.enabled())
        return r;

    // Every tracked VM tag must name a live kernel.
    for (std::size_t i = 0; i < collector.numVms(); ++i) {
        const std::uint16_t tag = collector.vmAt(i);
        ++r.checks;
        if (tag >= vmm.numVms()) {
            r.addFailure(CheckKind::Metrics, invalidSubject, "metrics",
                         "collector tracks VM tag " +
                             std::to_string(tag) + " but the VMM has " +
                             std::to_string(vmm.numVms()) + " VM(s)");
        }
    }

    for (vmm::VmId id = 0; id < vmm.numVms(); ++id) {
        guestos::GuestKernel &kernel = vmm.vm(id).kernel();
        const auto vm = static_cast<std::uint16_t>(id);
        const std::string where = kernel.name() + ".metrics";
        if (!collector.tracks(vm))
            continue;

        // Overhead reconciliation: the collector sees each kernel
        // drain exactly once (Workload::step is the sole drainer), so
        // its running total plus the not-yet-drained remainder must
        // equal the kernel's grand total — integer equality.
        const std::uint64_t drained =
            static_cast<std::uint64_t>(kernel.overheadGrandTotal()) -
            static_cast<std::uint64_t>(kernel.pendingOverhead());
        ++r.checks;
        if (collector.totalOverheadNs(vm) != drained) {
            r.addFailure(CheckKind::Metrics, invalidSubject, where,
                         "drained overhead " +
                             std::to_string(
                                 collector.totalOverheadNs(vm)) +
                             "ns != kernel accounts " +
                             std::to_string(drained) + "ns");
        }

        const metrics::HdrHistogram *hist =
            collector.slowdownHistogram(vm);
        ++r.checks;
        if (hist == nullptr) {
            r.addFailure(CheckKind::Metrics, invalidSubject, where,
                         "tracked VM has no slowdown histogram");
            continue;
        }

        // Window reconciliation: one histogram observation per closed
        // window, and the histogram's exact value sum must match the
        // running ppm sum (sum preservation through the log buckets).
        r.checks += 2;
        if (hist->totalCount() != collector.windowsClosed(vm)) {
            r.addFailure(CheckKind::Metrics, invalidSubject, where,
                         "histogram count " +
                             std::to_string(hist->totalCount()) +
                             " != closed windows " +
                             std::to_string(
                                 collector.windowsClosed(vm)));
        }
        if (hist->valueSum() != collector.slowdownPpmSum(vm)) {
            r.addFailure(CheckKind::Metrics, invalidSubject, where,
                         "histogram value sum " +
                             std::to_string(hist->valueSum()) +
                             " != slowdown ppm sum " +
                             std::to_string(
                                 collector.slowdownPpmSum(vm)));
        }
    }
    return r;
}

AuditResult
auditProf(const prof::Profiler &profiler)
{
    AuditResult r;
    ++r.checks;
    if (profiler.depth() != 0) {
        r.addFailure(CheckKind::Prof, invalidSubject, "prof.stack",
                     std::to_string(profiler.depth()) +
                         " span(s) still open at audit");
    }
    ++r.checks;
    if (profiler.spansOpened() != profiler.spansClosed() &&
        profiler.depth() == 0) {
        // depth != 0 already reported above; this catches hand-driven
        // begin/end misuse where the stack emptied but counts drifted.
        r.addFailure(CheckKind::Prof, invalidSubject, "prof.counters",
                     "spans opened " +
                         std::to_string(profiler.spansOpened()) +
                         " != closed " +
                         std::to_string(profiler.spansClosed()));
    }
    return r;
}

void
enforce(const AuditResult &result)
{
    if (result.ok())
        return;
    for (std::size_t i = 1; i < result.failures.size(); ++i)
        report(result.failures[i]);
    fail(result.failures.front());
}

} // namespace hos::check
