/**
 * @file
 * Failure vocabulary of the hos::check subsystem.
 *
 * Deliberately header-only and dependency-free (sim/time.hh aside):
 * the bottom of the stack — sim/log.cc's hos_assert slow path — must
 * be able to throw check::CheckError without the sim library linking
 * against the check library. Everything heavier (validators, audit
 * walkers, reporting through hos::trace) lives in check.hh and above.
 */

#ifndef HOS_CHECK_CHECK_ERROR_HH
#define HOS_CHECK_CHECK_ERROR_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/time.hh"

namespace hos::check {

/** Which validator (or assertion family) flagged a failure. */
enum class CheckKind : std::uint8_t {
    Assert = 0,     ///< a plain hos_assert invariant
    PageState,      ///< illegal page-type / location / flag transition
    Placement,      ///< page pinned or placed against the tier rules
    ZoneAccounting, ///< buddy / zone / per-CPU page counts disagree
    ListIntegrity,  ///< intrusive list links, tags, or counts broken
    Lru,            ///< LRU state bits disagree with list membership
    P2m,            ///< guest P2M vs VMM machine-frame ownership drift
    StatDrift,      ///< StatRegistry gauge disagrees with live state
    Residency,      ///< ResidencyIndex disagrees with recomputed truth
    Prof,           ///< profiler span stack imbalance (hos::prof)
    Xray,           ///< xray shadow state disagrees with page truth
    Metrics,        ///< metrics aggregates disagree with kernel truth
};

constexpr std::size_t numCheckKinds = 12;

constexpr const char *
checkKindName(CheckKind k)
{
    switch (k) {
      case CheckKind::Assert:
        return "assert";
      case CheckKind::PageState:
        return "page-state";
      case CheckKind::Placement:
        return "placement";
      case CheckKind::ZoneAccounting:
        return "zone-accounting";
      case CheckKind::ListIntegrity:
        return "list-integrity";
      case CheckKind::Lru:
        return "lru";
      case CheckKind::P2m:
        return "p2m";
      case CheckKind::StatDrift:
        return "stat-drift";
      case CheckKind::Residency:
        return "residency";
      case CheckKind::Prof:
        return "prof";
      case CheckKind::Xray:
        return "xray";
      case CheckKind::Metrics:
        return "metrics";
    }
    return "?";
}

/** Subject value meaning "no particular page frame". */
constexpr std::uint64_t invalidSubject = ~std::uint64_t(0);

/**
 * One structured validator finding. `subject` identifies the page
 * frame (gpfn or mfn) at fault where one exists; `where` names the
 * structure being audited ("guest0.node1.buddy"); `what` is the
 * human-readable violation. `tick` is sim-time provenance: the
 * simulated instant the corruption was observed, which with
 * deterministic replay pinpoints the offending event.
 */
struct CheckFailure
{
    CheckKind kind = CheckKind::Assert;
    sim::Tick tick = 0;
    std::uint64_t subject = invalidSubject; ///< pfn/mfn; ~0 = n/a
    std::string where;
    std::string what;

    /** "[t=...ns] kind(where): what (subject ...)" rendering. */
    std::string describe() const;
};

/**
 * Thrown instead of aborting when the failure mode is Throw (the
 * HOS_CHECK_THROW build, or check::setFailureMode at runtime). Tests
 * use this to assert that a validator actually fired, and which one.
 */
class CheckError : public std::runtime_error
{
  public:
    explicit CheckError(CheckFailure failure)
        : std::runtime_error(failure.describe()),
          failure_(std::move(failure))
    {
    }

    CheckKind kind() const { return failure_.kind; }
    const CheckFailure &failure() const { return failure_; }

  private:
    CheckFailure failure_;
};

/** What a failed check does to the process. */
enum class FailureMode : std::uint8_t {
    Abort, ///< report to stderr and abort() — production default
    Throw, ///< throw CheckError — test harness / HOS_CHECK_THROW builds
};

namespace detail {
/** One process-wide mode cell (function-local static: no TU issues). */
inline FailureMode &
failureModeRef()
{
#ifdef HOS_CHECK_THROW
    static FailureMode mode = FailureMode::Throw;
#else
    static FailureMode mode = FailureMode::Abort;
#endif
    return mode;
}
} // namespace detail

inline FailureMode
failureMode()
{
    return detail::failureModeRef();
}

/**
 * Select abort-vs-throw for every subsequent check failure, including
 * hos_assert failures. Returns the previous mode so tests can scope
 * the change.
 */
inline FailureMode
setFailureMode(FailureMode m)
{
    FailureMode prev = detail::failureModeRef();
    detail::failureModeRef() = m;
    return prev;
}

/** RAII scope: failures throw inside, previous mode restored after. */
class ScopedThrowMode
{
  public:
    ScopedThrowMode() : prev_(setFailureMode(FailureMode::Throw)) {}
    ~ScopedThrowMode() { setFailureMode(prev_); }

    ScopedThrowMode(const ScopedThrowMode &) = delete;
    ScopedThrowMode &operator=(const ScopedThrowMode &) = delete;

  private:
    FailureMode prev_;
};

inline std::string
CheckFailure::describe() const
{
    std::string s = "[t=" + std::to_string(tick) + "ns] ";
    s += checkKindName(kind);
    if (!where.empty())
        s += "(" + where + ")";
    s += ": " + what;
    if (subject != invalidSubject)
        s += " (page " + std::to_string(subject) + ")";
    return s;
}

} // namespace hos::check

#endif // HOS_CHECK_CHECK_ERROR_HH
