/**
 * @file
 * Periodic cross-layer audit daemon.
 *
 * Mirrors the stats-snapshot daemon: a periodic event on a guest's
 * event queue that runs the full audit walk (auditVmm) every
 * `interval` of simulated time, so corruption is caught within one
 * audit period of the event that caused it instead of at the end of
 * the run. HeteroSystem starts one automatically in HOS_CHECK=full
 * builds; tests and tools can also drive runOnce() by hand.
 */

#ifndef HOS_CHECK_AUDIT_DAEMON_HH
#define HOS_CHECK_AUDIT_DAEMON_HH

#include <cstdint>

#include "check/auditors.hh"
#include "sim/event_queue.hh"
#include "sim/time.hh"

namespace hos::check {

/** Runs auditVmm every `interval` sim-time on a guest event queue. */
class AuditDaemon
{
  public:
    /**
     * @param vmm      the hypervisor whose VMs get audited
     * @param queue    event queue supplying simulated time (one of the
     *                 guests'; audits cover every VM regardless)
     * @param interval simulated time between audit passes
     * @param registry when non-null, gauge reconciliation (auditStats)
     *                 joins each pass
     */
    AuditDaemon(vmm::Vmm &vmm, sim::EventQueue &queue,
                sim::Duration interval,
                sim::StatRegistry *registry = nullptr);

    /** Schedule the periodic audit (first pass one interval from now). */
    void start();

    /** Audit immediately; returns findings without terminating. */
    AuditResult runOnce();

    /** Terminate the run on a failed periodic audit (default true). */
    void setEnforce(bool enforce) { enforce_ = enforce; }

    std::uint64_t auditsRun() const { return audits_run_; }
    std::uint64_t checksRun() const { return checks_run_; }
    std::uint64_t failuresFound() const { return failures_found_; }

  private:
    vmm::Vmm &vmm_;
    sim::EventQueue &queue_;
    sim::Duration interval_;
    sim::StatRegistry *registry_;
    bool enforce_ = true;
    bool started_ = false;
    std::uint64_t audits_run_ = 0;
    std::uint64_t checks_run_ = 0;
    std::uint64_t failures_found_ = 0;
};

} // namespace hos::check

#endif // HOS_CHECK_AUDIT_DAEMON_HH
