#include "check/check.hh"

#include <cstdio>

#include "sim/log.hh"
#include "trace/trace.hh"

namespace hos::check {

namespace {
std::uint64_t g_failures_reported = 0;
} // namespace

const char *
levelName()
{
    switch (compiledLevel) {
      case 0:
        return "off";
      case 1:
        return "cheap";
      default:
        return "full";
    }
}

std::uint64_t
failuresReported()
{
    return g_failures_reported;
}

void
report(const CheckFailure &failure)
{
    ++g_failures_reported;
    trace::emit(trace::EventType::CheckFailure, failure.tick,
                static_cast<std::uint64_t>(failure.kind),
                failure.subject);
    sim::warn("check: %s", failure.describe().c_str());
}

void
fail(CheckFailure failure)
{
    report(failure);
    if (failureMode() == FailureMode::Throw)
        throw CheckError(std::move(failure));
    std::fprintf(stderr, "check: fatal invariant violation, aborting\n");
    std::abort();
}

void
fail(CheckKind kind, std::uint64_t subject, std::string where,
     std::string what)
{
    CheckFailure f;
    f.kind = kind;
    f.tick = sim::currentTick();
    f.subject = subject;
    f.where = std::move(where);
    f.what = std::move(what);
    fail(std::move(f));
}

} // namespace hos::check
