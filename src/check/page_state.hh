/**
 * @file
 * Page-state machine validator.
 *
 * Encodes the legal PageType × location × list-membership transitions
 * of the guest OS and checks them at the moment a page changes hands:
 *
 *  - A page's use type only changes through Free: Free → Anon/Slab/…
 *    at allocation, X → Free at release. Retyping a live page (Anon
 *    page suddenly claiming to be Slab) is always a bug — there is no
 *    kernel path that does it legitimately.
 *  - Migration-exception types (paper §4.1: PageTable, Dma) never
 *    move tiers, and pinned or in-flight-I/O pages never migrate.
 *  - I/O cache pages (PageCache/BufferCache) are never pinned
 *    (unevictable) in FastMem — they are released right after the
 *    I/O completes, so pinning them in the scarce tier means the
 *    eager-eviction design broke. (NetBuf is exempt: skbuffs are
 *    slab-backed and slab pages are pinned by design.)
 *  - Only LRU-managed types (Anon + the I/O types) may enter an LRU.
 *
 * Validators fail via check::fail with kind PageState / Placement /
 * Lru. Call sites wrap them in HOS_CHECK_CHEAP so off-level builds
 * compile them away entirely.
 */

#ifndef HOS_CHECK_PAGE_STATE_HH
#define HOS_CHECK_PAGE_STATE_HH

#include "check/check.hh"
#include "guestos/page.hh"
#include "mem/mem_spec.hh"

namespace hos::check {

/** True when a live page of type `from` may become `to` directly. */
constexpr bool
legalTypeTransition(guestos::PageType from, guestos::PageType to)
{
    return from == to || from == guestos::PageType::Free ||
           to == guestos::PageType::Free;
}

/** Types that may sit on a zone LRU (reclaimable user/IO memory). */
constexpr bool
lruManagedType(guestos::PageType t)
{
    return t == guestos::PageType::Anon ||
           t == guestos::PageType::PageCache ||
           t == guestos::PageType::BufferCache ||
           t == guestos::PageType::NetBuf;
}

/** A page leaving the allocator fast path, about to become `to`. */
void validateAlloc(const guestos::PageRef &p, guestos::PageType to,
                   const char *where);

/** A page entering the free path (must be live and off every list). */
void validateFree(const guestos::PageRef &p, const char *where);

/** An in-place retype request (only legal through Free). */
void validateTypeChange(const guestos::PageRef &p, guestos::PageType to,
                        const char *where);

/** A page selected to migrate to tier `dst`. */
void validateMigration(const guestos::PageRef &p, mem::MemType dst,
                       const char *where);

/** A page's type/pin/tier combination after placement decisions. */
void validatePlacement(const guestos::PageRef &p, const char *where);

/** A page about to be inserted into a zone LRU. */
void validateLruInsert(const guestos::PageRef &p, const char *where);

} // namespace hos::check

#endif // HOS_CHECK_PAGE_STATE_HH
