/**
 * @file
 * Cross-layer audit walkers.
 *
 * Where the page-state validator (page_state.hh) checks one page at
 * one transition, the auditors reconcile whole structures against
 * each other — the redundant bookkeeping HeteroOS keeps at every
 * layer is exactly what makes corruption detectable:
 *
 *  - intrusive list integrity: links, ownership tags, counts, cycles
 *    (buddy free lists, per-CPU caches, zone LRUs);
 *  - zone accounting: buddy free counts vs walked free blocks vs the
 *    managed = free + per-CPU-cached + allocated identity;
 *  - LRU state: per-page lru bits vs actual list membership, and
 *    page types legal for LRU residence (catches mid-residence
 *    retyping);
 *  - StatRegistry gauges vs live zone state (refresh-hook wiring);
 *  - guest P2M vs VMM machine-frame ownership: per-gpfn owner/tier
 *    agreement, populated-flag agreement, per-tier tallies, no
 *    double-mapped frames, no leaked frames.
 *
 * Walkers *collect* structured CheckFailure records instead of
 * terminating, so tests can seed a corruption and assert exactly
 * which validator caught it; enforce() turns a non-empty result into
 * a check::fail. The audit daemon (audit_daemon.hh) runs these every
 * N sim-ticks; HeteroSystem wires that up automatically in
 * HOS_CHECK=full builds.
 */

#ifndef HOS_CHECK_AUDITORS_HH
#define HOS_CHECK_AUDITORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "check/check.hh"
#include "guestos/kernel.hh"
#include "metrics/metrics.hh"
#include "prof/prof.hh"
#include "sim/stats.hh"
#include "vmm/vmm.hh"
#include "xray/xray.hh"

namespace hos::check {

/** Outcome of one audit pass. */
struct AuditResult
{
    std::uint64_t checks = 0; ///< individual invariants evaluated
    std::vector<CheckFailure> failures;

    bool ok() const { return failures.empty(); }
    void merge(AuditResult &&other);

    /** Append a failure stamped with the current sim tick. */
    void addFailure(CheckKind kind, std::uint64_t subject,
                    std::string where, std::string what);
};

/**
 * Walk one intrusive page list: every link bidirectional, every
 * member carrying the list's ownership tag, walked length equal to
 * the stored count, head/tail consistent, no cycles.
 */
AuditResult auditList(const guestos::PageArray &pages,
                      const guestos::PageList &list,
                      const std::string &where);

/**
 * Full guest-kernel audit: buddy free lists and accounting, per-CPU
 * caches, zone LRUs, per-page state over every node span, and the
 * managed = free + cached + allocated identity.
 */
AuditResult auditKernel(guestos::GuestKernel &kernel);

/**
 * Cross-check the kernel's ResidencyIndex against ground truth: for
 * every registered region index, re-derive the effective binding with
 * the legacy sampling rule (descriptor ownership checks, then a page-
 * table translate, else the stale binding) and the effective tier
 * through the placement oracle, and compare with the stored binding
 * bit and the running fast_total. This is the exhaustive form of the
 * legacy-sampling cross-check: zero divergence here means every
 * possible sample probe agrees between the two implementations.
 */
AuditResult auditResidency(guestos::GuestKernel &kernel);

/**
 * Reconcile the kernel's StatRegistry gauges against live zone
 * state: refreshes the registry (running the refresh hooks as the
 * snapshot daemon would), then recomputes node free/managed counts
 * independently. Catches dead or mis-wired refresh hooks.
 */
AuditResult auditStats(guestos::GuestKernel &kernel,
                       sim::StatRegistry &registry);

/**
 * Reconcile one VM's guest P2M against VMM machine-memory ownership.
 */
AuditResult auditP2m(vmm::VmContext &vm, mem::MachineMemory &machine);

/** Audit every VM of a VMM (kernel + P2M [+ stats]) and the machine. */
AuditResult auditVmm(vmm::Vmm &vmm,
                     sim::StatRegistry *registry = nullptr);

/**
 * End-of-run profiler balance audit: every opened span must have been
 * closed (RAII makes this structural, so a failure means a span
 * leaked across an exception or a begin/end was called by hand).
 */
AuditResult auditProf(const prof::Profiler &profiler);

/**
 * Reconcile an xray Recorder's shadow state and placement-quality
 * counters against ground truth with an exhaustive walk: every
 * allocated guest page must be live in the shadow with the same heat
 * and the same effective backing tier (placement oracle), freed pages
 * must not linger, and the per-tier page / hot / heat-mass /
 * hot-heat-mass aggregates recomputed from the page array must equal
 * the Recorder's incrementally-maintained counters bit for bit.
 */
AuditResult auditXray(vmm::Vmm &vmm, const xray::Recorder &recorder);

/**
 * Reconcile a metrics Collector's windowed aggregates against kernel
 * ground truth: per VM, the collector's drained-overhead total must
 * equal the kernel's overhead grand total minus the not-yet-drained
 * remainder (integer equality — the collector sees every drain
 * exactly once), the slowdown histogram's observation count must
 * equal the number of closed windows, its exact value sum must equal
 * the running slowdown-ppm sum (sum preservation through the
 * log-bucketed layout), and every tracked VM tag must correspond to a
 * live kernel.
 */
AuditResult auditMetrics(vmm::Vmm &vmm,
                         const metrics::Collector &collector);

/**
 * Report every failure in `result` through hos::trace and terminate
 * (abort or throw CheckError carrying the first failure) when the
 * audit found anything. No-op on a clean result.
 */
void enforce(const AuditResult &result);

} // namespace hos::check

#endif // HOS_CHECK_AUDITORS_HH
