#include "check/page_state.hh"

#include <string>

namespace hos::check {

using guestos::PageRef;
using guestos::PageType;

namespace {

std::string
typeName(PageType t)
{
    return guestos::pageTypeName(t);
}

} // namespace

void
validateAlloc(const PageRef &p, PageType to, const char *where)
{
    if (!p.allocated()) {
        fail(CheckKind::PageState, p.pfn(), where,
             "allocator handed out a page not marked allocated");
    }
    if (p.type() != PageType::Free) {
        fail(CheckKind::PageState, p.pfn(), where,
             "allocating a page still typed " + typeName(p.type()) +
                 " (double allocation?)");
    }
    if (p.lru() != guestos::LruState::None) {
        fail(CheckKind::PageState, p.pfn(), where,
             "allocating a page still on an LRU list");
    }
    if (p.on_list() != guestos::listNone) {
        fail(CheckKind::PageState, p.pfn(), where,
             "allocating a page still linked on list id " +
                 std::to_string(p.list_id()) + " (tag " +
                 std::to_string(p.on_list()) + ")");
    }
    if (p.in_buddy()) {
        fail(CheckKind::PageState, p.pfn(), where,
             "allocating a page still heading a buddy free block");
    }
    if (!legalTypeTransition(PageType::Free, to)) {
        fail(CheckKind::PageState, p.pfn(), where,
             "illegal transition free -> " + typeName(to));
    }
}

void
validateFree(const PageRef &p, const char *where)
{
    if (!p.allocated()) {
        fail(CheckKind::PageState, p.pfn(), where,
             "double free: page is not allocated");
    }
    if (p.in_buddy()) {
        fail(CheckKind::PageState, p.pfn(), where,
             "freeing a page already heading a buddy free block");
    }
    if (p.lru() != guestos::LruState::None) {
        fail(CheckKind::PageState, p.pfn(), where,
             "freeing a page still on an LRU list");
    }
    if (p.on_list() != guestos::listNone) {
        fail(CheckKind::PageState, p.pfn(), where,
             "freeing a page still linked on list id " +
                 std::to_string(p.list_id()) + " (tag " +
                 std::to_string(p.on_list()) + ")");
    }
    if (p.under_io()) {
        fail(CheckKind::PageState, p.pfn(), where,
             "freeing a page with I/O in flight");
    }
}

void
validateTypeChange(const PageRef &p, PageType to, const char *where)
{
    if (!legalTypeTransition(p.type(), to)) {
        fail(CheckKind::PageState, p.pfn(), where,
             "illegal retype " + typeName(p.type()) + " -> " +
                 typeName(to) + " of a live page");
    }
}

void
validateMigration(const PageRef &p, mem::MemType dst, const char *where)
{
    if (!p.allocated()) {
        fail(CheckKind::PageState, p.pfn(), where,
             "migrating a page that is not allocated");
    }
    if (guestos::isMigrationException(p.type())) {
        fail(CheckKind::Placement, p.pfn(), where,
             "migration-exception page (" + typeName(p.type()) +
                 ") selected to move to " + mem::memTypeName(dst));
    }
    if (p.unevictable()) {
        fail(CheckKind::Placement, p.pfn(), where,
             "migrating a pinned (unevictable) page");
    }
    if (p.under_io()) {
        fail(CheckKind::Placement, p.pfn(), where,
             "migrating a page with I/O in flight");
    }
}

void
validatePlacement(const PageRef &p, const char *where)
{
    // NetBuf is exempt: skbuffs are slab-backed and slab pages are
    // pinned by design; only the LRU-managed I/O cache types must
    // stay evictable in the scarce tier.
    if ((p.type() == PageType::PageCache ||
         p.type() == PageType::BufferCache) &&
        p.unevictable() && p.mem_type() == mem::MemType::FastMem) {
        fail(CheckKind::Placement, p.pfn(), where,
             "short-lived I/O page (" + typeName(p.type()) +
                 ") pinned in FastMem");
    }
}

void
validateLruInsert(const PageRef &p, const char *where)
{
    if (!p.allocated()) {
        fail(CheckKind::Lru, p.pfn(), where,
             "inserting an unallocated page into an LRU");
    }
    if (!lruManagedType(p.type())) {
        fail(CheckKind::Lru, p.pfn(), where,
             "inserting a page of non-LRU type " + typeName(p.type()) +
                 " into an LRU");
    }
    if (p.lru() != guestos::LruState::None) {
        fail(CheckKind::Lru, p.pfn(), where,
             "inserting a page already on an LRU");
    }
}

} // namespace hos::check
