/**
 * @file
 * hos::check — cross-layer invariant auditing.
 *
 * HeteroOS's correctness rests on guest and VMM state staying mutually
 * consistent: page-type exception lists (paper §4.1), guest P2M vs VMM
 * machine ownership, and the zone/LRU accounting that drives
 * HeteroOS-LRU placement. This subsystem catches state corruption at
 * the moment it happens instead of as a mangled results curve ten
 * thousand ticks later, in the spirit of the Linux kernel's
 * CONFIG_DEBUG_VM self-checks. Three pillars:
 *
 *  1. A page-state machine validator (page_state.hh) invoked from
 *     guestos transition points behind compile-time check levels.
 *  2. Cross-layer audit walkers (auditors.hh) that reconcile buddy /
 *     zone / per-CPU / LRU / StatRegistry / P2M state on demand or
 *     periodically (audit_daemon.hh).
 *  3. Toolchain wiring (.clang-tidy, tools/lint.sh, TSan CI).
 *
 * Check levels — fixed at compile time via -DHOS_CHECK=off/cheap/full
 * (the CMake option maps to the HOS_CHECK_LEVEL macro):
 *
 *   off   (0)  validators compile to nothing; zero cost.
 *   cheap (1)  O(1) transition-point checks. The default: invariants
 *              in the memory-management state machines are cheap
 *              relative to simulation work.
 *   full  (2)  cheap plus periodic + end-of-run audit walks wired
 *              into HeteroSystem runs.
 *
 * Failures are structured CheckFailure records (check_error.hh),
 * reported through hos::trace with sim-tick provenance, then either
 * abort the process or throw check::CheckError (FailureMode).
 */

#ifndef HOS_CHECK_CHECK_HH
#define HOS_CHECK_CHECK_HH

#include "check/check_error.hh"

namespace hos::check {

#ifndef HOS_CHECK_LEVEL
#define HOS_CHECK_LEVEL 1
#endif

/** The compiled-in check level (0 = off, 1 = cheap, 2 = full). */
constexpr int compiledLevel = HOS_CHECK_LEVEL;

constexpr bool cheapChecksEnabled = HOS_CHECK_LEVEL >= 1;
constexpr bool fullChecksEnabled = HOS_CHECK_LEVEL >= 2;

/** Printable name of the compiled level ("off"/"cheap"/"full"). */
const char *levelName();

/**
 * Report one failure: emits a trace::EventType::CheckFailure record
 * (sim-tick timestamped), prints the description, then aborts or
 * throws per failureMode(). The [[noreturn]]-ness is conditional on
 * the mode, so this is not annotated; callers must not assume
 * continuation.
 */
void fail(CheckFailure failure);

/** Convenience: build the failure in place and fail() it. */
void fail(CheckKind kind, std::uint64_t subject, std::string where,
          std::string what);

/**
 * Report a failure without terminating: trace record + warn(). Audit
 * walkers use this for every finding before their caller decides
 * whether the batch is fatal.
 */
void report(const CheckFailure &failure);

/** Check failures reported (trace + fail) since process start. */
std::uint64_t failuresReported();

} // namespace hos::check

/**
 * Run a validator statement only at check level >= cheap. The
 * statement disappears entirely (not even evaluated) in off builds.
 */
#if HOS_CHECK_LEVEL >= 1
#define HOS_CHECK_CHEAP(...)                                               \
    do {                                                                   \
        __VA_ARGS__;                                                       \
    } while (0)
#else
#define HOS_CHECK_CHEAP(...)                                               \
    do {                                                                   \
    } while (0)
#endif

/** Run a validator statement only at check level full. */
#if HOS_CHECK_LEVEL >= 2
#define HOS_CHECK_FULL(...)                                                \
    do {                                                                   \
        __VA_ARGS__;                                                       \
    } while (0)
#else
#define HOS_CHECK_FULL(...)                                                \
    do {                                                                   \
    } while (0)
#endif

#endif // HOS_CHECK_CHECK_HH
