#include "trace/exporters.hh"

#include <algorithm>
#include <fstream>

#include "sim/json.hh"
#include "sim/log.hh"

namespace hos::trace {

namespace {

/**
 * Buffered records sorted by (ts, seq). Appends are already in time
 * order per event queue, but multi-VM lockstep interleaves several
 * guest clocks, so a stable sort guarantees the monotonically
 * non-decreasing timestamps trace viewers require.
 */
std::vector<Record>
sortedRecords(const Tracer &tracer)
{
    std::vector<Record> records;
    records.reserve(tracer.size());
    tracer.forEach([&](const Record &r) { records.push_back(r); });
    std::stable_sort(records.begin(), records.end(),
                     [](const Record &a, const Record &b) {
                         if (a.ts != b.ts)
                             return a.ts < b.ts;
                         return a.seq < b.seq;
                     });
    return records;
}

/** Ticks are ns; Chrome wants microseconds (fractional ok). */
double
toChromeUs(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1e3;
}

void
writeArg(sim::JsonWriter &w, const char *name, std::uint64_t v)
{
    if (name != nullptr && name[0] != '\0')
        w.kv(name, v);
}

/** Display name for a span record: resolved kind, else "span_<a0>". */
std::string
spanDisplayName(const Record &r)
{
    if (const char *name = spanName(r.a0))
        return name;
    return "span_" + std::to_string(r.a0);
}

} // namespace

void
writeChromeJson(const Tracer &tracer, std::ostream &os)
{
    const auto records = sortedRecords(tracer);

    sim::JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ms");
    w.key("otherData");
    w.beginObject();
    w.kv("recorded", tracer.recorded());
    w.kv("dropped", tracer.dropped());
    w.endObject();
    w.key("traceEvents");
    w.beginArray();
    for (const Record &r : records) {
        const EventTypeInfo &info = eventTypeInfo(r.type);
        const bool is_span = r.type == EventType::SpanBegin ||
                             r.type == EventType::SpanEnd;
        w.beginObject();
        if (is_span) {
            // Profiler spans become nested duration pairs so trace
            // viewers render them as a flame-chart.
            w.kv("name", spanDisplayName(r));
            w.kv("cat", categoryName(info.category));
            w.kv("ph", r.type == EventType::SpanBegin ? "B" : "E");
            w.kv("ts", toChromeUs(r.ts));
        } else {
            w.kv("name", info.name);
            w.kv("cat", categoryName(info.category));
            w.kv("ph", r.dur > 0 ? "X" : "i");
            w.kv("ts", toChromeUs(r.ts));
            if (r.dur > 0)
                w.kv("dur", toChromeUs(r.dur));
            else
                w.kv("s", "t"); // instant scope: thread
        }
        w.kv("pid", std::uint64_t(0));
        w.kv("tid", static_cast<std::uint64_t>(r.vm));
        w.key("args");
        w.beginObject();
        writeArg(w, info.a0, r.a0);
        writeArg(w, info.a1, r.a1);
        writeArg(w, info.a2, r.a2);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
    hos_assert(w.balanced(), "unbalanced trace JSON");
}

bool
writeChromeJson(const Tracer &tracer, const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        sim::warn("cannot open trace file '%s'", path.c_str());
        return false;
    }
    writeChromeJson(tracer, os);
    return os.good();
}

void
writeCsv(const Tracer &tracer, std::ostream &os)
{
    os << "ts_ns,dur_ns,type,category,vm,a0,a1,a2\n";
    for (const Record &r : sortedRecords(tracer)) {
        const EventTypeInfo &info = eventTypeInfo(r.type);
        os << r.ts << ',' << r.dur << ',' << info.name << ','
           << categoryName(info.category) << ',' << r.vm << ',' << r.a0
           << ',' << r.a1 << ',' << r.a2 << '\n';
    }
}

bool
writeCsv(const Tracer &tracer, const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        sim::warn("cannot open trace file '%s'", path.c_str());
        return false;
    }
    writeCsv(tracer, os);
    return os.good();
}

} // namespace hos::trace
