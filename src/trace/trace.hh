/**
 * @file
 * Simulation-wide structured event tracing.
 *
 * Every interesting internal event — page allocations, migrations,
 * hotness scans, balloon resizes, swap traffic, hypercalls, DRF
 * reallocations, device batches — can be recorded as a fixed-size,
 * sim-tick-timestamped record into a bounded ring buffer. Exporters
 * (trace/exporters.hh) turn the ring into a Chrome trace_event JSON
 * (chrome://tracing / Perfetto) or a compact CSV.
 *
 * Design constraints, in order:
 *  1. Zero measurable cost when disabled: the emit() fast path is a
 *     thread-local sink check plus one plain global mask load. Benches
 *     run with tracing off and must not pay for its existence.
 *  2. Bounded memory: a fixed-capacity ring; when full, the oldest
 *     records are overwritten and counted as dropped.
 *  3. Determinism: two identical runs produce identical traces — no
 *     wall-clock anywhere, only sim ticks.
 *  4. Isolation: emit() routes to a thread-local sink when one is
 *     installed (ScopedSink), falling back to the process-wide
 *     tracer() otherwise. Two HeteroSystems running on different
 *     sweep threads each collect their own events; nothing
 *     interleaves.
 *
 * Records carry up to three uint64 arguments whose meaning is fixed
 * per event type (see eventTypeInfo) so exporters can name them.
 */

#ifndef HOS_TRACE_TRACE_HH
#define HOS_TRACE_TRACE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hh"

namespace hos::trace {

/** Event categories (bit flags; --trace-categories selects a set). */
enum class Category : std::uint32_t {
    None = 0,
    Alloc = 1u << 0,     ///< page allocation / free
    Migration = 1u << 1, ///< guest and VMM page migration
    Scan = 1u << 2,      ///< hotness scans and LRU reclaim passes
    Balloon = 1u << 3,   ///< balloon inflate / deflate / reclaim
    Swap = 1u << 4,      ///< swap-in / swap-out
    Hypercall = 1u << 5, ///< populate / unpopulate hypercalls
    Fairness = 1u << 6,  ///< DRF reallocation decisions
    Device = 1u << 7,    ///< memory-device service batches
    Stats = 1u << 8,     ///< periodic stats snapshots
    Check = 1u << 9,     ///< invariant-check failures (hos::check)
    Prof = 1u << 10,     ///< profiler span begin/end (hos::prof)
    Xray = 1u << 11,     ///< placement-quality telemetry (hos::xray)
    All = 0xfffu,
};

/** Typed event records. The a0/a1/a2 meanings are per-type. */
enum class EventType : std::uint16_t {
    PageAlloc = 0,      ///< a0=page type, a1=pfn, a2=tier
    PageFree,           ///< a0=pfn, a1=tier
    MigrationStart,     ///< a0=candidates, a1=dst tier
    MigrationComplete,  ///< a0=migrated, a1=skipped, a2=dst tier
    HotnessScan,        ///< a0=scanned, a1=accessed, a2=hot
    LruReclaim,         ///< a0=target, a1=freed, a2=scanned
    BalloonInflate,     ///< a0=tier, a1=asked, a2=surrendered
    BalloonDeflate,     ///< a0=tier, a1=asked, a2=granted
    BalloonReclaim,     ///< a0=victim vm, a1=tier, a2=freed
    SwapOut,            ///< a0=pages, a1=swap used after
    SwapIn,             ///< a0=pages, a1=swap used after
    HypercallPopulate,  ///< a0=guest node, a1=asked, a2=granted
    HypercallUnpopulate,///< a0=guest node, a1=pages
    DrfReclaim,         ///< a0=victim vm, a1=tier, a2=reclaimed
    DeviceBatch,        ///< a0=loads, a1=stores, a2=bytes
    StatsSnapshot,      ///< a0=snapshot index, a1=groups sampled
    CheckFailure,       ///< a0=CheckKind, a1=subject pfn/mfn
    SpanBegin,          ///< a0=prof::SpanKind, a1=depth after open
    SpanEnd,            ///< a0=prof::SpanKind, a1=depth before close
    XrayHotCross,       ///< a0=gpfn, a1=heat, a2=threshold
    XrayMove,           ///< a0=xray::EventKind, a1=gpfn, a2=heat
    XrayPingPong,       ///< a0=gpfn, a1=bounces, a2=gap ns
    XrayDecision,       ///< a0=xray::EventKind, a1/a2=kind-specific
};

constexpr std::size_t numEventTypes = 23;

/** Static description of one event type. */
struct EventTypeInfo
{
    const char *name;
    Category category;
    const char *a0, *a1, *a2; ///< argument names ("" = unused)
};

const EventTypeInfo &eventTypeInfo(EventType t);
const char *categoryName(Category single_bit);

/**
 * Install the hook that turns a SpanBegin/SpanEnd a0 value back into
 * a span name. hos::prof sits above trace, so trace cannot name
 * prof::SpanKind itself; the profiler registers its table here and
 * exporters call spanName(). Idempotent and thread-safe.
 */
void setSpanNameResolver(const char *(*resolver)(std::uint64_t));

/** Span name for a SpanBegin/SpanEnd a0, or nullptr if unresolved. */
const char *spanName(std::uint64_t kind);

/**
 * Parse a comma-separated category list ("migration,scan,balloon")
 * into a mask; "all" selects everything. Unknown names are reported
 * via warn() and skipped. Empty input means All.
 */
std::uint32_t parseCategories(const std::string &csv);

/** One trace record (fixed size; args are typed per EventType). */
struct Record
{
    sim::Tick ts = 0;       ///< sim time the event happened
    sim::Duration dur = 0;  ///< modelled cost, when the event has one
    EventType type = EventType::PageAlloc;
    std::uint16_t vm = 0;   ///< VM id (0 when single-VM / unknown)
    std::uint32_t seq = 0;  ///< tie-breaker among same-tick records
    std::uint64_t a0 = 0, a1 = 0, a2 = 0;
};

/**
 * Fixed-capacity ring buffer of trace records. Each Tracer carries its
 * own category mask; the process-wide tracer() additionally mirrors
 * its mask into detail::g_mask so the disabled fast path stays one
 * global load for code that never installs a sink.
 */
class Tracer
{
  public:
    static constexpr std::size_t defaultCapacity = 1u << 16;

    /** Enable recording for the categories in `mask`. */
    void enable(std::uint32_t mask);
    /** Stop recording (buffered records stay exportable). */
    void disable();
    std::uint32_t mask() const { return mask_; }

    /** Resize the ring (drops all buffered records). */
    void setCapacity(std::size_t capacity);
    std::size_t capacity() const { return capacity_; }

    /** Drop all buffered records and the drop/sequence counters. */
    void clear();

    /** Slow path: append one record (call through emit()). */
    void record(EventType type, sim::Tick ts, std::uint64_t a0 = 0,
                std::uint64_t a1 = 0, std::uint64_t a2 = 0,
                sim::Duration dur = 0, std::uint16_t vm = 0);

    /** Records currently buffered. */
    std::size_t size() const { return ring_.size(); }
    /** Records ever recorded (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }
    /** Records lost to ring wraparound. */
    std::uint64_t dropped() const
    {
        return recorded_ - ring_.size();
    }

    /** Visit buffered records oldest-first. */
    void forEach(const std::function<void(const Record &)> &fn) const;

  private:
    std::uint32_t mask_ = 0; ///< categories this tracer records
    std::size_t capacity_ = defaultCapacity;
    std::vector<Record> ring_;
    std::size_t head_ = 0; ///< next write position once full
    std::uint64_t recorded_ = 0;
};

/**
 * The process-wide default tracer: emit() lands here on threads with
 * no installed sink. Legacy single-run flows keep using it directly.
 */
Tracer &tracer();

namespace detail {
/**
 * Plain global mirror of the *global* tracer's category mask.
 * Constant-initialized, so the disabled-path check in emit() is one
 * relaxed load with no static-init guard — the whole point of the
 * design. Per-instance Tracers never touch it.
 */
extern std::uint32_t g_mask;

/**
 * Thread-local sink override. When non-null, emit() on this thread
 * records exclusively into it using t_mask (a mirror of the sink's
 * own mask, kept hot so the fast path never chases the pointer).
 */
extern thread_local Tracer *t_sink;
extern thread_local std::uint32_t t_mask;

/** The mask emit() filters against on this thread. */
inline std::uint32_t
effectiveMask()
{
    return t_sink ? t_mask : g_mask;
}
} // namespace detail

/** True when `c` is being recorded on this thread. */
inline bool
enabled(Category c)
{
    return (detail::effectiveMask() & static_cast<std::uint32_t>(c)) != 0;
}

/** True when any category is being recorded on this thread. */
inline bool
anyEnabled()
{
    return detail::effectiveMask() != 0;
}

/**
 * Record an event if its category is enabled. This is the only call
 * hot paths make; when tracing is off it costs a thread-local sink
 * check, one global load, and a branch.
 */
inline void
emit(EventType type, sim::Tick ts, std::uint64_t a0 = 0,
     std::uint64_t a1 = 0, std::uint64_t a2 = 0, sim::Duration dur = 0,
     std::uint16_t vm = 0)
{
    Tracer *sink = detail::t_sink;
    const std::uint32_t mask = sink ? detail::t_mask : detail::g_mask;
    if (mask == 0)
        return;
    if (!(mask & static_cast<std::uint32_t>(eventTypeInfo(type).category)))
        return;
    (sink ? *sink : tracer()).record(type, ts, a0, a1, a2, dur, vm);
}

/**
 * RAII install of a per-thread trace sink. While alive, every emit()
 * on the constructing thread records into `sink` instead of the
 * global tracer; destruction restores whatever was installed before
 * (sinks nest). A null sink is a no-op, so callers can write
 * `ScopedSink guard(tracingWanted ? &my_tracer : nullptr);`
 * unconditionally.
 */
class ScopedSink
{
  public:
    explicit ScopedSink(Tracer *sink);
    ~ScopedSink();

    ScopedSink(const ScopedSink &) = delete;
    ScopedSink &operator=(const ScopedSink &) = delete;

  private:
    Tracer *prev_sink_ = nullptr;
    std::uint32_t prev_mask_ = 0;
    bool installed_ = false;
};

} // namespace hos::trace

#endif // HOS_TRACE_TRACE_HH
