#include "trace/stats_snapshot.hh"

#include <fstream>

#include "sim/json.hh"
#include "sim/log.hh"
#include "trace/trace.hh"

namespace hos::trace {

StatsSnapshotter::StatsSnapshotter(sim::StatRegistry &registry,
                                   sim::EventQueue &queue,
                                   sim::Duration interval,
                                   std::size_t capacity)
    : registry_(registry), queue_(queue), interval_(interval),
      series_(capacity)
{
    hos_assert(interval_ > 0, "snapshot interval must be nonzero");
}

void
StatsSnapshotter::start()
{
    queue_.schedulePeriodic(interval_, [this](sim::Duration period) {
        sampleNow();
        return period;
    });
}

void
StatsSnapshotter::sampleNow()
{
    registry_.refreshAll();

    StatsSnapshot snap;
    snap.t = queue_.now();
    std::uint64_t groups = 0;
    registry_.forEach([&](sim::StatGroup &g) {
        ++groups;
        g.forEachScalar([&](const std::string &stat, double v) {
            snap.values.emplace_back(g.name() + '.' + stat, v);
        });
    });
    emit(EventType::StatsSnapshot, snap.t, series_.offered(), groups);
    sim::inform("stats snapshot %llu: %zu stats from %llu groups",
                static_cast<unsigned long long>(series_.offered()),
                snap.values.size(),
                static_cast<unsigned long long>(groups));
    series_.push(snap.t, std::move(snap));
}

void
StatsSnapshotter::writeJson(std::ostream &os) const
{
    sim::JsonWriter w(os);
    w.beginObject();
    w.kv("interval_ns", static_cast<std::uint64_t>(interval_));
    w.kv("num_snapshots",
         static_cast<std::uint64_t>(series_.values().size()));
    w.key("snapshots");
    w.beginArray();
    for (const StatsSnapshot &s : series_.values()) {
        w.beginObject();
        w.kv("t_ns", static_cast<std::uint64_t>(s.t));
        w.kv("t_ms", sim::toMilliseconds(s.t));
        w.key("stats");
        w.beginObject();
        for (const auto &[name, value] : s.values)
            w.kv(name, value);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
    hos_assert(w.balanced(), "unbalanced stats JSON");
}

bool
StatsSnapshotter::writeJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        sim::warn("cannot open stats file '%s'", path.c_str());
        return false;
    }
    writeJson(os);
    return os.good();
}

} // namespace hos::trace
