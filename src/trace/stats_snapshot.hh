/**
 * @file
 * Periodic stats snapshots: a time-series over every registered
 * StatGroup.
 *
 * gem5 pairs its counters with per-interval stat dumps; this is the
 * equivalent here. A snapshotter rides an EventQueue: every
 * `interval` of simulated time it refreshes the registry (so groups
 * sync from live subsystem state) and records every scalar statistic
 * into an in-memory time-series, exported as JSON. That is what lets
 * benches plot *convergence* — fastmem occupancy climbing, migration
 * rate decaying — rather than only end-of-run totals.
 *
 * Storage is a sim::WindowedSeries — the same bounded, stride-
 * decimating ring the hos::metrics collector samples into — so every
 * periodic sampler in the tree shares one clocking/retention
 * primitive. At the default capacity the ring holds hours of
 * simulated time before decimation engages, so existing cadence
 * behavior (one snapshot per interval) is unchanged.
 */

#ifndef HOS_TRACE_STATS_SNAPSHOT_HH
#define HOS_TRACE_STATS_SNAPSHOT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/series.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace hos::trace {

/** One sampled point-in-time view of every registered statistic. */
struct StatsSnapshot
{
    sim::Tick t = 0;
    /** "group.stat" -> value, in deterministic (sorted) order. */
    std::vector<std::pair<std::string, double>> values;
};

/** Samples a StatRegistry on a fixed sim-time cadence. */
class StatsSnapshotter
{
  public:
    /**
     * `registry` and `queue` must outlive the snapshotter. Nothing is
     * scheduled until start().
     */
    StatsSnapshotter(sim::StatRegistry &registry, sim::EventQueue &queue,
                     sim::Duration interval,
                     std::size_t capacity = 4096);

    /** Schedule the periodic sampling daemon (first sample after one
     *  interval). */
    void start();

    /** Take one snapshot immediately (also used by the daemon). */
    void sampleNow();

    sim::Duration interval() const { return interval_; }
    const std::vector<StatsSnapshot> &snapshots() const
    {
        return series_.values();
    }
    /** Samples taken (>= snapshots().size() once decimation engages). */
    std::uint64_t sampled() const { return series_.offered(); }

    /**
     * Export the time-series as JSON:
     * {"interval_ns":..., "snapshots":[{"t_ns":..., "stats":{...}}]}
     */
    void writeJson(std::ostream &os) const;

    /** As above, to a file; false when the file cannot be opened. */
    bool writeJson(const std::string &path) const;

  private:
    sim::StatRegistry &registry_;
    sim::EventQueue &queue_;
    sim::Duration interval_;
    sim::WindowedSeries<StatsSnapshot> series_;
};

} // namespace hos::trace

#endif // HOS_TRACE_STATS_SNAPSHOT_HH
