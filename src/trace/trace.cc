#include "trace/trace.hh"

#include <array>
#include <atomic>

#include "sim/log.hh"

namespace hos::trace {

namespace detail {
std::uint32_t g_mask = 0;
thread_local Tracer *t_sink = nullptr;
thread_local std::uint32_t t_mask = 0;
} // namespace detail

namespace {

constexpr std::array<EventTypeInfo, numEventTypes> kEventInfo = {{
    {"page_alloc", Category::Alloc, "page_type", "pfn", "tier"},
    {"page_free", Category::Alloc, "pfn", "tier", ""},
    {"migration_start", Category::Migration, "candidates", "dst_tier",
     ""},
    {"migration_complete", Category::Migration, "migrated", "skipped",
     "dst_tier"},
    {"hotness_scan", Category::Scan, "scanned", "accessed", "hot"},
    {"lru_reclaim", Category::Scan, "target", "freed", "scanned"},
    {"balloon_inflate", Category::Balloon, "tier", "asked",
     "surrendered"},
    {"balloon_deflate", Category::Balloon, "tier", "asked", "granted"},
    {"balloon_reclaim", Category::Balloon, "victim_vm", "tier", "freed"},
    {"swap_out", Category::Swap, "pages", "swap_used", ""},
    {"swap_in", Category::Swap, "pages", "swap_used", ""},
    {"hypercall_populate", Category::Hypercall, "guest_node", "asked",
     "granted"},
    {"hypercall_unpopulate", Category::Hypercall, "guest_node", "pages",
     ""},
    {"drf_reclaim", Category::Fairness, "victim_vm", "tier",
     "reclaimed"},
    {"device_batch", Category::Device, "loads", "stores", "bytes"},
    {"stats_snapshot", Category::Stats, "index", "groups", ""},
    {"check_failure", Category::Check, "kind", "subject", ""},
    {"span_begin", Category::Prof, "kind", "depth", ""},
    {"span_end", Category::Prof, "kind", "depth", ""},
    {"xray_hot_cross", Category::Xray, "gpfn", "heat", "threshold"},
    {"xray_move", Category::Xray, "kind", "gpfn", "heat"},
    {"xray_ping_pong", Category::Xray, "gpfn", "bounces", "gap_ns"},
    {"xray_decision", Category::Xray, "kind", "a0", "a1"},
}};

/**
 * Span-name hook registered by hos::prof (atomic: sweep workers may
 * construct profilers while another thread exports a trace).
 */
std::atomic<const char *(*)(std::uint64_t)> g_span_resolver{nullptr};

struct CategoryName
{
    const char *name;
    Category cat;
};

constexpr CategoryName kCategoryNames[] = {
    {"alloc", Category::Alloc},         {"migration", Category::Migration},
    {"scan", Category::Scan},           {"balloon", Category::Balloon},
    {"swap", Category::Swap},           {"hypercall", Category::Hypercall},
    {"fairness", Category::Fairness},   {"device", Category::Device},
    {"stats", Category::Stats},         {"check", Category::Check},
    {"prof", Category::Prof},           {"xray", Category::Xray},
};

} // namespace

const EventTypeInfo &
eventTypeInfo(EventType t)
{
    const auto i = static_cast<std::size_t>(t);
    hos_assert(i < kEventInfo.size(), "bad event type %zu", i);
    return kEventInfo[i];
}

const char *
categoryName(Category single_bit)
{
    for (const auto &e : kCategoryNames) {
        if (e.cat == single_bit)
            return e.name;
    }
    return "?";
}

void
setSpanNameResolver(const char *(*resolver)(std::uint64_t))
{
    g_span_resolver.store(resolver, std::memory_order_release);
}

const char *
spanName(std::uint64_t kind)
{
    if (auto *resolver = g_span_resolver.load(std::memory_order_acquire))
        return resolver(kind);
    return nullptr;
}

std::uint32_t
parseCategories(const std::string &csv)
{
    if (csv.empty())
        return static_cast<std::uint32_t>(Category::All);

    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        std::size_t comma = csv.find(',', pos);
        if (comma == std::string::npos)
            comma = csv.size();
        const std::string name = csv.substr(pos, comma - pos);
        pos = comma + 1;
        if (name.empty())
            continue;
        if (name == "all") {
            mask |= static_cast<std::uint32_t>(Category::All);
            continue;
        }
        bool found = false;
        for (const auto &e : kCategoryNames) {
            if (name == e.name) {
                mask |= static_cast<std::uint32_t>(e.cat);
                found = true;
                break;
            }
        }
        if (!found)
            sim::warn("unknown trace category '%s'", name.c_str());
    }
    return mask;
}

Tracer &
tracer()
{
    static Tracer t;
    return t;
}

void
Tracer::enable(std::uint32_t mask)
{
    mask_ = mask;
    // Only the global default tracer mirrors into g_mask; per-system
    // tracers reach emit() through the thread-local sink instead.
    if (this == &tracer())
        detail::g_mask = mask;
    if (detail::t_sink == this)
        detail::t_mask = mask;
    if (mask != 0 && ring_.capacity() < capacity_)
        ring_.reserve(capacity_);
}

void
Tracer::disable()
{
    mask_ = 0;
    if (this == &tracer())
        detail::g_mask = 0;
    if (detail::t_sink == this)
        detail::t_mask = 0;
}

void
Tracer::setCapacity(std::size_t capacity)
{
    hos_assert(capacity > 0, "trace ring needs capacity");
    capacity_ = capacity;
    clear();
}

void
Tracer::clear()
{
    ring_.clear();
    ring_.shrink_to_fit();
    head_ = 0;
    recorded_ = 0;
}

void
Tracer::record(EventType type, sim::Tick ts, std::uint64_t a0,
               std::uint64_t a1, std::uint64_t a2, sim::Duration dur,
               std::uint16_t vm)
{
    Record r;
    r.ts = ts;
    r.dur = dur;
    r.type = type;
    r.vm = vm;
    r.seq = static_cast<std::uint32_t>(recorded_);
    r.a0 = a0;
    r.a1 = a1;
    r.a2 = a2;
    if (ring_.size() < capacity_) {
        ring_.push_back(r);
    } else {
        // Full: overwrite the oldest record.
        ring_[head_] = r;
        head_ = (head_ + 1) % capacity_;
    }
    ++recorded_;
}

ScopedSink::ScopedSink(Tracer *sink)
{
    if (!sink)
        return;
    prev_sink_ = detail::t_sink;
    prev_mask_ = detail::t_mask;
    detail::t_sink = sink;
    detail::t_mask = sink->mask();
    installed_ = true;
}

ScopedSink::~ScopedSink()
{
    if (!installed_)
        return;
    detail::t_sink = prev_sink_;
    detail::t_mask = prev_mask_;
}

void
Tracer::forEach(const std::function<void(const Record &)> &fn) const
{
    if (ring_.size() < capacity_) {
        for (const Record &r : ring_)
            fn(r);
        return;
    }
    // Wrapped: head_ is the oldest record.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        fn(ring_[(head_ + i) % ring_.size()]);
}

} // namespace hos::trace
