/**
 * @file
 * Trace exporters: Chrome trace_event JSON and compact CSV.
 *
 * The JSON form loads directly in chrome://tracing and Perfetto
 * (https://ui.perfetto.dev): each record becomes a complete ("X")
 * event when it carries a modelled duration, or an instant ("i")
 * event otherwise, with the record's typed arguments named in
 * `args`. The CSV form is for pandas/awk-style post-processing.
 */

#ifndef HOS_TRACE_EXPORTERS_HH
#define HOS_TRACE_EXPORTERS_HH

#include <ostream>
#include <string>

#include "trace/trace.hh"

namespace hos::trace {

/** Write the buffered records as Chrome trace_event JSON. */
void writeChromeJson(const Tracer &tracer, std::ostream &os);

/** As above, to a file; false when the file cannot be opened. */
bool writeChromeJson(const Tracer &tracer, const std::string &path);

/** Write the buffered records as CSV (one header + one row each). */
void writeCsv(const Tracer &tracer, std::ostream &os);

/** As above, to a file; false when the file cannot be opened. */
bool writeCsv(const Tracer &tracer, const std::string &path);

} // namespace hos::trace

#endif // HOS_TRACE_EXPORTERS_HH
