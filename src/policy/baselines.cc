#include "policy/baselines.hh"

namespace hos::policy {

void
SlowMemOnlyPolicy::configureGuest(guestos::GuestConfig &cfg) const
{
    cfg.alloc.mode = guestos::AllocMode::SlowOnly;
    cfg.alloc.balloon_on_pressure = false;
    cfg.lru.enabled = false;
}

void
FastMemOnlyPolicy::configureGuest(guestos::GuestConfig &cfg) const
{
    cfg.alloc.mode = guestos::AllocMode::FastOnly;
    cfg.alloc.balloon_on_pressure = false;
    cfg.lru.enabled = false;
}

void
RandomPolicy::configureGuest(guestos::GuestConfig &cfg) const
{
    cfg.alloc.mode = guestos::AllocMode::Random;
    cfg.alloc.balloon_on_pressure = false;
    cfg.lru.enabled = false;
}

void
NumaPreferredPolicy::configureGuest(guestos::GuestConfig &cfg) const
{
    cfg.alloc.mode = guestos::AllocMode::FastPreferred;
    cfg.alloc.balloon_on_pressure = false;
    cfg.lru.enabled = false;
}

} // namespace hos::policy
