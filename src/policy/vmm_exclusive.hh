/**
 * @file
 * VMM-exclusive management — the HeteroVisor model (Section 2.3).
 *
 * The guest is registered heterogeneity-hidden: it sees one
 * homogeneous memory node, and all placement intelligence lives in
 * the VMM, which periodically scans the *entire* guest for hotness
 * and migrates pages by retargeting the P2M (promote hot to FastMem,
 * demote the coldest fast-backed pages to make room). No proactive
 * placement, no guest information — the paper's critique in
 * Observations 4 and 5, and the main comparison baseline.
 */

#ifndef HOS_POLICY_VMM_EXCLUSIVE_HH
#define HOS_POLICY_VMM_EXCLUSIVE_HH

#include <memory>

#include "policy/placement_policy.hh"
#include "vmm/hotness_tracker.hh"
#include "vmm/migration_engine.hh"

namespace hos::policy {

/** HeteroVisor: VMM-only tracking and migration. */
class VmmExclusivePolicy final : public ManagementPolicy
{
  public:
    explicit VmmExclusivePolicy(vmm::HotnessConfig hotness = {});

    const char *name() const override { return "VMM-exclusive"; }

    void configureGuest(guestos::GuestConfig &cfg) const override;
    void configureVm(vmm::VmConfig &cfg) const override;
    void attach(vmm::Vmm &vmm, vmm::VmId id,
                guestos::GuestKernel &kernel) override;

    const vmm::HotnessTracker *tracker() const { return tracker_.get(); }
    const vmm::MigrationEngine *engine() const { return engine_.get(); }

    /** Pages migrated by the VMM so far. */
    std::uint64_t pagesMigrated() const
    {
        return engine_ ? engine_->totalMigrated() : 0;
    }

  private:
    vmm::HotnessConfig hotness_;
    std::unique_ptr<vmm::HotnessTracker> tracker_;
    std::unique_ptr<vmm::MigrationEngine> engine_;
};

} // namespace hos::policy

#endif // HOS_POLICY_VMM_EXCLUSIVE_HH
