#include "policy/heap_io_slab_od.hh"

namespace hos::policy {

void
HeapIoSlabOdPolicy::configureGuest(guestos::GuestConfig &cfg) const
{
    cfg.alloc = guestos::heapIoSlabOdConfig();
    cfg.lru.enabled = false;
}

} // namespace hos::policy
