/**
 * @file
 * HeteroOS-coordinated: the paper's full system (Section 4).
 *
 * Everything HeteroOS-LRU does, plus guestOS-VMM coordination when
 * proactive placement alone cannot find FastMem:
 *
 *  - the guest publishes a tracking list (its anonymous VMA ranges)
 *    and an exception list (short-lived I/O, page-table, DMA pages)
 *    over a shared ring;
 *  - the VMM's hotness tracker scans only those ranges, with the
 *    Equation 1 LLC-miss-adaptive interval;
 *  - hot candidates flow back over the ring, and the *guest*
 *    migration front-end validates page state and performs the
 *    migrations, making room with HeteroOS-LRU first.
 */

#ifndef HOS_POLICY_COORDINATED_HH
#define HOS_POLICY_COORDINATED_HH

#include <memory>

#include "policy/placement_policy.hh"
#include "vmm/hotness_tracker.hh"
#include "vmm/shared_ring.hh"

namespace hos::policy {

/** Knobs for the coordinated policy (ablation hooks). */
struct CoordinatedConfig
{
    vmm::HotnessConfig hotness = defaultHotness();
    /** How often the guest republishes its tracking directives. */
    sim::Duration directive_interval = sim::milliseconds(200);
    /** Use the Equation 1 adaptive interval (ablation switch). */
    bool adaptive_interval = true;
    /** Guide the scan with guest VMA ranges (ablation switch). */
    bool os_guided = true;

    static vmm::HotnessConfig
    defaultHotness()
    {
        vmm::HotnessConfig h;
        h.interval = sim::milliseconds(100);
        h.pages_per_scan = 8192;
        // OS-guided scans touch only the tracking-list ranges and use
        // targeted invalidations instead of HeteroVisor's full-VM
        // flush storms: the per-PTE cost is roughly halved
        // (Section 4.1, "reduces the scope and cost").
        h.per_pte_ns = 350.0;
        h.adaptive = true;
        return h;
    }
};

/** The complete HeteroOS-coordinated management. */
class CoordinatedPolicy final : public ManagementPolicy
{
  public:
    explicit CoordinatedPolicy(CoordinatedConfig cfg = {});

    const char *name() const override { return "HeteroOS-coordinated"; }

    void configureGuest(guestos::GuestConfig &cfg) const override;
    void attach(vmm::Vmm &vmm, vmm::VmId id,
                guestos::GuestKernel &kernel) override;

    const vmm::HotnessTracker *tracker() const { return tracker_.get(); }

    /** Pages migrated by the guest front-end (promotions). */
    std::uint64_t pagesMigrated() const { return promoted_; }

  private:
    void publishDirectives(guestos::GuestKernel &kernel);

    CoordinatedConfig cfg_;
    vmm::SharedRing ring_;
    std::unique_ptr<vmm::HotnessTracker> tracker_;
    std::uint64_t promoted_ = 0;
};

} // namespace hos::policy

#endif // HOS_POLICY_COORDINATED_HH
