#include "policy/heap_od.hh"

namespace hos::policy {

void
HeapOdPolicy::configureGuest(guestos::GuestConfig &cfg) const
{
    cfg.alloc = guestos::heapOdConfig();
    cfg.lru.enabled = false;
}

} // namespace hos::policy
