/**
 * @file
 * Heap-IO-Slab-OD: demand-based FastMem prioritization across *all*
 * subsystems — heap, I/O page cache, buffer cache, slab, and network
 * buffers (Table 5, second increment; the paper's Observation 3).
 */

#ifndef HOS_POLICY_HEAP_IO_SLAB_OD_HH
#define HOS_POLICY_HEAP_IO_SLAB_OD_HH

#include "policy/placement_policy.hh"

namespace hos::policy {

/** On-demand placement for heap + I/O + slab page types. */
class HeapIoSlabOdPolicy final : public ManagementPolicy
{
  public:
    const char *name() const override { return "Heap-IO-Slab-OD"; }
    void configureGuest(guestos::GuestConfig &cfg) const override;
};

} // namespace hos::policy

#endif // HOS_POLICY_HEAP_IO_SLAB_OD_HH
