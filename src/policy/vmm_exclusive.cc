#include "policy/vmm_exclusive.hh"

#include "sim/log.hh"

namespace hos::policy {

VmmExclusivePolicy::VmmExclusivePolicy(vmm::HotnessConfig hotness)
    : hotness_(hotness)
{
}

void
VmmExclusivePolicy::configureGuest(guestos::GuestConfig &cfg) const
{
    // Collapse the topology: the guest sees one homogeneous node
    // covering both tiers' capacity (heterogeneity hidden).
    std::uint64_t max_bytes = 0;
    std::uint64_t initial_bytes = 0;
    for (const auto &nc : cfg.nodes) {
        max_bytes += nc.max_bytes;
        initial_bytes += nc.initial_bytes;
    }
    cfg.nodes.clear();
    guestos::GuestNodeConfig nc;
    nc.type = mem::MemType::SlowMem; // nominal; backing is the truth
    nc.max_bytes = max_bytes;
    nc.initial_bytes = initial_bytes;
    cfg.nodes.push_back(nc);

    cfg.alloc.mode = guestos::AllocMode::SlowOnly;
    cfg.alloc.balloon_on_pressure = false;
    cfg.lru.enabled = false;
}

void
VmmExclusivePolicy::configureVm(vmm::VmConfig &cfg) const
{
    cfg.hide_heterogeneity = true;
    cfg.backing_order = {mem::MemType::SlowMem, mem::MemType::FastMem};
}

void
VmmExclusivePolicy::attach(vmm::Vmm &vmm, vmm::VmId id,
                           guestos::GuestKernel &kernel)
{
    auto &vm = vmm.vm(id);
    tracker_ = vmm::makeHotnessTracker(vm, hotness_);
    engine_ = std::make_unique<vmm::MigrationEngine>(vmm);

    // The guest's view of node types is a lie; truth is the P2M.
    kernel.setBackingOracle([&vm](guestos::Gpfn pfn) {
        return vm.p2m().populated(pfn) ? vm.p2m().tierOf(pfn)
                                       : mem::MemType::SlowMem;
    });
    // Under the oracle a gpfn's tier changes behind the guest's back
    // (P2M retargets); feed every change to the residency index so
    // its per-region fast bits stay exact.
    kernel.residency().enableTierNotifications();
    vm.p2m().setChangeHook(
        [&kernel](guestos::Gpfn pfn, mem::MemType effective) {
            kernel.residency().onTierChange(pfn, effective);
        });

    // The HeteroVisor loop: scan a batch, promote hot pages (evicting
    // the coldest fast-backed pages when FastMem is full), rate-
    // limited as real migration engines are.
    kernel.events().schedulePeriodic(
        tracker_->interval(), [this, &vm](sim::Duration) {
            tracker_->adaptInterval();
            auto scan = tracker_->scanOnce();
            if (!scan.hot.empty()) {
                engine_->promoteWithEviction(
                    vm, scan.hot,
                    hotness_.promoteBudget(tracker_->interval()));
            }
            return tracker_->interval();
        });
}

} // namespace hos::policy
