#include "policy/coordinated.hh"

#include <algorithm>

#include "sim/log.hh"
#include "xray/xray.hh"

namespace hos::policy {

CoordinatedPolicy::CoordinatedPolicy(CoordinatedConfig cfg) : cfg_(cfg)
{
    cfg_.hotness.adaptive = cfg_.adaptive_interval;
}

void
CoordinatedPolicy::configureGuest(guestos::GuestConfig &cfg) const
{
    cfg.alloc = guestos::heapIoSlabOdConfig();
    cfg.alloc.active_reclaim = true;
    cfg.lru.enabled = true;
    cfg.lru.eager_io_eviction = true;
    cfg.lru.eager_unmap_demotion = true;
}

void
CoordinatedPolicy::publishDirectives(guestos::GuestKernel &kernel)
{
    vmm::TrackingDirectives d;
    // Tracking list: every anonymous VMA of every process — the
    // regions whose hotness is worth acting on. File-backed and
    // kernel pages are covered by the exception predicate instead.
    for (guestos::ProcessId pid = 0; kernel.hasProcess(pid); ++pid) {
        auto &as = kernel.process(pid);
        as.forEachVma([&](const guestos::Vma &vma) {
            if (vma.kind != guestos::VmaKind::Anon)
                return;
            d.ranges.push_back(
                vmm::TrackingRange{pid, vma.start, vma.end()});
        });
    }
    // Exception list: short-lived I/O pages (evicted eagerly by
    // HeteroOS-LRU anyway) and unmigratable page-table/DMA pages.
    d.exception = [](const guestos::PageRef &p) {
        return guestos::isShortLivedIo(p.type()) ||
               guestos::isMigrationException(p.type());
    };
    ring_.publishDirectives(std::move(d));
}

void
CoordinatedPolicy::attach(vmm::Vmm &vmm, vmm::VmId id,
                          guestos::GuestKernel &kernel)
{
    auto &vm = vmm.vm(id);
    tracker_ = vmm::makeHotnessTracker(vm, cfg_.hotness);
    if (cfg_.os_guided) {
        tracker_->guideWith(&ring_);
        publishDirectives(kernel);
        kernel.events().schedulePeriodic(
            cfg_.directive_interval,
            [this, &kernel](sim::Duration p) {
                publishDirectives(kernel);
                return p;
            });
    }

    // The coordination loop (Figure 5, steps 4-9): VMM scans under
    // guest guidance; the guest validates and migrates.
    kernel.events().schedulePeriodic(
        tracker_->interval(), [this, &kernel](sim::Duration) {
            tracker_->adaptInterval();
            auto scan = tracker_->scanOnce();

            // Step 6: hot pages into the shared ring — only pages the
            // guest placed in SlowMem are promotion candidates.
            std::vector<guestos::Gpfn> candidates;
            candidates.reserve(scan.hot.size());
            for (guestos::Gpfn pfn : scan.hot) {
                if (kernel.pageMeta(pfn).mem_type() ==
                    mem::MemType::SlowMem) {
                    candidates.push_back(pfn);
                }
            }
            ring_.pushHotPages(candidates);

            // Steps 7-9: the guest drains the ring, makes room via
            // HeteroOS-LRU, and migrates with full page-state checks,
            // under the same rate limit the VMM engine uses.
            auto hot = ring_.drainHotPages();
            const std::uint64_t budget =
                cfg_.hotness.promoteBudget(tracker_->interval());
            if (hot.size() > budget) {
                if (auto *xr = xray::active()) {
                    xr->onVmEvent(kernel.vmTag(),
                                  xray::EventKind::Throttle, 0,
                                  hot.size(), budget,
                                  kernel.events().now());
                }
                hot.resize(budget);
            }
            if (!hot.empty()) {
                auto *fast = kernel.nodeFor(mem::MemType::FastMem);
                if (fast && fast->freePages() < hot.size()) {
                    kernel.heteroLru().reclaimFastMem(hot.size() -
                                                      fast->freePages());
                }
                auto outcome = kernel.migrator().migratePages(
                    hot, mem::MemType::FastMem);
                promoted_ += outcome.migrated;
            }
            return tracker_->interval();
        });
}

} // namespace hos::policy
