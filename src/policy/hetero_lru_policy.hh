/**
 * @file
 * HeteroOS-LRU: Heap-IO-Slab-OD plus active, memory-type-aware
 * contention resolution (Table 5, third increment; Section 3.3).
 */

#ifndef HOS_POLICY_HETERO_LRU_POLICY_HH
#define HOS_POLICY_HETERO_LRU_POLICY_HH

#include "policy/placement_policy.hh"

namespace hos::policy {

/** Full guest-OS-only HeteroOS management. */
class HeteroLruPolicy final : public ManagementPolicy
{
  public:
    const char *name() const override { return "HeteroOS-LRU"; }
    void configureGuest(guestos::GuestConfig &cfg) const override;
};

} // namespace hos::policy

#endif // HOS_POLICY_HETERO_LRU_POLICY_HH
