#include "policy/hetero_lru_policy.hh"

namespace hos::policy {

void
HeteroLruPolicy::configureGuest(guestos::GuestConfig &cfg) const
{
    cfg.alloc = guestos::heapIoSlabOdConfig();
    cfg.alloc.active_reclaim = true;
    cfg.lru.enabled = true;
    cfg.lru.eager_io_eviction = true;
    cfg.lru.eager_unmap_demotion = true;
}

} // namespace hos::policy
