/**
 * @file
 * Management-policy interface.
 *
 * A ManagementPolicy bundles everything that distinguishes the
 * paper's evaluated approaches (Table 5 plus the baselines): how the
 * guest boots (node layout, allocator mode, HeteroOS-LRU switches),
 * how the VM registers with the VMM (heterogeneity hidden or not,
 * reservations), and which daemons run after boot (hotness trackers,
 * migration loops, coordination rings). One policy instance manages
 * one VM.
 */

#ifndef HOS_POLICY_PLACEMENT_POLICY_HH
#define HOS_POLICY_PLACEMENT_POLICY_HH

#include "guestos/kernel.hh"
#include "vmm/vmm.hh"

namespace hos::policy {

/** One VM's heterogeneous-memory management approach. */
class ManagementPolicy
{
  public:
    virtual ~ManagementPolicy() = default;

    virtual const char *name() const = 0;

    /** Adjust the guest's boot configuration (pre-construction). */
    virtual void configureGuest(guestos::GuestConfig &cfg) const = 0;

    /** Adjust VM registration parameters (pre-registration). */
    virtual void configureVm(vmm::VmConfig &cfg) const { (void)cfg; }

    /** Wire up daemons/oracles after the VM is registered. */
    virtual void attach(vmm::Vmm &vmm, vmm::VmId id,
                        guestos::GuestKernel &kernel)
    {
        (void)vmm;
        (void)id;
        (void)kernel;
    }
};

} // namespace hos::policy

#endif // HOS_POLICY_PLACEMENT_POLICY_HH
