/**
 * @file
 * Baseline policies: SlowMem-only, FastMem-only, Random, and
 * NUMA-preferred (the stock Linux policy of Section 5.3).
 */

#ifndef HOS_POLICY_BASELINES_HH
#define HOS_POLICY_BASELINES_HH

#include "policy/placement_policy.hh"

namespace hos::policy {

/** Naive floor: every page in SlowMem. */
class SlowMemOnlyPolicy final : public ManagementPolicy
{
  public:
    const char *name() const override { return "SlowMem-only"; }
    void configureGuest(guestos::GuestConfig &cfg) const override;
};

/** Ideal ceiling: every page in (unlimited) FastMem. */
class FastMemOnlyPolicy final : public ManagementPolicy
{
  public:
    const char *name() const override { return "FastMem-only"; }
    void configureGuest(guestos::GuestConfig &cfg) const override;
};

/** Heterogeneity-oblivious random placement (Figure 6 baseline). */
class RandomPolicy final : public ManagementPolicy
{
  public:
    const char *name() const override { return "Random"; }
    void configureGuest(guestos::GuestConfig &cfg) const override;
};

/**
 * Linux's preferred-node NUMA policy with FastMem preferred: fill
 * the fast node first, spill to slow, no type awareness beyond that.
 */
class NumaPreferredPolicy final : public ManagementPolicy
{
  public:
    const char *name() const override { return "NUMA-preferred"; }
    void configureGuest(guestos::GuestConfig &cfg) const override;
};

} // namespace hos::policy

#endif // HOS_POLICY_BASELINES_HH
