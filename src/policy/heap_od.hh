/**
 * @file
 * Heap-OD: on-demand FastMem allocation for heap pages only
 * (Table 5, first HeteroOS increment).
 */

#ifndef HOS_POLICY_HEAP_OD_HH
#define HOS_POLICY_HEAP_OD_HH

#include "policy/placement_policy.hh"

namespace hos::policy {

/** Guest-OS heterogeneity awareness + on-demand heap placement. */
class HeapOdPolicy final : public ManagementPolicy
{
  public:
    const char *name() const override { return "Heap-OD"; }
    void configureGuest(guestos::GuestConfig &cfg) const override;
};

} // namespace hos::policy

#endif // HOS_POLICY_HEAP_OD_HH
