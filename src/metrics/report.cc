#include "metrics/report.hh"

#include <cstdlib>

namespace hos::metrics {

namespace {

/**
 * Integer read of a JSON number, signed. Goes through the exact
 * source lexeme (number_text) so 64-bit values survive; the metrics
 * layer never touches floating point.
 */
std::int64_t
asI64(const sim::JsonValue &v)
{
    if (!v.isNumber() || v.number_text.empty())
        return 0;
    return std::strtoll(v.number_text.c_str(), nullptr, 10);
}

void
writeSeries(sim::JsonWriter &w, const MetricsSeries &s)
{
    w.beginObject();
    w.kv("name", s.name);
    w.kv("kind", signalKindName(s.kind));
    w.kv("stride", s.stride);
    w.kv("offered", s.offered);
    w.key("points");
    w.beginArray();
    for (const auto &[t, v] : s.points) {
        w.beginArray();
        w.value(static_cast<std::uint64_t>(t));
        w.value(v);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

void
writeHistogram(sim::JsonWriter &w, const HdrHistogram &h)
{
    w.beginObject();
    w.kv("total", h.totalCount());
    w.kv("sum", h.valueSum());
    w.kv("min", h.minValue());
    w.kv("max", h.maxValue());
    w.kv("p50", h.valueAtPermyriad(5000));
    w.kv("p90", h.valueAtPermyriad(9000));
    w.kv("p99", h.valueAtPermyriad(9900));
    w.kv("p999", h.valueAtPermyriad(9990));
    w.key("buckets");
    w.beginArray();
    for (const auto &[idx, count] : h.nonzero()) {
        w.beginArray();
        w.value(static_cast<std::uint64_t>(idx));
        w.value(count);
        w.endArray();
    }
    w.endArray();
    w.endObject();
}

bool
readSeries(const sim::JsonValue &v, MetricsSeries &out,
           std::string *error)
{
    if (!v.isObject()) {
        if (error)
            *error = "series entry must be an object";
        return false;
    }
    if (const auto *name = v.find("name"))
        out.name = name->asString();
    if (const auto *kind = v.find("kind")) {
        out.kind = kind->asString() == "rate" ? SignalKind::Rate
                                              : SignalKind::Gauge;
    }
    if (const auto *stride = v.find("stride"))
        out.stride = stride->asU64(1);
    if (const auto *offered = v.find("offered"))
        out.offered = offered->asU64();
    if (const auto *points = v.find("points")) {
        if (!points->isArray()) {
            if (error)
                *error = "series points must be an array";
            return false;
        }
        for (const auto &p : points->array) {
            if (!p.isArray() || p.array.size() != 2) {
                if (error)
                    *error = "series point must be [t_ns, value]";
                return false;
            }
            out.points.emplace_back(p.array[0].asU64(),
                                    asI64(p.array[1]));
        }
    }
    return true;
}

bool
readHistogram(const sim::JsonValue &v, HdrHistogram &out,
              std::string *error)
{
    if (!v.isObject()) {
        if (error)
            *error = "histogram must be an object";
        return false;
    }
    const auto *buckets = v.find("buckets");
    if (buckets == nullptr || !buckets->isArray()) {
        if (error)
            *error = "histogram needs a buckets array";
        return false;
    }
    std::vector<std::pair<std::size_t, std::uint64_t>> entries;
    for (const auto &b : buckets->array) {
        if (!b.isArray() || b.array.size() != 2) {
            if (error)
                *error = "histogram bucket must be [index, count]";
            return false;
        }
        const std::uint64_t idx = b.array[0].asU64();
        if (idx >= HdrHistogram::numBuckets) {
            if (error)
                *error = "histogram bucket index out of range";
            return false;
        }
        entries.emplace_back(static_cast<std::size_t>(idx),
                             b.array[1].asU64());
    }
    std::uint64_t sum = 0, min = 0, max = 0;
    if (const auto *s = v.find("sum"))
        sum = s->asU64();
    if (const auto *m = v.find("min"))
        min = m->asU64();
    if (const auto *m = v.find("max"))
        max = m->asU64();
    out.restore(entries, sum, min, max);
    return true;
}

} // namespace

void
writeMetricsReport(sim::JsonWriter &w, const MetricsReport &report)
{
    w.beginObject();
    w.kv("schema", "hos-metrics-1");
    w.kv("sample_interval_ns", report.sample_interval_ns);
    w.key("vms");
    w.beginArray();
    for (const MetricsVm &vm : report.vms) {
        w.beginObject();
        w.kv("vm", static_cast<std::uint64_t>(vm.vm));
        w.kv("samples", vm.samples);
        w.kv("phases", vm.phases);
        w.kv("windows", vm.windows);
        w.kv("actual_ns", vm.actual_ns);
        w.kv("ideal_ns", vm.ideal_ns);
        w.kv("overhead_ns", vm.overhead_ns);
        w.key("slowdown_ppm");
        writeHistogram(w, vm.slowdown);
        w.key("slowdown_series");
        writeSeries(w, vm.slowdown_series);
        w.key("series");
        w.beginArray();
        for (const MetricsSeries &s : vm.series)
            writeSeries(w, s);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

MetricsReport
metricsReportFromJson(const sim::JsonValue &v, std::string *error)
{
    MetricsReport report;
    if (!v.isObject()) {
        if (error)
            *error = "metrics report must be a JSON object";
        return {};
    }
    const auto *schema = v.find("schema");
    if (schema == nullptr || schema->asString() != "hos-metrics-1") {
        if (error)
            *error = "not a hos-metrics-1 report";
        return {};
    }
    if (const auto *interval = v.find("sample_interval_ns"))
        report.sample_interval_ns = interval->asU64();
    const auto *vms = v.find("vms");
    if (vms == nullptr || !vms->isArray()) {
        if (error)
            *error = "metrics report needs a vms array";
        return {};
    }
    for (const auto &entry : vms->array) {
        if (!entry.isObject()) {
            if (error)
                *error = "vm entry must be an object";
            return {};
        }
        MetricsVm vm;
        if (const auto *tag = entry.find("vm"))
            vm.vm = static_cast<std::uint16_t>(tag->asU64());
        if (const auto *n = entry.find("samples"))
            vm.samples = n->asU64();
        if (const auto *n = entry.find("phases"))
            vm.phases = n->asU64();
        if (const auto *n = entry.find("windows"))
            vm.windows = n->asU64();
        if (const auto *n = entry.find("actual_ns"))
            vm.actual_ns = n->asU64();
        if (const auto *n = entry.find("ideal_ns"))
            vm.ideal_ns = n->asU64();
        if (const auto *n = entry.find("overhead_ns"))
            vm.overhead_ns = n->asU64();
        if (const auto *h = entry.find("slowdown_ppm")) {
            if (!readHistogram(*h, vm.slowdown, error))
                return {};
            if (const auto *sum = h->find("sum"))
                vm.slowdown_ppm_sum = sum->asU64();
        }
        if (const auto *s = entry.find("slowdown_series")) {
            if (!readSeries(*s, vm.slowdown_series, error))
                return {};
        }
        if (const auto *arr = entry.find("series")) {
            if (!arr->isArray()) {
                if (error)
                    *error = "series must be an array";
                return {};
            }
            for (const auto &s : arr->array) {
                MetricsSeries series;
                if (!readSeries(s, series, error))
                    return {};
                vm.series.push_back(std::move(series));
            }
        }
        report.vms.push_back(std::move(vm));
    }
    return report;
}

void
mergeInto(MetricsReport &dst, const MetricsReport &src)
{
    if (dst.sample_interval_ns == 0)
        dst.sample_interval_ns = src.sample_interval_ns;
    for (const MetricsVm &svm : src.vms) {
        MetricsVm *target = nullptr;
        for (MetricsVm &dvm : dst.vms) {
            if (dvm.vm == svm.vm) {
                target = &dvm;
                break;
            }
        }
        if (target == nullptr) {
            MetricsVm fresh;
            fresh.vm = svm.vm;
            dst.vms.push_back(std::move(fresh));
            target = &dst.vms.back();
        }
        target->samples += svm.samples;
        target->phases += svm.phases;
        target->windows += svm.windows;
        target->actual_ns += svm.actual_ns;
        target->ideal_ns += svm.ideal_ns;
        target->overhead_ns += svm.overhead_ns;
        target->slowdown_ppm_sum += svm.slowdown_ppm_sum;
        target->slowdown.merge(svm.slowdown);
    }
}

void
writeMetricsCsv(std::ostream &os, const MetricsReport &report)
{
    os << "vm,series,kind,t_ns,value\n";
    const auto dump = [&os](std::uint16_t vm, const MetricsSeries &s) {
        for (const auto &[t, v] : s.points) {
            os << vm << ',' << s.name << ',' << signalKindName(s.kind)
               << ',' << t << ',' << v << '\n';
        }
    };
    for (const MetricsVm &vm : report.vms) {
        dump(vm.vm, vm.slowdown_series);
        for (const MetricsSeries &s : vm.series)
            dump(vm.vm, s);
    }
}

MetricsReport
Collector::report() const
{
    MetricsReport out;
    out.sample_interval_ns = cfg_.sample_interval;
    for (const VmMetrics &s : vms_) {
        // A VM with no samples, phases or signals recorded nothing;
        // keep the report to VMs that saw activity (mirrors xray).
        if (s.sample_count == 0 && s.phase_count == 0)
            continue;
        MetricsVm vm;
        vm.vm = s.vm;
        vm.samples = s.sample_count;
        vm.phases = s.phase_count;
        vm.windows = s.window_count;
        vm.actual_ns = s.total_actual;
        vm.ideal_ns = s.total_ideal;
        vm.overhead_ns = s.total_overhead;
        vm.slowdown_ppm_sum = s.slowdown_ppm_sum;
        vm.slowdown = s.slowdown;
        vm.slowdown_series.name = "slowdown_ppm";
        vm.slowdown_series.kind = SignalKind::Gauge;
        vm.slowdown_series.stride = s.slowdown_series.stride();
        vm.slowdown_series.offered = s.slowdown_series.offered();
        for (std::size_t i = 0; i < s.slowdown_series.size(); ++i) {
            vm.slowdown_series.points.emplace_back(
                s.slowdown_series.timeAt(i),
                s.slowdown_series.valueAt(i));
        }
        for (const Signal &sig : s.signals) {
            MetricsSeries series;
            series.name = sig.name;
            series.kind = sig.kind;
            series.stride = sig.series.stride();
            series.offered = sig.series.offered();
            for (std::size_t i = 0; i < sig.series.size(); ++i) {
                series.points.emplace_back(sig.series.timeAt(i),
                                           sig.series.valueAt(i));
            }
            vm.series.push_back(std::move(series));
        }
        out.vms.push_back(std::move(vm));
    }
    return out;
}

} // namespace hos::metrics
