#include "metrics/metrics.hh"

#include <algorithm>
#include <bit>

#include "sim/log.hh"

namespace hos::metrics {

const char *
levelName()
{
    return metricsCompiled ? "on" : "off";
}

const char *
signalKindName(SignalKind k)
{
    switch (k) {
      case SignalKind::Gauge:
        return "gauge";
      case SignalKind::Rate:
        return "rate";
    }
    return "?";
}

// --- HdrHistogram ----------------------------------------------------

std::size_t
HdrHistogram::bucketIndex(std::uint64_t v)
{
    if (v < subBucketCount)
        return static_cast<std::size_t>(v);
    const unsigned m = 63u - static_cast<unsigned>(std::countl_zero(v));
    const std::uint64_t sub = (v >> (m - subBucketBits)) & subBucketMask;
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(m - subBucketBits + 1)
         << subBucketBits) +
        sub);
}

std::uint64_t
HdrHistogram::bucketLow(std::size_t i)
{
    if (i < subBucketCount)
        return i;
    const unsigned shift =
        static_cast<unsigned>(i >> subBucketBits) - 1;
    const std::uint64_t sub = i & subBucketMask;
    return (subBucketCount + sub) << shift;
}

std::uint64_t
HdrHistogram::bucketHigh(std::size_t i)
{
    if (i < subBucketCount)
        return i;
    const unsigned shift =
        static_cast<unsigned>(i >> subBucketBits) - 1;
    return bucketLow(i) + ((1ull << shift) - 1);
}

void
HdrHistogram::record(std::uint64_t v, std::uint64_t count)
{
    if (count == 0)
        return;
    counts_[bucketIndex(v)] += count;
    total_ += count;
    sum_ += v * count;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

std::uint64_t
HdrHistogram::valueAtPermyriad(std::uint64_t q) const
{
    if (total_ == 0)
        return 0;
    // Ceil rank: the q/10000 quantile is the smallest value with at
    // least that fraction of samples at or below it.
    std::uint64_t rank = (total_ * q + 9999) / 10000;
    rank = std::max<std::uint64_t>(1, std::min(rank, total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        seen += counts_[i];
        if (seen >= rank) {
            // The bucket's upper bound, but never past the exact
            // recorded maximum (keeps P100 == maxValue()).
            return std::min(bucketHigh(i), max_);
        }
    }
    return max_;
}

void
HdrHistogram::merge(const HdrHistogram &other)
{
    for (std::size_t i = 0; i < numBuckets; ++i)
        counts_[i] += other.counts_[i];
    total_ += other.total_;
    sum_ += other.sum_;
    if (other.total_ > 0) {
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }
}

void
HdrHistogram::restore(
    const std::vector<std::pair<std::size_t, std::uint64_t>> &buckets,
    std::uint64_t sum, std::uint64_t min, std::uint64_t max)
{
    clear();
    for (const auto &[idx, count] : buckets) {
        hos_assert(idx < numBuckets, "histogram bucket out of range");
        counts_[idx] = count;
        total_ += count;
    }
    sum_ = sum;
    if (total_ > 0) {
        min_ = min;
        max_ = max;
    }
}

std::vector<std::pair<std::size_t, std::uint64_t>>
HdrHistogram::nonzero() const
{
    std::vector<std::pair<std::size_t, std::uint64_t>> out;
    for (std::size_t i = 0; i < numBuckets; ++i) {
        if (counts_[i] != 0)
            out.emplace_back(i, counts_[i]);
    }
    return out;
}

void
HdrHistogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
    sum_ = 0;
    min_ = ~std::uint64_t(0);
    max_ = 0;
}

bool
HdrHistogram::operator==(const HdrHistogram &other) const
{
    return counts_ == other.counts_ && total_ == other.total_ &&
           sum_ == other.sum_ &&
           (total_ == 0 || (min_ == other.min_ && max_ == other.max_));
}

// --- Collector -------------------------------------------------------

Collector::Collector() = default;

void
Collector::enable(MetricsConfig cfg)
{
    hos_assert(cfg.sample_interval > 0,
               "metrics sample interval must be nonzero");
    hos_assert(cfg.series_capacity >= 2,
               "metrics series capacity too small");
    enabled_ = true;
    cfg_ = cfg;
}

void
Collector::disable()
{
    enabled_ = false;
}

void
Collector::clear()
{
    vms_.clear();
}

Collector::VmMetrics &
Collector::vmState(std::uint16_t vm)
{
    for (auto &s : vms_) {
        if (s.vm == vm)
            return s;
    }
    vms_.emplace_back(vm, cfg_.series_capacity);
    return vms_.back();
}

const Collector::VmMetrics *
Collector::findVm(std::uint16_t vm) const
{
    for (const auto &s : vms_) {
        if (s.vm == vm)
            return &s;
    }
    return nullptr;
}

bool
Collector::tracks(std::uint16_t vm) const
{
    return findVm(vm) != nullptr;
}

void
Collector::registerSignal(std::uint16_t vm, std::string name,
                          SignalKind kind, SignalFn fn)
{
    hos_assert(fn != nullptr, "metrics signal needs a callback");
    VmMetrics &s = vmState(vm);
    for (const auto &sig : s.signals) {
        hos_assert(sig.name != name, "duplicate metrics signal '%s'",
                   name.c_str());
    }
    s.signals.emplace_back(std::move(name), kind, std::move(fn),
                           cfg_.series_capacity);
    // Rate signals measure flow from registration time: prime the
    // baseline so the first sample reports a delta, not a lifetime
    // total.
    Signal &sig = s.signals.back();
    if (sig.kind == SignalKind::Rate)
        sig.last = sig.fn();
}

void
Collector::onPhase(std::uint16_t vm, sim::Tick now, sim::Duration actual,
                   sim::Duration ideal, sim::Duration overhead)
{
    (void)now;
    VmMetrics &s = vmState(vm);
    s.phase_count += 1;
    s.win_actual += actual;
    s.win_ideal += ideal;
    s.total_actual += actual;
    s.total_ideal += ideal;
    s.total_overhead += overhead;
}

void
Collector::sampleVm(std::uint16_t vm, sim::Tick now)
{
    VmMetrics &s = vmState(vm);
    s.sample_count += 1;

    for (auto &sig : s.signals) {
        const std::int64_t v = sig.fn();
        if (sig.kind == SignalKind::Gauge) {
            sig.series.push(now, v);
        } else {
            const std::int64_t delta = v - sig.last;
            sig.last = v;
            sig.rate_total += delta;
            sig.series.push(now, delta);
        }
    }

    // Close the slowdown window. Windows with no guest progress
    // (ideal == 0) produce no sample: a VM that did nothing was not
    // slowed down, and 0/0 has no defensible value.
    if (s.win_ideal > 0) {
        const std::uint64_t ppm =
            (s.win_actual * ppmScale) / s.win_ideal;
        s.slowdown.record(ppm);
        s.slowdown_ppm_sum += ppm;
        s.window_count += 1;
        s.slowdown_series.push(now, static_cast<std::int64_t>(ppm));
    }
    s.win_actual = 0;
    s.win_ideal = 0;
}

std::uint64_t
Collector::samples(std::uint16_t vm) const
{
    const VmMetrics *s = findVm(vm);
    return s ? s->sample_count : 0;
}

std::uint64_t
Collector::phases(std::uint16_t vm) const
{
    const VmMetrics *s = findVm(vm);
    return s ? s->phase_count : 0;
}

std::uint64_t
Collector::windowsClosed(std::uint16_t vm) const
{
    const VmMetrics *s = findVm(vm);
    return s ? s->window_count : 0;
}

std::uint64_t
Collector::totalActualNs(std::uint16_t vm) const
{
    const VmMetrics *s = findVm(vm);
    return s ? s->total_actual : 0;
}

std::uint64_t
Collector::totalIdealNs(std::uint16_t vm) const
{
    const VmMetrics *s = findVm(vm);
    return s ? s->total_ideal : 0;
}

std::uint64_t
Collector::totalOverheadNs(std::uint16_t vm) const
{
    const VmMetrics *s = findVm(vm);
    return s ? s->total_overhead : 0;
}

std::uint64_t
Collector::slowdownPpmSum(std::uint16_t vm) const
{
    const VmMetrics *s = findVm(vm);
    return s ? s->slowdown_ppm_sum : 0;
}

const HdrHistogram *
Collector::slowdownHistogram(std::uint16_t vm) const
{
    const VmMetrics *s = findVm(vm);
    return s ? &s->slowdown : nullptr;
}

void
Collector::syncStats()
{
    for (const auto &s : vms_) {
        const std::string prefix = "vm" + std::to_string(s.vm);
        stats_.gauge(prefix + ".samples")
            .set(static_cast<std::int64_t>(s.sample_count));
        stats_.gauge(prefix + ".windows")
            .set(static_cast<std::int64_t>(s.window_count));
        stats_.gauge(prefix + ".slowdown_p50_ppm")
            .set(static_cast<std::int64_t>(
                s.slowdown.valueAtPermyriad(5000)));
        stats_.gauge(prefix + ".slowdown_p99_ppm")
            .set(static_cast<std::int64_t>(
                s.slowdown.valueAtPermyriad(9900)));
        stats_.gauge(prefix + ".overhead_ns")
            .set(static_cast<std::int64_t>(s.total_overhead));
    }
}

namespace detail {
Collector *g_active = nullptr;
thread_local Collector *t_active = nullptr;
} // namespace detail

} // namespace hos::metrics
