/**
 * @file
 * MetricsReport: the deterministic, serializable form of a Collector's
 * telemetry (schema "hos-metrics-1") embedded in core::RunRecord /
 * results.json and consumed by the hos-timeline CLI.
 *
 * Everything here is integer state; two runs of the same scenario
 * serialize byte-identically. Histograms keep their mergeable sparse
 * bucket layout so sweep aggregation and fleet rollups are
 * element-wise addition.
 */

#ifndef HOS_METRICS_REPORT_HH
#define HOS_METRICS_REPORT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "metrics/metrics.hh"
#include "sim/json.hh"

namespace hos::metrics {

/** One exported signal series. */
struct MetricsSeries
{
    std::string name;
    SignalKind kind = SignalKind::Gauge;
    std::uint64_t stride = 1;  ///< offered samples per retained point
    std::uint64_t offered = 0; ///< samples offered before decimation
    std::vector<std::pair<sim::Tick, std::int64_t>> points;
};

/** Everything recorded for one VM. */
struct MetricsVm
{
    std::uint16_t vm = 0;
    std::uint64_t samples = 0;
    std::uint64_t phases = 0;
    std::uint64_t windows = 0;
    std::uint64_t actual_ns = 0;
    std::uint64_t ideal_ns = 0;
    std::uint64_t overhead_ns = 0;
    std::uint64_t slowdown_ppm_sum = 0;
    HdrHistogram slowdown;
    MetricsSeries slowdown_series; ///< per-window slowdown (ppm)
    std::vector<MetricsSeries> series;
};

/** The full report (one entry per VM that saw any activity). */
struct MetricsReport
{
    std::uint64_t sample_interval_ns = 0;
    std::vector<MetricsVm> vms;

    bool empty() const { return vms.empty(); }
};

/**
 * Write one report as a JSON object:
 *
 *   { "schema": "hos-metrics-1", "sample_interval_ns": N,
 *     "vms": [ { "vm": N, "samples": N, "phases": N, "windows": N,
 *                "actual_ns": N, "ideal_ns": N, "overhead_ns": N,
 *                "slowdown_ppm": { "total": N, "sum": N, "min": N,
 *                                  "max": N, "p50": N, "p90": N,
 *                                  "p99": N, "p999": N,
 *                                  "buckets": [[idx, count], ...] },
 *                "slowdown_series": {...},
 *                "series": [ { "name": "...", "kind": "gauge",
 *                              "stride": N, "offered": N,
 *                              "points": [[t_ns, v], ...] }, ... ] },
 *              ... ] }
 *
 * The percentile fields are derived from the buckets at write time;
 * ordering is fixed by the Collector.
 */
void writeMetricsReport(sim::JsonWriter &w, const MetricsReport &report);

/**
 * Rebuild a report from its JSON form. Returns an empty report and
 * sets `error` (when given) on schema mismatch or malformed entries.
 */
MetricsReport metricsReportFromJson(const sim::JsonValue &v,
                                    std::string *error = nullptr);

/**
 * Merge `src` into `dst` for fleet/sweep aggregation: histograms and
 * totals accumulate per VM tag (new tags append); series are kept
 * from `dst` only (time-series do not merge across runs).
 */
void mergeInto(MetricsReport &dst, const MetricsReport &src);

/**
 * Dump every series as CSV: vm,series,kind,t_ns,value — one row per
 * retained point, in report order.
 */
void writeMetricsCsv(std::ostream &os, const MetricsReport &report);

} // namespace hos::metrics

#endif // HOS_METRICS_REPORT_HH
