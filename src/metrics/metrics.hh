/**
 * @file
 * hos::metrics — windowed time-series telemetry with deterministic
 * HDR-style percentiles and per-VM slowdown SLO reporting.
 *
 * trace says *what happened*, prof *what it cost*, xray *how good
 * placement is*; metrics says *how the run is going over time* — the
 * continuous signals a fleet operator would watch: tier occupancy,
 * migration and balloon flow, scan cost, and above all each VM's
 * slowdown relative to an ideal all-fast-tier execution (the paper's
 * headline metric, HeteroOS vs everything-in-DRAM, computed every
 * sampling window instead of once at the end).
 *
 * Three pieces:
 *
 *  1. WindowedSeries (sim/series.hh): registered signals sampled
 *     every sample_interval of simulated time into fixed-capacity
 *     rings with deterministic stride-decimation.
 *  2. HdrHistogram: a log-bucketed integer histogram (power-of-2
 *     octaves, 2^subBucketBits sub-buckets each, HdrHistogram-style)
 *     with exact integer P50/P90/P99/P99.9 queries and a mergeable
 *     layout so sweep/fleet runs aggregate percentiles across rows.
 *  3. A per-VM slowdown estimator: each workload phase reports its
 *     actual duration (cpu + placement-aware memory service + exposed
 *     I/O + drained kernel overhead) alongside the ideal duration the
 *     same phase would have cost with every access serviced by the
 *     fastest tier and zero management overhead. Every sampling
 *     window the ratio (ppm) feeds the VM's slowdown histogram.
 *
 * Design constraints mirror hos::xray:
 *  1. Zero cost compiled out: HOS_METRICS_LEVEL=0 makes active()
 *     constant-null so hook sites fold away, and enableMetrics is a
 *     no-op flag.
 *  2. Integer-only and deterministic: ticks, counts and ppm ratios;
 *     reports serialize bit-identically across runs. The hos-analyze
 *     `metrics-purity` rule bans float/double in this directory.
 *  3. Bit-identical simulation: metrics observes, it never steers.
 *     Sampling events ride the guest event queues but their actions
 *     are read-only, so metrics-on runs produce byte-identical
 *     simulation results.
 *  4. Isolation: a thread-local active collector (ScopedCollector)
 *     keeps parallel sweep points apart.
 *
 * Layering: metrics sits between trace and guestos (like prof/xray),
 * so it cannot name guestos or core types. VM ids and signal values
 * cross the boundary as integers; signal callbacks are opaque
 * std::functions registered by core.
 */

#ifndef HOS_METRICS_METRICS_HH
#define HOS_METRICS_METRICS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/series.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

#ifndef HOS_METRICS_LEVEL
#define HOS_METRICS_LEVEL 1
#endif

namespace hos::metrics {

/** Compile-time metrics level (CMake HOS_METRICS=off/on). */
constexpr int compiledLevel = HOS_METRICS_LEVEL;
/** Hooks and the collector compiled in (level >= 1). */
constexpr bool metricsCompiled = HOS_METRICS_LEVEL >= 1;

/** "off" or "on". */
const char *levelName();

/** Slowdown ratios are recorded in parts-per-million (1.0x = 1e6). */
constexpr std::uint64_t ppmScale = 1000000;

/**
 * Log-bucketed integer histogram in the HdrHistogram mold: values
 * below 2^subBucketBits index exactly; above, each power-of-2 octave
 * splits into 2^subBucketBits sub-buckets, so relative error is
 * bounded by 2^-subBucketBits everywhere. All state is integer
 * counts; merge() is element-wise addition, which makes percentiles
 * aggregatable across sweep rows and fleet members.
 */
class HdrHistogram
{
  public:
    static constexpr unsigned subBucketBits = 5;
    static constexpr std::uint64_t subBucketCount = 1ull << subBucketBits;
    static constexpr std::uint64_t subBucketMask = subBucketCount - 1;
    /** Octaves 5..63 each contribute subBucketCount buckets. */
    static constexpr std::size_t numBuckets =
        (64 - subBucketBits) * subBucketCount + subBucketCount;

    /** Bucket index of a value (deterministic, branch-light). */
    static std::size_t bucketIndex(std::uint64_t v);
    /** Largest value mapping to bucket `i` (percentile upper bound). */
    static std::uint64_t bucketHigh(std::size_t i);
    /** Smallest value mapping to bucket `i`. */
    static std::uint64_t bucketLow(std::size_t i);

    void record(std::uint64_t v, std::uint64_t count = 1);

    std::uint64_t totalCount() const { return total_; }
    /** Exact sum of every recorded value (sum-preserving: recording
     *  is lossy per-value but the aggregate sum is kept exactly). */
    std::uint64_t valueSum() const { return sum_; }
    std::uint64_t minValue() const { return total_ ? min_ : 0; }
    std::uint64_t maxValue() const { return total_ ? max_ : 0; }
    std::uint64_t countAt(std::size_t i) const { return counts_[i]; }

    /**
     * Value at the q/10000 quantile (P50 = 5000, P99.9 = 9990):
     * the upper bound of the bucket holding the ceil-rank sample,
     * clamped to the exact recorded maximum. 0 when empty.
     */
    std::uint64_t valueAtPermyriad(std::uint64_t q) const;

    /** Element-wise accumulate `other` into this histogram. */
    void merge(const HdrHistogram &other);

    /**
     * Rebuild from serialized state: sparse buckets plus the exact
     * sum/min/max (which per-bucket counts alone cannot recover).
     * Replaces the current contents.
     */
    void restore(
        const std::vector<std::pair<std::size_t, std::uint64_t>> &buckets,
        std::uint64_t sum, std::uint64_t min, std::uint64_t max);

    /** Nonzero (index, count) pairs, index ascending. */
    std::vector<std::pair<std::size_t, std::uint64_t>> nonzero() const;

    void clear();

    bool operator==(const HdrHistogram &other) const;

  private:
    std::vector<std::uint64_t> counts_ =
        std::vector<std::uint64_t>(numBuckets, 0);
    std::uint64_t total_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~std::uint64_t(0);
    std::uint64_t max_ = 0;
};

/** How a registered signal's samples enter its series. */
enum class SignalKind : std::uint8_t {
    Gauge = 0, ///< record the callback value as-is
    Rate,      ///< record the delta since the previous sample
};

const char *signalKindName(SignalKind k);

/** Integer-valued signal callback (registered by core). */
using SignalFn = std::function<std::int64_t()>;

/** Runtime knobs; every field is integer state. */
struct MetricsConfig
{
    /** Simulated time between samples (per VM). */
    sim::Duration sample_interval = sim::milliseconds(10);
    /** Ring capacity per series before stride-decimation kicks in. */
    std::uint32_t series_capacity = 512;
};

struct MetricsReport;

/**
 * The per-run collector: signal registry, sampling, and the slowdown
 * estimator. Single-threaded per instance; cross-thread isolation
 * comes from ScopedCollector, exactly like xray::ScopedRecorder.
 */
class Collector
{
  public:
    Collector();

    void enable(MetricsConfig cfg = {});
    void disable();
    bool enabled() const { return enabled_; }

    /** Drop all per-VM state, series and histograms. */
    void clear();

    const MetricsConfig &config() const { return cfg_; }

    // --- Registration (core wires the lambdas) --------------------

    /**
     * Register one named signal for `vm`. Signals are sampled in
     * registration order; names must be unique per VM. The callback
     * must be read-only with respect to simulation state — sampling
     * must never perturb the run.
     */
    void registerSignal(std::uint16_t vm, std::string name,
                        SignalKind kind, SignalFn fn);

    // --- Hooks -----------------------------------------------------

    /**
     * One workload phase completed on `vm` at sim-time `now`:
     * `actual` is the full phase duration (including `overhead`, the
     * management overhead drained from the kernel this phase);
     * `ideal` is the counterfactual duration with every memory batch
     * serviced by the fastest tier and zero management overhead.
     */
    void onPhase(std::uint16_t vm, sim::Tick now, sim::Duration actual,
                 sim::Duration ideal, sim::Duration overhead);

    /**
     * Periodic sample for `vm` (core schedules this on the VM's event
     * queue every config().sample_interval): polls every registered
     * signal into its series and closes the current slowdown window.
     * Read-only with respect to simulation state.
     */
    void sampleVm(std::uint16_t vm, sim::Tick now);

    // --- Queries (audit and tests) --------------------------------

    std::size_t numVms() const { return vms_.size(); }
    /** VM tag of the i-th tracked VM (registration order). */
    std::uint16_t vmAt(std::size_t i) const { return vms_[i].vm; }
    bool tracks(std::uint16_t vm) const;

    std::uint64_t samples(std::uint16_t vm) const;
    std::uint64_t phases(std::uint16_t vm) const;
    /** Closed slowdown windows == slowdown histogram total count. */
    std::uint64_t windowsClosed(std::uint16_t vm) const;
    std::uint64_t totalActualNs(std::uint16_t vm) const;
    std::uint64_t totalIdealNs(std::uint16_t vm) const;
    /** Management overhead folded into phases so far (drained). */
    std::uint64_t totalOverheadNs(std::uint16_t vm) const;
    /** Sum of every recorded per-window slowdown sample (ppm). */
    std::uint64_t slowdownPpmSum(std::uint16_t vm) const;
    const HdrHistogram *slowdownHistogram(std::uint16_t vm) const;

    /** The "metrics" stat group (for the snapshot machinery). */
    sim::StatGroup &stats() { return stats_; }
    /** Refresh the gauges from live state (registry refresh hook). */
    void syncStats();

    /** Flatten everything into the deterministic report form. */
    MetricsReport report() const;

  private:
    struct Signal
    {
        std::string name;
        SignalKind kind = SignalKind::Gauge;
        SignalFn fn;
        std::int64_t last = 0;        ///< value at the previous sample
        std::int64_t rate_total = 0;  ///< sum of all recorded deltas
        sim::WindowedSeries<std::int64_t> series;

        Signal(std::string n, SignalKind k, SignalFn f,
               std::size_t capacity)
            : name(std::move(n)), kind(k), fn(std::move(f)),
              series(capacity)
        {
        }
    };

    struct VmMetrics
    {
        std::uint16_t vm = 0;
        std::vector<Signal> signals;

        // Slowdown-window accumulators (cleared at each sample) and
        // monotonic run totals.
        std::uint64_t win_actual = 0;
        std::uint64_t win_ideal = 0;
        std::uint64_t total_actual = 0;
        std::uint64_t total_ideal = 0;
        std::uint64_t total_overhead = 0;
        std::uint64_t phase_count = 0;
        std::uint64_t sample_count = 0;
        std::uint64_t window_count = 0;
        std::uint64_t slowdown_ppm_sum = 0;
        HdrHistogram slowdown;
        sim::WindowedSeries<std::int64_t> slowdown_series;

        VmMetrics(std::uint16_t tag, std::size_t capacity)
            : vm(tag), slowdown_series(capacity)
        {
        }
    };

    VmMetrics &vmState(std::uint16_t vm);
    const VmMetrics *findVm(std::uint16_t vm) const;

    bool enabled_ = false;
    MetricsConfig cfg_;
    std::vector<VmMetrics> vms_;
    sim::StatGroup stats_{"metrics"};
};

namespace detail {
/** Global fallback: set when a process-wide collector is enabled. */
extern Collector *g_active;
/** Thread-local override installed by ScopedCollector. */
extern thread_local Collector *t_active;

inline Collector *
activeCollector()
{
    return t_active != nullptr ? t_active : g_active;
}
} // namespace detail

/**
 * The collector hooks should feed, or nullptr when metrics is off.
 * At HOS_METRICS_LEVEL=0 this is constant-null and every
 * `if (auto *mx = metrics::active())` hook site folds away.
 */
inline Collector *
active()
{
#if HOS_METRICS_LEVEL >= 1
    return detail::activeCollector();
#else
    return nullptr;
#endif
}

/**
 * RAII install of a per-thread active collector, mirroring
 * xray::ScopedRecorder. A null collector is a no-op.
 */
class ScopedCollector
{
  public:
    explicit ScopedCollector(Collector *c)
    {
#if HOS_METRICS_LEVEL >= 1
        if (c == nullptr)
            return;
        prev_ = detail::t_active;
        detail::t_active = c;
        installed_ = true;
#else
        (void)c;
#endif
    }
    ~ScopedCollector()
    {
#if HOS_METRICS_LEVEL >= 1
        if (installed_)
            detail::t_active = prev_;
#endif
    }

    ScopedCollector(const ScopedCollector &) = delete;
    ScopedCollector &operator=(const ScopedCollector &) = delete;

  private:
#if HOS_METRICS_LEVEL >= 1
    Collector *prev_ = nullptr;
    bool installed_ = false;
#endif
};

} // namespace hos::metrics

#endif // HOS_METRICS_METRICS_HH
