/**
 * @file
 * Kernel slab allocator (kmem caches).
 *
 * Network-intensive applications hammer the slab for skbuff data, and
 * storage-intensive ones for filesystem metadata (dentries/inodes) —
 * the paper's Figure 4 shows slab pages are a large share of Redis's
 * footprint, and prioritizing them to FastMem is one of HeteroOS's
 * placement wins (Heap-IO-Slab-OD). Object handles are (page, slot);
 * pages are pulled from the kernel allocator with PageType::Slab or
 * PageType::NetBuf so placement policy sees the distinction.
 */

#ifndef HOS_GUESTOS_SLAB_HH
#define HOS_GUESTOS_SLAB_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "guestos/page.hh"
#include "guestos/vma.hh"
#include "sim/stats.hh"

namespace hos::guestos {

/** Services the slab allocator needs from the kernel. */
class SlabBacking
{
  public:
    virtual ~SlabBacking() = default;

    virtual Gpfn allocSlabPage(PageType type, MemHint hint) = 0;
    virtual void freeSlabPage(Gpfn pfn) = 0;
    /** LRU touch when objects on the page are used. */
    virtual void touchSlabPage(Gpfn pfn) = 0;
};

/** Identifies a kmem cache. */
using SlabCacheId = std::uint32_t;

/** Handle to an allocated object. */
struct SlabObject
{
    Gpfn pfn = invalidGpfn;
    std::uint32_t slot = 0;

    bool valid() const { return pfn != invalidGpfn; }
};

/** The guest's slab allocator. */
class SlabAllocator
{
  public:
    explicit SlabAllocator(SlabBacking &backing);

    /**
     * Create a kmem cache.
     * @param page_type Slab for metadata caches, NetBuf for skbuff
     */
    SlabCacheId createCache(std::string name, std::uint32_t object_size,
                            PageType page_type = PageType::Slab);

    /** Allocate one object; invalid handle when out of memory. */
    SlabObject alloc(SlabCacheId cache, MemHint hint = MemHint::None);

    /** Free an object; empty slab pages return to the kernel. */
    void free(SlabCacheId cache, SlabObject obj);

    /** Objects per page for a cache. */
    std::uint32_t objectsPerPage(SlabCacheId cache) const;

    std::uint64_t objectsInUse(SlabCacheId cache) const;
    std::uint64_t pagesInUse(SlabCacheId cache) const;
    std::uint64_t totalPagesInUse() const;

    const std::string &cacheName(SlabCacheId cache) const;

  private:
    struct SlabPage
    {
        SlabCacheId cache;
        std::uint32_t used = 0;
        std::vector<std::uint32_t> free_slots;
    };

    struct Cache
    {
        std::string name;
        std::uint32_t object_size;
        std::uint32_t objs_per_page;
        PageType page_type;
        std::vector<Gpfn> partial; ///< pages with free slots
        std::uint64_t objects = 0;
        std::uint64_t pages = 0;
    };

    Cache &cacheRef(SlabCacheId id);
    const Cache &cacheRef(SlabCacheId id) const;

    SlabBacking &backing_;
    std::vector<Cache> caches_;
    std::unordered_map<Gpfn, SlabPage> page_meta_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_SLAB_HH
