/**
 * @file
 * HeteroOS-LRU: memory-type-aware contention resolution (Section 3.3).
 *
 * Linux's split LRU triggers on whole-system memory pressure and
 * mostly targets I/O pages. HeteroOS-LRU instead:
 *
 *  1. keeps *per-memory-type* thresholds — FastMem reclaim triggers on
 *     FastMem pressure alone;
 *  2. actively monitors active->inactive transitions and demotes
 *     inactive FastMem pages immediately rather than waiting for a
 *     usage-threshold storm;
 *  3. applies type-specific rules: pages released by munmap are
 *     marked inactive and aggressively demoted to SlowMem, and
 *     I/O page/buffer-cache pages are demoted right after their I/O
 *     completes.
 *
 * Demotion keeps pages usable (anon pages stay mapped, cache pages
 * stay cached) — only the backing tier changes — so this is eviction
 * *from FastMem*, not from memory.
 */

#ifndef HOS_GUESTOS_HETERO_LRU_HH
#define HOS_GUESTOS_HETERO_LRU_HH

#include <cstdint>
#include <vector>

#include "guestos/page.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace hos::guestos {

class GuestKernel;

/** HeteroOS-LRU policy knobs. */
struct HeteroLruConfig
{
    bool enabled = false;
    /** Rule 1: demote file pages released by munmap immediately. */
    bool eager_unmap_demotion = true;
    /** Rule 2: demote I/O cache pages when their I/O completes. */
    bool eager_io_eviction = true;
    /**
     * FastMem free-page ratios: reclaim starts below `low`, runs
     * until `high` (memory-type-specific thresholds, not the global
     * pressure trigger Linux uses).
     */
    double fast_low_ratio = 0.04;
    double fast_high_ratio = 0.08;
    /** Pages per reclaim scan batch. */
    std::uint64_t scan_batch = 512;
    /** Per-page scan cost charged as reclaim overhead. */
    double scan_cost_ns = 150.0;
};

/** Statistics of HeteroOS-LRU activity. */
struct HeteroLruStats
{
    std::uint64_t demoted_anon = 0;
    std::uint64_t demoted_cache = 0;
    std::uint64_t dropped_cache = 0;
    std::uint64_t reclaim_passes = 0;
    std::uint64_t pages_scanned = 0;
};

/** The HeteroOS-LRU engine for one guest. */
class HeteroLru
{
  public:
    HeteroLru(GuestKernel &kernel, HeteroLruConfig cfg);

    const HeteroLruConfig &config() const { return cfg_; }
    void setConfig(const HeteroLruConfig &cfg) { cfg_ = cfg; }
    const HeteroLruStats &stats() const { return stats_; }

    /**
     * Reclaim at least `target_pages` of FastMem by demoting inactive
     * pages (any subsystem, including the heap) to SlowMem. Charges
     * scan + migration overhead to the kernel. Returns pages freed.
     */
    std::uint64_t reclaimFastMem(std::uint64_t target_pages);

    /** True when the FastMem node is below its low threshold. */
    bool fastMemUnderPressure() const;

    /** Periodic maintenance: balance LRUs, honor thresholds. */
    void tick();

    /**
     * Hook: an I/O completed on these pages (rule 2). Only finished
     * (write-back) pages are eagerly demoted; fresh read fills are
     * about to be consumed.
     */
    void onIoComplete(const std::vector<Gpfn> &pages, bool writeback);

    /** Hook: file pages lost their mapping via munmap (rule 1). */
    void onUnmapRelease(const std::vector<Gpfn> &file_pages);

    /**
     * Demote one page from FastMem to SlowMem, keeping it usable.
     * Returns the pages actually freed in FastMem (0 or 1).
     */
    std::uint64_t demotePage(Gpfn pfn);

    /**
     * Stock direct reclaim (kswapd-equivalent): free pages *anywhere*
     * by dropping clean page-cache pages, writing dirty ones back
     * when nothing clean remains. Runs regardless of the HeteroOS-LRU
     * enable flag — every Linux baseline has this. Returns pages
     * freed.
     */
    std::uint64_t directReclaim(std::uint64_t target_pages);

  private:
    GuestKernel &kernel_;
    HeteroLruConfig cfg_;
    HeteroLruStats stats_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_HETERO_LRU_HH
