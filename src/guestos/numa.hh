/**
 * @file
 * Guest NUMA topology with heterogeneous-memory awareness.
 *
 * HeteroOS exposes each memory type to the guest as a NUMA node (the
 * fake-NUMA mechanism, Section 3.1) and tags the node structure with
 * the memory type — the paper's special node flag. FastMem nodes get
 * one unified zone; SlowMem nodes get DMA + Normal zones. Automatic
 * NUMA balancing is disabled for FastMem nodes (the paper disables the
 * CPU-affinity placement policies that would fight the type-aware
 * allocator).
 */

#ifndef HOS_GUESTOS_NUMA_HH
#define HOS_GUESTOS_NUMA_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "guestos/page.hh"
#include "guestos/zone.hh"
#include "mem/mem_spec.hh"

namespace hos::guestos {

/** One guest NUMA node: a memory type's gpfn range and its zones. */
class NumaNode
{
  public:
    /**
     * @param id         node id as seen by the guest
     * @param type       memory type flag (the HeteroOS node extension)
     * @param pages      the guest's page array
     * @param base       first gpfn of this node
     * @param span_pages node size in pages (maximum reservation)
     */
    NumaNode(unsigned id, mem::MemType type, PageArray &pages, Gpfn base,
             std::uint64_t span_pages);

    unsigned id() const { return id_; }
    mem::MemType memType() const { return type_; }
    Gpfn base() const { return base_; }
    std::uint64_t spanPages() const { return span_pages_; }

    std::size_t numZones() const { return zones_.size(); }
    Zone &zone(std::size_t i) { return *zones_[i]; }
    const Zone &zone(std::size_t i) const { return *zones_[i]; }

    /** Zone containing a gpfn; panics if outside the node. */
    Zone &zoneOf(Gpfn pfn)
    {
        // At most two zones per node (DMA + Normal/Unified), checked
        // newest-first: user allocations live in the last zone.
        for (auto it = zones_.rbegin(); it != zones_.rend(); ++it) {
            if ((*it)->containsGpfn(pfn))
                return **it;
        }
        zoneOfMiss(pfn);
    }

    /** The zone user allocations come from (Unified or Normal). */
    Zone &primaryZone();
    const Zone &primaryZone() const;

    bool containsGpfn(Gpfn pfn) const
    {
        return pfn >= base_ && pfn < base_ + span_pages_;
    }

    std::uint64_t freePages() const;
    std::uint64_t managedPages() const;

    /** Allocate a 2^order block from the node's zones. */
    Gpfn allocBlock(unsigned order);

    /** Free a block into whichever zone owns it. */
    void freeBlock(Gpfn pfn, unsigned order);

  private:
    [[noreturn]] void zoneOfMiss(Gpfn pfn) const;
    unsigned id_;
    mem::MemType type_;
    Gpfn base_;
    std::uint64_t span_pages_;
    std::vector<std::unique_ptr<Zone>> zones_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_NUMA_HH
