#include "guestos/balloon_frontend.hh"

#include <algorithm>

#include "guestos/kernel.hh"
#include "prof/prof.hh"
#include "sim/log.hh"
#include "trace/trace.hh"
#include "xray/xray.hh"

namespace hos::guestos {

namespace {
/** Cost of one populate/unpopulate hypercall round trip. */
constexpr double hypercallNs = 2000.0;
/** Per-page cost of P2M update plus buddy insertion. */
constexpr double perPageNs = 350.0;
} // namespace

BalloonFrontend::BalloonFrontend(GuestKernel &kernel) : kernel_(kernel)
{
    populated_.assign(kernel_.numNodes(), 0);
}

std::uint64_t
BalloonFrontend::bootPopulate(unsigned node_id, std::uint64_t pages)
{
    hos_assert(backend_ != nullptr, "balloon back-end not attached");
    if (pages == 0)
        return 0;
    auto gpfns = kernel_.takeUnpopulatedGpfns(node_id, pages);
    const std::uint64_t granted =
        backend_->populatePages(node_id, UnpopulatedView(gpfns));
    hos_assert(granted <= gpfns.size(), "back-end over-granted");

    NumaNode &node = kernel_.node(node_id);
    for (std::uint64_t i = 0; i < granted; ++i) {
        kernel_.pageMeta(gpfns[i]).setPopulated(true);
        // Boot pages arrive in ascending order; donate them in runs
        // for fast coalescing.
    }
    // Donate the granted prefix to the buddy in contiguous runs
    // (the boot path pops ascending gpfns), split at zone boundaries.
    std::uint64_t i = 0;
    while (i < granted) {
        Zone &z = node.zoneOf(gpfns[i]);
        const Gpfn zone_end = z.base() + z.spanPages();
        std::uint64_t j = i + 1;
        while (j < granted && gpfns[j] == gpfns[j - 1] + 1 &&
               gpfns[j] < zone_end) {
            ++j;
        }
        z.buddy().addFreeRange(gpfns[i], j - i);
        i = j;
    }
    if (granted < gpfns.size()) {
        kernel_.returnUnpopulatedGpfns(
            node_id, std::vector<Gpfn>(gpfns.begin() + granted,
                                       gpfns.end()));
    }
    for (std::size_t zi = 0; zi < node.numZones(); ++zi)
        node.zone(zi).updateWatermarks();
    populated_[node_id] += granted;
    return granted;
}

std::uint64_t
BalloonFrontend::requestPages(mem::MemType type, std::uint64_t pages)
{
    if (!backend_ || pages == 0)
        return 0;
    NumaNode *node = kernel_.nodeFor(type);
    if (!node)
        return 0;

    HOS_PROF_SPAN(balloon_span, prof::SpanKind::BalloonOp,
                  kernel_.events(), 0,
                  static_cast<std::uint8_t>(type));
    requested_.inc(pages);
    std::uint64_t granted = 0;
    if (legacy_path_) {
        auto gpfns = kernel_.takeUnpopulatedGpfns(node->id(), pages);
        if (gpfns.empty())
            return 0; // reservation already at the node ceiling
        granted = backend_->populatePages(node->id(),
                                          UnpopulatedView(gpfns));
        for (std::uint64_t i = 0; i < granted; ++i) {
            kernel_.pageMeta(gpfns[i]).setPopulated(true);
            Zone &z = node->zoneOf(gpfns[i]);
            z.buddy().addFreeRange(gpfns[i], 1);
        }
        if (granted < gpfns.size()) {
            kernel_.returnUnpopulatedGpfns(
                node->id(), std::vector<Gpfn>(gpfns.begin() + granted,
                                              gpfns.end()));
        }
    } else {
        // Hot path: no gpfn vector materializes. The back-end reads
        // straight off the unpopulated stack through a view, and the
        // commit settles take+return in O(1) when nothing (the DRF
        // pressure storm) or a clean prefix was granted.
        const UnpopulatedView view =
            kernel_.peekUnpopulatedGpfns(node->id(), pages);
        if (view.empty())
            return 0; // reservation already at the node ceiling
        granted = backend_->populatePages(node->id(), view);
        for (std::uint64_t i = 0; i < granted; ++i) {
            const Gpfn pfn = view[i];
            kernel_.pageMeta(pfn).setPopulated(true);
            node->zoneOf(pfn).buddy().addFreeRange(pfn, 1);
        }
        kernel_.commitUnpopulatedGpfns(node->id(), view.size(),
                                       granted);
    }
    for (std::size_t zi = 0; zi < node->numZones(); ++zi)
        node->zone(zi).updateWatermarks();
    populated_[node->id()] += granted;
    granted_.inc(granted);

    trace::emit(trace::EventType::BalloonDeflate,
                kernel_.events().now(),
                static_cast<std::uint64_t>(type), pages, granted);
    kernel_.charge(OverheadKind::Balloon,
                   static_cast<sim::Duration>(
                       hypercallNs +
                       perPageNs * static_cast<double>(granted)));
    return granted;
}

std::uint64_t
BalloonFrontend::surrenderPages(mem::MemType type, std::uint64_t pages)
{
    if (!backend_ || pages == 0)
        return 0;
    NumaNode *node = kernel_.nodeFor(type);
    if (!node)
        return 0;

    std::vector<Gpfn> victims;
    victims.reserve(pages);

    auto harvest_free = [&]() {
        while (victims.size() < pages) {
            Gpfn pfn = invalidGpfn;
            for (std::size_t zi = 0; zi < node->numZones(); ++zi) {
                pfn = node->zone(zi).buddy().removeFreePage();
                if (pfn != invalidGpfn)
                    break;
            }
            if (pfn == invalidGpfn)
                break;
            victims.push_back(pfn);
        }
    };

    // 1. Free pages first.
    kernel_.percpu().drainNode(*node);
    harvest_free();

    // 2. HeteroOS-LRU: demote inactive pages of this type's node to
    //    free more (only meaningful for FastMem).
    if (victims.size() < pages && type == mem::MemType::FastMem) {
        kernel_.heteroLru().reclaimFastMem(pages - victims.size());
        harvest_free();
    }

    // 3. Swap anonymous pages out as the last resort.
    if (victims.size() < pages) {
        std::uint64_t need = pages - victims.size();
        for (std::size_t zi = 0;
             zi < node->numZones() && need > 0; ++zi) {
            SplitLru &lru = node->zone(zi).lru();
            std::uint64_t swapped = 0;
            lru.scanInactive(need * 4, [&](PageRef &p) {
                if (p.type() != PageType::Anon || swapped >= need)
                    return false;
                if (p.owner_process() == noProcess ||
                    !kernel_.hasProcess(p.owner_process())) {
                    return false;
                }
                AddressSpace &as = kernel_.process(p.owner_process());
                auto mapped = as.translate(p.vaddr());
                if (!mapped || *mapped != p.pfn())
                    return false;
                as.pageTable().unmap(p.vaddr());
                p.setOwnerProcess(noProcess);
                if (auto *xr = xray::active()) {
                    xr->onTransition(kernel_.vmTag(), p.pfn(),
                                     xray::EventKind::SwapOut,
                                     kernel_.events().now());
                }
                kernel_.freePage(p.pfn());
                ++swapped;
                return true;
            });
            if (swapped > 0) {
                HOS_PROF_SPAN(swap_span, prof::SpanKind::SwapOp,
                              kernel_.events(), 0,
                              static_cast<std::uint8_t>(type));
                kernel_.charge(OverheadKind::Swap,
                               kernel_.swap().swapOut(swapped));
                need -= std::min(need, swapped);
            } else {
                break;
            }
        }
        harvest_free();
    }

    // Hand the harvested frames back.
    for (Gpfn pfn : victims)
        kernel_.pageMeta(pfn).setPopulated(false);
    backend_->unpopulatePages(node->id(), victims);
    kernel_.returnUnpopulatedGpfns(node->id(), victims);
    populated_[node->id()] -= victims.size();
    surrendered_.inc(victims.size());

    for (std::size_t zi = 0; zi < node->numZones(); ++zi)
        node->zone(zi).updateWatermarks();

    trace::emit(trace::EventType::BalloonInflate,
                kernel_.events().now(),
                static_cast<std::uint64_t>(type), pages,
                victims.size());
    if (auto *xr = xray::active()) {
        xr->onVmEvent(kernel_.vmTag(), xray::EventKind::BalloonOut, 0,
                      victims.size(), pages, kernel_.events().now());
    }
    kernel_.charge(OverheadKind::Balloon,
                   static_cast<sim::Duration>(
                       hypercallNs +
                       perPageNs * static_cast<double>(victims.size())));
    return victims.size();
}

std::uint64_t
BalloonFrontend::populated(unsigned node_id) const
{
    hos_assert(node_id < populated_.size(), "bad node id");
    return populated_[node_id];
}

} // namespace hos::guestos
