/**
 * @file
 * Four-level page table (x86-64 style).
 *
 * Real tables matter here: the VMM's hotness tracker harvests PTE
 * accessed bits by scanning these structures (Section 2.3), the
 * migration path remaps live PTEs, and page-table pages themselves
 * are a tracked page type (Figure 4). Entries are packed 64-bit words
 * holding a frame/child number plus present/rw/accessed/dirty bits.
 */

#ifndef HOS_GUESTOS_PAGE_TABLE_HH
#define HOS_GUESTOS_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "guestos/page.hh"

namespace hos::guestos {

/** Decoded view of a leaf PTE. */
struct PteView
{
    Gpfn pfn = invalidGpfn;
    bool writable = false;
    bool accessed = false;
    bool dirty = false;
};

/**
 * A 4-level, 9-bits-per-level page table covering a 48-bit virtual
 * address space with 4 KiB leaves.
 */
class PageTable
{
  public:
    static constexpr unsigned levels = 4;
    static constexpr unsigned bitsPerLevel = 9;
    static constexpr unsigned entriesPerNode = 1u << bitsPerLevel;
    static constexpr std::uint64_t vaSpan =
        1ull << (levels * bitsPerLevel + mem::pageShift);

    /**
     * Called when a table node is allocated (+1) or the table is
     * destroyed (-count) so the kernel can account PageTable pages.
     */
    using TableAccounting = std::function<void(std::int64_t delta)>;

    explicit PageTable(TableAccounting accounting = {});
    ~PageTable();

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Map vaddr -> pfn. Panics if already mapped (no overmap). */
    void map(std::uint64_t vaddr, Gpfn pfn, bool writable);

    /** Unmap; returns the pfn that was mapped, or nullopt. */
    std::optional<Gpfn> unmap(std::uint64_t vaddr);

    /** Look up a leaf translation. */
    std::optional<PteView> lookup(std::uint64_t vaddr) const;

    /** True if a leaf mapping exists. */
    bool isMapped(std::uint64_t vaddr) const;

    /**
     * Simulate a hardware access: set the accessed (and optionally
     * dirty) bit. Returns false if unmapped (page fault).
     */
    bool touch(std::uint64_t vaddr, bool write);

    /** Change the frame a vaddr points to (migration remap). */
    bool remap(std::uint64_t vaddr, Gpfn new_pfn);

    /**
     * Scan leaf PTEs in [va_lo, va_hi), invoking
     * visit(vaddr, PteView) for each present entry, stopping after
     * `max_visits` entries. When `clear_accessed` is set, accessed
     * bits are reset after being reported — exactly what software
     * hotness tracking does, which is why the caller must also charge
     * a TLB flush.
     *
     * @return number of PTE slots visited (present entries), used for
     *         scan cost accounting and scan-cursor resumption.
     */
    std::uint64_t scanRange(
        std::uint64_t va_lo, std::uint64_t va_hi,
        const std::function<void(std::uint64_t, const PteView &)> &visit,
        bool clear_accessed,
        std::uint64_t max_visits = ~std::uint64_t(0));

    /** Present leaf mappings. */
    std::uint64_t mappedPages() const { return mapped_; }

    /** Table nodes allocated (each is one PageTable-type page). */
    std::uint64_t tableNodes() const { return node_count_; }

  private:
    struct Node
    {
        std::array<std::uint64_t, entriesPerNode> slots{};
        std::uint16_t used = 0;
    };

    static unsigned levelIndex(std::uint64_t vaddr, unsigned level);
    Node *childOf(const Node &n, unsigned idx) const;
    Node *ensureChild(Node &n, unsigned idx);
    std::uint64_t *leafSlot(std::uint64_t vaddr) const;
    Node *leafNode(std::uint64_t vaddr) const;

    std::uint64_t scanNode(Node &node, unsigned level,
                           std::uint64_t va_base, std::uint64_t va_lo,
                           std::uint64_t va_hi,
                           const std::function<void(std::uint64_t,
                                                    const PteView &)> &visit,
                           bool clear_accessed, std::uint64_t max_visits);

    TableAccounting accounting_;
    std::unique_ptr<Node> root_;
    /**
     * Owns every non-root node. Slots still hold encoded raw child
     * pointers (they model packed PTEs), but lifetime lives here, not
     * in a hand-rolled destructor recursion.
     */
    std::vector<std::unique_ptr<Node>> node_pool_;
    std::uint64_t mapped_ = 0;
    std::uint64_t node_count_ = 0;

    /**
     * One-entry translation cache: the last level-1 node reached by a
     * walk, tagged by vaddr >> (pageShift + bitsPerLevel). Nodes are
     * never reclaimed while the table lives (unmap only clears leaf
     * slots), so a hit can never be stale. Accesses cluster within a
     * 2 MiB leaf span, which makes the upper three levels of most
     * walks redundant.
     */
    mutable std::uint64_t leaf_tag_ = ~std::uint64_t(0);
    mutable Node *leaf_node_ = nullptr;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_PAGE_TABLE_HH
