/**
 * @file
 * Per-CPU free page lists, multi-dimensional by memory type.
 *
 * Linux keeps a per-CPU list of order-0 pages so hot allocations skip
 * the buddy allocator. Those lists assume a single memory type;
 * HeteroOS redesigns them as arrays of lists indexed by (cpu, node)
 * so that a FastMem allocation never has to drain a SlowMem cache or
 * vice versa (Section 3.1, "Extending page allocators and per-CPU
 * free list"). bench_ablation_percpu measures the fast-path win.
 */

#ifndef HOS_GUESTOS_PERCPU_LISTS_HH
#define HOS_GUESTOS_PERCPU_LISTS_HH

#include <cstdint>
#include <vector>

#include "guestos/numa.hh"
#include "guestos/page.hh"
#include "sim/stats.hh"

namespace hos::guestos {

/** Per-(cpu, node) caches of order-0 pages. */
class PerCpuPageLists
{
  public:
    /**
     * @param batch pages pulled from the buddy per refill
     * @param high  watermark above which frees drain back to the buddy
     */
    PerCpuPageLists(PageArray &pages, unsigned cpus, unsigned nodes,
                    unsigned batch = 32, unsigned high = 96);

    unsigned cpus() const { return cpus_; }
    unsigned nodes() const { return nodes_; }

    /**
     * Fast-path allocation from cpu's cache for `node`; refills one
     * batch from the node's buddy when empty. invalidGpfn when the
     * buddy is also empty.
     */
    Gpfn alloc(unsigned cpu, NumaNode &node);

    /**
     * Fast-path free into cpu's cache; drains half the cache back to
     * the buddy above the high watermark.
     */
    void free(unsigned cpu, NumaNode &node, Gpfn pfn);

    /** Return every cached page of `node` to its buddy. */
    void drainNode(NumaNode &node);

    std::uint64_t cached(unsigned cpu, unsigned node) const;
    std::uint64_t totalCached() const;

    /**
     * Pages cached for one node across all CPUs. O(1): watermark
     * checks consult this on every allocation, so the per-node total
     * is maintained incrementally rather than summed over CPUs.
     */
    std::uint64_t cachedOnNode(unsigned node) const
    {
        hos_assert(node < nodes_, "bad node id");
        return cached_per_node_[node];
    }

    std::uint64_t fastPathHits() const { return hits_.value(); }
    std::uint64_t refills() const { return refills_.value(); }

    /** Read-only view of one (cpu, node) cache (audit walkers). */
    const PageList &cacheList(unsigned cpu, unsigned node) const
    {
        return listFor(cpu, node);
    }

  private:
    PageList &listFor(unsigned cpu, unsigned node);
    const PageList &listFor(unsigned cpu, unsigned node) const;

    PageArray &pages_;
    unsigned cpus_;
    unsigned nodes_;
    unsigned batch_;
    unsigned high_;
    std::vector<PageList> lists_;
    std::vector<std::uint64_t> cached_per_node_;
    sim::Counter hits_;
    sim::Counter refills_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_PERCPU_LISTS_HH
