/**
 * @file
 * Page-use categories tracked by the guest OS.
 *
 * HeteroOS's central insight (Observation 3 / Principle 2) is that the
 * guest OS knows *what a page is for* — heap, I/O page cache, buffer
 * cache, slab, network buffer, page table — and that this information
 * should drive placement across memory tiers. These categories mirror
 * Figure 4 of the paper.
 */

#ifndef HOS_GUESTOS_PAGE_TYPES_HH
#define HOS_GUESTOS_PAGE_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace hos::guestos {

/** What a guest page is currently used for. */
enum class PageType : std::uint8_t {
    Free = 0,     ///< on a free list
    Anon,         ///< heap / anonymous mappings
    PageCache,    ///< file-backed I/O page cache
    BufferCache,  ///< filesystem buffer / journal blocks
    Slab,         ///< kernel slab (dentries, inodes, skbuff backing)
    NetBuf,       ///< network send/receive buffers (skbuff data)
    PageTable,    ///< page-table pages (exception-listed for migration)
    Dma,          ///< DMA-mapped pages (never migratable)
};

constexpr std::size_t numPageTypes = 8;

/** Printable name for a page type. */
constexpr const char *
pageTypeName(PageType t)
{
    switch (t) {
      case PageType::Free:
        return "free";
      case PageType::Anon:
        return "heap/anon";
      case PageType::PageCache:
        return "io-cache";
      case PageType::BufferCache:
        return "buffer-cache";
      case PageType::Slab:
        return "slab";
      case PageType::NetBuf:
        return "nw-buff";
      case PageType::PageTable:
        return "pagetable";
      case PageType::Dma:
        return "dma";
    }
    return "?";
}

/** Index helper for per-type arrays. */
constexpr std::size_t
pageTypeIndex(PageType t)
{
    return static_cast<std::size_t>(t);
}

/** Page types the VMM must never migrate (paper §4.1 exception list). */
constexpr bool
isMigrationException(PageType t)
{
    return t == PageType::PageTable || t == PageType::Dma;
}

/**
 * Short-lived I/O page types: released once the I/O completes, so
 * tracking them for hotness is wasted work (exception list) and
 * HeteroOS-LRU evicts them from FastMem eagerly after I/O.
 */
constexpr bool
isShortLivedIo(PageType t)
{
    return t == PageType::PageCache || t == PageType::BufferCache ||
           t == PageType::NetBuf;
}

} // namespace hos::guestos

#endif // HOS_GUESTOS_PAGE_TYPES_HH
