/**
 * @file
 * Memory zones.
 *
 * Linux statically splits each NUMA node into DMA / Normal / HighMem
 * zones. HeteroOS (Section 3.1) gives FastMem nodes a *single unified
 * zone* where both user and kernel pages can be allocated, to conserve
 * the scarce fast capacity; SlowMem nodes keep the conventional
 * DMA + Normal split. A zone bundles a buddy allocator, a split LRU,
 * and Linux-style min/low/high watermarks.
 */

#ifndef HOS_GUESTOS_ZONE_HH
#define HOS_GUESTOS_ZONE_HH

#include <cstdint>
#include <string>

#include "guestos/buddy_allocator.hh"
#include "guestos/lru.hh"
#include "guestos/page.hh"

namespace hos::guestos {

/** Zone roles. */
enum class ZoneKind : std::uint8_t {
    Unified, ///< FastMem: single zone for user + kernel pages
    Normal,  ///< general-purpose zone
    Dma,     ///< low-memory DMA zone
};

const char *zoneKindName(ZoneKind k);

/** One zone: a gpfn range with its allocator, LRU, and watermarks. */
class Zone
{
  public:
    Zone(PageArray &pages, ZoneKind kind, Gpfn base,
         std::uint64_t span_pages);

    ZoneKind kind() const { return kind_; }
    Gpfn base() const { return buddy_.base(); }
    std::uint64_t spanPages() const { return buddy_.spanPages(); }

    BuddyAllocator &buddy() { return buddy_; }
    const BuddyAllocator &buddy() const { return buddy_; }
    SplitLru &lru() { return lru_; }
    const SplitLru &lru() const { return lru_; }

    std::uint64_t freePages() const { return buddy_.freePages(); }
    std::uint64_t managedPages() const { return buddy_.managedPages(); }

    bool containsGpfn(Gpfn pfn) const
    {
        return pfn >= base() && pfn < base() + spanPages();
    }

    /** Recompute watermarks from the managed page count. */
    void updateWatermarks();

    std::uint64_t watermarkMin() const { return wmark_min_; }
    std::uint64_t watermarkLow() const { return wmark_low_; }
    std::uint64_t watermarkHigh() const { return wmark_high_; }

    bool belowMin() const { return freePages() < wmark_min_; }
    bool belowLow() const { return freePages() < wmark_low_; }
    bool belowHigh() const { return freePages() < wmark_high_; }

  private:
    ZoneKind kind_;
    BuddyAllocator buddy_;
    SplitLru lru_;
    std::uint64_t wmark_min_ = 0;
    std::uint64_t wmark_low_ = 0;
    std::uint64_t wmark_high_ = 0;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_ZONE_HH
