/**
 * @file
 * The HeteroOS page allocator: demand-based FastMem prioritization.
 *
 * This is the paper's central guest-OS mechanism (Section 3.2).
 * Instead of Linux's static heap-first priority, the allocator tracks
 * per-page-type allocation demand in short epochs (100 ms by default):
 * total requests, FastMem hits, FastMem misses. When FastMem is
 * plentiful, any eligible page type allocates from it on demand
 * (avoiding migrations entirely); under contention, the type with the
 * highest recent miss ratio wins, and HeteroOS-LRU is invoked to evict
 * inactive FastMem pages of any other subsystem.
 *
 * The same class implements the evaluation baselines through
 * AllocMode: SlowOnly/FastOnly (the paper's floors/ceilings), Random,
 * and FastPreferred (the existing Linux NUMA-preferred policy).
 */

#ifndef HOS_GUESTOS_HETERO_ALLOCATOR_HH
#define HOS_GUESTOS_HETERO_ALLOCATOR_HH

#include <array>
#include <cstdint>

#include "guestos/page.hh"
#include "guestos/vma.hh"
#include "mem/mem_spec.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace hos::guestos {

class GuestKernel;

/** Placement strategy the allocator runs. */
enum class AllocMode : std::uint8_t {
    SlowOnly,      ///< baseline: everything in SlowMem
    FastOnly,      ///< baseline: everything in FastMem (unlimited)
    Random,        ///< heterogeneity-oblivious random placement
    FastPreferred, ///< Linux NUMA-preferred: FastMem until exhausted
    OnDemand,      ///< HeteroOS demand-based prioritization
};

const char *allocModeName(AllocMode m);

/** Allocator policy knobs (set by the policy layer). */
struct AllocConfig
{
    AllocMode mode = AllocMode::OnDemand;
    /** Page types allowed to claim FastMem on demand (OD modes). */
    std::array<bool, numPageTypes> od_eligible{};
    /** Invoke HeteroOS-LRU reclaim when FastMem runs dry. */
    bool active_reclaim = false;
    /** Ask the balloon for more FastMem before falling back. */
    bool balloon_on_pressure = true;
    /** Honor application mmap hints. */
    bool honor_hints = true;
    /** Demand-statistics window (paper: 100 ms, configurable). */
    sim::Duration epoch = sim::milliseconds(100);

    /** Convenience: mark types FastMem-eligible. */
    void makeEligible(std::initializer_list<PageType> types)
    {
        for (PageType t : types)
            od_eligible[pageTypeIndex(t)] = true;
    }
};

/** Heap-OD eligibility (on-demand heap only). */
AllocConfig heapOdConfig();
/** Heap-IO-Slab-OD eligibility (heap + IO caches + slab + netbuf). */
AllocConfig heapIoSlabOdConfig();

/** One page-allocation request. */
struct AllocRequest
{
    PageType type = PageType::Anon;
    MemHint hint = MemHint::None;
    unsigned cpu = 0;
    ProcessId process = noProcess;
    std::uint64_t vaddr = 0;
};

/** Per-page-type demand statistics for one epoch window. */
struct DemandWindow
{
    std::uint64_t requests = 0;
    std::uint64_t fast_hits = 0;
    std::uint64_t fast_misses = 0;

    double missRatio() const
    {
        return requests ? static_cast<double>(fast_misses) /
                              static_cast<double>(requests)
                        : 0.0;
    }
};

/** The HeteroOS page allocator. */
class HeteroAllocator
{
  public:
    HeteroAllocator(GuestKernel &kernel, AllocConfig cfg,
                    std::uint64_t seed);

    const AllocConfig &config() const { return cfg_; }
    void setConfig(const AllocConfig &cfg) { cfg_ = cfg; }

    /** Allocate one page; invalidGpfn when the guest is truly full. */
    Gpfn allocPage(const AllocRequest &req);

    /** Free a page back to its node (via the per-CPU cache). */
    void freePage(Gpfn pfn, unsigned cpu = 0);

    /** Rotate the demand window (call every cfg.epoch). */
    void rotateEpoch();

    /** Last completed window's miss ratio for a type. */
    double windowMissRatio(PageType t) const;

    /** Highest last-window miss ratio across eligible types. */
    double maxWindowMissRatio() const;

    /** Cumulative FastMem allocation miss ratio over all requests. */
    double overallFastMissRatio() const;

    /** Cumulative per-type allocation count (Figure 4 accounting). */
    std::uint64_t allocCount(PageType t) const
    {
        return total_allocs_[pageTypeIndex(t)].value();
    }

    std::uint64_t totalRequests() const { return total_requests_.value(); }
    std::uint64_t totalFastMisses() const
    {
        return total_fast_misses_.value();
    }

  private:
    /** Pick the node to try first; may trigger balloon/reclaim. */
    unsigned chooseNode(const AllocRequest &req);

    /** True if `t` currently deserves FastMem under contention. */
    bool deservesFastMem(PageType t) const;

    GuestKernel &kernel_;
    AllocConfig cfg_;
    sim::Rng rng_;
    std::uint64_t pressure_allocs_ = 0;
    std::uint64_t oom_strikes_ = 0;

    std::array<DemandWindow, numPageTypes> window_;
    std::array<DemandWindow, numPageTypes> prev_window_;
    std::array<sim::Counter, numPageTypes> total_allocs_;
    sim::Counter total_requests_;
    sim::Counter total_fast_misses_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_HETERO_ALLOCATOR_HH
