/**
 * @file
 * ResidencyIndex: incremental per-region per-tier residency accounting.
 *
 * The workload engine historically re-derived tier placement every
 * phase by sampling: probe up to 512 region indices, chase each index
 * through the (possibly stale) cached gpfn, the page descriptor, and
 * the backing oracle. That re-derivation is pure waste — the
 * allocator, migration front-end/engine, ballooning, and swap paths
 * already know every placement change at the instant it happens (the
 * same transition points hos::check's page-state validators
 * instrument).
 *
 * This index turns those transitions into O(1) updates of per-region
 * state so the per-phase pipeline reads placement instead of
 * re-deriving it:
 *
 *  - `bound[idx]` — the gpfn currently backing region index `idx`,
 *    maintained with exactly the legacy `Workload::regionPage`
 *    refresh semantics (see below), so a region-index lookup is one
 *    vector read instead of descriptor checks + page-table walks.
 *  - one bit per index — whether that binding is FastMem-backed —
 *    plus a running `fast_total`, so `sampleFastFraction` windows are
 *    answered by masked popcounts (exhaustive windows) or single bit
 *    probes (sparse sampling), bit-identically to the legacy probes.
 *
 * Binding invariant (mirrors legacy regionPage): index `idx` of a
 * region at `vma_start` corresponds to va = vma_start + idx*pageSize.
 * When that va is remapped (migration, demotion), the binding is
 * re-pointed eagerly via onRemap(). When the va is *unmapped*
 * (balloon swap-out), the binding deliberately keeps the stale gpfn —
 * the legacy code's translate() refresh fails for unmapped vas and
 * keeps the cached gpfn too, and no refault path re-populates the va
 * before the region is released. Eager rebind is therefore
 * observationally identical to the legacy lazy refresh: nothing reads
 * a binding between a transition and its next use.
 *
 * Tier state per binding comes from GuestKernel::backingOf. In
 * identity mode (no backing oracle) a binding's tier is fixed by its
 * gpfn, so remap hooks alone keep the bits exact. Under a
 * VMM-exclusive oracle the *same gpfn* changes tier behind the
 * guest's back (P2M retarget); enableTierNotifications() builds a
 * gpfn -> (region, idx) reverse map so P2M change hooks can flip bits
 * via onTierChange().
 *
 * check::auditResidency re-derives every binding and bit from first
 * principles (the legacy sampling rule, exhaustively) and is wired
 * into the full-level audits as the optimized-vs-legacy cross-check.
 */

#ifndef HOS_GUESTOS_RESIDENCY_HH
#define HOS_GUESTOS_RESIDENCY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "guestos/page.hh"
#include "sim/log.hh"

namespace hos::guestos {

class GuestKernel;

/** Handle naming a registered region (index into the region table). */
using RegionHandle = std::uint32_t;
constexpr RegionHandle invalidRegionHandle = ~RegionHandle(0);

class ResidencyIndex
{
  public:
    explicit ResidencyIndex(GuestKernel &kernel) : kernel_(kernel) {}

    // --- Registration ---------------------------------------------
    /** Register an (empty) anon region; pages arrive via appendPage. */
    RegionHandle registerRegion(ProcessId pid, std::uint64_t vma_start);

    /** Drop a region (munmap'd); its handle may be recycled. */
    void unregisterRegion(RegionHandle h);

    /** Region index bound.size() is now backed by `pfn`. */
    void appendPage(RegionHandle h, Gpfn pfn);

    // --- Transition hooks -----------------------------------------
    /**
     * va of process `pid` was remapped to `new_pfn` (migration,
     * demotion). No-op when no registered region covers the va.
     */
    void onRemap(ProcessId pid, std::uint64_t vaddr, Gpfn new_pfn);

    /**
     * The effective backing tier of `pfn` changed (P2M set/clear
     * under a VMM-exclusive oracle). Only meaningful after
     * enableTierNotifications().
     */
    void onTierChange(Gpfn pfn, mem::MemType effective);

    /**
     * Build and maintain the gpfn -> (region, idx) reverse map so
     * onTierChange can find affected bindings. Called by policies
     * that install a backing oracle.
     */
    void enableTierNotifications();
    bool tierNotificationsEnabled() const { return tier_notify_; }

    // --- Queries ---------------------------------------------------
    std::uint64_t pageCount(RegionHandle h) const
    {
        return rec(h).bound.size();
    }

    /** The gpfn bound to region index `idx` (legacy regionPage). */
    Gpfn binding(RegionHandle h, std::uint64_t idx) const
    {
        const RegionRec &r = rec(h);
        hos_assert(idx < r.bound.size(), "residency index out of range");
        return r.bound[idx];
    }

    /** True when index `idx`'s binding is FastMem-backed. */
    bool fastBit(RegionHandle h, std::uint64_t idx) const
    {
        const RegionRec &r = rec(h);
        hos_assert(idx < r.bound.size(), "residency index out of range");
        return (r.bits[idx >> 6] >> (idx & 63)) & 1;
    }

    /** FastMem-backed count over the whole region. */
    std::uint64_t fastTotal(RegionHandle h) const
    {
        return rec(h).fast_total;
    }

    /**
     * FastMem-backed count over the circular window of `count`
     * indices starting at `start` (start < pageCount, count <=
     * pageCount). Masked popcounts, O(count/64).
     */
    std::uint64_t fastInRange(RegionHandle h, std::uint64_t start,
                              std::uint64_t count) const;

    // --- Audit access ----------------------------------------------
    std::size_t regionTableSize() const { return regions_.size(); }
    bool regionLive(RegionHandle h) const
    {
        return h < regions_.size() && regions_[h].live;
    }
    ProcessId regionPid(RegionHandle h) const { return rec(h).pid; }
    std::uint64_t regionVmaStart(RegionHandle h) const
    {
        return rec(h).vma_start;
    }

  private:
    struct RegionRec
    {
        ProcessId pid = noProcess;
        std::uint64_t vma_start = 0;
        bool live = false;
        std::vector<Gpfn> bound;          ///< gpfn per region index
        std::vector<std::uint64_t> bits;  ///< FastMem bit per index
        std::uint64_t fast_total = 0;
    };

    const RegionRec &rec(RegionHandle h) const
    {
        hos_assert(h < regions_.size() && regions_[h].live,
                   "bad residency region handle");
        return regions_[h];
    }
    RegionRec &rec(RegionHandle h)
    {
        hos_assert(h < regions_.size() && regions_[h].live,
                   "bad residency region handle");
        return regions_[h];
    }

    void setBit(RegionRec &r, std::uint64_t idx, bool fast);
    void observe(RegionHandle h, std::uint64_t idx, Gpfn pfn);
    void unobserve(RegionHandle h, std::uint64_t idx, Gpfn pfn);

    GuestKernel &kernel_;
    std::vector<RegionRec> regions_;
    std::vector<RegionHandle> free_handles_;
    /** Live region handles per process (onRemap lookup). */
    std::unordered_map<ProcessId, std::vector<RegionHandle>> by_pid_;
    /** gpfn -> bindings, maintained only when tier_notify_. */
    std::unordered_multimap<Gpfn, std::pair<RegionHandle, std::uint32_t>>
        observers_;
    bool tier_notify_ = false;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_RESIDENCY_HH
