/**
 * @file
 * Linux-style split active/inactive page LRU.
 *
 * Each zone keeps two approximate-LRU lists. New pages enter the
 * inactive list; a page touched while inactive gets its software
 * referenced bit set, and a second touch promotes it to active
 * (two-touch promotion, as in Linux). Reclaim scans from the inactive
 * tail with second-chance rotation. HeteroOS-LRU (hetero_lru.hh)
 * builds its memory-type-aware replacement on top of these primitives.
 */

#ifndef HOS_GUESTOS_LRU_HH
#define HOS_GUESTOS_LRU_HH

#include <cstdint>
#include <functional>

#include "guestos/page.hh"
#include "sim/stats.hh"

namespace hos::guestos {

/** Split active/inactive LRU over one zone's pages. */
class SplitLru
{
  public:
    explicit SplitLru(PageArray &pages);

    std::uint64_t activeCount() const { return active_.size(); }
    std::uint64_t inactiveCount() const { return inactive_.size(); }
    std::uint64_t totalCount() const
    {
        return active_.size() + inactive_.size();
    }

    /** Insert a newly allocated page (inactive, unreferenced). */
    void addPage(Gpfn pfn);

    /** Insert straight to the active list (known-hot pages). */
    void addPageActive(Gpfn pfn);

    /** Remove a page about to be freed or migrated away. */
    void removePage(Gpfn pfn);

    /**
     * Record a touch: referenced bit first, promotion to active head
     * on a repeated touch (mirrors mark_page_accessed()).
     */
    void touch(Gpfn pfn);

    /** Force a page onto the inactive list (deactivation). */
    void deactivate(Gpfn pfn);

    /** True if the page is on either list. */
    bool contains(Gpfn pfn) const;

    /**
     * Scan up to `nscan` pages from the inactive tail. Referenced
     * pages get a second chance (cleared + rotated). Unreferenced,
     * reclaimable pages are handed to `reclaim`, which returns true
     * if it took the page (the scan removes it from the LRU first).
     * Pages under I/O or unevictable are rotated.
     *
     * A template rather than std::function: reclaim fires per page
     * on the memory-pressure path, where the erased indirect call is
     * measurable.
     *
     * @return number of pages reclaimed.
     */
    template <typename Reclaim>
    std::uint64_t scanInactive(std::uint64_t nscan, Reclaim &&reclaim)
    {
        std::uint64_t reclaimed = 0;
        for (std::uint64_t i = 0; i < nscan && !inactive_.empty();
             ++i) {
            const Gpfn pfn = inactive_.tail();
            PageRef p = pages_.page(pfn);
            scanned_.inc();

            if (p.under_io() || p.unevictable()) {
                inactive_.moveToFront(pfn);
                continue;
            }
            if (p.referenced()) {
                // Second chance: promote to active, as Linux's
                // shrink_inactive does for referenced+accessed pages.
                p.setReferenced(false);
                inactive_.remove(pfn);
                p.setLru(LruState::Active);
                active_.pushFront(pfn);
                continue;
            }

            inactive_.remove(pfn);
            p.setLru(LruState::None);
            if (reclaim(p)) {
                ++reclaimed;
            } else {
                // Taker declined (e.g., dirty page pending
                // writeback): rotate back to the inactive head.
                p.setLru(LruState::Inactive);
                inactive_.pushFront(pfn);
            }
        }
        return reclaimed;
    }

    /**
     * Rebalance: demote pages from the active tail to inactive until
     * the inactive list holds at least `target_ratio` of all pages,
     * scanning at most `nscan` pages. Referenced active pages are
     * cleared and rotated (one second chance).
     *
     * @return pages demoted.
     */
    std::uint64_t balance(double target_ratio, std::uint64_t nscan);

    /** Pages scanned by reclaim since construction (cost accounting). */
    std::uint64_t scanned() const { return scanned_.value(); }

    /** Read-only views of the underlying lists (audit walkers). */
    const PageList &activeList() const { return active_; }
    const PageList &inactiveList() const { return inactive_; }

  private:
    PageArray &pages_;
    PageList active_;
    PageList inactive_;
    sim::Counter scanned_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_LRU_HH
