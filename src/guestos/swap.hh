/**
 * @file
 * Swap device.
 *
 * The last resort of the balloon driver: when a guest must give pages
 * back to the VMM and HeteroOS-LRU finds no clean inactive pages,
 * anonymous pages are swapped to disk (Section 4.2, "balloon drivers
 * first use HeteroOS-LRU to find inactive pages, and if not, swap
 * pages to the disk").
 */

#ifndef HOS_GUESTOS_SWAP_HH
#define HOS_GUESTOS_SWAP_HH

#include <cstdint>

#include "guestos/blockdev.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace hos::guestos {

/** Swap space on a block device. */
class SwapDevice
{
  public:
    SwapDevice(BlockDevice &disk, std::uint64_t capacity_pages);

    std::uint64_t capacityPages() const { return capacity_pages_; }
    std::uint64_t usedPages() const { return used_pages_; }
    std::uint64_t freePages() const
    {
        return capacity_pages_ - used_pages_;
    }

    /** Swap out `n` pages; returns the I/O time. Panics if full. */
    sim::Duration swapOut(std::uint64_t n);

    /** Swap `n` pages back in. */
    sim::Duration swapIn(std::uint64_t n);

    std::uint64_t totalSwappedOut() const { return swapped_out_.value(); }
    std::uint64_t totalSwappedIn() const { return swapped_in_.value(); }

  private:
    BlockDevice &disk_;
    std::uint64_t capacity_pages_;
    std::uint64_t used_pages_ = 0;
    sim::Counter swapped_out_;
    sim::Counter swapped_in_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_SWAP_HH
