/**
 * @file
 * Binary buddy page allocator (Linux-style).
 *
 * Each zone owns one BuddyAllocator managing a contiguous gpfn range.
 * Free blocks of order o (2^o pages) live on per-order free lists; the
 * block head page carries in_buddy/buddy_order. Allocation splits the
 * smallest sufficient block; freeing coalesces with the buddy block
 * while possible.
 *
 * Pages can be added to (and permanently removed from) the managed
 * range at runtime — that is how the balloon front-end grows and
 * shrinks a memory type's reservation (paper Figure 5, steps 1-3).
 */

#ifndef HOS_GUESTOS_BUDDY_ALLOCATOR_HH
#define HOS_GUESTOS_BUDDY_ALLOCATOR_HH

#include <cstdint>
#include <vector>

#include "guestos/page.hh"
#include "sim/stats.hh"

namespace hos::guestos {

/** Binary buddy allocator over a contiguous gpfn range. */
class BuddyAllocator
{
  public:
    /** Orders 0 .. maxOrder-1 (4 KiB .. 4 MiB blocks), as in Linux. */
    static constexpr unsigned maxOrder = 11;

    /**
     * Create an allocator covering [base, base+span_pages). The range
     * starts empty; addFreeRange() donates pages to it.
     */
    BuddyAllocator(PageArray &pages, Gpfn base, std::uint64_t span_pages);

    Gpfn base() const { return base_; }
    std::uint64_t spanPages() const { return span_pages_; }
    std::uint64_t freePages() const { return free_pages_; }
    std::uint64_t managedPages() const { return managed_pages_; }

    /**
     * Donate [pfn, pfn+count) to the allocator as free memory,
     * coalescing into maximal aligned blocks.
     */
    void addFreeRange(Gpfn pfn, std::uint64_t count);

    /**
     * Allocate a 2^order block; returns the head gpfn or invalidGpfn.
     * All pages of the block are marked allocated.
     */
    Gpfn alloc(unsigned order);

    /** Free a block previously returned by alloc() with this order. */
    void free(Gpfn pfn, unsigned order);

    /**
     * Permanently remove one free page from management (ballooning).
     * Returns invalidGpfn when no free page is available. Prefers
     * small blocks to avoid fragmenting large ones.
     */
    Gpfn removeFreePage();

    /** Free pages currently available at exactly this order. */
    std::uint64_t freeBlocks(unsigned order) const;

    /** Read-only view of one order's free list (audit walkers). */
    const PageList &freeList(unsigned order) const
    {
        hos_assert(order < free_area_.size(), "order out of range");
        return free_area_[order];
    }

    /** Verify internal invariants (test support); panics on violation. */
    void checkInvariants() const;

  private:
    Gpfn buddyOf(Gpfn pfn, unsigned order) const;
    bool blockInRange(Gpfn pfn, unsigned order) const;
    void insertBlock(Gpfn pfn, unsigned order);
    void removeBlock(Gpfn pfn, unsigned order);

    PageArray &pages_;
    Gpfn base_;
    std::uint64_t span_pages_;
    std::uint64_t free_pages_ = 0;
    std::uint64_t managed_pages_ = 0;
    std::vector<PageList> free_area_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_BUDDY_ALLOCATOR_HH
