/**
 * @file
 * Guest page metadata (struct Page) and intrusive page lists.
 *
 * The guest OS keeps one Page descriptor per guest page frame (gpfn),
 * like Linux's struct page / mem_map. Descriptors carry:
 *
 *  - the memory type (the paper's extra FASTMEM/SLOWMEM 1-bit flag),
 *  - the page-use type (heap, I/O cache, slab, ...),
 *  - LRU state (active/inactive, referenced),
 *  - a reverse-map hint (owning process + virtual address) so the
 *    migration front-end can validate and remap pages, and
 *  - buddy-allocator state (order, in-buddy flag).
 *
 * PageList is an intrusive doubly-linked list over descriptors using
 * index links, so LRU and free lists add no per-node allocations.
 */

#ifndef HOS_GUESTOS_PAGE_HH
#define HOS_GUESTOS_PAGE_HH

#include <cstdint>
#include <vector>

#include "guestos/page_types.hh"
#include "mem/mem_spec.hh"
#include "sim/log.hh"
#include "sim/time.hh"

namespace hos::guestos {

/** Guest page frame number. */
using Gpfn = std::uint64_t;
constexpr Gpfn invalidGpfn = ~Gpfn(0);

/** Identifies a guest process. */
using ProcessId = std::uint32_t;
constexpr ProcessId noProcess = ~ProcessId(0);

/** Which LRU list a page sits on. */
enum class LruState : std::uint8_t {
    None = 0,
    Inactive,
    Active,
};

/** Per-page metadata, one per guest page frame. */
struct Page
{
    // Identity (fixed at boot).
    Gpfn pfn = invalidGpfn;
    std::uint8_t numa_node = 0;
    mem::MemType mem_type = mem::MemType::SlowMem;

    // Allocation state.
    PageType type = PageType::Free;
    std::uint8_t buddy_order = 0;  ///< order of the buddy block headed here
    bool in_buddy = false;         ///< heads a free buddy block
    bool allocated = false;
    bool populated = false;        ///< backed by a machine frame (P2M)

    // LRU / reclaim state.
    LruState lru = LruState::None;
    bool referenced = false;   ///< software referenced bit (second chance)
    bool dirty = false;
    bool under_io = false;     ///< I/O in flight; not reclaimable
    bool unevictable = false;

    // Reverse map hint (single mapping; the workloads don't share pages).
    ProcessId owner_process = noProcess;
    std::uint64_t vaddr = 0;

    // Hotness ground truth for trackers to harvest.
    bool pte_accessed = false;     ///< hardware access bit in the PTE
    std::uint16_t heat = 0;        ///< EWMA touch counter (tracker state)
    sim::Tick last_touch = 0;

    // Intrusive list links (indices into the PageArray; invalidGpfn = null).
    Gpfn link_prev = invalidGpfn;
    Gpfn link_next = invalidGpfn;
    std::uint8_t on_list = 0;      ///< debug tag: which list owns the links
};

/** Identifier tags for list ownership (catch double-insertion bugs). */
enum ListTag : std::uint8_t {
    listNone = 0,
    listBuddy,
    listPerCpu,
    listLruActive,
    listLruInactive,
    listIo,
    listOther,
};

class PageArray;

/**
 * Intrusive doubly-linked list of Page descriptors.
 *
 * Handles live in the pages themselves; the list stores head/tail
 * indices and a count. Pages can be removed from the middle in O(1),
 * which LRU rotation and targeted eviction need.
 */
class PageList
{
  public:
    PageList(PageArray &pages, ListTag tag) : pages_(&pages), tag_(tag) {}

    bool empty() const { return count_ == 0; }
    std::uint64_t size() const { return count_; }
    Gpfn head() const { return head_; }
    Gpfn tail() const { return tail_; }
    ListTag tag() const { return tag_; }

    /** Push to the front (most-recently-used end). */
    void pushFront(Gpfn pfn);
    /** Push to the back (least-recently-used end). */
    void pushBack(Gpfn pfn);
    /** Remove an arbitrary member. */
    void remove(Gpfn pfn);
    /** Pop from the front; invalidGpfn when empty. */
    Gpfn popFront();
    /** Pop from the back; invalidGpfn when empty. */
    Gpfn popBack();
    /** Move an existing member to the front. */
    void moveToFront(Gpfn pfn);

    /** True if the page is currently on this list. */
    bool contains(Gpfn pfn) const;

  private:
    PageArray *pages_;
    ListTag tag_;
    Gpfn head_ = invalidGpfn;
    Gpfn tail_ = invalidGpfn;
    std::uint64_t count_ = 0;
};

/**
 * The guest's mem_map: one Page per gpfn, plus per-node gpfn ranges.
 *
 * Alongside the descriptors it keeps a coarse allocated-range hint:
 * one allocated-page counter per chunk of 2^chunkShift gpfns. Every
 * `allocated` flip goes through setAllocated() so the counters stay
 * exact, letting sweep-style walkers (HotnessTracker's full-VM scan)
 * skip whole free chunks instead of probing each descriptor.
 */
class PageArray
{
  public:
    /** log2 pages per allocated-hint chunk (4096 pages = 16 MiB). */
    static constexpr unsigned chunkShift = 12;
    static constexpr std::uint64_t chunkPages = std::uint64_t(1) << chunkShift;

    explicit PageArray(std::uint64_t num_pages);

    std::uint64_t size() const { return pages_.size(); }

    Page &page(Gpfn pfn)
    {
        hos_assert(pfn < pages_.size(), "gpfn out of range");
        return pages_[pfn];
    }

    const Page &page(Gpfn pfn) const
    {
        hos_assert(pfn < pages_.size(), "gpfn out of range");
        return pages_[pfn];
    }

    /** Flip p.allocated, keeping the per-chunk counters exact. */
    void setAllocated(Page &p, bool v)
    {
        if (p.allocated == v)
            return;
        p.allocated = v;
        if (v)
            ++chunk_allocated_[p.pfn >> chunkShift];
        else
            --chunk_allocated_[p.pfn >> chunkShift];
    }

    /**
     * Length of the run of unallocated pages starting at `from`,
     * capped at `max` and at the end of the array (no wrap). Fully
     * free chunks are skipped via the counters; partial chunks are
     * probed per descriptor. Returns 0 if `from` is allocated.
     */
    std::uint64_t freeRunLength(Gpfn from, std::uint64_t max) const;

    std::uint64_t numChunks() const { return chunk_allocated_.size(); }
    std::uint32_t allocatedInChunk(std::uint64_t c) const
    {
        return chunk_allocated_[c];
    }

  private:
    std::vector<Page> pages_;
    std::vector<std::uint32_t> chunk_allocated_;
};

// The list operations are a few loads and stores each but run tens of
// millions of times per simulated second (every LRU rotation, buddy
// merge, and per-CPU cache refill goes through them), so they are
// defined inline here, after PageArray, rather than out of line.

inline void
PageList::pushFront(Gpfn pfn)
{
    Page &p = pages_->page(pfn);
    hos_assert(p.on_list == listNone, "page %llu already on list %u",
               static_cast<unsigned long long>(pfn), p.on_list);
    p.on_list = tag_;
    p.link_prev = invalidGpfn;
    p.link_next = head_;
    if (head_ != invalidGpfn)
        pages_->page(head_).link_prev = pfn;
    head_ = pfn;
    if (tail_ == invalidGpfn)
        tail_ = pfn;
    ++count_;
}

inline void
PageList::pushBack(Gpfn pfn)
{
    Page &p = pages_->page(pfn);
    hos_assert(p.on_list == listNone, "page %llu already on list %u",
               static_cast<unsigned long long>(pfn), p.on_list);
    p.on_list = tag_;
    p.link_next = invalidGpfn;
    p.link_prev = tail_;
    if (tail_ != invalidGpfn)
        pages_->page(tail_).link_next = pfn;
    tail_ = pfn;
    if (head_ == invalidGpfn)
        head_ = pfn;
    ++count_;
}

inline void
PageList::remove(Gpfn pfn)
{
    Page &p = pages_->page(pfn);
    hos_assert(p.on_list == tag_, "page %llu on list %u, not %u",
               static_cast<unsigned long long>(pfn), p.on_list, tag_);
    if (p.link_prev != invalidGpfn)
        pages_->page(p.link_prev).link_next = p.link_next;
    else
        head_ = p.link_next;
    if (p.link_next != invalidGpfn)
        pages_->page(p.link_next).link_prev = p.link_prev;
    else
        tail_ = p.link_prev;
    p.link_prev = invalidGpfn;
    p.link_next = invalidGpfn;
    p.on_list = listNone;
    hos_assert(count_ > 0, "list count underflow");
    --count_;
}

inline Gpfn
PageList::popFront()
{
    if (head_ == invalidGpfn)
        return invalidGpfn;
    const Gpfn pfn = head_;
    remove(pfn);
    return pfn;
}

inline Gpfn
PageList::popBack()
{
    if (tail_ == invalidGpfn)
        return invalidGpfn;
    const Gpfn pfn = tail_;
    remove(pfn);
    return pfn;
}

inline void
PageList::moveToFront(Gpfn pfn)
{
    remove(pfn);
    pushFront(pfn);
}

inline bool
PageList::contains(Gpfn pfn) const
{
    const Page &p = pages_->page(pfn);
    if (p.on_list != tag_)
        return false;
    // Tags are unique per list *kind* but a node may have several
    // lists with the same tag (per-zone LRUs); walk links only when
    // disambiguation matters. Membership by tag is sufficient for the
    // single-instance lists used in the allocator; LRU uses per-page
    // LruState for exactness.
    return true;
}

} // namespace hos::guestos

#endif // HOS_GUESTOS_PAGE_HH
