/**
 * @file
 * Guest page metadata (structure-of-arrays PageArray) and intrusive
 * page lists.
 *
 * The guest OS keeps per-gpfn metadata like Linux's struct page /
 * mem_map, but stored column-wise instead of as an array of 80-byte
 * descriptors, so the passes that dominate simulation time touch only
 * the bytes they need:
 *
 *  - scan bits (pte_accessed / allocated / populated) live in packed
 *    one-bit-per-page bitmaps — hotness sweeps, residency walks, and
 *    free-run skips become word-at-a-time scans;
 *  - hotness state (heat, last_touch) lives in dense arrays the
 *    trackers stream through;
 *  - warm bookkeeping (list links, node/type identity, LRU flags)
 *    packs into a 24-byte Meta record;
 *  - the cold reverse-map hint (owner process, vaddr) sits in its own
 *    column so allocator and LRU traffic never drags it into cache.
 *
 * Call sites access pages through PageRef, a 16-byte value handle
 * whose accessors deliberately mirror the retired struct Page field
 * names (p.heat() where p.heat was read, p.setHeat() where it was
 * written), keeping migrated code recognizable. Writes to SoA-owned
 * fields outside the PageRef/setAllocated accessors are banned by the
 * hos-analyze soa-field-write rule.
 *
 * PageList is an intrusive doubly-linked list over the link columns
 * using index links, so LRU and free lists add no per-node
 * allocations. Every list instance registers a per-PageArray id and
 * pages record the id (not just the tag kind) of the list holding
 * them, making membership checks exact even across same-tag sibling
 * lists (per-zone LRUs).
 */

#ifndef HOS_GUESTOS_PAGE_HH
#define HOS_GUESTOS_PAGE_HH

#include <bit>
#include <cstdint>
#include <vector>

#include "guestos/page_types.hh"
#include "mem/mem_spec.hh"
#include "sim/log.hh"
#include "sim/time.hh"

namespace hos::guestos {

/** Guest page frame number. */
using Gpfn = std::uint64_t;
constexpr Gpfn invalidGpfn = ~Gpfn(0);

/** Identifies a guest process. */
using ProcessId = std::uint32_t;
constexpr ProcessId noProcess = ~ProcessId(0);

/** Which LRU list a page sits on. */
enum class LruState : std::uint8_t {
    None = 0,
    Inactive,
    Active,
};

/** Identifier tags for list ownership kinds (debug reporting). */
enum ListTag : std::uint8_t {
    listNone = 0,
    listBuddy,
    listPerCpu,
    listLruActive,
    listLruInactive,
    listIo,
    listOther,
};

/** Per-PageArray list instance id; 0 = not on any list. */
using ListId = std::uint16_t;
constexpr ListId noListId = 0;

class PageArray;
class PageRef;

/**
 * Intrusive doubly-linked list of page descriptors.
 *
 * Handles live in the PageArray's link columns; the list stores
 * head/tail indices and a count. Pages can be removed from the middle
 * in O(1), which LRU rotation and targeted eviction need. Each
 * instance carries a PageArray-unique id so membership and the
 * double-insertion asserts are exact per list, not per tag kind.
 */
class PageList
{
  public:
    PageList(PageArray &pages, ListTag tag);

    bool empty() const { return count_ == 0; }
    std::uint64_t size() const { return count_; }
    Gpfn head() const { return head_; }
    Gpfn tail() const { return tail_; }
    ListTag tag() const { return tag_; }
    ListId id() const { return id_; }

    /** Push to the front (most-recently-used end). */
    void pushFront(Gpfn pfn);
    /** Push to the back (least-recently-used end). */
    void pushBack(Gpfn pfn);
    /** Remove an arbitrary member. */
    void remove(Gpfn pfn);
    /** Pop from the front; invalidGpfn when empty. */
    Gpfn popFront();
    /** Pop from the back; invalidGpfn when empty. */
    Gpfn popBack();
    /** Move an existing member to the front. */
    void moveToFront(Gpfn pfn);

    /** True if the page is currently on this list (exact, by id). */
    bool contains(Gpfn pfn) const;

  private:
    PageArray *pages_;
    ListTag tag_;
    ListId id_;
    Gpfn head_ = invalidGpfn;
    Gpfn tail_ = invalidGpfn;
    std::uint64_t count_ = 0;
};

/**
 * The guest's mem_map in structure-of-arrays form: per-gpfn columns
 * plus per-node gpfn ranges.
 *
 * The allocated bitmap doubles as the sweep-skip index: walkers
 * (HotnessTracker's full-VM scan) call freeRunLength() to hop over
 * free space word-at-a-time instead of probing each descriptor, and
 * the chunk-granularity census the auditors reconcile against is a
 * popcount over the same words — no shadow counters to maintain on
 * the allocation fast path.
 */
class PageArray
{
  public:
    /** log2 pages per census chunk (4096 pages = 16 MiB). */
    static constexpr unsigned chunkShift = 12;
    static constexpr std::uint64_t chunkPages = std::uint64_t(1)
                                                << chunkShift;

    explicit PageArray(std::uint64_t num_pages);

    std::uint64_t size() const { return size_; }

    inline PageRef page(Gpfn pfn);
    inline const PageRef page(Gpfn pfn) const;

    /** Flip the allocated bit (the one PageRef-external SoA write). */
    void setAllocated(Gpfn pfn, bool v)
    {
        hos_assert(pfn < size_, "gpfn out of range");
        setBit(allocated_, pfn, v);
    }
    inline void setAllocated(const PageRef &p, bool v);

    /**
     * Length of the run of unallocated pages starting at `from`,
     * capped at `max` and at the end of the array (no wrap). Scans
     * the allocated bitmap word-at-a-time. Returns 0 if `from` is
     * allocated.
     */
    std::uint64_t freeRunLength(Gpfn from, std::uint64_t max) const;

    std::uint64_t numChunks() const
    {
        return (size_ + chunkPages - 1) >> chunkShift;
    }
    /** Allocated pages in census chunk c (popcount over the bitmap). */
    std::uint32_t allocatedInChunk(std::uint64_t c) const;

    /**
     * Register a list instance; returns its id. Ids are handed out
     * sequentially per PageArray, so they are deterministic for a
     * fixed kernel construction order (never a global counter, which
     * would drift across runs in one process).
     */
    ListId registerList(ListTag tag);

    /** The tag kind a list id was registered with (0 = none). */
    ListTag listTag(ListId id) const
    {
        return list_tags_[id];
    }

  private:
    friend class PageRef;
    friend class PageList;

    /** Warm per-page bookkeeping: links, identity, allocator/LRU state. */
    struct Meta
    {
        Gpfn link_prev = invalidGpfn;
        Gpfn link_next = invalidGpfn;
        ListId list_id = noListId; ///< exact list holding the links
        std::uint8_t numa_node = 0;
        mem::MemType mem_type = mem::MemType::SlowMem;
        PageType type = PageType::Free;
        std::uint8_t buddy_order = 0; ///< order of the block headed here
        LruState lru = LruState::None;
        std::uint8_t flags = 0;
    };
    static_assert(sizeof(Meta) == 24, "warm column grew past 24 bytes");

    /** Cold reverse-map hint (single mapping; workloads don't share). */
    struct Rmap
    {
        ProcessId owner_process = noProcess;
        std::uint64_t vaddr = 0;
    };

    enum MetaFlag : std::uint8_t {
        flagInBuddy = 1u << 0,    ///< heads a free buddy block
        flagReferenced = 1u << 1, ///< software referenced bit
        flagDirty = 1u << 2,
        flagUnderIo = 1u << 3,    ///< I/O in flight; not reclaimable
        flagUnevictable = 1u << 4,
    };

    static bool
    bit(const std::vector<std::uint64_t> &m, Gpfn pfn)
    {
        return (m[pfn >> 6] >> (pfn & 63)) & 1u;
    }
    static void
    setBit(std::vector<std::uint64_t> &m, Gpfn pfn, bool v)
    {
        const std::uint64_t mask = std::uint64_t(1) << (pfn & 63);
        if (v)
            m[pfn >> 6] |= mask;
        else
            m[pfn >> 6] &= ~mask;
    }

    std::uint64_t size_;
    // Hot scan bits: one bit per page.
    std::vector<std::uint64_t> pte_accessed_;
    std::vector<std::uint64_t> allocated_;
    std::vector<std::uint64_t> populated_;
    // Hotness state the trackers stream through.
    std::vector<std::uint16_t> heat_;
    std::vector<sim::Tick> last_touch_;
    // Warm and cold columns.
    std::vector<Meta> meta_;
    std::vector<Rmap> rmap_;
    // List-id registry: id -> tag kind (id 0 reserved for "none").
    std::vector<ListTag> list_tags_;
};

/**
 * Value handle to one page's metadata: a (PageArray*, gpfn) pair with
 * accessors over the SoA columns. Getters keep the retired struct
 * Page field names; setters are the only sanctioned way to write
 * SoA-owned fields (plus PageArray::setAllocated for the allocated
 * bit, whose flips the census depends on).
 *
 * Read-only call sites hold `const PageRef` — setters are non-const
 * members, so constness still documents intent.
 */
class PageRef
{
  public:
    PageRef(PageArray &pa, Gpfn pfn) : pa_(&pa), pfn_(pfn) {}

    Gpfn pfn() const { return pfn_; }
    PageArray &array() const { return *pa_; }

    // Identity (fixed at boot).
    std::uint8_t numa_node() const { return meta().numa_node; }
    void setNumaNode(std::uint8_t n) { meta().numa_node = n; }
    mem::MemType mem_type() const { return meta().mem_type; }
    void setMemType(mem::MemType t) { meta().mem_type = t; }

    // Allocation state.
    PageType type() const { return meta().type; }
    void setType(PageType t) { meta().type = t; }
    std::uint8_t buddy_order() const { return meta().buddy_order; }
    void setBuddyOrder(std::uint8_t o) { meta().buddy_order = o; }
    bool in_buddy() const { return flag(PageArray::flagInBuddy); }
    void setInBuddy(bool v) { setFlag(PageArray::flagInBuddy, v); }
    bool allocated() const
    {
        return PageArray::bit(pa_->allocated_, pfn_);
    }
    bool populated() const
    {
        return PageArray::bit(pa_->populated_, pfn_);
    }
    void setPopulated(bool v)
    {
        PageArray::setBit(pa_->populated_, pfn_, v);
    }

    // LRU / reclaim state.
    LruState lru() const { return meta().lru; }
    void setLru(LruState s) { meta().lru = s; }
    bool referenced() const { return flag(PageArray::flagReferenced); }
    void setReferenced(bool v)
    {
        setFlag(PageArray::flagReferenced, v);
    }
    bool dirty() const { return flag(PageArray::flagDirty); }
    void setDirty(bool v) { setFlag(PageArray::flagDirty, v); }
    bool under_io() const { return flag(PageArray::flagUnderIo); }
    void setUnderIo(bool v) { setFlag(PageArray::flagUnderIo, v); }
    bool unevictable() const
    {
        return flag(PageArray::flagUnevictable);
    }
    void setUnevictable(bool v)
    {
        setFlag(PageArray::flagUnevictable, v);
    }

    // Reverse map hint.
    ProcessId owner_process() const
    {
        return pa_->rmap_[pfn_].owner_process;
    }
    void setOwnerProcess(ProcessId p)
    {
        pa_->rmap_[pfn_].owner_process = p;
    }
    std::uint64_t vaddr() const { return pa_->rmap_[pfn_].vaddr; }
    void setVaddr(std::uint64_t v) { pa_->rmap_[pfn_].vaddr = v; }

    // Hotness ground truth for trackers to harvest.
    bool pte_accessed() const
    {
        return PageArray::bit(pa_->pte_accessed_, pfn_);
    }
    void setPteAccessed(bool v)
    {
        PageArray::setBit(pa_->pte_accessed_, pfn_, v);
    }
    std::uint16_t heat() const { return pa_->heat_[pfn_]; }
    void setHeat(std::uint16_t h) { pa_->heat_[pfn_] = h; }
    sim::Tick last_touch() const { return pa_->last_touch_[pfn_]; }
    void setLastTouch(sim::Tick t) { pa_->last_touch_[pfn_] = t; }

    // List membership (links are written by PageList only).
    ListId list_id() const { return meta().list_id; }
    /// Raw membership override. PageList maintains this in normal
    /// operation; exposed for fault injection in the check tests.
    void setListId(ListId id) { meta().list_id = id; }
    ListTag on_list() const { return pa_->listTag(meta().list_id); }
    Gpfn link_prev() const { return meta().link_prev; }
    Gpfn link_next() const { return meta().link_next; }

  private:
    friend class PageArray;
    friend class PageList;

    PageArray::Meta &meta() const { return pa_->meta_[pfn_]; }
    bool flag(std::uint8_t f) const { return meta().flags & f; }
    void
    setFlag(std::uint8_t f, bool v)
    {
        if (v)
            meta().flags |= f;
        else
            meta().flags &= static_cast<std::uint8_t>(~f);
    }

    PageArray *pa_;
    Gpfn pfn_;
};

inline PageRef
PageArray::page(Gpfn pfn)
{
    hos_assert(pfn < size_, "gpfn out of range");
    return PageRef(*this, pfn);
}

inline const PageRef
PageArray::page(Gpfn pfn) const
{
    hos_assert(pfn < size_, "gpfn out of range");
    // PageRef is a value handle; const call sites bind it to
    // `const PageRef`, whose setters don't compile. The cast only
    // funds the handle's non-const back-pointer.
    return PageRef(*const_cast<PageArray *>(this), pfn);
}

inline void
PageArray::setAllocated(const PageRef &p, bool v)
{
    setBit(allocated_, p.pfn_, v);
}

inline PageList::PageList(PageArray &pages, ListTag tag)
    : pages_(&pages), tag_(tag), id_(pages.registerList(tag))
{
}

// The list operations are a few loads and stores each but run tens of
// millions of times per simulated second (every LRU rotation, buddy
// merge, and per-CPU cache refill goes through them), so they are
// defined inline here and poke the link columns directly rather than
// going through PageRef accessors.

inline void
PageList::pushFront(Gpfn pfn)
{
    hos_assert(pfn < pages_->size_, "gpfn out of range");
    PageArray::Meta &m = pages_->meta_[pfn];
    hos_assert(m.list_id == noListId,
               "page %llu already on list %u (tag %u)",
               static_cast<unsigned long long>(pfn),
               static_cast<unsigned>(m.list_id),
               static_cast<unsigned>(pages_->listTag(m.list_id)));
    m.list_id = id_;
    m.link_prev = invalidGpfn;
    m.link_next = head_;
    if (head_ != invalidGpfn)
        pages_->meta_[head_].link_prev = pfn;
    head_ = pfn;
    if (tail_ == invalidGpfn)
        tail_ = pfn;
    ++count_;
}

inline void
PageList::pushBack(Gpfn pfn)
{
    hos_assert(pfn < pages_->size_, "gpfn out of range");
    PageArray::Meta &m = pages_->meta_[pfn];
    hos_assert(m.list_id == noListId,
               "page %llu already on list %u (tag %u)",
               static_cast<unsigned long long>(pfn),
               static_cast<unsigned>(m.list_id),
               static_cast<unsigned>(pages_->listTag(m.list_id)));
    m.list_id = id_;
    m.link_next = invalidGpfn;
    m.link_prev = tail_;
    if (tail_ != invalidGpfn)
        pages_->meta_[tail_].link_next = pfn;
    tail_ = pfn;
    if (head_ == invalidGpfn)
        head_ = pfn;
    ++count_;
}

inline void
PageList::remove(Gpfn pfn)
{
    hos_assert(pfn < pages_->size_, "gpfn out of range");
    PageArray::Meta &m = pages_->meta_[pfn];
    hos_assert(m.list_id == id_, "page %llu on list %u, not %u",
               static_cast<unsigned long long>(pfn),
               static_cast<unsigned>(m.list_id),
               static_cast<unsigned>(id_));
    if (m.link_prev != invalidGpfn)
        pages_->meta_[m.link_prev].link_next = m.link_next;
    else
        head_ = m.link_next;
    if (m.link_next != invalidGpfn)
        pages_->meta_[m.link_next].link_prev = m.link_prev;
    else
        tail_ = m.link_prev;
    m.link_prev = invalidGpfn;
    m.link_next = invalidGpfn;
    m.list_id = noListId;
    hos_assert(count_ > 0, "list count underflow");
    --count_;
}

inline Gpfn
PageList::popFront()
{
    if (head_ == invalidGpfn)
        return invalidGpfn;
    const Gpfn pfn = head_;
    remove(pfn);
    return pfn;
}

inline Gpfn
PageList::popBack()
{
    if (tail_ == invalidGpfn)
        return invalidGpfn;
    const Gpfn pfn = tail_;
    remove(pfn);
    return pfn;
}

inline void
PageList::moveToFront(Gpfn pfn)
{
    remove(pfn);
    pushFront(pfn);
}

inline bool
PageList::contains(Gpfn pfn) const
{
    // Exact: list ids are unique per PageArray, so a page on a sibling
    // zone's same-tag list can no longer fool membership checks.
    return pages_->meta_[pfn].list_id == id_;
}

} // namespace hos::guestos

#endif // HOS_GUESTOS_PAGE_HH
