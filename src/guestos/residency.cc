#include "guestos/residency.hh"

#include <algorithm>
#include <bit>

#include "guestos/kernel.hh"

namespace hos::guestos {

RegionHandle
ResidencyIndex::registerRegion(ProcessId pid, std::uint64_t vma_start)
{
    RegionHandle h;
    if (!free_handles_.empty()) {
        h = free_handles_.back();
        free_handles_.pop_back();
    } else {
        h = static_cast<RegionHandle>(regions_.size());
        regions_.emplace_back();
    }
    RegionRec &r = regions_[h];
    r.pid = pid;
    r.vma_start = vma_start;
    r.live = true;
    r.bound.clear();
    r.bits.clear();
    r.fast_total = 0;
    by_pid_[pid].push_back(h);
    return h;
}

void
ResidencyIndex::unregisterRegion(RegionHandle h)
{
    RegionRec &r = rec(h);
    if (tier_notify_) {
        for (std::uint64_t idx = 0; idx < r.bound.size(); ++idx)
            unobserve(h, idx, r.bound[idx]);
    }
    auto &list = by_pid_[r.pid];
    for (std::size_t i = 0; i < list.size(); ++i) {
        if (list[i] == h) {
            list[i] = list.back();
            list.pop_back();
            break;
        }
    }
    r.live = false;
    r.bound.clear();
    r.bound.shrink_to_fit();
    r.bits.clear();
    r.bits.shrink_to_fit();
    r.fast_total = 0;
    free_handles_.push_back(h);
}

void
ResidencyIndex::appendPage(RegionHandle h, Gpfn pfn)
{
    RegionRec &r = rec(h);
    const std::uint64_t idx = r.bound.size();
    r.bound.push_back(pfn);
    if ((idx >> 6) >= r.bits.size())
        r.bits.push_back(0);
    setBit(r, idx, kernel_.backingOf(pfn) == mem::MemType::FastMem);
    if (tier_notify_)
        observe(h, idx, pfn);
}

void
ResidencyIndex::onRemap(ProcessId pid, std::uint64_t vaddr, Gpfn new_pfn)
{
    auto it = by_pid_.find(pid);
    if (it == by_pid_.end())
        return;
    for (RegionHandle h : it->second) {
        RegionRec &r = regions_[h];
        if (vaddr < r.vma_start)
            continue;
        const std::uint64_t idx = (vaddr - r.vma_start) >> mem::pageShift;
        if (idx >= r.bound.size())
            continue;
        const Gpfn old = r.bound[idx];
        if (old != new_pfn) {
            if (tier_notify_) {
                unobserve(h, idx, old);
                observe(h, idx, new_pfn);
            }
            r.bound[idx] = new_pfn;
        }
        setBit(r, idx,
               kernel_.backingOf(new_pfn) == mem::MemType::FastMem);
        return;
    }
}

void
ResidencyIndex::onTierChange(Gpfn pfn, mem::MemType effective)
{
    if (!tier_notify_)
        return;
    const bool fast = effective == mem::MemType::FastMem;
    auto range = observers_.equal_range(pfn);
    for (auto it = range.first; it != range.second; ++it)
        setBit(regions_[it->second.first], it->second.second, fast);
}

void
ResidencyIndex::enableTierNotifications()
{
    if (tier_notify_)
        return;
    tier_notify_ = true;
    for (RegionHandle h = 0; h < regions_.size(); ++h) {
        const RegionRec &r = regions_[h];
        if (!r.live)
            continue;
        for (std::uint64_t idx = 0; idx < r.bound.size(); ++idx)
            observe(h, idx, r.bound[idx]);
    }
}

std::uint64_t
ResidencyIndex::fastInRange(RegionHandle h, std::uint64_t start,
                            std::uint64_t count) const
{
    const RegionRec &r = rec(h);
    const std::uint64_t size = r.bound.size();
    hos_assert(start < size && count <= size, "residency range invalid");

    auto popRange = [&r](std::uint64_t from, std::uint64_t len) {
        std::uint64_t total = 0;
        std::uint64_t word = from >> 6;
        std::uint64_t bit = from & 63;
        while (len > 0) {
            const std::uint64_t take = std::min<std::uint64_t>(64 - bit,
                                                               len);
            std::uint64_t mask = r.bits[word] >> bit;
            if (take < 64)
                mask &= (std::uint64_t(1) << take) - 1;
            total += static_cast<std::uint64_t>(std::popcount(mask));
            len -= take;
            ++word;
            bit = 0;
        }
        return total;
    };

    if (count == size)
        return r.fast_total;
    if (start + count <= size)
        return popRange(start, count);
    const std::uint64_t head = size - start;
    return popRange(start, head) + popRange(0, count - head);
}

void
ResidencyIndex::setBit(RegionRec &r, std::uint64_t idx, bool fast)
{
    std::uint64_t &word = r.bits[idx >> 6];
    const std::uint64_t mask = std::uint64_t(1) << (idx & 63);
    if (fast) {
        if (!(word & mask)) {
            word |= mask;
            ++r.fast_total;
        }
    } else if (word & mask) {
        word &= ~mask;
        --r.fast_total;
    }
}

void
ResidencyIndex::observe(RegionHandle h, std::uint64_t idx, Gpfn pfn)
{
    observers_.emplace(pfn,
                       std::make_pair(h, static_cast<std::uint32_t>(idx)));
}

void
ResidencyIndex::unobserve(RegionHandle h, std::uint64_t idx, Gpfn pfn)
{
    auto range = observers_.equal_range(pfn);
    for (auto it = range.first; it != range.second; ++it) {
        if (it->second.first == h && it->second.second == idx) {
            observers_.erase(it);
            return;
        }
    }
}

} // namespace hos::guestos
