#include "guestos/slab.hh"

#include <algorithm>

#include "sim/log.hh"

namespace hos::guestos {

SlabAllocator::SlabAllocator(SlabBacking &backing) : backing_(backing) {}

SlabCacheId
SlabAllocator::createCache(std::string name, std::uint32_t object_size,
                           PageType page_type)
{
    hos_assert(object_size > 0 && object_size <= mem::pageSize,
               "slab objects must fit a page");
    Cache c;
    c.name = std::move(name);
    c.object_size = object_size;
    c.objs_per_page =
        static_cast<std::uint32_t>(mem::pageSize / object_size);
    c.page_type = page_type;
    caches_.push_back(std::move(c));
    return static_cast<SlabCacheId>(caches_.size() - 1);
}

SlabAllocator::Cache &
SlabAllocator::cacheRef(SlabCacheId id)
{
    hos_assert(id < caches_.size(), "unknown slab cache");
    return caches_[id];
}

const SlabAllocator::Cache &
SlabAllocator::cacheRef(SlabCacheId id) const
{
    hos_assert(id < caches_.size(), "unknown slab cache");
    return caches_[id];
}

SlabObject
SlabAllocator::alloc(SlabCacheId cache, MemHint hint)
{
    Cache &c = cacheRef(cache);

    while (!c.partial.empty()) {
        const Gpfn pfn = c.partial.back();
        SlabPage &sp = page_meta_.at(pfn);
        if (sp.free_slots.empty()) {
            c.partial.pop_back(); // page filled up earlier
            continue;
        }
        const std::uint32_t slot = sp.free_slots.back();
        sp.free_slots.pop_back();
        ++sp.used;
        ++c.objects;
        if (sp.free_slots.empty())
            c.partial.pop_back();
        backing_.touchSlabPage(pfn);
        return SlabObject{pfn, slot};
    }

    // Grow the cache by one slab page.
    const Gpfn pfn = backing_.allocSlabPage(c.page_type, hint);
    if (pfn == invalidGpfn)
        return SlabObject{};
    SlabPage sp;
    sp.cache = cache;
    sp.free_slots.reserve(c.objs_per_page);
    for (std::uint32_t s = c.objs_per_page; s-- > 1;)
        sp.free_slots.push_back(s);
    sp.used = 1;
    page_meta_.emplace(pfn, std::move(sp));
    ++c.pages;
    ++c.objects;
    if (c.objs_per_page > 1)
        c.partial.push_back(pfn);
    return SlabObject{pfn, 0};
}

void
SlabAllocator::free(SlabCacheId cache, SlabObject obj)
{
    hos_assert(obj.valid(), "freeing invalid slab object");
    Cache &c = cacheRef(cache);
    auto it = page_meta_.find(obj.pfn);
    hos_assert(it != page_meta_.end(), "freeing into unknown slab page");
    SlabPage &sp = it->second;
    hos_assert(sp.cache == cache, "object freed into the wrong cache");
    hos_assert(sp.used > 0, "slab page accounting underflow");

    --sp.used;
    --c.objects;
    if (sp.used == 0) {
        // Page fully free: return it to the kernel. Remove it from
        // the partial list lazily (alloc() skips stale entries via
        // the page_meta_ lookup), but we must drop the metadata now.
        page_meta_.erase(it);
        std::erase(c.partial, obj.pfn);
        --c.pages;
        backing_.freeSlabPage(obj.pfn);
        return;
    }

    const bool was_full = sp.free_slots.empty();
    sp.free_slots.push_back(obj.slot);
    if (was_full)
        c.partial.push_back(obj.pfn);
}

std::uint32_t
SlabAllocator::objectsPerPage(SlabCacheId cache) const
{
    return cacheRef(cache).objs_per_page;
}

std::uint64_t
SlabAllocator::objectsInUse(SlabCacheId cache) const
{
    return cacheRef(cache).objects;
}

std::uint64_t
SlabAllocator::pagesInUse(SlabCacheId cache) const
{
    return cacheRef(cache).pages;
}

std::uint64_t
SlabAllocator::totalPagesInUse() const
{
    std::uint64_t n = 0;
    for (const auto &c : caches_)
        n += c.pages;
    return n;
}

const std::string &
SlabAllocator::cacheName(SlabCacheId cache) const
{
    return cacheRef(cache).name;
}

} // namespace hos::guestos
