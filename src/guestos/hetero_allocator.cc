#include "guestos/hetero_allocator.hh"

#include <algorithm>

#include "check/page_state.hh"
#include "guestos/kernel.hh"
#include "sim/log.hh"
#include "trace/trace.hh"
#include "xray/xray.hh"

namespace hos::guestos {

const char *
allocModeName(AllocMode m)
{
    switch (m) {
      case AllocMode::SlowOnly:
        return "SlowMem-only";
      case AllocMode::FastOnly:
        return "FastMem-only";
      case AllocMode::Random:
        return "Random";
      case AllocMode::FastPreferred:
        return "NUMA-preferred";
      case AllocMode::OnDemand:
        return "OnDemand";
    }
    return "?";
}

AllocConfig
heapOdConfig()
{
    AllocConfig cfg;
    cfg.mode = AllocMode::OnDemand;
    cfg.makeEligible({PageType::Anon});
    return cfg;
}

AllocConfig
heapIoSlabOdConfig()
{
    AllocConfig cfg;
    cfg.mode = AllocMode::OnDemand;
    cfg.makeEligible({PageType::Anon, PageType::PageCache,
                      PageType::BufferCache, PageType::Slab,
                      PageType::NetBuf});
    return cfg;
}

HeteroAllocator::HeteroAllocator(GuestKernel &kernel, AllocConfig cfg,
                                 std::uint64_t seed)
    : kernel_(kernel), cfg_(cfg), rng_(seed ^ 0xA110Cull)
{
}

bool
HeteroAllocator::deservesFastMem(PageType t) const
{
    // Under contention, a type deserves FastMem when its recent miss
    // ratio is (near) the maximum across types: the most-starved
    // subsystem wins (Section 3.2, demand-based prioritization).
    const double mine = windowMissRatio(t);
    const double top = maxWindowMissRatio();
    if (top <= 0.0)
        return true; // no recorded contention yet: first come, first served
    return mine >= 0.8 * top;
}

unsigned
HeteroAllocator::chooseNode(const AllocRequest &req)
{
    NumaNode *fast = kernel_.nodeFor(mem::MemType::FastMem);
    NumaNode *slow = kernel_.nodeFor(mem::MemType::SlowMem);

    // Single-node guests (SlowMem-only / FastMem-only baselines, or a
    // heterogeneity-blind guest under a VMM-exclusive policy) have no
    // choice to make.
    if (!fast || !slow)
        return kernel_.node(0).id();

    if (cfg_.honor_hints && req.hint != MemHint::None) {
        return req.hint == MemHint::FastMem ? fast->id() : slow->id();
    }

    switch (cfg_.mode) {
      case AllocMode::SlowOnly:
        return slow->id();
      case AllocMode::FastOnly:
        return fast->id();
      case AllocMode::Random:
        // Heterogeneity-oblivious: a coin flip, constrained by
        // whatever happens to be free.
        if (fast->freePages() == 0)
            return slow->id();
        if (slow->freePages() == 0)
            return fast->id();
        return rng_.chance(0.5) ? fast->id() : slow->id();
      case AllocMode::FastPreferred:
        // Linux's preferred-node mempolicy: it covers the *process's*
        // pages (anon), draining FastMem then spilling. Kernel-side
        // allocations (page cache, slab, network buffers) don't go
        // through the task mempolicy at all — they fall to the
        // heterogeneity-oblivious default, landing wherever capacity
        // happens to be (modelled as capacity-proportional).
        if (req.type == PageType::Anon)
            return fast->freePages() > 0 ? fast->id() : slow->id();
        {
            const double fast_share =
                static_cast<double>(fast->managedPages()) /
                static_cast<double>(fast->managedPages() +
                                    slow->managedPages());
            if (rng_.chance(fast_share) && fast->freePages() > 0)
                return fast->id();
            return slow->freePages() > 0 ? slow->id() : fast->id();
        }
      case AllocMode::OnDemand:
        break;
    }

    // --- HeteroOS on-demand placement ---
    if (!cfg_.od_eligible[pageTypeIndex(req.type)])
        return slow->id();

    Zone &fz = fast->primaryZone();
    const std::uint64_t fast_free = kernel_.effectiveFreePages(*fast);
    if (fast_free > fz.watermarkLow())
        return fast->id();

    // FastMem under pressure. Try to grow the reservation first
    // (Figure 5 steps 1-2), then make room via HeteroOS-LRU, and only
    // then fall back to SlowMem.
    if (cfg_.balloon_on_pressure && kernel_.balloon().attached()) {
        const std::uint64_t want =
            std::max<std::uint64_t>(256, fz.watermarkHigh());
        if (kernel_.balloon().requestPages(mem::MemType::FastMem, want) >
            0) {
            if (kernel_.effectiveFreePages(*fast) > fz.watermarkMin())
                return fast->id();
        }
    }

    if (cfg_.active_reclaim && deservesFastMem(req.type)) {
        // Batched, kswapd-style: reclaim a chunk once per burst of
        // pressured allocations rather than on every miss, or the
        // demotion traffic itself would throttle the allocator.
        if (pressure_allocs_++ % 256 == 0) {
            const std::uint64_t free =
                kernel_.effectiveFreePages(*fast);
            const std::uint64_t want =
                fz.watermarkLow() > free
                    ? fz.watermarkLow() - free + 256
                    : 256;
            kernel_.heteroLru().reclaimFastMem(want);
        }
        if (kernel_.effectiveFreePages(*fast) > fz.watermarkMin())
            return fast->id();
    }

    // Even without reclaim, use the last pages above the hard minimum
    // if this type is the most starved one.
    if (kernel_.effectiveFreePages(*fast) > fz.watermarkMin() &&
        deservesFastMem(req.type)) {
        return fast->id();
    }

    return slow->id();
}

Gpfn
HeteroAllocator::allocPage(const AllocRequest &req)
{
    const std::size_t ti = pageTypeIndex(req.type);
    total_requests_.inc();
    window_[ti].requests += 1;

    unsigned node_id = chooseNode(req);
    Gpfn pfn =
        kernel_.percpu().alloc(req.cpu, kernel_.node(node_id));

    if (pfn == invalidGpfn) {
        // Chosen node exhausted: fall back to any node with memory.
        for (unsigned id = 0; id < kernel_.numNodes(); ++id) {
            if (id == node_id)
                continue;
            pfn = kernel_.percpu().alloc(req.cpu, kernel_.node(id));
            if (pfn != invalidGpfn) {
                node_id = id;
                break;
            }
        }
    }
    if (pfn == invalidGpfn) {
        // Guest genuinely full. First try to grow the SlowMem
        // reservation through the balloon — the on-demand driver's
        // whole point: memory pressure becomes a VMM request gated
        // by the fair-share policy. Then fall back to direct reclaim
        // (drop clean cache, write back dirty), like Linux's slow
        // path. Under *sustained* OOM (nothing reclaimable, balloon
        // refused) the expensive attempts back off: retrying a full
        // scan on every failed allocation would become the workload.
        bool retry = false;
        if (oom_strikes_ == 0 || oom_strikes_ % 256 == 0) {
            if (kernel_.balloon().attached()) {
                retry |= kernel_.balloon().requestPages(
                             mem::MemType::SlowMem, 1024) > 0;
            }
            retry |= kernel_.heteroLru().directReclaim(256) > 0;
        }
        if (retry) {
            for (unsigned id = 0; id < kernel_.numNodes(); ++id) {
                pfn = kernel_.percpu().alloc(req.cpu, kernel_.node(id));
                if (pfn != invalidGpfn) {
                    node_id = id;
                    break;
                }
            }
        }
    }
    if (pfn == invalidGpfn) {
        ++oom_strikes_;
        return invalidGpfn;
    }
    oom_strikes_ = 0;

    PageRef p = kernel_.pageMeta(pfn);
    HOS_CHECK_CHEAP(
        check::validateAlloc(p, req.type, "hetero_allocator.allocPage"));
    p.setType(req.type);
    p.setOwnerProcess(req.process);
    p.setVaddr(req.vaddr);

    total_allocs_[ti].inc();
    if (p.mem_type() == mem::MemType::FastMem) {
        window_[ti].fast_hits += 1;
    } else {
        window_[ti].fast_misses += 1;
        total_fast_misses_.inc();
    }
    trace::emit(trace::EventType::PageAlloc, kernel_.events().now(), ti,
                pfn, static_cast<std::uint64_t>(p.mem_type()));
    if (auto *xr = xray::active()) {
        xr->onAlloc(kernel_.vmTag(), pfn,
                    static_cast<std::uint8_t>(kernel_.backingOf(pfn)),
                    kernel_.events().now());
    }
    return pfn;
}

void
HeteroAllocator::freePage(Gpfn pfn, unsigned cpu)
{
    const PageRef p = kernel_.pageMeta(pfn);
    HOS_CHECK_CHEAP(
        check::validateFree(p, "hetero_allocator.freePage"));
    hos_assert(p.allocated(), "freeing unallocated page");
    trace::emit(trace::EventType::PageFree, kernel_.events().now(), pfn,
                static_cast<std::uint64_t>(p.mem_type()));
    kernel_.percpu().free(cpu, kernel_.nodeOf(pfn), pfn);
}

void
HeteroAllocator::rotateEpoch()
{
    prev_window_ = window_;
    for (auto &w : window_)
        w = DemandWindow{};
}

double
HeteroAllocator::windowMissRatio(PageType t) const
{
    // Blend the closed window with the live one so early-epoch
    // decisions aren't blind.
    const DemandWindow &prev = prev_window_[pageTypeIndex(t)];
    const DemandWindow &cur = window_[pageTypeIndex(t)];
    const std::uint64_t requests = prev.requests + cur.requests;
    if (requests == 0)
        return 0.0;
    return static_cast<double>(prev.fast_misses + cur.fast_misses) /
           static_cast<double>(requests);
}

double
HeteroAllocator::maxWindowMissRatio() const
{
    double top = 0.0;
    for (std::size_t i = 0; i < numPageTypes; ++i) {
        if (!cfg_.od_eligible[i])
            continue;
        top = std::max(top,
                       windowMissRatio(static_cast<PageType>(i)));
    }
    return top;
}

double
HeteroAllocator::overallFastMissRatio() const
{
    if (total_requests_.value() == 0)
        return 0.0;
    return static_cast<double>(total_fast_misses_.value()) /
           static_cast<double>(total_requests_.value());
}

} // namespace hos::guestos
