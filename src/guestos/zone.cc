#include "guestos/zone.hh"

#include <algorithm>

namespace hos::guestos {

const char *
zoneKindName(ZoneKind k)
{
    switch (k) {
      case ZoneKind::Unified:
        return "Unified";
      case ZoneKind::Normal:
        return "Normal";
      case ZoneKind::Dma:
        return "DMA";
    }
    return "?";
}

Zone::Zone(PageArray &pages, ZoneKind kind, Gpfn base,
           std::uint64_t span_pages)
    : kind_(kind), buddy_(pages, base, span_pages), lru_(pages)
{
}

void
Zone::updateWatermarks()
{
    // Linux computes watermarks from min_free_kbytes, roughly
    // proportional to sqrt(zone size); a fixed fraction keeps the
    // model simple and preserves the behaviour that small (FastMem)
    // zones hit pressure earlier in absolute terms.
    const std::uint64_t managed = buddy_.managedPages();
    wmark_min_ = std::max<std::uint64_t>(16, managed / 256);
    wmark_low_ = wmark_min_ + wmark_min_ / 2;
    wmark_high_ = wmark_min_ * 2;
}

} // namespace hos::guestos
