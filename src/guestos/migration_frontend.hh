/**
 * @file
 * Guest-controlled page migration (Section 4.1).
 *
 * A fundamental HeteroOS design point: the VMM only *tracks* hotness;
 * the migrations themselves run in the guest, because only the guest
 * can check page state (still mapped? marked for deletion? dirty
 * I/O?) and skip pages whose migration would pollute FastMem or waste
 * work. Costs follow Table 6's batch-amortized per-page walk + copy
 * model plus a TLB shootdown per batch.
 */

#ifndef HOS_GUESTOS_MIGRATION_FRONTEND_HH
#define HOS_GUESTOS_MIGRATION_FRONTEND_HH

#include <cstdint>
#include <vector>

#include "guestos/page.hh"
#include "mem/mem_spec.hh"
#include "sim/stats.hh"

namespace hos::guestos {

class GuestKernel;

/** Outcome counters for migration batches. */
struct MigrationOutcome
{
    std::uint64_t attempted = 0;
    std::uint64_t migrated = 0;
    std::uint64_t skipped_unmapped = 0; ///< released/marked-for-deletion
    std::uint64_t skipped_dirty_io = 0; ///< dirty short-lived I/O pages
    std::uint64_t skipped_under_io = 0;
    std::uint64_t skipped_pinned = 0;   ///< slab/pagetable/DMA
    std::uint64_t skipped_no_memory = 0;
};

/** The guest's migration engine. */
class MigrationFrontend
{
  public:
    explicit MigrationFrontend(GuestKernel &kernel);

    /**
     * Migrate a batch of pages to the given memory type, validating
     * page state first (the checks the VMM cannot do). Charges
     * walk + copy + shootdown overhead for the pages actually moved.
     */
    MigrationOutcome migratePages(const std::vector<Gpfn> &pfns,
                                  mem::MemType dst);

    std::uint64_t totalMigrated() const { return migrated_.value(); }
    std::uint64_t totalSkipped() const { return skipped_.value(); }

  private:
    /** Move one validated page; returns false when skipped. */
    bool migrateOne(Gpfn pfn, mem::MemType dst, MigrationOutcome &out);

    GuestKernel &kernel_;
    sim::Counter migrated_;
    sim::Counter skipped_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_MIGRATION_FRONTEND_HH
