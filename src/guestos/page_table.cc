#include "guestos/page_table.hh"

#include <algorithm>

namespace hos::guestos {

namespace {

// Leaf-slot layout.
constexpr std::uint64_t bitPresent = 1ull << 0;
constexpr std::uint64_t bitRw = 1ull << 1;
constexpr std::uint64_t bitAccessed = 1ull << 2;
constexpr std::uint64_t bitDirty = 1ull << 3;
constexpr std::uint64_t pfnShift = 12;

// Intermediate slots store the child Node pointer (8-byte aligned, so
// the low three bits are free) plus the present bit.
constexpr std::uint64_t ptrMask = ~std::uint64_t(0x7);

std::uint64_t
makeLeaf(Gpfn pfn, bool writable)
{
    return (pfn << pfnShift) | bitPresent | (writable ? bitRw : 0);
}

PteView
decodeLeaf(std::uint64_t slot)
{
    PteView v;
    v.pfn = slot >> pfnShift;
    v.writable = slot & bitRw;
    v.accessed = slot & bitAccessed;
    v.dirty = slot & bitDirty;
    return v;
}

} // namespace

PageTable::PageTable(TableAccounting accounting)
    : accounting_(std::move(accounting)), root_(std::make_unique<Node>())
{
    node_count_ = 1;
    if (accounting_)
        accounting_(1);
}

PageTable::~PageTable()
{
    // Non-root nodes are owned by node_pool_; slots only carry
    // encoded borrows.
    if (accounting_)
        accounting_(-static_cast<std::int64_t>(node_count_));
}

unsigned
PageTable::levelIndex(std::uint64_t vaddr, unsigned level)
{
    return static_cast<unsigned>(
        (vaddr >> (mem::pageShift + bitsPerLevel * level)) &
        (entriesPerNode - 1));
}

PageTable::Node *
PageTable::childOf(const Node &n, unsigned idx) const
{
    const std::uint64_t slot = n.slots[idx];
    if (!(slot & bitPresent))
        return nullptr;
    return reinterpret_cast<Node *>(slot & ptrMask);
}

PageTable::Node *
PageTable::ensureChild(Node &n, unsigned idx)
{
    if (Node *c = childOf(n, idx))
        return c;
    node_pool_.push_back(std::make_unique<Node>());
    Node *c = node_pool_.back().get();
    n.slots[idx] =
        (reinterpret_cast<std::uint64_t>(c) & ptrMask) | bitPresent;
    ++n.used;
    ++node_count_;
    if (accounting_)
        accounting_(1);
    return c;
}

PageTable::Node *
PageTable::leafNode(std::uint64_t vaddr) const
{
    const std::uint64_t tag = vaddr >> (mem::pageShift + bitsPerLevel);
    if (tag == leaf_tag_)
        return leaf_node_;
    Node *n = root_.get();
    for (unsigned level = levels - 1; level > 0; --level) {
        n = childOf(*n, levelIndex(vaddr, level));
        if (!n)
            return nullptr;
    }
    leaf_tag_ = tag;
    leaf_node_ = n;
    return n;
}

std::uint64_t *
PageTable::leafSlot(std::uint64_t vaddr) const
{
    Node *n = leafNode(vaddr);
    if (!n)
        return nullptr;
    return &n->slots[levelIndex(vaddr, 0)];
}

void
PageTable::map(std::uint64_t vaddr, Gpfn pfn, bool writable)
{
    hos_assert(vaddr < vaSpan, "vaddr outside table span");
    const std::uint64_t tag = vaddr >> (mem::pageShift + bitsPerLevel);
    Node *n;
    if (tag == leaf_tag_) {
        n = leaf_node_;
    } else {
        n = root_.get();
        for (unsigned level = levels - 1; level > 0; --level)
            n = ensureChild(*n, levelIndex(vaddr, level));
        leaf_tag_ = tag;
        leaf_node_ = n;
    }
    std::uint64_t &slot = n->slots[levelIndex(vaddr, 0)];
    hos_assert(!(slot & bitPresent), "overmapping vaddr");
    slot = makeLeaf(pfn, writable);
    ++n->used;
    ++mapped_;
}

std::optional<Gpfn>
PageTable::unmap(std::uint64_t vaddr)
{
    std::uint64_t *slot = leafSlot(vaddr);
    if (!slot || !(*slot & bitPresent))
        return std::nullopt;
    const Gpfn pfn = *slot >> pfnShift;
    *slot = 0;
    hos_assert(mapped_ > 0, "unmap accounting underflow");
    --mapped_;
    return pfn;
}

std::optional<PteView>
PageTable::lookup(std::uint64_t vaddr) const
{
    const std::uint64_t *slot = leafSlot(vaddr);
    if (!slot || !(*slot & bitPresent))
        return std::nullopt;
    return decodeLeaf(*slot);
}

bool
PageTable::isMapped(std::uint64_t vaddr) const
{
    const std::uint64_t *slot = leafSlot(vaddr);
    return slot && (*slot & bitPresent);
}

bool
PageTable::touch(std::uint64_t vaddr, bool write)
{
    std::uint64_t *slot = leafSlot(vaddr);
    if (!slot || !(*slot & bitPresent))
        return false;
    *slot |= bitAccessed;
    if (write)
        *slot |= bitDirty;
    return true;
}

bool
PageTable::remap(std::uint64_t vaddr, Gpfn new_pfn)
{
    std::uint64_t *slot = leafSlot(vaddr);
    if (!slot || !(*slot & bitPresent))
        return false;
    const std::uint64_t flags = *slot & (bitPresent | bitRw);
    // Remap drops accessed/dirty: the migration path copies data and
    // the hardware re-marks on next touch.
    *slot = (new_pfn << pfnShift) | flags;
    return true;
}

std::uint64_t
PageTable::scanNode(
    Node &node, unsigned level, std::uint64_t va_base, std::uint64_t va_lo,
    std::uint64_t va_hi,
    const std::function<void(std::uint64_t, const PteView &)> &visit,
    bool clear_accessed, std::uint64_t max_visits)
{
    const std::uint64_t slot_span =
        1ull << (mem::pageShift + bitsPerLevel * level);
    std::uint64_t visited = 0;

    unsigned first = 0;
    if (va_lo > va_base)
        first = static_cast<unsigned>((va_lo - va_base) / slot_span);

    for (unsigned i = first; i < entriesPerNode; ++i) {
        if (visited >= max_visits)
            break;
        const std::uint64_t slot_va = va_base + slot_span * i;
        if (slot_va >= va_hi)
            break;
        std::uint64_t &slot = node.slots[i];
        if (!(slot & bitPresent))
            continue;
        if (level == 0) {
            ++visited;
            visit(slot_va, decodeLeaf(slot));
            if (clear_accessed)
                slot &= ~bitAccessed;
        } else {
            Node *child = reinterpret_cast<Node *>(slot & ptrMask);
            visited += scanNode(*child, level - 1, slot_va, va_lo, va_hi,
                                visit, clear_accessed,
                                max_visits - visited);
        }
    }
    return visited;
}

std::uint64_t
PageTable::scanRange(
    std::uint64_t va_lo, std::uint64_t va_hi,
    const std::function<void(std::uint64_t, const PteView &)> &visit,
    bool clear_accessed, std::uint64_t max_visits)
{
    if (va_lo >= va_hi || max_visits == 0)
        return 0;
    va_hi = std::min(va_hi, vaSpan);
    return scanNode(*root_, levels - 1, 0, va_lo, va_hi, visit,
                    clear_accessed, max_visits);
}

} // namespace hos::guestos
