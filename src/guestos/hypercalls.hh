/**
 * @file
 * Guest -> VMM interface (the hypercall surface the guest sees).
 *
 * The on-demand allocation driver is a split front-end/back-end pair
 * (Figure 5): the guest front-end asks the back-end to populate or
 * unpopulate guest page frames of a specific memory node. Defining
 * the back-end as an abstract interface here keeps the guest OS
 * library free of VMM dependencies; hos::vmm::Vmm implements it.
 */

#ifndef HOS_GUESTOS_HYPERCALLS_HH
#define HOS_GUESTOS_HYPERCALLS_HH

#include <cstdint>
#include <vector>

#include "guestos/page.hh"

namespace hos::guestos {

/** The VMM side of the on-demand allocation (balloon) channel. */
class BalloonBackendIf
{
  public:
    virtual ~BalloonBackendIf() = default;

    /**
     * Back `gpfns` of guest node `guest_node` with machine frames of
     * the matching memory type. Returns how many were populated (a
     * prefix of the list); fewer than requested means the VMM is out
     * of that memory type or the fair-share policy said no.
     */
    virtual std::uint64_t
    populatePages(unsigned guest_node, const std::vector<Gpfn> &gpfns) = 0;

    /** Release the machine frames backing `gpfns` back to the VMM. */
    virtual void
    unpopulatePages(unsigned guest_node,
                    const std::vector<Gpfn> &gpfns) = 0;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_HYPERCALLS_HH
