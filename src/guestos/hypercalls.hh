/**
 * @file
 * Guest -> VMM interface (the hypercall surface the guest sees).
 *
 * The on-demand allocation driver is a split front-end/back-end pair
 * (Figure 5): the guest front-end asks the back-end to populate or
 * unpopulate guest page frames of a specific memory node. Defining
 * the back-end as an abstract interface here keeps the guest OS
 * library free of VMM dependencies; hos::vmm::Vmm implements it.
 */

#ifndef HOS_GUESTOS_HYPERCALLS_HH
#define HOS_GUESTOS_HYPERCALLS_HH

#include <cstdint>
#include <vector>

#include "guestos/page.hh"

namespace hos::guestos {

/**
 * Read-only view of gpfns offered to the back-end for population.
 *
 * The guest's unpopulated stack keeps its top window lazily reversed
 * (see GuestKernel::commitUnpopulatedGpfns); this view resolves that
 * indexing without materializing a vector per hypercall. Index 0 is
 * the first gpfn to populate; grants must be strict prefixes.
 */
class UnpopulatedView
{
  public:
    UnpopulatedView() = default;
    UnpopulatedView(const Gpfn *stack, std::uint64_t stack_size,
                    std::uint64_t reversed, std::uint64_t n)
        : stack_(stack), stack_size_(stack_size), reversed_(reversed),
          n_(n)
    {
    }

    /** Wrap a plain vector: view[i] == gpfns[i]. */
    explicit UnpopulatedView(const std::vector<Gpfn> &gpfns)
        : stack_(gpfns.data()), stack_size_(gpfns.size()),
          reversed_(gpfns.size()), n_(gpfns.size())
    {
    }

    std::uint64_t size() const { return n_; }
    bool empty() const { return n_ == 0; }
    Gpfn operator[](std::uint64_t i) const
    {
        return i < reversed_ ? stack_[stack_size_ - reversed_ + i]
                             : stack_[stack_size_ - 1 - i];
    }

  private:
    const Gpfn *stack_ = nullptr;
    std::uint64_t stack_size_ = 0; ///< entries in the backing stack
    std::uint64_t reversed_ = 0;   ///< top entries stored reversed
    std::uint64_t n_ = 0;          ///< entries this view exposes
};

/** The VMM side of the on-demand allocation (balloon) channel. */
class BalloonBackendIf
{
  public:
    virtual ~BalloonBackendIf() = default;

    /**
     * Back `gpfns` of guest node `guest_node` with machine frames of
     * the matching memory type. Returns how many were populated (a
     * prefix of the list); fewer than requested means the VMM is out
     * of that memory type or the fair-share policy said no.
     */
    virtual std::uint64_t
    populatePages(unsigned guest_node, const UnpopulatedView &gpfns) = 0;

    /** Release the machine frames backing `gpfns` back to the VMM. */
    virtual void
    unpopulatePages(unsigned guest_node,
                    const std::vector<Gpfn> &gpfns) = 0;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_HYPERCALLS_HH
