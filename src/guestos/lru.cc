#include "guestos/lru.hh"

#include "check/page_state.hh"

namespace hos::guestos {

SplitLru::SplitLru(PageArray &pages)
    : pages_(pages), active_(pages, listLruActive),
      inactive_(pages, listLruInactive)
{
}

void
SplitLru::addPage(Gpfn pfn)
{
    PageRef p = pages_.page(pfn);
    HOS_CHECK_CHEAP(check::validateLruInsert(p, "lru.addPage"));
    hos_assert(p.lru() == LruState::None, "page already on an LRU");
    p.setLru(LruState::Inactive);
    p.setReferenced(false);
    inactive_.pushFront(pfn);
}

void
SplitLru::addPageActive(Gpfn pfn)
{
    PageRef p = pages_.page(pfn);
    HOS_CHECK_CHEAP(check::validateLruInsert(p, "lru.addPageActive"));
    hos_assert(p.lru() == LruState::None, "page already on an LRU");
    p.setLru(LruState::Active);
    p.setReferenced(false);
    active_.pushFront(pfn);
}

void
SplitLru::removePage(Gpfn pfn)
{
    PageRef p = pages_.page(pfn);
    switch (p.lru()) {
      case LruState::Active:
        active_.remove(pfn);
        break;
      case LruState::Inactive:
        inactive_.remove(pfn);
        break;
      case LruState::None:
        sim::panic("removing page %llu not on an LRU",
                   static_cast<unsigned long long>(pfn));
    }
    p.setLru(LruState::None);
    p.setReferenced(false);
}

void
SplitLru::touch(Gpfn pfn)
{
    PageRef p = pages_.page(pfn);
    switch (p.lru()) {
      case LruState::Inactive:
        if (p.referenced()) {
            // Second touch: promote (mark_page_accessed semantics).
            inactive_.remove(pfn);
            p.setLru(LruState::Active);
            p.setReferenced(false);
            active_.pushFront(pfn);
        } else {
            p.setReferenced(true);
        }
        break;
      case LruState::Active:
        p.setReferenced(true);
        break;
      case LruState::None:
        break; // not managed (e.g., pagetable pages)
    }
}

void
SplitLru::deactivate(Gpfn pfn)
{
    PageRef p = pages_.page(pfn);
    if (p.lru() == LruState::Inactive)
        return;
    hos_assert(p.lru() == LruState::Active, "deactivating non-LRU page");
    active_.remove(pfn);
    p.setLru(LruState::Inactive);
    p.setReferenced(false);
    inactive_.pushFront(pfn);
}

bool
SplitLru::contains(Gpfn pfn) const
{
    return pages_.page(pfn).lru() != LruState::None;
}

std::uint64_t
SplitLru::balance(double target_ratio, std::uint64_t nscan)
{
    std::uint64_t demoted = 0;
    const std::uint64_t total = totalCount();
    for (std::uint64_t i = 0; i < nscan && !active_.empty(); ++i) {
        if (static_cast<double>(inactive_.size()) >=
            target_ratio * static_cast<double>(total)) {
            break;
        }
        const Gpfn pfn = active_.tail();
        PageRef p = pages_.page(pfn);
        scanned_.inc();
        if (p.referenced()) {
            p.setReferenced(false);
            active_.moveToFront(pfn);
            continue;
        }
        active_.remove(pfn);
        p.setLru(LruState::Inactive);
        inactive_.pushFront(pfn);
        ++demoted;
    }
    return demoted;
}

} // namespace hos::guestos
