#include "guestos/page_cache.hh"

#include <algorithm>

#include "sim/log.hh"

namespace hos::guestos {

PageCache::PageCache(PageArray &pages, PageCacheBacking &backing,
                     BlockDevice &disk, unsigned readahead_pages)
    : pages_(pages), backing_(backing), disk_(disk),
      readahead_pages_(readahead_pages)
{
}

FileId
PageCache::createFile(std::uint64_t size_bytes)
{
    files_.push_back(FileMeta{size_bytes, ~std::uint64_t(0), {}});
    return static_cast<FileId>(files_.size() - 1);
}

std::uint64_t
PageCache::fileSize(FileId file) const
{
    hos_assert(file < files_.size(), "unknown file");
    return files_[file].size;
}

void
PageCache::populate(FileMeta &meta, FileId file, std::uint64_t first_page,
                    std::uint64_t last_page, MemHint hint, IoResult &res,
                    bool for_write)
{
    // Collect the missing page indexes, then fetch them as one run
    // (the device model rewards sequential transfers).
    std::vector<std::uint64_t> missing;
    for (std::uint64_t idx = first_page; idx <= last_page; ++idx) {
        auto it = meta.by_index_.find(idx);
        if (it != meta.by_index_.end()) {
            hits_.inc();
            backing_.touchIoPage(it->second, for_write);
            res.pages.push_back(it->second);
        } else {
            missing.push_back(idx);
        }
    }
    res.pages_touched += last_page - first_page + 1;

    if (missing.empty())
        return;

    std::vector<Gpfn> filled;
    for (std::uint64_t idx : missing) {
        const Gpfn pfn = backing_.allocIoPage(PageType::PageCache, hint);
        if (pfn == invalidGpfn) {
            // Out of memory for cache pages: serve the rest directly
            // from disk without caching (uncommon; accounted as a
            // miss each time).
            misses_.inc();
            res.pages_missed += 1;
            if (!for_write)
                res.disk_time += disk_.read(mem::pageSize, false);
            continue;
        }
        meta.by_index_.emplace(idx, pfn);
        reverse_.emplace(pfn, ReverseEntry{file, idx});
        pages_.page(pfn).setUnderIo(true);
        filled.push_back(pfn);
        res.pages.push_back(pfn);
        misses_.inc();
        res.pages_missed += 1;
    }

    if (!filled.empty()) {
        if (!for_write) {
            // One transfer for the whole run; runs of >= 8 pages are
            // treated as sequential.
            const bool seq = filled.size() >= 8;
            res.disk_time +=
                disk_.read(filled.size() * mem::pageSize, seq);
        }
        for (Gpfn pfn : filled) {
            PageRef p = pages_.page(pfn);
            p.setUnderIo(false);
            if (for_write) {
                if (!p.dirty()) {
                    p.setDirty(true);
                    ++dirty_count_;
                    dirty_fifo_.push_back(pfn);
                }
            }
        }
        backing_.onIoComplete(filled,
                              PageCacheBacking::IoKind::ReadFill);
    }
}

IoResult
PageCache::read(FileId file, std::uint64_t offset, std::uint64_t len,
                MemHint hint)
{
    hos_assert(file < files_.size(), "unknown file");
    hos_assert(len > 0, "zero-length read");
    FileMeta &meta = files_[file];

    const std::uint64_t first = offset / mem::pageSize;
    std::uint64_t last = (offset + len - 1) / mem::pageSize;

    // Sequential pattern => extend with read-ahead.
    const bool sequential = offset == meta.last_read_end;
    meta.last_read_end = offset + len;
    if (sequential && meta.size > 0) {
        const std::uint64_t eof_page = (meta.size - 1) / mem::pageSize;
        last = std::min(last + readahead_pages_, eof_page);
    }

    IoResult res;
    populate(meta, file, first, last, hint, res, false);
    return res;
}

IoResult
PageCache::write(FileId file, std::uint64_t offset, std::uint64_t len,
                 MemHint hint)
{
    hos_assert(file < files_.size(), "unknown file");
    hos_assert(len > 0, "zero-length write");
    FileMeta &meta = files_[file];
    meta.size = std::max(meta.size, offset + len);

    const std::uint64_t first = offset / mem::pageSize;
    const std::uint64_t last = (offset + len - 1) / mem::pageSize;

    IoResult res;
    populate(meta, file, first, last, hint, res, true);
    // Dirty every page touched by the write (hits included).
    for (Gpfn pfn : res.pages) {
        PageRef p = pages_.page(pfn);
        if (!p.dirty()) {
            p.setDirty(true);
            ++dirty_count_;
            dirty_fifo_.push_back(pfn);
        }
    }
    return res;
}

Gpfn
PageCache::mapPage(FileId file, std::uint64_t offset, MemHint hint,
                   sim::Duration &io_time)
{
    hos_assert(file < files_.size(), "unknown file");
    FileMeta &meta = files_[file];
    const std::uint64_t idx = offset / mem::pageSize;

    auto it = meta.by_index_.find(idx);
    if (it != meta.by_index_.end()) {
        hits_.inc();
        backing_.touchIoPage(it->second, false);
        return it->second;
    }

    IoResult res;
    populate(meta, file, idx, idx, hint, res, false);
    io_time += res.disk_time;
    auto again = meta.by_index_.find(idx);
    return again == meta.by_index_.end() ? invalidGpfn : again->second;
}

sim::Duration
PageCache::writeback(std::uint64_t max_pages)
{
    std::vector<Gpfn> cleaned;
    while (!dirty_fifo_.empty() && cleaned.size() < max_pages) {
        const Gpfn pfn = dirty_fifo_.front();
        dirty_fifo_.pop_front();
        if (!owns(pfn))
            continue; // evicted since queued
        PageRef p = pages_.page(pfn);
        if (!p.dirty())
            continue; // already cleaned
        p.setDirty(false);
        hos_assert(dirty_count_ > 0, "dirty count underflow");
        --dirty_count_;
        cleaned.push_back(pfn);
    }
    if (cleaned.empty())
        return 0;

    const sim::Duration t =
        disk_.write(cleaned.size() * mem::pageSize, cleaned.size() >= 8);
    backing_.onIoComplete(cleaned, PageCacheBacking::IoKind::Writeback);
    return t;
}

bool
PageCache::evictPage(Gpfn pfn)
{
    auto it = reverse_.find(pfn);
    hos_assert(it != reverse_.end(), "evicting a non-cache page");
    const PageRef p = pages_.page(pfn);
    if (p.dirty() || p.under_io())
        return false;

    FileMeta &meta = files_[it->second.file];
    meta.by_index_.erase(it->second.page_index);
    reverse_.erase(it);
    backing_.freeIoPage(pfn);
    return true;
}

void
PageCache::remapPage(Gpfn old_pfn, Gpfn new_pfn)
{
    auto it = reverse_.find(old_pfn);
    hos_assert(it != reverse_.end(), "remapping a non-cache page");
    const ReverseEntry entry = it->second;
    reverse_.erase(it);

    FileMeta &meta = files_[entry.file];
    meta.by_index_[entry.page_index] = new_pfn;
    reverse_.emplace(new_pfn, entry);

    PageRef oldp = pages_.page(old_pfn);
    PageRef newp = pages_.page(new_pfn);
    newp.setDirty(oldp.dirty());
    newp.setUnderIo(oldp.under_io());
    if (oldp.dirty()) {
        // The dirty FIFO entry for the old frame is skipped lazily
        // (owns() check in writeback); queue the new frame.
        oldp.setDirty(false);
        dirty_fifo_.push_back(new_pfn);
    }
}

bool
PageCache::owns(Gpfn pfn) const
{
    return reverse_.count(pfn) > 0;
}

} // namespace hos::guestos
