/**
 * @file
 * On-demand allocation (balloon) driver, guest front-end.
 *
 * HeteroOS extends classic ballooning with multi-dimensional,
 * memory-type-specific state (Section 3.1 / 4.2): the guest boots
 * with a per-type minimum reservation, and this driver grows a type's
 * population on demand (Figure 5 steps 1-2) or surrenders pages when
 * the VMM reclaims (inflate). Surrender prefers free pages, then
 * HeteroOS-LRU-demotable pages, then swap as the last resort.
 */

#ifndef HOS_GUESTOS_BALLOON_FRONTEND_HH
#define HOS_GUESTOS_BALLOON_FRONTEND_HH

#include <cstdint>
#include <vector>

#include "guestos/hypercalls.hh"
#include "guestos/page.hh"
#include "mem/mem_spec.hh"
#include "sim/stats.hh"

namespace hos::guestos {

class GuestKernel;

/** Per-memory-type balloon state and operations. */
class BalloonFrontend
{
  public:
    explicit BalloonFrontend(GuestKernel &kernel);

    /** Connect to the VMM back-end (done at VM registration). */
    void attachBackend(BalloonBackendIf *backend) { backend_ = backend; }
    bool attached() const { return backend_ != nullptr; }

    /**
     * Route requestPages through the pre-SoA take/return protocol
     * (materializes a gpfn vector per hypercall). Bit-identical to
     * the default peek/commit path; kept for before/after self-perf
     * measurement, like setLegacyPlacementSampling.
     */
    void setLegacyPath(bool on) { legacy_path_ = on; }

    /**
     * Populate the initial reservation of a node (boot path).
     * Returns pages actually granted.
     */
    std::uint64_t bootPopulate(unsigned node_id, std::uint64_t pages);

    /**
     * Grow a memory type's population by up to `pages` (steps 1-2 of
     * Figure 5). Granted pages join the node's buddy allocator.
     * Returns pages granted.
     */
    std::uint64_t requestPages(mem::MemType type, std::uint64_t pages);

    /**
     * Give `pages` of a type back to the VMM (balloon inflate).
     * Returns pages surrendered (may be fewer if the guest cannot
     * free enough even after reclaim and swap).
     */
    std::uint64_t surrenderPages(mem::MemType type, std::uint64_t pages);

    /** Currently populated pages of a node. */
    std::uint64_t populated(unsigned node_id) const;

    std::uint64_t totalRequested() const { return requested_.value(); }
    std::uint64_t totalGranted() const { return granted_.value(); }
    std::uint64_t totalSurrendered() const { return surrendered_.value(); }

  private:
    GuestKernel &kernel_;
    BalloonBackendIf *backend_ = nullptr;
    bool legacy_path_ = false;
    std::vector<std::uint64_t> populated_; ///< per node
    sim::Counter requested_;
    sim::Counter granted_;
    sim::Counter surrendered_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_BALLOON_FRONTEND_HH
