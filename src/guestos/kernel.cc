#include "guestos/kernel.hh"

#include <algorithm>

#include "check/page_state.hh"
#include "prof/prof.hh"
#include "sim/log.hh"
#include "xray/xray.hh"

namespace hos::guestos {

namespace {

/**
 * The overheadKindName table in index order, handed to hos::prof so
 * profile reports can label charge rows without prof depending on
 * guestos (test_prof.cc pins the two tables against each other).
 */
constexpr const char *kOverheadNamesForProf[numOverheadKinds] = {
    "alloc",     "reclaim",   "migration", "hotscan",
    "balloon",   "writeback", "io",        "swap",
};

} // namespace

const char *
overheadKindName(OverheadKind k)
{
    switch (k) {
      case OverheadKind::Alloc:
        return "alloc";
      case OverheadKind::Reclaim:
        return "reclaim";
      case OverheadKind::Migration:
        return "migration";
      case OverheadKind::HotScan:
        return "hotscan";
      case OverheadKind::Balloon:
        return "balloon";
      case OverheadKind::Writeback:
        return "writeback";
      case OverheadKind::Io:
        return "io";
      case OverheadKind::Swap:
        return "swap";
    }
    return "?";
}

namespace {

std::uint64_t
totalMaxPages(const GuestConfig &cfg)
{
    std::uint64_t n = 0;
    for (const auto &nc : cfg.nodes)
        n += mem::bytesToPages(nc.max_bytes);
    return n;
}

} // namespace

GuestKernel::GuestKernel(GuestConfig cfg)
    : cfg_(std::move(cfg)), stats_(cfg_.name), rng_(cfg_.seed),
      tlb_(cfg_.tlb), disk_(cfg_.disk), pages_(totalMaxPages(cfg_))
{
    hos_assert(!cfg_.nodes.empty(), "guest needs at least one node");

    prof::registerCostKindNames(kOverheadNamesForProf,
                                numOverheadKinds);

    // Lay out nodes back to back in the gpfn space and stamp each
    // page with its node identity.
    Gpfn base = 0;
    for (unsigned id = 0; id < cfg_.nodes.size(); ++id) {
        const auto &nc = cfg_.nodes[id];
        const std::uint64_t span = mem::bytesToPages(nc.max_bytes);
        nodes_.push_back(std::make_unique<NumaNode>(id, nc.type, pages_,
                                                    base, span));
        for (Gpfn pfn = base; pfn < base + span; ++pfn) {
            PageRef p = pages_.page(pfn);
            p.setNumaNode(static_cast<std::uint8_t>(id));
            p.setMemType(nc.type);
        }
        // Every gpfn starts unpopulated; LIFO so low gpfns pop first.
        auto &unpop = unpopulated_.emplace_back();
        unpop.v.reserve(span);
        for (Gpfn pfn = base + span; pfn-- > base;)
            unpop.v.push_back(pfn);
        base += span;
    }

    percpu_ = std::make_unique<PerCpuPageLists>(
        pages_, cfg_.cpus, static_cast<unsigned>(nodes_.size()));
    allocator_ =
        std::make_unique<HeteroAllocator>(*this, cfg_.alloc, cfg_.seed);
    hetero_lru_ = std::make_unique<HeteroLru>(*this, cfg_.lru);
    balloon_ = std::make_unique<BalloonFrontend>(*this);
    migrator_ = std::make_unique<MigrationFrontend>(*this);
    page_cache_ = std::make_unique<PageCache>(pages_, *this, disk_,
                                              cfg_.readahead_pages);
    slab_ = std::make_unique<SlabAllocator>(*this);
    swap_ = std::make_unique<SwapDevice>(
        disk_, mem::bytesToPages(cfg_.swap_bytes));
    residency_ = std::make_unique<ResidencyIndex>(*this);
}

GuestKernel::~GuestKernel() = default;

bool
GuestKernel::hasType(mem::MemType type) const
{
    for (const auto &n : nodes_) {
        if (n->memType() == type)
            return true;
    }
    return false;
}

std::uint64_t
GuestKernel::effectiveFreePages(NumaNode &node)
{
    return node.freePages() + percpu_->cachedOnNode(node.id());
}

AddressSpace &
GuestKernel::createProcess(const std::string &name)
{
    (void)name;
    const auto pid = static_cast<ProcessId>(processes_.size());
    processes_.push_back(std::make_unique<AddressSpace>(pid, *this));
    return *processes_.back();
}

AddressSpace &
GuestKernel::process(ProcessId pid)
{
    hos_assert(pid < processes_.size(), "bad pid");
    return *processes_[pid];
}

bool
GuestKernel::hasProcess(ProcessId pid) const
{
    return pid < processes_.size();
}

Gpfn
GuestKernel::allocPage(const AllocRequest &req)
{
    return allocator_->allocPage(req);
}

void
GuestKernel::freePage(Gpfn pfn, unsigned cpu)
{
    const PageRef p = pages_.page(pfn);
    hos_assert(p.lru() == LruState::None,
               "freeing a page still on the LRU");
    if (auto *xr = xray::active())
        xr->onFree(vm_tag_, pfn, events_.now());
    allocator_->freePage(pfn, cpu);
}

Gpfn
GuestKernel::allocPageOnNode(unsigned node_id, PageType type,
                             unsigned cpu)
{
    NumaNode &n = node(node_id);
    const Gpfn pfn = percpu_->alloc(cpu, n);
    if (pfn == invalidGpfn)
        return invalidGpfn;
    PageRef p = pages_.page(pfn);
    HOS_CHECK_CHEAP(
        check::validateAlloc(p, type, "kernel.allocPageOnNode"));
    p.setType(type);
    if (auto *xr = xray::active()) {
        xr->onAlloc(vm_tag_, pfn,
                    static_cast<std::uint8_t>(backingOf(pfn)),
                    events_.now());
    }
    return pfn;
}

std::vector<Gpfn>
GuestKernel::takeUnpopulatedGpfns(unsigned node_id, std::uint64_t n)
{
    hos_assert(node_id < unpopulated_.size(), "bad node id");
    auto &stack = unpopulated_[node_id];
    stack.materialize();
    std::vector<Gpfn> out;
    const std::uint64_t take = std::min<std::uint64_t>(n, stack.size());
    out.reserve(take);
    for (std::uint64_t i = 0; i < take; ++i) {
        out.push_back(stack.v.back());
        stack.v.pop_back();
    }
    return out;
}

void
GuestKernel::returnUnpopulatedGpfns(unsigned node_id,
                                    const std::vector<Gpfn> &gpfns)
{
    hos_assert(node_id < unpopulated_.size(), "bad node id");
    auto &stack = unpopulated_[node_id];
    stack.materialize();
    for (Gpfn pfn : gpfns) {
        hos_assert(!pages_.page(pfn).populated(),
                   "returning a populated gpfn");
        stack.v.push_back(pfn);
    }
}

UnpopulatedView
GuestKernel::peekUnpopulatedGpfns(unsigned node_id,
                                  std::uint64_t n) const
{
    hos_assert(node_id < unpopulated_.size(), "bad node id");
    const auto &stack = unpopulated_[node_id];
    return {stack.v.data(), stack.size(), stack.rev,
            std::min<std::uint64_t>(n, stack.size())};
}

void
GuestKernel::commitUnpopulatedGpfns(unsigned node_id,
                                    std::uint64_t peeked,
                                    std::uint64_t granted)
{
    hos_assert(node_id < unpopulated_.size(), "bad node id");
    auto &stack = unpopulated_[node_id];
    hos_assert(peeked <= stack.size() && granted <= peeked,
               "balloon commit out of range");
    if (stack.rev == peeked) {
        // The peeked window is exactly the reversed one: its granted
        // prefix sits at the window's physical start, and dropping it
        // leaves the remainder already in post-return order.
        const auto base = static_cast<std::ptrdiff_t>(
            stack.size() - peeked);
        stack.v.erase(stack.v.begin() + base,
                      stack.v.begin() + base +
                          static_cast<std::ptrdiff_t>(granted));
        stack.rev = 0;
        return;
    }
    stack.materialize();
    // Physical top-of-stack order: the granted prefix of the peek is
    // the physical tail; the ungranted remainder comes back reversed.
    stack.v.resize(stack.size() - granted);
    stack.rev = peeked - granted;
    if (stack.rev <= 1)
        stack.rev = 0; // a 1-entry reversal is the identity
}

void
GuestKernel::lruAdd(Gpfn pfn)
{
    zoneOf(pfn).lru().addPage(pfn);
}

void
GuestKernel::lruAddActive(Gpfn pfn)
{
    zoneOf(pfn).lru().addPageActive(pfn);
}

void
GuestKernel::lruRemove(Gpfn pfn)
{
    zoneOf(pfn).lru().removePage(pfn);
}

void
GuestKernel::lruTouch(Gpfn pfn)
{
    zoneOf(pfn).lru().touch(pfn);
}

void
GuestKernel::charge(OverheadKind kind, sim::Duration d)
{
    overhead_total_[static_cast<std::size_t>(kind)] += d;
    pending_overhead_ += d;
    // Attribute to the innermost open profiler span (no-op when
    // profiling is off or compiled out). Observation only: the
    // counters above are the simulation's source of truth.
    prof::onCharge(static_cast<std::uint8_t>(kind), d);
}

sim::Duration
GuestKernel::drainPendingOverhead()
{
    const sim::Duration d = pending_overhead_;
    pending_overhead_ = 0;
    return d;
}

sim::Duration
GuestKernel::overheadTotal(OverheadKind kind) const
{
    return overhead_total_[static_cast<std::size_t>(kind)];
}

sim::Duration
GuestKernel::overheadGrandTotal() const
{
    sim::Duration d = 0;
    for (auto v : overhead_total_)
        d += v;
    return d;
}

void
GuestKernel::startDaemons()
{
    // Demand-window rotation (the allocator's 100 ms epoch).
    events_.schedulePeriodic(cfg_.alloc.epoch, [this](sim::Duration p) {
        allocator_->rotateEpoch();
        return p;
    });
    // HeteroOS-LRU maintenance tick.
    if (cfg_.lru.enabled) {
        events_.schedulePeriodic(sim::milliseconds(50),
                                 [this](sim::Duration p) {
                                     hetero_lru_->tick();
                                     return p;
                                 });
    }
    // Dirty page flusher (kupdate-style, 500 ms).
    events_.schedulePeriodic(
        sim::milliseconds(500), [this](sim::Duration p) {
            HOS_PROF_SPAN(span, prof::SpanKind::WritebackPass, events_);
            const auto t = page_cache_->writeback(4096);
            charge(OverheadKind::Writeback, t / 4);
            return p;
        });
}

void
GuestKernel::syncStats()
{
    stats_.counter("alloc.requests")
        .set(allocator_->totalRequests());
    stats_.counter("alloc.fast_misses")
        .set(allocator_->totalFastMisses());
    for (std::size_t i = 0; i < numPageTypes; ++i) {
        const auto t = static_cast<PageType>(i);
        stats_.counter(std::string("alloc.") + pageTypeName(t))
            .set(allocator_->allocCount(t));
    }

    for (auto &node : nodes_) {
        const std::string prefix =
            std::string("node.") + mem::memTypeName(node->memType());
        stats_.gauge(prefix + ".free_pages").set(
            static_cast<std::int64_t>(node->freePages()));
        stats_.gauge(prefix + ".managed_pages").set(
            static_cast<std::int64_t>(node->managedPages()));
    }

    stats_.counter("migration.migrated")
        .set(migrator_->totalMigrated());
    stats_.counter("migration.skipped").set(migrator_->totalSkipped());

    stats_.counter("balloon.requested")
        .set(balloon_->totalRequested());
    stats_.counter("balloon.granted").set(balloon_->totalGranted());
    stats_.counter("balloon.surrendered")
        .set(balloon_->totalSurrendered());

    stats_.counter("swap.out").set(swap_->totalSwappedOut());
    stats_.counter("swap.in").set(swap_->totalSwappedIn());
    stats_.gauge("swap.used_pages").set(
        static_cast<std::int64_t>(swap_->usedPages()));

    const HeteroLruStats &lru = hetero_lru_->stats();
    stats_.counter("lru.demoted_anon").set(lru.demoted_anon);
    stats_.counter("lru.demoted_cache").set(lru.demoted_cache);
    stats_.counter("lru.dropped_cache").set(lru.dropped_cache);
    stats_.counter("lru.reclaim_passes").set(lru.reclaim_passes);
    stats_.counter("lru.pages_scanned").set(lru.pages_scanned);

    stats_.counter("cache.hits").set(page_cache_->hits());
    stats_.counter("cache.misses").set(page_cache_->misses());
    stats_.gauge("cache.pages").set(
        static_cast<std::int64_t>(page_cache_->cachedPages()));

    for (std::size_t i = 0; i < numOverheadKinds; ++i) {
        const auto k = static_cast<OverheadKind>(i);
        stats_.counter(std::string("overhead_ns.") +
                       overheadKindName(k))
            .set(overhead_total_[i]);
    }
}

// --- MmBacking -------------------------------------------------------

Gpfn
GuestKernel::allocUserPage(PageType type, MemHint hint, ProcessId process,
                           std::uint64_t vaddr)
{
    AllocRequest req;
    req.type = type;
    req.hint = hint;
    req.process = process;
    req.vaddr = vaddr;
    const Gpfn pfn = allocator_->allocPage(req);
    if (pfn == invalidGpfn)
        return invalidGpfn;
    PageRef p = pages_.page(pfn);
    p.setOwnerProcess(process);
    p.setVaddr(vaddr);
    lruAdd(pfn);
    return pfn;
}

void
GuestKernel::freeUserPage(Gpfn pfn)
{
    const PageRef p = pages_.page(pfn);
    if (p.lru() != LruState::None)
        lruRemove(pfn);
    freePage(pfn);
}

Gpfn
GuestKernel::fileBackedPage(FileId file, std::uint64_t offset,
                            MemHint hint, ProcessId process,
                            std::uint64_t vaddr)
{
    (void)process;
    (void)vaddr;
    HOS_PROF_SPAN(io_span, prof::SpanKind::IoFill, events_);
    sim::Duration io_time = 0;
    const Gpfn pfn = page_cache_->mapPage(file, offset, hint, io_time);
    charge(OverheadKind::Io, io_time);
    return pfn;
}

void
GuestKernel::onUnmapRelease(const std::vector<Gpfn> &anon_released,
                            const std::vector<Gpfn> &file_released)
{
    (void)anon_released; // already freed by the address space
    hetero_lru_->onUnmapRelease(file_released);
}

void
GuestKernel::onPageTablePages(std::int64_t delta)
{
    if (delta > 0) {
        for (std::int64_t i = 0; i < delta; ++i) {
            AllocRequest req;
            req.type = PageType::PageTable;
            const Gpfn pfn = allocator_->allocPage(req);
            if (pfn == invalidGpfn) {
                ++pt_unbacked_;
                continue;
            }
            pages_.page(pfn).setUnevictable(true);
            pt_pages_.push_back(pfn);
        }
    } else {
        for (std::int64_t i = 0; i < -delta; ++i) {
            if (pt_unbacked_ > 0) {
                --pt_unbacked_;
                continue;
            }
            if (pt_pages_.empty())
                break;
            const Gpfn pfn = pt_pages_.back();
            pt_pages_.pop_back();
            pages_.page(pfn).setUnevictable(false);
            freePage(pfn);
        }
    }
}

// --- PageCacheBacking -------------------------------------------------

Gpfn
GuestKernel::allocIoPage(PageType type, MemHint hint)
{
    AllocRequest req;
    req.type = type;
    req.hint = hint;
    const Gpfn pfn = allocator_->allocPage(req);
    if (pfn == invalidGpfn)
        return invalidGpfn;
    lruAdd(pfn);
    return pfn;
}

void
GuestKernel::freeIoPage(Gpfn pfn)
{
    const PageRef p = pages_.page(pfn);
    if (p.lru() != LruState::None)
        lruRemove(pfn);
    freePage(pfn);
}

void
GuestKernel::touchIoPage(Gpfn pfn, bool write)
{
    (void)write; // dirtiness is tracked by the page cache itself
    lruTouch(pfn);
    pages_.page(pfn).setPteAccessed(true); // I/O touches are references
}

void
GuestKernel::onIoComplete(const std::vector<Gpfn> &pages, IoKind kind)
{
    if (kind == IoKind::Writeback) {
        if (auto *xr = xray::active()) {
            for (Gpfn pfn : pages) {
                xr->onTransition(vm_tag_, pfn,
                                 xray::EventKind::Writeback,
                                 events_.now());
            }
        }
    }
    hetero_lru_->onIoComplete(pages, kind == IoKind::Writeback);
}

// --- SlabBacking --------------------------------------------------------

Gpfn
GuestKernel::allocSlabPage(PageType type, MemHint hint)
{
    AllocRequest req;
    req.type = type;
    req.hint = hint;
    const Gpfn pfn = allocator_->allocPage(req);
    if (pfn == invalidGpfn)
        return invalidGpfn;
    // Slab pages hold kernel objects referenced by pointer: pinned,
    // never on the LRU, reclaimed only when the slab page empties.
    pages_.page(pfn).setUnevictable(true);
    return pfn;
}

void
GuestKernel::freeSlabPage(Gpfn pfn)
{
    pages_.page(pfn).setUnevictable(false);
    freePage(pfn);
}

void
GuestKernel::touchSlabPage(Gpfn pfn)
{
    pages_.page(pfn).setPteAccessed(true);
}

} // namespace hos::guestos
