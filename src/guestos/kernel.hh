/**
 * @file
 * GuestKernel: the heterogeneity-aware guest OS facade.
 *
 * Wires together the paper's guest-side machinery (Section 3): fake-
 * NUMA nodes per memory type, the buddy + per-CPU allocators, the
 * HeteroOS demand-prioritizing page allocator, HeteroOS-LRU, the
 * split balloon and migration front-ends, the page cache, slab, and
 * swap. It also keeps the management-overhead accounts the workload
 * engine folds into simulated runtime.
 *
 * The kernel implements the backing interfaces of its subsystems
 * (MmBacking, PageCacheBacking, SlabBacking), making it the single
 * place where placement policy, LRU bookkeeping, and accounting meet.
 */

#ifndef HOS_GUESTOS_KERNEL_HH
#define HOS_GUESTOS_KERNEL_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "guestos/address_space.hh"
#include "guestos/balloon_frontend.hh"
#include "guestos/blockdev.hh"
#include "guestos/hetero_allocator.hh"
#include "guestos/hetero_lru.hh"
#include "guestos/migration_frontend.hh"
#include "guestos/numa.hh"
#include "guestos/page.hh"
#include "guestos/page_cache.hh"
#include "guestos/percpu_lists.hh"
#include "guestos/residency.hh"
#include "guestos/slab.hh"
#include "guestos/swap.hh"
#include "mem/tlb_model.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace hos::guestos {

/** One guest NUMA node's boot configuration. */
struct GuestNodeConfig
{
    mem::MemType type = mem::MemType::SlowMem;
    std::uint64_t max_bytes = 8 * mem::gib;     ///< node span (ceiling)
    std::uint64_t initial_bytes = 8 * mem::gib; ///< boot reservation
};

/** Guest VM configuration. */
struct GuestConfig
{
    std::string name = "guest";
    unsigned cpus = 16;
    std::uint64_t seed = 1;
    std::vector<GuestNodeConfig> nodes;
    AllocConfig alloc;
    HeteroLruConfig lru;
    BlockDeviceConfig disk;
    std::uint64_t swap_bytes = 4 * mem::gib;
    mem::TlbConfig tlb;
    unsigned readahead_pages = 32;
};

/** Categories of guest-side management overhead. */
enum class OverheadKind : std::uint8_t {
    Alloc = 0,  ///< slow-path allocation work
    Reclaim,    ///< HeteroOS-LRU scanning and demotion
    Migration,  ///< page migration walk+copy+shootdown
    HotScan,    ///< hotness-tracking costs charged to this VM
    Balloon,    ///< balloon front-end work
    Writeback,  ///< dirty page write-back
    Io,         ///< synchronous disk waits (faults on mapped files)
    Swap,       ///< swap traffic during ballooning
};

constexpr std::size_t numOverheadKinds = 8;

const char *overheadKindName(OverheadKind k);

/** The guest operating system of one VM. */
class GuestKernel final : public MmBacking,
                          public PageCacheBacking,
                          public SlabBacking
{
  public:
    explicit GuestKernel(GuestConfig cfg);
    ~GuestKernel() override;

    GuestKernel(const GuestKernel &) = delete;
    GuestKernel &operator=(const GuestKernel &) = delete;

    const GuestConfig &config() const { return cfg_; }
    const std::string &name() const { return cfg_.name; }

    /**
     * VM id this kernel is attributed to in xray telemetry. Set by
     * HeteroSystem::addVm from the VMM slot id; standalone kernels
     * (unit tests) keep the default 0.
     */
    void setVmTag(std::uint16_t vm) { vm_tag_ = vm; }
    std::uint16_t vmTag() const { return vm_tag_; }

    // --- Topology -------------------------------------------------
    unsigned numNodes() const
    {
        return static_cast<unsigned>(nodes_.size());
    }
    // node/nodeOf/zoneOf run on every page alloc, free, and LRU
    // rotation; they are defined inline for the same reason the
    // PageList operations are.
    NumaNode &node(unsigned id)
    {
        hos_assert(id < nodes_.size(), "bad node id");
        return *nodes_[id];
    }
    /** First node of the type, or nullptr if the guest has none. */
    NumaNode *nodeFor(mem::MemType type)
    {
        for (auto &n : nodes_) {
            if (n->memType() == type)
                return n.get();
        }
        return nullptr;
    }
    bool hasType(mem::MemType type) const;
    NumaNode &nodeOf(Gpfn pfn)
    {
        return node(pages_.page(pfn).numa_node());
    }
    Zone &zoneOf(Gpfn pfn) { return nodeOf(pfn).zoneOf(pfn); }

    /**
     * Pages allocatable from a node right now: buddy free pages plus
     * the per-CPU caches (invisible to the buddy but one fast-path
     * call away). Watermark checks must use this, or per-CPU caching
     * masquerades as memory pressure.
     */
    std::uint64_t effectiveFreePages(NumaNode &node);
    PageArray &pages() { return pages_; }
    PageRef pageMeta(Gpfn pfn) { return pages_.page(pfn); }

    // --- Subsystems -----------------------------------------------
    HeteroAllocator &allocator() { return *allocator_; }
    HeteroLru &heteroLru() { return *hetero_lru_; }
    BalloonFrontend &balloon() { return *balloon_; }
    MigrationFrontend &migrator() { return *migrator_; }
    PageCache &pageCache() { return *page_cache_; }
    SlabAllocator &slab() { return *slab_; }
    SwapDevice &swap() { return *swap_; }
    ResidencyIndex &residency() { return *residency_; }
    BlockDevice &disk() { return disk_; }
    PerCpuPageLists &percpu() { return *percpu_; }
    sim::EventQueue &events() { return events_; }
    mem::TlbModel &tlb() { return tlb_; }
    sim::StatGroup &stats() { return stats_; }
    sim::Rng &rng() { return rng_; }

    // --- Processes ------------------------------------------------
    AddressSpace &createProcess(const std::string &name);
    AddressSpace &process(ProcessId pid);
    bool hasProcess(ProcessId pid) const;

    // --- Page allocation -----------------------------------------
    /** Policy-driven allocation (the HeteroOS allocator path). */
    Gpfn allocPage(const AllocRequest &req);

    /** Free any allocated page (must be off the LRU). */
    void freePage(Gpfn pfn, unsigned cpu = 0);

    /**
     * Allocate directly from a specific node (reclaim/demotion path;
     * bypasses placement policy and demand statistics).
     */
    Gpfn allocPageOnNode(unsigned node_id, PageType type,
                         unsigned cpu = 0);

    // --- Balloon bookkeeping --------------------------------------
    /** Pop up to n unpopulated gpfns of a node for the balloon. */
    std::vector<Gpfn> takeUnpopulatedGpfns(unsigned node_id,
                                           std::uint64_t n);
    /** Return gpfns whose population was refused or undone. */
    void returnUnpopulatedGpfns(unsigned node_id,
                                const std::vector<Gpfn> &gpfns);
    /**
     * Zero-copy view of the top `n` unpopulated gpfns of a node, in
     * the exact order takeUnpopulatedGpfns would pop them. Valid
     * until the next mutation of the node's stack (commit/take/
     * return). Pair with commitUnpopulatedGpfns.
     */
    UnpopulatedView peekUnpopulatedGpfns(unsigned node_id,
                                         std::uint64_t n) const;
    /**
     * Settle a populate attempt made over a peeked view of `peeked`
     * entries whose first `granted` were taken (now populated).
     * Equivalent to takeUnpopulatedGpfns(peeked) followed by
     * returning the ungranted tail — including the tail's order
     * reversal — but O(1) in the common cases (nothing granted, or
     * a grant against an unreversed top).
     */
    void commitUnpopulatedGpfns(unsigned node_id, std::uint64_t peeked,
                                std::uint64_t granted);

    // --- Placement oracle ------------------------------------------
    /**
     * Which memory tier actually backs this gpfn. Defaults to the
     * guest node's type (identity backing); a VMM-exclusive policy
     * overrides it with a P2M lookup, since there the guest's view
     * is a lie. Inline: the workload engine calls this in per-page
     * loops, and the identity path is two loads.
     */
    mem::MemType backingOf(Gpfn pfn) const
    {
        if (backing_oracle_)
            return backing_oracle_(pfn);
        return pages_.page(pfn).mem_type();
    }
    bool hasBackingOracle() const
    {
        return static_cast<bool>(backing_oracle_);
    }
    void setBackingOracle(std::function<mem::MemType(Gpfn)> oracle)
    {
        backing_oracle_ = std::move(oracle);
    }

    // --- LRU helpers ------------------------------------------------
    void lruAdd(Gpfn pfn);
    void lruAddActive(Gpfn pfn);
    void lruRemove(Gpfn pfn);
    void lruTouch(Gpfn pfn);

    // --- Overhead accounting ---------------------------------------
    void charge(OverheadKind kind, sim::Duration d);
    /** Overhead accumulated since the last drain (workload phases). */
    sim::Duration drainPendingOverhead();
    /**
     * Overhead charged but not yet drained into a workload phase.
     * check::auditMetrics reconciles the metrics collector's drained
     * totals against overheadGrandTotal() minus this remainder.
     */
    sim::Duration pendingOverhead() const { return pending_overhead_; }
    sim::Duration overheadTotal(OverheadKind kind) const;
    sim::Duration overheadGrandTotal() const;

    // --- Counters ----------------------------------------------------
    /** Cumulative allocations per page type (Figure 4). */
    std::uint64_t allocCount(PageType t) const
    {
        return allocator_->allocCount(t);
    }
    std::uint64_t pageTablePages() const { return pt_pages_.size(); }

    /** Start periodic daemons (epoch rotation, LRU tick, flusher). */
    void startDaemons();

    /**
     * Refresh stats() from live subsystem state (allocator, LRU,
     * balloon, swap, page cache, per-node occupancy, overhead
     * accounts). Called by the stats-snapshot daemon via the
     * experiment's StatRegistry.
     */
    void syncStats();

    // --- MmBacking ---------------------------------------------------
    Gpfn allocUserPage(PageType type, MemHint hint, ProcessId process,
                       std::uint64_t vaddr) override;
    void freeUserPage(Gpfn pfn) override;
    Gpfn fileBackedPage(FileId file, std::uint64_t offset, MemHint hint,
                        ProcessId process, std::uint64_t vaddr) override;
    void onUnmapRelease(const std::vector<Gpfn> &anon_released,
                        const std::vector<Gpfn> &file_released) override;
    void onPageTablePages(std::int64_t delta) override;

    // --- PageCacheBacking ---------------------------------------------
    Gpfn allocIoPage(PageType type, MemHint hint) override;
    void freeIoPage(Gpfn pfn) override;
    void touchIoPage(Gpfn pfn, bool write) override;
    void onIoComplete(const std::vector<Gpfn> &pages,
                      IoKind kind) override;

    // --- SlabBacking ----------------------------------------------------
    Gpfn allocSlabPage(PageType type, MemHint hint) override;
    void freeSlabPage(Gpfn pfn) override;
    void touchSlabPage(Gpfn pfn) override;

  private:
    /**
     * Per-node LIFO of unpopulated gpfns whose top `rev` entries are
     * stored in reversed order. The balloon populate protocol pops
     * the top k, gets a strict prefix g granted, and pushes the
     * remainder back — which nets out to "drop g, reverse the new
     * top k-g". Keeping that reversal as a lazy window makes the
     * dominant futile round trip (g == 0, the DRF pressure storm)
     * cancel in O(1) instead of copying k gpfns twice.
     */
    struct UnpopulatedStack
    {
        std::vector<Gpfn> v;
        std::uint64_t rev = 0; ///< top `rev` entries stored reversed

        std::uint64_t size() const { return v.size(); }
        /** i-th entry from the logical top (i < size()). */
        Gpfn fromTop(std::uint64_t i) const
        {
            return i < rev ? v[v.size() - rev + i]
                           : v[v.size() - 1 - i];
        }
        /** Rewrite the reversed window in physical order. */
        void materialize()
        {
            if (rev > 0) {
                std::reverse(
                    v.end() - static_cast<std::ptrdiff_t>(rev),
                    v.end());
                rev = 0;
            }
        }
    };

    GuestConfig cfg_;
    std::uint16_t vm_tag_ = 0;
    sim::StatGroup stats_;
    sim::Rng rng_;
    sim::EventQueue events_;
    mem::TlbModel tlb_;
    BlockDevice disk_;

    PageArray pages_;
    std::vector<std::unique_ptr<NumaNode>> nodes_;
    std::vector<UnpopulatedStack> unpopulated_; ///< per node

    std::unique_ptr<PerCpuPageLists> percpu_;
    std::unique_ptr<HeteroAllocator> allocator_;
    std::unique_ptr<HeteroLru> hetero_lru_;
    std::unique_ptr<BalloonFrontend> balloon_;
    std::unique_ptr<MigrationFrontend> migrator_;
    std::unique_ptr<PageCache> page_cache_;
    std::unique_ptr<SlabAllocator> slab_;
    std::unique_ptr<SwapDevice> swap_;
    std::unique_ptr<ResidencyIndex> residency_;

    std::function<mem::MemType(Gpfn)> backing_oracle_;

    std::array<sim::Duration, numOverheadKinds> overhead_total_{};
    sim::Duration pending_overhead_ = 0;

    std::vector<Gpfn> pt_pages_;       ///< backing for page-table nodes
    std::uint64_t pt_unbacked_ = 0;    ///< PT nodes with no page (OOM)

    // Destroyed before the allocator et al. (declared last).
    std::vector<std::unique_ptr<AddressSpace>> processes_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_KERNEL_HH
