// vma.hh is header-only; this translation unit exists so the build
// target has a home for future out-of-line VMA helpers.
#include "guestos/vma.hh"
