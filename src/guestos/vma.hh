/**
 * @file
 * Virtual memory areas.
 *
 * VMAs are the guest-OS structure HeteroOS mines for placement
 * information: the tracking list the guest exports to the VMM
 * (Section 4.1) is a list of VMA address ranges, and mmap() grows an
 * extra flag letting applications *optionally* request FastMem or
 * SlowMem explicitly (Section 3.1) — HeteroOS itself never depends on
 * that flag.
 */

#ifndef HOS_GUESTOS_VMA_HH
#define HOS_GUESTOS_VMA_HH

#include <cstdint>
#include <string>

#include "guestos/page_types.hh"
#include "mem/mem_spec.hh"

namespace hos::guestos {

/** Identifies a simulated file in the guest filesystem. */
using FileId = std::uint32_t;
constexpr FileId noFile = ~FileId(0);

/** Kind of mapping a VMA describes. */
enum class VmaKind : std::uint8_t {
    Anon,   ///< anonymous (heap, stacks)
    File,   ///< file-backed, pages shared with the page cache
    NetBuf, ///< network buffer mapping (accounting convenience)
};

/** Optional application placement hint (the extended mmap flag). */
enum class MemHint : std::uint8_t {
    None = 0,  ///< let HeteroOS decide (the default, and the paper's focus)
    FastMem,   ///< MAP_FASTMEM
    SlowMem,   ///< MAP_SLOWMEM
};

/** One virtual memory area. */
struct Vma
{
    std::uint64_t start = 0;
    std::uint64_t length = 0;
    VmaKind kind = VmaKind::Anon;
    MemHint hint = MemHint::None;
    FileId file = noFile;
    std::uint64_t file_offset = 0; ///< bytes into the file at `start`
    std::string label;             ///< diagnostic tag ("heap", "shard")

    std::uint64_t end() const { return start + length; }
    std::uint64_t pages() const { return mem::bytesToPages(length); }

    bool contains(std::uint64_t va) const
    {
        return va >= start && va < end();
    }

    /** The page-use type pages of this VMA get. */
    PageType pageType() const
    {
        switch (kind) {
          case VmaKind::Anon:
            return PageType::Anon;
          case VmaKind::File:
            return PageType::PageCache;
          case VmaKind::NetBuf:
            return PageType::NetBuf;
        }
        return PageType::Anon;
    }
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_VMA_HH
