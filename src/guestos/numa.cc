#include "guestos/numa.hh"

#include "sim/log.hh"

namespace hos::guestos {

namespace {
/** DMA zone size on conventional (SlowMem) nodes: 16 MiB. */
constexpr std::uint64_t dmaZonePages = (16 * mem::mib) / mem::pageSize;
} // namespace

NumaNode::NumaNode(unsigned id, mem::MemType type, PageArray &pages,
                   Gpfn base, std::uint64_t span_pages)
    : id_(id), type_(type), base_(base), span_pages_(span_pages)
{
    hos_assert(span_pages > 0, "empty NUMA node");
    if (type == mem::MemType::FastMem) {
        // HeteroOS: one unified zone to conserve FastMem capacity.
        zones_.push_back(std::make_unique<Zone>(pages, ZoneKind::Unified,
                                                base, span_pages));
    } else if (span_pages > 2 * dmaZonePages) {
        zones_.push_back(std::make_unique<Zone>(pages, ZoneKind::Dma, base,
                                                dmaZonePages));
        zones_.push_back(std::make_unique<Zone>(pages, ZoneKind::Normal,
                                                base + dmaZonePages,
                                                span_pages - dmaZonePages));
    } else {
        zones_.push_back(std::make_unique<Zone>(pages, ZoneKind::Normal,
                                                base, span_pages));
    }
}

void
NumaNode::zoneOfMiss(Gpfn pfn) const
{
    sim::panic("gpfn %llu not in node %u",
               static_cast<unsigned long long>(pfn), id_);
}

Zone &
NumaNode::primaryZone()
{
    // The last zone is Unified (FastMem) or Normal (SlowMem).
    return *zones_.back();
}

const Zone &
NumaNode::primaryZone() const
{
    return *zones_.back();
}

std::uint64_t
NumaNode::freePages() const
{
    std::uint64_t n = 0;
    for (const auto &z : zones_)
        n += z->freePages();
    return n;
}

std::uint64_t
NumaNode::managedPages() const
{
    std::uint64_t n = 0;
    for (const auto &z : zones_)
        n += z->managedPages();
    return n;
}

Gpfn
NumaNode::allocBlock(unsigned order)
{
    // Prefer the primary zone; fall back to DMA only under pressure
    // (Linux's lowmem-protection behaviour, simplified).
    for (auto it = zones_.rbegin(); it != zones_.rend(); ++it) {
        const Gpfn pfn = (*it)->buddy().alloc(order);
        if (pfn != invalidGpfn)
            return pfn;
    }
    return invalidGpfn;
}

void
NumaNode::freeBlock(Gpfn pfn, unsigned order)
{
    zoneOf(pfn).buddy().free(pfn, order);
}

} // namespace hos::guestos
