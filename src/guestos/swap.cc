#include "guestos/swap.hh"

#include "mem/mem_spec.hh"
#include "sim/log.hh"

namespace hos::guestos {

SwapDevice::SwapDevice(BlockDevice &disk, std::uint64_t capacity_pages)
    : disk_(disk), capacity_pages_(capacity_pages)
{
}

sim::Duration
SwapDevice::swapOut(std::uint64_t n)
{
    hos_assert(used_pages_ + n <= capacity_pages_, "swap space exhausted");
    used_pages_ += n;
    swapped_out_.inc(n);
    return disk_.write(n * mem::pageSize, n >= 8);
}

sim::Duration
SwapDevice::swapIn(std::uint64_t n)
{
    hos_assert(used_pages_ >= n, "swapping in more than was swapped out");
    used_pages_ -= n;
    swapped_in_.inc(n);
    return disk_.read(n * mem::pageSize, false);
}

} // namespace hos::guestos
