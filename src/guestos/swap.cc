#include "guestos/swap.hh"

#include "mem/mem_spec.hh"
#include "sim/log.hh"
#include "trace/trace.hh"

namespace hos::guestos {

SwapDevice::SwapDevice(BlockDevice &disk, std::uint64_t capacity_pages)
    : disk_(disk), capacity_pages_(capacity_pages)
{
}

sim::Duration
SwapDevice::swapOut(std::uint64_t n)
{
    hos_assert(used_pages_ + n <= capacity_pages_, "swap space exhausted");
    used_pages_ += n;
    swapped_out_.inc(n);
    const sim::Duration io = disk_.write(n * mem::pageSize, n >= 8);
    // The swap device has no event queue of its own; the global tick
    // is the caller's clock.
    trace::emit(trace::EventType::SwapOut, sim::currentTick(), n,
                used_pages_, 0, io);
    return io;
}

sim::Duration
SwapDevice::swapIn(std::uint64_t n)
{
    hos_assert(used_pages_ >= n, "swapping in more than was swapped out");
    used_pages_ -= n;
    swapped_in_.inc(n);
    const sim::Duration io = disk_.read(n * mem::pageSize, false);
    trace::emit(trace::EventType::SwapIn, sim::currentTick(), n,
                used_pages_, 0, io);
    return io;
}

} // namespace hos::guestos
