#include "guestos/buddy_allocator.hh"

#include <algorithm>

namespace hos::guestos {

BuddyAllocator::BuddyAllocator(PageArray &pages, Gpfn base,
                               std::uint64_t span_pages)
    : pages_(pages), base_(base), span_pages_(span_pages)
{
    free_area_.reserve(maxOrder);
    for (unsigned o = 0; o < maxOrder; ++o)
        free_area_.emplace_back(pages_, listBuddy);
}

Gpfn
BuddyAllocator::buddyOf(Gpfn pfn, unsigned order) const
{
    const std::uint64_t off = pfn - base_;
    return base_ + (off ^ (1ull << order));
}

bool
BuddyAllocator::blockInRange(Gpfn pfn, unsigned order) const
{
    return pfn >= base_ && pfn + (1ull << order) <= base_ + span_pages_;
}

void
BuddyAllocator::insertBlock(Gpfn pfn, unsigned order)
{
    PageRef head = pages_.page(pfn);
    head.setInBuddy(true);
    head.setBuddyOrder(static_cast<std::uint8_t>(order));
    // FIFO free lists: allocation proceeds from the lowest addresses
    // donated first (boot memory is handed out bottom-up, as real
    // kernels do), which matters when the VMM backs a guest's frames
    // tier-by-tier in address order.
    free_area_[order].pushBack(pfn);
    free_pages_ += 1ull << order;
}

void
BuddyAllocator::removeBlock(Gpfn pfn, unsigned order)
{
    PageRef head = pages_.page(pfn);
    hos_assert(head.in_buddy() && head.buddy_order() == order,
               "block %llu not free at order %u",
               static_cast<unsigned long long>(pfn), order);
    free_area_[order].remove(pfn);
    head.setInBuddy(false);
    free_pages_ -= 1ull << order;
}

void
BuddyAllocator::addFreeRange(Gpfn pfn, std::uint64_t count)
{
    hos_assert(pfn >= base_ && pfn + count <= base_ + span_pages_,
               "range outside allocator span");
    managed_pages_ += count;
    // Carve into maximal blocks that are both aligned (relative to
    // base) and fit in the remaining count, then free them one by one
    // so coalescing with already-free neighbours happens naturally.
    while (count > 0) {
        unsigned order = maxOrder - 1;
        while (order > 0 &&
               (((pfn - base_) & ((1ull << order) - 1)) != 0 ||
                (1ull << order) > count)) {
            --order;
        }
        // Mark allocated so free() passes its sanity checks.
        for (std::uint64_t i = 0; i < (1ull << order); ++i) {
            PageRef p = pages_.page(pfn + i);
            pages_.setAllocated(p, true);
            p.setInBuddy(false);
        }
        free(pfn, order);
        pfn += 1ull << order;
        count -= 1ull << order;
    }
}

Gpfn
BuddyAllocator::alloc(unsigned order)
{
    hos_assert(order < maxOrder, "order %u too large", order);
    unsigned o = order;
    while (o < maxOrder && free_area_[o].empty())
        ++o;
    if (o == maxOrder)
        return invalidGpfn;

    const Gpfn pfn = free_area_[o].head();
    removeBlock(pfn, o);

    // Split down, returning upper halves to the free lists.
    while (o > order) {
        --o;
        insertBlock(pfn + (1ull << o), o);
    }

    for (std::uint64_t i = 0; i < (1ull << order); ++i) {
        PageRef p = pages_.page(pfn + i);
        hos_assert(!p.allocated(), "allocating an allocated page");
        pages_.setAllocated(p, true);
        p.setInBuddy(false);
    }
    return pfn;
}

void
BuddyAllocator::free(Gpfn pfn, unsigned order)
{
    hos_assert(order < maxOrder, "order %u too large", order);
    hos_assert(blockInRange(pfn, order), "freeing block outside range");
    hos_assert((pfn - base_) % (1ull << order) == 0,
               "freeing misaligned block");

    for (std::uint64_t i = 0; i < (1ull << order); ++i) {
        PageRef p = pages_.page(pfn + i);
        hos_assert(p.allocated(), "double free of page %llu",
                   static_cast<unsigned long long>(pfn + i));
        hos_assert(!p.in_buddy(), "freeing a page still in buddy");
        pages_.setAllocated(p, false);
        p.setType(PageType::Free);
        p.setDirty(false);
        p.setReferenced(false);
        p.setPteAccessed(false);
        p.setHeat(0); // a recycled frame is not the hot page it backed
        p.setOwnerProcess(noProcess);
    }

    // Coalesce upward while the buddy block is free at the same order.
    while (order + 1 < maxOrder) {
        const Gpfn buddy = buddyOf(pfn, order);
        if (!blockInRange(buddy, order))
            break;
        const PageRef bp = pages_.page(buddy);
        if (!bp.in_buddy() || bp.buddy_order() != order)
            break;
        removeBlock(buddy, order);
        pfn = std::min(pfn, buddy);
        ++order;
    }
    insertBlock(pfn, order);
}

Gpfn
BuddyAllocator::removeFreePage()
{
    for (unsigned o = 0; o < maxOrder; ++o) {
        if (free_area_[o].empty())
            continue;
        const Gpfn pfn = free_area_[o].head();
        removeBlock(pfn, o);
        // Return all but the first page to the free lists.
        for (unsigned s = 0; s < o; ++s)
            insertBlock(pfn + (1ull << s), s);
        PageRef p = pages_.page(pfn);
        pages_.setAllocated(p, false);
        p.setInBuddy(false);
        hos_assert(managed_pages_ > 0, "removing from empty allocator");
        --managed_pages_;
        return pfn;
    }
    return invalidGpfn;
}

std::uint64_t
BuddyAllocator::freeBlocks(unsigned order) const
{
    hos_assert(order < maxOrder, "order %u too large", order);
    return free_area_[order].size();
}

void
BuddyAllocator::checkInvariants() const
{
    std::uint64_t counted = 0;
    for (unsigned o = 0; o < maxOrder; ++o) {
        Gpfn pfn = free_area_[o].head();
        while (pfn != invalidGpfn) {
            const PageRef p = pages_.page(pfn);
            hos_assert(p.in_buddy() && p.buddy_order() == o,
                       "free-list page with wrong order");
            hos_assert((pfn - base_) % (1ull << o) == 0,
                       "misaligned free block");
            for (std::uint64_t i = 0; i < (1ull << o); ++i) {
                hos_assert(!pages_.page(pfn + i).allocated(),
                           "allocated page inside a free block");
            }
            counted += 1ull << o;
            pfn = p.link_next();
        }
    }
    hos_assert(counted == free_pages_, "free page accounting drift");
}

} // namespace hos::guestos
