#include "guestos/page.hh"

#include <algorithm>
#include <bit>

namespace hos::guestos {

PageArray::PageArray(std::uint64_t num_pages)
    : size_(num_pages), pte_accessed_((num_pages + 63) >> 6, 0),
      allocated_((num_pages + 63) >> 6, 0),
      populated_((num_pages + 63) >> 6, 0), heat_(num_pages, 0),
      last_touch_(num_pages, 0), meta_(num_pages), rmap_(num_pages)
{
    // Id 0 is reserved for "not on any list".
    list_tags_.push_back(listNone);
}

ListId
PageArray::registerList(ListTag tag)
{
    hos_assert(list_tags_.size() < 0xffffu, "list-id space exhausted");
    list_tags_.push_back(tag);
    return static_cast<ListId>(list_tags_.size() - 1);
}

std::uint64_t
PageArray::freeRunLength(Gpfn from, std::uint64_t max) const
{
    const Gpfn end = std::min<Gpfn>(size_, from + max);
    if (from >= end)
        return 0;
    // First word: ignore bits below `from`.
    Gpfn pfn = from;
    std::uint64_t word =
        allocated_[pfn >> 6] & (~std::uint64_t(0) << (pfn & 63));
    while (word == 0) {
        pfn = (pfn | 63) + 1; // next word boundary
        if (pfn >= end)
            return end - from;
        word = allocated_[pfn >> 6];
    }
    const Gpfn first_set =
        (pfn & ~Gpfn(63)) + static_cast<unsigned>(std::countr_zero(word));
    return std::min<Gpfn>(first_set, end) - from;
}

std::uint32_t
PageArray::allocatedInChunk(std::uint64_t c) const
{
    // chunkShift >= 6, so chunks are whole bitmap words; the trailing
    // partial word of the array is zero-padded past size_.
    const std::uint64_t lo_word = (c << chunkShift) >> 6;
    const std::uint64_t hi_word = std::min<std::uint64_t>(
        allocated_.size(), ((c + 1) << chunkShift) >> 6);
    std::uint32_t n = 0;
    for (std::uint64_t w = lo_word; w < hi_word; ++w)
        n += static_cast<std::uint32_t>(std::popcount(allocated_[w]));
    return n;
}

} // namespace hos::guestos
