#include "guestos/page.hh"

#include <algorithm>

namespace hos::guestos {

PageArray::PageArray(std::uint64_t num_pages)
    : chunk_allocated_((num_pages + chunkPages - 1) >> chunkShift, 0)
{
    // Construct descriptors in one pass with the pfn set, instead of
    // value-initializing the whole array and then re-walking it to
    // stamp pfns — mem_map construction is pure memory bandwidth and
    // shows up in every experiment's start-up time.
    pages_.reserve(num_pages);
    for (std::uint64_t i = 0; i < num_pages; ++i) {
        pages_.emplace_back();
        pages_.back().pfn = i;
    }
}

std::uint64_t
PageArray::freeRunLength(Gpfn from, std::uint64_t max) const
{
    const Gpfn end = std::min<Gpfn>(pages_.size(), from + max);
    Gpfn pfn = from;
    while (pfn < end) {
        if (chunk_allocated_[pfn >> chunkShift] == 0) {
            // Whole chunk free: jump to the next chunk boundary.
            const Gpfn next = ((pfn >> chunkShift) + 1) << chunkShift;
            pfn = std::min<Gpfn>(end, next);
            continue;
        }
        if (pages_[pfn].allocated)
            break;
        ++pfn;
    }
    return pfn - from;
}

} // namespace hos::guestos
