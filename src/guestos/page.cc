#include "guestos/page.hh"

namespace hos::guestos {

PageArray::PageArray(std::uint64_t num_pages) : pages_(num_pages)
{
    for (std::uint64_t i = 0; i < num_pages; ++i)
        pages_[i].pfn = i;
}

void
PageList::pushFront(Gpfn pfn)
{
    Page &p = pages_->page(pfn);
    hos_assert(p.on_list == listNone, "page %llu already on list %u",
               static_cast<unsigned long long>(pfn), p.on_list);
    p.on_list = tag_;
    p.link_prev = invalidGpfn;
    p.link_next = head_;
    if (head_ != invalidGpfn)
        pages_->page(head_).link_prev = pfn;
    head_ = pfn;
    if (tail_ == invalidGpfn)
        tail_ = pfn;
    ++count_;
}

void
PageList::pushBack(Gpfn pfn)
{
    Page &p = pages_->page(pfn);
    hos_assert(p.on_list == listNone, "page %llu already on list %u",
               static_cast<unsigned long long>(pfn), p.on_list);
    p.on_list = tag_;
    p.link_next = invalidGpfn;
    p.link_prev = tail_;
    if (tail_ != invalidGpfn)
        pages_->page(tail_).link_next = pfn;
    tail_ = pfn;
    if (head_ == invalidGpfn)
        head_ = pfn;
    ++count_;
}

void
PageList::remove(Gpfn pfn)
{
    Page &p = pages_->page(pfn);
    hos_assert(p.on_list == tag_, "page %llu on list %u, not %u",
               static_cast<unsigned long long>(pfn), p.on_list, tag_);
    if (p.link_prev != invalidGpfn)
        pages_->page(p.link_prev).link_next = p.link_next;
    else
        head_ = p.link_next;
    if (p.link_next != invalidGpfn)
        pages_->page(p.link_next).link_prev = p.link_prev;
    else
        tail_ = p.link_prev;
    p.link_prev = invalidGpfn;
    p.link_next = invalidGpfn;
    p.on_list = listNone;
    hos_assert(count_ > 0, "list count underflow");
    --count_;
}

Gpfn
PageList::popFront()
{
    if (head_ == invalidGpfn)
        return invalidGpfn;
    const Gpfn pfn = head_;
    remove(pfn);
    return pfn;
}

Gpfn
PageList::popBack()
{
    if (tail_ == invalidGpfn)
        return invalidGpfn;
    const Gpfn pfn = tail_;
    remove(pfn);
    return pfn;
}

void
PageList::moveToFront(Gpfn pfn)
{
    remove(pfn);
    pushFront(pfn);
}

bool
PageList::contains(Gpfn pfn) const
{
    const Page &p = pages_->page(pfn);
    if (p.on_list != tag_)
        return false;
    // Tags are unique per list *kind* but a node may have several
    // lists with the same tag (per-zone LRUs); walk links only when
    // disambiguation matters. Membership by tag is sufficient for the
    // single-instance lists used in the allocator; LRU uses per-page
    // LruState for exactness.
    return true;
}

} // namespace hos::guestos
