/**
 * @file
 * Per-process address space: VMA tree + page table + fault handling.
 *
 * The address space is deliberately thin: policy lives in the kernel
 * (which implements MmBacking). Faulting an anonymous page asks the
 * kernel's HeteroOS allocator for a page of the right type; faulting a
 * file page goes through the page cache; munmap hands the released
 * pages back so HeteroOS-LRU can apply its aggressive demotion rule
 * for unmapped regions (Section 3.3, rule 1).
 */

#ifndef HOS_GUESTOS_ADDRESS_SPACE_HH
#define HOS_GUESTOS_ADDRESS_SPACE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "guestos/page.hh"
#include "guestos/page_table.hh"
#include "guestos/vma.hh"

namespace hos::guestos {

/** Services the address space needs from the kernel. */
class MmBacking
{
  public:
    virtual ~MmBacking() = default;

    /** Allocate a user page (anon or netbuf) for a faulting vaddr. */
    virtual Gpfn allocUserPage(PageType type, MemHint hint,
                               ProcessId process, std::uint64_t vaddr) = 0;

    /** Release an anonymous page at munmap/exit. */
    virtual void freeUserPage(Gpfn pfn) = 0;

    /** Find-or-load the page-cache page backing (file, offset). */
    virtual Gpfn fileBackedPage(FileId file, std::uint64_t offset,
                                MemHint hint, ProcessId process,
                                std::uint64_t vaddr) = 0;

    /**
     * A whole VMA range was just unmapped. `anon_released` pages were
     * freed; `file_released` pages stay cached but lost this mapping.
     * HeteroOS-LRU hooks this for aggressive FastMem demotion.
     */
    virtual void onUnmapRelease(const std::vector<Gpfn> &anon_released,
                                const std::vector<Gpfn> &file_released) = 0;

    /** Page-table page accounting (+1 alloc, negative on teardown). */
    virtual void onPageTablePages(std::int64_t delta) = 0;
};

/** A guest process's memory map. */
class AddressSpace
{
  public:
    AddressSpace(ProcessId pid, MmBacking &backing);

    ProcessId pid() const { return pid_; }
    PageTable &pageTable() { return table_; }
    const PageTable &pageTable() const { return table_; }

    /**
     * Create a mapping of `length` bytes; returns the start address.
     * Addresses are assigned by a bump allocator (no reuse), which
     * keeps ranges unique for the VMM tracking lists.
     */
    std::uint64_t mmap(std::uint64_t length, VmaKind kind,
                       MemHint hint = MemHint::None, FileId file = noFile,
                       std::uint64_t file_offset = 0,
                       std::string label = {});

    /** Unmap an entire VMA by start address. */
    void munmap(std::uint64_t start);

    /** The VMA containing va, or nullptr. */
    const Vma *findVma(std::uint64_t va) const;

    /**
     * Touch one page: fault it in if needed, set PTE accessed/dirty
     * bits. Returns the gpfn now backing the address, or invalidGpfn
     * if allocation failed (guest truly out of memory).
     */
    Gpfn touch(std::uint64_t vaddr, bool write);

    /** Gpfn currently backing vaddr, if present. */
    std::optional<Gpfn> translate(std::uint64_t vaddr) const;

    /** Iterate over all VMAs (tracking-list construction). */
    void forEachVma(const std::function<void(const Vma &)> &fn) const;

    std::uint64_t mappedPages() const { return table_.mappedPages(); }
    std::uint64_t vmaCount() const { return vmas_.size(); }

    /** Release everything (process exit). */
    void releaseAll();

  private:
    ProcessId pid_;
    MmBacking &backing_;
    PageTable table_;
    std::map<std::uint64_t, Vma> vmas_; ///< keyed by start address
    std::uint64_t next_va_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_ADDRESS_SPACE_HH
