#include "guestos/migration_frontend.hh"

#include "check/page_state.hh"
#include "guestos/kernel.hh"
#include "prof/prof.hh"
#include "sim/log.hh"
#include "trace/trace.hh"
#include "xray/xray.hh"

namespace hos::guestos {

MigrationFrontend::MigrationFrontend(GuestKernel &kernel)
    : kernel_(kernel)
{
}

bool
MigrationFrontend::migrateOne(Gpfn pfn, mem::MemType dst,
                              MigrationOutcome &out)
{
    PageRef p = kernel_.pageMeta(pfn);
    auto *xr = xray::active();
    const std::uint16_t vm = kernel_.vmTag();
    const sim::Tick now = kernel_.events().now();

    if (!p.allocated()) {
        // Released since the candidate list was built: the guest-side
        // check the VMM cannot do (Section 4.1, "page state").
        ++out.skipped_unmapped;
        if (xr)
            xr->onSkip(vm, pfn, xray::EventKind::SkipUnmapped, 0, 0, now);
        return false;
    }
    if (p.under_io()) {
        ++out.skipped_under_io;
        if (xr) {
            xr->onSkip(vm, pfn, xray::EventKind::SkipUnderIo, p.heat(), 0,
                       now);
        }
        return false;
    }
    if (isMigrationException(p.type()) || p.unevictable()) {
        ++out.skipped_pinned;
        if (xr) {
            xr->onSkip(vm, pfn, xray::EventKind::SkipPinned, p.heat(), 0,
                       now);
        }
        return false;
    }
    if (p.mem_type() == dst)
        return false; // already there; not an error, just nothing to do

    // Backstop behind the skip checks above: a page reaching the
    // actual move must satisfy the migration rules.
    HOS_CHECK_CHEAP(
        check::validateMigration(p, dst, "migration_frontend.migrateOne"));

    NumaNode *target = kernel_.nodeFor(dst);
    if (!target) {
        ++out.skipped_no_memory;
        if (xr) {
            xr->onSkip(vm, pfn, xray::EventKind::SkipNoMemory, p.heat(), 0,
                       now);
        }
        return false;
    }

    switch (p.type()) {
      case PageType::Anon: {
        if (p.owner_process() == noProcess ||
            !kernel_.hasProcess(p.owner_process())) {
            ++out.skipped_unmapped;
            if (xr) {
                xr->onSkip(vm, pfn, xray::EventKind::SkipUnmapped,
                           p.heat(), 0, now);
            }
            return false;
        }
        AddressSpace &as = kernel_.process(p.owner_process());
        auto mapped = as.translate(p.vaddr());
        if (!mapped || *mapped != pfn) {
            ++out.skipped_unmapped;
            if (xr) {
                xr->onSkip(vm, pfn, xray::EventKind::SkipUnmapped,
                           p.heat(), 0, now);
            }
            return false;
        }
        const Gpfn newp = kernel_.allocPageOnNode(target->id(), p.type());
        if (newp == invalidGpfn) {
            ++out.skipped_no_memory;
            if (xr) {
                xr->onSkip(vm, pfn, xray::EventKind::SkipNoMemory,
                           p.heat(), 0, now);
            }
            return false;
        }
        PageRef d = kernel_.pageMeta(newp);
        d.setOwnerProcess(p.owner_process());
        d.setVaddr(p.vaddr());
        d.setDirty(p.dirty());
        d.setPteAccessed(p.pte_accessed());
        as.pageTable().remap(p.vaddr(), newp);
        kernel_.residency().onRemap(p.owner_process(), p.vaddr(), newp);

        if (p.lru() != LruState::None)
            kernel_.lruRemove(pfn);
        // Promotions carry proven heat: land active. Demotions start
        // inactive so they are first out again under pressure.
        if (dst == mem::MemType::FastMem)
            kernel_.lruAddActive(newp);
        else
            kernel_.lruAdd(newp);
        p.setDirty(false);
        p.setOwnerProcess(noProcess);
        if (xr) {
            xr->onGuestMove(
                vm, pfn, newp,
                static_cast<std::uint8_t>(kernel_.backingOf(newp)),
                p.heat(), 0, now);
        }
        kernel_.freePage(pfn);
        return true;
      }
      case PageType::PageCache:
      case PageType::BufferCache: {
        PageCache &cache = kernel_.pageCache();
        if (!cache.owns(pfn)) {
            ++out.skipped_unmapped;
            return false;
        }
        if (p.dirty() && dst == mem::MemType::FastMem) {
            // Dirty short-lived I/O pages: migrating them only adds
            // overhead (Section 4.1); they are about to be written
            // back and evicted anyway.
            ++out.skipped_dirty_io;
            if (xr) {
                xr->onSkip(vm, pfn, xray::EventKind::SkipDirtyIo,
                           p.heat(), 0, now);
            }
            return false;
        }
        if (p.dirty() && dst != mem::MemType::FastMem) {
            ++out.skipped_dirty_io;
            if (xr) {
                xr->onSkip(vm, pfn, xray::EventKind::SkipDirtyIo,
                           p.heat(), 0, now);
            }
            return false;
        }
        const Gpfn newp = kernel_.allocPageOnNode(target->id(), p.type());
        if (newp == invalidGpfn) {
            ++out.skipped_no_memory;
            if (xr) {
                xr->onSkip(vm, pfn, xray::EventKind::SkipNoMemory,
                           p.heat(), 0, now);
            }
            return false;
        }
        cache.remapPage(pfn, newp);
        if (p.lru() != LruState::None)
            kernel_.lruRemove(pfn);
        if (dst == mem::MemType::FastMem)
            kernel_.lruAddActive(newp);
        else
            kernel_.lruAdd(newp);
        if (xr) {
            xr->onGuestMove(
                vm, pfn, newp,
                static_cast<std::uint8_t>(kernel_.backingOf(newp)),
                p.heat(), 0, now);
        }
        kernel_.freePage(pfn);
        return true;
      }
      default:
        ++out.skipped_pinned;
        if (xr) {
            xr->onSkip(vm, pfn, xray::EventKind::SkipPinned, p.heat(), 0,
                       now);
        }
        return false;
    }
}

MigrationOutcome
MigrationFrontend::migratePages(const std::vector<Gpfn> &pfns,
                                mem::MemType dst)
{
    MigrationOutcome out;
    out.attempted = pfns.size();
    const auto dst_tier = static_cast<std::uint8_t>(dst);
    HOS_PROF_SPAN(epoch_span, prof::SpanKind::MigrationEpoch,
                  kernel_.events(), 0, dst_tier);
    trace::emit(trace::EventType::MigrationStart,
                kernel_.events().now(), out.attempted,
                static_cast<std::uint64_t>(dst));
    {
        HOS_PROF_SPAN(remap_span, prof::SpanKind::Remap,
                      kernel_.events(), 0, dst_tier);
        for (Gpfn pfn : pfns) {
            if (migrateOne(pfn, dst, out))
                ++out.migrated;
        }
    }
    migrated_.inc(out.migrated);
    skipped_.inc(out.attempted - out.migrated);

    sim::Duration cost = 0;
    if (out.migrated > 0) {
        // Guest-internal moves: copy + PTE remap + targeted
        // shootdown, batched. Much cheaper than the VMM path
        // (Table 6) because the guest validates and remaps its own
        // mappings directly — the design point of Section 4.1. Copy
        // and shootdown are charged under their own spans; the sum is
        // unchanged.
        const auto copy_cost = static_cast<sim::Duration>(
            static_cast<double>(out.migrated) * 3000.0);
        const sim::Duration shootdown_cost =
            kernel_.tlb().shootdownCost(out.migrated);
        {
            HOS_PROF_SPAN(copy_span, prof::SpanKind::BatchCopy,
                          kernel_.events(), 0, dst_tier);
            kernel_.charge(OverheadKind::Migration, copy_cost);
        }
        {
            HOS_PROF_SPAN(tlb_span, prof::SpanKind::TlbShootdown,
                          kernel_.events(), 0, dst_tier);
            kernel_.charge(OverheadKind::Migration, shootdown_cost);
        }
        cost = copy_cost + shootdown_cost;
    }
    trace::emit(trace::EventType::MigrationComplete,
                kernel_.events().now(), out.migrated,
                out.attempted - out.migrated,
                static_cast<std::uint64_t>(dst), cost);
    return out;
}

} // namespace hos::guestos
