#include "guestos/hetero_lru.hh"

#include <algorithm>

#include "guestos/kernel.hh"
#include "prof/prof.hh"
#include "sim/log.hh"
#include "trace/trace.hh"
#include "xray/xray.hh"

namespace {

/**
 * Guest-internal page-move cost: a 4 KiB copy plus PTE/radix
 * bookkeeping and a targeted invalidation. Far cheaper than the
 * VMM-exclusive migration path Table 6 measures (no whole-table walk,
 * no cross-layer synchronization) — exactly the asymmetry the paper
 * exploits by running migrations in the guest (Section 4.1).
 */
constexpr double guestPageMoveNs = 3000.0;

hos::sim::Duration
guestMoveCost(std::uint64_t pages)
{
    return static_cast<hos::sim::Duration>(
        static_cast<double>(pages) * guestPageMoveNs);
}

} // namespace

namespace hos::guestos {

HeteroLru::HeteroLru(GuestKernel &kernel, HeteroLruConfig cfg)
    : kernel_(kernel), cfg_(cfg)
{
}

bool
HeteroLru::fastMemUnderPressure() const
{
    auto *fast = kernel_.nodeFor(mem::MemType::FastMem);
    if (!fast)
        return false;
    const double managed =
        static_cast<double>(std::max<std::uint64_t>(1,
                                                    fast->managedPages()));
    return static_cast<double>(kernel_.effectiveFreePages(*fast)) /
               managed <
           cfg_.fast_low_ratio;
}

std::uint64_t
HeteroLru::demotePage(Gpfn pfn)
{
    PageRef p = kernel_.pageMeta(pfn);
    if (p.mem_type() != mem::MemType::FastMem)
        return 0;
    if (p.under_io() || p.unevictable())
        return 0;

    // Demotion target: heap pages step one level at a time (high
    // reuse: FastMem -> MediumMem when a middle tier exists), while
    // finished I/O pages go straight to the large-but-slowest tier —
    // the page-type-specific demotion policies of paper Section 4.3.
    NumaNode *slow = nullptr;
    if (p.type() == PageType::Anon)
        slow = kernel_.nodeFor(mem::MemType::MediumMem);
    if (!slow)
        slow = kernel_.nodeFor(mem::MemType::SlowMem);
    if (!slow)
        return 0;

    switch (p.type()) {
      case PageType::Anon: {
        // Must still be mapped; the owner's PTE gets remapped.
        if (p.owner_process() == noProcess ||
            !kernel_.hasProcess(p.owner_process())) {
            return 0;
        }
        AddressSpace &as = kernel_.process(p.owner_process());
        auto mapped = as.translate(p.vaddr());
        if (!mapped || *mapped != pfn)
            return 0; // released or remapped since: skip

        const Gpfn dst =
            kernel_.allocPageOnNode(slow->id(), p.type());
        if (dst == invalidGpfn)
            return 0;
        PageRef d = kernel_.pageMeta(dst);
        d.setOwnerProcess(p.owner_process());
        d.setVaddr(p.vaddr());
        d.setDirty(p.dirty());
        as.pageTable().remap(p.vaddr(), dst);
        kernel_.residency().onRemap(p.owner_process(), p.vaddr(), dst);

        const bool was_on_lru = p.lru() != LruState::None;
        if (was_on_lru)
            kernel_.lruRemove(pfn);
        kernel_.lruAdd(dst); // demoted pages start inactive
        p.setDirty(false);
        p.setOwnerProcess(noProcess);
        if (auto *xr = xray::active()) {
            xr->onGuestMove(
                kernel_.vmTag(), pfn, dst,
                static_cast<std::uint8_t>(kernel_.backingOf(dst)),
                p.heat(), 0, kernel_.events().now());
        }
        kernel_.freePage(pfn);
        ++stats_.demoted_anon;
        return 1;
      }
      case PageType::PageCache:
      case PageType::BufferCache: {
        PageCache &cache = kernel_.pageCache();
        if (!cache.owns(pfn))
            return 0;
        if (p.dirty())
            return 0; // write back first; the flusher will get to it

        const Gpfn dst =
            kernel_.allocPageOnNode(slow->id(), p.type());
        if (dst == invalidGpfn) {
            // No SlowMem either: drop the clean page entirely. The
            // LRU membership is released by evictPage -> freeIoPage.
            if (cache.evictPage(pfn)) {
                ++stats_.dropped_cache;
                return 1;
            }
            return 0;
        }
        cache.remapPage(pfn, dst);
        if (p.lru() != LruState::None)
            kernel_.lruRemove(pfn);
        kernel_.lruAdd(dst);
        if (auto *xr = xray::active()) {
            xr->onGuestMove(
                kernel_.vmTag(), pfn, dst,
                static_cast<std::uint8_t>(kernel_.backingOf(dst)),
                p.heat(), 0, kernel_.events().now());
        }
        kernel_.freePage(pfn);
        ++stats_.demoted_cache;
        return 1;
      }
      default:
        return 0; // slab/netbuf/pagetable/dma are pinned
    }
}

std::uint64_t
HeteroLru::reclaimFastMem(std::uint64_t target_pages)
{
    NumaNode *fast = kernel_.nodeFor(mem::MemType::FastMem);
    if (!fast || target_pages == 0)
        return 0;

    // Boot-time allocation bursts carry no hotness information —
    // every eviction decision would be blind, and the evicted page's
    // first use is as imminent as the requester's. Reclaim starts
    // once the system is actually running.
    if (kernel_.events().now() == 0)
        return 0;

    HOS_PROF_SPAN(reclaim_span, prof::SpanKind::ReclaimPass,
                  kernel_.events(), 0,
                  static_cast<std::uint8_t>(mem::MemType::FastMem));
    ++stats_.reclaim_passes;
    std::uint64_t freed = 0;
    std::uint64_t scanned_total = 0;
    std::uint64_t demoted_total = 0;

    // Two passes: the first declines pages the hotness tracker has
    // marked hot (coordination makes eviction smart — the guest knows
    // which FastMem pages are worth keeping); if nothing reclaimable
    // remains, the second pass takes what it can.
    bool give_up = false;
    for (int heat_aware = 1;
         heat_aware >= 0 && freed < target_pages && !give_up;
         --heat_aware) {
        for (std::size_t zi = 0;
             zi < fast->numZones() && freed < target_pages && !give_up;
             ++zi) {
            SplitLru &lru = fast->zone(zi).lru();
            // Bound the work: a few batches per call, not a storm.
            for (int round = 0; round < 4 && freed < target_pages;
                 ++round) {
                if (lru.inactiveCount() == 0) {
                    // Feed the inactive list from the active tail.
                    lru.balance(0.30, cfg_.scan_batch);
                }
                const std::uint64_t before = lru.scanned();
                const std::uint64_t got = lru.scanInactive(
                    std::min<std::uint64_t>(cfg_.scan_batch,
                                            target_pages - freed),
                    [&](PageRef &page) {
                        if (heat_aware && page.heat() >= 96)
                            return false; // proven hot: keep it
                        if (heat_aware && page.type() == PageType::Anon &&
                            page.last_touch() == 0) {
                            // Allocated but never used: its first
                            // touch is imminent (allocation bursts
                            // look like this); demoting it for
                            // another allocation is a pure loss.
                            return false;
                        }
                        return demotePage(page.pfn()) > 0;
                    });
                const std::uint64_t looked = lru.scanned() - before;
                scanned_total += looked;
                demoted_total += got;
                freed += got;
                if (got == 0 && lru.inactiveCount() == 0)
                    break;
                // Rotations (second chances) are progress — they
                // clear referenced bits so genuinely cold pages
                // surface on later rounds. Only abort when a round
                // does nothing at all on an empty-ish list.
                if (got == 0 && looked == 0) {
                    give_up = true;
                    break;
                }
                (void)looked;
            }
        }
        if (freed >= target_pages / 2)
            break; // the heat-aware pass found enough
    }

    stats_.pages_scanned += scanned_total;
    trace::emit(trace::EventType::LruReclaim, kernel_.events().now(),
                target_pages, freed, scanned_total);
    // Charge scan cost plus the batched migration cost of what moved.
    const double scan_ns =
        static_cast<double>(scanned_total) * cfg_.scan_cost_ns;
    kernel_.charge(OverheadKind::Reclaim,
                   static_cast<sim::Duration>(scan_ns));
    if (demoted_total > 0) {
        kernel_.charge(OverheadKind::Migration,
                       guestMoveCost(demoted_total) +
                           kernel_.tlb().shootdownCost(demoted_total));
    }
    return freed;
}

std::uint64_t
HeteroLru::directReclaim(std::uint64_t target_pages)
{
    HOS_PROF_SPAN(reclaim_span, prof::SpanKind::ReclaimPass,
                  kernel_.events());
    std::uint64_t freed = 0;
    std::uint64_t scanned_total = 0;
    PageCache &cache = kernel_.pageCache();

    for (int round = 0; round < 2 && freed < target_pages; ++round) {
        for (unsigned nid = 0; nid < kernel_.numNodes(); ++nid) {
            NumaNode &node = kernel_.node(nid);
            for (std::size_t zi = 0;
                 zi < node.numZones() && freed < target_pages; ++zi) {
                SplitLru &lru = node.zone(zi).lru();
                if (lru.inactiveCount() <
                    std::max<std::uint64_t>(64, target_pages)) {
                    lru.balance(0.30, cfg_.scan_batch * 4);
                }
                const std::uint64_t before = lru.scanned();
                freed += lru.scanInactive(
                    cfg_.scan_batch * 4, [&](PageRef &p) {
                        if (!isShortLivedIo(p.type()))
                            return false;
                        if (p.dirty() || !cache.owns(p.pfn()))
                            return false;
                        return cache.evictPage(p.pfn());
                    });
                scanned_total += lru.scanned() - before;
            }
        }
        if (freed < target_pages) {
            // Nothing clean left: push dirty pages out and retry.
            HOS_PROF_SPAN(wb_span, prof::SpanKind::WritebackPass,
                          kernel_.events());
            kernel_.charge(OverheadKind::Writeback,
                           cache.writeback(target_pages * 2));
        }
    }

    stats_.pages_scanned += scanned_total;
    kernel_.charge(OverheadKind::Reclaim,
                   static_cast<sim::Duration>(
                       static_cast<double>(scanned_total) *
                       cfg_.scan_cost_ns));
    return freed;
}

void
HeteroLru::tick()
{
    if (!cfg_.enabled)
        return;
    NumaNode *fast = kernel_.nodeFor(mem::MemType::FastMem);
    if (!fast)
        return;
    const std::uint64_t managed =
        std::max<std::uint64_t>(1, fast->managedPages());
    const double free_ratio =
        static_cast<double>(kernel_.effectiveFreePages(*fast)) /
        static_cast<double>(managed);
    if (free_ratio < cfg_.fast_low_ratio) {
        const auto target = static_cast<std::uint64_t>(
            (cfg_.fast_high_ratio - free_ratio) *
            static_cast<double>(managed));
        reclaimFastMem(std::max<std::uint64_t>(64, target));
    }
    // Keep LRUs balanced so the inactive lists stay populated.
    for (std::size_t zi = 0; zi < fast->numZones(); ++zi)
        fast->zone(zi).lru().balance(0.30, 128);
}

void
HeteroLru::onIoComplete(const std::vector<Gpfn> &pages, bool writeback)
{
    if (!cfg_.enabled || !cfg_.eager_io_eviction)
        return;
    // Rule 2: pages whose *write-back* just finished have done their
    // job; deactivate them and, under FastMem pressure, demote them
    // right away. Fresh read fills are about to be consumed and are
    // left alone.
    if (!writeback)
        return;
    HOS_PROF_SPAN(reclaim_span, prof::SpanKind::ReclaimPass,
                  kernel_.events(), 0,
                  static_cast<std::uint8_t>(mem::MemType::FastMem));
    const bool pressure = fastMemUnderPressure();
    std::uint64_t demoted = 0;
    for (Gpfn pfn : pages) {
        PageRef p = kernel_.pageMeta(pfn);
        if (p.mem_type() != mem::MemType::FastMem)
            continue;
        if (!isShortLivedIo(p.type()))
            continue;
        if (p.lru() == LruState::Active)
            kernel_.zoneOf(pfn).lru().deactivate(pfn);
        p.setReferenced(false);
        if (pressure)
            demoted += demotePage(pfn);
    }
    if (demoted > 0) {
        kernel_.charge(OverheadKind::Migration,
                       guestMoveCost(demoted) +
                           kernel_.tlb().shootdownCost(demoted));
    }
}

void
HeteroLru::onUnmapRelease(const std::vector<Gpfn> &file_pages)
{
    if (!cfg_.enabled || !cfg_.eager_unmap_demotion)
        return;
    // Rule 1: a munmap released a contiguous region; its still-cached
    // file pages are deactivated and aggressively pushed to SlowMem.
    HOS_PROF_SPAN(reclaim_span, prof::SpanKind::ReclaimPass,
                  kernel_.events(), 0,
                  static_cast<std::uint8_t>(mem::MemType::FastMem));
    std::uint64_t demoted = 0;
    for (Gpfn pfn : file_pages) {
        PageRef p = kernel_.pageMeta(pfn);
        if (p.lru() == LruState::Active)
            kernel_.zoneOf(pfn).lru().deactivate(pfn);
        if (p.mem_type() == mem::MemType::FastMem)
            demoted += demotePage(pfn);
    }
    if (demoted > 0) {
        kernel_.charge(OverheadKind::Migration,
                       guestMoveCost(demoted) +
                           kernel_.tlb().shootdownCost(demoted));
    }
}

} // namespace hos::guestos
