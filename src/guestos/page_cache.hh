/**
 * @file
 * File page cache with read-ahead and write-back.
 *
 * I/O page-cache pages are first-class placement citizens in HeteroOS
 * (Observation 3): storage-intensive applications allocate and release
 * them at high rate, they are short-lived with high reuse, and placing
 * them in FastMem hides disk latency. The cache maps (file, page
 * offset) -> gpfn, reads ahead on sequential access, buffers dirty
 * pages, and exposes the I/O-completion hook HeteroOS-LRU uses for
 * eager FastMem eviction (Section 3.3, rule 2).
 */

#ifndef HOS_GUESTOS_PAGE_CACHE_HH
#define HOS_GUESTOS_PAGE_CACHE_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "guestos/blockdev.hh"
#include "guestos/page.hh"
#include "guestos/vma.hh"
#include "sim/stats.hh"

namespace hos::guestos {

/** Services the page cache needs from the kernel. */
class PageCacheBacking
{
  public:
    virtual ~PageCacheBacking() = default;

    /** Allocate a cache page (PageCache or BufferCache type). */
    virtual Gpfn allocIoPage(PageType type, MemHint hint) = 0;

    /** Free a cache page evicted from the cache entirely. */
    virtual void freeIoPage(Gpfn pfn) = 0;

    /** LRU touch for a cache hit. */
    virtual void touchIoPage(Gpfn pfn, bool write) = 0;

    /** What kind of I/O just finished on a set of cache pages. */
    enum class IoKind {
        ReadFill,  ///< pages were filled from disk; use is imminent
        Writeback, ///< dirty pages were cleaned; their job is done
    };

    /**
     * An I/O involving these pages completed. HeteroOS-LRU eagerly
     * demotes Writeback completions (the page's work is finished);
     * ReadFill pages are about to be consumed and stay put.
     */
    virtual void onIoComplete(const std::vector<Gpfn> &pages,
                              IoKind kind) = 0;
};

/** Result of a cached read or write. */
struct IoResult
{
    sim::Duration disk_time = 0;     ///< time spent on the device
    std::uint64_t pages_touched = 0; ///< cache pages involved
    std::uint64_t pages_missed = 0;  ///< pages that went to disk
    std::vector<Gpfn> pages;         ///< the touched cache pages
};

/** The guest's file page cache. */
class PageCache
{
  public:
    /**
     * @param pages    the guest page array (dirty/IO flags)
     * @param backing  kernel services
     * @param disk     the backing block device
     * @param readahead_pages window fetched ahead on sequential reads
     */
    PageCache(PageArray &pages, PageCacheBacking &backing,
              BlockDevice &disk, unsigned readahead_pages = 32);

    /** Register a simulated file; returns its id. */
    FileId createFile(std::uint64_t size_bytes);

    std::uint64_t fileSize(FileId file) const;

    /**
     * Buffered read of [offset, offset+len). Misses go to disk
     * (sequential when the range follows the previous read).
     * Read-ahead extends the fetched window.
     */
    IoResult read(FileId file, std::uint64_t offset, std::uint64_t len,
                  MemHint hint = MemHint::None);

    /**
     * Buffered write: dirties cache pages; data reaches disk via
     * writeback(). Extends the file if needed.
     */
    IoResult write(FileId file, std::uint64_t offset, std::uint64_t len,
                   MemHint hint = MemHint::None);

    /**
     * The page backing (file, byte offset) for mmap'd files;
     * allocates + reads it on a miss. Returns the gpfn and adds any
     * disk time to `io_time`.
     */
    Gpfn mapPage(FileId file, std::uint64_t offset, MemHint hint,
                 sim::Duration &io_time);

    /**
     * Write back up to `max_pages` dirty pages (oldest first).
     * @return time charged to the flusher.
     */
    sim::Duration writeback(std::uint64_t max_pages);

    /**
     * Drop a specific clean page from the cache (reclaim path).
     * Returns false if the page is dirty or under I/O (caller should
     * write back first).
     */
    bool evictPage(Gpfn pfn);

    /**
     * Replace the frame backing a cached page (tier demotion or
     * promotion while staying cached). The caller owns data-copy cost
     * accounting and freeing the old page. Dirty/IO state transfers.
     */
    void remapPage(Gpfn old_pfn, Gpfn new_pfn);

    /** Is this gpfn a page-cache page? */
    bool owns(Gpfn pfn) const;

    std::uint64_t cachedPages() const { return reverse_.size(); }
    std::uint64_t dirtyPages() const { return dirty_count_; }

    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const { return misses_.value(); }

  private:
    struct FileMeta
    {
        std::uint64_t size = 0;
        /** sequential-pattern detector; ~0 = no read yet */
        std::uint64_t last_read_end = ~std::uint64_t(0);
        std::unordered_map<std::uint64_t, Gpfn> by_index_; ///< page idx -> gpfn
    };

    struct ReverseEntry
    {
        FileId file;
        std::uint64_t page_index;
    };

    /** Ensure pages [first, last] of file are cached; report misses. */
    void populate(FileMeta &meta, FileId file, std::uint64_t first_page,
                  std::uint64_t last_page, MemHint hint, IoResult &res,
                  bool for_write);

    PageArray &pages_;
    PageCacheBacking &backing_;
    BlockDevice &disk_;
    unsigned readahead_pages_;
    std::vector<FileMeta> files_;
    std::unordered_map<Gpfn, ReverseEntry> reverse_;
    std::deque<Gpfn> dirty_fifo_;
    std::uint64_t dirty_count_ = 0;
    sim::Counter hits_;
    sim::Counter misses_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_PAGE_CACHE_HH
