#include "guestos/percpu_lists.hh"

#include "check/page_state.hh"

namespace hos::guestos {

PerCpuPageLists::PerCpuPageLists(PageArray &pages, unsigned cpus,
                                 unsigned nodes, unsigned batch,
                                 unsigned high)
    : pages_(pages), cpus_(cpus), nodes_(nodes), batch_(batch), high_(high),
      cached_per_node_(nodes, 0)
{
    hos_assert(cpus > 0 && nodes > 0, "need cpus and nodes");
    lists_.reserve(static_cast<std::size_t>(cpus) * nodes);
    for (unsigned i = 0; i < cpus * nodes; ++i)
        lists_.emplace_back(pages_, listPerCpu);
}

PageList &
PerCpuPageLists::listFor(unsigned cpu, unsigned node)
{
    hos_assert(cpu < cpus_ && node < nodes_, "bad cpu/node");
    return lists_[static_cast<std::size_t>(cpu) * nodes_ + node];
}

const PageList &
PerCpuPageLists::listFor(unsigned cpu, unsigned node) const
{
    hos_assert(cpu < cpus_ && node < nodes_, "bad cpu/node");
    return lists_[static_cast<std::size_t>(cpu) * nodes_ + node];
}

Gpfn
PerCpuPageLists::alloc(unsigned cpu, NumaNode &node)
{
    PageList &list = listFor(cpu, node.id());
    if (!list.empty()) {
        hits_.inc();
        const Gpfn pfn = list.popFront();
        --cached_per_node_[node.id()];
        pages_.setAllocated(pages_.page(pfn), true);
        return pfn;
    }
    // Refill a batch from the buddy; hand out the first page.
    refills_.inc();
    const Gpfn first = node.allocBlock(0);
    if (first == invalidGpfn)
        return invalidGpfn;
    for (unsigned i = 1; i < batch_; ++i) {
        const Gpfn pfn = node.allocBlock(0);
        if (pfn == invalidGpfn)
            break;
        PageRef p = pages_.page(pfn);
        pages_.setAllocated(p, false); // parked in the per-CPU cache
        list.pushBack(pfn);
        ++cached_per_node_[node.id()];
    }
    return first;
}

void
PerCpuPageLists::free(unsigned cpu, NumaNode &node, Gpfn pfn)
{
    PageList &list = listFor(cpu, node.id());
    PageRef p = pages_.page(pfn);
    HOS_CHECK_CHEAP(check::validateFree(p, "percpu.free"));
    hos_assert(p.allocated(), "per-cpu free of non-allocated page");
    // Reset as the buddy would; the page stays out of the buddy while
    // cached here.
    pages_.setAllocated(p, false);
    p.setType(PageType::Free);
    p.setDirty(false);
    p.setReferenced(false);
    p.setPteAccessed(false);
    p.setHeat(0); // a recycled frame is not the hot page it backed
    p.setOwnerProcess(noProcess);
    list.pushFront(pfn);
    ++cached_per_node_[node.id()];

    if (list.size() > high_) {
        // Drain half back to the buddy (from the cold end).
        const std::uint64_t target = high_ / 2;
        while (list.size() > target) {
            const Gpfn cold = list.popBack();
            --cached_per_node_[node.id()];
            pages_.setAllocated(pages_.page(cold), true); // satisfy buddy sanity
            node.freeBlock(cold, 0);
        }
    }
}

void
PerCpuPageLists::drainNode(NumaNode &node)
{
    for (unsigned cpu = 0; cpu < cpus_; ++cpu) {
        PageList &list = listFor(cpu, node.id());
        while (!list.empty()) {
            const Gpfn pfn = list.popBack();
            --cached_per_node_[node.id()];
            pages_.setAllocated(pages_.page(pfn), true);
            node.freeBlock(pfn, 0);
        }
    }
}

std::uint64_t
PerCpuPageLists::cached(unsigned cpu, unsigned node) const
{
    return listFor(cpu, node).size();
}

std::uint64_t
PerCpuPageLists::totalCached() const
{
    std::uint64_t n = 0;
    for (const auto &l : lists_)
        n += l.size();
    return n;
}

} // namespace hos::guestos
