#include "guestos/address_space.hh"

#include <algorithm>

namespace hos::guestos {

namespace {
/** Mappings start above the traditional program segments. */
constexpr std::uint64_t vaBase = 0x0000'1000'0000ull;
/** Guard gap between consecutive mappings. */
constexpr std::uint64_t vaGuard = mem::pageSize;
} // namespace

AddressSpace::AddressSpace(ProcessId pid, MmBacking &backing)
    : pid_(pid), backing_(backing),
      table_([&backing](std::int64_t d) { backing.onPageTablePages(d); }),
      next_va_(vaBase)
{
}

std::uint64_t
AddressSpace::mmap(std::uint64_t length, VmaKind kind, MemHint hint,
                   FileId file, std::uint64_t file_offset,
                   std::string label)
{
    hos_assert(length > 0, "mmap of zero length");
    // Round to page granularity as the real syscall does.
    length = mem::bytesToPages(length) * mem::pageSize;

    Vma vma;
    vma.start = next_va_;
    vma.length = length;
    vma.kind = kind;
    vma.hint = hint;
    vma.file = file;
    vma.file_offset = file_offset;
    vma.label = std::move(label);

    next_va_ += length + vaGuard;
    hos_assert(next_va_ < PageTable::vaSpan, "virtual address space full");

    const std::uint64_t start = vma.start;
    vmas_.emplace(start, std::move(vma));
    return start;
}

void
AddressSpace::munmap(std::uint64_t start)
{
    auto it = vmas_.find(start);
    hos_assert(it != vmas_.end(), "munmap of unknown VMA");
    Vma &vma = it->second;

    std::vector<Gpfn> anon_released;
    std::vector<Gpfn> file_released;
    for (std::uint64_t va = vma.start; va < vma.end();
         va += mem::pageSize) {
        auto pfn = table_.unmap(va);
        if (!pfn)
            continue;
        if (vma.kind == VmaKind::File)
            file_released.push_back(*pfn);
        else
            anon_released.push_back(*pfn);
    }

    for (Gpfn pfn : anon_released)
        backing_.freeUserPage(pfn);
    backing_.onUnmapRelease(anon_released, file_released);
    vmas_.erase(it);
}

const Vma *
AddressSpace::findVma(std::uint64_t va) const
{
    auto it = vmas_.upper_bound(va);
    if (it == vmas_.begin())
        return nullptr;
    --it;
    return it->second.contains(va) ? &it->second : nullptr;
}

Gpfn
AddressSpace::touch(std::uint64_t vaddr, bool write)
{
    const std::uint64_t va = vaddr & ~(mem::pageSize - 1);
    if (auto pte = table_.lookup(va)) {
        table_.touch(va, write);
        return pte->pfn;
    }

    const Vma *vma = findVma(va);
    hos_assert(vma != nullptr, "fault outside any VMA");

    Gpfn pfn;
    if (vma->kind == VmaKind::File) {
        const std::uint64_t offset = vma->file_offset + (va - vma->start);
        pfn = backing_.fileBackedPage(vma->file, offset, vma->hint, pid_,
                                      va);
    } else {
        pfn = backing_.allocUserPage(vma->pageType(), vma->hint, pid_, va);
    }
    if (pfn == invalidGpfn)
        return invalidGpfn;

    table_.map(va, pfn, true);
    table_.touch(va, write);
    return pfn;
}

std::optional<Gpfn>
AddressSpace::translate(std::uint64_t vaddr) const
{
    const std::uint64_t va = vaddr & ~(mem::pageSize - 1);
    if (auto pte = table_.lookup(va))
        return pte->pfn;
    return std::nullopt;
}

void
AddressSpace::forEachVma(const std::function<void(const Vma &)> &fn) const
{
    for (const auto &kv : vmas_)
        fn(kv.second);
}

void
AddressSpace::releaseAll()
{
    while (!vmas_.empty())
        munmap(vmas_.begin()->first);
}

} // namespace hos::guestos
