/**
 * @file
 * Simulated block storage device.
 *
 * The storage-intensive workloads (LevelDB, GraphChi shard loading,
 * X-Stream streaming partitions) exercise the page cache, whose whole
 * purpose is hiding this device's latency. Parameters default to a
 * SATA-class datacenter SSD circa the paper's testbed.
 */

#ifndef HOS_GUESTOS_BLOCKDEV_HH
#define HOS_GUESTOS_BLOCKDEV_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/time.hh"

namespace hos::guestos {

/** Device performance parameters. */
struct BlockDeviceConfig
{
    double seq_read_gbps = 0.50;   ///< sequential read bandwidth
    double seq_write_gbps = 0.40;  ///< sequential write bandwidth
    double rand_read_gbps = 0.20;  ///< 4K random read throughput
    double rand_write_gbps = 0.15; ///< 4K random write throughput
    double io_latency_us = 80.0;   ///< per-request latency
};

/** Charges simulated time for disk I/O. */
class BlockDevice
{
  public:
    explicit BlockDevice(BlockDeviceConfig cfg = {});

    const BlockDeviceConfig &config() const { return cfg_; }

    /** Time to read `bytes` (sequential or random pattern). */
    sim::Duration read(std::uint64_t bytes, bool sequential);

    /** Time to write `bytes`. */
    sim::Duration write(std::uint64_t bytes, bool sequential);

    std::uint64_t bytesRead() const { return bytes_read_.value(); }
    std::uint64_t bytesWritten() const { return bytes_written_.value(); }
    std::uint64_t requests() const { return requests_.value(); }

    void resetStats();

  private:
    sim::Duration transfer(std::uint64_t bytes, double gbps);

    BlockDeviceConfig cfg_;
    sim::Counter bytes_read_;
    sim::Counter bytes_written_;
    sim::Counter requests_;
};

} // namespace hos::guestos

#endif // HOS_GUESTOS_BLOCKDEV_HH
