#include "guestos/blockdev.hh"

#include "sim/log.hh"

namespace hos::guestos {

BlockDevice::BlockDevice(BlockDeviceConfig cfg) : cfg_(cfg)
{
    hos_assert(cfg_.seq_read_gbps > 0 && cfg_.seq_write_gbps > 0,
               "block device needs bandwidth");
}

sim::Duration
BlockDevice::transfer(std::uint64_t bytes, double gbps)
{
    requests_.inc();
    const double ns = cfg_.io_latency_us * 1000.0 +
                      static_cast<double>(bytes) / gbps;
    return static_cast<sim::Duration>(ns);
}

sim::Duration
BlockDevice::read(std::uint64_t bytes, bool sequential)
{
    bytes_read_.inc(bytes);
    return transfer(bytes, sequential ? cfg_.seq_read_gbps
                                      : cfg_.rand_read_gbps);
}

sim::Duration
BlockDevice::write(std::uint64_t bytes, bool sequential)
{
    bytes_written_.inc(bytes);
    return transfer(bytes, sequential ? cfg_.seq_write_gbps
                                      : cfg_.rand_write_gbps);
}

void
BlockDevice::resetStats()
{
    bytes_read_.reset();
    bytes_written_.reset();
    requests_.reset();
}

} // namespace hos::guestos
