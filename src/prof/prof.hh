/**
 * @file
 * hos::prof — deterministic hierarchical span profiler.
 *
 * Answers the question the flat tracer cannot: *which mechanism* ate
 * the simulated time. RAII spans (HOS_PROF_SPAN) mark the paper's
 * cost centers — migration epoch → candidate-select → batch-copy →
 * remap → TLB-shootdown; scan pass → per-chunk walk; DRF round →
 * reallocation → balloon op — and every GuestKernel::charge() made
 * while a span is open is attributed to the innermost open span's
 * ledger cell, keyed by (span path, VM, tier, overhead kind). The
 * per-kind ledger sums therefore equal the kernel's OverheadKind
 * counters *by construction*, bit for bit — the cross-check
 * test_prof.cc pins.
 *
 * Design constraints, in order:
 *  1. Zero cost when compiled out: HOS_PROF_LEVEL=0 turns
 *     HOS_PROF_SPAN into an empty declaration and onCharge() into a
 *     no-op (mirroring HOS_CHECK's level scheme).
 *  2. Deterministic: span begin/end and charge attribution read only
 *     sim ticks. Host time (steady_clock) exists solely at
 *     HOS_PROF_LEVEL=2 and is never included in determinism-checked
 *     output (writeProfileReport drops it unless explicitly asked).
 *  3. Bit-identical simulation: profiling observes charges, it never
 *     creates or reorders them. Golden-determinism tests run the
 *     pinned matrix prof-on and prof-off and compare Results.
 *  4. Isolation: like trace::ScopedSink, a thread-local active
 *     profiler (ScopedProfiler) keeps parallel sweep points from
 *     interleaving; HeteroSystem installs its own profiler around
 *     runOne/runMany.
 *
 * Layering: prof sits between trace and guestos, so it cannot name
 * guestos::OverheadKind. Charges carry the kind as a plain index;
 * GuestKernel registers the label table once (registerCostKindNames)
 * and exporters resolve indices back to "migration"/"hotscan"/...
 */

#ifndef HOS_PROF_PROF_HH
#define HOS_PROF_PROF_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

#ifndef HOS_PROF_LEVEL
#define HOS_PROF_LEVEL 1
#endif

namespace hos::prof {

/** Compile-time profiling level (CMake HOS_PROF=off/sim/host). */
constexpr int compiledLevel = HOS_PROF_LEVEL;
/** Spans and charge attribution compiled in (level >= 1). */
constexpr bool profilingCompiled = HOS_PROF_LEVEL >= 1;
/** Spans additionally sample host steady_clock time (level >= 2). */
constexpr bool hostTimeCompiled = HOS_PROF_LEVEL >= 2;

/** "off", "sim", or "host". */
const char *levelName();

/**
 * The span taxonomy: one kind per mechanism of the paper's Fig. 8 /
 * Table 6 overhead decomposition (see DESIGN.md §8 for the mapping).
 */
enum class SpanKind : std::uint8_t {
    MigrationEpoch = 0, ///< one promote/evict round (engine or guest)
    CandidateSelect,    ///< choosing what to move (sampling, sorting)
    BatchCopy,          ///< modelled page-copy cost of a batch
    Remap,              ///< P2M / page-table remap walk
    TlbShootdown,       ///< invalidation cost after remaps or scans
    ScanPass,           ///< one hotness-tracker scan invocation
    ChunkWalk,          ///< one contiguous range/chunk inside a scan
    ReclaimPass,        ///< HeteroOS-LRU demotion / direct reclaim
    WritebackPass,      ///< dirty-page flusher batch
    DrfRound,           ///< one DRF approve() arbitration
    Reallocation,       ///< DRF reclaim loop redistributing frames
    BalloonOp,          ///< one balloon inflate/deflate/reclaim op
    SwapOp,             ///< swap-out fallback inside a balloon op
    RegionSample,       ///< region-backend probe sampling inside a scan
    RegionAdjust,       ///< region split/merge bookkeeping inside a scan
    IoFill,             ///< file-backed page fill from modelled storage
};

constexpr std::size_t numSpanKinds = 16;

/** Stable lower-case name ("migration_epoch"), used in span paths. */
const char *spanKindName(SpanKind k);

/** Tier index values mirror mem::MemType; noTier = not tier-specific. */
constexpr std::uint8_t noTier = 0xff;
/** Cost-kind sentinel marking a span-occurrence ledger row. */
constexpr std::uint8_t noCostKind = 0xff;
/** Upper bound on registered cost kinds (guest OverheadKinds). */
constexpr std::size_t maxCostKinds = 16;

/**
 * Register the cost-kind label table (the guest's overheadKindName
 * strings). First registration wins; later calls are no-ops. The
 * pointers must stay valid for the process lifetime (string
 * literals). Thread-safe: sweep workers may construct kernels
 * concurrently.
 */
void registerCostKindNames(const char *const *names, std::size_t count);

/** Label for a cost kind, or nullptr when none was registered. */
const char *costKindName(std::uint8_t kind);

/** Short tier label ("fast"/"slow"/"medium"; "-" for noTier). */
const char *tierLabel(std::uint8_t tier);

/**
 * One aggregated ledger row. Rows with kind "-" count span
 * occurrences (and carry host time at level 2); all other rows hold
 * the simulated time charged to (path, vm, tier) under that overhead
 * kind. Paths are ';'-joined span names, innermost last;
 * "(unattributed)" collects charges made outside any span.
 */
struct ProfileEntry
{
    std::string path;
    std::uint16_t vm = 0;
    std::string tier;          ///< "fast"/"slow"/"medium"/"-"
    std::string kind;          ///< overhead kind label; "-" = span row
    std::uint64_t count = 0;   ///< charges, or span occurrences
    std::uint64_t sim_ns = 0;  ///< simulated time charged
    std::uint64_t host_ns = 0; ///< host time (level 2 only; never
                               ///< in deterministic output)
};

/** The attribution ledger, flattened for export (sorted rows). */
struct ProfileReport
{
    std::vector<ProfileEntry> entries;

    bool empty() const { return entries.empty(); }

    /** Sum of sim_ns over charge rows of one kind label. */
    std::uint64_t simTotalForKind(const std::string &kind) const;
    /** Per-kind sim_ns totals over all charge rows, by label. */
    std::map<std::string, std::uint64_t> kindTotals() const;
    /** Sum of sim_ns over every charge row. */
    std::uint64_t simGrandTotal() const;
};

/**
 * The span stack plus attribution ledger for one run (or one
 * HeteroSystem). All bookkeeping is per-instance and single-threaded;
 * cross-thread isolation comes from ScopedProfiler, exactly like
 * trace::Tracer/ScopedSink.
 */
class Profiler
{
  public:
    Profiler();

    /**
     * Mark this profiler active. The process-wide profiler()
     * additionally becomes the fallback for threads without a
     * ScopedProfiler installed.
     */
    void enable();
    void disable();
    bool enabled() const { return enabled_; }

    /** Drop the ledger, the path tree, and the span counters. */
    void clear();

    /**
     * Open a span (the RAII Span calls this). Returns the interned
     * path-tree node id. Emits trace::EventType::SpanBegin.
     */
    std::uint32_t beginSpan(SpanKind kind, sim::Tick now,
                            std::uint16_t vm, std::uint8_t tier);

    /** Close the innermost span; host_ns is 0 below level 2. */
    void endSpan(sim::Tick now, std::uint64_t host_ns = 0);

    /** Attribute one kernel charge to the innermost open span. */
    void recordCharge(std::uint8_t cost_kind, sim::Duration d);

    /** Currently open spans (0 between events; audited at run end). */
    std::size_t depth() const { return stack_.size(); }
    std::uint64_t spansOpened() const { return spans_opened_; }
    std::uint64_t spansClosed() const { return spans_closed_; }

    /** The "prof" stat group (span_depth/live_spans gauges). */
    sim::StatGroup &stats() { return stats_; }
    /** Refresh the gauges from live state (registry refresh hook). */
    void syncStats();

    /** Flatten the ledger into sorted, labelled rows. */
    ProfileReport report() const;

  private:
    struct Node
    {
        std::uint32_t parent; ///< noNode for roots
        SpanKind kind;
    };
    struct Frame
    {
        std::uint32_t node;
        std::uint16_t vm;
        std::uint8_t tier;
    };
    struct CellKey
    {
        std::uint32_t node; ///< noNode = charged outside any span
        std::uint16_t vm;
        std::uint8_t tier;
        std::uint8_t cost_kind; ///< noCostKind = span-occurrence row

        bool operator<(const CellKey &o) const
        {
            if (node != o.node)
                return node < o.node;
            if (vm != o.vm)
                return vm < o.vm;
            if (tier != o.tier)
                return tier < o.tier;
            return cost_kind < o.cost_kind;
        }
    };
    struct Cell
    {
        std::uint64_t count = 0;
        std::uint64_t sim_ns = 0;
        std::uint64_t host_ns = 0;
    };

    static constexpr std::uint32_t noNode = 0xffffffffu;

    std::string pathOf(std::uint32_t node) const;

    bool enabled_ = false;
    std::vector<Node> nodes_;
    /** (parent, kind) -> interned node id. */
    std::map<std::pair<std::uint32_t, std::uint8_t>, std::uint32_t>
        children_;
    std::vector<Frame> stack_;
    std::map<CellKey, Cell> cells_;
    std::uint64_t spans_opened_ = 0;
    std::uint64_t spans_closed_ = 0;
    sim::StatGroup stats_{"prof"};
};

/** The process-wide default profiler (legacy single-run flows). */
Profiler &profiler();

namespace detail {
/** Global fallback: set when the process-wide profiler is enabled. */
extern Profiler *g_active;
/** Thread-local override installed by ScopedProfiler. */
extern thread_local Profiler *t_active;

inline Profiler *
activeProfiler()
{
    return t_active != nullptr ? t_active : g_active;
}

/** Host steady_clock in ns (defined in prof.cc — the one sanctioned
 * wall-clock site in the tree; see tools/lint.sh). */
std::uint64_t hostNow();
} // namespace detail

/**
 * Forward one kernel charge to the active profiler, if any. The
 * disabled fast path is one thread-local load and a branch; at
 * HOS_PROF_LEVEL=0 it compiles away entirely.
 */
inline void
onCharge(std::uint8_t cost_kind, sim::Duration d)
{
#if HOS_PROF_LEVEL >= 1
    if (Profiler *p = detail::activeProfiler())
        p->recordCharge(cost_kind, d);
#else
    (void)cost_kind;
    (void)d;
#endif
}

/**
 * RAII install of a per-thread active profiler. While alive, spans
 * and charges on the constructing thread attribute into `p`;
 * destruction restores the previous profiler (scopes nest). A null
 * profiler is a no-op, so callers can write
 * `ScopedProfiler guard(profilingWanted ? &prof : nullptr);`.
 */
class ScopedProfiler
{
  public:
    explicit ScopedProfiler(Profiler *p)
    {
#if HOS_PROF_LEVEL >= 1
        if (p == nullptr)
            return;
        prev_ = detail::t_active;
        detail::t_active = p;
        installed_ = true;
#else
        (void)p;
#endif
    }
    ~ScopedProfiler()
    {
#if HOS_PROF_LEVEL >= 1
        if (installed_)
            detail::t_active = prev_;
#endif
    }

    ScopedProfiler(const ScopedProfiler &) = delete;
    ScopedProfiler &operator=(const ScopedProfiler &) = delete;

  private:
#if HOS_PROF_LEVEL >= 1
    Profiler *prev_ = nullptr;
    bool installed_ = false;
#endif
};

#if HOS_PROF_LEVEL >= 1

/**
 * One profiled span. Opens against the active profiler (no-op when
 * none); reads sim time from the event queue at both ends, and host
 * time only at HOS_PROF_LEVEL=2. Use via HOS_PROF_SPAN.
 */
class Span
{
  public:
    Span(SpanKind kind, sim::EventQueue &q, std::uint16_t vm = 0,
         std::uint8_t tier = noTier)
    {
        prof_ = detail::activeProfiler();
        if (prof_ == nullptr)
            return;
        queue_ = &q;
        prof_->beginSpan(kind, q.now(), vm, tier);
#if HOS_PROF_LEVEL >= 2
        host_start_ = detail::hostNow();
#endif
    }

    ~Span()
    {
        if (prof_ == nullptr)
            return;
        std::uint64_t host_ns = 0;
#if HOS_PROF_LEVEL >= 2
        host_ns = detail::hostNow() - host_start_;
#endif
        prof_->endSpan(queue_->now(), host_ns);
    }

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    Profiler *prof_ = nullptr;
    sim::EventQueue *queue_ = nullptr;
#if HOS_PROF_LEVEL >= 2
    std::uint64_t host_start_ = 0;
#endif
};

#define HOS_PROF_SPAN(var, ...) ::hos::prof::Span var(__VA_ARGS__)

#else // HOS_PROF_LEVEL == 0

/** Level-0 stand-in: construction compiles to nothing; the macro
 * never evaluates its arguments. */
class Span
{
  public:
    Span() = default;
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;
};

#define HOS_PROF_SPAN(var, ...) \
    [[maybe_unused]] ::hos::prof::Span var

#endif // HOS_PROF_LEVEL

} // namespace hos::prof

#endif // HOS_PROF_PROF_HH
