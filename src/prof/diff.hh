/**
 * @file
 * Profile diffing for regression gating (hos-profdiff).
 *
 * Two reports are aligned two ways: coarse per-kind totals (the
 * paper's Table 6 rows — what CI thresholds gate on) and fine
 * per-cell (path, vm, tier, kind) rows (what --exact compares for the
 * determinism gate). Growth is after/before as a ratio; cells present
 * on only one side compare against 0.
 */

#ifndef HOS_PROF_DIFF_HH
#define HOS_PROF_DIFF_HH

#include <ostream>
#include <string>
#include <vector>

#include "prof/prof.hh"
#include "sim/json.hh"

namespace hos::prof {

/** One aligned row: a kind total or a ledger cell. */
struct DiffEntry
{
    std::string key;            ///< kind label, or "vmN|path|tier|kind"
    std::uint64_t before = 0;   ///< sim_ns on the before side
    std::uint64_t after = 0;    ///< sim_ns on the after side

    std::int64_t delta() const
    {
        return static_cast<std::int64_t>(after) -
               static_cast<std::int64_t>(before);
    }
    /** Relative growth in percent; +inf-ish capped when before == 0. */
    double growthPct() const;
};

/** The full comparison of two reports. */
struct ProfileDiff
{
    std::vector<DiffEntry> kinds; ///< per-OverheadKind totals
    std::vector<DiffEntry> cells; ///< per-(path,vm,tier,kind) rows
    std::uint64_t before_total = 0;
    std::uint64_t after_total = 0;

    /** No differing cell anywhere (counts ignored, sim_ns compared). */
    bool identical() const;
    /** Largest per-kind growthPct() over kinds that grew. */
    double maxKindGrowthPct() const;
};

ProfileDiff diffProfiles(const ProfileReport &before,
                         const ProfileReport &after);

/** True when any kind total grew by more than threshold_pct. */
bool hasRegression(const ProfileDiff &diff, double threshold_pct);

/** Human-readable table (kind totals, then changed cells). */
void printDiff(const ProfileDiff &diff, std::ostream &os);

/** Machine-readable form (schema "hos-profdiff-1"). */
void writeDiffJson(const ProfileDiff &diff, double threshold_pct,
                   std::ostream &os);

} // namespace hos::prof

#endif // HOS_PROF_DIFF_HH
