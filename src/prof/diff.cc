#include "prof/diff.hh"

#include <algorithm>
#include <cstdio>
#include <map>

namespace hos::prof {

namespace {

std::string
cellKey(const ProfileEntry &e)
{
    return "vm" + std::to_string(e.vm) + "|" + e.path + "|" + e.tier +
           "|" + e.kind;
}

/** Align two (key -> sim_ns) maps into DiffEntry rows, sorted by key. */
std::vector<DiffEntry>
align(const std::map<std::string, std::uint64_t> &before,
      const std::map<std::string, std::uint64_t> &after)
{
    std::vector<DiffEntry> rows;
    for (const auto &[key, b] : before) {
        DiffEntry e;
        e.key = key;
        e.before = b;
        auto it = after.find(key);
        e.after = it == after.end() ? 0 : it->second;
        rows.push_back(std::move(e));
    }
    for (const auto &[key, a] : after) {
        if (before.count(key) != 0)
            continue;
        DiffEntry e;
        e.key = key;
        e.after = a;
        rows.push_back(std::move(e));
    }
    std::sort(rows.begin(), rows.end(),
              [](const DiffEntry &a, const DiffEntry &b) {
                  return a.key < b.key;
              });
    return rows;
}

} // namespace

double
DiffEntry::growthPct() const
{
    if (before == 0)
        return after == 0 ? 0.0 : 1e9; // appeared from nothing
    return (static_cast<double>(after) / static_cast<double>(before) -
            1.0) *
           100.0;
}

bool
ProfileDiff::identical() const
{
    const auto changed = [](const DiffEntry &e) {
        return e.before != e.after;
    };
    return std::none_of(kinds.begin(), kinds.end(), changed) &&
           std::none_of(cells.begin(), cells.end(), changed);
}

double
ProfileDiff::maxKindGrowthPct() const
{
    double max_growth = 0.0;
    for (const DiffEntry &e : kinds)
        max_growth = std::max(max_growth, e.growthPct());
    return max_growth;
}

ProfileDiff
diffProfiles(const ProfileReport &before, const ProfileReport &after)
{
    ProfileDiff diff;

    std::map<std::string, std::uint64_t> cells_before, cells_after;
    for (const ProfileEntry &e : before.entries) {
        if (e.kind != "-")
            cells_before[cellKey(e)] += e.sim_ns;
    }
    for (const ProfileEntry &e : after.entries) {
        if (e.kind != "-")
            cells_after[cellKey(e)] += e.sim_ns;
    }

    std::map<std::string, std::uint64_t> kt_before, kt_after;
    for (const auto &[kind, total] : before.kindTotals())
        kt_before[kind] = total;
    for (const auto &[kind, total] : after.kindTotals())
        kt_after[kind] = total;

    diff.kinds = align(kt_before, kt_after);
    diff.cells = align(cells_before, cells_after);
    diff.before_total = before.simGrandTotal();
    diff.after_total = after.simGrandTotal();
    return diff;
}

bool
hasRegression(const ProfileDiff &diff, double threshold_pct)
{
    for (const DiffEntry &e : diff.kinds) {
        if (e.after > e.before && e.growthPct() > threshold_pct)
            return true;
    }
    return false;
}

void
printDiff(const ProfileDiff &diff, std::ostream &os)
{
    char line[256];
    os << "per-kind simulated-time totals:\n";
    std::snprintf(line, sizeof(line), "  %-12s %16s %16s %10s\n",
                  "kind", "before_ns", "after_ns", "growth");
    os << line;
    for (const DiffEntry &e : diff.kinds) {
        std::snprintf(line, sizeof(line),
                      "  %-12s %16llu %16llu %+9.2f%%\n", e.key.c_str(),
                      static_cast<unsigned long long>(e.before),
                      static_cast<unsigned long long>(e.after),
                      e.growthPct());
        os << line;
    }
    std::snprintf(line, sizeof(line), "  %-12s %16llu %16llu\n",
                  "total",
                  static_cast<unsigned long long>(diff.before_total),
                  static_cast<unsigned long long>(diff.after_total));
    os << line;

    std::size_t changed = 0;
    for (const DiffEntry &e : diff.cells) {
        if (e.before != e.after)
            ++changed;
    }
    os << "changed cells: " << changed << " of " << diff.cells.size()
       << '\n';
    for (const DiffEntry &e : diff.cells) {
        if (e.before == e.after)
            continue;
        std::snprintf(line, sizeof(line), "  %s: %llu -> %llu\n",
                      e.key.c_str(),
                      static_cast<unsigned long long>(e.before),
                      static_cast<unsigned long long>(e.after));
        os << line;
    }
}

void
writeDiffJson(const ProfileDiff &diff, double threshold_pct,
              std::ostream &os)
{
    sim::JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "hos-profdiff-1");
    w.kv("threshold_pct", threshold_pct);
    w.kv("identical", diff.identical());
    w.kv("regression", hasRegression(diff, threshold_pct));
    w.kv("before_total_ns", diff.before_total);
    w.kv("after_total_ns", diff.after_total);
    w.key("kinds");
    w.beginArray();
    for (const DiffEntry &e : diff.kinds) {
        w.beginObject();
        w.kv("kind", e.key);
        w.kv("before_ns", e.before);
        w.kv("after_ns", e.after);
        w.kv("growth_pct", e.growthPct());
        w.endObject();
    }
    w.endArray();
    w.key("changed_cells");
    w.beginArray();
    for (const DiffEntry &e : diff.cells) {
        if (e.before == e.after)
            continue;
        w.beginObject();
        w.kv("cell", e.key);
        w.kv("before_ns", e.before);
        w.kv("after_ns", e.after);
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << '\n';
}

} // namespace hos::prof
