#include "prof/prof.hh"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "sim/log.hh"
#include "trace/trace.hh"

namespace hos::prof {

namespace detail {
Profiler *g_active = nullptr;
thread_local Profiler *t_active = nullptr;

std::uint64_t
hostNow()
{
    // The one sanctioned wall-clock read in the tree: host-time span
    // costs at HOS_PROF_LEVEL=2. Never feeds simulated state or any
    // determinism-checked output.
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}
} // namespace detail

namespace {

constexpr const char *kSpanNames[numSpanKinds] = {
    "migration_epoch", "candidate_select", "batch_copy",
    "remap",           "tlb_shootdown",    "scan_pass",
    "chunk_walk",      "reclaim_pass",     "writeback_pass",
    "drf_round",       "reallocation",     "balloon_op",
    "swap_op",         "region_sample",    "region_adjust",
    "io_fill",
};

/**
 * Cost-kind label table, registered once by the guest kernel.
 * Release/acquire so sweep workers constructing kernels concurrently
 * with another worker's report() never see a half-written table.
 */
std::atomic<const char *const *> g_cost_names{nullptr};
std::atomic<std::size_t> g_num_cost_names{0};

const char *
spanNameResolver(std::uint64_t kind)
{
    return kind < numSpanKinds
               ? kSpanNames[static_cast<std::size_t>(kind)]
               : nullptr;
}

} // namespace

const char *
levelName()
{
#if HOS_PROF_LEVEL >= 2
    return "host";
#elif HOS_PROF_LEVEL >= 1
    return "sim";
#else
    return "off";
#endif
}

const char *
spanKindName(SpanKind k)
{
    const auto i = static_cast<std::size_t>(k);
    hos_assert(i < numSpanKinds, "bad span kind %zu", i);
    return kSpanNames[i];
}

void
registerCostKindNames(const char *const *names, std::size_t count)
{
    hos_assert(count <= maxCostKinds, "too many cost kinds");
    const char *const *expected = nullptr;
    if (g_cost_names.compare_exchange_strong(
            expected, names, std::memory_order_release,
            std::memory_order_relaxed)) {
        g_num_cost_names.store(count, std::memory_order_release);
    }
}

const char *
costKindName(std::uint8_t kind)
{
    const char *const *names =
        g_cost_names.load(std::memory_order_acquire);
    const std::size_t n =
        g_num_cost_names.load(std::memory_order_acquire);
    if (names == nullptr || kind >= n)
        return nullptr;
    return names[kind];
}

const char *
tierLabel(std::uint8_t tier)
{
    // Indices mirror mem::MemType (FastMem=0, SlowMem=1, MediumMem=2);
    // prof cannot include mem without inverting the layering.
    switch (tier) {
      case 0:
        return "fast";
      case 1:
        return "slow";
      case 2:
        return "medium";
      default:
        return "-";
    }
}

std::uint64_t
ProfileReport::simTotalForKind(const std::string &kind) const
{
    std::uint64_t total = 0;
    for (const ProfileEntry &e : entries) {
        if (e.kind == kind)
            total += e.sim_ns;
    }
    return total;
}

std::map<std::string, std::uint64_t>
ProfileReport::kindTotals() const
{
    std::map<std::string, std::uint64_t> totals;
    for (const ProfileEntry &e : entries) {
        if (e.kind != "-")
            totals[e.kind] += e.sim_ns;
    }
    return totals;
}

std::uint64_t
ProfileReport::simGrandTotal() const
{
    std::uint64_t total = 0;
    for (const ProfileEntry &e : entries) {
        if (e.kind != "-")
            total += e.sim_ns;
    }
    return total;
}

Profiler::Profiler()
{
    // Exporters turn SpanBegin/SpanEnd a0 back into span names
    // through this hook — trace sits below prof and cannot name
    // SpanKind itself.
    trace::setSpanNameResolver(&spanNameResolver);
}

Profiler &
profiler()
{
    static Profiler p;
    return p;
}

void
Profiler::enable()
{
    enabled_ = true;
    // Only the process-wide profiler becomes the global fallback;
    // per-system profilers are reached through ScopedProfiler.
    if (this == &profiler())
        detail::g_active = this;
}

void
Profiler::disable()
{
    enabled_ = false;
    if (this == &profiler() && detail::g_active == this)
        detail::g_active = nullptr;
}

void
Profiler::clear()
{
    nodes_.clear();
    children_.clear();
    stack_.clear();
    cells_.clear();
    spans_opened_ = 0;
    spans_closed_ = 0;
    syncStats();
}

std::uint32_t
Profiler::beginSpan(SpanKind kind, sim::Tick now, std::uint16_t vm,
                    std::uint8_t tier)
{
    const std::uint32_t parent =
        stack_.empty() ? noNode : stack_.back().node;
    const auto key =
        std::make_pair(parent, static_cast<std::uint8_t>(kind));
    auto it = children_.find(key);
    std::uint32_t node;
    if (it == children_.end()) {
        node = static_cast<std::uint32_t>(nodes_.size());
        nodes_.push_back({parent, kind});
        children_.emplace(key, node);
    } else {
        node = it->second;
    }
    stack_.push_back({node, vm, tier});
    ++spans_opened_;
    ++cells_[CellKey{node, vm, tier, noCostKind}].count;
    trace::emit(trace::EventType::SpanBegin, now,
                static_cast<std::uint64_t>(kind), stack_.size(), 0, 0,
                vm);
    return node;
}

void
Profiler::endSpan(sim::Tick now, std::uint64_t host_ns)
{
    if (stack_.empty())
        return; // imbalance; auditProf reports it at run end
    const Frame f = stack_.back();
    stack_.pop_back();
    ++spans_closed_;
    if (host_ns > 0)
        cells_[CellKey{f.node, f.vm, f.tier, noCostKind}].host_ns +=
            host_ns;
    trace::emit(trace::EventType::SpanEnd, now,
                static_cast<std::uint64_t>(nodes_[f.node].kind),
                stack_.size() + 1, 0, 0, f.vm);
}

void
Profiler::recordCharge(std::uint8_t cost_kind, sim::Duration d)
{
    CellKey key{noNode, 0, noTier, cost_kind};
    if (!stack_.empty()) {
        const Frame &f = stack_.back();
        key.node = f.node;
        key.vm = f.vm;
        key.tier = f.tier;
    }
    Cell &c = cells_[key];
    ++c.count;
    c.sim_ns += d;
}

void
Profiler::syncStats()
{
    stats_.gauge("span_depth").set(
        static_cast<std::int64_t>(stack_.size()));
    stats_.gauge("live_spans").set(
        static_cast<std::int64_t>(spans_opened_ - spans_closed_));
    stats_.counter("spans_opened").set(spans_opened_);
    stats_.counter("spans_closed").set(spans_closed_);
}

std::string
Profiler::pathOf(std::uint32_t node) const
{
    if (node == noNode)
        return "(unattributed)";
    // Climb to the root collecting kinds, then join outermost-first.
    std::vector<SpanKind> kinds;
    for (std::uint32_t n = node; n != noNode; n = nodes_[n].parent)
        kinds.push_back(nodes_[n].kind);
    std::string path;
    for (auto it = kinds.rbegin(); it != kinds.rend(); ++it) {
        if (!path.empty())
            path += ';';
        path += spanKindName(*it);
    }
    return path;
}

ProfileReport
Profiler::report() const
{
    ProfileReport rep;
    rep.entries.reserve(cells_.size());
    for (const auto &[key, cell] : cells_) {
        ProfileEntry e;
        e.path = pathOf(key.node);
        e.vm = key.vm;
        e.tier = tierLabel(key.tier);
        if (key.cost_kind == noCostKind) {
            e.kind = "-";
        } else if (const char *name = costKindName(key.cost_kind)) {
            e.kind = name;
        } else {
            e.kind = "kind" + std::to_string(key.cost_kind);
        }
        e.count = cell.count;
        e.sim_ns = cell.sim_ns;
        e.host_ns = cell.host_ns;
        rep.entries.push_back(std::move(e));
    }
    // Sort by labels, not intern order, so two runs that discovered
    // the same cells in different orders export identical reports.
    std::sort(rep.entries.begin(), rep.entries.end(),
              [](const ProfileEntry &a, const ProfileEntry &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.vm != b.vm)
                      return a.vm < b.vm;
                  if (a.tier != b.tier)
                      return a.tier < b.tier;
                  return a.kind < b.kind;
              });
    return rep;
}

} // namespace hos::prof
