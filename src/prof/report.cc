#include "prof/report.hh"

#include <algorithm>
#include <fstream>

#include "sim/log.hh"

namespace hos::prof {

void
writeProfileReport(sim::JsonWriter &w, const ProfileReport &report,
                   bool include_host)
{
    w.beginObject();
    w.kv("schema", "hos-prof-1");
    w.key("entries");
    w.beginArray();
    for (const ProfileEntry &e : report.entries) {
        w.beginObject();
        w.kv("path", e.path);
        w.kv("vm", static_cast<std::uint64_t>(e.vm));
        w.kv("tier", e.tier);
        w.kv("kind", e.kind);
        w.kv("count", e.count);
        w.kv("sim_ns", e.sim_ns);
        if (include_host)
            w.kv("host_ns", e.host_ns);
        w.endObject();
    }
    w.endArray();
    w.key("kind_totals");
    w.beginObject();
    for (const auto &[kind, total] : report.kindTotals())
        w.kv(kind, total);
    w.endObject();
    w.endObject();
}

ProfileReport
profileReportFromJson(const sim::JsonValue &v, std::string *error)
{
    ProfileReport report;
    const auto fail = [&](const std::string &what) {
        if (error != nullptr)
            *error = what;
        return ProfileReport{};
    };

    if (!v.isObject())
        return fail("profile is not an object");
    const sim::JsonValue *schema = v.find("schema");
    if (schema == nullptr || schema->asString() != "hos-prof-1")
        return fail("unknown profile schema '" +
                    (schema ? schema->asString() : std::string{}) + "'");
    const sim::JsonValue *entries = v.find("entries");
    if (entries == nullptr || !entries->isArray())
        return fail("profile has no entries array");

    for (const sim::JsonValue &ev : entries->array) {
        if (!ev.isObject())
            return fail("profile entry is not an object");
        ProfileEntry e;
        const sim::JsonValue *path = ev.find("path");
        const sim::JsonValue *kind = ev.find("kind");
        if (path == nullptr || kind == nullptr)
            return fail("profile entry missing path/kind");
        e.path = path->asString();
        e.kind = kind->asString();
        if (const sim::JsonValue *vm = ev.find("vm"))
            e.vm = static_cast<std::uint16_t>(vm->asU64());
        if (const sim::JsonValue *tier = ev.find("tier"))
            e.tier = tier->asString();
        if (const sim::JsonValue *count = ev.find("count"))
            e.count = count->asU64();
        if (const sim::JsonValue *sim_ns = ev.find("sim_ns"))
            e.sim_ns = sim_ns->asU64();
        if (const sim::JsonValue *host_ns = ev.find("host_ns"))
            e.host_ns = host_ns->asU64();
        report.entries.push_back(std::move(e));
    }
    return report;
}

void
mergeInto(ProfileReport &dst, const ProfileReport &src)
{
    for (const ProfileEntry &e : src.entries) {
        auto it = std::find_if(
            dst.entries.begin(), dst.entries.end(),
            [&](const ProfileEntry &d) {
                return d.path == e.path && d.vm == e.vm &&
                       d.tier == e.tier && d.kind == e.kind;
            });
        if (it == dst.entries.end()) {
            dst.entries.push_back(e);
        } else {
            it->count += e.count;
            it->sim_ns += e.sim_ns;
            it->host_ns += e.host_ns;
        }
    }
    std::sort(dst.entries.begin(), dst.entries.end(),
              [](const ProfileEntry &a, const ProfileEntry &b) {
                  if (a.path != b.path)
                      return a.path < b.path;
                  if (a.vm != b.vm)
                      return a.vm < b.vm;
                  if (a.tier != b.tier)
                      return a.tier < b.tier;
                  return a.kind < b.kind;
              });
}

void
writeCollapsed(const ProfileReport &report, std::ostream &os)
{
    for (const ProfileEntry &e : report.entries) {
        if (e.kind == "-")
            continue; // span-occurrence rows carry no charged time
        os << "vm" << e.vm << ';' << e.path << ';' << e.kind << ' '
           << e.sim_ns << '\n';
    }
}

bool
writeCollapsed(const ProfileReport &report, const std::string &path)
{
    std::ofstream os(path);
    if (!os) {
        sim::warn("cannot open collapsed-stack file '%s'", path.c_str());
        return false;
    }
    writeCollapsed(report, os);
    return os.good();
}

} // namespace hos::prof
