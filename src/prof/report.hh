/**
 * @file
 * ProfileReport serialization: deterministic JSON embedding (schema
 * "hos-prof-1") for core::RunRecord / results.json, the matching
 * parser used by hos-profdiff, and the collapsed-stack exporter for
 * flamegraph.pl / speedscope.
 *
 * Host time is deliberately excluded from the default JSON so the
 * profile block stays bit-identical across runs; pass
 * include_host=true only for human-facing diagnostics.
 */

#ifndef HOS_PROF_REPORT_HH
#define HOS_PROF_REPORT_HH

#include <ostream>
#include <string>

#include "prof/prof.hh"
#include "sim/json.hh"

namespace hos::prof {

/**
 * Write one report as a JSON object:
 *
 *   { "schema": "hos-prof-1",
 *     "entries": [ {"path": ..., "vm": N, "tier": ..., "kind": ...,
 *                   "count": N, "sim_ns": N}, ... ],
 *     "kind_totals": { "migration": N, ... } }
 *
 * Entries are already sorted by Profiler::report(); the writer adds
 * nothing nondeterministic.
 */
void writeProfileReport(sim::JsonWriter &w, const ProfileReport &report,
                        bool include_host = false);

/**
 * Rebuild a report from its JSON form. Returns an empty report and
 * sets `error` (when given) on schema mismatch or malformed entries.
 */
ProfileReport profileReportFromJson(const sim::JsonValue &v,
                                    std::string *error = nullptr);

/** Accumulate `src` entries into `dst`, merging identical keys. */
void mergeInto(ProfileReport &dst, const ProfileReport &src);

/**
 * Collapsed-stack export: one line per charge row,
 *
 *   vm<id>;<span;path>;<kind> <sim_ns>
 *
 * directly consumable by flamegraph.pl or speedscope.
 */
void writeCollapsed(const ProfileReport &report, std::ostream &os);

/** As above, writing to `path`; false when the file can't be opened. */
bool writeCollapsed(const ProfileReport &report, const std::string &path);

} // namespace hos::prof

#endif // HOS_PROF_REPORT_HH
