#include "workload/memlat.hh"

#include <algorithm>

namespace hos::workload {

namespace {
constexpr double cpuGhz = 2.67;
} // namespace

MemlatBenchmark::MemlatBenchmark(VmEnv env, Params p)
    : Workload(std::move(env), "memlat"), p_(p)
{
    io_overlap_ = 0.0;
}

void
MemlatBenchmark::setup()
{
    buf_ = makeAnonRegion("chase-buffer", p_.wss_bytes, p_.wss_bytes,
                          /*temporal=*/0.0, /*mlp=*/1.0,
                          /*write_frac=*/0.0);
    growRegion(buf_, p_.wss_bytes);
}

bool
MemlatBenchmark::phase(std::uint64_t idx)
{
    accessRegion(buf_, p_.accesses_per_phase);
    accesses_done_ += p_.accesses_per_phase;
    chargeInstructions(p_.accesses_per_phase * 4);
    // A dependent chase is pure memory time; the ALU work between
    // loads hides under the misses. LLC hits still cost ~40 cycles.
    const std::uint64_t hits =
        p_.accesses_per_phase -
        std::min(p_.accesses_per_phase, p_.accesses_per_phase);
    (void)hits;
    chargeCpu(static_cast<sim::Duration>(
        static_cast<double>(p_.accesses_per_phase) * 15.0 / cpuGhz));
    return idx + 1 < p_.phases;
}

double
MemlatBenchmark::avgLatencyCycles() const
{
    if (accesses_done_ == 0)
        return 0.0;
    const double ns_per_access =
        static_cast<double>(elapsed()) /
        static_cast<double>(accesses_done_);
    return ns_per_access * cpuGhz;
}

} // namespace hos::workload
