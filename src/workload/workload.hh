/**
 * @file
 * Phase-based workload engine.
 *
 * Applications are modelled as sequences of phases. Each phase issues
 * memory accesses over *regions* (heap arenas, mmap'd files, network
 * buffers), performs I/O through the guest's page cache, and consumes
 * CPU. The engine converts that activity into simulated time:
 *
 *   phase time = CPU + memory service + exposed I/O wait
 *              + guest management overhead (alloc/reclaim/migration/
 *                hotness scans, drained from the kernel's accounts)
 *
 * Memory service is placement-aware: the engine samples the actual
 * backing tier (via the guest's placement oracle, which sees through
 * VMM-exclusive hidden placement too) of each region's hot pages and
 * splits the LLC-miss traffic across the tier devices. This is where
 * every placement decision made by the OS/VMM machinery turns into
 * performance.
 *
 * The engine also feeds hotness ground truth: every phase marks a
 * rotating slice of each region's hot window accessed (PTE accessed
 * bits + page reference bits), which is exactly what the hotness
 * trackers harvest and the LRU observes.
 */

#ifndef HOS_WORKLOAD_WORKLOAD_HH
#define HOS_WORKLOAD_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "guestos/kernel.hh"
#include "guestos/slab.hh"
#include "mem/cache_model.hh"
#include "mem/mem_device.hh"
#include "sim/rng.hh"
#include "sim/time.hh"

namespace hos::workload {

/** The environment a workload runs in (provided by core). */
struct VmEnv
{
    guestos::GuestKernel *kernel = nullptr;
    mem::CacheModel *llc = nullptr;
    /** Tier -> the machine device servicing it. */
    std::function<mem::MemDevice &(mem::MemType)> device;
    /** Concurrent VMs contending for the devices. */
    std::function<unsigned()> sharers = [] { return 1u; };
    /** Report cumulative LLC misses (Equation 1 input); optional. */
    std::function<void(std::uint64_t)> report_misses;
    /**
     * Use the legacy per-phase placement *sampling* instead of the
     * incremental ResidencyIndex. The two are bit-identical (the
     * golden-determinism test and check::auditResidency enforce it);
     * the legacy path is retained as the cross-check.
     */
    bool legacy_placement_sampling = false;
};

/** A workload-managed set of pages with a locality profile. */
struct Region
{
    std::string name;
    guestos::PageType type = guestos::PageType::Anon;
    std::uint64_t vma_start = 0;       ///< anon regions: VMA base
    std::vector<guestos::Gpfn> pages;  ///< current page set
    std::uint64_t wss_pages = 0;       ///< hot-window size
    double temporal = 0.3;             ///< LLC temporal locality
    double mlp = 2.0;                  ///< memory-level parallelism
    double write_frac = 0.2;
    /**
     * Access skew inside the hot window: `core_frac` of the window is
     * a very hot core drawing `core_weight` of the accesses, touched
     * every phase; the rest is touched intermittently. The skew is
     * what hotness tracking exploits — without it, promoting any hot
     * page evicts an equally hot one and migration is zero-sum.
     */
    double core_frac = 0.25;
    double core_weight = 0.60;
    /** Per-phase touch probability of non-core hot-window pages. */
    double ref_chance = 0.45;
    /**
     * Hot-set drift: the hot window slides over the region by this
     * fraction of its size every phase (application phase changes).
     * Pages cold at allocation time later turn hot — the situation
     * only migration can repair, and the reason hotness tracking
     * exists at all (Figure 6's "for larger working sets, hotness-
     * tracking and migration are essential").
     */
    double drift_frac = 0.002;
    std::uint64_t window_start = 0;    ///< current hot-window origin
    std::uint64_t mark_cursor = 0;     ///< rotating accessed-bit slice
    bool oom_warned = false;           ///< growRegion warn-once latch
    /** ResidencyIndex registration (anon regions). */
    guestos::RegionHandle residency = guestos::invalidRegionHandle;
};

/** Base class for application models. */
class Workload
{
  public:
    /** Final outcome of a run. */
    struct Result
    {
        std::string workload;
        sim::Duration elapsed = 0;
        std::uint64_t phases = 0;
        double metric = 0.0;           ///< app-specific figure of merit
        std::string metric_name;
        std::uint64_t instructions = 0;
        std::uint64_t llc_misses = 0;
        double mpki = 0.0;

        double seconds() const { return sim::toSeconds(elapsed); }
    };

    Workload(VmEnv env, std::string name);
    virtual ~Workload();

    const std::string &name() const { return name_; }
    sim::Duration elapsed() const { return elapsed_; }
    bool started() const { return started_; }
    bool done() const { return done_; }

    /** Prepare processes/regions/files (calls setup()). */
    void start();

    /** Run one phase; false once the workload has completed. */
    bool step();

    /** Collect the result (valid once done). */
    Result finish();

    /** start + step to completion + finish. */
    Result run();

  protected:
    /** Create processes, files, initial regions. */
    virtual void setup() = 0;

    /** Execute phase `idx`; return false when the app is finished. */
    virtual bool phase(std::uint64_t idx) = 0;

    /** App-specific figure of merit (default: runtime in seconds). */
    virtual double metricValue() const;
    virtual const char *metricName() const { return "time(sec)"; }

    // --- Environment access -------------------------------------
    guestos::GuestKernel &kernel() { return *env_.kernel; }
    guestos::AddressSpace &mainProcess() { return *main_process_; }
    mem::CacheModel &llc() { return *env_.llc; }
    sim::Rng &rng() { return rng_; }

    // --- Region management ---------------------------------------
    /**
     * Create an anonymous region backed by a fresh VMA. Pages are
     * faulted in by growRegion().
     */
    Region makeAnonRegion(const std::string &name, std::uint64_t bytes,
                          std::uint64_t wss_bytes, double temporal,
                          double mlp, double write_frac,
                          guestos::MemHint hint = guestos::MemHint::None);

    /** Fault in up to `bytes` more of the region's VMA. */
    void growRegion(Region &r, std::uint64_t bytes);

    /** munmap the region's VMA, releasing all its pages. */
    void releaseRegion(Region &r);

    /**
     * Issue `accesses` memory references over the region's hot
     * window: samples tier placement, charges device time, and marks
     * a rotating slice of pages accessed.
     */
    void accessRegion(Region &r, std::uint64_t accesses);

    /**
     * Compute over an explicit page set (mmap'd page-cache data):
     * placement-aware like accessRegion, but the working set is the
     * given pages. This is how the graph engines consume shards and
     * streaming partitions — the page cache IS their working memory.
     */
    void accessPages(const std::vector<guestos::Gpfn> &pages,
                     std::uint64_t accesses, double temporal, double mlp,
                     double write_frac);

    // --- I/O -------------------------------------------------------
    guestos::FileId makeFile(std::uint64_t bytes);

    /**
     * Buffered read; charges exposed I/O wait (scaled by the app's
     * I/O overlap factor) and the placement-aware copy-out traffic.
     * Returns pages touched.
     */
    std::vector<guestos::Gpfn> ioRead(guestos::FileId f,
                                      std::uint64_t offset,
                                      std::uint64_t len);

    /** Buffered write (dirty page-cache pages; flusher does disk). */
    void ioWrite(guestos::FileId f, std::uint64_t offset,
                 std::uint64_t len);

    /**
     * Charge placement-aware memory traffic for touching cache pages
     * (copy to/from user buffers).
     */
    void ioAccessPages(const std::vector<guestos::Gpfn> &pages,
                       bool write);

    // --- Network ----------------------------------------------------
    /**
     * Process `count` network requests of `bytes_per_req` through
     * skbuff slab buffers: alloc, placement-aware copy, free.
     */
    void netRequestBatch(std::uint64_t count,
                         std::uint64_t bytes_per_req);

    // --- Direct accounting -----------------------------------------
    void chargeCpu(sim::Duration d) { phase_cpu_ += d; }
    void chargeInstructions(std::uint64_t n) { instructions_ += n; }
    void chargeIoWait(sim::Duration d);
    void chargeMemTraffic(mem::MemType tier, std::uint64_t loads,
                          std::uint64_t stores, std::uint64_t bytes,
                          double mlp);

    /** Fraction of region hot-window pages backed by FastMem. */
    double sampleFastFraction(Region &r);

    /** Fast fraction of `count` pages starting at index `start`. */
    double sampleWindowFast(Region &r, std::uint64_t start,
                            std::uint64_t count);

    /**
     * The gpfn currently backing region index `idx`. Migration and
     * demotion change a virtual page's frame behind the region's
     * back; this refreshes the cached gpfn from the page table when
     * it went stale (anon regions are VA-contiguous, so the index
     * maps directly to a virtual address).
     */
    guestos::Gpfn regionPage(Region &r, std::uint64_t idx);

    /** Fraction of disk time hidden by prefetch/async I/O. */
    double io_overlap_ = 0.5;

  private:
    /** Mark a rotating slice of the hot window accessed. */
    void markRegionAccessed(Region &r);

    VmEnv env_;
    std::string name_;
    bool legacy_sampling_ = false;
    sim::Rng rng_;
    guestos::AddressSpace *main_process_ = nullptr;

    bool started_ = false;
    bool done_ = false;
    std::uint64_t phase_idx_ = 0;

    sim::Duration elapsed_ = 0;
    sim::Duration phase_cpu_ = 0;
    sim::Duration phase_mem_ = 0;
    sim::Duration phase_io_ = 0;
    /**
     * What phase_mem_ would have been with every page on the fast
     * tier — the all-fast counterfactual the metrics slowdown
     * estimator divides by. Only accumulated while a metrics
     * collector is active (MemDevice::estimate is pure, so the
     * accounting never perturbs device state).
     */
    sim::Duration phase_mem_ideal_ = 0;
    std::uint64_t instructions_ = 0;

    guestos::SlabCacheId skb_cache_ = 0;
    bool skb_cache_created_ = false;
    std::vector<guestos::SlabObject> skb_pool_;
};

/** Signature for app factories (core's experiment runner uses it). */
using WorkloadFactory =
    std::function<std::unique_ptr<Workload>(VmEnv)>;

} // namespace hos::workload

#endif // HOS_WORKLOAD_WORKLOAD_HH
