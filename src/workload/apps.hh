/**
 * @file
 * The paper's datacenter applications (Table 2) as workload models.
 *
 * Each model reproduces the published characterization of the real
 * application — region mix and footprint (Figure 4), working-set
 * size, memory intensity (Table 4 MPKI), parallelism, and I/O
 * behaviour — rather than its computation:
 *
 *  - GraphChi:  out-of-core PageRank; per-shard load (page cache) +
 *               heap arena compute with frequent allocate/release.
 *  - X-Stream:  edge-centric streaming over mmap'd partitions; page-
 *               cache dominated, bandwidth hungry.
 *  - Metis:     shared-memory map-reduce; one big seldom-released
 *               heap, input read once.
 *  - LevelDB:   SQLite-bench style store; log append (buffer cache),
 *               memtable heap, random reads via the mmap'd table.
 *  - Redis:     key-value serving; skbuff (NetBuf slab) churn plus
 *               zipf-skewed heap value accesses.
 *  - NGinx:     web serving; tiny (<60 MB) hot set, page cache +
 *               skbuffs.
 *
 * All sizes accept a `scale` factor (tests use small scales; benches
 * run at 1.0).
 */

#ifndef HOS_WORKLOAD_APPS_HH
#define HOS_WORKLOAD_APPS_HH

#include <memory>

#include "workload/workload.hh"

namespace hos::workload {

/** The evaluated applications. */
enum class AppId {
    GraphChi,
    XStream,
    Metis,
    LevelDb,
    Redis,
    Nginx,
};

constexpr AppId allApps[] = {AppId::GraphChi, AppId::XStream,
                             AppId::Metis,    AppId::LevelDb,
                             AppId::Redis,    AppId::Nginx};

/** The five apps Figure 9-12 evaluate (NGinx excluded, as in §5.3). */
constexpr AppId placementApps[] = {AppId::GraphChi, AppId::XStream,
                                   AppId::Metis, AppId::LevelDb,
                                   AppId::Redis};

const char *appName(AppId id);

/**
 * Factory for an application model.
 * @param scale shrinks footprints and phase counts (0 < scale <= 1)
 */
WorkloadFactory makeApp(AppId id, double scale = 1.0);

/** Construct directly (ownership to caller). */
std::unique_ptr<Workload> createApp(AppId id, VmEnv env,
                                    double scale = 1.0);

/**
 * Section 5.5 multi-VM presets:
 *  - GraphChi on the Twitter dataset: ~6 GB of live heap with a
 *    1.5 GB active working set;
 *  - Metis on the larger dataset: ~8 GB heap, 5.4 GB working set.
 */
WorkloadFactory makeGraphchiTwitter(double scale = 1.0);
WorkloadFactory makeMetisLarge(double scale = 1.0);

} // namespace hos::workload

#endif // HOS_WORKLOAD_APPS_HH
