/**
 * @file
 * STREAM bandwidth microbenchmark (Figure 7).
 *
 * Triad-style streaming over a heap buffer: very high MLP, zero
 * temporal locality, 2 loads + 1 store per element. Metric: achieved
 * memory bandwidth in GB/s.
 */

#ifndef HOS_WORKLOAD_STREAM_HH
#define HOS_WORKLOAD_STREAM_HH

#include "workload/workload.hh"

namespace hos::workload {

/** STREAM triad bandwidth benchmark. */
class StreamBenchmark final : public Workload
{
  public:
    struct Params
    {
        std::uint64_t wss_bytes = 512 * mem::mib;
        std::uint64_t sweeps = 40; ///< full passes over the buffer
    };

    StreamBenchmark(VmEnv env, Params p);

    /** Achieved bandwidth in GB/s. */
    double bandwidthGbps() const;

  protected:
    void setup() override;
    bool phase(std::uint64_t idx) override;
    double metricValue() const override { return bandwidthGbps(); }
    const char *metricName() const override { return "BW(GB/s)"; }

  private:
    Params p_;
    Region buf_;
    std::uint64_t bytes_moved_ = 0;
};

} // namespace hos::workload

#endif // HOS_WORKLOAD_STREAM_HH
