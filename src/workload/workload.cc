#include "workload/workload.hh"

#include <algorithm>

#include "metrics/metrics.hh"
#include "sim/log.hh"

namespace hos::workload {

namespace {
/** Pages marked accessed per region per phase (hotness ground truth). */
constexpr std::uint64_t markSlice = 2048;
/** Pages sampled per region per phase for the placement estimate. */
constexpr std::uint64_t placementSample = 512;
} // namespace

Workload::Workload(VmEnv env, std::string name)
    : env_(std::move(env)), name_(std::move(name)),
      legacy_sampling_(env_.legacy_placement_sampling),
      rng_(env_.kernel->config().seed ^ 0x3017ull)
{
    hos_assert(env_.kernel && env_.llc && env_.device,
               "workload environment incomplete");
}

Workload::~Workload() = default;

void
Workload::start()
{
    hos_assert(!started_, "workload already started");
    started_ = true;
    main_process_ = &kernel().createProcess(name_);
    kernel().startDaemons();
    setup();
}

bool
Workload::step()
{
    hos_assert(started_ && !done_, "step() outside an active run");

    phase_cpu_ = 0;
    phase_mem_ = 0;
    phase_io_ = 0;
    phase_mem_ideal_ = 0;

    const bool more = phase(phase_idx_);
    ++phase_idx_;

    const sim::Duration overhead = kernel().drainPendingOverhead();
    const sim::Duration t =
        phase_cpu_ + phase_mem_ + phase_io_ + overhead;
    elapsed_ += t;

    // Progress telemetry: actual phase time vs the all-fast ideal
    // (same CPU and I/O, counterfactual memory service, no management
    // overhead). The collector windows these into per-VM slowdown
    // percentiles; check::auditMetrics reconciles the overhead stream
    // against the kernel's accounts.
    if (auto *mx = metrics::active()) {
        mx->onPhase(kernel().vmTag(), elapsed_, t,
                    phase_cpu_ + phase_mem_ideal_ + phase_io_, overhead);
    }

    // Let periodic daemons (epoch rotation, LRU, flusher, trackers)
    // catch up to the new simulated time. Their costs land in the
    // pending-overhead account and are drained next phase.
    kernel().events().runUntil(elapsed_);

    if (env_.report_misses)
        env_.report_misses(env_.llc->totalMisses());

    if (!more)
        done_ = true;
    return more;
}

Workload::Result
Workload::finish()
{
    hos_assert(done_, "finish() before the workload completed");
    Result res;
    res.workload = name_;
    res.elapsed = elapsed_;
    res.phases = phase_idx_;
    res.instructions = instructions_;
    res.llc_misses = env_.llc->totalMisses();
    res.mpki = env_.llc->mpki(instructions_);
    res.metric_name = metricName();
    res.metric = metricValue();
    return res;
}

Workload::Result
Workload::run()
{
    start();
    while (step()) {
    }
    return finish();
}

double
Workload::metricValue() const
{
    return sim::toSeconds(elapsed_);
}

Region
Workload::makeAnonRegion(const std::string &name, std::uint64_t bytes,
                         std::uint64_t wss_bytes, double temporal,
                         double mlp, double write_frac,
                         guestos::MemHint hint)
{
    Region r;
    r.name = name;
    r.type = guestos::PageType::Anon;
    r.temporal = temporal;
    r.mlp = mlp;
    r.write_frac = write_frac;
    r.wss_pages = mem::bytesToPages(wss_bytes);
    r.vma_start = mainProcess().mmap(bytes, guestos::VmaKind::Anon, hint,
                                     guestos::noFile, 0, name);
    r.residency = kernel().residency().registerRegion(
        mainProcess().pid(), r.vma_start);
    return r;
}

void
Workload::growRegion(Region &r, std::uint64_t bytes)
{
    const std::uint64_t npages = mem::bytesToPages(bytes);
    auto &as = mainProcess();
    const guestos::Vma *vma = as.findVma(r.vma_start);
    hos_assert(vma != nullptr, "region VMA vanished");
    for (std::uint64_t i = 0; i < npages; ++i) {
        const std::uint64_t va =
            r.vma_start +
            (static_cast<std::uint64_t>(r.pages.size())) * mem::pageSize;
        if (va >= vma->end())
            break; // VMA full (chunked growth rounds up)
        const guestos::Gpfn pfn = as.touch(va, /*write=*/true);
        if (pfn == guestos::invalidGpfn) {
            if (!r.oom_warned) {
                sim::warn("%s: guest out of memory growing region %s "
                          "(footprint trimmed to fit)",
                          name_.c_str(), r.name.c_str());
                r.oom_warned = true;
            }
            break;
        }
        r.pages.push_back(pfn);
        kernel().residency().appendPage(r.residency, pfn);
    }
}

void
Workload::releaseRegion(Region &r)
{
    if (r.residency != guestos::invalidRegionHandle) {
        kernel().residency().unregisterRegion(r.residency);
        r.residency = guestos::invalidRegionHandle;
    }
    if (r.vma_start != 0)
        mainProcess().munmap(r.vma_start);
    r.pages.clear();
    r.vma_start = 0;
}

guestos::Gpfn
Workload::regionPage(Region &r, std::uint64_t idx)
{
    if (!legacy_sampling_ && r.type == guestos::PageType::Anon &&
        r.residency != guestos::invalidRegionHandle) {
        // The residency index re-points bindings eagerly at every
        // remap, with the same stale-on-unmap semantics as the lazy
        // refresh below — one vector read replaces the descriptor
        // checks and occasional page-table walk.
        const guestos::Gpfn pfn =
            kernel().residency().binding(r.residency, idx);
        r.pages[idx] = pfn;
        return pfn;
    }
    guestos::Gpfn pfn = r.pages[idx];
    if (r.type != guestos::PageType::Anon)
        return pfn;
    const std::uint64_t va = r.vma_start + idx * mem::pageSize;
    const guestos::PageRef p = kernel().pageMeta(pfn);
    if (!p.allocated() || p.vaddr() != va ||
        p.owner_process() != mainProcess().pid()) {
        // Stale: the page was demoted/promoted to a different frame.
        if (auto cur = mainProcess().translate(va)) {
            r.pages[idx] = *cur;
            pfn = *cur;
        }
    }
    return pfn;
}

double
Workload::sampleWindowFast(Region &r, std::uint64_t start,
                           std::uint64_t count)
{
    if (count == 0 || r.pages.empty())
        return 0.0;
    const std::uint64_t size = r.pages.size();
    const std::uint64_t n =
        std::min<std::uint64_t>(placementSample, count);
    std::uint64_t fast = 0;
    if (!legacy_sampling_ && r.type == guestos::PageType::Anon &&
        r.residency != guestos::invalidRegionHandle) {
        auto &res = kernel().residency();
        if (n == count) {
            // Exhaustive window: the even sampling visits exactly
            // the consecutive circular range [start, start+count),
            // which the index answers with masked popcounts.
            fast = res.fastInRange(r.residency, start % size, count);
        } else {
            for (std::uint64_t i = 0; i < n; ++i) {
                const std::uint64_t idx =
                    (start + (i * count) / n) % size;
                fast += res.fastBit(r.residency, idx) ? 1 : 0;
            }
        }
    } else {
        if (n == count) {
            // Exhaustive window: consecutive indices, so the modulo
            // reduces to a conditional wrap.
            std::uint64_t idx = start % size;
            for (std::uint64_t i = 0; i < n; ++i) {
                if (kernel().backingOf(regionPage(r, idx)) ==
                    mem::MemType::FastMem) {
                    ++fast;
                }
                if (++idx == size)
                    idx = 0;
            }
        } else {
            for (std::uint64_t i = 0; i < n; ++i) {
                // Even sampling keeps the estimate deterministic and
                // unbiased w.r.t. migrations. The window is circular
                // over the region (hot sets drift).
                const std::uint64_t idx =
                    (start + (i * count) / n) % size;
                if (kernel().backingOf(regionPage(r, idx)) ==
                    mem::MemType::FastMem) {
                    ++fast;
                }
            }
        }
    }
    return static_cast<double>(fast) / static_cast<double>(n);
}

double
Workload::sampleFastFraction(Region &r)
{
    if (r.pages.empty())
        return 0.0;
    const std::uint64_t hot =
        std::min<std::uint64_t>(r.wss_pages, r.pages.size());
    if (hot == 0)
        return 0.0;
    return sampleWindowFast(r, r.window_start, hot);
}

void
Workload::markRegionAccessed(Region &r)
{
    if (r.pages.empty())
        return;
    const std::uint64_t hot =
        std::min<std::uint64_t>(r.wss_pages, r.pages.size());

    // Hot-set drift: the window slides over the region phase by
    // phase, so pages cold at allocation time later become hot.
    const auto drift = static_cast<std::uint64_t>(
        static_cast<double>(hot) * r.drift_frac);
    if (hot < r.pages.size())
        r.window_start = (r.window_start + drift) % r.pages.size();

    // The hardware access bit. The very hot core (the leading
    // core_frac of the window) is touched every phase; the rest of
    // the window intermittently — this skew is the signal hotness
    // trackers harvest. The software referenced bit is set too, so
    // LRU reclaim sees recently used pages and second-chances them.
    const std::uint64_t core =
        std::min<std::uint64_t>(hot,
                                static_cast<std::uint64_t>(
                                    static_cast<double>(hot) *
                                    r.core_frac));
    // window_start stays < size (it is only ever assigned mod size),
    // so the circular walks below wrap with a compare instead of a
    // per-iteration modulo.
    const std::uint64_t size = r.pages.size();
    std::uint64_t idx = r.window_start;
    for (std::uint64_t i = 0; i < hot; ++i) {
        const bool in_core = i >= hot - core;
        if (in_core || rng_.chance(r.ref_chance)) {
            guestos::PageRef p = kernel().pageMeta(regionPage(r, idx));
            p.setPteAccessed(true);
            p.setReferenced(true);
            p.setLastTouch(elapsed_ + 1);
        }
        if (++idx == size)
            idx = 0;
    }

    // LRU references and leaf-PTE touches are charged on a rotating
    // slice (real kernels see mark_page_accessed() on a subset too).
    const std::uint64_t n = std::min<std::uint64_t>(markSlice, hot);
    auto &as = mainProcess();
    const bool write = rng_.chance(r.write_frac);
    idx = r.window_start + r.mark_cursor;
    if (idx >= size)
        idx -= size; // both terms are < size
    for (std::uint64_t i = 0; i < n; ++i) {
        const guestos::Gpfn pfn = regionPage(r, idx);
        const guestos::PageRef p = kernel().pageMeta(pfn);
        kernel().lruTouch(pfn);
        if (r.type == guestos::PageType::Anon && p.vaddr() != 0)
            as.pageTable().touch(p.vaddr(), write);
        if (++idx == size)
            idx = 0;
    }
    r.mark_cursor = (r.mark_cursor + n) % std::max<std::uint64_t>(1, hot);
}

void
Workload::chargeMemTraffic(mem::MemType tier, std::uint64_t loads,
                           std::uint64_t stores, std::uint64_t bytes,
                           double mlp)
{
    if (loads + stores == 0 && bytes == 0)
        return;
    mem::AccessBatch batch;
    batch.loads = loads;
    batch.stores = stores;
    batch.bytes = bytes;
    batch.mlp = mlp;
    const unsigned sharers = env_.sharers();
    phase_mem_ += env_.device(tier).service(batch, sharers);
    if (metrics::active()) {
        // All-fast counterfactual for the slowdown estimator. For
        // fast-tier batches estimate() equals the service() charge,
        // so ideal == actual whenever placement is already perfect.
        phase_mem_ideal_ +=
            env_.device(mem::MemType::FastMem).estimate(batch, sharers);
    }
}

void
Workload::accessRegion(Region &r, std::uint64_t accesses)
{
    if (accesses == 0 || r.pages.empty())
        return;

    markRegionAccessed(r);

    const std::uint64_t hot =
        std::min<std::uint64_t>(r.wss_pages, r.pages.size());
    mem::RegionLocality loc;
    loc.wss_bytes = hot * mem::pageSize;
    loc.temporal = r.temporal;
    const std::uint64_t misses = llc().access(loc, accesses);
    if (misses == 0)
        return;

    // Skew-aware placement: the hot core draws core_weight of the
    // misses; the rest of the window the remainder. Each part pays
    // its own tier mix. The window is circular (drift).
    const std::uint64_t core =
        std::min<std::uint64_t>(hot,
                                static_cast<std::uint64_t>(
                                    static_cast<double>(hot) *
                                    r.core_frac));
    const double f_core =
        core > 0 ? sampleWindowFast(r, r.window_start + hot - core, core)
                 : 0.0;
    const double f_rest =
        hot > core ? sampleWindowFast(r, r.window_start, hot - core)
                   : f_core;
    const double cw = core > 0 ? r.core_weight : 0.0;
    const double f_fast = cw * f_core + (1.0 - cw) * f_rest;

    const auto m_fast = static_cast<std::uint64_t>(
        static_cast<double>(misses) * f_fast + 0.5);
    const std::uint64_t m_slow = misses - std::min(misses, m_fast);

    auto charge = [&](mem::MemType tier, std::uint64_t m) {
        if (m == 0)
            return;
        const auto stores = static_cast<std::uint64_t>(
            static_cast<double>(m) * r.write_frac);
        const std::uint64_t loads = m - stores;
        // Fetch traffic plus eventual write-back of dirtied lines.
        const std::uint64_t bytes =
            (m + stores) * mem::cacheLineSize;
        chargeMemTraffic(tier, loads, stores, bytes, r.mlp);
    };
    charge(mem::MemType::FastMem, m_fast);
    charge(mem::MemType::SlowMem, m_slow);
}

void
Workload::accessPages(const std::vector<guestos::Gpfn> &pages,
                      std::uint64_t accesses, double temporal, double mlp,
                      double write_frac)
{
    if (accesses == 0 || pages.empty())
        return;

    // Mark the pages accessed/referenced (hotness + LRU ground truth)
    // and count placements in the same pass.
    std::uint64_t fast = 0;
    std::uint64_t lru_budget = markSlice;
    for (guestos::Gpfn pfn : pages) {
        guestos::PageRef p = kernel().pageMeta(pfn);
        p.setPteAccessed(true);
        p.setReferenced(true);
        p.setLastTouch(elapsed_ + 1);
        if (lru_budget > 0 && p.lru() != guestos::LruState::None) {
            kernel().lruTouch(pfn);
            --lru_budget;
        }
        if (kernel().backingOf(pfn) == mem::MemType::FastMem)
            ++fast;
    }

    mem::RegionLocality loc;
    loc.wss_bytes = pages.size() * mem::pageSize;
    loc.temporal = temporal;
    const std::uint64_t misses = llc().access(loc, accesses);
    if (misses == 0)
        return;

    const double f_fast =
        static_cast<double>(fast) / static_cast<double>(pages.size());
    const auto m_fast = static_cast<std::uint64_t>(
        static_cast<double>(misses) * f_fast + 0.5);
    const std::uint64_t m_slow = misses - std::min(misses, m_fast);
    auto charge = [&](mem::MemType tier, std::uint64_t m) {
        if (m == 0)
            return;
        const auto stores = static_cast<std::uint64_t>(
            static_cast<double>(m) * write_frac);
        chargeMemTraffic(tier, m - stores, stores,
                         (m + stores) * mem::cacheLineSize, mlp);
    };
    charge(mem::MemType::FastMem, m_fast);
    charge(mem::MemType::SlowMem, m_slow);
}

guestos::FileId
Workload::makeFile(std::uint64_t bytes)
{
    return kernel().pageCache().createFile(bytes);
}

void
Workload::chargeIoWait(sim::Duration d)
{
    phase_io_ += static_cast<sim::Duration>(
        static_cast<double>(d) * (1.0 - io_overlap_));
}

std::vector<guestos::Gpfn>
Workload::ioRead(guestos::FileId f, std::uint64_t offset,
                 std::uint64_t len)
{
    auto res = kernel().pageCache().read(f, offset, len);
    chargeIoWait(res.disk_time);
    ioAccessPages(res.pages, /*write=*/false);
    return std::move(res.pages);
}

void
Workload::ioWrite(guestos::FileId f, std::uint64_t offset,
                  std::uint64_t len)
{
    auto res = kernel().pageCache().write(f, offset, len);
    chargeIoWait(res.disk_time);
    ioAccessPages(res.pages, /*write=*/true);
}

void
Workload::ioAccessPages(const std::vector<guestos::Gpfn> &pages,
                        bool write)
{
    if (pages.empty())
        return;
    // Copy between the cache pages and user buffers: the cache side's
    // tier decides the cost. Streaming copies have high MLP and touch
    // every line of the page.
    std::uint64_t fast = 0;
    for (guestos::Gpfn pfn : pages) {
        if (kernel().backingOf(pfn) == mem::MemType::FastMem)
            ++fast;
    }
    const std::uint64_t lines_per_page =
        mem::pageSize / mem::cacheLineSize;
    auto charge = [&](mem::MemType tier, std::uint64_t n) {
        if (n == 0)
            return;
        const std::uint64_t lines = n * lines_per_page;
        chargeMemTraffic(tier, write ? 0 : lines, write ? lines : 0,
                         n * mem::pageSize, /*mlp=*/8.0);
    };
    charge(mem::MemType::FastMem, fast);
    charge(mem::MemType::SlowMem, pages.size() - fast);
}

void
Workload::netRequestBatch(std::uint64_t count, std::uint64_t bytes_per_req)
{
    if (count == 0)
        return;
    auto &slab = kernel().slab();
    if (!skb_cache_created_) {
        skb_cache_ = slab.createCache("skbuff", 2048,
                                      guestos::PageType::NetBuf);
        skb_cache_created_ = true;
    }

    // A warm pool of live skbuffs persists across batches (real
    // stacks keep the slab caches warm); a quarter of the pool still
    // churns through alloc/free every batch, which is what keeps
    // NetBuf pages allocation-active for placement purposes.
    const std::uint64_t live = std::min<std::uint64_t>(count, 4096);
    const std::uint64_t churn = skb_pool_.empty() ? live : live / 4;
    for (std::uint64_t i = 0; i < churn && !skb_pool_.empty(); ++i) {
        slab.free(skb_cache_, skb_pool_.back());
        skb_pool_.pop_back();
    }
    while (skb_pool_.size() < live) {
        auto obj = slab.alloc(skb_cache_);
        if (!obj.valid())
            break;
        skb_pool_.push_back(obj);
    }

    std::uint64_t fast_pages = 0, slow_pages = 0;
    for (const auto &obj : skb_pool_) {
        if (kernel().backingOf(obj.pfn) == mem::MemType::FastMem)
            ++fast_pages;
        else
            ++slow_pages;
    }

    // Copy traffic: every request moves bytes_per_req through an
    // skbuff; scale the sampled tier mix up to the full count.
    const double total = static_cast<double>(fast_pages + slow_pages);
    if (total > 0) {
        const double f_fast = static_cast<double>(fast_pages) / total;
        const std::uint64_t bytes = count * bytes_per_req;
        const std::uint64_t lines = bytes / mem::cacheLineSize;
        const auto b_fast =
            static_cast<std::uint64_t>(static_cast<double>(bytes) * f_fast);
        const auto l_fast = static_cast<std::uint64_t>(
            static_cast<double>(lines) * f_fast);
        chargeMemTraffic(mem::MemType::FastMem, l_fast / 2, l_fast / 2,
                         b_fast, 6.0);
        chargeMemTraffic(mem::MemType::SlowMem, (lines - l_fast) / 2,
                         (lines - l_fast) / 2, bytes - b_fast, 6.0);
    }

}

} // namespace hos::workload
