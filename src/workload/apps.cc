#include "workload/apps.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace hos::workload {

namespace {

std::uint64_t
scaled(double scale, std::uint64_t v)
{
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(static_cast<double>(v) * scale));
}

/**
 * GraphChi: PageRank over the Orkut graph (8M nodes, 500M edges).
 * Out-of-core: each iteration loads shards through the page cache,
 * builds a heap arena for the subgraph, computes, and releases the
 * arena — the frequent allocate/release pattern Section 5.3 credits
 * for its on-demand allocation wins. Memory-intensive (MPKI 27.4),
 * bandwidth-sensitive (16 threads of batched edge processing).
 */
class GraphChiApp final : public Workload
{
  public:
    /** Orkut (default) or the larger Twitter dataset (Section 5.5). */
    enum class Preset { Orkut, Twitter };

    GraphChiApp(VmEnv env, double scale, Preset preset = Preset::Orkut)
        : Workload(std::move(env), "GraphChi"), scale_(scale),
          preset_(preset)
    {
        io_overlap_ = 0.7; // sequential shard loads prefetch well
    }

  protected:
    void
    setup() override
    {
        const bool twitter = preset_ == Preset::Twitter;
        graph_file_ = makeFile(
            scaled(scale_, (twitter ? 10 : 6) * mem::gib));
        // Persistent vertex/edge state. The Twitter preset carries
        // ~6 GB of live heap but an active working set of 1.5 GB.
        const std::uint64_t heap =
            scaled(scale_, (twitter ? 6144 : 1536) * mem::mib);
        const std::uint64_t wss =
            scaled(scale_, (twitter ? 1536 : 1024) * mem::mib);
        vertices_ = makeAnonRegion("vertices", heap, wss,
                                   /*temporal=*/0.35, /*mlp=*/14.0,
                                   /*write_frac=*/0.45);
        // Vertex state is touched far less intensely per page than
        // the shard arenas (141 vs ~730 references per page/phase).
        vertices_.ref_chance = 0.22;
        growRegion(vertices_, heap);
        iters_ = std::max<std::uint64_t>(2, scaled(scale_, 24));
        shards_ = 4;
    }

    bool
    phase(std::uint64_t idx) override
    {
        const std::uint64_t shard = idx % shards_;
        const std::uint64_t shard_bytes = scaled(scale_, 44 * mem::mib);

        // Load this shard's edges through the page cache and
        // compute over the mmap'd pages (the cache IS the edge
        // working set; its placement matters as much as the heap's).
        auto shard_pages =
            ioRead(graph_file_, shard * shard_bytes * 8 +
                                    (idx / shards_ % 8) * shard_bytes,
                   shard_bytes);
        accessPages(shard_pages, scaled(scale_, 9'000'000),
                    /*temporal=*/0.15, /*mlp=*/16.0,
                    /*write_frac=*/0.05);

        // Build the in-memory subgraph (fresh arena every shard).
        Region arena = makeAnonRegion(
            "shard-arena", scaled(scale_, 160 * mem::mib),
            scaled(scale_, 160 * mem::mib), /*temporal=*/0.25,
            /*mlp=*/16.0, /*write_frac=*/0.35);
        arena.ref_chance = 0.85; // every arena page is hammered
        growRegion(arena, scaled(scale_, 160 * mem::mib));

        // Edge-centric update: hammer the arena and the vertex state.
        accessRegion(arena, scaled(scale_, 30'000'000));
        accessRegion(vertices_, scaled(scale_, 11'000'000));
        chargeInstructions(scaled(scale_, 1'500'000'000));
        chargeCpu(sim::milliseconds(scaled(scale_, 115)));

        // Release the arena: pages churn back to the allocator.
        releaseRegion(arena);

        return idx + 1 < iters_ * shards_;
    }

  private:
    double scale_;
    Preset preset_;
    guestos::FileId graph_file_ = guestos::noFile;
    Region vertices_;
    std::uint64_t iters_ = 0;
    std::uint64_t shards_ = 0;
};

/**
 * X-Stream: edge-centric graph processing over streaming partitions.
 * Computes over memory-mapped I/O data: the page cache IS the working
 * set (Figure 4: I/O cache dominates), with high streaming bandwidth
 * demand (MPKI 24.8) and an update file rewritten every iteration.
 */
class XStreamApp final : public Workload
{
  public:
    XStreamApp(VmEnv env, double scale)
        : Workload(std::move(env), "X-Stream"), scale_(scale)
    {
        io_overlap_ = 0.9;
    }

  protected:
    void
    setup() override
    {
        edges_ = makeFile(scaled(scale_, 6656 * mem::mib));
        updates_ = makeFile(scaled(scale_, 2 * mem::gib));
        state_ = makeAnonRegion("vertex-state",
                                scaled(scale_, 1024 * mem::mib),
                                scaled(scale_, 1024 * mem::mib),
                                /*temporal=*/0.30, /*mlp=*/14.0,
                                /*write_frac=*/0.4);
        growRegion(state_, scaled(scale_, 640 * mem::mib));
        iters_ = std::max<std::uint64_t>(2, scaled(scale_, 14));
        chunks_ = 12;
    }

    bool
    phase(std::uint64_t idx) override
    {
        const std::uint64_t chunk = idx % chunks_;
        const std::uint64_t chunk_bytes =
            scaled(scale_, 6656 * mem::mib) / chunks_;

        // Stream one edge partition (mmap'd: compute reads the cache
        // pages directly — their placement is the whole ballgame).
        auto chunk_pages = ioRead(edges_, chunk * chunk_bytes,
                                  chunk_bytes);
        accessPages(chunk_pages, scaled(scale_, 16'000'000),
                    /*temporal=*/0.12, /*mlp=*/16.0,
                    /*write_frac=*/0.08);

        // Scatter updates to the update file (dirty cache pages).
        ioWrite(updates_,
                chunk * (scaled(scale_, 2 * mem::gib) / chunks_),
                scaled(scale_, 2 * mem::gib) / chunks_ / 2);

        accessRegion(state_, scaled(scale_, 9'000'000));
        chargeInstructions(scaled(scale_, 1'300'000'000));
        chargeCpu(sim::milliseconds(scaled(scale_, 55)));

        return idx + 1 < iters_ * chunks_;
    }

  private:
    double scale_;
    guestos::FileId edges_ = guestos::noFile;
    guestos::FileId updates_ = guestos::noFile;
    Region state_;
    std::uint64_t iters_ = 0;
    std::uint64_t chunks_ = 0;
};

/**
 * Metis: shared-memory map-reduce (Phoenix-optimized) on a 4 GB
 * dataset with 8 mapper-reducer threads. One large heap grown during
 * the map phase and *seldom released* (Section 5.3), 5.4 GB working
 * set, moderate memory intensity (MPKI 14.9).
 */
class MetisApp final : public Workload
{
  public:
    /** Crime dataset (default) or the larger Section 5.5 dataset. */
    enum class Preset { Crime, Large };

    MetisApp(VmEnv env, double scale, Preset preset = Preset::Crime)
        : Workload(std::move(env), "Metis"), scale_(scale),
          preset_(preset)
    {
        io_overlap_ = 0.6;
    }

  protected:
    void
    setup() override
    {
        heap_bytes_ = scaled(
            scale_,
            (preset_ == Preset::Large ? std::uint64_t(8)
                                      : std::uint64_t(7)) * mem::gib);
        input_ = makeFile(scaled(scale_, 4 * mem::gib));
        heap_ = makeAnonRegion("mr-heap", heap_bytes_,
                               scaled(scale_, 5400 * mem::mib),
                               /*temporal=*/0.35, /*mlp=*/10.0,
                               /*write_frac=*/0.4);
        phases_ = std::max<std::uint64_t>(4, scaled(scale_, 80));
    }

    bool
    phase(std::uint64_t idx) override
    {
        const std::uint64_t grow_phases = phases_ / 2;
        if (idx < grow_phases) {
            // Map: read input, emit intermediate pairs into the heap.
            ioRead(input_, idx * (scaled(scale_, 4 * mem::gib) /
                                  grow_phases),
                   scaled(scale_, 4 * mem::gib) / grow_phases);
            growRegion(heap_, heap_bytes_ / grow_phases);
        }
        accessRegion(heap_, scaled(scale_, 34'000'000));
        chargeInstructions(scaled(scale_, 1'900'000'000));
        chargeCpu(sim::milliseconds(scaled(scale_, 200)));
        return idx + 1 < phases_;
    }

  private:
    double scale_;
    Preset preset_;
    std::uint64_t heap_bytes_ = 0;
    guestos::FileId input_ = guestos::noFile;
    Region heap_;
    std::uint64_t phases_ = 0;
};

/**
 * LevelDB: Google's LSM store driven SQLite-bench style with 1M keys.
 * Storage-intensive with a small working set (MPKI 4.7): log appends
 * through the buffer cache, a memtable heap, and random reads through
 * the memory-mapped table files. Metric: throughput in MB/s.
 */
class LevelDbApp final : public Workload
{
  public:
    LevelDbApp(VmEnv env, double scale)
        : Workload(std::move(env), "LevelDB"), scale_(scale)
    {
        io_overlap_ = 0.35; // random reads expose latency
    }

  protected:
    void
    setup() override
    {
        db_ = makeFile(scaled(scale_, 2 * mem::gib));
        log_ = makeFile(scaled(scale_, 512 * mem::mib));
        memtable_ = makeAnonRegion("memtable",
                                   scaled(scale_, 256 * mem::mib),
                                   scaled(scale_, 256 * mem::mib),
                                   /*temporal=*/0.55, /*mlp=*/3.0,
                                   /*write_frac=*/0.5);
        growRegion(memtable_, scaled(scale_, 256 * mem::mib));
        metadata_ = kernel().slab().createCache("leveldb-meta", 256);
        phases_ = std::max<std::uint64_t>(4, scaled(scale_, 120));
        hot_db_bytes_ = scaled(scale_, 600 * mem::mib);
    }

    bool
    phase(std::uint64_t idx) override
    {
        const std::uint64_t ops = scaled(scale_, 9000);
        const std::uint64_t value = 1100; // ~1.1 KB per record

        // Write path: log append (sequential, buffered).
        ioWrite(log_, (idx * ops * value) %
                          scaled(scale_, 512 * mem::mib),
                ops * value / 2);

        // Memtable updates.
        accessRegion(memtable_, scaled(scale_, 2'500'000));

        // Read path: random gets over the hot span of the mmap'd
        // table files — page-cache residency and *placement* decide
        // the latency.
        for (int i = 0; i < 24; ++i) {
            const std::uint64_t off =
                rng().zipf(hot_db_bytes_ / (32 * mem::kib), 0.9) *
                (32 * mem::kib);
            ioRead(db_, off, 32 * mem::kib);
        }

        // Filesystem metadata (dentries/inodes) via the slab.
        for (int i = 0; i < 64; ++i) {
            auto obj = kernel().slab().alloc(metadata_);
            if (obj.valid())
                meta_objs_.push_back(obj);
        }
        while (meta_objs_.size() > 4096) {
            kernel().slab().free(metadata_, meta_objs_.back());
            meta_objs_.pop_back();
        }

        bytes_processed_ += ops * value;
        chargeInstructions(scaled(scale_, 220'000'000));
        chargeCpu(sim::milliseconds(scaled(scale_, 45)));
        return idx + 1 < phases_;
    }

    double
    metricValue() const override
    {
        return static_cast<double>(bytes_processed_) /
               static_cast<double>(mem::mib) /
               std::max(1e-9, sim::toSeconds(elapsed()));
    }

    const char *
    metricName() const override
    {
        return "throughput(MB/s)";
    }

  private:
    double scale_;
    guestos::FileId db_ = guestos::noFile;
    guestos::FileId log_ = guestos::noFile;
    Region memtable_;
    guestos::SlabCacheId metadata_ = 0;
    std::vector<guestos::SlabObject> meta_objs_;
    std::uint64_t phases_ = 0;
    std::uint64_t hot_db_bytes_ = 0;
    std::uint64_t bytes_processed_ = 0;
};

/**
 * Redis: in-memory key-value store under redis-benchmark, 4M ops at
 * 80% GET. Network-intensive: every request cycles skbuff slab
 * buffers (Figure 4's NW-buff share), while values live in a
 * zipf-hot heap (MPKI 11.1). Metric: requests/second.
 */
class RedisApp final : public Workload
{
  public:
    RedisApp(VmEnv env, double scale)
        : Workload(std::move(env), "Redis"), scale_(scale)
    {
        io_overlap_ = 0.5;
    }

  protected:
    void
    setup() override
    {
        values_ = makeAnonRegion("values",
                                 scaled(scale_, 2560 * mem::mib),
                                 scaled(scale_, 800 * mem::mib),
                                 /*temporal=*/0.45, /*mlp=*/3.0,
                                 /*write_frac=*/0.25);
        values_.drift_frac = 0.003; // zipf-hot keys are fairly stable
        growRegion(values_, scaled(scale_, 2560 * mem::mib));
        phases_ = std::max<std::uint64_t>(4, scaled(scale_, 200));
        ops_per_phase_ = scaled(scale_, 20'000);
    }

    bool
    phase(std::uint64_t idx) override
    {
        // Request/response traffic through skbuffs.
        netRequestBatch(ops_per_phase_, 1024);
        // Value accesses (80% GET => read-mostly).
        accessRegion(values_, scaled(scale_, 5'500'000));
        ops_done_ += ops_per_phase_;
        chargeInstructions(scaled(scale_, 500'000'000));
        chargeCpu(sim::milliseconds(scaled(scale_, 95)));
        return idx + 1 < phases_;
    }

    double
    metricValue() const override
    {
        return static_cast<double>(ops_done_) /
               std::max(1e-9, sim::toSeconds(elapsed()));
    }

    const char *
    metricName() const override
    {
        return "requests/sec";
    }

  private:
    double scale_;
    Region values_;
    std::uint64_t phases_ = 0;
    std::uint64_t ops_per_phase_ = 0;
    std::uint64_t ops_done_ = 0;
};

/**
 * NGinx: static/dynamic web serving over 1M pages of content, with a
 * <60 MB active working set (Section 2.2) — hence barely sensitive
 * to memory heterogeneity (MPKI 2.1, <10% impact even at L:5,B:9).
 * Metric: requests/second.
 */
class NginxApp final : public Workload
{
  public:
    NginxApp(VmEnv env, double scale)
        : Workload(std::move(env), "NGinx"), scale_(scale)
    {
        io_overlap_ = 0.6;
    }

  protected:
    void
    setup() override
    {
        content_ = makeFile(scaled(scale_, 4 * mem::gib));
        heap_ = makeAnonRegion("workers", scaled(scale_, 80 * mem::mib),
                               scaled(scale_, 40 * mem::mib),
                               /*temporal=*/0.9, /*mlp=*/2.0,
                               /*write_frac=*/0.3);
        growRegion(heap_, scaled(scale_, 80 * mem::mib));
        phases_ = std::max<std::uint64_t>(4, scaled(scale_, 100));
        hot_bytes_ = scaled(scale_, 56 * mem::mib);
    }

    bool
    phase(std::uint64_t idx) override
    {
        const std::uint64_t reqs = scaled(scale_, 30'000);
        netRequestBatch(reqs, 1400);
        // Hot content served from the page cache (tiny, zipf-hot).
        for (int i = 0; i < 16; ++i) {
            const std::uint64_t off =
                rng().zipf(hot_bytes_ / (16 * mem::kib), 1.0) *
                (16 * mem::kib);
            ioRead(content_, off, 16 * mem::kib);
        }
        accessRegion(heap_, scaled(scale_, 1'200'000));
        reqs_done_ += reqs;
        chargeInstructions(scaled(scale_, 900'000'000));
        chargeCpu(sim::milliseconds(scaled(scale_, 210)));
        return idx + 1 < phases_;
    }

    double
    metricValue() const override
    {
        return static_cast<double>(reqs_done_) /
               std::max(1e-9, sim::toSeconds(elapsed()));
    }

    const char *
    metricName() const override
    {
        return "requests/sec";
    }

  private:
    double scale_;
    guestos::FileId content_ = guestos::noFile;
    Region heap_;
    std::uint64_t phases_ = 0;
    std::uint64_t hot_bytes_ = 0;
    std::uint64_t reqs_done_ = 0;
};

} // namespace

const char *
appName(AppId id)
{
    switch (id) {
      case AppId::GraphChi:
        return "Graphchi";
      case AppId::XStream:
        return "X-Stream";
      case AppId::Metis:
        return "Metis";
      case AppId::LevelDb:
        return "LevelDB";
      case AppId::Redis:
        return "Redis";
      case AppId::Nginx:
        return "Nginx";
    }
    return "?";
}

std::unique_ptr<Workload>
createApp(AppId id, VmEnv env, double scale)
{
    switch (id) {
      case AppId::GraphChi:
        return std::make_unique<GraphChiApp>(std::move(env), scale);
      case AppId::XStream:
        return std::make_unique<XStreamApp>(std::move(env), scale);
      case AppId::Metis:
        return std::make_unique<MetisApp>(std::move(env), scale);
      case AppId::LevelDb:
        return std::make_unique<LevelDbApp>(std::move(env), scale);
      case AppId::Redis:
        return std::make_unique<RedisApp>(std::move(env), scale);
      case AppId::Nginx:
        return std::make_unique<NginxApp>(std::move(env), scale);
    }
    sim::panic("unknown app id");
}

WorkloadFactory
makeApp(AppId id, double scale)
{
    return [id, scale](VmEnv env) {
        return createApp(id, std::move(env), scale);
    };
}

WorkloadFactory
makeGraphchiTwitter(double scale)
{
    return [scale](VmEnv env) -> std::unique_ptr<Workload> {
        return std::make_unique<GraphChiApp>(
            std::move(env), scale, GraphChiApp::Preset::Twitter);
    };
}

WorkloadFactory
makeMetisLarge(double scale)
{
    return [scale](VmEnv env) -> std::unique_ptr<Workload> {
        return std::make_unique<MetisApp>(std::move(env), scale,
                                          MetisApp::Preset::Large);
    };
}

} // namespace hos::workload
