/**
 * @file
 * 'memlat' pointer-chase latency microbenchmark (Figure 6).
 *
 * A single dependent-load chain over a heap buffer of configurable
 * working-set size: MLP of 1, no temporal locality, so every LLC miss
 * pays the full backing-tier latency. The metric is the average
 * access latency in CPU cycles (2.67 GHz, as the paper's testbed).
 */

#ifndef HOS_WORKLOAD_MEMLAT_HH
#define HOS_WORKLOAD_MEMLAT_HH

#include "workload/workload.hh"

namespace hos::workload {

/** Pointer-chase latency benchmark. */
class MemlatBenchmark final : public Workload
{
  public:
    struct Params
    {
        std::uint64_t wss_bytes = 512 * mem::mib;
        std::uint64_t accesses_per_phase = 2'000'000;
        std::uint64_t phases = 40;
    };

    MemlatBenchmark(VmEnv env, Params p);

    /** Average access latency in cycles at 2.67 GHz. */
    double avgLatencyCycles() const;

  protected:
    void setup() override;
    bool phase(std::uint64_t idx) override;
    double metricValue() const override { return avgLatencyCycles(); }
    const char *metricName() const override { return "latency(cycles)"; }

  private:
    Params p_;
    Region buf_;
    std::uint64_t accesses_done_ = 0;
};

} // namespace hos::workload

#endif // HOS_WORKLOAD_MEMLAT_HH
