#include "workload/stream.hh"

#include <algorithm>

namespace hos::workload {

StreamBenchmark::StreamBenchmark(VmEnv env, Params p)
    : Workload(std::move(env), "stream"), p_(p)
{
    io_overlap_ = 0.0;
}

void
StreamBenchmark::setup()
{
    buf_ = makeAnonRegion("triad-buffer", p_.wss_bytes, p_.wss_bytes,
                          /*temporal=*/0.0, /*mlp=*/24.0,
                          /*write_frac=*/0.34);
    growRegion(buf_, p_.wss_bytes);
}

bool
StreamBenchmark::phase(std::uint64_t idx)
{
    // One sweep touches every line of the buffer (2 loads + 1 store
    // per element => bytes ~ 3 * wss per pass, modelled as accesses).
    const std::uint64_t accesses =
        p_.wss_bytes / mem::cacheLineSize * 3 / 2;
    accessRegion(buf_, accesses);
    bytes_moved_ += p_.wss_bytes * 3;
    chargeInstructions(accesses * 3);
    return idx + 1 < p_.sweeps;
}

double
StreamBenchmark::bandwidthGbps()const
{
    if (elapsed() == 0)
        return 0.0;
    return static_cast<double>(bytes_moved_) /
           static_cast<double>(elapsed());
}

} // namespace hos::workload
