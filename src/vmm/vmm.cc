#include "vmm/vmm.hh"

#include <algorithm>

#include "sim/log.hh"
#include "trace/trace.hh"

namespace hos::vmm {

namespace {

/** Default policy: first come, first served from the free pool. */
class FreePoolPolicy final : public FairnessPolicy
{
  public:
    const char *name() const override { return "free-pool"; }

    std::uint64_t
    approve(Vmm &vmm, VmContext &requester, mem::MemType t,
            std::uint64_t n) override
    {
        (void)requester;
        return std::min(n, vmm.freeFrames(t));
    }
};

} // namespace

VmContext::VmContext(VmId id, mem::OwnerId owner,
                     guestos::GuestKernel &kernel, VmConfig cfg)
    : id_(id), owner_(owner), kernel_(kernel), cfg_(std::move(cfg)),
      p2m_(kernel.pages().size())
{
}

std::uint64_t
VmContext::minPages(mem::MemType t) const
{
    for (const auto &r : cfg_.reservations) {
        if (r.type == t)
            return r.min_pages;
    }
    return 0;
}

std::uint64_t
VmContext::maxPages(mem::MemType t) const
{
    for (const auto &r : cfg_.reservations) {
        if (r.type == t)
            return r.max_pages;
    }
    return 0;
}

double
VmContext::weight(mem::MemType t) const
{
    for (const auto &r : cfg_.reservations) {
        if (r.type == t)
            return r.weight;
    }
    return 1.0;
}

Vmm::Vmm(mem::MachineMemory &machine)
    : machine_(machine), fairness_(std::make_unique<FreePoolPolicy>())
{
}

Vmm::~Vmm() = default;

VmId
Vmm::registerVm(guestos::GuestKernel &kernel, VmConfig cfg)
{
    const auto id = static_cast<VmId>(vms_.size());
    const auto owner =
        static_cast<mem::OwnerId>(mem::firstVmOwner + id);

    // Default the reservation contract from the guest's boot config
    // when the caller didn't spell one out.
    if (cfg.reservations.empty()) {
        if (cfg.hide_heterogeneity) {
            // The guest's node types are nominal; allow backing from
            // any tier in the backing order, up to the guest's size.
            std::uint64_t total = 0;
            for (const auto &nc : kernel.config().nodes)
                total += mem::bytesToPages(nc.max_bytes);
            for (mem::MemType t : cfg.backing_order) {
                MemReservation r;
                r.type = t;
                r.min_pages = 0;
                r.max_pages = total;
                r.weight = t == mem::MemType::FastMem ? 2.0 : 1.0;
                cfg.reservations.push_back(r);
            }
        } else {
            for (const auto &nc : kernel.config().nodes) {
                MemReservation r;
                r.type = nc.type;
                r.min_pages = mem::bytesToPages(nc.initial_bytes);
                r.max_pages = mem::bytesToPages(nc.max_bytes);
                r.weight = nc.type == mem::MemType::FastMem ? 2.0 : 1.0;
                cfg.reservations.push_back(r);
            }
        }
    }

    vms_.push_back(
        std::make_unique<VmContext>(id, owner, kernel, std::move(cfg)));
    adapters_.push_back(std::make_unique<BalloonAdapter>(*this, id));
    kernel.balloon().attachBackend(adapters_.back().get());

    // Boot: populate each guest node to its initial reservation.
    for (unsigned nid = 0; nid < kernel.numNodes(); ++nid) {
        const auto &nc = kernel.config().nodes[nid];
        const std::uint64_t initial = mem::bytesToPages(nc.initial_bytes);
        if (initial > 0)
            kernel.balloon().bootPopulate(nid, initial);
    }
    return id;
}

VmContext &
Vmm::vm(VmId id)
{
    hos_assert(id < vms_.size(), "bad VM id");
    return *vms_[id];
}

void
Vmm::setFairness(std::unique_ptr<FairnessPolicy> policy)
{
    hos_assert(policy != nullptr, "null fairness policy");
    fairness_ = std::move(policy);
}

mem::MemType
Vmm::backingTier(const VmContext &vm, unsigned guest_node) const
{
    if (!vm.cfg_.hide_heterogeneity) {
        // Heterogeneity-aware guest: node identity IS the tier.
        return vm.kernel_.config().nodes.at(guest_node).type;
    }
    // Hidden: first tier in the backing order with free frames.
    for (mem::MemType t : vm.cfg_.backing_order) {
        if (machine_.hasType(t) && freeFrames(t) > 0)
            return t;
    }
    return vm.cfg_.backing_order.front();
}

std::uint64_t
Vmm::populatePages(VmContext &vm, unsigned guest_node,
                   const guestos::UnpopulatedView &gpfns)
{
    if (gpfns.empty())
        return 0;

    std::uint64_t granted_total = 0;
    std::uint64_t idx = 0;

    // Hidden VMs may need to split a request across tiers as one runs
    // out; visible VMs resolve to a single tier.
    while (idx < gpfns.size()) {
        const mem::MemType tier = backingTier(vm, guest_node);
        const std::uint64_t want = gpfns.size() - idx;

        // Contract ceiling for this tier.
        const std::uint64_t have = vm.framesOf(tier);
        const std::uint64_t cap = vm.maxPages(tier);
        const std::uint64_t headroom = cap > have ? cap - have : 0;
        std::uint64_t ask = std::min(want, headroom);
        if (ask == 0)
            break;

        const std::uint64_t approved =
            fairness_->approve(*this, vm, tier, ask);
        if (approved == 0)
            break;

        mem::MachineNode &node = machine_.nodeByType(tier);
        auto frames = node.allocFrames(vm.owner(), approved);
        if (frames.empty())
            break;
        for (mem::Mfn mfn : frames) {
            // Populate, not a retarget: the guest rings xray via
            // onAlloc when it hands the frame out, and the recorder
            // skips frames it is not tracking.
            // hos-analyze: tier-xray (populate; guest onAlloc rings)
            vm.p2m_.set(gpfns[idx], mfn, tier);
            if (tier == mem::MemType::FastMem)
                vm.fast_backed_.insert(gpfns[idx]);
            ++idx;
            ++granted_total;
        }
        if (frames.size() < approved)
            break; // tier genuinely drained mid-request
    }
    trace::emit(trace::EventType::HypercallPopulate,
                vm.kernel_.events().now(), guest_node, gpfns.size(),
                granted_total, 0, static_cast<std::uint16_t>(vm.id()));
    return granted_total;
}

void
Vmm::unpopulatePages(VmContext &vm, unsigned guest_node,
                     const std::vector<Gpfn> &gpfns)
{
    for (Gpfn gpfn : gpfns) {
        hos_assert(vm.p2m_.populated(gpfn),
                   "unpopulating an unbacked gpfn");
        const mem::Mfn mfn = vm.p2m_.mfnOf(gpfn);
        machine_.nodeOfMfn(mfn).freeFrame(mfn);
        if (vm.p2m_.tierOf(gpfn) == mem::MemType::FastMem)
            vm.fast_backed_.erase(gpfn);
        // Unpopulate, not a retarget: the guest rang xray via onFree
        // before releasing the frame.
        // hos-analyze: tier-xray (unpopulate; guest onFree rang)
        vm.p2m_.clear(gpfn);
    }
    trace::emit(trace::EventType::HypercallUnpopulate,
                vm.kernel_.events().now(), guest_node, gpfns.size(), 0,
                0, static_cast<std::uint16_t>(vm.id()));
}

std::vector<mem::Mfn>
Vmm::allocFrames(VmContext &vm, mem::MemType t, std::uint64_t n)
{
    return machine_.nodeByType(t).allocFrames(vm.owner(), n);
}

std::uint64_t
Vmm::totalFrames(mem::MemType t) const
{
    if (!machine_.hasType(t))
        return 0;
    return machine_.nodeByType(t).totalFrames();
}

std::uint64_t
Vmm::freeFrames(mem::MemType t) const
{
    if (!machine_.hasType(t))
        return 0;
    return machine_.nodeByType(t).freeFrames();
}

std::uint64_t
Vmm::usedFrames(mem::MemType t) const
{
    return totalFrames(t) - freeFrames(t);
}

void
Vmm::syncStats()
{
    for (std::size_t i = 0; i < mem::numMemTypes; ++i) {
        const auto t = static_cast<mem::MemType>(i);
        if (!machine_.hasType(t))
            continue;
        const std::string tier = mem::memTypeName(t);
        stats_.gauge(tier + ".total_frames").set(
            static_cast<std::int64_t>(totalFrames(t)));
        stats_.gauge(tier + ".used_frames").set(
            static_cast<std::int64_t>(usedFrames(t)));
        stats_.gauge(tier + ".free_frames").set(
            static_cast<std::int64_t>(freeFrames(t)));
    }
    for (const auto &vm : vms_) {
        const std::string prefix =
            "vm" + std::to_string(vm->id());
        stats_.gauge(prefix + ".fast_backed").set(
            static_cast<std::int64_t>(vm->fast_backed_.size()));
        stats_.gauge(prefix + ".populated").set(
            static_cast<std::int64_t>(vm->p2m_.populatedCount()));
    }
}

} // namespace hos::vmm
