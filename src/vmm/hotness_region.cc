#include "vmm/hotness_region.hh"

#include <algorithm>
#include <cmath>

#include "prof/prof.hh"
#include "sim/log.hh"

namespace hos::vmm {

namespace {

/** Base seed for per-VM probe streams (mixed with the VM id). */
constexpr std::uint64_t regionSeedBase = 0xDA30u;

bool
sameRanges(const std::vector<TrackingRange> &a,
           const std::vector<TrackingRange> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].pid != b[i].pid || a[i].va_lo != b[i].va_lo ||
            a[i].va_hi != b[i].va_hi) {
            return false;
        }
    }
    return true;
}

} // namespace

RegionTracker::RegionTracker(VmContext &vm, HotnessConfig cfg)
    : HotnessTracker(vm, cfg),
      rng_(sim::deriveSeed(regionSeedBase, vm.id()))
{
}

void
RegionTracker::syncSpace()
{
    const bool guided = ring_ && ring_->hasDirectives();
    if (!guided) {
        if (regions_.empty() || guided_) {
            guided_ = false;
            tracked_ranges_.clear();
            tileFullVm();
        }
        return;
    }
    const TrackingDirectives &d = ring_->directives();
    if (guided_ && d.version == directives_version_)
        return;
    directives_version_ = d.version;
    // The guest republishes directives on a timer whether or not its
    // VMA set changed; every publish bumps the version. Rebuilding on
    // version alone would wipe the learned region structure every
    // couple of scans, so re-tile only when the ranges really moved.
    if (guided_ && sameRanges(d.ranges, tracked_ranges_))
        return;
    guided_ = true;
    tracked_ranges_ = d.ranges;
    tileGuided(d);
}

void
RegionTracker::tileFullVm()
{
    const std::uint64_t span = vm_.kernel().pages().size();
    regions_.clear();
    if (span == 0)
        return;
    const std::uint64_t count =
        std::min<std::uint64_t>(cfg_.region_min, span);
    regions_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        HotRegion r;
        r.lo = span * i / count;
        r.hi = span * (i + 1) / count;
        regions_.push_back(r);
    }
}

void
RegionTracker::tileGuided(const TrackingDirectives &d)
{
    std::vector<HotRegion> fresh;
    std::uint64_t total_pages = 0;
    for (const TrackingRange &tr : d.ranges) {
        total_pages +=
            (tr.va_hi >> mem::pageShift) - (tr.va_lo >> mem::pageShift);
    }
    for (const TrackingRange &tr : d.ranges) {
        const std::uint64_t lo = tr.va_lo >> mem::pageShift;
        const std::uint64_t hi =
            (tr.va_hi + mem::pageSize - 1) >> mem::pageShift;
        if (hi <= lo)
            continue;
        // Apportion the initial region budget by range size, at least
        // one region per range (coverage beats the count floor).
        std::uint64_t want =
            total_pages > 0
                ? (cfg_.region_min * (hi - lo) + total_pages - 1) /
                      total_pages
                : 1;
        want = std::clamp<std::uint64_t>(want, 1, hi - lo);
        for (std::uint64_t i = 0; i < want; ++i) {
            HotRegion r;
            r.pid = tr.pid;
            r.lo = lo + (hi - lo) * i / want;
            r.hi = lo + (hi - lo) * (i + 1) / want;
            // Carry heat over from whatever old region covered this
            // span, so a directive refresh doesn't reset learning.
            r.heat = inheritedHeat(tr.pid, r.lo + r.pages() / 2);
            fresh.push_back(r);
        }
    }
    regions_ = std::move(fresh);
    emit_region_cursor_ = 0;
}

std::uint16_t
RegionTracker::inheritedHeat(guestos::ProcessId pid,
                             std::uint64_t page) const
{
    for (const HotRegion &r : regions_) {
        if (r.pid == pid && r.lo <= page && page < r.hi)
            return r.heat;
    }
    return 0;
}

void
RegionTracker::probeRegion(HotRegion &r, ScanResult &res)
{
    auto &kernel = vm_.kernel();
    auto &pages = kernel.pages();
    const std::uint64_t len = r.pages();
    if (len == 0)
        return;
    const std::uint64_t mid = r.lo + len / 2;
    std::uint32_t hits = 0;
    std::uint32_t probes = 0;
    for (std::uint32_t i = 0; i < cfg_.region_probes; ++i) {
        // Alternate probes between the halves; accumulated per-half
        // hit rates are the split evidence. A one-page region has an
        // empty upper half — everything lands in half 0.
        unsigned half = i & 1u;
        std::uint64_t half_lo = half ? mid : r.lo;
        std::uint64_t half_hi = half ? r.hi : mid;
        if (half_hi <= half_lo) {
            half = 1u - half;
            half_lo = r.lo;
            half_hi = r.hi;
        }
        const std::uint64_t pn =
            half_lo + rng_.uniformInt(half_hi - half_lo);
        bool hit = false;
        if (r.pid == guestos::noProcess) {
            // Full-VM scope: pn is a gpfn; read the descriptor.
            guestos::PageRef p = pages.page(pn);
            if (p.allocated()) {
                const bool accessed = p.pte_accessed();
                p.setPteAccessed(false);
                hit = accessed;
                probeHeat(p, accessed);
            }
        } else if (kernel.hasProcess(r.pid)) {
            // Guided scope: pn is a VA page; resolve one PTE, reset
            // its access bit, and heat the backing page — unless the
            // guest exception-listed it.
            const TrackingDirectives &d = ring_->directives();
            const std::uint64_t va = pn << mem::pageShift;
            auto &as = kernel.process(r.pid);
            as.pageTable().scanRange(
                va, va + mem::pageSize,
                [&](std::uint64_t, const guestos::PteView &pte) {
                    guestos::PageRef p = pages.page(pte.pfn);
                    if (d.exception && d.exception(p))
                        return;
                    const bool accessed =
                        pte.accessed || p.pte_accessed();
                    p.setPteAccessed(false);
                    hit = accessed;
                    probeHeat(p, accessed);
                },
                /*clear_accessed=*/true, 1);
        }
        ++probes;
        ++r.half_probes[half];
        if (hit) {
            ++r.half_hits[half];
            ++res.accessed;
        }
        hits += hit ? 1u : 0u;
        ++res.pages_scanned;
    }
    // Region heat: same halve-and-add EWMA as per-page heat, fed by
    // this scan's hit rate (converges to 127 for an always-hot
    // region, matching the per-page scale the threshold lives on).
    if (probes > 0) {
        r.heat = static_cast<std::uint16_t>(r.heat / 2 +
                                            (64u * hits) / probes);
    }
}

void
RegionTracker::adjustRegions(ScanResult &res)
{
    // Merge adjacent same-scope regions whose heats agree. Merged
    // halves keep their evidence: each side becomes one half of the
    // merged region, which is exactly the split evidence layout.
    for (std::size_t i = 0;
         i + 1 < regions_.size() && regions_.size() > cfg_.region_min;) {
        HotRegion &a = regions_[i];
        HotRegion &b = regions_[i + 1];
        const std::uint16_t delta =
            a.heat > b.heat ? a.heat - b.heat : b.heat - a.heat;
        if (a.pid == b.pid && a.hi == b.lo &&
            delta <= cfg_.region_merge_heat_delta) {
            const std::uint64_t total = a.pages() + b.pages();
            a.heat = static_cast<std::uint16_t>(
                (a.heat * a.pages() + b.heat * b.pages()) /
                std::max<std::uint64_t>(total, 1));
            a.half_probes[0] = a.half_probes[0] + a.half_probes[1];
            a.half_hits[0] = a.half_hits[0] + a.half_hits[1];
            a.half_probes[1] = b.half_probes[0] + b.half_probes[1];
            a.half_hits[1] = b.half_hits[0] + b.half_hits[1];
            a.hi = b.hi;
            a.emit_cursor = 0;
            regions_.erase(regions_.begin() +
                           static_cast<std::ptrdiff_t>(i + 1));
            ++res.merges;
        } else {
            ++i;
        }
    }

    // Split regions whose halves' accumulated hit rates disagree.
    for (std::size_t i = 0;
         i < regions_.size() && regions_.size() < cfg_.region_max; ++i) {
        HotRegion &r = regions_[i];
        if (r.pages() < 2 * cfg_.region_min_pages)
            continue;
        // Demand one scan's worth of evidence per half before acting.
        if (r.half_probes[0] < cfg_.region_probes ||
            r.half_probes[1] < cfg_.region_probes) {
            continue;
        }
        const double rate0 = static_cast<double>(r.half_hits[0]) /
                             static_cast<double>(r.half_probes[0]);
        const double rate1 = static_cast<double>(r.half_hits[1]) /
                             static_cast<double>(r.half_probes[1]);
        if (std::abs(rate0 - rate1) <= cfg_.region_split_threshold)
            continue;
        HotRegion right;
        right.pid = r.pid;
        right.lo = r.lo + r.pages() / 2;
        right.hi = r.hi;
        right.heat = static_cast<std::uint16_t>(rate1 * 127.0);
        r.hi = right.lo;
        r.heat = static_cast<std::uint16_t>(rate0 * 127.0);
        r.half_probes[0] = r.half_probes[1] = 0;
        r.half_hits[0] = r.half_hits[1] = 0;
        r.emit_cursor = 0;
        regions_.insert(regions_.begin() +
                            static_cast<std::ptrdiff_t>(i + 1),
                        right);
        ++res.splits;
        ++i; // skip the freshly inserted right half
    }

    // Floor enforcement: if merging undershot the minimum, split the
    // largest regions back apart (heat preserved — no evidence yet).
    while (regions_.size() < cfg_.region_min && !regions_.empty()) {
        std::size_t largest = 0;
        for (std::size_t i = 1; i < regions_.size(); ++i) {
            if (regions_[i].pages() > regions_[largest].pages())
                largest = i;
        }
        HotRegion &r = regions_[largest];
        if (r.pages() < 2)
            break;
        HotRegion right;
        right.pid = r.pid;
        right.lo = r.lo + r.pages() / 2;
        right.hi = r.hi;
        right.heat = r.heat;
        r.hi = right.lo;
        r.half_probes[0] = r.half_probes[1] = 0;
        r.half_hits[0] = r.half_hits[1] = 0;
        regions_.insert(regions_.begin() +
                            static_cast<std::ptrdiff_t>(largest + 1),
                        right);
        ++res.splits;
    }

    // Decay split evidence once it exceeds a few scans' worth, so the
    // hit rates track a recency window, not the region's lifetime.
    // (Halving every scan would asymptote the accumulated probe count
    // just below the split threshold's evidence floor.)
    for (HotRegion &r : regions_) {
        for (int h = 0; h < 2; ++h) {
            if (r.half_probes[h] > 4 * cfg_.region_probes) {
                r.half_probes[h] /= 2;
                r.half_hits[h] /= 2;
            }
        }
    }
}

sim::Duration
RegionTracker::emitCandidates(ScanResult &res)
{
    auto &kernel = vm_.kernel();
    auto &pages = kernel.pages();
    const std::uint64_t budget = cfg_.promoteBudget(interval_);
    if (budget == 0 || regions_.empty())
        return 0;
    HOS_PROF_SPAN(select_span, prof::SpanKind::CandidateSelect,
                  kernel.events(),
                  static_cast<std::uint16_t>(vm_.id()));
    // Materializing candidates means walking descriptors/PTEs inside
    // hot regions; bound that walk by configuration (not footprint) so
    // the backend's flat-cost contract holds even when hot regions are
    // mostly fast-backed already.
    std::uint64_t walk_budget =
        budget * 4 + static_cast<std::uint64_t>(cfg_.region_probes) *
                         cfg_.region_max;
    std::uint64_t examined = 0;
    const bool hidden = vm_.config().hide_heterogeneity;
    for (std::size_t n = 0;
         n < regions_.size() && res.hot.size() < budget && walk_budget;
         ++n) {
        HotRegion &r = regions_[(emit_region_cursor_ + n) %
                                regions_.size()];
        if (r.heat < cfg_.hot_threshold || r.pages() == 0)
            continue;
        const std::uint64_t len = r.pages();
        std::uint64_t steps = 0;
        for (; steps < len && res.hot.size() < budget && walk_budget;
             ++steps, --walk_budget) {
            const std::uint64_t pn =
                r.lo + (r.emit_cursor + steps) % len;
            ++examined;
            if (r.pid == guestos::noProcess) {
                guestos::PageRef p = pages.page(pn);
                if (!p.allocated())
                    continue;
                // Candidates must actually live in SlowMem; under a
                // hidden topology the guest-visible type is a lie and
                // the P2M is the truth.
                const mem::MemType tier =
                    hidden ? (vm_.p2m().populated(pn)
                                  ? vm_.p2m().tierOf(pn)
                                  : mem::MemType::SlowMem)
                           : p.mem_type();
                if (tier != mem::MemType::SlowMem)
                    continue;
                raiseHeat(p, r.heat);
                res.hot.push_back(p.pfn());
            } else {
                if (!kernel.hasProcess(r.pid))
                    break;
                const std::uint64_t va = pn << mem::pageShift;
                const auto pte =
                    kernel.process(r.pid).pageTable().lookup(va);
                if (!pte)
                    continue;
                guestos::PageRef p = pages.page(pte->pfn);
                const TrackingDirectives &d = ring_->directives();
                if (d.exception && d.exception(p))
                    continue;
                if (p.mem_type() != mem::MemType::SlowMem)
                    continue;
                raiseHeat(p, r.heat);
                res.hot.push_back(p.pfn());
            }
        }
        r.emit_cursor = (r.emit_cursor + steps) % len;
    }
    emit_region_cursor_ =
        (emit_region_cursor_ + 1) % regions_.size();
    const auto cost = static_cast<sim::Duration>(
        static_cast<double>(examined) * cfg_.per_pte_ns);
    kernel.charge(guestos::OverheadKind::HotScan, cost);
    return cost;
}

ScanResult
RegionTracker::scanOnce()
{
    ScanResult res;
    auto &kernel = vm_.kernel();
    const auto vm_id = static_cast<std::uint16_t>(vm_.id());
    HOS_PROF_SPAN(scan_span, prof::SpanKind::ScanPass, kernel.events(),
                  vm_id);
    res.hot.reserve(last_hot_ + 64);

    syncSpace();

    // Probe pass: region_probes samples per region, every sample one
    // PTE/descriptor read — the whole point is that this is bounded by
    // region_max * region_probes no matter how big the guest is.
    sim::Duration probe_cost = 0;
    {
        HOS_PROF_SPAN(sample_span, prof::SpanKind::RegionSample,
                      kernel.events(), vm_id);
        for (HotRegion &r : regions_)
            probeRegion(r, res);
        probe_cost = static_cast<sim::Duration>(
            static_cast<double>(res.pages_scanned) * cfg_.per_pte_ns);
        kernel.charge(guestos::OverheadKind::HotScan, probe_cost);
    }

    // Adaptation pass: split/merge bookkeeping over the descriptors.
    sim::Duration adjust_cost = 0;
    {
        HOS_PROF_SPAN(adjust_span, prof::SpanKind::RegionAdjust,
                      kernel.events(), vm_id);
        adjustRegions(res);
        adjust_cost = static_cast<sim::Duration>(
            static_cast<double>(regions_.size()) *
            cfg_.per_region_adjust_ns);
        kernel.charge(guestos::OverheadKind::HotScan, adjust_cost);
    }

    const sim::Duration emit_cost = emitCandidates(res);

    // Probes clear access bits, so the same forced-invalidation cost
    // the per-PTE scan pays applies — just over far fewer pages.
    sim::Duration flush_cost = 0;
    {
        HOS_PROF_SPAN(tlb_span, prof::SpanKind::TlbShootdown,
                      kernel.events(), vm_id);
        flush_cost = kernel.tlb().scanFlushCost(res.pages_scanned,
                                                res.accessed);
        kernel.charge(guestos::OverheadKind::HotScan, flush_cost);
    }

    res.cost = probe_cost + adjust_cost + emit_cost + flush_cost;
    res.regions = regions_.size();
    finishScan(res);
    return res;
}

} // namespace hos::vmm
