/**
 * @file
 * Guest-physical to machine-frame (P2M) mapping.
 *
 * The VMM keeps one P2M per guest VM. HeteroOS extends the classic
 * single-dimension table with per-memory-type awareness: the back-end
 * "maintains the per-node (memory type) machine page number (MFN)
 * mapping for each of the guests" (Section 3.1). Here the table also
 * caches the backing tier per gpfn so the placement oracle and the
 * performance model can answer "which tier serves this page?" in O(1).
 */

#ifndef HOS_VMM_P2M_HH
#define HOS_VMM_P2M_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "guestos/page.hh"
#include "mem/machine_memory.hh"
#include "mem/mem_spec.hh"

namespace hos::vmm {

using guestos::Gpfn;

/** One guest's gpfn -> mfn map. */
class P2m
{
  public:
    /**
     * Observer of effective-tier changes: called with the tier now
     * serving the gpfn (SlowMem when unpopulated, matching the
     * VMM-exclusive placement oracle's fallback). Lets the guest's
     * ResidencyIndex track hidden placement changes incrementally.
     */
    using ChangeHook = std::function<void(Gpfn, mem::MemType)>;

    explicit P2m(std::uint64_t num_gpfns);

    void setChangeHook(ChangeHook hook) { hook_ = std::move(hook); }

    /** Install a mapping (page populate or migration retarget). */
    void set(Gpfn gpfn, mem::Mfn mfn, mem::MemType tier);

    /** Remove a mapping (balloon unpopulate). */
    void clear(Gpfn gpfn);

    bool populated(Gpfn gpfn) const;
    mem::Mfn mfnOf(Gpfn gpfn) const;
    mem::MemType tierOf(Gpfn gpfn) const;

    std::uint64_t populatedCount() const { return populated_count_; }
    std::uint64_t populatedOfTier(mem::MemType t) const;

    std::uint64_t size() const { return map_.size(); }

  private:
    ChangeHook hook_;
    std::vector<mem::Mfn> map_;
    std::vector<std::uint8_t> tier_;
    std::uint64_t populated_count_ = 0;
    std::array<std::uint64_t, mem::numMemTypes> tier_count_{};
};

} // namespace hos::vmm

#endif // HOS_VMM_P2M_HH
