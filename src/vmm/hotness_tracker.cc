#include "vmm/hotness_tracker.hh"

#include <algorithm>

#include "sim/log.hh"
#include "trace/trace.hh"
#include "vmm/hotness_pte.hh"
#include "vmm/hotness_region.hh"
#include "xray/xray.hh"

namespace hos::vmm {

const char *
hotnessBackendKey(HotnessBackend b)
{
    switch (b) {
      case HotnessBackend::PteScan:
        return "pte_scan";
      case HotnessBackend::Region:
        return "region";
    }
    return "?";
}

std::optional<HotnessBackend>
parseHotnessBackend(const std::string &key)
{
    if (key == "pte_scan")
        return HotnessBackend::PteScan;
    if (key == "region")
        return HotnessBackend::Region;
    return std::nullopt;
}

HotnessTracker::HotnessTracker(VmContext &vm, HotnessConfig cfg)
    : vm_(vm), cfg_(cfg), interval_(cfg.interval)
{
}

void
HotnessTracker::heatPage(guestos::PageRef &p, bool accessed,
                         ScanResult &res)
{
    // Exponentially decaying heat: halve, then add for a fresh touch.
    const auto heat =
        static_cast<std::uint16_t>(p.heat() / 2 + (accessed ? 64 : 0));
    p.setHeat(heat);
    if (accessed)
        ++res.accessed;
    if (heat >= cfg_.hot_threshold)
        res.hot.push_back(p.pfn());
    if (auto *xr = xray::active()) {
        xr->onHeat(static_cast<std::uint16_t>(vm_.id()), p.pfn(), heat,
                   cfg_.hot_threshold, vm_.kernel().events().now());
    }
}

std::uint16_t
HotnessTracker::probeHeat(guestos::PageRef &p, bool accessed)
{
    const auto heat =
        static_cast<std::uint16_t>(p.heat() / 2 + (accessed ? 64 : 0));
    p.setHeat(heat);
    if (auto *xr = xray::active()) {
        xr->onHeat(static_cast<std::uint16_t>(vm_.id()), p.pfn(), heat,
                   cfg_.hot_threshold, vm_.kernel().events().now());
    }
    return heat;
}

void
HotnessTracker::raiseHeat(guestos::PageRef &p, std::uint16_t floor)
{
    if (p.heat() >= floor)
        return;
    p.setHeat(floor);
    if (auto *xr = xray::active()) {
        xr->onHeat(static_cast<std::uint16_t>(vm_.id()), p.pfn(), floor,
                   cfg_.hot_threshold, vm_.kernel().events().now());
    }
}

void
HotnessTracker::finishScan(ScanResult &res)
{
    scans_.inc();
    scanned_.inc(res.pages_scanned);
    last_hot_ = res.hot.size();
    total_cost_ += res.cost;
    trace::emit(trace::EventType::HotnessScan,
                vm_.kernel().events().now(), res.pages_scanned,
                res.accessed, res.hot.size(), res.cost,
                static_cast<std::uint16_t>(vm_.id()));
}

void
HotnessTracker::adaptInterval()
{
    if (!cfg_.adaptive)
        return;
    // The VMM exports cumulative LLC misses; Equation 1 works on the
    // misses observed *within* each epoch.
    const std::uint64_t cum = vm_.llcMisses();
    const std::uint64_t epoch_misses =
        cum >= last_llc_misses_ ? cum - last_llc_misses_ : 0;
    last_llc_misses_ = cum;
    if (last_epoch_misses_ == 0) {
        last_epoch_misses_ = epoch_misses;
        return;
    }

    // Equation 1: Interval -= dLLC * Interval, with dLLC the relative
    // change in per-epoch misses. A rising miss rate shrinks the
    // interval (track hotter, migrate sooner); a falling one
    // lengthens it (save the scanning cost).
    const double d_llc =
        (static_cast<double>(epoch_misses) -
         static_cast<double>(last_epoch_misses_)) /
        static_cast<double>(last_epoch_misses_);
    last_epoch_misses_ = epoch_misses;
    double next = static_cast<double>(interval_) *
                  (1.0 - std::clamp(d_llc, -1.0, 1.0));
    next = std::clamp(next, static_cast<double>(cfg_.min_interval),
                      static_cast<double>(cfg_.max_interval));
    interval_ = static_cast<sim::Duration>(next);
}

std::unique_ptr<HotnessTracker>
makeHotnessTracker(VmContext &vm, const HotnessConfig &cfg)
{
    switch (cfg.backend) {
      case HotnessBackend::PteScan:
        return std::make_unique<PteScanTracker>(vm, cfg);
      case HotnessBackend::Region:
        return std::make_unique<RegionTracker>(vm, cfg);
    }
    sim::panic("unknown hotness backend");
}

} // namespace hos::vmm
