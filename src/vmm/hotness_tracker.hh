/**
 * @file
 * VMM page-hotness tracking (Sections 2.3 and 4.1) — the pluggable
 * backend interface.
 *
 * Software hotness tracking answers one question — which guest pages
 * are hot enough to justify FastMem — but the *mechanism* that
 * answers it is a policy choice with very different cost curves:
 *
 *  - PteScanTracker (hotness_pte.hh): the paper's per-PTE access-bit
 *    scan. Faithful to Figure 8, including the full-VM and OS-guided
 *    scanning scopes, but cost grows linearly with the scanned
 *    address space (Observation 4's scaling limit).
 *  - RegionTracker (hotness_region.hh): DAMON-style adaptive region
 *    monitoring. A bounded set of regions is probed with a fixed
 *    sampling budget per interval — flat cost regardless of guest
 *    footprint — and regions split/merge as their access patterns
 *    diverge/agree.
 *
 * Both backends implement this interface: scanOnce() produces hot
 * candidates and charges the scan cost to the VM, adaptInterval()
 * applies the Equation 1 LLC-miss feedback, and guideWith() attaches
 * the guest's OS-guided tracking directives (coordinated mode).
 * Policies, the migration-candidate path, hos::prof attribution, and
 * hos::xray provenance all work against the interface; the backend is
 * selected by HotnessConfig::backend (surfaced as the Scenario
 * "hotness" spec — see core/scenario.hh).
 */

#ifndef HOS_VMM_HOTNESS_TRACKER_HH
#define HOS_VMM_HOTNESS_TRACKER_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/time.hh"
#include "vmm/shared_ring.hh"
#include "vmm/vmm.hh"

namespace hos::vmm {

/** The available hotness-tracking backends. */
enum class HotnessBackend : std::uint8_t {
    PteScan, ///< paper-faithful per-PTE access-bit scan
    Region,  ///< DAMON-style adaptive region sampling
};

/** Stable key ("pte_scan"/"region"), used by scenario JSON. */
const char *hotnessBackendKey(HotnessBackend b);
std::optional<HotnessBackend> parseHotnessBackend(const std::string &key);

/** Hotness-tracking configuration. */
struct HotnessConfig
{
    /** Which backend implementation to instantiate. */
    HotnessBackend backend = HotnessBackend::PteScan;

    /** Scan interval (HeteroVisor default: 100 ms per 32K pages). */
    sim::Duration interval = sim::milliseconds(100);
    std::uint64_t pages_per_scan = 32768;
    /** EWMA heat threshold above which a page counts as hot. */
    std::uint16_t hot_threshold = 96;
    /**
     * Per-PTE scan cost charged to the VM, covering the table walk,
     * access-bit reset, and the amortized TLB-refill penalty the
     * forced invalidation causes (calibrated against Figure 8).
     */
    double per_pte_ns = 700.0;
    /**
     * Migration rate limit in pages/second: hot candidates beyond
     * interval * rate are deferred to the next round. Real systems
     * throttle migration batches; without a limit the Table 6
     * per-page costs would stall the VM.
     */
    double promote_rate_pps = 1800.0;

    /** Hot-page budget for one round at the given effective interval. */
    std::uint64_t
    promoteBudget(sim::Duration effective_interval) const
    {
        return static_cast<std::uint64_t>(
            promote_rate_pps * sim::toSeconds(effective_interval));
    }
    /**
     * Skip free-page runs in full-VM sweeps via the PageArray's
     * per-chunk allocated counters. Observationally identical to the
     * page-at-a-time walk (a skipped run advances cursor and step
     * exactly as the walk would); off = legacy walk, kept as a
     * performance cross-check.
     */
    bool free_run_skip = true;
    /** Equation 1 adaptive interval. */
    bool adaptive = false;
    sim::Duration min_interval = sim::milliseconds(50);
    sim::Duration max_interval = sim::seconds(1);

    // --- Region backend (DAMON-style) ------------------------------
    //
    // The sampling budget per scan is region_max * region_probes
    // probes, independent of guest footprint; the bookkeeping budget
    // is one pass over at most region_max region descriptors. Both
    // bound the scan cost by configuration alone.

    /** Region-count bounds: split/merge keeps the count in range. */
    std::uint32_t region_min = 16;
    std::uint32_t region_max = 256;
    /** Probe pages sampled per region per scan. */
    std::uint32_t region_probes = 8;
    /** Never split a region below this many pages. */
    std::uint64_t region_min_pages = 64;
    /**
     * Split a region when its halves' probe hit-rates differ by more
     * than this fraction (accumulated evidence, not one scan).
     */
    double region_split_threshold = 0.25;
    /** Merge adjacent regions whose heats differ by at most this. */
    std::uint16_t region_merge_heat_delta = 8;
    /** Split/merge bookkeeping cost per region descriptor examined. */
    double per_region_adjust_ns = 120.0;
};

/** Result of one scan pass. */
struct ScanResult
{
    std::uint64_t pages_scanned = 0;
    std::uint64_t accessed = 0;
    std::vector<Gpfn> hot; ///< pages over the heat threshold
    sim::Duration cost = 0;
    // Region-backend extras (zero under pte_scan).
    std::uint64_t regions = 0; ///< live regions after this scan
    std::uint64_t splits = 0;
    std::uint64_t merges = 0;
};

/**
 * Tracks page hotness for one VM — the backend interface.
 *
 * The base class owns everything backend-independent: the config, the
 * (possibly adaptive) interval, the Equation 1 feedback loop, the
 * per-page heat EWMA, and the scan statistics. Backends implement
 * scanOnce() and the guided-mode attachment.
 */
class HotnessTracker
{
  public:
    virtual ~HotnessTracker() = default;

    HotnessTracker(const HotnessTracker &) = delete;
    HotnessTracker &operator=(const HotnessTracker &) = delete;

    /** The backend's stable key ("pte_scan"/"region"). */
    virtual const char *backendName() const = 0;

    const HotnessConfig &config() const { return cfg_; }
    sim::Duration interval() const { return interval_; }

    /**
     * Attach OS-guided directives (coordinated mode). Passing nullptr
     * reverts to full-VM scanning.
     */
    virtual void guideWith(const SharedRing *ring) { ring_ = ring; }

    /**
     * Perform one scan pass: harvest access information, update heat,
     * collect hot candidates, and charge the scan cost to the VM.
     */
    virtual ScanResult scanOnce() = 0;

    /**
     * Equation 1: adjust the interval from the LLC-miss delta the VMM
     * observed for this VM since the previous call.
     */
    virtual void adaptInterval();

    std::uint64_t totalScanned() const { return scanned_.value(); }
    std::uint64_t totalScans() const { return scans_.value(); }
    sim::Duration totalCost() const { return total_cost_; }

  protected:
    HotnessTracker(VmContext &vm, HotnessConfig cfg);

    /**
     * Update one page's heat from its harvested access bit, counting
     * it hot when over threshold (the per-PTE path's inner loop).
     */
    void heatPage(guestos::PageRef &p, bool accessed, ScanResult &res);

    /**
     * EWMA-update one page's heat without hot-candidate collection
     * (the region backend's probe path). Keeps the xray heat shadow
     * exact. Returns the new heat.
     */
    std::uint16_t probeHeat(guestos::PageRef &p, bool accessed);

    /**
     * Raise one page's heat to at least `floor` (region-level heat
     * applied to an emitted candidate), keeping the xray shadow exact.
     */
    void raiseHeat(guestos::PageRef &p, std::uint16_t floor);

    /**
     * Close out a scan: record counters, accumulate cost, and emit
     * the HotnessScan trace event. `res.cost` must already be set.
     */
    void finishScan(ScanResult &res);

    VmContext &vm_;
    HotnessConfig cfg_;
    sim::Duration interval_;
    const SharedRing *ring_ = nullptr;
    std::uint64_t last_hot_ = 0; ///< ScanResult::hot reservation

  private:
    std::uint64_t last_llc_misses_ = 0;
    std::uint64_t last_epoch_misses_ = 0;
    sim::Counter scanned_;
    sim::Counter scans_;
    sim::Duration total_cost_ = 0;
};

/** Instantiate the backend `cfg.backend` selects. */
std::unique_ptr<HotnessTracker> makeHotnessTracker(VmContext &vm,
                                                   const HotnessConfig &cfg);

} // namespace hos::vmm

#endif // HOS_VMM_HOTNESS_TRACKER_HH
