/**
 * @file
 * VMM page-hotness tracking (Sections 2.3 and 4.1).
 *
 * Software hotness tracking works by periodically scanning page-table
 * entries, recording access bits, and resetting them — which requires
 * TLB invalidations so the hardware re-sets the bits on the next
 * touch. The scan plus the induced refill walks are the dominant
 * management overhead the paper measures (Figure 8); every scan here
 * charges that cost to the VM it tracks.
 *
 * Two scanning scopes:
 *  - Full-VM (HeteroVisor / VMM-exclusive): a cursor sweeps the whole
 *    guest gpfn space, `pages_per_scan` pages per interval.
 *  - OS-guided (HeteroOS-coordinated): only the VMA ranges on the
 *    guest's tracking list are walked, and exception-listed pages
 *    (short-lived I/O, page-table, DMA) are skipped — the guest's
 *    knowledge shrinking the VMM's work.
 *
 * The scan interval adapts to cache behaviour with Equation 1 when
 * enabled: rising LLC misses shorten the interval, falling misses
 * lengthen it.
 */

#ifndef HOS_VMM_HOTNESS_TRACKER_HH
#define HOS_VMM_HOTNESS_TRACKER_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/time.hh"
#include "vmm/shared_ring.hh"
#include "vmm/vmm.hh"

namespace hos::vmm {

/** Hotness-tracking configuration. */
struct HotnessConfig
{
    /** Scan interval (HeteroVisor default: 100 ms per 32K pages). */
    sim::Duration interval = sim::milliseconds(100);
    std::uint64_t pages_per_scan = 32768;
    /** EWMA heat threshold above which a page counts as hot. */
    std::uint16_t hot_threshold = 96;
    /**
     * Per-PTE scan cost charged to the VM, covering the table walk,
     * access-bit reset, and the amortized TLB-refill penalty the
     * forced invalidation causes (calibrated against Figure 8).
     */
    double per_pte_ns = 700.0;
    /**
     * Migration rate limit in pages/second: hot candidates beyond
     * interval * rate are deferred to the next round. Real systems
     * throttle migration batches; without a limit the Table 6
     * per-page costs would stall the VM.
     */
    double promote_rate_pps = 1800.0;

    /** Hot-page budget for one round at the current interval. */
    std::uint64_t
    promoteBudget(sim::Duration interval) const
    {
        return static_cast<std::uint64_t>(
            promote_rate_pps * sim::toSeconds(interval));
    }
    /**
     * Skip free-page runs in full-VM sweeps via the PageArray's
     * per-chunk allocated counters. Observationally identical to the
     * page-at-a-time walk (a skipped run advances cursor and step
     * exactly as the walk would); off = legacy walk, kept as a
     * performance cross-check.
     */
    bool free_run_skip = true;
    /** Equation 1 adaptive interval. */
    bool adaptive = false;
    sim::Duration min_interval = sim::milliseconds(50);
    sim::Duration max_interval = sim::seconds(1);
};

/** Result of one scan pass. */
struct ScanResult
{
    std::uint64_t pages_scanned = 0;
    std::uint64_t accessed = 0;
    std::vector<Gpfn> hot; ///< pages over the heat threshold
    sim::Duration cost = 0;
};

/** Tracks page hotness for one VM. */
class HotnessTracker
{
  public:
    HotnessTracker(VmContext &vm, HotnessConfig cfg);

    const HotnessConfig &config() const { return cfg_; }
    sim::Duration interval() const { return interval_; }

    /**
     * Attach OS-guided directives (coordinated mode). Passing nullptr
     * reverts to full-VM scanning.
     */
    void guideWith(const SharedRing *ring) { ring_ = ring; }

    /**
     * Perform one scan pass: harvest and reset access bits, update
     * per-page heat, collect hot candidates, and charge the scan cost
     * to the VM.
     */
    ScanResult scanOnce();

    /**
     * Equation 1: adjust the interval from the LLC-miss delta the VMM
     * observed for this VM since the previous call.
     */
    void adaptInterval();

    std::uint64_t totalScanned() const { return scanned_.value(); }
    std::uint64_t totalScans() const { return scans_.value(); }
    sim::Duration totalCost() const { return total_cost_; }

  private:
    /** Update one page's heat from its harvested access bit. */
    void heatPage(guestos::Page &p, bool accessed, ScanResult &res);

    VmContext &vm_;
    HotnessConfig cfg_;
    sim::Duration interval_;
    const SharedRing *ring_ = nullptr;
    Gpfn cursor_ = 0;
    std::size_t range_cursor_ = 0;      ///< guided-scan resume point
    std::uint64_t va_cursor_ = 0;
    std::uint64_t directives_version_ = 0;
    std::uint64_t last_llc_misses_ = 0;
    std::uint64_t last_epoch_misses_ = 0;
    std::uint64_t last_hot_ = 0;        ///< ScanResult::hot reservation
    sim::Counter scanned_;
    sim::Counter scans_;
    sim::Duration total_cost_ = 0;
};

} // namespace hos::vmm

#endif // HOS_VMM_HOTNESS_TRACKER_HH
