/**
 * @file
 * VMM-initiated balloon reclamation.
 *
 * The inflate direction of the heterogeneity-aware balloon
 * (Section 4.2): the VMM asks a victim VM's guest to surrender pages
 * of a specific memory type. The guest front-end frees free pages
 * first, then HeteroOS-LRU-demotable pages, then swaps — so the cost
 * lands on the victim, and the frames return to the machine pool.
 */

#ifndef HOS_VMM_BALLOONING_HH
#define HOS_VMM_BALLOONING_HH

#include <cstdint>

#include "mem/mem_spec.hh"
#include "vmm/vmm.hh"

namespace hos::vmm {

/** How much of a victim's holding a reclaim may take. */
enum class ReclaimCap {
    PerTypeMin, ///< honor the per-type guarantee (DRF's view)
    Unbounded,  ///< only a 1/8 floor — single-resource max-min's
                ///< view of its *unmanaged* resources (Figure 13)
};

/**
 * Reclaim up to `n` frames of tier `t` from a victim VM. Returns the
 * number of frames of that tier actually freed to the machine pool.
 *
 * Works for heterogeneity-hidden VMs too: their guests surrender
 * generic pages, and the function counts how many of the freed frames
 * were of the wanted tier.
 */
std::uint64_t balloonReclaim(Vmm &vmm, VmContext &victim, mem::MemType t,
                             std::uint64_t n,
                             ReclaimCap cap = ReclaimCap::PerTypeMin);

/**
 * Frames of tier `t` a VM holds beyond its guaranteed minimum —
 * what's reclaimable without violating its per-type contract.
 */
std::uint64_t overcommitFrames(const VmContext &vm, mem::MemType t);

/** Frames a VM holds beyond the sum of its per-type minimums. */
std::uint64_t totalOvercommitFrames(const VmContext &vm);

} // namespace hos::vmm

#endif // HOS_VMM_BALLOONING_HH
