/**
 * @file
 * VMM-level page migration (the HeteroVisor mechanism).
 *
 * In the VMM-exclusive model the hypervisor moves a page between
 * tiers by allocating a frame in the destination tier, copying, and
 * retargeting the P2M entry — the guest never notices. Costs follow
 * the same Table 6 batch-amortized model as guest migrations, plus a
 * shootdown (the hardware mappings derived from the P2M must be
 * invalidated).
 *
 * The engine also implements the eviction side: when FastMem fills,
 * the *least-hot* fast-backed pages of the VM are demoted to make
 * room (HeteroVisor's LRU eviction of hot pages' predecessors).
 */

#ifndef HOS_VMM_MIGRATION_ENGINE_HH
#define HOS_VMM_MIGRATION_ENGINE_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/time.hh"
#include "vmm/vmm.hh"

namespace hos::vmm {

/** Result of a VMM migration batch. */
struct VmmMigrationResult
{
    std::uint64_t migrated = 0;
    std::uint64_t no_frames = 0; ///< destination tier was full
    sim::Duration cost = 0;
};

/** Moves page backing between tiers behind a guest's back. */
class MigrationEngine
{
  public:
    explicit MigrationEngine(Vmm &vmm);

    /**
     * Retarget the backing of `gpfns` to tier `dst`. Unpopulated
     * gpfns and pages already in `dst` are skipped silently. The
     * walk+copy+shootdown cost is charged to the VM.
     */
    VmmMigrationResult migrateBacking(VmContext &vm,
                                      const std::vector<Gpfn> &gpfns,
                                      mem::MemType dst);

    /**
     * Pick up to `n` of the coldest FastMem-backed gpfns of the VM
     * (lowest tracker heat), for eviction ahead of promotions.
     */
    std::vector<Gpfn> coldestFastBacked(VmContext &vm, std::uint64_t n);

    /**
     * Swap the backing frames of a SlowMem-backed and a FastMem-
     * backed gpfn (promotion + eviction in one exchange, used when
     * neither tier has free frames).
     */
    bool exchangeBacking(VmContext &vm, Gpfn promote, Gpfn evict);

    /**
     * Promote `hot` pages into FastMem, evicting cold fast-backed
     * pages first when FastMem lacks room (by migration when SlowMem
     * has free frames, by pairwise exchange otherwise). At most
     * `budget` promotions are performed (rate limiting); pages that
     * are already FastMem-backed do not consume budget. The complete
     * HeteroVisor migration round.
     */
    VmmMigrationResult
    promoteWithEviction(VmContext &vm, const std::vector<Gpfn> &hot,
                        std::uint64_t budget = ~std::uint64_t(0));

    std::uint64_t totalMigrated() const { return migrated_.value(); }

  private:
    Vmm &vmm_;
    sim::Counter migrated_;
};

} // namespace hos::vmm

#endif // HOS_VMM_MIGRATION_ENGINE_HH
