/**
 * @file
 * Guest <-> VMM shared-memory coordination channel (Section 4.1).
 *
 * HeteroOS-coordinated splits responsibilities: the guest publishes
 * *what* to track (a tracking list of VMA address ranges) and *what to
 * skip* (an exception list: short-lived I/O pages, page-table and DMA
 * pages), and the VMM publishes back the hot-page candidates it found,
 * which the guest's migration front-end validates and moves
 * (Figure 5, steps 4-9).
 */

#ifndef HOS_VMM_SHARED_RING_HH
#define HOS_VMM_SHARED_RING_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "guestos/page.hh"

namespace hos::vmm {

/** One contiguous virtual address range the VMM should track. */
struct TrackingRange
{
    guestos::ProcessId pid = guestos::noProcess;
    std::uint64_t va_lo = 0;
    std::uint64_t va_hi = 0;
};

/** The guest's tracking directives. */
struct TrackingDirectives
{
    std::vector<TrackingRange> ranges;
    /**
     * Exception predicate over page metadata; true = do not track.
     * Defaults (installed by the coordinated policy) exclude
     * short-lived I/O pages and unmigratable page-table/DMA pages.
     */
    std::function<bool(const guestos::PageRef &)> exception;
    std::uint64_t version = 0;
};

/** The split front-end/back-end message channel. */
class SharedRing
{
  public:
    SharedRing() = default;

    /** Guest side: publish (replace) the tracking directives. */
    void publishDirectives(TrackingDirectives d);

    /** VMM side: the current directives. */
    const TrackingDirectives &directives() const { return directives_; }
    bool hasDirectives() const { return directives_.version > 0; }

    /** VMM side: append hot-page candidates for the guest. */
    void pushHotPages(const std::vector<guestos::Gpfn> &pfns);

    /** Guest side: take all pending hot-page candidates. */
    std::vector<guestos::Gpfn> drainHotPages();

    std::uint64_t pendingHotPages() const { return hot_.size(); }

  private:
    TrackingDirectives directives_;
    std::vector<guestos::Gpfn> hot_;
};

} // namespace hos::vmm

#endif // HOS_VMM_SHARED_RING_HH
