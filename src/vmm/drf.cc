#include "vmm/drf.hh"

#include <algorithm>

#include "prof/prof.hh"
#include "trace/trace.hh"
#include "vmm/ballooning.hh"
#include "xray/xray.hh"

namespace hos::vmm {

double
DrfFairness::resourceShare(const Vmm &vmm, const VmContext &vm,
                           mem::MemType t)
{
    const std::uint64_t total = vmm.totalFrames(t);
    if (total == 0)
        return 0.0;
    return vm.weight(t) * static_cast<double>(vm.framesOf(t)) /
           static_cast<double>(total);
}

double
DrfFairness::dominantShare(const Vmm &vmm, const VmContext &vm)
{
    double s = 0.0;
    for (std::size_t i = 0; i < mem::numMemTypes; ++i) {
        const auto t = static_cast<mem::MemType>(i);
        s = std::max(s, resourceShare(vmm, vm, t));
    }
    return s;
}

std::uint64_t
DrfFairness::approve(Vmm &vmm, VmContext &requester, mem::MemType t,
                     std::uint64_t n)
{
    HOS_PROF_SPAN(drf_span, prof::SpanKind::DrfRound,
                  requester.kernel().events(),
                  static_cast<std::uint16_t>(requester.id()),
                  static_cast<std::uint8_t>(t));

    // Basic (minimum) share is sacrosanct: grant it outright,
    // reclaiming from any overcommitted neighbour.
    const std::uint64_t have = requester.framesOf(t);
    const std::uint64_t min = requester.minPages(t);
    const bool below_min = have < min;

    std::uint64_t deficit =
        n > vmm.freeFrames(t) ? n - vmm.freeFrames(t) : 0;

    HOS_PROF_SPAN(realloc_span, prof::SpanKind::Reallocation,
                  requester.kernel().events(),
                  static_cast<std::uint16_t>(requester.id()),
                  static_cast<std::uint8_t>(t));
    while (deficit > 0) {
        // Algorithm 1: service the lowest dominant share first. As a
        // reclamation rule that inverts to: take overcommit back from
        // the *highest* dominant share — and only if it exceeds the
        // requester's (unless the requester is below its basic
        // share, which always wins).
        const double s_req = dominantShare(vmm, requester);
        VmContext *victim = nullptr;
        double worst = below_min ? 0.0 : s_req;
        for (VmId id = 0; id < vmm.numVms(); ++id) {
            VmContext &vm = vmm.vm(id);
            if (vm.id() == requester.id())
                continue;
            if (overcommitFrames(vm, t) == 0)
                continue;
            const double s = dominantShare(vmm, vm);
            if (s > worst) {
                worst = s;
                victim = &vm;
            }
        }
        if (!victim)
            break;
        const std::uint64_t got =
            balloonReclaim(vmm, *victim, t, deficit);
        if (got == 0)
            break;
        trace::emit(trace::EventType::DrfReclaim,
                    requester.kernel().events().now(), victim->id(),
                    static_cast<std::uint64_t>(t), got, 0,
                    static_cast<std::uint16_t>(requester.id()));
        if (auto *xr = xray::active()) {
            // Decision inputs: both dominant shares, in ppm, packed
            // into a1 (requester high, victim low).
            const auto ppm = [](double s) {
                return static_cast<std::uint64_t>(s * 1e6);
            };
            xr->onVmEvent(
                static_cast<std::uint16_t>(requester.id()),
                xray::EventKind::DrfReclaim,
                static_cast<std::uint32_t>(victim->id()), got,
                (ppm(s_req) << 32) | ppm(worst),
                requester.kernel().events().now());
        }
        deficit -= std::min(deficit, got);
    }

    // Strategy-proofness guard: overcommit beyond max is already
    // capped by the VMM; asking for more than you use only inflates
    // your dominant share and makes you the next reclaim victim.
    return std::min(n, vmm.freeFrames(t));
}

} // namespace hos::vmm
