#include "vmm/shared_ring.hh"

namespace hos::vmm {

void
SharedRing::publishDirectives(TrackingDirectives d)
{
    d.version = directives_.version + 1;
    directives_ = std::move(d);
}

void
SharedRing::pushHotPages(const std::vector<guestos::Gpfn> &pfns)
{
    hot_.insert(hot_.end(), pfns.begin(), pfns.end());
}

std::vector<guestos::Gpfn>
SharedRing::drainHotPages()
{
    std::vector<guestos::Gpfn> out;
    out.swap(hot_);
    return out;
}

} // namespace hos::vmm
