/**
 * @file
 * The hypervisor (VMM).
 *
 * Owns machine memory, registers guest VMs, and implements the
 * back-end half of the split on-demand allocation driver (Figure 5):
 * every populate request flows through the pluggable fairness policy
 * (weighted DRF by default, single-resource max-min as the baseline)
 * before machine frames are granted.
 *
 * A VM may be registered heterogeneity-hidden (hide_heterogeneity):
 * the guest then sees one homogeneous node while the VMM backs its
 * pages from whichever tier it pleases — exactly the HeteroVisor
 * (VMM-exclusive) model the paper compares against.
 */

#ifndef HOS_VMM_VMM_HH
#define HOS_VMM_VMM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "guestos/hypercalls.hh"
#include "guestos/kernel.hh"
#include "mem/machine_memory.hh"
#include "sim/stats.hh"
#include "vmm/p2m.hh"

namespace hos::vmm {

using VmId = std::uint32_t;

class Vmm;
class VmContext;

/** Per-type reservation contract of a VM. */
struct MemReservation
{
    mem::MemType type = mem::MemType::SlowMem;
    std::uint64_t min_pages = 0; ///< guaranteed (paid-for) share
    std::uint64_t max_pages = 0; ///< ceiling reachable via overcommit
    double weight = 1.0;         ///< DRF resource weight
};

/** VM registration parameters. */
struct VmConfig
{
    std::string name = "vm";
    std::vector<MemReservation> reservations;
    /** HeteroVisor mode: guest sees one homogeneous memory. */
    bool hide_heterogeneity = false;
    /** Backing preference for hidden VMs (first = tried first). */
    std::vector<mem::MemType> backing_order = {mem::MemType::SlowMem,
                                               mem::MemType::FastMem};
};

/**
 * Multi-VM memory fairness policy (Section 4.2). approve() may
 * reclaim pages from other VMs (via their balloons) to make room.
 */
class FairnessPolicy
{
  public:
    virtual ~FairnessPolicy() = default;
    virtual const char *name() const = 0;

    /**
     * How many of `n` requested pages of `t` the requester may get.
     * The policy may first balloon-reclaim overcommitted pages from
     * other VMs through `vmm`.
     */
    virtual std::uint64_t approve(Vmm &vmm, VmContext &requester,
                                  mem::MemType t, std::uint64_t n) = 0;
};

/** The VMM-side state of one guest VM. */
class VmContext
{
  public:
    VmContext(VmId id, mem::OwnerId owner, guestos::GuestKernel &kernel,
              VmConfig cfg);

    VmId id() const { return id_; }
    mem::OwnerId owner() const { return owner_; }
    guestos::GuestKernel &kernel() { return kernel_; }
    const VmConfig &config() const { return cfg_; }
    P2m &p2m() { return p2m_; }
    const P2m &p2m() const { return p2m_; }

    std::uint64_t minPages(mem::MemType t) const;
    std::uint64_t maxPages(mem::MemType t) const;
    double weight(mem::MemType t) const;

    /** Frames of tier t currently backing this VM. */
    std::uint64_t framesOf(mem::MemType t) const
    {
        return p2m_.populatedOfTier(t);
    }

    /** Gpfns currently backed by FastMem (VMM-migration bookkeeping). */
    std::unordered_set<Gpfn> &fastBacked() { return fast_backed_; }

    /** Cumulative LLC misses reported for this VM (Equation 1 input). */
    std::uint64_t llcMisses() const { return llc_misses_; }
    void reportLlcMisses(std::uint64_t cumulative)
    {
        llc_misses_ = cumulative;
    }

  private:
    friend class Vmm;

    VmId id_;
    mem::OwnerId owner_;
    guestos::GuestKernel &kernel_;
    VmConfig cfg_;
    P2m p2m_;
    std::unordered_set<Gpfn> fast_backed_;
    std::uint64_t llc_misses_ = 0;
};

/** The hypervisor. */
class Vmm
{
  public:
    explicit Vmm(mem::MachineMemory &machine);
    ~Vmm();

    Vmm(const Vmm &) = delete;
    Vmm &operator=(const Vmm &) = delete;

    mem::MachineMemory &machine() { return machine_; }

    /**
     * Register a VM: builds its context, wires the guest's balloon
     * front-end to this VMM, and boot-populates each guest node to
     * its initial reservation.
     */
    VmId registerVm(guestos::GuestKernel &kernel, VmConfig cfg);

    std::size_t numVms() const { return vms_.size(); }
    VmContext &vm(VmId id);

    /** Install the fairness policy (default: first-come free pool). */
    void setFairness(std::unique_ptr<FairnessPolicy> policy);
    FairnessPolicy &fairness() { return *fairness_; }

    /**
     * Back `gpfns` of the VM's guest node with machine frames,
     * gated by the fairness policy. Returns frames granted (prefix).
     */
    std::uint64_t populatePages(VmContext &vm, unsigned guest_node,
                                const guestos::UnpopulatedView &gpfns);

    /** Release the machine frames behind `gpfns`. */
    void unpopulatePages(VmContext &vm, unsigned guest_node,
                         const std::vector<Gpfn> &gpfns);

    /**
     * Allocate frames of a tier directly (bypassing fairness); used
     * by the migration engine for destination frames. Returns what
     * was available.
     */
    std::vector<mem::Mfn> allocFrames(VmContext &vm, mem::MemType t,
                                      std::uint64_t n);

    std::uint64_t totalFrames(mem::MemType t) const;
    std::uint64_t freeFrames(mem::MemType t) const;
    std::uint64_t usedFrames(mem::MemType t) const;

    /** VMM-side statistics (frame occupancy per tier, per-VM backing). */
    sim::StatGroup &stats() { return stats_; }
    /** Refresh stats_ from live machine/P2M state. */
    void syncStats();

  private:
    /** The adapter a guest balloon front-end talks to. */
    class BalloonAdapter final : public guestos::BalloonBackendIf
    {
      public:
        BalloonAdapter(Vmm &vmm, VmId id) : vmm_(vmm), id_(id) {}

        std::uint64_t
        populatePages(unsigned guest_node,
                      const guestos::UnpopulatedView &gpfns) override
        {
            return vmm_.populatePages(vmm_.vm(id_), guest_node, gpfns);
        }

        void
        unpopulatePages(unsigned guest_node,
                        const std::vector<Gpfn> &gpfns) override
        {
            vmm_.unpopulatePages(vmm_.vm(id_), guest_node, gpfns);
        }

      private:
        Vmm &vmm_;
        VmId id_;
    };

    /** Tier the backing frames for a guest node should come from. */
    mem::MemType backingTier(const VmContext &vm,
                             unsigned guest_node) const;

    mem::MachineMemory &machine_;
    std::unique_ptr<FairnessPolicy> fairness_;
    std::vector<std::unique_ptr<VmContext>> vms_;
    std::vector<std::unique_ptr<BalloonAdapter>> adapters_;
    sim::StatGroup stats_{"vmm"};
};

} // namespace hos::vmm

#endif // HOS_VMM_VMM_HH
