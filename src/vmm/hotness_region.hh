/**
 * @file
 * DAMON-style adaptive region hotness tracking.
 *
 * The per-PTE scanner's cost grows linearly with the scanned address
 * space (Observation 4). This backend instead maintains a bounded set
 * of contiguous regions per VM and samples a fixed number of probe
 * pages per region per interval, so the scan cost is
 *
 *     regions (<= region_max) * region_probes * per_pte_ns  + flush
 *
 * — flat regardless of guest footprint. The exchange rate is spatial
 * resolution: a region's heat is the EWMA of its probe hit-rate, and
 * every page in a hot region is treated as hot. Resolution adapts to
 * the workload exactly as in DAMON (Park et al.): probes alternate
 * between a region's two halves, and when the halves' accumulated
 * hit-rates disagree the region splits; adjacent regions whose heats
 * agree merge back, keeping the region count within
 * [region_min, region_max].
 *
 * Scopes mirror the per-PTE backend:
 *  - Full-VM: regions tile the whole gpfn space.
 *  - OS-guided (coordinated): regions tile the tracking-list VMA
 *    ranges (page-number units of each process's VA space), probes
 *    resolve through the owning page table, and exception-listed
 *    pages contribute no heat. Re-published identical directives keep
 *    the learned regions; changed directives re-tile, carrying heat
 *    over from overlapping old regions.
 *
 * Hot-candidate emission feeds the same migration paths as the
 * per-PTE scan: pages of over-threshold regions are emitted (rotating
 * through a per-region cursor, skipping already-fast pages), capped
 * by the promote budget, with their page heat raised to the region
 * heat so engine eviction ordering and the hos::xray shadow stay
 * meaningful.
 */

#ifndef HOS_VMM_HOTNESS_REGION_HH
#define HOS_VMM_HOTNESS_REGION_HH

#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "vmm/hotness_tracker.hh"

namespace hos::vmm {

/** One monitored region, in page-number units. */
struct HotRegion
{
    /** Owning process for guided (VA) regions; noProcess = gpfn space. */
    guestos::ProcessId pid = guestos::noProcess;
    std::uint64_t lo = 0; ///< first page number
    std::uint64_t hi = 0; ///< one past the last page number
    /** EWMA heat on the same scale as per-page heat (converges 127). */
    std::uint16_t heat = 0;
    /** Accumulated (decayed) split evidence per half. */
    std::uint32_t half_probes[2] = {0, 0};
    std::uint32_t half_hits[2] = {0, 0};
    /** Candidate-emission resume offset within the region. */
    std::uint64_t emit_cursor = 0;

    std::uint64_t pages() const { return hi - lo; }
};

/** Adaptive region-sampling backend. */
class RegionTracker final : public HotnessTracker
{
  public:
    RegionTracker(VmContext &vm, HotnessConfig cfg);

    const char *backendName() const override { return "region"; }

    ScanResult scanOnce() override;

    /** The live region set (tests assert its tiling invariants). */
    const std::vector<HotRegion> &regions() const { return regions_; }

  private:
    /** (Re)build the region set when the tracked space changed. */
    void syncSpace();
    void tileFullVm();
    void tileGuided(const TrackingDirectives &d);
    /** Heat of the old region covering `page` for `pid`, or 0. */
    std::uint16_t inheritedHeat(guestos::ProcessId pid,
                                std::uint64_t page) const;

    /** Probe one region's pages, updating its heat and evidence. */
    void probeRegion(HotRegion &r, ScanResult &res);
    /** Split/merge pass plus region-count floor enforcement. */
    void adjustRegions(ScanResult &res);
    /**
     * Emit hot-region pages into res.hot, capped by the promote
     * budget. Returns the charged emission-walk cost.
     */
    sim::Duration emitCandidates(ScanResult &res);

    std::vector<HotRegion> regions_;
    /** The directive set regions_ currently tiles (guided mode). */
    std::vector<TrackingRange> tracked_ranges_;
    std::uint64_t directives_version_ = 0;
    bool guided_ = false;
    /** Emission fairness: which region starts the next emit pass. */
    std::size_t emit_region_cursor_ = 0;
    sim::Rng rng_;
};

} // namespace hos::vmm

#endif // HOS_VMM_HOTNESS_REGION_HH
