#include "vmm/p2m.hh"

#include "sim/log.hh"

namespace hos::vmm {

P2m::P2m(std::uint64_t num_gpfns)
    : map_(num_gpfns, mem::invalidMfn), tier_(num_gpfns, 0xff)
{
}

void
P2m::set(Gpfn gpfn, mem::Mfn mfn, mem::MemType tier)
{
    hos_assert(gpfn < map_.size(), "gpfn out of P2M range");
    hos_assert(mfn != mem::invalidMfn, "mapping invalid MFN");
    hos_assert(static_cast<std::size_t>(tier) < tier_count_.size(),
               "bad memory tier %u", static_cast<unsigned>(tier));
    if (map_[gpfn] == mem::invalidMfn) {
        ++populated_count_;
    } else {
        // Retarget (migration): drop the old tier count.
        --tier_count_[tier_[gpfn]];
    }
    map_[gpfn] = mfn;
    tier_[gpfn] = static_cast<std::uint8_t>(tier);
    ++tier_count_[static_cast<std::size_t>(tier)];
    if (hook_)
        hook_(gpfn, tier);
}

void
P2m::clear(Gpfn gpfn)
{
    hos_assert(gpfn < map_.size(), "gpfn out of P2M range");
    hos_assert(map_[gpfn] != mem::invalidMfn, "clearing unmapped gpfn");
    --tier_count_[tier_[gpfn]];
    map_[gpfn] = mem::invalidMfn;
    tier_[gpfn] = 0xff;
    --populated_count_;
    if (hook_)
        hook_(gpfn, mem::MemType::SlowMem);
}

bool
P2m::populated(Gpfn gpfn) const
{
    hos_assert(gpfn < map_.size(), "gpfn out of P2M range");
    return map_[gpfn] != mem::invalidMfn;
}

mem::Mfn
P2m::mfnOf(Gpfn gpfn) const
{
    hos_assert(gpfn < map_.size(), "gpfn out of P2M range");
    return map_[gpfn];
}

mem::MemType
P2m::tierOf(Gpfn gpfn) const
{
    hos_assert(populated(gpfn), "tier of unpopulated gpfn");
    return static_cast<mem::MemType>(tier_[gpfn]);
}

std::uint64_t
P2m::populatedOfTier(mem::MemType t) const
{
    return tier_count_[static_cast<std::size_t>(t)];
}

} // namespace hos::vmm
