#include "vmm/migration_engine.hh"

#include <algorithm>

#include "mem/migration_cost.hh"
#include "prof/prof.hh"
#include "sim/log.hh"
#include "trace/trace.hh"
#include "xray/xray.hh"

namespace hos::vmm {

MigrationEngine::MigrationEngine(Vmm &vmm) : vmm_(vmm) {}

VmmMigrationResult
MigrationEngine::migrateBacking(VmContext &vm,
                                const std::vector<Gpfn> &gpfns,
                                mem::MemType dst)
{
    VmmMigrationResult res;
    P2m &p2m = vm.p2m();
    auto &machine = vmm_.machine();
    if (!machine.hasType(dst))
        return res;
    mem::MachineNode &dst_node = machine.nodeByType(dst);

    const auto vm_id = static_cast<std::uint16_t>(vm.id());
    const auto dst_tier = static_cast<std::uint8_t>(dst);

    trace::emit(trace::EventType::MigrationStart,
                vm.kernel().events().now(), gpfns.size(),
                static_cast<std::uint64_t>(dst), 0, 0, vm_id);
    {
        HOS_PROF_SPAN(remap_span, prof::SpanKind::Remap,
                      vm.kernel().events(), vm_id, dst_tier);
        auto *xr = xray::active();
        const sim::Tick now = vm.kernel().events().now();
        std::uint32_t rank = 0;
        for (Gpfn gpfn : gpfns) {
            const std::uint32_t my_rank = rank++;
            if (!p2m.populated(gpfn))
                continue; // ballooned away since the candidate was chosen
            if (p2m.tierOf(gpfn) == dst)
                continue;
            auto frame = dst_node.allocFrame(vm.owner());
            if (!frame) {
                ++res.no_frames;
                if (xr) {
                    xr->onSkip(vm_id, gpfn,
                               xray::EventKind::SkipNoFrames,
                               vm.kernel().pages().page(gpfn).heat(),
                               my_rank, now);
                }
                continue;
            }
            const mem::Mfn old = p2m.mfnOf(gpfn);
            machine.nodeOfMfn(old).freeFrame(old);
            p2m.set(gpfn, *frame, dst);
            if (dst == mem::MemType::FastMem)
                vm.fastBacked().insert(gpfn);
            else
                vm.fastBacked().erase(gpfn);
            ++res.migrated;
            if (xr) {
                xr->stageRank(my_rank);
                xr->onTierChange(vm_id, gpfn, dst_tier, now);
            }
        }
    }

    if (res.migrated > 0) {
        // Charge copy and shootdown separately so each lands in its
        // own span cell; the integer sum (and res.cost) is unchanged.
        const sim::Duration copy_cost =
            mem::MigrationCostModel::batchCost(res.migrated);
        const sim::Duration shootdown_cost =
            vm.kernel().tlb().shootdownCost(res.migrated);
        {
            HOS_PROF_SPAN(copy_span, prof::SpanKind::BatchCopy,
                          vm.kernel().events(), vm_id, dst_tier);
            vm.kernel().charge(guestos::OverheadKind::Migration,
                               copy_cost);
        }
        {
            HOS_PROF_SPAN(tlb_span, prof::SpanKind::TlbShootdown,
                          vm.kernel().events(), vm_id, dst_tier);
            vm.kernel().charge(guestos::OverheadKind::Migration,
                               shootdown_cost);
        }
        res.cost = copy_cost + shootdown_cost;
        migrated_.inc(res.migrated);
    }
    trace::emit(trace::EventType::MigrationComplete,
                vm.kernel().events().now(), res.migrated, res.no_frames,
                static_cast<std::uint64_t>(dst), res.cost,
                static_cast<std::uint16_t>(vm.id()));
    return res;
}

std::vector<Gpfn>
MigrationEngine::coldestFastBacked(VmContext &vm, std::uint64_t n)
{
    // Sample-and-sort over the fast-backed set: cheap and close
    // enough to true LRU for eviction purposes.
    auto &fast = vm.fastBacked();
    auto &pages = vm.kernel().pages();

    std::vector<Gpfn> sample;
    const std::uint64_t sample_cap = std::max<std::uint64_t>(n * 4, 1024);
    sample.reserve(std::min<std::uint64_t>(sample_cap, fast.size()));
    // The sample is fully re-sorted by heat below; bucket order only
    // picks *which* pages get sampled, and the golden determinism
    // suite pins that choice.
    // hos-analyze: ordered-insensitive (re-sorted; goldens pin it)
    for (Gpfn pfn : fast) {
        sample.push_back(pfn);
        if (sample.size() >= sample_cap)
            break;
    }
    std::sort(sample.begin(), sample.end(), [&](Gpfn a, Gpfn b) {
        return pages.page(a).heat() < pages.page(b).heat();
    });
    if (sample.size() > n)
        sample.resize(n);
    return sample;
}

bool
MigrationEngine::exchangeBacking(VmContext &vm, Gpfn promote, Gpfn evict)
{
    P2m &p2m = vm.p2m();
    if (!p2m.populated(promote) || !p2m.populated(evict))
        return false;
    if (p2m.tierOf(promote) == mem::MemType::FastMem ||
        p2m.tierOf(evict) != mem::MemType::FastMem) {
        return false;
    }
    const mem::Mfn slow_mfn = p2m.mfnOf(promote);
    const mem::Mfn fast_mfn = p2m.mfnOf(evict);
    const mem::MemType slow_tier = p2m.tierOf(promote);
    p2m.set(promote, fast_mfn, mem::MemType::FastMem);
    p2m.set(evict, slow_mfn, slow_tier);
    vm.fastBacked().insert(promote);
    vm.fastBacked().erase(evict);
    if (auto *xr = xray::active()) {
        // The promote leg consumes any rank the caller staged; the
        // evicted victim's demotion carries no candidate rank.
        const auto vm_id = static_cast<std::uint16_t>(vm.id());
        const sim::Tick now = vm.kernel().events().now();
        xr->onTierChange(
            vm_id, promote,
            static_cast<std::uint8_t>(mem::MemType::FastMem), now);
        xr->onTierChange(vm_id, evict,
                         static_cast<std::uint8_t>(slow_tier), now);
    }
    return true;
}

VmmMigrationResult
MigrationEngine::promoteWithEviction(VmContext &vm,
                                     const std::vector<Gpfn> &hot,
                                     std::uint64_t budget)
{
    VmmMigrationResult total;
    const auto vm_id = static_cast<std::uint16_t>(vm.id());
    constexpr auto fast_tier =
        static_cast<std::uint8_t>(mem::MemType::FastMem);
    HOS_PROF_SPAN(epoch_span, prof::SpanKind::MigrationEpoch,
                  vm.kernel().events(), vm_id, fast_tier);

    // Promotion candidates: hot pages not already fast-backed. The
    // rate-limit budget applies to *useful* candidates only.
    std::vector<Gpfn> promote;
    promote.reserve(std::min<std::size_t>(hot.size(), budget));
    const P2m &p2m = vm.p2m();
    auto *xr = xray::active();
    {
        HOS_PROF_SPAN(select_span, prof::SpanKind::CandidateSelect,
                      vm.kernel().events(), vm_id, fast_tier);
        const sim::Tick now = vm.kernel().events().now();
        for (Gpfn pfn : hot) {
            const bool candidate =
                p2m.populated(pfn) &&
                p2m.tierOf(pfn) != mem::MemType::FastMem;
            if (promote.size() >= budget) {
                if (!xr)
                    break;
                // Still-hot candidates cut by the rate-limit budget:
                // the provenance the lag histograms need to explain.
                if (candidate) {
                    xr->onSkip(vm_id, pfn, xray::EventKind::SkipBudget,
                               vm.kernel().pages().page(pfn).heat(),
                               static_cast<std::uint32_t>(
                                   promote.size()),
                               now);
                }
                continue;
            }
            if (candidate)
                promote.push_back(pfn);
        }
    }
    if (promote.empty())
        return total;

    // Use any free FastMem frames first.
    const std::uint64_t free_fast =
        vmm_.freeFrames(mem::MemType::FastMem);
    std::size_t idx = 0;
    if (free_fast > 0) {
        std::vector<Gpfn> head(
            promote.begin(),
            promote.begin() + std::min<std::size_t>(free_fast,
                                                    promote.size()));
        const auto moved =
            migrateBacking(vm, head, mem::MemType::FastMem);
        total.migrated += moved.migrated;
        total.cost += moved.cost;
        idx = head.size();
    }

    // Remaining promotions: pairwise exchange with the coldest
    // fast-backed pages (HeteroVisor's promote-hot/evict-LRU cycle;
    // works even when both tiers are fully committed). Skip victims
    // that are themselves hot — no churn for nothing.
    if (idx < promote.size()) {
        std::vector<Gpfn> victims;
        {
            HOS_PROF_SPAN(select_span, prof::SpanKind::CandidateSelect,
                          vm.kernel().events(), vm_id, fast_tier);
            victims = coldestFastBacked(vm, promote.size() - idx);
        }
        auto &pages = vm.kernel().pages();
        std::uint64_t exchanged = 0;
        {
            HOS_PROF_SPAN(remap_span, prof::SpanKind::Remap,
                          vm.kernel().events(), vm_id, fast_tier);
            const sim::Tick now = vm.kernel().events().now();
            for (Gpfn victim : victims) {
                if (idx >= promote.size())
                    break;
                if (pages.page(victim).heat() >=
                    pages.page(promote[idx]).heat()) {
                    if (xr) {
                        xr->onSkip(vm_id, promote[idx],
                                   xray::EventKind::SkipVictimHot,
                                   pages.page(promote[idx]).heat(),
                                   static_cast<std::uint32_t>(idx),
                                   now);
                    }
                    continue; // eviction would hurt more than it helps
                }
                if (xr)
                    xr->stageRank(static_cast<std::uint32_t>(idx));
                if (exchangeBacking(vm, promote[idx], victim)) {
                    ++idx;
                    ++exchanged;
                }
            }
            if (xr) {
                // Candidates left behind when the victim pool ran dry.
                for (std::size_t i = idx; i < promote.size(); ++i) {
                    xr->onSkip(vm_id, promote[i],
                               xray::EventKind::SkipNoFrames,
                               pages.page(promote[i]).heat(),
                               static_cast<std::uint32_t>(i), now);
                }
            }
        }
        if (exchanged > 0) {
            // Each exchange is two page moves plus shootdowns; copy
            // and shootdown are charged under their own spans so the
            // ledger splits them, summing to the same total.
            const sim::Duration copy_cost =
                mem::MigrationCostModel::batchCost(exchanged * 2);
            const sim::Duration shootdown_cost =
                vm.kernel().tlb().shootdownCost(exchanged * 2);
            {
                HOS_PROF_SPAN(copy_span, prof::SpanKind::BatchCopy,
                              vm.kernel().events(), vm_id, fast_tier);
                vm.kernel().charge(guestos::OverheadKind::Migration,
                                   copy_cost);
            }
            {
                HOS_PROF_SPAN(tlb_span, prof::SpanKind::TlbShootdown,
                              vm.kernel().events(), vm_id, fast_tier);
                vm.kernel().charge(guestos::OverheadKind::Migration,
                                   shootdown_cost);
            }
            const sim::Duration cost = copy_cost + shootdown_cost;
            migrated_.inc(exchanged * 2);
            total.migrated += exchanged * 2;
            total.cost += cost;
            trace::emit(trace::EventType::MigrationComplete,
                        vm.kernel().events().now(), exchanged * 2, 0,
                        static_cast<std::uint64_t>(mem::MemType::FastMem),
                        cost, vm_id);
        }
        total.no_frames = promote.size() - idx;
    }
    return total;
}

} // namespace hos::vmm
