/**
 * @file
 * The paper-faithful per-PTE access-bit scanner (Sections 2.3, 4.1).
 *
 * Periodically scans page-table entries, recording access bits and
 * resetting them — which requires TLB invalidations so the hardware
 * re-sets the bits on the next touch. The scan plus the induced
 * refill walks are the dominant management overhead the paper
 * measures (Figure 8); every scan charges that cost to the VM it
 * tracks.
 *
 * Two scanning scopes:
 *  - Full-VM (HeteroVisor / VMM-exclusive): a cursor sweeps the whole
 *    guest gpfn space, `pages_per_scan` pages per interval.
 *  - OS-guided (HeteroOS-coordinated): only the VMA ranges on the
 *    guest's tracking list are walked, and exception-listed pages
 *    (short-lived I/O, page-table, DMA) are skipped — the guest's
 *    knowledge shrinking the VMM's work.
 *
 * Scan cost grows linearly with the scanned address space — the
 * Observation 4 scaling limit the RegionTracker backend
 * (hotness_region.hh) removes. This implementation is pinned
 * bit-identical to the pre-interface tracker by the golden
 * determinism tests.
 */

#ifndef HOS_VMM_HOTNESS_PTE_HH
#define HOS_VMM_HOTNESS_PTE_HH

#include <cstdint>

#include "vmm/hotness_tracker.hh"

namespace hos::vmm {

/** Per-PTE access-bit scanning backend. */
class PteScanTracker final : public HotnessTracker
{
  public:
    PteScanTracker(VmContext &vm, HotnessConfig cfg);

    const char *backendName() const override { return "pte_scan"; }

    ScanResult scanOnce() override;

  private:
    Gpfn cursor_ = 0;
    std::size_t range_cursor_ = 0; ///< guided-scan resume point
    std::uint64_t va_cursor_ = 0;
    std::uint64_t directives_version_ = 0;
};

} // namespace hos::vmm

#endif // HOS_VMM_HOTNESS_PTE_HH
