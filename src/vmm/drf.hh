/**
 * @file
 * Weighted Dominant Resource Fairness (Algorithm 1, Section 4.2).
 *
 * Each memory type is a resource. A VM's share of resource j is
 * weight_j * allocated_j / total_j; its *dominant share* is the
 * maximum over resources. Requests are granted while they fit; when a
 * resource runs dry, the policy reclaims overcommit from the VM with
 * the highest dominant share — but only if that share exceeds the
 * requester's, which is what protects a VM whose dominant resource
 * differs from the contended one (the paper's Graphchi-vs-Metis
 * scenario in Figure 13).
 *
 * Weights (FastMem=2, SlowMem=1 by default) keep small-but-precious
 * FastMem from being drowned out by sheer SlowMem page counts.
 */

#ifndef HOS_VMM_DRF_HH
#define HOS_VMM_DRF_HH

#include "vmm/vmm.hh"

namespace hos::vmm {

/** Weighted DRF across memory types. */
class DrfFairness final : public FairnessPolicy
{
  public:
    const char *name() const override { return "weighted-drf"; }

    std::uint64_t approve(Vmm &vmm, VmContext &requester, mem::MemType t,
                          std::uint64_t n) override;

    /** Weighted share of one resource held by a VM. */
    static double resourceShare(const Vmm &vmm, const VmContext &vm,
                                mem::MemType t);

    /** Weighted dominant share of a VM (Algorithm 1 line 10). */
    static double dominantShare(const Vmm &vmm, const VmContext &vm);
};

} // namespace hos::vmm

#endif // HOS_VMM_DRF_HH
