/**
 * @file
 * Single-resource max-min fairness (the baseline of Section 4.2).
 *
 * Each memory type is managed independently: a VM's basic share (its
 * minimum reservation) is always honored, unused memory is handed to
 * whoever asks (overcommit), and when the pool runs dry the policy
 * balloons back overcommitted pages from the VM holding the most of
 * *that one resource*. The paper's Figure 13 shows the failure mode:
 * because fairness is per-resource, a memory-hungry VM can drain a
 * neighbour's SlowMem while staying "fair" on FastMem.
 */

#ifndef HOS_VMM_MAX_MIN_HH
#define HOS_VMM_MAX_MIN_HH

#include "vmm/vmm.hh"

namespace hos::vmm {

/** Single-resource max-min fairness. */
class MaxMinFairness final : public FairnessPolicy
{
  public:
    const char *name() const override { return "max-min"; }

    std::uint64_t approve(Vmm &vmm, VmContext &requester, mem::MemType t,
                          std::uint64_t n) override;
};

} // namespace hos::vmm

#endif // HOS_VMM_MAX_MIN_HH
