#include "vmm/max_min.hh"

#include <algorithm>

#include "vmm/ballooning.hh"

namespace hos::vmm {

std::uint64_t
MaxMinFairness::approve(Vmm &vmm, VmContext &requester, mem::MemType t,
                        std::uint64_t n)
{
    // Below the basic share: always granted (reclaiming from
    // overcommitted neighbours if the pool is dry).
    // Above it: granted while memory is free, and the policy will
    // still balloon *other* VMs' overcommit — max-min on a single
    // resource has no cross-resource brake, which is precisely the
    // paper's critique.
    std::uint64_t deficit =
        n > vmm.freeFrames(t) ? n - vmm.freeFrames(t) : 0;

    // Single-resource max-min manages exactly one resource — the
    // scarce FastMem. Guarantees exist for it alone; SlowMem is a
    // free-for-all pool (the paper's Figure 13 failure mode: a
    // memory-hungry VM drains a neighbour's SlowMem while staying
    // "fair" on FastMem).
    const bool managed = t == mem::MemType::FastMem;
    const ReclaimCap cap =
        managed ? ReclaimCap::PerTypeMin : ReclaimCap::Unbounded;

    while (deficit > 0) {
        VmContext *victim = nullptr;
        std::uint64_t best = 0;
        for (VmId id = 0; id < vmm.numVms(); ++id) {
            VmContext &vm = vmm.vm(id);
            if (vm.id() == requester.id())
                continue;
            const std::uint64_t oc =
                managed ? overcommitFrames(vm, t) : vm.framesOf(t);
            if (oc > best) {
                best = oc;
                victim = &vm;
            }
        }
        if (!victim)
            break;
        const std::uint64_t got =
            balloonReclaim(vmm, *victim, t, deficit, cap);
        if (got == 0)
            break;
        deficit -= std::min(deficit, got);
    }

    return std::min(n, vmm.freeFrames(t));
}

} // namespace hos::vmm
