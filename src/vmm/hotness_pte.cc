#include "vmm/hotness_pte.hh"

#include "prof/prof.hh"
#include "sim/log.hh"

namespace hos::vmm {

PteScanTracker::PteScanTracker(VmContext &vm, HotnessConfig cfg)
    : HotnessTracker(vm, cfg)
{
}

ScanResult
PteScanTracker::scanOnce()
{
    ScanResult res;
    auto &kernel = vm_.kernel();
    auto &pages = kernel.pages();
    const auto vm_id = static_cast<std::uint16_t>(vm_.id());
    HOS_PROF_SPAN(scan_span, prof::SpanKind::ScanPass, kernel.events(),
                  vm_id);
    // Adaptive reservation: hot counts are stable scan to scan, so
    // last scan's size (plus slack) kills the reallocation churn.
    res.hot.reserve(last_hot_ + 64);

    if (ring_ && ring_->hasDirectives()) {
        // OS-guided: walk only the tracking-list VMA ranges through
        // the owning process's page table, skipping exception pages.
        // A persistent cursor resumes where the previous scan left
        // off, so each round costs at most pages_per_scan PTEs.
        const TrackingDirectives &d = ring_->directives();
        if (d.version != directives_version_) {
            directives_version_ = d.version;
            range_cursor_ = 0;
            va_cursor_ = 0;
        }
        std::size_t ranges_stepped = 0;
        while (!d.ranges.empty() &&
               res.pages_scanned < cfg_.pages_per_scan &&
               ranges_stepped < d.ranges.size()) {
            HOS_PROF_SPAN(chunk_span, prof::SpanKind::ChunkWalk,
                          kernel.events(), vm_id);
            if (range_cursor_ >= d.ranges.size()) {
                range_cursor_ = 0;
                va_cursor_ = 0;
            }
            const TrackingRange &r = d.ranges[range_cursor_];
            if (!kernel.hasProcess(r.pid)) {
                ++range_cursor_;
                va_cursor_ = 0;
                ++ranges_stepped;
                continue;
            }
            const std::uint64_t lo =
                (va_cursor_ > r.va_lo && va_cursor_ < r.va_hi)
                    ? va_cursor_
                    : r.va_lo;
            std::uint64_t last_va = lo;
            auto &as = kernel.process(r.pid);
            const std::uint64_t budget =
                cfg_.pages_per_scan - res.pages_scanned;
            const std::uint64_t visited = as.pageTable().scanRange(
                lo, r.va_hi,
                [&](std::uint64_t va, const guestos::PteView &pte) {
                    last_va = va;
                    guestos::PageRef p = pages.page(pte.pfn);
                    if (d.exception && d.exception(p))
                        return;
                    const bool accessed =
                        pte.accessed || p.pte_accessed();
                    p.setPteAccessed(false);
                    heatPage(p, accessed, res);
                },
                /*clear_accessed=*/true, budget);
            res.pages_scanned += visited;
            if (visited < budget) {
                // Range exhausted: move to the next one.
                ++range_cursor_;
                va_cursor_ = 0;
                ++ranges_stepped;
            } else {
                va_cursor_ = last_va + mem::pageSize;
            }
        }
    } else {
        // Full-VM sweep: the VMM has no idea what the pages are, so
        // it walks everything, pages_per_scan at a time (HeteroVisor).
        // Free pfns count against `step` but not `visited` (the scan
        // budget is real work, the span bound is one lap); runs of
        // them are skipped via the allocated-range hint at the cost
        // the one-at-a-time walk would have paid in steps.
        const std::uint64_t span = pages.size();
        std::uint64_t visited = 0;
        std::uint64_t step = 0;
        HOS_PROF_SPAN(chunk_span, prof::SpanKind::ChunkWalk,
                      kernel.events(), vm_id);
        while (step < span && visited < cfg_.pages_per_scan) {
            guestos::PageRef p = pages.page(cursor_);
            if (!p.allocated()) {
                // Skipping a free run of length L consumes exactly L
                // steps, so cursor and visited counts match the
                // page-at-a-time walk (free_run_skip=false) bit for
                // bit.
                const std::uint64_t run =
                    cfg_.free_run_skip
                        ? pages.freeRunLength(cursor_, span - step)
                        : 1;
                step += run;
                cursor_ += run; // freeRunLength stops at the array end
                if (cursor_ == span)
                    cursor_ = 0;
                continue;
            }
            ++step;
            if (++cursor_ == span)
                cursor_ = 0;
            ++visited;
            const bool accessed = p.pte_accessed();
            p.setPteAccessed(false);
            heatPage(p, accessed, res);
        }
        res.pages_scanned = visited;
    }

    // Charge: per-PTE software cost plus the forced TLB invalidation
    // (needed so access bits get re-set by the hardware). The two
    // parts are charged separately — PTE walking under the scan span,
    // flush under a TlbShootdown child — summing to the same total.
    const double scan_ns =
        static_cast<double>(res.pages_scanned) * cfg_.per_pte_ns;
    const auto walk_cost = static_cast<sim::Duration>(scan_ns);
    const sim::Duration flush_cost =
        kernel.tlb().scanFlushCost(res.pages_scanned, res.accessed);
    kernel.charge(guestos::OverheadKind::HotScan, walk_cost);
    {
        HOS_PROF_SPAN(tlb_span, prof::SpanKind::TlbShootdown,
                      kernel.events(), vm_id);
        kernel.charge(guestos::OverheadKind::HotScan, flush_cost);
    }
    res.cost = walk_cost + flush_cost;

    finishScan(res);
    return res;
}

} // namespace hos::vmm
