#include "vmm/ballooning.hh"

#include <algorithm>

#include "prof/prof.hh"
#include "trace/trace.hh"

namespace hos::vmm {

std::uint64_t
overcommitFrames(const VmContext &vm, mem::MemType t)
{
    const std::uint64_t have = vm.framesOf(t);
    const std::uint64_t min = vm.minPages(t);
    return have > min ? have - min : 0;
}

std::uint64_t
totalOvercommitFrames(const VmContext &vm)
{
    std::uint64_t held = 0;
    std::uint64_t min = 0;
    for (std::size_t i = 0; i < mem::numMemTypes; ++i) {
        const auto t = static_cast<mem::MemType>(i);
        held += vm.framesOf(t);
        min += vm.minPages(t);
    }
    return held > min ? held - min : 0;
}

std::uint64_t
balloonReclaim(Vmm &vmm, VmContext &victim, mem::MemType t,
               std::uint64_t n, ReclaimCap cap)
{
    const std::uint64_t held = victim.framesOf(t);
    const std::uint64_t limit =
        cap == ReclaimCap::PerTypeMin
            ? overcommitFrames(victim, t)
            : held - std::min(held, held / 8); // leave a 1/8 floor
    n = std::min(n, limit);
    if (n == 0)
        return 0;

    HOS_PROF_SPAN(balloon_span, prof::SpanKind::BalloonOp,
                  victim.kernel().events(),
                  static_cast<std::uint16_t>(victim.id()),
                  static_cast<std::uint8_t>(t));
    const std::uint64_t free_before = vmm.freeFrames(t);
    auto &balloon = victim.kernel().balloon();

    if (victim.kernel().hasType(t)) {
        balloon.surrenderPages(t, n);
    } else {
        // Heterogeneity-hidden guest: it cannot name the tier, so ask
        // for generic pages until enough frames of the wanted tier
        // come back (bounded effort).
        const mem::MemType guest_type =
            victim.kernel().node(0).memType();
        std::uint64_t freed = 0;
        for (int round = 0; round < 4 && freed < n; ++round) {
            const std::uint64_t got =
                balloon.surrenderPages(guest_type, n - freed);
            if (got == 0)
                break;
            freed = vmm.freeFrames(t) - free_before;
        }
    }
    const std::uint64_t free_after = vmm.freeFrames(t);
    const std::uint64_t freed =
        free_after > free_before ? free_after - free_before : 0;
    trace::emit(trace::EventType::BalloonReclaim,
                victim.kernel().events().now(), victim.id(),
                static_cast<std::uint64_t>(t), freed, 0,
                static_cast<std::uint16_t>(victim.id()));
    return freed;
}

} // namespace hos::vmm
