/**
 * @file
 * XrayReport: the deterministic, serializable form of a Recorder's
 * telemetry (schema "hos-xray-1") embedded in core::RunRecord /
 * results.json and consumed by the hos-explain CLI.
 *
 * Everything here is integer state plus count ratios; two runs of
 * the same scenario serialize byte-identically.
 */

#ifndef HOS_XRAY_REPORT_HH
#define HOS_XRAY_REPORT_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/json.hh"
#include "xray/xray.hh"

namespace hos::xray {

/** Per-tier placement aggregates of one VM. */
struct XrayTier
{
    std::uint64_t pages = 0;
    std::uint64_t hot_pages = 0;
    std::uint64_t heat_mass = 0;
    std::uint64_t hot_heat_mass = 0;
};

/** One entry of the top-misplaced list. */
struct XrayTopPage
{
    std::uint64_t gpfn = 0;
    std::uint16_t heat = 0;
    std::uint8_t tier = noTier;
};

/** One exported lifecycle ring. */
struct XrayPage
{
    std::uint64_t gpfn = 0;
    std::uint64_t total_events = 0; ///< including dropped-by-depth
    std::vector<Event> events;      ///< oldest first
};

/** Everything recorded for one VM. */
struct XrayVm
{
    std::uint16_t vm = 0;
    std::uint16_t threshold = 0;
    XrayTier tiers[numTiers];
    std::uint64_t kind_counts[numEventKinds] = {};
    std::uint64_t pingpong_events = 0;
    std::uint64_t pingpong_pages = 0;
    /** Nonzero log2 buckets as (bucket_lo_ns, count), ascending. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> promote_lag;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> demote_lag;
    std::vector<XrayTopPage> top_misplaced;
    std::vector<XrayPage> pages; ///< exported rings, gpfn ascending
    std::uint64_t pages_ringed = 0; ///< rings kept (before export cut)
    std::vector<Event> vm_events;
    std::uint64_t vm_events_total = 0;

    std::uint64_t count(EventKind k) const
    {
        return kind_counts[static_cast<std::size_t>(k)];
    }
    std::uint64_t hotTotal() const;
    std::uint64_t hotMisplaced() const;
    std::uint64_t coldInFast() const;
    std::uint64_t heatMassTotal() const;
    std::uint64_t misplacedHeatMass() const;
};

/** The full report (one VM entry per guest that saw any activity). */
struct XrayReport
{
    std::uint64_t pingpong_window_ns = 0;
    std::uint32_t ring_depth = 0;
    std::vector<XrayVm> vms;

    bool empty() const { return vms.empty(); }
};

/**
 * Write one report as a JSON object:
 *
 *   { "schema": "hos-xray-1",
 *     "pingpong_window_ns": N, "ring_depth": N,
 *     "vms": [ { "vm": N, "threshold": N,
 *                "tiers": { "fast": {...}, "slow": {...}, ... },
 *                "quality": { "hot_total": N, "hot_misplaced": N, ...},
 *                "decisions": { "promote": N, ... (nonzero only) },
 *                "pingpong": { "events": N, "pages": N },
 *                "promote_lag_ns": [[lo, count], ...],
 *                "demote_lag_ns": [[lo, count], ...],
 *                "top_misplaced": [ {"gpfn": N, "heat": N,
 *                                    "tier": "slow"}, ... ],
 *                "pages": [ {"gpfn": N, "total_events": N,
 *                            "events": [...]}, ... ],
 *                "vm_events": [...], "vm_events_total": N }, ... ] }
 *
 * Ordering is fixed by the Recorder; the writer adds nothing
 * nondeterministic.
 */
void writeXrayReport(sim::JsonWriter &w, const XrayReport &report);

/**
 * Rebuild a report from its JSON form. Returns an empty report and
 * sets `error` (when given) on schema mismatch or malformed entries.
 */
XrayReport xrayReportFromJson(const sim::JsonValue &v,
                              std::string *error = nullptr);

} // namespace hos::xray

#endif // HOS_XRAY_REPORT_HH
