#include "xray/report.hh"

#include <string>

namespace hos::xray {

std::uint64_t
XrayVm::hotTotal() const
{
    std::uint64_t n = 0;
    for (const auto &t : tiers)
        n += t.hot_pages;
    return n;
}

std::uint64_t
XrayVm::hotMisplaced() const
{
    return hotTotal() - tiers[fastTier].hot_pages;
}

std::uint64_t
XrayVm::coldInFast() const
{
    return tiers[fastTier].pages - tiers[fastTier].hot_pages;
}

std::uint64_t
XrayVm::heatMassTotal() const
{
    std::uint64_t n = 0;
    for (const auto &t : tiers)
        n += t.heat_mass;
    return n;
}

std::uint64_t
XrayVm::misplacedHeatMass() const
{
    std::uint64_t n = 0;
    for (std::size_t t = 0; t < numTiers; ++t) {
        if (t != fastTier)
            n += tiers[t].hot_heat_mass;
    }
    return n;
}

namespace {

constexpr const char *kSchema = "hos-xray-1";

/** num/den in basis points (1/10000), integer-exact: src/xray emits
 *  no floating point, so reports are byte-identical across builds. */
std::uint64_t
ratioBp(std::uint64_t num, std::uint64_t den)
{
    return den == 0 ? 0 : num * 10000 / den;
}

void
writeEvent(sim::JsonWriter &w, const Event &e)
{
    w.beginObject();
    w.kv("t", e.tick);
    w.kv("kind", eventKindName(e.kind));
    if (e.tier_from != noTier)
        w.kv("from", tierName(e.tier_from));
    if (e.tier_to != noTier)
        w.kv("to", tierName(e.tier_to));
    w.kv("heat", static_cast<std::uint64_t>(e.heat));
    w.kv("threshold", static_cast<std::uint64_t>(e.threshold));
    w.kv("rank", static_cast<std::uint64_t>(e.rank));
    if (e.a0 != 0)
        w.kv("a0", e.a0);
    if (e.a1 != 0)
        w.kv("a1", e.a1);
    w.endObject();
}

void
writeLag(
    sim::JsonWriter &w, const std::string &key,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &lag)
{
    w.key(key);
    w.beginArray();
    for (const auto &[lo, count] : lag) {
        w.beginArray();
        w.value(lo);
        w.value(count);
        w.endArray();
    }
    w.endArray();
}

std::uint8_t
tierFromName(const std::string &name)
{
    for (std::uint8_t t = 0; t < numTiers; ++t) {
        if (name == tierName(t))
            return t;
    }
    return noTier;
}

bool
kindFromName(const std::string &name, EventKind &out)
{
    for (std::size_t k = 0; k < numEventKinds; ++k) {
        if (name == eventKindName(static_cast<EventKind>(k))) {
            out = static_cast<EventKind>(k);
            return true;
        }
    }
    return false;
}

bool
parseEvent(const sim::JsonValue &v, Event &e, std::string *error)
{
    if (!v.isObject()) {
        if (error)
            *error = "xray event must be an object";
        return false;
    }
    if (const auto *p = v.find("t"))
        e.tick = p->asU64();
    EventKind kind = EventKind::Alloc;
    const auto *kp = v.find("kind");
    if (kp == nullptr || !kindFromName(kp->asString(), kind)) {
        if (error)
            *error = "xray event with missing or unknown kind";
        return false;
    }
    e.kind = kind;
    if (const auto *p = v.find("from"))
        e.tier_from = tierFromName(p->asString());
    if (const auto *p = v.find("to"))
        e.tier_to = tierFromName(p->asString());
    if (const auto *p = v.find("heat"))
        e.heat = static_cast<std::uint16_t>(p->asU64());
    if (const auto *p = v.find("threshold"))
        e.threshold = static_cast<std::uint16_t>(p->asU64());
    if (const auto *p = v.find("rank"))
        e.rank = static_cast<std::uint32_t>(p->asU64());
    if (const auto *p = v.find("a0"))
        e.a0 = p->asU64();
    if (const auto *p = v.find("a1"))
        e.a1 = p->asU64();
    return true;
}

void
parseLag(const sim::JsonValue *v,
         std::vector<std::pair<std::uint64_t, std::uint64_t>> &out)
{
    if (v == nullptr || !v->isArray())
        return;
    for (const auto &pair : v->array) {
        if (pair.isArray() && pair.array.size() == 2) {
            out.emplace_back(pair.array[0].asU64(),
                             pair.array[1].asU64());
        }
    }
}

} // namespace

void
writeXrayReport(sim::JsonWriter &w, const XrayReport &report)
{
    w.beginObject();
    w.kv("schema", kSchema);
    w.kv("pingpong_window_ns", report.pingpong_window_ns);
    w.kv("ring_depth",
         static_cast<std::uint64_t>(report.ring_depth));
    w.key("vms");
    w.beginArray();
    for (const XrayVm &v : report.vms) {
        w.beginObject();
        w.kv("vm", static_cast<std::uint64_t>(v.vm));
        w.kv("threshold", static_cast<std::uint64_t>(v.threshold));

        w.key("tiers");
        w.beginObject();
        for (std::uint8_t t = 0; t < numTiers; ++t) {
            w.key(tierName(t));
            w.beginObject();
            w.kv("pages", v.tiers[t].pages);
            w.kv("hot_pages", v.tiers[t].hot_pages);
            w.kv("heat_mass", v.tiers[t].heat_mass);
            w.kv("hot_heat_mass", v.tiers[t].hot_heat_mass);
            w.endObject();
        }
        w.endObject();

        const std::uint64_t hot_total = v.hotTotal();
        const std::uint64_t live = v.tiers[fastTier].pages +
                                   v.tiers[slowTier].pages +
                                   v.tiers[mediumTier].pages;
        w.key("quality");
        w.beginObject();
        w.kv("live_pages", live);
        w.kv("hot_total", hot_total);
        w.kv("hot_misplaced", v.hotMisplaced());
        w.kv("hot_misplaced_bp",
             ratioBp(v.hotMisplaced(), hot_total));
        w.kv("cold_in_fast", v.coldInFast());
        w.kv("cold_in_fast_bp",
             ratioBp(v.coldInFast(), v.tiers[fastTier].pages));
        w.kv("heat_mass", v.heatMassTotal());
        w.kv("misplaced_heat_mass", v.misplacedHeatMass());
        w.kv("misplaced_heat_bp",
             ratioBp(v.misplacedHeatMass(),
                     v.tiers[fastTier].hot_heat_mass +
                         v.misplacedHeatMass()));
        w.endObject();

        w.key("decisions");
        w.beginObject();
        for (std::size_t k = 0; k < numEventKinds; ++k) {
            if (v.kind_counts[k] != 0) {
                w.kv(eventKindName(static_cast<EventKind>(k)),
                     v.kind_counts[k]);
            }
        }
        w.endObject();

        w.key("pingpong");
        w.beginObject();
        w.kv("events", v.pingpong_events);
        w.kv("pages", v.pingpong_pages);
        w.endObject();

        writeLag(w, "promote_lag_ns", v.promote_lag);
        writeLag(w, "demote_lag_ns", v.demote_lag);

        w.key("top_misplaced");
        w.beginArray();
        for (const XrayTopPage &p : v.top_misplaced) {
            w.beginObject();
            w.kv("gpfn", p.gpfn);
            w.kv("heat", static_cast<std::uint64_t>(p.heat));
            w.kv("tier", tierName(p.tier));
            w.endObject();
        }
        w.endArray();

        w.kv("pages_ringed", v.pages_ringed);
        w.key("pages");
        w.beginArray();
        for (const XrayPage &p : v.pages) {
            w.beginObject();
            w.kv("gpfn", p.gpfn);
            w.kv("total_events", p.total_events);
            w.key("events");
            w.beginArray();
            for (const Event &e : p.events)
                writeEvent(w, e);
            w.endArray();
            w.endObject();
        }
        w.endArray();

        w.kv("vm_events_total", v.vm_events_total);
        w.key("vm_events");
        w.beginArray();
        for (const Event &e : v.vm_events)
            writeEvent(w, e);
        w.endArray();

        w.endObject();
    }
    w.endArray();
    w.endObject();
}

XrayReport
xrayReportFromJson(const sim::JsonValue &v, std::string *error)
{
    XrayReport rep;
    if (!v.isObject()) {
        if (error)
            *error = "xray report must be a JSON object";
        return rep;
    }
    const auto *schema = v.find("schema");
    if (schema == nullptr || schema->asString() != kSchema) {
        if (error)
            *error = "xray report schema mismatch (want " +
                     std::string(kSchema) + ")";
        return rep;
    }
    if (const auto *p = v.find("pingpong_window_ns"))
        rep.pingpong_window_ns = p->asU64();
    if (const auto *p = v.find("ring_depth"))
        rep.ring_depth = static_cast<std::uint32_t>(p->asU64());

    const auto *vms = v.find("vms");
    if (vms == nullptr || !vms->isArray())
        return rep;
    for (const auto &vv : vms->array) {
        if (!vv.isObject())
            continue;
        XrayVm vm;
        if (const auto *p = vv.find("vm"))
            vm.vm = static_cast<std::uint16_t>(p->asU64());
        if (const auto *p = vv.find("threshold"))
            vm.threshold = static_cast<std::uint16_t>(p->asU64());
        if (const auto *tiers = vv.find("tiers")) {
            for (std::uint8_t t = 0; t < numTiers; ++t) {
                const auto *tv = tiers->find(tierName(t));
                if (tv == nullptr)
                    continue;
                if (const auto *p = tv->find("pages"))
                    vm.tiers[t].pages = p->asU64();
                if (const auto *p = tv->find("hot_pages"))
                    vm.tiers[t].hot_pages = p->asU64();
                if (const auto *p = tv->find("heat_mass"))
                    vm.tiers[t].heat_mass = p->asU64();
                if (const auto *p = tv->find("hot_heat_mass"))
                    vm.tiers[t].hot_heat_mass = p->asU64();
            }
        }
        if (const auto *dec = vv.find("decisions");
            dec != nullptr && dec->isObject()) {
            for (const auto &[key, val] : dec->object) {
                EventKind k = EventKind::Alloc;
                if (kindFromName(key, k)) {
                    vm.kind_counts[static_cast<std::size_t>(k)] =
                        val.asU64();
                }
            }
        }
        if (const auto *pp = vv.find("pingpong")) {
            if (const auto *p = pp->find("events"))
                vm.pingpong_events = p->asU64();
            if (const auto *p = pp->find("pages"))
                vm.pingpong_pages = p->asU64();
        }
        parseLag(vv.find("promote_lag_ns"), vm.promote_lag);
        parseLag(vv.find("demote_lag_ns"), vm.demote_lag);
        if (const auto *top = vv.find("top_misplaced");
            top != nullptr && top->isArray()) {
            for (const auto &tv : top->array) {
                XrayTopPage p;
                if (const auto *g = tv.find("gpfn"))
                    p.gpfn = g->asU64();
                if (const auto *h = tv.find("heat"))
                    p.heat = static_cast<std::uint16_t>(h->asU64());
                if (const auto *t = tv.find("tier"))
                    p.tier = tierFromName(t->asString());
                vm.top_misplaced.push_back(p);
            }
        }
        if (const auto *p = vv.find("pages_ringed"))
            vm.pages_ringed = p->asU64();
        if (const auto *pages = vv.find("pages");
            pages != nullptr && pages->isArray()) {
            for (const auto &pv : pages->array) {
                XrayPage pg;
                if (const auto *g = pv.find("gpfn"))
                    pg.gpfn = g->asU64();
                if (const auto *t = pv.find("total_events"))
                    pg.total_events = t->asU64();
                if (const auto *evs = pv.find("events");
                    evs != nullptr && evs->isArray()) {
                    for (const auto &ev : evs->array) {
                        Event e;
                        if (!parseEvent(ev, e, error))
                            return XrayReport{};
                        pg.events.push_back(e);
                    }
                }
                vm.pages.push_back(std::move(pg));
            }
        }
        if (const auto *p = vv.find("vm_events_total"))
            vm.vm_events_total = p->asU64();
        if (const auto *evs = vv.find("vm_events");
            evs != nullptr && evs->isArray()) {
            for (const auto &ev : evs->array) {
                Event e;
                if (!parseEvent(ev, e, error))
                    return XrayReport{};
                vm.vm_events.push_back(e);
            }
        }
        rep.vms.push_back(std::move(vm));
    }
    return rep;
}

} // namespace hos::xray
