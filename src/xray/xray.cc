#include "xray/xray.hh"

#include <algorithm>
#include <bit>

#include "sim/log.hh"
#include "trace/trace.hh"
#include "xray/report.hh"

namespace hos::xray {

const char *
levelName()
{
    switch (compiledLevel) {
      case 0:
        return "off";
      case 1:
        return "sampled";
      default:
        return "full";
    }
}

const char *
tierName(std::uint8_t tier)
{
    switch (tier) {
      case fastTier:
        return "fast";
      case slowTier:
        return "slow";
      case mediumTier:
        return "medium";
      default:
        return "-";
    }
}

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::Alloc:
        return "alloc";
      case EventKind::Free:
        return "free";
      case EventKind::HotCross:
        return "hot_cross";
      case EventKind::Cooled:
        return "cooled";
      case EventKind::Promote:
        return "promote";
      case EventKind::Demote:
        return "demote";
      case EventKind::SkipUnmapped:
        return "skip_unmapped";
      case EventKind::SkipUnderIo:
        return "skip_under_io";
      case EventKind::SkipDirtyIo:
        return "skip_dirty_io";
      case EventKind::SkipPinned:
        return "skip_pinned";
      case EventKind::SkipNoMemory:
        return "skip_no_memory";
      case EventKind::SkipNoFrames:
        return "skip_no_frames";
      case EventKind::SkipVictimHot:
        return "skip_victim_hot";
      case EventKind::SkipBudget:
        return "skip_budget";
      case EventKind::DrfReclaim:
        return "drf_reclaim";
      case EventKind::Throttle:
        return "throttle";
      case EventKind::Writeback:
        return "writeback";
      case EventKind::SwapOut:
        return "swap_out";
      case EventKind::BalloonOut:
        return "balloon_out";
    }
    return "?";
}

Recorder::Recorder() = default;

namespace detail {
Recorder *g_active = nullptr;
thread_local Recorder *t_active = nullptr;
} // namespace detail

Recorder &
recorder()
{
    static Recorder r;
    return r;
}

void
Recorder::enable(XrayConfig cfg)
{
    cfg_ = cfg;
    enabled_ = true;
    if (this == &recorder())
        detail::g_active = this;
}

void
Recorder::disable()
{
    enabled_ = false;
    if (detail::g_active == this)
        detail::g_active = nullptr;
}

void
Recorder::clear()
{
    vms_.clear();
    has_staged_rank_ = false;
    staged_rank_ = 0;
}

Recorder::VmState &
Recorder::vmState(std::uint16_t vm)
{
    if (vm >= vms_.size())
        vms_.resize(vm + 1);
    return vms_[vm];
}

const Recorder::VmState *
Recorder::findVm(std::uint16_t vm) const
{
    if (vm >= vms_.size())
        return nullptr;
    return &vms_[vm];
}

Recorder::PageShadow &
Recorder::shadow(VmState &s, std::uint64_t gpfn)
{
    if (gpfn >= s.pages.size())
        s.pages.resize(gpfn + 1);
    return s.pages[gpfn];
}

bool
Recorder::ringEligible(std::uint64_t gpfn) const
{
    if (cfg_.full_provenance)
        return true;
    // Deterministic gpfn sample: Fibonacci hash, keep the top slice.
    const std::uint64_t h = gpfn * 0x9E3779B97F4A7C15ull;
    return (h >> (64 - cfg_.sample_shift)) == 0;
}

void
Recorder::ringAppend(Ring &ring, std::uint32_t depth, const Event &e)
{
    if (depth == 0)
        return;
    if (ring.events.size() < depth)
        ring.events.push_back(e);
    else
        ring.events[ring.total % depth] = e;
    ++ring.total;
    if (e.kind == EventKind::Promote || e.kind == EventKind::Demote)
        ++ring.moves;
    if (e.kind == EventKind::Promote)
        ++ring.promotes;
}

void
Recorder::pageRecord(VmState &s, std::uint64_t gpfn, const Event &e)
{
    if (!ringEligible(gpfn))
        return;
    ringAppend(s.rings[gpfn], cfg_.ring_depth, e);
}

void
Recorder::applyHeat(VmState &s, PageShadow &p, std::uint16_t heat)
{
    const std::uint8_t t = p.tier;
    s.tier_heat_mass[t] += heat;
    s.tier_heat_mass[t] -= p.heat;
    const bool now_hot = heat >= s.threshold;
    if (p.hot && now_hot) {
        s.tier_hot_heat_mass[t] += heat;
        s.tier_hot_heat_mass[t] -= p.heat;
    } else if (!p.hot && now_hot) {
        ++s.tier_hot[t];
        s.tier_hot_heat_mass[t] += heat;
    } else if (p.hot && !now_hot) {
        --s.tier_hot[t];
        s.tier_hot_heat_mass[t] -= p.heat;
    }
    p.heat = heat;
    p.hot = now_hot;
}

void
Recorder::moveTier(VmState &s, PageShadow &p, std::uint8_t to)
{
    const std::uint8_t from = p.tier;
    --s.tier_pages[from];
    ++s.tier_pages[to];
    s.tier_heat_mass[from] -= p.heat;
    s.tier_heat_mass[to] += p.heat;
    if (p.hot) {
        --s.tier_hot[from];
        ++s.tier_hot[to];
        s.tier_hot_heat_mass[from] -= p.heat;
        s.tier_hot_heat_mass[to] += p.heat;
    }
    p.tier = to;
}

namespace {

std::size_t
lagBucket(std::uint64_t lag_ns)
{
    const std::size_t b =
        lag_ns == 0 ? 0 : static_cast<std::size_t>(
                              std::bit_width(lag_ns) - 1);
    return std::min(b, numLagBuckets - 1);
}

} // namespace

void
Recorder::recordMove(VmState &s, std::uint16_t vm, std::uint64_t gpfn,
                     PageShadow &p, std::uint8_t from, std::uint8_t to,
                     std::uint16_t heat, std::uint32_t rank,
                     sim::Tick now)
{
    const bool promote = tierRank(to) < tierRank(from);
    const EventKind kind =
        promote ? EventKind::Promote : EventKind::Demote;
    ++s.kind_counts[static_cast<std::size_t>(kind)];

    std::uint64_t lag = 0;
    if (promote) {
        if (p.hot_since != 0) {
            lag = now - p.hot_since;
            ++s.promote_lag[lagBucket(lag)];
            p.hot_since = 0;
        }
    } else {
        if (p.cold_since != 0) {
            lag = now - p.cold_since;
            ++s.demote_lag[lagBucket(lag)];
            p.cold_since = 0;
        }
        // A hot page forced down a tier restarts its promotion clock:
        // it is misplaced again from this instant.
        if (p.hot)
            p.hot_since = now;
    }

    const std::int8_t dir = promote ? 1 : -1;
    if (p.last_dir == -dir && p.last_move != 0 &&
        now - p.last_move <= cfg_.pingpong_window) {
        ++s.pingpong_events;
        if (++p.bounces == 1)
            ++s.pingpong_pages;
        trace::emit(trace::EventType::XrayPingPong, now, gpfn,
                    p.bounces, now - p.last_move, 0, vm);
    }
    p.last_dir = dir;
    p.last_move = now;

    Event e;
    e.tick = now;
    e.kind = kind;
    e.tier_from = from;
    e.tier_to = to;
    e.heat = heat;
    e.threshold = s.threshold;
    e.rank = rank;
    e.a0 = lag;
    e.a1 = p.bounces;
    pageRecord(s, gpfn, e);
    trace::emit(trace::EventType::XrayMove, now,
                static_cast<std::uint64_t>(kind), gpfn, heat, 0, vm);
}

void
Recorder::onAlloc(std::uint16_t vm, std::uint64_t gpfn,
                  std::uint8_t tier, sim::Tick now)
{
    if (tier >= numTiers)
        return;
    VmState &s = vmState(vm);
    PageShadow &p = shadow(s, gpfn);
    if (p.tier != noTier)
        return; // double alloc: audit will flag the real bug
    p.heat = 0; // a fresh frame never carries its old life's heat
    p.hot = false;
    p.tier = tier;
    p.hot_since = 0;
    p.cold_since = 0;
    ++s.tier_pages[tier];
    ++s.kind_counts[static_cast<std::size_t>(EventKind::Alloc)];

    Event e;
    e.tick = now;
    e.kind = EventKind::Alloc;
    e.tier_to = tier;
    e.threshold = s.threshold;
    pageRecord(s, gpfn, e);
}

void
Recorder::onFree(std::uint16_t vm, std::uint64_t gpfn, sim::Tick now)
{
    VmState *s = vm < vms_.size() ? &vms_[vm] : nullptr;
    if (s == nullptr || gpfn >= s->pages.size())
        return;
    PageShadow &p = s->pages[gpfn];
    if (p.tier == noTier)
        return;
    const std::uint8_t t = p.tier;
    --s->tier_pages[t];
    s->tier_heat_mass[t] -= p.heat;
    if (p.hot) {
        --s->tier_hot[t];
        s->tier_hot_heat_mass[t] -= p.heat;
    }
    ++s->kind_counts[static_cast<std::size_t>(EventKind::Free)];

    Event e;
    e.tick = now;
    e.kind = EventKind::Free;
    e.tier_from = t;
    e.heat = p.heat;
    e.threshold = s->threshold;
    pageRecord(*s, gpfn, e);

    p = PageShadow{}; // tier = noTier; bounce identity dies with it
}

void
Recorder::onHeat(std::uint16_t vm, std::uint64_t gpfn,
                 std::uint16_t heat, std::uint16_t threshold,
                 sim::Tick now)
{
    VmState &s = vmState(vm);
    s.threshold = threshold;
    if (gpfn >= s.pages.size())
        return; // never allocated under xray: audit catches real holes
    PageShadow &p = s.pages[gpfn];
    if (p.tier == noTier)
        return;
    const bool was_hot = p.hot;
    applyHeat(s, p, heat);
    if (!was_hot && p.hot) {
        ++s.kind_counts[static_cast<std::size_t>(EventKind::HotCross)];
        // Promotion-lag clock: starts when a page first needs to be
        // in the fast tier but is not.
        if (p.tier != fastTier && p.hot_since == 0)
            p.hot_since = now;
        if (p.tier == fastTier)
            p.cold_since = 0;
        Event e;
        e.tick = now;
        e.kind = EventKind::HotCross;
        e.tier_from = p.tier;
        e.tier_to = p.tier;
        e.heat = heat;
        e.threshold = threshold;
        pageRecord(s, gpfn, e);
        trace::emit(trace::EventType::XrayHotCross, now, gpfn, heat,
                    threshold, 0, vm);
    } else if (was_hot && !p.hot) {
        ++s.kind_counts[static_cast<std::size_t>(EventKind::Cooled)];
        p.hot_since = 0; // the promotion need expired
        // Demotion-lag clock: a fast page that went cold is now the
        // one the LRU should be pushing down.
        if (p.tier == fastTier && p.cold_since == 0)
            p.cold_since = now;
        Event e;
        e.tick = now;
        e.kind = EventKind::Cooled;
        e.tier_from = p.tier;
        e.tier_to = p.tier;
        e.heat = heat;
        e.threshold = threshold;
        pageRecord(s, gpfn, e);
    }
}

void
Recorder::onTierChange(std::uint16_t vm, std::uint64_t gpfn,
                       std::uint8_t tier, sim::Tick now)
{
    const std::uint32_t rank =
        has_staged_rank_ ? staged_rank_ : 0;
    has_staged_rank_ = false;
    if (tier >= numTiers || vm >= vms_.size())
        return;
    VmState &s = vms_[vm];
    if (gpfn >= s.pages.size())
        return;
    PageShadow &p = s.pages[gpfn];
    if (p.tier == noTier || p.tier == tier)
        return; // populate/unpopulate of free frames, or no-op retarget
    const std::uint8_t from = p.tier;
    moveTier(s, p, tier);
    recordMove(s, vm, gpfn, p, from, tier, p.heat, rank, now);
}

void
Recorder::onGuestMove(std::uint16_t vm, std::uint64_t old_gpfn,
                      std::uint64_t new_gpfn, std::uint8_t to_tier,
                      std::uint16_t heat, std::uint32_t rank,
                      sim::Tick now)
{
    if (to_tier >= numTiers || vm >= vms_.size())
        return;
    VmState &s = vms_[vm];
    if (old_gpfn >= s.pages.size())
        return;
    PageShadow &old_p = s.pages[old_gpfn];
    if (old_p.tier == noTier)
        return;
    PageShadow &new_p = shadow(s, new_gpfn);
    if (new_p.tier == noTier)
        return; // onAlloc for the new frame must have fired already
    const std::uint8_t from = old_p.tier;
    if (from == to_tier)
        return;
    // The logical page keeps its lag clocks and bounce identity even
    // though the backing frame changed; the old frame's shadow is
    // cleared by the onFree that follows the migration.
    new_p.hot_since = old_p.hot_since;
    new_p.cold_since = old_p.cold_since;
    new_p.last_move = old_p.last_move;
    new_p.last_dir = old_p.last_dir;
    new_p.bounces = old_p.bounces;
    old_p.hot_since = 0;
    old_p.cold_since = 0;
    old_p.last_move = 0;
    old_p.last_dir = 0;
    old_p.bounces = 0;
    recordMove(s, vm, new_gpfn, new_p, from, to_tier, heat, rank, now);
}

void
Recorder::stageRank(std::uint32_t rank)
{
    staged_rank_ = rank;
    has_staged_rank_ = true;
}

void
Recorder::onSkip(std::uint16_t vm, std::uint64_t gpfn, EventKind kind,
                 std::uint16_t heat, std::uint32_t rank, sim::Tick now)
{
    VmState &s = vmState(vm);
    ++s.kind_counts[static_cast<std::size_t>(kind)];
    Event e;
    e.tick = now;
    e.kind = kind;
    e.heat = heat;
    e.threshold = s.threshold;
    e.rank = rank;
    if (gpfn < s.pages.size() && s.pages[gpfn].tier != noTier)
        e.tier_from = s.pages[gpfn].tier;
    pageRecord(s, gpfn, e);
}

void
Recorder::onTransition(std::uint16_t vm, std::uint64_t gpfn,
                       EventKind kind, sim::Tick now)
{
    VmState &s = vmState(vm);
    ++s.kind_counts[static_cast<std::size_t>(kind)];
    Event e;
    e.tick = now;
    e.kind = kind;
    e.threshold = s.threshold;
    if (gpfn < s.pages.size() && s.pages[gpfn].tier != noTier) {
        e.tier_from = s.pages[gpfn].tier;
        e.heat = s.pages[gpfn].heat;
    }
    pageRecord(s, gpfn, e);
}

void
Recorder::onVmEvent(std::uint16_t vm, EventKind kind,
                    std::uint32_t rank, std::uint64_t a0,
                    std::uint64_t a1, sim::Tick now)
{
    VmState &s = vmState(vm);
    ++s.kind_counts[static_cast<std::size_t>(kind)];
    Event e;
    e.tick = now;
    e.kind = kind;
    e.threshold = s.threshold;
    e.rank = rank;
    e.a0 = a0;
    e.a1 = a1;
    ringAppend(s.vm_events, cfg_.vm_ring_depth, e);
    trace::emit(trace::EventType::XrayDecision, now,
                static_cast<std::uint64_t>(kind), a0, a1, 0, vm);
}

// --- Queries ----------------------------------------------------------

bool
Recorder::live(std::uint16_t vm, std::uint64_t gpfn) const
{
    const VmState *s = findVm(vm);
    return s != nullptr && gpfn < s->pages.size() &&
           s->pages[gpfn].tier != noTier;
}

std::uint16_t
Recorder::shadowHeat(std::uint16_t vm, std::uint64_t gpfn) const
{
    const VmState *s = findVm(vm);
    if (s == nullptr || gpfn >= s->pages.size())
        return 0;
    return s->pages[gpfn].heat;
}

std::uint8_t
Recorder::shadowTier(std::uint16_t vm, std::uint64_t gpfn) const
{
    const VmState *s = findVm(vm);
    if (s == nullptr || gpfn >= s->pages.size())
        return noTier;
    return s->pages[gpfn].tier;
}

std::uint16_t
Recorder::thresholdOf(std::uint16_t vm) const
{
    const VmState *s = findVm(vm);
    return s != nullptr ? s->threshold : 96;
}

std::uint64_t
Recorder::pagesIn(std::uint16_t vm, std::uint8_t tier) const
{
    const VmState *s = findVm(vm);
    return s != nullptr && tier < numTiers ? s->tier_pages[tier] : 0;
}

std::uint64_t
Recorder::hotIn(std::uint16_t vm, std::uint8_t tier) const
{
    const VmState *s = findVm(vm);
    return s != nullptr && tier < numTiers ? s->tier_hot[tier] : 0;
}

std::uint64_t
Recorder::heatMassIn(std::uint16_t vm, std::uint8_t tier) const
{
    const VmState *s = findVm(vm);
    return s != nullptr && tier < numTiers ? s->tier_heat_mass[tier]
                                           : 0;
}

std::uint64_t
Recorder::hotHeatMassIn(std::uint16_t vm, std::uint8_t tier) const
{
    const VmState *s = findVm(vm);
    return s != nullptr && tier < numTiers
               ? s->tier_hot_heat_mass[tier]
               : 0;
}

std::uint64_t
Recorder::kindCount(std::uint16_t vm, EventKind k) const
{
    const VmState *s = findVm(vm);
    return s != nullptr ? s->kind_counts[static_cast<std::size_t>(k)]
                        : 0;
}

std::uint64_t
Recorder::pingpongEvents(std::uint16_t vm) const
{
    const VmState *s = findVm(vm);
    return s != nullptr ? s->pingpong_events : 0;
}

std::uint64_t
Recorder::hotTotal(std::uint16_t vm) const
{
    const VmState *s = findVm(vm);
    if (s == nullptr)
        return 0;
    std::uint64_t n = 0;
    for (std::size_t t = 0; t < numTiers; ++t)
        n += s->tier_hot[t];
    return n;
}

std::uint64_t
Recorder::hotMisplaced(std::uint16_t vm) const
{
    const VmState *s = findVm(vm);
    if (s == nullptr)
        return 0;
    return hotTotal(vm) - s->tier_hot[fastTier];
}

std::uint64_t
Recorder::misplacedHeatMass(std::uint16_t vm) const
{
    const VmState *s = findVm(vm);
    if (s == nullptr)
        return 0;
    std::uint64_t mass = 0;
    for (std::size_t t = 0; t < numTiers; ++t) {
        if (t != fastTier)
            mass += s->tier_hot_heat_mass[t];
    }
    return mass;
}

void
Recorder::syncStats()
{
    std::uint64_t live_pages = 0;
    std::uint64_t hot_total = 0;
    std::uint64_t hot_misplaced = 0;
    std::uint64_t cold_in_fast = 0;
    std::uint64_t heat_mass = 0;
    std::uint64_t misplaced_mass = 0;
    std::uint64_t pingpong = 0;
    std::uint64_t promotes = 0;
    std::uint64_t demotes = 0;
    for (std::uint16_t vm = 0; vm < vms_.size(); ++vm) {
        const VmState &s = vms_[vm];
        for (std::size_t t = 0; t < numTiers; ++t) {
            live_pages += s.tier_pages[t];
            hot_total += s.tier_hot[t];
            heat_mass += s.tier_heat_mass[t];
        }
        hot_misplaced += hotMisplaced(vm);
        cold_in_fast +=
            s.tier_pages[fastTier] - s.tier_hot[fastTier];
        misplaced_mass += misplacedHeatMass(vm);
        pingpong += s.pingpong_events;
        promotes +=
            s.kind_counts[static_cast<std::size_t>(EventKind::Promote)];
        demotes +=
            s.kind_counts[static_cast<std::size_t>(EventKind::Demote)];
    }
    stats_.gauge("live_pages").set(static_cast<std::int64_t>(live_pages));
    stats_.gauge("hot_total").set(static_cast<std::int64_t>(hot_total));
    stats_.gauge("hot_misplaced")
        .set(static_cast<std::int64_t>(hot_misplaced));
    stats_.gauge("cold_in_fast")
        .set(static_cast<std::int64_t>(cold_in_fast));
    stats_.gauge("heat_mass").set(static_cast<std::int64_t>(heat_mass));
    stats_.gauge("misplaced_heat_mass")
        .set(static_cast<std::int64_t>(misplaced_mass));
    stats_.gauge("pingpong_events")
        .set(static_cast<std::int64_t>(pingpong));
    stats_.gauge("promotes").set(static_cast<std::int64_t>(promotes));
    stats_.gauge("demotes").set(static_cast<std::int64_t>(demotes));
}

XrayReport
Recorder::report() const
{
    XrayReport rep;
    rep.pingpong_window_ns = cfg_.pingpong_window;
    rep.ring_depth = cfg_.ring_depth;
    for (std::uint16_t vm = 0; vm < vms_.size(); ++vm) {
        const VmState &s = vms_[vm];
        bool any = false;
        for (std::size_t t = 0; t < numTiers; ++t)
            any = any || s.tier_pages[t] != 0;
        for (std::size_t k = 0; k < numEventKinds; ++k)
            any = any || s.kind_counts[k] != 0;
        if (!any)
            continue; // index gap (no such VM), not a real guest

        XrayVm v;
        v.vm = vm;
        v.threshold = s.threshold;
        for (std::size_t t = 0; t < numTiers; ++t) {
            v.tiers[t].pages = s.tier_pages[t];
            v.tiers[t].hot_pages = s.tier_hot[t];
            v.tiers[t].heat_mass = s.tier_heat_mass[t];
            v.tiers[t].hot_heat_mass = s.tier_hot_heat_mass[t];
        }
        for (std::size_t k = 0; k < numEventKinds; ++k)
            v.kind_counts[k] = s.kind_counts[k];
        v.pingpong_events = s.pingpong_events;
        v.pingpong_pages = s.pingpong_pages;
        for (std::size_t b = 0; b < numLagBuckets; ++b) {
            if (s.promote_lag[b] != 0) {
                v.promote_lag.emplace_back(std::uint64_t(1) << b,
                                           s.promote_lag[b]);
            }
            if (s.demote_lag[b] != 0) {
                v.demote_lag.emplace_back(std::uint64_t(1) << b,
                                          s.demote_lag[b]);
            }
        }

        // Top-N misplaced pages by heat: hot pages outside the fast
        // tier, heaviest first, gpfn as the deterministic tie-break.
        std::vector<XrayTopPage> top;
        for (std::uint64_t g = 0; g < s.pages.size(); ++g) {
            const PageShadow &p = s.pages[g];
            if (p.tier == noTier || p.tier == fastTier || !p.hot)
                continue;
            top.push_back(XrayTopPage{g, p.heat, p.tier});
        }
        std::sort(top.begin(), top.end(),
                  [](const XrayTopPage &a, const XrayTopPage &b) {
                      if (a.heat != b.heat)
                          return a.heat > b.heat;
                      return a.gpfn < b.gpfn;
                  });
        if (top.size() > cfg_.top_misplaced)
            top.resize(cfg_.top_misplaced);
        v.top_misplaced = std::move(top);

        // Exported rings: pages with actual moves first (they are
        // what hos-explain is for), then the busiest rings; gpfn
        // breaks ties so the cut is deterministic. Runs are often
        // lopsided (thousands of demotions, a few hundred
        // promotions), so half the budget is reserved for
        // promotion-bearing rings — otherwise `hos-explain
        // --promoted` on a full-provenance run could come back empty
        // while promotions were in fact recorded.
        std::vector<const std::pair<const std::uint64_t, Ring> *> order;
        order.reserve(s.rings.size());
        for (const auto &kv : s.rings)
            order.push_back(&kv);
        std::sort(order.begin(), order.end(),
                  [](const auto *a, const auto *b) {
                      if (a->second.moves != b->second.moves)
                          return a->second.moves > b->second.moves;
                      if (a->second.total != b->second.total)
                          return a->second.total > b->second.total;
                      return a->first < b->first;
                  });
        if (order.size() > cfg_.export_pages) {
            const std::size_t keep = cfg_.export_pages;
            std::size_t have = 0;
            for (std::size_t i = 0; i < keep; ++i)
                have += order[i]->second.promotes > 0 ? 1 : 0;
            const std::size_t want = keep / 2;
            if (have < want) {
                std::vector<
                    const std::pair<const std::uint64_t, Ring> *>
                    extra;
                for (std::size_t i = keep;
                     i < order.size() && have + extra.size() < want;
                     ++i) {
                    if (order[i]->second.promotes > 0)
                        extra.push_back(order[i]);
                }
                // Displace the lowest-ranked promotion-free keepers.
                std::size_t w = keep;
                for (const auto *kv : extra) {
                    while (w > 0 && order[w - 1]->second.promotes > 0)
                        --w;
                    if (w == 0)
                        break;
                    order[--w] = kv;
                }
            }
            order.resize(keep);
        }
        std::sort(order.begin(), order.end(),
                  [](const auto *a, const auto *b) {
                      return a->first < b->first;
                  });
        for (const auto *kv : order) {
            XrayPage pg;
            pg.gpfn = kv->first;
            pg.total_events = kv->second.total;
            const Ring &ring = kv->second;
            const std::size_t n = ring.events.size();
            // Unroll the circular buffer oldest-first.
            const std::size_t start =
                ring.total > n ? ring.total % n : 0;
            for (std::size_t i = 0; i < n; ++i)
                pg.events.push_back(ring.events[(start + i) % n]);
            v.pages.push_back(std::move(pg));
        }
        v.pages_ringed = s.rings.size();

        const Ring &ve = s.vm_events;
        const std::size_t n = ve.events.size();
        const std::size_t start = ve.total > n ? ve.total % n : 0;
        for (std::size_t i = 0; i < n; ++i)
            v.vm_events.push_back(ve.events[(start + i) % n]);
        v.vm_events_total = ve.total;

        rep.vms.push_back(std::move(v));
    }
    return rep;
}

} // namespace hos::xray
