/**
 * @file
 * hos::xray — placement-quality telemetry and migration decision
 * provenance.
 *
 * trace says *what happened* and prof says *what it cost*; xray says
 * *how good placement is right now* and *why a page landed where it
 * did*. A Recorder mirrors every live page's (heat, tier) as the
 * hooks fire and keeps three products incrementally up to date:
 *
 *  1. Placement-quality aggregates per VM and per tier: page counts,
 *     hot-page counts (heat >= the tracker's hot_threshold), heat
 *     mass and hot-heat mass — from which misplaced-hotness mass
 *     (hot-in-slow) and cold-in-fast fractions fall out.
 *  2. Promotion/demotion lag histograms (sim-ns from first crossing
 *     hot_threshold in a slow tier to the promoting remap, and from
 *     going cold in the fast tier to the demoting remap) plus a
 *     ping-pong detector for pages bouncing fast<->slow within a
 *     configurable window.
 *  3. Bounded per-page lifecycle rings of decision records — each
 *     promote/demote/skip with its policy inputs (EWMA heat,
 *     threshold, candidate rank, DRF shares, throttle state),
 *     alongside alloc/free/writeback/swap/balloon transitions.
 *
 * Design constraints mirror hos::prof:
 *  1. Zero cost when compiled out: HOS_XRAY_LEVEL=0 makes active()
 *     constant-null so every hook call folds away.
 *  2. Deterministic: only sim ticks and integer page state; the
 *     report serializes bit-identically across runs.
 *  3. Bit-identical simulation: xray observes decisions, it never
 *     makes them. Golden-determinism tests compare xray-on/off runs.
 *  4. Isolation: a thread-local active recorder (ScopedRecorder)
 *     keeps parallel sweep points apart, exactly like
 *     trace::ScopedSink / prof::ScopedProfiler.
 *
 * Layering: xray sits between trace and guestos (like prof), so it
 * cannot name guestos or mem types. Tiers cross the boundary as
 * plain indices mirroring mem::MemType (FastMem=0, SlowMem=1,
 * MediumMem=2); gpfns and VM ids as integers.
 */

#ifndef HOS_XRAY_XRAY_HH
#define HOS_XRAY_XRAY_HH

#include <cstdint>
#include <map>
#include <vector>

#include "sim/stats.hh"
#include "sim/time.hh"

#ifndef HOS_XRAY_LEVEL
#define HOS_XRAY_LEVEL 1
#endif

namespace hos::xray {

/** Compile-time xray level (CMake HOS_XRAY=off/sampled/full). */
constexpr int compiledLevel = HOS_XRAY_LEVEL;
/** Hooks and metrics compiled in (level >= 1). */
constexpr bool xrayCompiled = HOS_XRAY_LEVEL >= 1;
/** Provenance rings default to every page (level >= 2). */
constexpr bool fullXrayCompiled = HOS_XRAY_LEVEL >= 2;

/** "off", "sampled", or "full". */
const char *levelName();

/** Tier index values mirror mem::MemType; noTier = not live. */
constexpr std::uint8_t fastTier = 0;   ///< mem::MemType::FastMem
constexpr std::uint8_t slowTier = 1;   ///< mem::MemType::SlowMem
constexpr std::uint8_t mediumTier = 2; ///< mem::MemType::MediumMem
constexpr std::size_t numTiers = 3;
constexpr std::uint8_t noTier = 0xff;

/** Short tier label ("fast"/"slow"/"medium"; "-" for noTier). */
const char *tierName(std::uint8_t tier);

/**
 * Speed rank of a tier: 0 fastest. MemType's numeric order is not
 * speed order (Medium sits between Fast and Slow); promotions are
 * moves to a lower rank.
 */
constexpr unsigned
tierRank(std::uint8_t tier)
{
    if (tier == fastTier)
        return 0;
    if (tier == mediumTier)
        return 1;
    return 2;
}

/** Sentinel gpfn for VM-level events (DRF, throttle, balloon). */
constexpr std::uint64_t noGpfn = ~std::uint64_t(0);

/**
 * The decision/transition taxonomy recorded into lifecycle rings.
 * Skip kinds mirror the migration frontend's skip taxonomy plus the
 * VMM engine's no-frames / victim-hotter / budget cuts.
 */
enum class EventKind : std::uint8_t {
    Alloc = 0,     ///< page became live (tier_to = landing tier)
    Free,          ///< page released (heat resets with the frame)
    HotCross,      ///< heat crossed hot_threshold upward
    Cooled,        ///< heat dropped below hot_threshold
    Promote,       ///< remapped to a faster tier
    Demote,        ///< remapped to a slower tier
    SkipUnmapped,  ///< guest skip: released/remapped since selection
    SkipUnderIo,   ///< guest skip: in-flight I/O
    SkipDirtyIo,   ///< guest skip: dirty short-lived I/O page
    SkipPinned,    ///< guest skip: unmigratable type / unevictable
    SkipNoMemory,  ///< guest skip: target node allocation failed
    SkipNoFrames,  ///< VMM skip: no free frame on the target tier
    SkipVictimHot, ///< VMM skip: coldest victim at least as hot
    SkipBudget,    ///< candidate dropped by the rate-limit budget
    DrfReclaim,    ///< DRF reclaimed frames (VM-level record)
    Throttle,      ///< migration batch truncated to the budget
    Writeback,     ///< dirty page written back
    SwapOut,       ///< swapped out under balloon pressure
    BalloonOut,    ///< frames surrendered to the balloon (VM-level)
};

constexpr std::size_t numEventKinds = 19;

/** Stable lower-case name ("hot_cross"), used in JSON and the CLI. */
const char *eventKindName(EventKind k);

/**
 * One lifecycle-ring record. Fields are kind-specific:
 *  - moves (Promote/Demote): heat/threshold/rank at decision time,
 *    a0 = promotion or demotion lag in sim-ns (0 when no clock ran),
 *    a1 = cumulative fast<->slow bounces of the page so far.
 *  - skips: heat/rank as known at the skip site.
 *  - DrfReclaim: rank = victim VM id, a0 = frames reclaimed,
 *    a1 = (requester share ppm << 32) | victim share ppm.
 *  - Throttle: a0 = candidates offered, a1 = budget applied.
 *  - BalloonOut: a0 = frames surrendered, a1 = frames requested.
 */
struct Event
{
    sim::Tick tick = 0;
    EventKind kind = EventKind::Alloc;
    std::uint8_t tier_from = noTier;
    std::uint8_t tier_to = noTier;
    std::uint16_t heat = 0;
    std::uint16_t threshold = 0;
    std::uint32_t rank = 0;
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
};

/** Runtime knobs; defaults follow the compile level. */
struct XrayConfig
{
    /** Opposite-direction remap within this window = one ping-pong. */
    sim::Duration pingpong_window = sim::milliseconds(400);
    /** Lifecycle ring depth per page (oldest records drop first). */
    std::uint32_t ring_depth = 16;
    /** VM-level event ring depth (DRF/throttle/balloon records). */
    std::uint32_t vm_ring_depth = 256;
    /**
     * Ring every page (HOS_XRAY=full default) or only the 1-in-2^k
     * deterministic gpfn sample (HOS_XRAY=sampled default).
     * Aggregates, lag histograms and ping-pong detection always
     * cover every page regardless.
     */
    bool full_provenance = fullXrayCompiled;
    /** Sample 1 in 2^sample_shift pages when !full_provenance. */
    std::uint32_t sample_shift = 6;
    /** Top-N misplaced pages listed in the report. */
    std::uint32_t top_misplaced = 32;
    /** Max per-page rings exported (pages with moves rank first). */
    std::uint32_t export_pages = 64;
};

struct XrayReport;

/** Log2 lag histogram bucket count (bucket i covers [2^i, 2^i+1)). */
constexpr std::size_t numLagBuckets = 40;

/**
 * The shadow state plus telemetry for one run (or one HeteroSystem).
 * Single-threaded per instance; cross-thread isolation comes from
 * ScopedRecorder, exactly like trace::Tracer/ScopedSink.
 */
class Recorder
{
  public:
    Recorder();

    /** Mark this recorder active (process-wide fallback). */
    void enable(XrayConfig cfg = {});
    void disable();
    bool enabled() const { return enabled_; }

    /** Drop all shadow state, counters and rings. */
    void clear();

    const XrayConfig &config() const { return cfg_; }

    // --- Hooks (integer-only; callers gate on xray::active()) -----

    /** Page became live on `tier`; a fresh frame always has heat 0. */
    void onAlloc(std::uint16_t vm, std::uint64_t gpfn, std::uint8_t tier,
                 sim::Tick now);

    /** Page released (frame recycled; its heat resets with it). */
    void onFree(std::uint16_t vm, std::uint64_t gpfn, sim::Tick now);

    /**
     * Hotness tracker re-scored a page. `threshold` is the tracker's
     * hot_threshold (remembered per VM for later decision records).
     */
    void onHeat(std::uint16_t vm, std::uint64_t gpfn, std::uint16_t heat,
                std::uint16_t threshold, sim::Tick now);

    /**
     * The page's effective backing tier changed in place (VMM P2M
     * retarget). Classified promote/demote by tier rank; consumes a
     * staged rank if the engine provided one. Ignored for gpfns that
     * are not live (populate/unpopulate of free frames).
     */
    void onTierChange(std::uint16_t vm, std::uint64_t gpfn,
                      std::uint8_t tier, sim::Tick now);

    /**
     * Guest-visible migration: the page moved to a *new* gpfn on the
     * target node (old frame freed separately right after). Transfers
     * the lag clocks and bounce identity old -> new, then records the
     * move against the new gpfn. `heat` is the migrated page's heat
     * at decision time (the frontend copies everything but heat).
     */
    void onGuestMove(std::uint16_t vm, std::uint64_t old_gpfn,
                     std::uint64_t new_gpfn, std::uint8_t to_tier,
                     std::uint16_t heat, std::uint32_t rank,
                     sim::Tick now);

    /** Candidate rank for the next onTierChange (VMM engine path). */
    void stageRank(std::uint32_t rank);

    /** A promote/demote candidate was skipped (kind says why). */
    void onSkip(std::uint16_t vm, std::uint64_t gpfn, EventKind kind,
                std::uint16_t heat, std::uint32_t rank, sim::Tick now);

    /** Per-page transition without a placement move (writeback...). */
    void onTransition(std::uint16_t vm, std::uint64_t gpfn,
                      EventKind kind, sim::Tick now);

    /** VM-level record (DrfReclaim / Throttle / BalloonOut). */
    void onVmEvent(std::uint16_t vm, EventKind kind, std::uint32_t rank,
                   std::uint64_t a0, std::uint64_t a1, sim::Tick now);

    // --- Queries (audit and tests) --------------------------------

    std::size_t numVms() const { return vms_.size(); }
    bool live(std::uint16_t vm, std::uint64_t gpfn) const;
    std::uint16_t shadowHeat(std::uint16_t vm, std::uint64_t gpfn) const;
    std::uint8_t shadowTier(std::uint16_t vm, std::uint64_t gpfn) const;
    std::uint16_t thresholdOf(std::uint16_t vm) const;

    std::uint64_t pagesIn(std::uint16_t vm, std::uint8_t tier) const;
    std::uint64_t hotIn(std::uint16_t vm, std::uint8_t tier) const;
    std::uint64_t heatMassIn(std::uint16_t vm, std::uint8_t tier) const;
    std::uint64_t hotHeatMassIn(std::uint16_t vm,
                                std::uint8_t tier) const;
    std::uint64_t kindCount(std::uint16_t vm, EventKind k) const;
    std::uint64_t pingpongEvents(std::uint16_t vm) const;

    /** Hot pages across all tiers of `vm`. */
    std::uint64_t hotTotal(std::uint16_t vm) const;
    /** Hot pages of `vm` not backed by the fastest tier. */
    std::uint64_t hotMisplaced(std::uint16_t vm) const;
    /** Heat mass of hot pages outside the fastest tier. */
    std::uint64_t misplacedHeatMass(std::uint16_t vm) const;

    /** The "xray" stat group (quality gauges for the snapshotter). */
    sim::StatGroup &stats() { return stats_; }
    /** Refresh the gauges from live state (registry refresh hook). */
    void syncStats();

    /** Flatten everything into the deterministic report form. */
    XrayReport report() const;

  private:
    struct PageShadow
    {
        std::uint16_t heat = 0;
        std::uint8_t tier = noTier; ///< noTier = not live
        bool hot = false;
        sim::Tick hot_since = 0;  ///< hot-in-slow clock (0 = idle)
        sim::Tick cold_since = 0; ///< cold-in-fast clock (0 = idle)
        sim::Tick last_move = 0;
        std::int8_t last_dir = 0; ///< +1 promote, -1 demote
        std::uint32_t bounces = 0;
    };

    struct Ring
    {
        std::vector<Event> events; ///< circular once at depth
        std::uint64_t total = 0;
        std::uint64_t moves = 0;    ///< promote+demote records
        std::uint64_t promotes = 0; ///< promote records alone
    };

    struct VmState
    {
        std::uint16_t threshold = 96; ///< last seen hot_threshold
        std::vector<PageShadow> pages;
        std::uint64_t tier_pages[numTiers] = {};
        std::uint64_t tier_hot[numTiers] = {};
        std::uint64_t tier_heat_mass[numTiers] = {};
        std::uint64_t tier_hot_heat_mass[numTiers] = {};
        std::uint64_t kind_counts[numEventKinds] = {};
        std::uint64_t pingpong_events = 0;
        std::uint64_t pingpong_pages = 0;
        std::uint64_t promote_lag[numLagBuckets] = {};
        std::uint64_t demote_lag[numLagBuckets] = {};
        std::map<std::uint64_t, Ring> rings; ///< ordered: determinism
        Ring vm_events;
    };

    VmState &vmState(std::uint16_t vm);
    const VmState *findVm(std::uint16_t vm) const;
    PageShadow &shadow(VmState &s, std::uint64_t gpfn);

    /** Deterministic 1-in-2^sample_shift gpfn sample membership. */
    bool ringEligible(std::uint64_t gpfn) const;
    void ringAppend(Ring &ring, std::uint32_t depth, const Event &e);
    void pageRecord(VmState &s, std::uint64_t gpfn, const Event &e);

    /** Aggregate bookkeeping for one page entering/leaving hotness. */
    void applyHeat(VmState &s, PageShadow &p, std::uint16_t heat);
    /** Move a live page's aggregates between tiers. */
    void moveTier(VmState &s, PageShadow &p, std::uint8_t to);
    /** Lag + ping-pong + ring record for one completed move. */
    void recordMove(VmState &s, std::uint16_t vm, std::uint64_t gpfn,
                    PageShadow &p, std::uint8_t from, std::uint8_t to,
                    std::uint16_t heat, std::uint32_t rank,
                    sim::Tick now);

    bool enabled_ = false;
    XrayConfig cfg_;
    std::vector<VmState> vms_;
    std::uint32_t staged_rank_ = 0;
    bool has_staged_rank_ = false;
    sim::StatGroup stats_{"xray"};
};

/** The process-wide default recorder (legacy single-run flows). */
Recorder &recorder();

namespace detail {
/** Global fallback: set when the process-wide recorder is enabled. */
extern Recorder *g_active;
/** Thread-local override installed by ScopedRecorder. */
extern thread_local Recorder *t_active;

inline Recorder *
activeRecorder()
{
    return t_active != nullptr ? t_active : g_active;
}
} // namespace detail

/**
 * The recorder hooks should feed, or nullptr when xray is off. The
 * disabled fast path is one thread-local load and a branch; at
 * HOS_XRAY_LEVEL=0 it is constant-null and every
 * `if (auto *xr = xray::active())` hook site folds away.
 */
inline Recorder *
active()
{
#if HOS_XRAY_LEVEL >= 1
    return detail::activeRecorder();
#else
    return nullptr;
#endif
}

/**
 * RAII install of a per-thread active recorder, mirroring
 * prof::ScopedProfiler. A null recorder is a no-op, so callers can
 * write `ScopedRecorder guard(xrayWanted ? &rec : nullptr);`.
 */
class ScopedRecorder
{
  public:
    explicit ScopedRecorder(Recorder *r)
    {
#if HOS_XRAY_LEVEL >= 1
        if (r == nullptr)
            return;
        prev_ = detail::t_active;
        detail::t_active = r;
        installed_ = true;
#else
        (void)r;
#endif
    }
    ~ScopedRecorder()
    {
#if HOS_XRAY_LEVEL >= 1
        if (installed_)
            detail::t_active = prev_;
#endif
    }

    ScopedRecorder(const ScopedRecorder &) = delete;
    ScopedRecorder &operator=(const ScopedRecorder &) = delete;

  private:
#if HOS_XRAY_LEVEL >= 1
    Recorder *prev_ = nullptr;
    bool installed_ = false;
#endif
};

} // namespace hos::xray

#endif // HOS_XRAY_XRAY_HH
