#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>

namespace hos::sim {

namespace {
int g_log_level = 0;
/**
 * Thread-local so concurrent sweep workers each carry the clock of
 * the simulation they are running: tick-stamped logs and trace
 * timestamps stay per-run consistent instead of racing on one global.
 */
thread_local Tick t_current_tick = 0;
} // namespace

void
setLogLevel(int level)
{
    g_log_level = level;
}

int
logLevel()
{
    return g_log_level;
}

Tick
currentTick()
{
    return t_current_tick;
}

void
setCurrentTick(Tick t)
{
    t_current_tick = t;
}

namespace {

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

/** Status lines carry the simulated time for trace correlation. */
void
vreportTimed(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: [t=%.3fms] ", tag,
                 toMilliseconds(t_current_tick));
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
assertFail(const char *cond, const char *file, int line, const char *fmt,
           ...)
{
    std::fprintf(stderr, "panic: assertion '%s' failed at %s:%d: ", cond,
                 file, line);
    va_list ap;
    va_start(ap, fmt);
    std::vfprintf(stderr, fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "\n");
    std::abort();
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_log_level < 1)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreportTimed("info", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_log_level < 2)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreportTimed("debug", fmt, ap);
    va_end(ap);
}

} // namespace hos::sim
