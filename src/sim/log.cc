#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "check/check_error.hh"

namespace hos::sim {

namespace {
int g_log_level = 0;
/**
 * Thread-local so concurrent sweep workers each carry the clock of
 * the simulation they are running: tick-stamped logs and trace
 * timestamps stay per-run consistent instead of racing on one global.
 */
thread_local Tick t_current_tick = 0;
} // namespace

void
setLogLevel(int level)
{
    g_log_level = level;
}

int
logLevel()
{
    return g_log_level;
}

Tick
currentTick()
{
    return t_current_tick;
}

void
setCurrentTick(Tick t)
{
    t_current_tick = t;
}

namespace {

void
vreport(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

/** Status lines carry the simulated time for trace correlation. */
void
vreportTimed(const char *tag, const char *fmt, va_list ap)
{
    std::fprintf(stderr, "%s: [t=%.3fms] ", tag,
                 toMilliseconds(t_current_tick));
    std::vfprintf(stderr, fmt, ap);
    std::fprintf(stderr, "\n");
}

} // namespace

void
assertFail(const char *cond, const char *file, int line, const char *fmt,
           ...)
{
    char msg[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(msg, sizeof(msg), fmt, ap);
    va_end(ap);

    // Failed asserts are check failures of kind Assert: same sim-tick
    // provenance, same abort-or-throw discipline as the validators.
    if (check::failureMode() == check::FailureMode::Throw) {
        check::CheckFailure f;
        f.kind = check::CheckKind::Assert;
        f.tick = t_current_tick;
        f.where = std::string(file) + ":" + std::to_string(line);
        f.what =
            std::string("assertion '") + cond + "' failed: " + msg;
        throw check::CheckError(std::move(f));
    }

    std::fprintf(stderr,
                 "panic: [t=%lluns] assertion '%s' failed at %s:%d: %s\n",
                 static_cast<unsigned long long>(t_current_tick), cond,
                 file, line, msg);
    std::abort();
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("panic", fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("fatal", fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vreport("warn", fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    if (g_log_level < 1)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreportTimed("info", fmt, ap);
    va_end(ap);
}

void
debug(const char *fmt, ...)
{
    if (g_log_level < 2)
        return;
    va_list ap;
    va_start(ap, fmt);
    vreportTimed("debug", fmt, ap);
    va_end(ap);
}

} // namespace hos::sim
