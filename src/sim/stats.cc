#include "sim/stats.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"

namespace hos::sim {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    total_ += v;
}

void
Distribution::reset()
{
    count_ = 0;
    total_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(nbuckets)),
      counts_(nbuckets, 0)
{
    hos_assert(hi > lo && nbuckets > 0, "bad histogram shape");
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    double idx = (v - lo_) / width_;
    std::size_t b;
    if (idx < 0.0) {
        b = 0;
    } else if (idx >= static_cast<double>(counts_.size())) {
        b = counts_.size() - 1;
    } else {
        b = static_cast<std::size_t>(idx);
    }
    counts_[b] += weight;
    samples_ += weight;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    samples_ = 0;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

Counter &
StatGroup::counter(const std::string &stat)
{
    return counters_[stat];
}

Gauge &
StatGroup::gauge(const std::string &stat)
{
    return gauges_[stat];
}

Distribution &
StatGroup::distribution(const std::string &stat)
{
    return dists_[stat];
}

Histogram &
StatGroup::histogram(const std::string &stat, double lo, double hi,
                     std::size_t nbuckets)
{
    auto it = histograms_.find(stat);
    if (it == histograms_.end()) {
        it = histograms_.try_emplace(stat, lo, hi, nbuckets).first;
    }
    return it->second;
}

const Counter &
StatGroup::findCounter(const std::string &stat) const
{
    auto it = counters_.find(stat);
    if (it == counters_.end())
        panic("unknown counter '%s.%s'", name_.c_str(), stat.c_str());
    return it->second;
}

const Gauge &
StatGroup::findGauge(const std::string &stat) const
{
    auto it = gauges_.find(stat);
    if (it == gauges_.end())
        panic("unknown gauge '%s.%s'", name_.c_str(), stat.c_str());
    return it->second;
}

const Distribution &
StatGroup::findDistribution(const std::string &stat) const
{
    auto it = dists_.find(stat);
    if (it == dists_.end())
        panic("unknown distribution '%s.%s'", name_.c_str(), stat.c_str());
    return it->second;
}

const Histogram &
StatGroup::findHistogram(const std::string &stat) const
{
    auto it = histograms_.find(stat);
    if (it == histograms_.end())
        panic("unknown histogram '%s.%s'", name_.c_str(), stat.c_str());
    return it->second;
}

bool
StatGroup::hasCounter(const std::string &stat) const
{
    return counters_.count(stat) > 0;
}

bool
StatGroup::hasGauge(const std::string &stat) const
{
    return gauges_.count(stat) > 0;
}

bool
StatGroup::hasDistribution(const std::string &stat) const
{
    return dists_.count(stat) > 0;
}

bool
StatGroup::hasHistogram(const std::string &stat) const
{
    return histograms_.count(stat) > 0;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : gauges_)
        kv.second.reset();
    for (auto &kv : dists_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

void
StatGroup::forEachScalar(
    const std::function<void(const std::string &, double)> &fn) const
{
    for (const auto &kv : counters_)
        fn(kv.first, static_cast<double>(kv.second.value()));
    for (const auto &kv : gauges_)
        fn(kv.first, static_cast<double>(kv.second.value()));
    for (const auto &kv : dists_) {
        fn(kv.first + ".count",
           static_cast<double>(kv.second.count()));
        fn(kv.first + ".mean", kv.second.mean());
        fn(kv.first + ".min", kv.second.min());
        fn(kv.first + ".max", kv.second.max());
    }
    for (const auto &kv : histograms_) {
        fn(kv.first + ".samples",
           static_cast<double>(kv.second.samples()));
        for (std::size_t b = 0; b < kv.second.buckets(); ++b) {
            fn(kv.first + ".bucket" + std::to_string(b),
               static_cast<double>(kv.second.bucketCount(b)));
        }
    }
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    forEachScalar([&](const std::string &stat, double v) {
        os << name_ << '.' << stat << ' ' << v << '\n';
    });
    return os.str();
}

void
StatRegistry::add(StatGroup *group, Refresh refresh)
{
    hos_assert(group != nullptr, "registering a null stat group");
    entries_[group->name()] = Entry{group, std::move(refresh)};
}

void
StatRegistry::remove(const std::string &name)
{
    entries_.erase(name);
}

StatGroup *
StatRegistry::find(const std::string &name) const
{
    auto it = entries_.find(name);
    return it == entries_.end() ? nullptr : it->second.group;
}

void
StatRegistry::refreshAll() const
{
    for (const auto &kv : entries_) {
        if (kv.second.refresh)
            kv.second.refresh();
    }
}

void
StatRegistry::forEach(const std::function<void(StatGroup &)> &fn) const
{
    for (const auto &kv : entries_)
        fn(*kv.second.group);
}

std::string
StatRegistry::dumpAll() const
{
    refreshAll();
    std::string out;
    forEach([&](StatGroup &g) { out += g.dump(); });
    return out;
}

} // namespace hos::sim
