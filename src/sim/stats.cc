#include "sim/stats.hh"

#include <algorithm>
#include <sstream>

#include "sim/log.hh"

namespace hos::sim {

void
Distribution::sample(double v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    total_ += v;
}

void
Distribution::reset()
{
    count_ = 0;
    total_ = 0.0;
    min_ = 0.0;
    max_ = 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t nbuckets)
    : lo_(lo), width_((hi - lo) / static_cast<double>(nbuckets)),
      counts_(nbuckets, 0)
{
    hos_assert(hi > lo && nbuckets > 0, "bad histogram shape");
}

void
Histogram::sample(double v, std::uint64_t weight)
{
    double idx = (v - lo_) / width_;
    std::size_t b;
    if (idx < 0.0) {
        b = 0;
    } else if (idx >= static_cast<double>(counts_.size())) {
        b = counts_.size() - 1;
    } else {
        b = static_cast<std::size_t>(idx);
    }
    counts_[b] += weight;
    samples_ += weight;
}

void
Histogram::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    samples_ = 0;
}

double
Histogram::bucketLo(std::size_t i) const
{
    return lo_ + width_ * static_cast<double>(i);
}

Counter &
StatGroup::counter(const std::string &stat)
{
    return counters_[stat];
}

Gauge &
StatGroup::gauge(const std::string &stat)
{
    return gauges_[stat];
}

Distribution &
StatGroup::distribution(const std::string &stat)
{
    return dists_[stat];
}

const Counter &
StatGroup::findCounter(const std::string &stat) const
{
    auto it = counters_.find(stat);
    if (it == counters_.end())
        panic("unknown counter '%s.%s'", name_.c_str(), stat.c_str());
    return it->second;
}

bool
StatGroup::hasCounter(const std::string &stat) const
{
    return counters_.count(stat) > 0;
}

void
StatGroup::resetAll()
{
    for (auto &kv : counters_)
        kv.second.reset();
    for (auto &kv : gauges_)
        kv.second.reset();
    for (auto &kv : dists_)
        kv.second.reset();
}

std::string
StatGroup::dump() const
{
    std::ostringstream os;
    for (const auto &kv : counters_)
        os << name_ << '.' << kv.first << ' ' << kv.second.value() << '\n';
    for (const auto &kv : gauges_)
        os << name_ << '.' << kv.first << ' ' << kv.second.value() << '\n';
    for (const auto &kv : dists_) {
        os << name_ << '.' << kv.first << ".mean " << kv.second.mean()
           << '\n';
        os << name_ << '.' << kv.first << ".max " << kv.second.max() << '\n';
    }
    return os.str();
}

} // namespace hos::sim
