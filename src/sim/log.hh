/**
 * @file
 * Logging and error-reporting helpers in the gem5 spirit.
 *
 * panic()  — an internal invariant was violated (a simulator bug);
 *            aborts the process.
 * fatal()  — the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameters); exits cleanly.
 * warn()   — something is questionable but the run continues.
 * inform() — status messages.
 */

#ifndef HOS_SIM_LOG_HH
#define HOS_SIM_LOG_HH

#include <cstdarg>
#include <string>

#include "sim/time.hh"

namespace hos::sim {

/** Global verbosity: 0 = quiet (warn/panic only), 1 = inform, 2 = debug. */
void setLogLevel(int level);
int logLevel();

/**
 * The current simulated tick, advanced by every EventQueue as it
 * fires events. inform()/debug() lines are stamped with it
 * ("[t=1.250ms] ...") so log output correlates with trace events; the
 * tracer uses it as the default timestamp for components that have no
 * event queue of their own (devices, swap). With several guests in
 * lockstep this is the clock of whichever queue last ran — exact per
 * VM, causally ordered across VMs. The tick is thread-local: parallel
 * sweep workers each carry the clock of their own simulation.
 */
Tick currentTick();
void setCurrentTick(Tick t);

/** Abort with a formatted message; use for internal invariant violations. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user/configuration errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning; the simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message (suppressed at log level 0). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a debug message (only at log level >= 2). */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * hos_assert's slow path: report the failed condition (stamped with
 * the current sim tick) and abort — or throw check::CheckError of
 * kind Assert when the check failure mode is Throw (HOS_CHECK_THROW
 * builds, or check::setFailureMode at runtime).
 */
[[noreturn]] void assertFail(const char *cond, const char *file, int line,
                             const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace hos::sim

/**
 * Assert a simulator invariant with a formatted explanation.
 * Unlike assert(), stays active in release builds: invariants in the
 * memory-management state machines are cheap relative to simulation
 * work.
 */
#define hos_assert(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::hos::sim::assertFail(#cond, __FILE__, __LINE__,              \
                                   __VA_ARGS__);                           \
        }                                                                  \
    } while (0)

#endif // HOS_SIM_LOG_HH
