/**
 * @file
 * Deterministic random-number generation.
 *
 * Every stochastic decision in the simulator (random placement policy,
 * workload address streams, request mixes) draws from an explicitly
 * seeded Rng so that runs are exactly reproducible. The generator is
 * xoshiro256** seeded via SplitMix64, which is fast and has no
 * observable bias for our use.
 */

#ifndef HOS_SIM_RNG_HH
#define HOS_SIM_RNG_HH

#include <cstdint>

#include "sim/log.hh"

namespace hos::sim {

/** Deterministic xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    // next/uniformInt/uniformDouble/chance sit on the workload inner
    // loop (every modelled access draws at least once), so they are
    // defined inline below the class.

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Zipf-distributed rank in [0, n) with skew parameter s.
     * Used by workload models for skewed page popularity
     * (key-value stores, graph vertex degree skew).
     * Uses rejection-inversion (Jim Gray's approximation) — O(1) per draw.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

  private:
    static std::uint64_t rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

inline std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

inline std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    hos_assert(bound > 0, "uniformInt bound must be positive");
    // Multiply-shift bounded rejection (Lemire); bias is eliminated by
    // rejecting the small sliver of values that would wrap.
    const std::uint64_t threshold = (-bound) % bound;
    for (;;) {
        const std::uint64_t r = next();
        const __uint128_t m = static_cast<__uint128_t>(r) * bound;
        if (static_cast<std::uint64_t>(m) >= threshold)
            return static_cast<std::uint64_t>(m >> 64);
    }
}

inline std::uint64_t
Rng::uniformRange(std::uint64_t lo, std::uint64_t hi)
{
    hos_assert(lo <= hi, "uniformRange lo > hi");
    return lo + uniformInt(hi - lo + 1);
}

inline double
Rng::uniformDouble()
{
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

inline bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformDouble() < p;
}

/**
 * Derive an independent seed from a base seed and a stream index.
 *
 * A pure SplitMix64 mix with no shared state, so it is safe to call
 * concurrently from sweep worker threads, and the derived seed
 * depends only on (base, stream) — never on which thread or in what
 * order the points execute. Used for per-replica seeding in
 * core::Sweep; distinct streams give statistically independent Rng
 * sequences.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream);

/** Two-index variant (e.g. replica x VM). */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t s1,
                         std::uint64_t s2);

} // namespace hos::sim

#endif // HOS_SIM_RNG_HH
