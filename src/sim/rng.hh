/**
 * @file
 * Deterministic random-number generation.
 *
 * Every stochastic decision in the simulator (random placement policy,
 * workload address streams, request mixes) draws from an explicitly
 * seeded Rng so that runs are exactly reproducible. The generator is
 * xoshiro256** seeded via SplitMix64, which is fast and has no
 * observable bias for our use.
 */

#ifndef HOS_SIM_RNG_HH
#define HOS_SIM_RNG_HH

#include <cstdint>

namespace hos::sim {

/** Deterministic xoshiro256** pseudo-random generator. */
class Rng
{
  public:
    /** Seed via SplitMix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t uniformRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniformDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Zipf-distributed rank in [0, n) with skew parameter s.
     * Used by workload models for skewed page popularity
     * (key-value stores, graph vertex degree skew).
     * Uses rejection-inversion (Jim Gray's approximation) — O(1) per draw.
     */
    std::uint64_t zipf(std::uint64_t n, double s);

  private:
    std::uint64_t state[4];
};

/**
 * Derive an independent seed from a base seed and a stream index.
 *
 * A pure SplitMix64 mix with no shared state, so it is safe to call
 * concurrently from sweep worker threads, and the derived seed
 * depends only on (base, stream) — never on which thread or in what
 * order the points execute. Used for per-replica seeding in
 * core::Sweep; distinct streams give statistically independent Rng
 * sequences.
 */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t stream);

/** Two-index variant (e.g. replica x VM). */
std::uint64_t deriveSeed(std::uint64_t base, std::uint64_t s1,
                         std::uint64_t s2);

} // namespace hos::sim

#endif // HOS_SIM_RNG_HH
