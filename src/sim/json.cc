#include "sim/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/log.hh"

namespace hos::sim {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[32];
    // %.12g is deterministic, round-trips every value the simulator
    // produces, and never emits a locale-dependent separator.
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
JsonWriter::separate()
{
    if (pending_key_) {
        pending_key_ = false;
        return; // value directly follows its key; no comma
    }
    if (!stack_.empty()) {
        if (stack_.back())
            os_ << ',';
        stack_.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    stack_.push_back(false);
}

void
JsonWriter::endObject()
{
    hos_assert(!stack_.empty(), "endObject with no open container");
    stack_.pop_back();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    stack_.push_back(false);
}

void
JsonWriter::endArray()
{
    hos_assert(!stack_.empty(), "endArray with no open container");
    stack_.pop_back();
    os_ << ']';
}

void
JsonWriter::key(const std::string &k)
{
    separate();
    os_ << '"' << jsonEscape(k) << "\":";
    pending_key_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    os_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    separate();
    os_ << jsonNumber(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
}

// --- Parser ---------------------------------------------------------

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

bool
JsonValue::asBool(bool dflt) const
{
    return kind == Kind::Bool ? boolean : dflt;
}

double
JsonValue::asDouble(double dflt) const
{
    return kind == Kind::Number ? number : dflt;
}

std::uint64_t
JsonValue::asU64(std::uint64_t dflt) const
{
    if (kind != Kind::Number || number < 0.0)
        return dflt;
    // Integral lexemes convert exactly; the double would round past
    // 2^53.
    if (!number_text.empty() &&
        number_text.find_first_not_of("0123456789") == std::string::npos)
        return std::strtoull(number_text.c_str(), nullptr, 10);
    return static_cast<std::uint64_t>(number);
}

std::string
JsonValue::asString(const std::string &dflt) const
{
    return kind == Kind::String ? string : dflt;
}

std::string
JsonValue::scalarText() const
{
    switch (kind) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return boolean ? "true" : "false";
      case Kind::Number:
        return number_text.empty() ? jsonNumber(number) : number_text;
      case Kind::String:
        return string;
      case Kind::Array:
      case Kind::Object:
        return "";
    }
    return "";
}

namespace {

/** Recursive-descent JSON parser with line tracking for errors. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {}

    std::optional<JsonValue>
    parse()
    {
        JsonValue v;
        if (!parseValue(v))
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing content after document");
            return std::nullopt;
        }
        return v;
    }

  private:
    bool
    fail(const std::string &what)
    {
        if (error_ && error_->empty())
            *error_ = "line " + std::to_string(line_) + ": " + what;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '\n') {
                ++line_;
                ++pos_;
            } else if (c == ' ' || c == '\t' || c == '\r') {
                ++pos_;
            } else if (c == '/' && pos_ + 1 < text_.size() &&
                       text_[pos_ + 1] == '/') {
                // Config convenience: // comment to end of line.
                while (pos_ < text_.size() && text_[pos_] != '\n')
                    ++pos_;
            } else {
                break;
            }
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parseLiteral(const char *lit)
    {
        const std::size_t n = std::char_traits<char>::length(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\n')
                return fail("unterminated string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size())
                      return fail("truncated \\u escape");
                  unsigned cp = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text_[pos_++];
                      cp <<= 4;
                      if (h >= '0' && h <= '9')
                          cp |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          cp |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          cp |= static_cast<unsigned>(h - 'A' + 10);
                      else
                          return fail("bad \\u escape digit");
                  }
                  // UTF-8 encode the BMP code point (the writer never
                  // emits surrogate pairs; accept and encode as-is).
                  if (cp < 0x80) {
                      out += static_cast<char>(cp);
                  } else if (cp < 0x800) {
                      out += static_cast<char>(0xC0 | (cp >> 6));
                      out += static_cast<char>(0x80 | (cp & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (cp >> 12));
                      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (cp & 0x3F));
                  }
                  break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        auto eatDigits = [&] {
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                ++pos_;
                digits = true;
            }
        };
        eatDigits();
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            eatDigits();
        }
        if (digits && pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '-' || text_[pos_] == '+'))
                ++pos_;
            eatDigits();
        }
        if (!digits) {
            pos_ = start;
            return fail("expected number");
        }
        out.kind = JsonValue::Kind::Number;
        out.number = std::strtod(text_.c_str() + start, nullptr);
        out.number_text = text_.substr(start, pos_ - start);
        return true;
    }

    bool
    parseValue(JsonValue &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                std::string key;
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == '}') {
                    ++pos_; // trailing comma
                    return true;
                }
                if (!parseString(key))
                    return false;
                if (!consume(':'))
                    return fail("expected ':' after key");
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.object.emplace_back(std::move(key), std::move(v));
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ']') {
                    ++pos_; // trailing comma
                    return true;
                }
                JsonValue v;
                if (!parseValue(v))
                    return false;
                out.array.push_back(std::move(v));
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.string);
        }
        if (c == 't') {
            if (!parseLiteral("true"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (c == 'f') {
            if (!parseLiteral("false"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (c == 'n') {
            if (!parseLiteral("null"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    const std::string &text_;
    std::string *error_;
    std::size_t pos_ = 0;
    std::size_t line_ = 1;
};

} // namespace

std::optional<JsonValue>
jsonParse(const std::string &text, std::string *error)
{
    if (error)
        error->clear();
    return Parser(text, error).parse();
}

std::optional<JsonValue>
jsonParseFile(const std::string &path, std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    return jsonParse(buf.str(), error);
}

} // namespace hos::sim
