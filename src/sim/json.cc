#include "sim/json.hh"

#include <cmath>
#include <cstdio>

#include "sim/log.hh"

namespace hos::sim {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buf[32];
    // %.12g is deterministic, round-trips every value the simulator
    // produces, and never emits a locale-dependent separator.
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

void
JsonWriter::separate()
{
    if (pending_key_) {
        pending_key_ = false;
        return; // value directly follows its key; no comma
    }
    if (!stack_.empty()) {
        if (stack_.back())
            os_ << ',';
        stack_.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    separate();
    os_ << '{';
    stack_.push_back(false);
}

void
JsonWriter::endObject()
{
    hos_assert(!stack_.empty(), "endObject with no open container");
    stack_.pop_back();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    os_ << '[';
    stack_.push_back(false);
}

void
JsonWriter::endArray()
{
    hos_assert(!stack_.empty(), "endArray with no open container");
    stack_.pop_back();
    os_ << ']';
}

void
JsonWriter::key(const std::string &k)
{
    separate();
    os_ << '"' << jsonEscape(k) << "\":";
    pending_key_ = true;
}

void
JsonWriter::value(const std::string &v)
{
    separate();
    os_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    separate();
    os_ << jsonNumber(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    separate();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    separate();
    os_ << (v ? "true" : "false");
}

} // namespace hos::sim
