/**
 * @file
 * Minimal streaming JSON writer.
 *
 * Every machine-readable artifact the simulator emits (Chrome traces,
 * stats time-series, results.json) goes through this one writer so
 * escaping and number formatting stay consistent and deterministic.
 * The writer is strictly streaming — no DOM — because traces can hold
 * tens of thousands of records.
 */

#ifndef HOS_SIM_JSON_HH
#define HOS_SIM_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace hos::sim {

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Format a double as a JSON number (finite; NaN/inf become 0). */
std::string jsonNumber(double v);

/**
 * Streaming JSON writer with comma/nesting bookkeeping. Usage:
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("name"); w.value("run");
 *   w.key("events"); w.beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);

    /** key + value in one call. */
    template <typename T>
    void
    kv(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

    /** True once every container has been closed. */
    bool balanced() const { return stack_.empty(); }

  private:
    /** Emit a separating comma if this container already has items. */
    void separate();

    std::ostream &os_;
    std::vector<bool> stack_; ///< per container: has at least one item
    bool pending_key_ = false;
};

} // namespace hos::sim

#endif // HOS_SIM_JSON_HH
