/**
 * @file
 * Minimal JSON support: a streaming writer and a small DOM parser.
 *
 * Every machine-readable artifact the simulator emits (Chrome traces,
 * stats time-series, results.json) goes through the one writer so
 * escaping and number formatting stay consistent and deterministic.
 * The writer is strictly streaming — no DOM — because traces can hold
 * tens of thousands of records.
 *
 * The parser is the opposite trade-off: scenario and sweep files are
 * tiny, so a recursive-descent parse into a JsonValue tree keeps the
 * loading code simple. It accepts strict JSON plus two conveniences
 * for hand-written configs: // line comments and trailing commas.
 */

#ifndef HOS_SIM_JSON_HH
#define HOS_SIM_JSON_HH

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace hos::sim {

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** Format a double as a JSON number (finite; NaN/inf become 0). */
std::string jsonNumber(double v);

/**
 * Streaming JSON writer with comma/nesting bookkeeping. Usage:
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.key("name"); w.value("run");
 *   w.key("events"); w.beginArray();
 *   ...
 *   w.endArray();
 *   w.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    void key(const std::string &k);

    void value(const std::string &v);
    void value(const char *v);
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v);

    /** key + value in one call. */
    template <typename T>
    void
    kv(const std::string &k, T v)
    {
        key(k);
        value(v);
    }

    /** True once every container has been closed. */
    bool balanced() const { return stack_.empty(); }

  private:
    /** Emit a separating comma if this container already has items. */
    void separate();

    std::ostream &os_;
    std::vector<bool> stack_; ///< per container: has at least one item
    bool pending_key_ = false;
};

/**
 * One node of a parsed JSON document. Plain aggregate — configuration
 * files are small enough that a copyable tree beats accessor
 * ceremony. Object members keep their source order.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /**
     * A number's source lexeme, verbatim. Doubles only carry 53
     * mantissa bits, so byte counts (1 TiB = 13 digits) and 64-bit
     * seeds would corrupt if re-rendered from `number`; scalarText()
     * and asU64() prefer this exact text.
     */
    std::string number_text;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member by key, or nullptr (also when not an object). */
    const JsonValue *find(const std::string &key) const;

    /** Typed reads with a fallback when the kind doesn't match. */
    bool asBool(bool dflt = false) const;
    double asDouble(double dflt = 0.0) const;
    std::uint64_t asU64(std::uint64_t dflt = 0) const;
    std::string asString(const std::string &dflt = "") const;

    /**
     * The value as a scalar literal: numbers/bools/null render as
     * they would in JSON, strings unquoted. Sweep axes use this to
     * carry heterogeneous JSON scalars uniformly.
     */
    std::string scalarText() const;
};

/**
 * Parse a complete JSON document. Returns nullopt on malformed input
 * and, when `error` is given, a "line N: what" description.
 */
std::optional<JsonValue> jsonParse(const std::string &text,
                                   std::string *error = nullptr);

/** As above, reading `path`; reports unreadable files via `error`. */
std::optional<JsonValue> jsonParseFile(const std::string &path,
                                       std::string *error = nullptr);

} // namespace hos::sim

#endif // HOS_SIM_JSON_HH
