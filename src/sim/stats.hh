/**
 * @file
 * Lightweight statistics framework.
 *
 * Modules register named statistics into a StatGroup; experiments and
 * benches read them back by name or dump them wholesale. The design is
 * a small, allocation-light take on gem5's stats package: scalar
 * counters, formulas evaluated at read time, and fixed-bucket
 * histograms.
 */

#ifndef HOS_SIM_STATS_HH
#define HOS_SIM_STATS_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace hos::sim {

/** A monotonically increasing scalar statistic. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    void set(std::uint64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A scalar that can move both ways (e.g., bytes currently resident). */
class Gauge
{
  public:
    Gauge() = default;

    void add(std::int64_t by) { value_ += by; }
    void sub(std::int64_t by) { value_ -= by; }
    void set(std::int64_t v) { value_ = v; }
    void reset() { value_ = 0; }
    std::int64_t value() const { return value_; }

  private:
    std::int64_t value_ = 0;
};

/** Running mean/min/max/total over a stream of samples. */
class Distribution
{
  public:
    void sample(double v);
    void reset();

    std::uint64_t count() const { return count_; }
    double total() const { return total_; }
    double mean() const { return count_ ? total_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

  private:
    std::uint64_t count_ = 0;
    double total_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width-bucket histogram. */
class Histogram
{
  public:
    /** Buckets cover [lo, hi) split into nbuckets; outliers clamp. */
    Histogram(double lo, double hi, std::size_t nbuckets);

    void sample(double v, std::uint64_t weight = 1);
    void reset();

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_.at(i); }
    double bucketLo(std::size_t i) const;
    std::uint64_t samples() const { return samples_; }

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t samples_ = 0;
};

/**
 * A named collection of statistics. Groups nest by name with '.'
 * separators purely by convention ("guest0.alloc.fastmem_miss").
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register (or fetch) a counter under this group. */
    Counter &counter(const std::string &stat);
    /** Register (or fetch) a gauge under this group. */
    Gauge &gauge(const std::string &stat);
    /** Register (or fetch) a distribution under this group. */
    Distribution &distribution(const std::string &stat);
    /**
     * Register (or fetch) a histogram under this group. The shape
     * parameters apply only on first registration; later fetches
     * return the existing histogram unchanged.
     */
    Histogram &histogram(const std::string &stat, double lo, double hi,
                         std::size_t nbuckets);

    /** Look up a counter; panics if absent (catches stat-name typos). */
    const Counter &findCounter(const std::string &stat) const;
    /** Look up a gauge; panics if absent. */
    const Gauge &findGauge(const std::string &stat) const;
    /** Look up a distribution; panics if absent. */
    const Distribution &findDistribution(const std::string &stat) const;
    /** Look up a histogram; panics if absent. */
    const Histogram &findHistogram(const std::string &stat) const;

    bool hasCounter(const std::string &stat) const;
    bool hasGauge(const std::string &stat) const;
    bool hasDistribution(const std::string &stat) const;
    bool hasHistogram(const std::string &stat) const;

    const std::string &name() const { return name_; }

    /** Reset every statistic in the group. */
    void resetAll();

    /** Render "name.stat value" lines, sorted, for dumps. */
    std::string dump() const;

    /**
     * Visit every statistic as a named scalar sample — counters and
     * gauges by value, distributions as .count/.mean/.min/.max,
     * histograms as .samples plus per-bucket counts. This is the
     * one flattening the snapshot/export machinery relies on.
     */
    void
    forEachScalar(const std::function<void(const std::string &, double)>
                      &fn) const;

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Distribution> dists_;
    std::map<std::string, Histogram> histograms_;
};

/**
 * A central directory of StatGroups, discoverable by name. Components
 * register their group (optionally with a refresh hook that syncs the
 * group from live subsystem state); the snapshot daemon and dump
 * paths walk the registry instead of knowing each component.
 */
class StatRegistry
{
  public:
    using Refresh = std::function<void()>;

    /**
     * Register a group under its own name. The registry does not own
     * the group; callers must remove() it before the group dies.
     * Re-registering a name replaces the entry (VM slots rebuild).
     */
    void add(StatGroup *group, Refresh refresh = nullptr);
    void remove(const std::string &name);

    /** Look up a group by name; nullptr when absent. */
    StatGroup *find(const std::string &name) const;

    std::size_t size() const { return entries_.size(); }

    /** Run every registered refresh hook (before sampling/dumping). */
    void refreshAll() const;

    /** Visit groups in name order (deterministic exports). */
    void forEach(const std::function<void(StatGroup &)> &fn) const;

    /** refreshAll + concatenated dump() of every group. */
    std::string dumpAll() const;

  private:
    struct Entry
    {
        StatGroup *group = nullptr;
        Refresh refresh;
    };
    std::map<std::string, Entry> entries_;
};

} // namespace hos::sim

#endif // HOS_SIM_STATS_HH
