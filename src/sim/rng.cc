#include "sim/rng.hh"

#include <cmath>

#include "sim/log.hh"

namespace hos::sim {

namespace {

std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}


} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state)
        s = splitMix64(sm);
}






std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t stream)
{
    // Feed both words through the SplitMix64 permutation; the golden-
    // gamma increment decorrelates consecutive stream indices.
    std::uint64_t x = base ^ 0xA3EC647659359ACDull;
    (void)splitMix64(x);
    x ^= stream;
    std::uint64_t s = splitMix64(x);
    // Never hand out 0: xoshiro's all-zero state is degenerate and a
    // zero seed reads as "default" in too many places.
    return s ? s : 0x9E3779B97F4A7C15ull;
}

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t s1, std::uint64_t s2)
{
    return deriveSeed(deriveSeed(base, s1), s2);
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    hos_assert(n > 0, "zipf requires a non-empty range");
    if (n == 1)
        return 0;
    // Rejection-inversion sampling over the harmonic integral.
    const double q = s;
    const double one_minus_q = 1.0 - q;
    auto h_integral = [&](double x) {
        if (one_minus_q == 0.0)
            return std::log(x);
        return (std::pow(x, one_minus_q) - 1.0) / one_minus_q;
    };
    auto h_integral_inv = [&](double y) {
        if (one_minus_q == 0.0)
            return std::exp(y);
        return std::pow(1.0 + y * one_minus_q, 1.0 / one_minus_q);
    };
    const double hx0 = h_integral(0.5);
    const double hxn = h_integral(static_cast<double>(n) + 0.5);
    for (;;) {
        const double u = hx0 + uniformDouble() * (hxn - hx0);
        const double x = h_integral_inv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n)
            k = n;
        // Accept with probability proportional to the true pmf over the
        // envelope; the envelope is tight so acceptance is ~97%.
        const double accept =
            (h_integral(static_cast<double>(k) + 0.5) -
             h_integral(static_cast<double>(k) - 0.5)) /
            std::pow(static_cast<double>(k), -q);
        if (uniformDouble() * accept <= 1.0)
            return k - 1;
    }
}

} // namespace hos::sim
