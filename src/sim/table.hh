/**
 * @file
 * Fixed-width table printer for paper-style output.
 *
 * Every bench binary prints the rows/series of one table or figure from
 * the paper; this helper keeps those outputs aligned and uniform.
 */

#ifndef HOS_SIM_TABLE_HH
#define HOS_SIM_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hos::sim {

/** Accumulates rows of string cells and renders an aligned text table. */
class Table
{
  public:
    /** @param title caption printed above the table. */
    explicit Table(std::string title);

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 2);

    /** Format an integer. */
    static std::string num(std::uint64_t v);

    /** Format a percentage ("12.3%"). */
    static std::string pct(double v, int precision = 1);

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace hos::sim

#endif // HOS_SIM_TABLE_HH
