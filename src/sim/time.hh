/**
 * @file
 * Simulated-time primitives.
 *
 * All simulated time in HeteroOS is expressed in integer nanoseconds
 * (a Tick). Helper constructors exist for the units the paper uses
 * (ns latencies, ms scan intervals, second-scale runtimes).
 */

#ifndef HOS_SIM_TIME_HH
#define HOS_SIM_TIME_HH

#include <cstdint>

namespace hos::sim {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** A span of simulated time in nanoseconds. */
using Duration = std::uint64_t;

constexpr Tick maxTick = ~Tick(0);

/** Construct a duration from nanoseconds. */
constexpr Duration
nanoseconds(std::uint64_t n)
{
    return n;
}

/** Construct a duration from microseconds. */
constexpr Duration
microseconds(std::uint64_t us)
{
    return us * 1000ull;
}

/** Construct a duration from milliseconds. */
constexpr Duration
milliseconds(std::uint64_t ms)
{
    return ms * 1000ull * 1000ull;
}

/** Construct a duration from seconds. */
constexpr Duration
seconds(std::uint64_t s)
{
    return s * 1000ull * 1000ull * 1000ull;
}

/** Convert a duration to (double) seconds, for reporting. */
constexpr double
toSeconds(Duration d)
{
    return static_cast<double>(d) / 1e9;
}

/** Convert a duration to (double) milliseconds, for reporting. */
constexpr double
toMilliseconds(Duration d)
{
    return static_cast<double>(d) / 1e6;
}

/** Convert a duration to (double) microseconds, for reporting. */
constexpr double
toMicroseconds(Duration d)
{
    return static_cast<double>(d) / 1e3;
}

} // namespace hos::sim

#endif // HOS_SIM_TIME_HH
