#include "sim/event_queue.hh"

#include <memory>

#include "sim/log.hh"

namespace hos::sim {

void
EventQueue::schedule(Tick when, std::function<void()> action)
{
    if (when < now_)
        when = now_;
    heap_.push(Event{when, next_seq_++, std::move(action)});
}

void
EventQueue::scheduleAfter(Duration delay, std::function<void()> action)
{
    schedule(now_ + delay, std::move(action));
}

void
EventQueue::schedulePeriodic(Duration period,
                             std::function<Duration(Duration)> action)
{
    hos_assert(period > 0, "periodic event needs a nonzero period");
    // The shared_ptr lets the rescheduling lambda refer to itself.
    auto self = std::make_shared<std::function<void(Duration)>>();
    *self = [this, action = std::move(action), self](Duration cur) {
        const Duration next = action(cur);
        if (next > 0)
            scheduleAfter(next, [self, next] { (*self)(next); });
    };
    scheduleAfter(period, [self, period] { (*self)(period); });
}

void
EventQueue::runUntil(Tick t)
{
    while (!heap_.empty() && heap_.top().when <= t) {
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        setCurrentTick(now_);
        ev.action();
    }
    if (t > now_)
        now_ = t;
    setCurrentTick(now_);
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
}

} // namespace hos::sim
