#include "sim/event_queue.hh"

#include <algorithm>
#include <bit>
#include <memory>

#include "sim/log.hh"

namespace hos::sim {

void
EventQueue::resetWheel()
{
    slab_.clear();
    free_ = npos;
    pending_ = 0;
    occupied_.fill(0);
    for (auto &level : slots_)
        level.fill(npos);
}

std::uint32_t
EventQueue::allocNode()
{
    if (free_ != npos) {
        const std::uint32_t idx = free_;
        free_ = slab_[idx].next;
        return idx;
    }
    hos_assert(slab_.size() < npos, "event slab exhausted");
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void
EventQueue::freeNode(std::uint32_t idx)
{
    Node &n = slab_[idx];
    n.action = nullptr; // release closure storage for reuse
    n.next = free_;
    free_ = idx;
}

void
EventQueue::placeNode(std::uint32_t idx)
{
    Node &n = slab_[idx];
    // Lowest level whose parent block still contains both now_ and
    // the deadline; within it the slot is the deadline's digit.
    unsigned level = 0;
    while (shr(n.when ^ now_, slotBits * (level + 1)) != 0)
        ++level;
    hos_assert(level < numLevels, "tick outside wheel range");
    const auto slot =
        static_cast<unsigned>(shr(n.when, slotBits * level) &
                              (numSlots - 1));
    n.next = slots_[level][slot];
    slots_[level][slot] = idx;
    occupied_[level] |= std::uint64_t{1} << slot;
}

void
EventQueue::advanceTo(Tick nt)
{
    const Tick old = now_;
    now_ = nt;
    setCurrentTick(now_);
    if (old == nt)
        return;
    // Each level whose current block changed must push the contents
    // of its newly-current slot down to finer levels; otherwise an
    // event filed coarsely in the past could hide behind a later
    // event filed finely after the clock moved.
    for (unsigned level = 1; level < numLevels; ++level) {
        if (shr(old, slotBits * level) == shr(nt, slotBits * level))
            break; // higher levels unchanged too
        const auto slot =
            static_cast<unsigned>(shr(nt, slotBits * level) &
                                  (numSlots - 1));
        std::uint32_t idx = slots_[level][slot];
        if (idx == npos)
            continue;
        slots_[level][slot] = npos;
        occupied_[level] &= ~(std::uint64_t{1} << slot);
        while (idx != npos) {
            const std::uint32_t next = slab_[idx].next;
            placeNode(idx); // lands at a finer level now
            idx = next;
        }
    }
}

bool
EventQueue::earliestEvent(Tick &out) const
{
    // Levels are radix-ordered: every pending event at a finer level
    // is due before any event at a coarser one, and within a level
    // slots are time-ordered from the current position up.
    for (unsigned level = 0; level < numLevels; ++level) {
        if (occupied_[level] == 0)
            continue;
        const auto pos =
            static_cast<unsigned>(shr(now_, slotBits * level) &
                                  (numSlots - 1));
        const std::uint64_t mask =
            occupied_[level] & ~((std::uint64_t{1} << pos) - 1);
        hos_assert(mask != 0, "stale wheel slot behind the clock");
        const auto slot =
            static_cast<unsigned>(std::countr_zero(mask));
        if (level == 0) {
            // All events in a level-0 slot share one exact tick.
            out = (now_ & ~Tick{numSlots - 1}) | slot;
            return true;
        }
        // A coarse slot spans many ticks; the chain minimum decides.
        Tick best = 0;
        bool have = false;
        for (std::uint32_t idx = slots_[level][slot]; idx != npos;
             idx = slab_[idx].next) {
            if (!have || slab_[idx].when < best) {
                best = slab_[idx].when;
                have = true;
            }
        }
        hos_assert(have, "occupied wheel slot with empty chain");
        out = best;
        return true;
    }
    return false;
}

void
EventQueue::schedule(Tick when, std::function<void()> action)
{
    if (when < now_)
        when = now_;
    const std::uint32_t idx = allocNode();
    Node &n = slab_[idx];
    n.when = when;
    n.seq = next_seq_++;
    n.action = std::move(action);
    placeNode(idx);
    ++pending_;
}

void
EventQueue::scheduleAfter(Duration delay, std::function<void()> action)
{
    schedule(now_ + delay, std::move(action));
}

void
EventQueue::schedulePeriodic(Duration period,
                             std::function<Duration(Duration)> action)
{
    hos_assert(period > 0, "periodic event needs a nonzero period");
    // The shared_ptr lets the rescheduling lambda refer to itself.
    auto self = std::make_shared<std::function<void(Duration)>>();
    *self = [this, action = std::move(action), self](Duration cur) {
        const Duration next = action(cur);
        if (next > 0)
            scheduleAfter(next, [self, next] { (*self)(next); });
    };
    scheduleAfter(period, [self, period] { (*self)(period); });
}

void
EventQueue::runUntil(Tick t)
{
    // One entry per same-tick event: (seq, action) pulled out of the
    // slab before running, so actions are free to schedule (and grow
    // the slab) without invalidating anything.
    std::vector<std::pair<std::uint64_t, std::function<void()>>> batch;
    Tick due;
    while (earliestEvent(due) && due <= t) {
        advanceTo(due);
        const auto slot = static_cast<unsigned>(due & (numSlots - 1));
        const std::uint64_t bit = std::uint64_t{1} << slot;
        // Re-check after each batch: actions may schedule for the
        // current tick, and those must still fire inside this tick.
        while (occupied_[0] & bit) {
            batch.clear();
            std::uint32_t idx = slots_[0][slot];
            slots_[0][slot] = npos;
            occupied_[0] &= ~bit;
            while (idx != npos) {
                Node &n = slab_[idx];
                hos_assert(n.when == due, "mistimed level-0 event");
                batch.emplace_back(n.seq, std::move(n.action));
                const std::uint32_t next = n.next;
                freeNode(idx);
                idx = next;
            }
            pending_ -= batch.size();
            // Slot chains are LIFO; restore schedule (FIFO) order.
            std::sort(batch.begin(), batch.end(),
                      [](const auto &a, const auto &b) {
                          return a.first < b.first;
                      });
            for (auto &[seq, action] : batch)
                action();
        }
    }
    if (t > now_)
        advanceTo(t);
    else
        setCurrentTick(now_);
}

void
EventQueue::clear()
{
    resetWheel();
}

} // namespace hos::sim
