#include "sim/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace hos::sim {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::pct(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
    return buf;
}

std::string
Table::render() const
{
    // Compute column widths over header + rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &c = i < cells.size() ? cells[i] : std::string();
            os << c;
            if (i + 1 < widths.size())
                os << std::string(widths[i] - c.size() + 2, ' ');
        }
        os << '\n';
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t total = 0;
        for (std::size_t w : widths)
            total += w + 2;
        os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputs("\n", stdout);
    std::fflush(stdout);
}

} // namespace hos::sim
