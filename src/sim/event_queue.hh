/**
 * @file
 * Discrete-event queue.
 *
 * The simulation is largely phase-driven (workloads advance simulated
 * time in chunks), but periodic daemons — hotness-tracking scans, LRU
 * reclaim passes, balloon adjustments, writeback — are scheduled as
 * events so their cadence interleaves correctly with workload progress.
 */

#ifndef HOS_SIM_EVENT_QUEUE_HH
#define HOS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.hh"

namespace hos::sim {

/** An event: a callback due at a simulated tick. */
struct Event
{
    Tick when;
    std::uint64_t seq;  ///< tie-breaker: FIFO among same-tick events
    std::function<void()> action;
};

/**
 * A minimal discrete-event scheduler.
 *
 * Time only moves via runUntil(): the workload engine advances its own
 * clock and calls runUntil(now) so that daemons due before `now` fire
 * in order. Events may schedule further events.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule an action at absolute tick `when` (>= now). */
    void schedule(Tick when, std::function<void()> action);

    /** Schedule an action `delay` after now. */
    void scheduleAfter(Duration delay, std::function<void()> action);

    /**
     * Schedule `action` every `period`, starting one period from now.
     * The action returns the next period (0 = stop), which lets daemons
     * adapt their own cadence (Equation 1 in the paper).
     */
    void schedulePeriodic(Duration period,
                          std::function<Duration(Duration)> action);

    /** Fire all events due at or before `t`, and advance now to `t`. */
    void runUntil(Tick t);

    /** Number of pending events. */
    std::size_t pending() const { return heap_.size(); }

    /** Drop all pending events (end of run). */
    void clear();

  private:
    struct Later
    {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

} // namespace hos::sim

#endif // HOS_SIM_EVENT_QUEUE_HH
