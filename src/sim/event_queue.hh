/**
 * @file
 * Discrete-event queue.
 *
 * The simulation is largely phase-driven (workloads advance simulated
 * time in chunks), but periodic daemons — hotness-tracking scans, LRU
 * reclaim passes, balloon adjustments, writeback — are scheduled as
 * events so their cadence interleaves correctly with workload progress.
 *
 * The scheduler is a hierarchical timer wheel over an intrusive slab
 * of event nodes rather than a binary heap: the steady state here is
 * a handful of periodic daemons rescheduling themselves every epoch,
 * and a wheel makes that reschedule an O(1) list push with no
 * per-event allocation (freed nodes recycle through a free list,
 * reusing their std::function capacity). Same-tick events dispatch as
 * one batch, ordered by their schedule sequence number, so the
 * observable firing order is bit-identical to the former heap's
 * (when, seq) order.
 */

#ifndef HOS_SIM_EVENT_QUEUE_HH
#define HOS_SIM_EVENT_QUEUE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/time.hh"

namespace hos::sim {

/**
 * A minimal discrete-event scheduler.
 *
 * Time only moves via runUntil(): the workload engine advances its own
 * clock and calls runUntil(now) so that daemons due before `now` fire
 * in order. Events may schedule further events.
 */
class EventQueue
{
  public:
    EventQueue() { resetWheel(); }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Schedule an action at absolute tick `when` (>= now). */
    void schedule(Tick when, std::function<void()> action);

    /** Schedule an action `delay` after now. */
    void scheduleAfter(Duration delay, std::function<void()> action);

    /**
     * Schedule `action` every `period`, starting one period from now.
     * The action returns the next period (0 = stop), which lets daemons
     * adapt their own cadence (Equation 1 in the paper).
     */
    void schedulePeriodic(Duration period,
                          std::function<Duration(Duration)> action);

    /** Fire all events due at or before `t`, and advance now to `t`. */
    void runUntil(Tick t);

    /** Number of pending events. */
    std::size_t pending() const { return pending_; }

    /** Drop all pending events (end of run). */
    void clear();

  private:
    /// 64 slots per level; 11 levels * 6 bits cover the full Tick
    /// range (the top level absorbs any remaining high bits).
    static constexpr unsigned slotBits = 6;
    static constexpr unsigned numSlots = 1u << slotBits;
    static constexpr unsigned numLevels = 11;
    static constexpr std::uint32_t npos = 0xffffffffu;

    /** Slab-resident event node, chained intrusively per slot. */
    struct Node
    {
        Tick when = 0;
        std::uint64_t seq = 0; ///< FIFO tie-break among same-tick events
        std::function<void()> action;
        std::uint32_t next = npos; ///< slot chain / free list link
    };

    /// Tick shifted by a possibly >= 64 bit count (level 10 uses 66).
    static Tick shr(Tick x, unsigned bits)
    {
        return bits >= 64 ? 0 : x >> bits;
    }

    std::uint32_t allocNode();
    void freeNode(std::uint32_t idx);
    /** File a node into the wheel relative to the current now_. */
    void placeNode(std::uint32_t idx);
    /**
     * Move now_ to `nt` and cascade each level's newly-current slot
     * down so lower levels regain their "due soon" resolution.
     */
    void advanceTo(Tick nt);
    /** Earliest pending event time, or false if the wheel is empty. */
    bool earliestEvent(Tick &out) const;
    void resetWheel();

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::size_t pending_ = 0;
    std::vector<Node> slab_;
    std::uint32_t free_ = npos;
    std::array<std::uint64_t, numLevels> occupied_;
    std::array<std::array<std::uint32_t, numSlots>, numLevels> slots_;
};

} // namespace hos::sim

#endif // HOS_SIM_EVENT_QUEUE_HH
