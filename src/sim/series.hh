/**
 * @file
 * WindowedSeries: a fixed-capacity time-series ring with deterministic
 * stride-decimation.
 *
 * A series accepts (tick, value) samples on some cadence and never
 * grows past its capacity: when full it compacts by keeping every
 * other retained sample (even offsets) and doubling its stride, so
 * from then on only every stride-th *offered* sample is recorded.
 * The retained set is therefore a pure function of (capacity, number
 * of samples offered) — two runs offering the same samples keep the
 * same subset, which is what lets exported time-series stay
 * byte-identical across runs and machines.
 *
 * The long-run shape is a uniform thinning of the whole run rather
 * than a sliding window: convergence plots want the early transient
 * as much as the steady state. Memory is O(capacity) regardless of
 * run length.
 *
 * The value type is a template parameter: hos::metrics instantiates
 * std::int64_t (its integer-only rule), the stats snapshotter a full
 * snapshot record. Both ride the same decimation clock.
 */

#ifndef HOS_SIM_SERIES_HH
#define HOS_SIM_SERIES_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hh"

namespace hos::sim {

template <typename V>
class WindowedSeries
{
  public:
    explicit WindowedSeries(std::size_t capacity = 512)
        : capacity_(capacity < 2 ? 2 : capacity)
    {
    }

    /**
     * Offer one sample. Records it only when the offer index lands on
     * the current stride; compacts (and doubles the stride) when the
     * buffer is full.
     */
    void
    push(Tick t, V v)
    {
        const std::uint64_t idx = offered_++;
        if (idx % stride_ != 0)
            return;
        if (times_.size() == capacity_)
            compact();
        // Compaction doubled the stride; this sample may no longer
        // be on it.
        if (idx % stride_ != 0)
            return;
        times_.push_back(t);
        values_.push_back(std::move(v));
    }

    std::size_t size() const { return times_.size(); }
    std::size_t capacity() const { return capacity_; }
    /** Offered samples between retained ones (power of two). */
    std::uint64_t stride() const { return stride_; }
    /** Total samples offered, retained or not. */
    std::uint64_t offered() const { return offered_; }

    Tick timeAt(std::size_t i) const { return times_[i]; }
    const V &valueAt(std::size_t i) const { return values_[i]; }

    const std::vector<Tick> &times() const { return times_; }
    const std::vector<V> &values() const { return values_; }

    void
    clear()
    {
        times_.clear();
        values_.clear();
        stride_ = 1;
        offered_ = 0;
    }

  private:
    void
    compact()
    {
        // Keep even offsets: retained sample k was offered at index
        // k * stride, so the survivors sit exactly on the doubled
        // stride.
        std::size_t out = 0;
        for (std::size_t i = 0; i < times_.size(); i += 2, ++out) {
            times_[out] = times_[i];
            values_[out] = std::move(values_[i]);
        }
        times_.resize(out);
        values_.resize(out);
        stride_ *= 2;
    }

    std::size_t capacity_;
    std::uint64_t stride_ = 1;
    std::uint64_t offered_ = 0;
    std::vector<Tick> times_;
    std::vector<V> values_;
};

} // namespace hos::sim

#endif // HOS_SIM_SERIES_HH
