#include "core/scenario.hh"

#include <cstdlib>
#include <sstream>

#include "sim/log.hh"

namespace hos::core {

namespace {

struct ApproachEntry
{
    Approach a;
    const char *key;  ///< CLI / JSON key
    const char *name; ///< display name
};

constexpr ApproachEntry kApproaches[] = {
    {Approach::SlowMemOnly, "slow", "SlowMem-only"},
    {Approach::FastMemOnly, "fast", "FastMem-only"},
    {Approach::Random, "random", "Random"},
    {Approach::NumaPreferred, "numa", "NUMA-preferred"},
    {Approach::HeapOd, "heap-od", "Heap-OD"},
    {Approach::HeapIoSlabOd, "od", "Heap-IO-Slab-OD"},
    {Approach::HeteroLru, "lru", "HeteroOS-LRU"},
    {Approach::VmmExclusive, "vmm", "VMM-exclusive"},
    {Approach::Coordinated, "coord", "HeteroOS-coordinated"},
};

struct AppEntry
{
    workload::AppId id;
    const char *key;
};

constexpr AppEntry kApps[] = {
    {workload::AppId::GraphChi, "graphchi"},
    {workload::AppId::XStream, "xstream"},
    {workload::AppId::Metis, "metis"},
    {workload::AppId::LevelDb, "leveldb"},
    {workload::AppId::Redis, "redis"},
    {workload::AppId::Nginx, "nginx"},
};

bool
setError(std::string *error, const std::string &what)
{
    if (error)
        *error = what;
    return false;
}

/** Parse a non-negative number from scalar text (axis values, --set). */
bool
parseNumber(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

/**
 * Exact u64 from scalar text. Plain digit strings go through
 * strtoull — a double round-trip would corrupt 1 TiB byte counts and
 * derived 64-bit seeds — while "4e9"-style texts take the double
 * path.
 */
std::uint64_t
exactU64(const std::string &text, double num)
{
    if (!text.empty() &&
        text.find_first_not_of("0123456789") == std::string::npos)
        return std::strtoull(text.c_str(), nullptr, 10);
    return static_cast<std::uint64_t>(num);
}

/**
 * One-time deprecation notice for the pre-`hotness` loose keys. The
 * keys keep parsing forever; the nag tells scenario authors where the
 * knob lives now.
 */
void
warnLooseHotnessKey(const std::string &key, const char *new_key)
{
    static bool warned = false;
    if (warned)
        return;
    warned = true;
    sim::warn("scenario key '%s' is deprecated; set it inside the "
              "structured 'hotness' object (hotness.%s)",
              key.c_str(), new_key);
}

bool
parseBool(const std::string &value, bool &out)
{
    if (value == "true" || value == "1") {
        out = true;
        return true;
    }
    if (value == "false" || value == "0") {
        out = false;
        return true;
    }
    return false;
}

} // namespace

bool
HotnessSpec::isDefault() const
{
    return backend == "pte_scan" && !interval_ms && !pages_per_scan &&
           !hot_threshold && !adaptive && !free_run_skip &&
           !region_min && !region_max && !region_probes &&
           !region_min_pages && !region_split_threshold &&
           !region_merge_heat_delta && !legacy_placement_sampling;
}

vmm::HotnessConfig
HotnessSpec::apply(vmm::HotnessConfig base) const
{
    const auto b = vmm::parseHotnessBackend(backend);
    // Unknown backend strings are rejected at parse time
    // (applyScenarioParam); a hand-built spec gets the same check here.
    if (!b)
        sim::panic("unknown hotness backend '%s'", backend.c_str());
    base.backend = *b;
    if (interval_ms)
        base.interval = sim::milliseconds(*interval_ms);
    if (pages_per_scan)
        base.pages_per_scan = *pages_per_scan;
    if (hot_threshold)
        base.hot_threshold = static_cast<std::uint16_t>(*hot_threshold);
    if (adaptive)
        base.adaptive = *adaptive;
    if (free_run_skip)
        base.free_run_skip = *free_run_skip;
    if (region_min)
        base.region_min = *region_min;
    if (region_max)
        base.region_max = *region_max;
    if (region_probes)
        base.region_probes = *region_probes;
    if (region_min_pages)
        base.region_min_pages = *region_min_pages;
    if (region_split_threshold)
        base.region_split_threshold = *region_split_threshold;
    if (region_merge_heat_delta) {
        base.region_merge_heat_delta =
            static_cast<std::uint16_t>(*region_merge_heat_delta);
    }
    return base;
}

const char *
approachName(Approach a)
{
    for (const auto &e : kApproaches) {
        if (e.a == a)
            return e.name;
    }
    return "?";
}

const char *
approachKey(Approach a)
{
    for (const auto &e : kApproaches) {
        if (e.a == a)
            return e.key;
    }
    return "?";
}

std::optional<Approach>
parseApproach(const std::string &key)
{
    for (const auto &e : kApproaches) {
        if (key == e.key)
            return e.a;
    }
    return std::nullopt;
}

const char *
appKey(workload::AppId id)
{
    for (const auto &e : kApps) {
        if (e.id == id)
            return e.key;
    }
    return "?";
}

std::optional<workload::AppId>
parseApp(const std::string &key)
{
    for (const auto &e : kApps) {
        if (key == e.key)
            return e.id;
    }
    return std::nullopt;
}

HostConfig
Scenario::host() const
{
    HostConfig host;
    host.llc.size_bytes = llc_bytes;

    if (approach == Approach::FastMemOnly) {
        // Ideal baseline: FastMem with unlimited capacity.
        host.fast =
            mem::dramSpec(fast_bytes + slow_bytes + 8 * mem::gib);
        host.has_slow = false;
        return host;
    }

    host.fast = mem::dramSpec(fast_bytes);
    if (slow_override) {
        host.slow = *slow_override;
        host.slow.capacity_bytes = slow_bytes;
    } else {
        host.slow = mem::throttledSpec(slow_lat_factor, slow_bw_factor,
                                       slow_bytes);
    }
    if (approach == Approach::SlowMemOnly) {
        // The naive floor never touches FastMem; don't even give the
        // guest a fast node.
        host.has_fast = false;
    }
    return host;
}

GuestSizing
Scenario::sizing() const
{
    GuestSizing sizing;
    sizing.seed = seed;
    sizing.cpus = cpus;
    return sizing;
}

std::string
Scenario::label() const
{
    if (!name.empty())
        return name;
    return std::string(appKey(app)) + "/" + approachKey(approach);
}

void
scenarioToJson(sim::JsonWriter &w, const Scenario &s)
{
    w.beginObject();
    w.kv("app", appKey(s.app));
    w.kv("approach", approachKey(s.approach));
    w.kv("slow_lat_factor", s.slow_lat_factor);
    w.kv("slow_bw_factor", s.slow_bw_factor);
    // Byte sizes go through the integer path: %.12g would corrupt
    // counts past a terabyte.
    w.kv("fast_bytes", s.fast_bytes);
    w.kv("slow_bytes", s.slow_bytes);
    w.kv("llc_bytes", s.llc_bytes);
    w.kv("scale", s.scale);
    w.kv("seed", s.seed);
    w.kv("cpus", static_cast<std::uint64_t>(s.cpus));
    // Emitted only when set so existing scenario JSON stays stable.
    if (!s.hotness.isDefault()) {
        const HotnessSpec &h = s.hotness;
        w.key("hotness");
        w.beginObject();
        if (h.backend != "pte_scan")
            w.kv("backend", h.backend);
        if (h.interval_ms)
            w.kv("interval_ms", *h.interval_ms);
        if (h.pages_per_scan)
            w.kv("pages_per_scan", *h.pages_per_scan);
        if (h.hot_threshold)
            w.kv("hot_threshold",
                 static_cast<std::uint64_t>(*h.hot_threshold));
        if (h.adaptive)
            w.kv("adaptive", *h.adaptive);
        if (h.free_run_skip)
            w.kv("free_run_skip", *h.free_run_skip);
        if (h.region_min)
            w.kv("region_min",
                 static_cast<std::uint64_t>(*h.region_min));
        if (h.region_max)
            w.kv("region_max",
                 static_cast<std::uint64_t>(*h.region_max));
        if (h.region_probes)
            w.kv("region_probes",
                 static_cast<std::uint64_t>(*h.region_probes));
        if (h.region_min_pages)
            w.kv("region_min_pages", *h.region_min_pages);
        if (h.region_split_threshold)
            w.kv("region_split_threshold", *h.region_split_threshold);
        if (h.region_merge_heat_delta)
            w.kv("region_merge_heat_delta",
                 static_cast<std::uint64_t>(*h.region_merge_heat_delta));
        if (h.legacy_placement_sampling)
            w.kv("legacy_placement_sampling", true);
        w.endObject();
    }
    if (s.profiling)
        w.kv("profiling", true);
    if (s.xray)
        w.kv("xray", true);
    if (s.metrics)
        w.kv("metrics", true);
    if (!s.name.empty())
        w.kv("name", s.name);
    if (s.slow_override) {
        w.key("slow_override");
        w.beginObject();
        w.kv("name", s.slow_override->name);
        w.kv("load_latency_ns", s.slow_override->load_latency_ns);
        w.kv("store_latency_ns", s.slow_override->store_latency_ns);
        w.kv("bandwidth_gbps", s.slow_override->bandwidth_gbps);
        w.endObject();
    }
    w.endObject();
}

std::string
scenarioToJson(const Scenario &s)
{
    std::ostringstream os;
    sim::JsonWriter w(os);
    scenarioToJson(w, s);
    return os.str();
}

std::optional<Scenario>
scenarioFromJson(const sim::JsonValue &v, std::string *error)
{
    if (!v.isObject()) {
        setError(error, "scenario must be a JSON object");
        return std::nullopt;
    }

    Scenario s;
    for (const auto &[key, val] : v.object) {
        if (key == "slow_override") {
            if (!val.isObject()) {
                setError(error, "slow_override must be an object");
                return std::nullopt;
            }
            mem::MemTierSpec spec;
            spec.name = "custom";
            if (const auto *p = val.find("name"))
                spec.name = p->asString(spec.name);
            if (const auto *p = val.find("load_latency_ns"))
                spec.load_latency_ns = p->asDouble(spec.load_latency_ns);
            if (const auto *p = val.find("store_latency_ns"))
                spec.store_latency_ns =
                    p->asDouble(spec.store_latency_ns);
            if (const auto *p = val.find("bandwidth_gbps"))
                spec.bandwidth_gbps = p->asDouble(spec.bandwidth_gbps);
            s.slow_override = spec;
            continue;
        }
        if (key == "hotness") {
            if (!val.isObject()) {
                setError(error, "hotness must be an object");
                return std::nullopt;
            }
            for (const auto &[hkey, hval] : val.object) {
                std::string perr;
                if (!applyScenarioParam(s, "hotness." + hkey,
                                        hval.scalarText(), &perr)) {
                    setError(error, perr);
                    return std::nullopt;
                }
            }
            continue;
        }
        std::string perr;
        if (!applyScenarioParam(s, key, val.scalarText(), &perr)) {
            setError(error, perr);
            return std::nullopt;
        }
    }
    return s;
}

std::optional<Scenario>
loadScenario(const std::string &path, std::string *error)
{
    const auto doc = sim::jsonParseFile(path, error);
    if (!doc)
        return std::nullopt;
    return scenarioFromJson(*doc, error);
}

bool
applyScenarioParam(Scenario &s, const std::string &key,
                   const std::string &value, std::string *error)
{
    if (key == "app") {
        const auto id = parseApp(value);
        if (!id)
            return setError(error, "unknown app '" + value + "'");
        s.app = *id;
        return true;
    }
    if (key == "approach") {
        const auto a = parseApproach(value);
        if (!a)
            return setError(error, "unknown approach '" + value + "'");
        s.approach = *a;
        return true;
    }
    if (key == "name") {
        s.name = value;
        return true;
    }
    // --- Structured hotness spec (dotted keys = sweep axes) --------
    if (key.rfind("hotness.", 0) == 0) {
        const std::string sub = key.substr(8);
        HotnessSpec &h = s.hotness;
        if (sub == "backend") {
            if (!vmm::parseHotnessBackend(value)) {
                return setError(error, "unknown hotness backend '" +
                                           value + "'");
            }
            h.backend = value;
            return true;
        }
        if (sub == "adaptive" || sub == "free_run_skip" ||
            sub == "legacy_placement_sampling") {
            bool on = false;
            if (!parseBool(value, on)) {
                return setError(
                    error, "bad value '" + value + "' for '" + key + "'");
            }
            if (sub == "adaptive")
                h.adaptive = on;
            else if (sub == "free_run_skip")
                h.free_run_skip = on;
            else
                h.legacy_placement_sampling = on;
            return true;
        }
        double num = 0.0;
        if (!parseNumber(value, num)) {
            return setError(error,
                            "bad value '" + value + "' for '" + key + "'");
        }
        if (sub == "interval_ms") {
            h.interval_ms = num;
        } else if (sub == "pages_per_scan") {
            h.pages_per_scan = exactU64(value, num);
        } else if (sub == "hot_threshold") {
            h.hot_threshold = static_cast<std::uint32_t>(num);
        } else if (sub == "region_min") {
            h.region_min = static_cast<std::uint32_t>(num);
        } else if (sub == "region_max") {
            h.region_max = static_cast<std::uint32_t>(num);
        } else if (sub == "region_probes") {
            h.region_probes = static_cast<std::uint32_t>(num);
        } else if (sub == "region_min_pages") {
            h.region_min_pages = exactU64(value, num);
        } else if (sub == "region_split_threshold") {
            h.region_split_threshold = num;
        } else if (sub == "region_merge_heat_delta") {
            h.region_merge_heat_delta = static_cast<std::uint32_t>(num);
        } else {
            return setError(error,
                            "unknown hotness key '" + sub + "'");
        }
        return true;
    }

    // --- Deprecated loose hotness keys (pre-`hotness` spellings) ---
    if (key == "legacy_placement_sampling" || key == "adaptive" ||
        key == "free_run_skip") {
        warnLooseHotnessKey(key, key.c_str());
        return applyScenarioParam(s, "hotness." + key, value, error);
    }
    if (key == "interval") {
        warnLooseHotnessKey(key, "interval_ms");
        return applyScenarioParam(s, "hotness.interval_ms", value,
                                  error);
    }
    if (key == "pages_per_scan" || key == "hot_threshold") {
        warnLooseHotnessKey(key, key.c_str());
        return applyScenarioParam(s, "hotness." + key, value, error);
    }
    if (key == "profiling") {
        if (value == "true" || value == "1") {
            s.profiling = true;
        } else if (value == "false" || value == "0") {
            s.profiling = false;
        } else {
            return setError(error,
                            "bad value '" + value + "' for 'profiling'");
        }
        return true;
    }
    if (key == "xray") {
        if (value == "true" || value == "1") {
            s.xray = true;
        } else if (value == "false" || value == "0") {
            s.xray = false;
        } else {
            return setError(error,
                            "bad value '" + value + "' for 'xray'");
        }
        return true;
    }
    if (key == "metrics") {
        if (value == "true" || value == "1") {
            s.metrics = true;
        } else if (value == "false" || value == "0") {
            s.metrics = false;
        } else {
            return setError(error,
                            "bad value '" + value + "' for 'metrics'");
        }
        return true;
    }

    double num = 0.0;
    if (!parseNumber(value, num))
        return setError(error,
                        "bad value '" + value + "' for '" + key + "'");
    const auto bytes = [&]() { return exactU64(value, num); };
    if (key == "slow_lat_factor" || key == "slow_lat") {
        s.slow_lat_factor = num;
    } else if (key == "slow_bw_factor" || key == "slow_bw") {
        s.slow_bw_factor = num;
    } else if (key == "fast_bytes") {
        s.fast_bytes = bytes();
    } else if (key == "slow_bytes") {
        s.slow_bytes = bytes();
    } else if (key == "llc_bytes") {
        s.llc_bytes = bytes();
    } else if (key == "scale") {
        s.scale = num;
    } else if (key == "seed") {
        s.seed = bytes();
    } else if (key == "cpus") {
        s.cpus = static_cast<unsigned>(num);
    } else {
        return setError(error, "unknown scenario key '" + key + "'");
    }
    return true;
}

} // namespace hos::core
