/**
 * @file
 * Result arithmetic and machine-readable export for paper-style
 * reporting.
 */

#ifndef HOS_CORE_REPORT_HH
#define HOS_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "metrics/report.hh"
#include "prof/report.hh"
#include "sim/json.hh"
#include "workload/workload.hh"
#include "xray/report.hh"

namespace hos::core {

/** Slowdown factor of `other` relative to `baseline` (>1 = slower). */
double slowdownFactor(const workload::Workload::Result &baseline,
                      const workload::Workload::Result &other);

/**
 * Percent gain of `improved` over `baseline`
 * ((T_base / T_new - 1) * 100; the paper's Figures 9, 11, 13).
 */
double gainPercent(const workload::Workload::Result &baseline,
                   const workload::Workload::Result &improved);

/**
 * One run's results, flattened for export. `extra` holds free-form
 * named values (overhead breakdowns, allocation counts, ...).
 */
struct RunRecord
{
    std::string app;
    std::string approach;
    std::string metric_name;
    double runtime_s = 0.0;
    double metric = 0.0;
    double gain_pct = 0.0;
    double mpki = 0.0;
    std::uint64_t phases = 0;
    std::uint64_t instructions = 0;
    std::uint64_t llc_misses = 0;
    std::vector<std::pair<std::string, double>> extra;
    /**
     * Span-profiler attribution ledger, filled only for profiled runs
     * (Scenario::withProfiling). Empty reports are not emitted, so
     * prof-off results.json stays byte-identical to older versions.
     */
    prof::ProfileReport profile;
    /**
     * Placement-quality telemetry, filled only for x-rayed runs
     * (Scenario::withXray). Same emission rule as `profile`: empty
     * reports are omitted so xray-off results.json is byte-identical.
     */
    xray::XrayReport xray;
    /**
     * Windowed series + slowdown SLO telemetry, filled only for
     * metric'd runs (Scenario::withMetrics). Same emission rule:
     * empty reports are omitted so metrics-off results.json is
     * byte-identical.
     */
    metrics::MetricsReport metrics;
};

/** Fill the workload-derived fields of a record from a result. */
RunRecord makeRunRecord(const workload::Workload::Result &result,
                        const std::string &approach);

/**
 * Emit one record as a JSON object through an already-open writer —
 * the shared element form used both by single-run results files and
 * by the sweep aggregate's "runs" array.
 */
void writeRunRecord(sim::JsonWriter &w, const RunRecord &record);

/** Write one record as a JSON object ({"app":...,"extra":{...}}). */
void writeResultsJson(std::ostream &os, const RunRecord &record);

/** As above, to a file; false when the file cannot be opened. */
bool writeResultsJson(const std::string &path, const RunRecord &record);

} // namespace hos::core

#endif // HOS_CORE_REPORT_HH
