/**
 * @file
 * Result arithmetic for paper-style reporting.
 */

#ifndef HOS_CORE_REPORT_HH
#define HOS_CORE_REPORT_HH

#include "workload/workload.hh"

namespace hos::core {

/** Slowdown factor of `other` relative to `baseline` (>1 = slower). */
double slowdownFactor(const workload::Workload::Result &baseline,
                      const workload::Workload::Result &other);

/**
 * Percent gain of `improved` over `baseline`
 * ((T_base / T_new - 1) * 100; the paper's Figures 9, 11, 13).
 */
double gainPercent(const workload::Workload::Result &baseline,
                   const workload::Workload::Result &improved);

} // namespace hos::core

#endif // HOS_CORE_REPORT_HH
