/**
 * @file
 * Experiment harness shared by the bench binaries.
 *
 * Encodes the evaluation methodology of Section 5.1: host tiers
 * (DRAM FastMem + L:5,B:9 throttled SlowMem by default), the approach
 * zoo (Table 5 plus baselines), capacity-ratio sweeps, and the
 * standard result records every bench prints.
 */

#ifndef HOS_CORE_EXPERIMENT_HH
#define HOS_CORE_EXPERIMENT_HH

#include <memory>
#include <string>

#include "core/hetero_system.hh"
#include "workload/apps.hh"

namespace hos::core {

/** The evaluated management approaches. */
enum class Approach {
    SlowMemOnly,
    FastMemOnly,
    Random,
    NumaPreferred,
    HeapOd,
    HeapIoSlabOd,
    HeteroLru,
    VmmExclusive,
    Coordinated,
};

const char *approachName(Approach a);

/** Policy factory. */
std::unique_ptr<policy::ManagementPolicy> makePolicy(Approach a);

/** One experiment's knobs. */
struct RunSpec
{
    Approach approach = Approach::HeteroLru;

    /** SlowMem throttle factors (Table 3). */
    double slow_lat_factor = 5.0;
    double slow_bw_factor = 9.0;

    std::uint64_t fast_bytes = 4 * mem::gib;
    std::uint64_t slow_bytes = 8 * mem::gib;

    /** LLC: 16 MiB (Fig. 1 testbed) or 48 MiB (Fig. 2 emulator). */
    std::uint64_t llc_bytes = 16 * mem::mib;

    /** Workload scale (tests use small values; benches 1.0). */
    double scale = 1.0;
    std::uint64_t seed = 1;

    /** Replace the throttled SlowMem with a custom tier spec. */
    bool use_custom_slow = false;
    mem::MemTierSpec custom_slow;
};

/** Host configuration implementing a RunSpec. */
HostConfig hostFor(const RunSpec &spec);

/** Build a single-VM system + policy for a spec; slot 0 is the VM. */
std::unique_ptr<HeteroSystem> systemFor(const RunSpec &spec);

/** Run an application (or any factory) under a spec. */
workload::Workload::Result runApp(workload::AppId app,
                                  const RunSpec &spec);
workload::Workload::Result
runFactory(const workload::WorkloadFactory &factory, const RunSpec &spec);

} // namespace hos::core

#endif // HOS_CORE_EXPERIMENT_HH
