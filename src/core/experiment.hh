/**
 * @file
 * Experiment harness shared by the bench binaries.
 *
 * Executes core::Scenario descriptions (see scenario.hh): builds the
 * host implementing the scenario's Section 5.1 methodology — DRAM
 * FastMem + L:5,B:9 throttled SlowMem by default — instantiates the
 * approach under test, and runs the workload. Sweeps over many
 * scenarios run through core::Sweep (sweep.hh).
 */

#ifndef HOS_CORE_EXPERIMENT_HH
#define HOS_CORE_EXPERIMENT_HH

#include <memory>
#include <string>

#include "core/scenario.hh"
#include "workload/apps.hh"

namespace hos::core {

/** Policy factory. */
std::unique_ptr<policy::ManagementPolicy> makePolicy(Approach a);

/** Build a single-VM system + policy for a scenario; slot 0 is the VM. */
std::unique_ptr<HeteroSystem> systemFor(const Scenario &s);

/** Run the scenario's application under its approach. */
workload::Workload::Result run(const Scenario &s);

/** Run a custom workload factory under the scenario's host/approach. */
workload::Workload::Result run(const Scenario &s,
                               const workload::WorkloadFactory &factory);

// --- Deprecated pre-Scenario names ---------------------------------
//
// RunSpec and its free functions were replaced by Scenario (a strict
// field superset) and the run() overloads. These shims keep
// out-of-tree code compiling with a warning; they will be removed.

using RunSpec [[deprecated("use core::Scenario")]] = Scenario;

[[deprecated("use scenario.host()")]] inline HostConfig
hostFor(const Scenario &s)
{
    return s.host();
}

[[deprecated("use core::run(scenario)")]] inline workload::Workload::Result
runApp(workload::AppId app, const Scenario &s)
{
    Scenario with_app = s;
    with_app.app = app;
    return run(with_app);
}

[[deprecated("use core::run(scenario, factory)")]] inline workload::
    Workload::Result
    runFactory(const workload::WorkloadFactory &factory, const Scenario &s)
{
    return run(s, factory);
}

} // namespace hos::core

#endif // HOS_CORE_EXPERIMENT_HH
