/**
 * @file
 * Experiment harness shared by the bench binaries.
 *
 * Executes core::Scenario descriptions (see scenario.hh): builds the
 * host implementing the scenario's Section 5.1 methodology — DRAM
 * FastMem + L:5,B:9 throttled SlowMem by default — instantiates the
 * approach under test, and runs the workload. Sweeps over many
 * scenarios run through core::Sweep (sweep.hh).
 */

#ifndef HOS_CORE_EXPERIMENT_HH
#define HOS_CORE_EXPERIMENT_HH

#include <memory>
#include <string>

#include "core/scenario.hh"
#include "workload/apps.hh"

namespace hos::core {

/** Policy factory with the approach's stock configuration. */
std::unique_ptr<policy::ManagementPolicy> makePolicy(Approach a);

/**
 * Policy factory honoring the scenario's hotness spec: the tracking
 * backend and overridden knobs are overlaid onto the approach's own
 * defaults (approaches without a hotness tracker ignore the spec).
 */
std::unique_ptr<policy::ManagementPolicy> makePolicy(const Scenario &s);

/** Build a single-VM system + policy for a scenario; slot 0 is the VM. */
std::unique_ptr<HeteroSystem> systemFor(const Scenario &s);

/** Run the scenario's application under its approach. */
workload::Workload::Result run(const Scenario &s);

/** Run a custom workload factory under the scenario's host/approach. */
workload::Workload::Result run(const Scenario &s,
                               const workload::WorkloadFactory &factory);

} // namespace hos::core

#endif // HOS_CORE_EXPERIMENT_HH
