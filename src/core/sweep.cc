#include "core/sweep.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <thread>

#include "core/experiment.hh"
#include "sim/log.hh"
#include "sim/rng.hh"

namespace hos::core {

namespace {

/**
 * Render an axis value. Unlike jsonNumber's %.12g, integral values
 * print as exact integers — byte-size axes routinely exceed 12
 * digits (1 TiB = 1099511627776) and must survive the text
 * round-trip through applyScenarioParam.
 */
std::string
axisNumber(double v)
{
    if (v == static_cast<double>(static_cast<long long>(v))) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(v));
        return buf;
    }
    return sim::jsonNumber(v);
}

bool
looksNumeric(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(text.c_str(), &end);
    return end && *end == '\0';
}

} // namespace

Sweep &
Sweep::axis(const std::string &key, std::vector<std::string> values)
{
    hos_assert(!values.empty(), "axis '%s' needs values", key.c_str());
    axes_.push_back({key, std::move(values)});
    return *this;
}

Sweep &
Sweep::axis(const std::string &key, const std::vector<double> &values)
{
    std::vector<std::string> texts;
    texts.reserve(values.size());
    for (double v : values)
        texts.push_back(axisNumber(v));
    return axis(key, std::move(texts));
}

Sweep &
Sweep::approaches(const std::vector<Approach> &as)
{
    std::vector<std::string> keys;
    keys.reserve(as.size());
    for (Approach a : as)
        keys.push_back(approachKey(a));
    return axis("approach", std::move(keys));
}

Sweep &
Sweep::apps(const std::vector<workload::AppId> &ids)
{
    std::vector<std::string> keys;
    keys.reserve(ids.size());
    for (workload::AppId id : ids)
        keys.push_back(appKey(id));
    return axis("app", std::move(keys));
}

Sweep &
Sweep::replicas(unsigned n)
{
    hos_assert(n > 0, "replicas needs a positive count");
    std::vector<std::string> seeds;
    seeds.reserve(n);
    for (unsigned r = 0; r < n; ++r)
        seeds.push_back(std::to_string(sim::deriveSeed(base_.seed, r)));
    return axis("seed", std::move(seeds));
}

std::size_t
Sweep::numPoints() const
{
    std::size_t n = 1;
    for (const auto &a : axes_)
        n *= a.values.size();
    return n;
}

std::vector<SweepPoint>
Sweep::points(std::string *error) const
{
    const std::size_t total = numPoints();
    std::vector<SweepPoint> out;
    out.reserve(total);

    for (std::size_t index = 0; index < total; ++index) {
        SweepPoint p;
        p.index = index;
        p.scenario = base_;

        // Row-major: the first axis varies slowest.
        std::size_t stride = total;
        for (const auto &a : axes_) {
            stride /= a.values.size();
            const std::string &value =
                a.values[(index / stride) % a.values.size()];
            std::string perr;
            if (!applyScenarioParam(p.scenario, a.key, value, &perr)) {
                if (error)
                    *error = "axis '" + a.key + "': " + perr;
                return {};
            }
            p.params.emplace_back(a.key, value);
        }
        out.push_back(std::move(p));
    }
    return out;
}

void
sweepToJson(sim::JsonWriter &w, const Sweep &sweep)
{
    w.beginObject();
    w.key("base");
    scenarioToJson(w, sweep.base());
    w.key("axes");
    w.beginObject();
    for (const auto &a : sweep.axes()) {
        w.key(a.key);
        w.beginArray();
        for (const auto &v : a.values)
            w.value(v);
        w.endArray();
    }
    w.endObject();
    w.endObject();
}

std::optional<Sweep>
sweepFromJson(const sim::JsonValue &v, std::string *error)
{
    if (!v.isObject()) {
        if (error)
            *error = "sweep must be a JSON object";
        return std::nullopt;
    }

    Scenario base;
    if (const auto *b = v.find("base")) {
        auto parsed = scenarioFromJson(*b, error);
        if (!parsed)
            return std::nullopt;
        base = *parsed;
    }

    Sweep sweep(base);
    if (const auto *axes = v.find("axes")) {
        if (!axes->isObject()) {
            if (error)
                *error = "axes must be an object of arrays";
            return std::nullopt;
        }
        for (const auto &[key, vals] : axes->object) {
            if (!vals.isArray() || vals.array.empty()) {
                if (error)
                    *error = "axis '" + key +
                             "' must be a non-empty array";
                return std::nullopt;
            }
            std::vector<std::string> texts;
            texts.reserve(vals.array.size());
            for (const auto &e : vals.array)
                texts.push_back(e.scalarText());
            sweep.axis(key, std::move(texts));
        }
    }

    // Validate every point up front so a bad file fails at load time,
    // not mid-run on some worker thread.
    std::string perr;
    if (sweep.points(&perr).empty() && sweep.numPoints() > 0) {
        if (error)
            *error = perr;
        return std::nullopt;
    }
    return sweep;
}

std::optional<Sweep>
loadSweep(const std::string &path, std::string *error)
{
    const auto doc = sim::jsonParseFile(path, error);
    if (!doc)
        return std::nullopt;
    return sweepFromJson(*doc, error);
}

namespace {

/** Run one expanded point; self-contained, safe on any thread. */
SweepResult
executePoint(const SweepPoint &point)
{
    SweepResult r;
    r.point = point;

    if (point.scenario.profiling || point.scenario.xray ||
        point.scenario.metrics) {
        // Keep the system alive past the run so its span ledger,
        // placement shadow, and metrics series can be harvested into
        // the record.
        auto sys = systemFor(point.scenario);
        const auto result =
            sys->runOne(sys->slot(0),
                        workload::makeApp(point.scenario.app,
                                          point.scenario.scale));
        r.record = makeRunRecord(result,
                                 approachName(point.scenario.approach));
        if (point.scenario.profiling)
            r.record.profile = sys->profiler().report();
        if (point.scenario.xray)
            r.record.xray = sys->xrayRecorder().report();
        if (point.scenario.metrics)
            r.record.metrics = sys->metricsCollector().report();
    } else {
        const auto result = core::run(point.scenario);
        r.record = makeRunRecord(result,
                                 approachName(point.scenario.approach));
    }

    // Numeric axis values ride along as extras so plots can read the
    // coordinates straight out of the record.
    for (const auto &[key, value] : point.params) {
        double num = 0.0;
        if (looksNumeric(value, num))
            r.record.extra.emplace_back("param." + key, num);
    }
    return r;
}

} // namespace

std::vector<SweepResult>
SweepRunner::run(unsigned jobs)
{
    std::string error;
    const auto pts = sweep_.points(&error);
    if (pts.empty()) {
        if (!error.empty())
            sim::warn("sweep expansion failed: %s", error.c_str());
        return {};
    }

    if (jobs == 0)
        jobs = std::max(1u, std::thread::hardware_concurrency());
    jobs = static_cast<unsigned>(
        std::min<std::size_t>(jobs, pts.size()));

    std::vector<SweepResult> results(pts.size());

    std::atomic<std::size_t> next{0};
    std::mutex done_mutex;
    const auto worker = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= pts.size())
                return;
            results[i] = executePoint(pts[i]);
            if (on_done_) {
                std::lock_guard<std::mutex> lock(done_mutex);
                on_done_(results[i]);
            }
        }
    };

    if (jobs <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(jobs);
        for (unsigned t = 0; t < jobs; ++t)
            pool.emplace_back(worker);
        for (auto &t : pool)
            t.join();
    }
    return results;
}

void
writeSweepResultsJson(std::ostream &os, const Sweep &sweep,
                      const std::vector<SweepResult> &results)
{
    sim::JsonWriter w(os);
    w.beginObject();
    w.kv("schema", "hos-sweep-results-1");
    w.key("sweep");
    sweepToJson(w, sweep);
    w.kv("num_points", static_cast<std::uint64_t>(results.size()));
    w.key("runs");
    w.beginArray();
    for (const auto &r : results) {
        w.beginObject();
        w.kv("point", static_cast<std::uint64_t>(r.point.index));
        w.key("params");
        w.beginObject();
        for (const auto &[key, value] : r.point.params)
            w.kv(key, value);
        w.endObject();
        w.key("record");
        writeRunRecord(w, r.record);
        w.endObject();
    }
    w.endArray();
    // Fleet rollup: the mergeable histogram layout makes cross-run
    // percentiles a per-VM element-wise sum. Only present when some
    // run carried metrics, so metrics-off sweeps stay byte-identical.
    bool any_metrics = false;
    for (const auto &r : results)
        any_metrics = any_metrics || !r.record.metrics.empty();
    if (any_metrics) {
        metrics::MetricsReport fleet;
        for (const auto &r : results)
            metrics::mergeInto(fleet, r.record.metrics);
        for (auto &vm : fleet.vms) {
            // Time-series do not aggregate across runs; the rollup
            // keeps only the additive totals and histograms.
            vm.slowdown_series = metrics::MetricsSeries{};
            vm.slowdown_series.name = "slowdown_ppm";
            vm.series.clear();
        }
        w.key("metrics_fleet");
        metrics::writeMetricsReport(w, fleet);
    }
    w.endObject();
    os << '\n';
    hos_assert(w.balanced(), "unbalanced sweep results JSON");
}

bool
writeSweepResultsJson(const std::string &path, const Sweep &sweep,
                      const std::vector<SweepResult> &results)
{
    std::ofstream os(path);
    if (!os) {
        sim::warn("cannot open results file '%s'", path.c_str());
        return false;
    }
    writeSweepResultsJson(os, sweep, results);
    return os.good();
}

} // namespace hos::core
