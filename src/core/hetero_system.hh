/**
 * @file
 * HeteroSystem: the top-level public API.
 *
 * Assembles a simulated host (heterogeneous machine memory + VMM),
 * adds guest VMs under chosen management policies, and runs workloads
 * — one VM at a time or several in lockstep with device contention.
 * This is the entry point examples and benches use:
 *
 *   core::HostConfig host;                    // tiers, LLC
 *   core::HeteroSystem sys(host);
 *   auto &vm = sys.addVm(std::make_unique<policy::CoordinatedPolicy>(),
 *                        core::GuestSizing{});
 *   auto result = sys.runOne(vm, workload::makeApp(AppId::GraphChi));
 */

#ifndef HOS_CORE_HETERO_SYSTEM_HH
#define HOS_CORE_HETERO_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/cache_model.hh"
#include "mem/machine_memory.hh"
#include "metrics/metrics.hh"
#include "policy/placement_policy.hh"
#include "prof/prof.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"
#include "vmm/vmm.hh"
#include "workload/workload.hh"
#include "xray/xray.hh"

namespace hos::core {

/** Host hardware configuration. */
struct HostConfig
{
    mem::MemTierSpec fast = mem::dramSpec(4 * mem::gib);
    mem::MemTierSpec slow = mem::defaultSlowMemSpec(8 * mem::gib);
    /** Optional middle tier (paper §4.3 multi-level memories). */
    mem::MemTierSpec medium = mem::throttledSpec(2.0, 3.0, 4 * mem::gib);
    bool has_fast = true;
    bool has_slow = true;
    bool has_medium = false;
    mem::CacheConfig llc{16 * mem::mib, 16};
};

/** Guest VM sizing. */
struct GuestSizing
{
    /** 0 = inherit the host tier capacity. */
    std::uint64_t fast_max = 0;
    std::uint64_t fast_initial = ~std::uint64_t(0); ///< ~0 = fast_max
    std::uint64_t slow_max = 0;
    std::uint64_t slow_initial = ~std::uint64_t(0);
    unsigned cpus = 16;
    std::uint64_t seed = 1;
    std::string name = "guest";
};

/** A host with heterogeneous memory, a VMM, and guest VMs. */
class HeteroSystem
{
  public:
    explicit HeteroSystem(HostConfig cfg);
    ~HeteroSystem();

    HeteroSystem(const HeteroSystem &) = delete;
    HeteroSystem &operator=(const HeteroSystem &) = delete;

    /** One VM plus its policy and (shared-slice) LLC model. */
    struct VmSlot
    {
        std::unique_ptr<policy::ManagementPolicy> policy;
        std::unique_ptr<guestos::GuestKernel> kernel;
        std::unique_ptr<mem::CacheModel> llc;
        vmm::VmId id = 0;
    };

    mem::MachineMemory &machine() { return machine_; }
    vmm::Vmm &vmm() { return *vmm_; }
    const HostConfig &config() const { return cfg_; }

    /**
     * Every stat group in the system — the VMM's and one per guest
     * kernel — with refresh hooks that sync them from live state.
     * The stats-snapshot daemon samples this registry.
     */
    sim::StatRegistry &statRegistry() { return registry_; }

    /**
     * Create and register a VM managed by `policy`. The guest's node
     * layout derives from the host tiers and `sizing`; the policy
     * then adjusts it (e.g., VMM-exclusive collapses it).
     */
    VmSlot &addVm(std::unique_ptr<policy::ManagementPolicy> policy,
                  GuestSizing sizing = {});

    std::size_t numVms() const { return slots_.size(); }
    VmSlot &slot(std::size_t i) { return *slots_[i]; }

    /**
     * Opt this system into its own trace sink: while runOne/runMany
     * execute, events emitted on the running thread land in
     * traceSink() instead of the process-wide trace::tracer().
     * Multiple systems (e.g. parallel sweep points) each keep their
     * own event stream. Systems that never call this keep the legacy
     * behavior — events go to the global tracer if it is enabled.
     */
    void enableTracing(
        std::uint32_t mask = static_cast<std::uint32_t>(
            trace::Category::All));
    bool tracingEnabled() const { return trace_enabled_; }

    /** This system's private trace ring (see enableTracing). */
    trace::Tracer &traceSink() { return tracer_; }

    /**
     * Opt this system into span profiling: while runOne/runMany
     * execute, HOS_PROF_SPAN spans and kernel charges on the running
     * thread attribute into profiler() (a per-system ledger, isolated
     * exactly like the trace sink). Registers the "prof" stat group
     * with statRegistry(). No-op in HOS_PROF=off builds beyond the
     * bookkeeping flag.
     */
    void enableProfiling();
    bool profilingEnabled() const { return prof_enabled_; }

    /** This system's span ledger (see enableProfiling). */
    prof::Profiler &profiler() { return profiler_; }

    /**
     * Opt this system into placement x-ray telemetry: while
     * runOne/runMany execute, the xray hooks on the running thread
     * feed xrayRecorder() (per-system, isolated like the trace sink
     * and profiler). Existing VMs' live pages are seeded into the
     * shadow immediately; VMs added later seed on creation. Registers
     * the "xray" stat group with statRegistry() and cross-checks the
     * shadow against page truth (check::auditXray) after every run.
     * No-op beyond the flag in HOS_XRAY=off builds.
     */
    void enableXray(xray::XrayConfig cfg = {});
    bool xrayEnabled() const { return xray_enabled_; }

    /** This system's placement recorder (see enableXray). */
    xray::Recorder &xrayRecorder() { return xray_; }

    /**
     * Opt this system into windowed metrics: registers ~10 per-VM
     * signals (tier occupancy, migration/scan/balloon/reclaim cost
     * rates, DRF dominant share, and — when xray is also enabled —
     * misplaced heat mass) and arms a periodic sampler on each VM's
     * event queue. While runOne/runMany execute, workload phase hooks
     * feed metricsCollector() (per-system, isolated like the trace
     * sink), building per-VM slowdown histograms; after every run
     * check::auditMetrics reconciles the aggregates against the
     * kernel's overhead accounts. The sampler actions are read-only,
     * so simulation output is bit-identical with metrics on or off.
     * No-op beyond the flag in HOS_METRICS=off builds.
     */
    void enableMetrics(metrics::MetricsConfig cfg = {});
    bool metricsEnabled() const { return metrics_enabled_; }

    /** This system's metrics collector (see enableMetrics). */
    metrics::Collector &metricsCollector() { return metrics_; }

    /**
     * Run workloads with the legacy per-phase placement sampling
     * instead of the ResidencyIndex (bit-identical cross-check path).
     * Must be set before workloads are created via envFor/runOne.
     */
    void setLegacyPlacementSampling(bool on)
    {
        legacy_placement_sampling_ = on;
    }
    bool legacyPlacementSampling() const
    {
        return legacy_placement_sampling_;
    }

    /**
     * Route balloon grows through the pre-SoA take/return hypercall
     * protocol instead of peek/commit (bit-identical cross-check
     * path; see BalloonFrontend::setLegacyPath). Applies to VMs added
     * after the call.
     */
    void setLegacyBalloonPath(bool on) { legacy_balloon_path_ = on; }
    bool legacyBalloonPath() const { return legacy_balloon_path_; }

    /** Build the workload environment for a VM. */
    workload::VmEnv envFor(VmSlot &slot);

    /** Run one workload to completion on one VM. */
    workload::Workload::Result
    runOne(VmSlot &slot, const workload::WorkloadFactory &factory);

    /**
     * Run one workload per VM in lockstep (smallest-elapsed-first
     * interleaving); devices see the number of still-active VMs as
     * contending sharers. Results are indexed like `pairs`.
     */
    std::vector<workload::Workload::Result>
    runMany(const std::vector<
            std::pair<VmSlot *, workload::WorkloadFactory>> &pairs);

  private:
    HostConfig cfg_;
    mem::MachineMemory machine_;
    std::unique_ptr<vmm::Vmm> vmm_;
    std::vector<std::unique_ptr<VmSlot>> slots_;
    /** Seed a VM's live pages into the xray shadow (idempotent). */
    void seedXray(VmSlot &slot);
    /** Register a VM's signals and arm its periodic sampler. */
    void seedMetrics(VmSlot &slot);

    sim::StatRegistry registry_;
    trace::Tracer tracer_;
    prof::Profiler profiler_;
    xray::Recorder xray_;
    metrics::Collector metrics_;
    bool trace_enabled_ = false;
    bool prof_enabled_ = false;
    bool xray_enabled_ = false;
    bool metrics_enabled_ = false;
    bool legacy_placement_sampling_ = false;
    bool legacy_balloon_path_ = false;
    unsigned active_vms_ = 1;
};

} // namespace hos::core

#endif // HOS_CORE_HETERO_SYSTEM_HH
