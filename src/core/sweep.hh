/**
 * @file
 * Declarative experiment sweeps and the parallel runner.
 *
 * A Sweep is a base Scenario plus named axes; the cartesian product
 * of the axis values expands into one Scenario per point:
 *
 *   core::Sweep sweep(core::Scenario{}.withScale(0.3));
 *   sweep.approaches({Approach::HeteroLru, Approach::Coordinated})
 *        .axis("slow_lat_factor", {2.0, 5.0, 8.0});
 *   core::SweepRunner runner(sweep);
 *   auto results = runner.run(8);   // 6 points across 8 threads
 *
 * Expansion is row-major: the first axis varies slowest, so results
 * group naturally by the outer axis. Points never share mutable
 * state — each gets its own HeteroSystem, a thread-local sim tick,
 * and a seed that depends only on the spec — so a parallel run
 * produces bit-identical RunRecords to a serial one, in the same
 * order. This is a tested invariant (test_sweep.cc), not an
 * aspiration.
 *
 * Axis values are carried as JSON scalar texts ("coord", "5", "0.3")
 * and applied through applyScenarioParam, so every scenario key is
 * sweepable and sweeps round-trip through JSON files.
 */

#ifndef HOS_CORE_SWEEP_HH
#define HOS_CORE_SWEEP_HH

#include <functional>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/report.hh"
#include "core/scenario.hh"

namespace hos::core {

/** One sweep dimension: a scenario key and its values (scalar text). */
struct SweepAxis
{
    std::string key;
    std::vector<std::string> values;
};

/** One expanded point of the cartesian product. */
struct SweepPoint
{
    std::size_t index = 0; ///< row-major position in the product
    Scenario scenario;     ///< base + this point's axis values
    /** The (key, value) assignment that produced this point. */
    std::vector<std::pair<std::string, std::string>> params;
};

/** A base scenario plus the axes to vary. */
class Sweep
{
  public:
    Sweep() = default;
    explicit Sweep(Scenario base) : base_(std::move(base)) {}

    Scenario &base() { return base_; }
    const Scenario &base() const { return base_; }

    /** Add an axis with pre-rendered scalar values. */
    Sweep &axis(const std::string &key,
                std::vector<std::string> values);
    /** Numeric axis; integral values render without exponent. */
    Sweep &axis(const std::string &key,
                const std::vector<double> &values);

    /** Shorthand for the two most-swept axes. */
    Sweep &approaches(const std::vector<Approach> &as);
    Sweep &apps(const std::vector<workload::AppId> &ids);

    /**
     * Run every point `n` times with decorrelated seeds: adds a
     * "seed" axis whose r-th value is sim::deriveSeed(base.seed, r).
     * Deterministic — the seeds depend only on the base scenario,
     * never on scheduling.
     */
    Sweep &replicas(unsigned n);

    const std::vector<SweepAxis> &axes() const { return axes_; }

    /** Product of the axis sizes (1 for an axis-less sweep). */
    std::size_t numPoints() const;

    /**
     * Expand the cartesian product. An unknown key or bad value
     * yields an empty vector with a message in `error`.
     */
    std::vector<SweepPoint> points(std::string *error = nullptr) const;

  private:
    Scenario base_;
    std::vector<SweepAxis> axes_;
};

/** Serialize ({"base": {...}, "axes": {"key": [...], ...}}). */
void sweepToJson(sim::JsonWriter &w, const Sweep &sweep);

/** Deserialize; nullopt + `error` on malformed input. */
std::optional<Sweep> sweepFromJson(const sim::JsonValue &v,
                                   std::string *error = nullptr);

/** Load a sweep file (JSON with // comments, trailing commas OK). */
std::optional<Sweep> loadSweep(const std::string &path,
                               std::string *error = nullptr);

/** One executed point: where it sat in the product and what it got. */
struct SweepResult
{
    SweepPoint point;
    RunRecord record;
};

/**
 * Executes a Sweep's points across a thread pool. Work distribution
 * is a single atomic counter into the pre-expanded point list;
 * results land at their point's index, so the output order — and,
 * because points are isolated, every byte of it — is independent of
 * the thread count.
 */
class SweepRunner
{
  public:
    explicit SweepRunner(Sweep sweep) : sweep_(std::move(sweep)) {}

    /**
     * Progress hook, called once per completed point under an
     * internal mutex (so it may print). Completion order is
     * scheduling-dependent; only the returned vector is ordered.
     */
    void onPointDone(std::function<void(const SweepResult &)> cb)
    {
        on_done_ = std::move(cb);
    }

    /**
     * Run every point and return results in point order.
     * @param jobs worker threads; 0 = hardware concurrency, 1 = run
     *             serially on the calling thread (no threads spawned).
     */
    std::vector<SweepResult> run(unsigned jobs = 1);

    const Sweep &sweep() const { return sweep_; }

  private:
    Sweep sweep_;
    std::function<void(const SweepResult &)> on_done_;
};

/**
 * Write the aggregate results file: the sweep description plus one
 * entry per point, each embedding a PR-1-compatible RunRecord object.
 * Contains no wall-clock anything — two runs of the same sweep are
 * byte-identical.
 */
void writeSweepResultsJson(std::ostream &os, const Sweep &sweep,
                           const std::vector<SweepResult> &results);
bool writeSweepResultsJson(const std::string &path, const Sweep &sweep,
                           const std::vector<SweepResult> &results);

} // namespace hos::core

#endif // HOS_CORE_SWEEP_HH
