/**
 * @file
 * Declarative experiment scenarios.
 *
 * A Scenario is a plain value describing one complete experiment:
 * host tiers (FastMem capacity, SlowMem throttle factors or an
 * explicit tier spec), the shared LLC, guest sizing, the management
 * approach under test, and the workload. Benches and tests build one
 * Scenario and hand it to core::run() or a core::Sweep.
 *
 * Scenarios are fluently buildable,
 *
 *   auto s = core::Scenario{}
 *                .withApp(workload::AppId::Redis)
 *                .withApproach(core::Approach::Coordinated)
 *                .withThrottle(5.0, 9.0)
 *                .withScale(0.3);
 *
 * serializable to JSON, and loadable from a JSON scenario file (see
 * DESIGN.md "Scenario & Sweep API" for the schema). Every field has
 * the paper's Section 5.1 defaults, so `{}` is the standard testbed.
 */

#ifndef HOS_CORE_SCENARIO_HH
#define HOS_CORE_SCENARIO_HH

#include <optional>
#include <string>

#include "core/hetero_system.hh"
#include "sim/json.hh"
#include "vmm/hotness_tracker.hh"
#include "workload/apps.hh"

namespace hos::core {

/** The evaluated management approaches. */
enum class Approach {
    SlowMemOnly,
    FastMemOnly,
    Random,
    NumaPreferred,
    HeapOd,
    HeapIoSlabOd,
    HeteroLru,
    VmmExclusive,
    Coordinated,
};

constexpr Approach allApproaches[] = {
    Approach::SlowMemOnly, Approach::FastMemOnly, Approach::Random,
    Approach::NumaPreferred, Approach::HeapOd, Approach::HeapIoSlabOd,
    Approach::HeteroLru, Approach::VmmExclusive, Approach::Coordinated,
};

/** Human-readable name ("HeteroOS-coordinated"), used in reports. */
const char *approachName(Approach a);

/** Stable short key ("coord"), used by the CLI and scenario JSON. */
const char *approachKey(Approach a);
std::optional<Approach> parseApproach(const std::string &key);

/** Stable short key ("graphchi") for an application. */
const char *appKey(workload::AppId id);
std::optional<workload::AppId> parseApp(const std::string &key);

/**
 * Structured hotness-tracking selection and tuning — the scenario's
 * `hotness` JSON object and the `hotness.*` sweep-axis keys.
 *
 * Every knob is optional: an unset field keeps the approach's own
 * default (VMM-exclusive and coordinated ship different scan budgets
 * and per-PTE costs), so `{}` changes nothing and a spec carrying only
 * `backend` swaps the tracker without disturbing the approach tuning.
 */
struct HotnessSpec
{
    /** Tracker backend key: "pte_scan" (default) or "region". */
    std::string backend = "pte_scan";

    std::optional<double> interval_ms;
    std::optional<std::uint64_t> pages_per_scan;
    std::optional<std::uint32_t> hot_threshold;
    std::optional<bool> adaptive;
    std::optional<bool> free_run_skip;

    // Region-backend knobs (see vmm::HotnessConfig for semantics).
    std::optional<std::uint32_t> region_min;
    std::optional<std::uint32_t> region_max;
    std::optional<std::uint32_t> region_probes;
    std::optional<std::uint64_t> region_min_pages;
    std::optional<double> region_split_threshold;
    std::optional<std::uint32_t> region_merge_heat_delta;

    /**
     * Run the workload engine's legacy per-phase placement sampling
     * instead of the incremental ResidencyIndex. Bit-identical by
     * construction; kept as the cross-check the golden-determinism
     * test and perf benchmarks compare against.
     */
    bool legacy_placement_sampling = false;

    /** True when nothing deviates from the defaults (JSON elision). */
    bool isDefault() const;

    /** Overlay the set fields onto an approach's base config. */
    vmm::HotnessConfig apply(vmm::HotnessConfig base) const;
};

/**
 * One complete experiment description. Field defaults encode the
 * paper's Section 5.1 testbed: 4 GiB DRAM FastMem, 8 GiB L:5,B:9
 * throttled SlowMem, 16 MiB LLC, HeteroOS-LRU on GraphChi.
 */
struct Scenario
{
    workload::AppId app = workload::AppId::GraphChi;
    Approach approach = Approach::HeteroLru;

    /** SlowMem throttle factors (Table 3), ignored if slow_override. */
    double slow_lat_factor = 5.0;
    double slow_bw_factor = 9.0;

    std::uint64_t fast_bytes = 4 * mem::gib;
    std::uint64_t slow_bytes = 8 * mem::gib;

    /** LLC: 16 MiB (Fig. 1 testbed) or 48 MiB (Fig. 2 emulator). */
    std::uint64_t llc_bytes = 16 * mem::mib;

    /** Workload scale (tests use small values; benches 1.0). */
    double scale = 1.0;
    std::uint64_t seed = 1;
    unsigned cpus = 16;

    /**
     * Replace the throttled SlowMem with an explicit tier spec (NVM,
     * remote NUMA, 3D-stacked...). Capacity still comes from
     * slow_bytes. nullopt — the common case — means "derive the tier
     * from the throttle factors".
     */
    std::optional<mem::MemTierSpec> slow_override;

    /**
     * Hotness-tracking backend selection and tuning. The default spec
     * is "whatever the approach would do on its own" — serialized
     * scenarios only carry it when something was overridden.
     */
    HotnessSpec hotness;

    /**
     * Enable hos::prof span profiling for the run: the system gets a
     * per-run attribution ledger and the resulting ProfileReport is
     * embedded into the RunRecord. Simulation output is bit-identical
     * either way (profiling observes charges, never creates them).
     */
    bool profiling = false;

    /**
     * Enable hos::xray placement telemetry for the run: the system
     * shadows every page's (heat, tier), records migration decision
     * provenance, and embeds the resulting XrayReport into the
     * RunRecord. Simulation output is bit-identical either way (xray
     * observes decisions, never makes them).
     */
    bool xray = false;

    /**
     * Enable windowed metrics (HeteroSystem::enableMetrics) and embed
     * the hos-metrics-1 section in the RunRecord. Simulation output is
     * bit-identical either way (sampling observes, never steers).
     */
    bool metrics = false;

    /** Optional label carried into results ("" = derived). */
    std::string name;

    // --- Fluent builder --------------------------------------------
    Scenario &withApp(workload::AppId a) { app = a; return *this; }
    Scenario &withApproach(Approach a) { approach = a; return *this; }
    Scenario &withThrottle(double lat, double bw)
    {
        slow_lat_factor = lat;
        slow_bw_factor = bw;
        return *this;
    }
    Scenario &withFastBytes(std::uint64_t b) { fast_bytes = b; return *this; }
    Scenario &withSlowBytes(std::uint64_t b) { slow_bytes = b; return *this; }
    Scenario &withCapacity(std::uint64_t fast, std::uint64_t slow)
    {
        fast_bytes = fast;
        slow_bytes = slow;
        return *this;
    }
    Scenario &withLlcBytes(std::uint64_t b) { llc_bytes = b; return *this; }
    Scenario &withScale(double s) { scale = s; return *this; }
    Scenario &withSeed(std::uint64_t s) { seed = s; return *this; }
    Scenario &withCpus(unsigned n) { cpus = n; return *this; }
    Scenario &withSlowSpec(mem::MemTierSpec spec)
    {
        slow_override = std::move(spec);
        return *this;
    }
    Scenario &withHotness(HotnessSpec spec)
    {
        hotness = std::move(spec);
        return *this;
    }
    Scenario &withHotnessBackend(std::string backend)
    {
        hotness.backend = std::move(backend);
        return *this;
    }
    Scenario &withLegacySampling(bool on = true)
    {
        hotness.legacy_placement_sampling = on;
        return *this;
    }
    Scenario &withProfiling(bool on = true)
    {
        profiling = on;
        return *this;
    }
    Scenario &withXray(bool on = true)
    {
        xray = on;
        return *this;
    }
    Scenario &withMetrics(bool on = true)
    {
        metrics = on;
        return *this;
    }
    Scenario &withName(std::string n) { name = std::move(n); return *this; }

    // --- Derived configuration -------------------------------------

    /** The host hardware this scenario describes. */
    HostConfig host() const;

    /** The guest VM sizing this scenario describes. */
    GuestSizing sizing() const;

    /** `name`, or "app/approach" when no label was given. */
    std::string label() const;
};

/** Serialize (stable field order; byte sizes as exact integers). */
void scenarioToJson(sim::JsonWriter &w, const Scenario &s);
std::string scenarioToJson(const Scenario &s);

/**
 * Deserialize; unset keys keep their defaults, unknown keys and
 * ill-typed values fail with a message in `error`.
 */
std::optional<Scenario> scenarioFromJson(const sim::JsonValue &v,
                                         std::string *error = nullptr);

/** Load a scenario file (JSON with // comments, trailing commas OK). */
std::optional<Scenario> loadScenario(const std::string &path,
                                     std::string *error = nullptr);

/**
 * Set one field by its JSON key from a scalar's text ("approach" =
 * "coord", "slow_lat_factor" = "5", "seed" = "42"...). The engine
 * behind sweep axes and the run_sweep --set flag. Returns false (with
 * `error`) for unknown keys or unparseable values.
 */
bool applyScenarioParam(Scenario &s, const std::string &key,
                        const std::string &value,
                        std::string *error = nullptr);

} // namespace hos::core

#endif // HOS_CORE_SCENARIO_HH
