#include "core/hetero_system.hh"

#include <algorithm>
#include <optional>

#include "check/audit_daemon.hh"
#include "sim/log.hh"
#include "vmm/drf.hh"

namespace hos::core {

namespace {

/**
 * Sim-time between periodic cross-layer audits in HOS_CHECK=full
 * builds. Coarse on purpose: each pass walks every page of every VM.
 */
constexpr sim::Duration kAuditInterval = sim::milliseconds(100);

} // namespace

HeteroSystem::HeteroSystem(HostConfig cfg) : cfg_(std::move(cfg))
{
    if (cfg_.has_fast)
        machine_.addNode(mem::MemType::FastMem, cfg_.fast);
    if (cfg_.has_medium)
        machine_.addNode(mem::MemType::MediumMem, cfg_.medium);
    if (cfg_.has_slow)
        machine_.addNode(mem::MemType::SlowMem, cfg_.slow);
    hos_assert(machine_.numNodes() > 0, "host needs memory");
    vmm_ = std::make_unique<vmm::Vmm>(machine_);
    registry_.add(&vmm_->stats(), [this] { vmm_->syncStats(); });
}

HeteroSystem::~HeteroSystem() = default;

HeteroSystem::VmSlot &
HeteroSystem::addVm(std::unique_ptr<policy::ManagementPolicy> policy,
                    GuestSizing sizing)
{
    hos_assert(policy != nullptr, "VM needs a policy");

    guestos::GuestConfig gcfg;
    gcfg.name = sizing.name + std::to_string(slots_.size());
    gcfg.cpus = sizing.cpus;
    gcfg.seed = sizing.seed;

    if (cfg_.has_fast) {
        guestos::GuestNodeConfig nc;
        nc.type = mem::MemType::FastMem;
        nc.max_bytes =
            sizing.fast_max ? sizing.fast_max : cfg_.fast.capacity_bytes;
        nc.initial_bytes = sizing.fast_initial == ~std::uint64_t(0)
                               ? nc.max_bytes
                               : sizing.fast_initial;
        gcfg.nodes.push_back(nc);
    }
    if (cfg_.has_medium) {
        guestos::GuestNodeConfig nc;
        nc.type = mem::MemType::MediumMem;
        nc.max_bytes = cfg_.medium.capacity_bytes;
        nc.initial_bytes = nc.max_bytes;
        gcfg.nodes.push_back(nc);
    }
    if (cfg_.has_slow) {
        guestos::GuestNodeConfig nc;
        nc.type = mem::MemType::SlowMem;
        nc.max_bytes =
            sizing.slow_max ? sizing.slow_max : cfg_.slow.capacity_bytes;
        nc.initial_bytes = sizing.slow_initial == ~std::uint64_t(0)
                               ? nc.max_bytes
                               : sizing.slow_initial;
        gcfg.nodes.push_back(nc);
    }

    policy->configureGuest(gcfg);

    auto slot = std::make_unique<VmSlot>();
    slot->policy = std::move(policy);
    slot->kernel = std::make_unique<guestos::GuestKernel>(gcfg);
    slot->kernel->balloon().setLegacyPath(legacy_balloon_path_);

    vmm::VmConfig vcfg;
    vcfg.name = gcfg.name;
    slot->policy->configureVm(vcfg);
    slot->id = vmm_->registerVm(*slot->kernel, std::move(vcfg));
    // Guest-side xray hooks tag their records with the VMM id, so
    // guest and VMM provenance land in the same per-VM shadow.
    slot->kernel->setVmTag(static_cast<std::uint16_t>(slot->id));
    slot->policy->attach(*vmm_, slot->id, *slot->kernel);

    slots_.push_back(std::move(slot));
    if (xray_enabled_)
        seedXray(*slots_.back());
    if (metrics_enabled_)
        seedMetrics(*slots_.back());

    guestos::GuestKernel *kernel = slots_.back()->kernel.get();
    registry_.add(&kernel->stats(), [kernel] { kernel->syncStats(); });

    // Each VM gets an equal slice of the shared LLC; re-slice every
    // resident VM when the population changes.
    mem::CacheConfig slice = cfg_.llc;
    slice.size_bytes = cfg_.llc.size_bytes / slots_.size();
    for (auto &s : slots_)
        s->llc = std::make_unique<mem::CacheModel>(slice);

    return *slots_.back();
}

workload::VmEnv
HeteroSystem::envFor(VmSlot &slot)
{
    workload::VmEnv env;
    env.kernel = slot.kernel.get();
    env.llc = slot.llc.get();
    env.device = [this](mem::MemType t) -> mem::MemDevice & {
        if (machine_.hasType(t))
            return machine_.nodeByType(t).device();
        // Single-tier hosts (FastMem-only baseline): everything is
        // serviced by the tier that exists.
        return machine_.node(0).device();
    };
    env.sharers = [this] { return active_vms_; };
    const vmm::VmId id = slot.id;
    env.report_misses = [this, id](std::uint64_t misses) {
        vmm_->vm(id).reportLlcMisses(misses);
    };
    env.legacy_placement_sampling = legacy_placement_sampling_;
    return env;
}

void
HeteroSystem::enableTracing(std::uint32_t mask)
{
    trace_enabled_ = true;
    tracer_.enable(mask);
}

void
HeteroSystem::enableProfiling()
{
    if (prof_enabled_)
        return;
    prof_enabled_ = true;
    profiler_.enable();
    registry_.add(&profiler_.stats(),
                  [this] { profiler_.syncStats(); });
}

void
HeteroSystem::enableXray(xray::XrayConfig cfg)
{
    // At HOS_XRAY=off the hooks compile away, so the shadow could
    // never match ground truth: stay disabled (empty report, no
    // audit) rather than arm an audit that must fail.
    if (!xray::xrayCompiled || xray_enabled_)
        return;
    xray_enabled_ = true;
    xray_.enable(cfg);
    registry_.add(&xray_.stats(), [this] { xray_.syncStats(); });
    for (auto &s : slots_)
        seedXray(*s);
}

void
HeteroSystem::enableMetrics(metrics::MetricsConfig cfg)
{
    // At HOS_METRICS=off the workload hooks compile away, so the
    // slowdown accounts could never reconcile: stay disabled (empty
    // report, no audit) rather than arm an audit that must fail.
    if (!metrics::metricsCompiled || metrics_enabled_)
        return;
    metrics_enabled_ = true;
    metrics_.enable(cfg);
    registry_.add(&metrics_.stats(), [this] { metrics_.syncStats(); });
    for (auto &s : slots_)
        seedMetrics(*s);
}

void
HeteroSystem::seedMetrics(VmSlot &slot)
{
    if (!metrics::metricsCompiled)
        return;
    guestos::GuestKernel *kernel = slot.kernel.get();
    const std::uint16_t vm = kernel->vmTag();
    const vmm::VmId id = slot.id;

    // Occupancy gauges: machine frames backing the guest per tier,
    // plus the placement-oracle view of fast-backed guest pages.
    metrics_.registerSignal(
        vm, "fast_frames", metrics::SignalKind::Gauge, [this, id] {
            return static_cast<std::int64_t>(
                vmm_->vm(id).framesOf(mem::MemType::FastMem));
        });
    metrics_.registerSignal(
        vm, "slow_frames", metrics::SignalKind::Gauge, [this, id] {
            return static_cast<std::int64_t>(
                vmm_->vm(id).framesOf(mem::MemType::SlowMem));
        });
    metrics_.registerSignal(
        vm, "fast_backed", metrics::SignalKind::Gauge, [this, id] {
            return static_cast<std::int64_t>(
                vmm_->vm(id).fastBacked().size());
        });

    // Management-cost rates: per-window deltas of the kernel's
    // overhead accounts (ns of migration, hotness scanning, balloon
    // work, reclaim, and the all-kinds total).
    auto rate = [&](const char *name, guestos::OverheadKind kind) {
        metrics_.registerSignal(
            vm, name, metrics::SignalKind::Rate, [kernel, kind] {
                return static_cast<std::int64_t>(
                    kernel->overheadTotal(kind));
            });
    };
    rate("migration_ns", guestos::OverheadKind::Migration);
    rate("hot_scan_ns", guestos::OverheadKind::HotScan);
    rate("balloon_ns", guestos::OverheadKind::Balloon);
    rate("reclaim_ns", guestos::OverheadKind::Reclaim);
    metrics_.registerSignal(
        vm, "overhead_ns", metrics::SignalKind::Rate, [kernel] {
            return static_cast<std::int64_t>(
                kernel->overheadGrandTotal());
        });

    // Fairness: DRF dominant share in ppm (integer telemetry of the
    // fairness objective the coordinated policy balances).
    metrics_.registerSignal(
        vm, "drf_share_ppm", metrics::SignalKind::Gauge, [this, id] {
            return static_cast<std::int64_t>(
                vmm::DrfFairness::dominantShare(*vmm_, vmm_->vm(id)) *
                static_cast<double>(metrics::ppmScale));
        });

    // Placement quality, when the xray shadow is live too.
    if (xray_enabled_) {
        metrics_.registerSignal(
            vm, "misplaced_heat", metrics::SignalKind::Gauge,
            [this, vm] {
                return static_cast<std::int64_t>(
                    xray_.misplacedHeatMass(vm));
            });
    }

    // The periodic sampler rides the VM's own event queue, so samples
    // land at deterministic sim-times interleaved with the daemons.
    // Sampling is read-only; it shifts no simulation state.
    sim::EventQueue &events = kernel->events();
    events.schedulePeriodic(
        metrics_.config().sample_interval,
        [this, vm, &events](sim::Duration period) {
            if (!metrics_.enabled())
                return sim::Duration{0};
            metrics_.sampleVm(vm, events.now());
            return period;
        });
}

void
HeteroSystem::seedXray(VmSlot &slot)
{
    if (!xray::xrayCompiled)
        return;
    // Pages allocated before enableXray (boot slabs, early heap)
    // enter the shadow here; onAlloc ignores already-live pages, so
    // re-seeding is harmless.
    guestos::GuestKernel &kernel = *slot.kernel;
    const std::uint16_t vm = kernel.vmTag();
    const sim::Tick now = kernel.events().now();
    auto &pages = kernel.pages();
    for (std::uint64_t pfn = 0; pfn < pages.size(); ++pfn) {
        if (!pages.page(pfn).allocated())
            continue;
        xray_.onAlloc(
            vm, pfn,
            static_cast<std::uint8_t>(kernel.backingOf(pfn)), now);
    }
}

workload::Workload::Result
HeteroSystem::runOne(VmSlot &slot, const workload::WorkloadFactory &factory)
{
    trace::ScopedSink sink(trace_enabled_ ? &tracer_ : nullptr);
    prof::ScopedProfiler prof_guard(prof_enabled_ ? &profiler_
                                                  : nullptr);
    xray::ScopedRecorder xray_guard(xray_enabled_ ? &xray_ : nullptr);
    metrics::ScopedCollector metrics_guard(
        metrics_enabled_ ? &metrics_ : nullptr);
    active_vms_ = 1;

    std::optional<check::AuditDaemon> audit;
    if (check::fullChecksEnabled) {
        audit.emplace(*vmm_, slot.kernel->events(), kAuditInterval,
                      &registry_);
        audit->start();
    }

    auto wl = factory(envFor(slot));
    auto result = wl->run();

    if (check::fullChecksEnabled)
        check::enforce(check::auditVmm(*vmm_, &registry_));
    if (prof_enabled_)
        check::enforce(check::auditProf(profiler_));
    if (xray_enabled_)
        check::enforce(check::auditXray(*vmm_, xray_));
    if (metrics_enabled_)
        check::enforce(check::auditMetrics(*vmm_, metrics_));
    return result;
}

std::vector<workload::Workload::Result>
HeteroSystem::runMany(
    const std::vector<std::pair<VmSlot *, workload::WorkloadFactory>>
        &pairs)
{
    trace::ScopedSink sink(trace_enabled_ ? &tracer_ : nullptr);
    prof::ScopedProfiler prof_guard(prof_enabled_ ? &profiler_
                                                  : nullptr);
    xray::ScopedRecorder xray_guard(xray_enabled_ ? &xray_ : nullptr);
    metrics::ScopedCollector metrics_guard(
        metrics_enabled_ ? &metrics_ : nullptr);

    std::optional<check::AuditDaemon> audit;
    if (check::fullChecksEnabled && !pairs.empty()) {
        audit.emplace(*vmm_, pairs.front().first->kernel->events(),
                      kAuditInterval, &registry_);
        audit->start();
    }

    std::vector<std::unique_ptr<workload::Workload>> wls;
    wls.reserve(pairs.size());
    for (const auto &[slot, factory] : pairs) {
        wls.push_back(factory(envFor(*slot)));
        wls.back()->start();
    }

    // Lockstep: always advance the workload with the smallest local
    // clock, so cross-VM interactions (ballooning, contention) happen
    // in causal order.
    for (;;) {
        workload::Workload *next = nullptr;
        unsigned active = 0;
        for (auto &wl : wls) {
            if (wl->done())
                continue;
            ++active;
            if (!next || wl->elapsed() < next->elapsed())
                next = wl.get();
        }
        if (!next)
            break;
        active_vms_ = active;
        next->step();
    }
    active_vms_ = 1;

    std::vector<workload::Workload::Result> results;
    results.reserve(wls.size());
    for (auto &wl : wls)
        results.push_back(wl->finish());

    if (check::fullChecksEnabled)
        check::enforce(check::auditVmm(*vmm_, &registry_));
    if (prof_enabled_)
        check::enforce(check::auditProf(profiler_));
    if (xray_enabled_)
        check::enforce(check::auditXray(*vmm_, xray_));
    if (metrics_enabled_)
        check::enforce(check::auditMetrics(*vmm_, metrics_));
    return results;
}

} // namespace hos::core
