#include "core/report.hh"

#include <algorithm>
#include <fstream>

#include "sim/json.hh"
#include "sim/log.hh"

namespace hos::core {

double
slowdownFactor(const workload::Workload::Result &baseline,
               const workload::Workload::Result &other)
{
    const double base = std::max<double>(1.0,
                                         static_cast<double>(
                                             baseline.elapsed));
    return static_cast<double>(other.elapsed) / base;
}

double
gainPercent(const workload::Workload::Result &baseline,
            const workload::Workload::Result &improved)
{
    const double now = std::max<double>(1.0, static_cast<double>(
                                                 improved.elapsed));
    return (static_cast<double>(baseline.elapsed) / now - 1.0) * 100.0;
}

RunRecord
makeRunRecord(const workload::Workload::Result &result,
              const std::string &approach)
{
    RunRecord r;
    r.app = result.workload;
    r.approach = approach;
    r.metric_name = result.metric_name;
    r.runtime_s = result.seconds();
    r.metric = result.metric;
    r.mpki = result.mpki;
    r.phases = result.phases;
    r.instructions = result.instructions;
    r.llc_misses = result.llc_misses;
    return r;
}

void
writeRunRecord(sim::JsonWriter &w, const RunRecord &record)
{
    w.beginObject();
    w.kv("app", record.app);
    w.kv("approach", record.approach);
    w.kv("metric_name", record.metric_name);
    w.kv("runtime_s", record.runtime_s);
    w.kv("metric", record.metric);
    w.kv("gain_pct", record.gain_pct);
    w.kv("mpki", record.mpki);
    w.kv("phases", record.phases);
    w.kv("instructions", record.instructions);
    w.kv("llc_misses", record.llc_misses);
    w.key("extra");
    w.beginObject();
    for (const auto &[name, value] : record.extra)
        w.kv(name, value);
    w.endObject();
    if (!record.profile.empty()) {
        w.key("profile");
        prof::writeProfileReport(w, record.profile);
    }
    if (!record.xray.empty()) {
        w.key("xray");
        xray::writeXrayReport(w, record.xray);
    }
    if (!record.metrics.empty()) {
        w.key("metrics");
        metrics::writeMetricsReport(w, record.metrics);
    }
    w.endObject();
}

void
writeResultsJson(std::ostream &os, const RunRecord &record)
{
    sim::JsonWriter w(os);
    writeRunRecord(w, record);
    os << '\n';
    hos_assert(w.balanced(), "unbalanced results JSON");
}

bool
writeResultsJson(const std::string &path, const RunRecord &record)
{
    std::ofstream os(path);
    if (!os) {
        sim::warn("cannot open results file '%s'", path.c_str());
        return false;
    }
    writeResultsJson(os, record);
    return os.good();
}

} // namespace hos::core
