#include "core/report.hh"

#include <algorithm>

namespace hos::core {

double
slowdownFactor(const workload::Workload::Result &baseline,
               const workload::Workload::Result &other)
{
    const double base = std::max<double>(1.0,
                                         static_cast<double>(
                                             baseline.elapsed));
    return static_cast<double>(other.elapsed) / base;
}

double
gainPercent(const workload::Workload::Result &baseline,
            const workload::Workload::Result &improved)
{
    const double now = std::max<double>(1.0, static_cast<double>(
                                                 improved.elapsed));
    return (static_cast<double>(baseline.elapsed) / now - 1.0) * 100.0;
}

} // namespace hos::core
