#include "core/experiment.hh"

#include "policy/baselines.hh"
#include "policy/coordinated.hh"
#include "policy/heap_io_slab_od.hh"
#include "policy/heap_od.hh"
#include "policy/hetero_lru_policy.hh"
#include "policy/vmm_exclusive.hh"
#include "sim/log.hh"

namespace hos::core {

const char *
approachName(Approach a)
{
    switch (a) {
      case Approach::SlowMemOnly:
        return "SlowMem-only";
      case Approach::FastMemOnly:
        return "FastMem-only";
      case Approach::Random:
        return "Random";
      case Approach::NumaPreferred:
        return "NUMA-preferred";
      case Approach::HeapOd:
        return "Heap-OD";
      case Approach::HeapIoSlabOd:
        return "Heap-IO-Slab-OD";
      case Approach::HeteroLru:
        return "HeteroOS-LRU";
      case Approach::VmmExclusive:
        return "VMM-exclusive";
      case Approach::Coordinated:
        return "HeteroOS-coordinated";
    }
    return "?";
}

std::unique_ptr<policy::ManagementPolicy>
makePolicy(Approach a)
{
    switch (a) {
      case Approach::SlowMemOnly:
        return std::make_unique<policy::SlowMemOnlyPolicy>();
      case Approach::FastMemOnly:
        return std::make_unique<policy::FastMemOnlyPolicy>();
      case Approach::Random:
        return std::make_unique<policy::RandomPolicy>();
      case Approach::NumaPreferred:
        return std::make_unique<policy::NumaPreferredPolicy>();
      case Approach::HeapOd:
        return std::make_unique<policy::HeapOdPolicy>();
      case Approach::HeapIoSlabOd:
        return std::make_unique<policy::HeapIoSlabOdPolicy>();
      case Approach::HeteroLru:
        return std::make_unique<policy::HeteroLruPolicy>();
      case Approach::VmmExclusive:
        return std::make_unique<policy::VmmExclusivePolicy>();
      case Approach::Coordinated:
        return std::make_unique<policy::CoordinatedPolicy>();
    }
    sim::panic("unknown approach");
}

HostConfig
hostFor(const RunSpec &spec)
{
    HostConfig host;
    host.llc.size_bytes = spec.llc_bytes;

    if (spec.approach == Approach::FastMemOnly) {
        // Ideal baseline: FastMem with unlimited capacity.
        host.fast = mem::dramSpec(spec.fast_bytes + spec.slow_bytes +
                                  8 * mem::gib);
        host.has_slow = false;
        return host;
    }

    host.fast = mem::dramSpec(spec.fast_bytes);
    if (spec.use_custom_slow) {
        host.slow = spec.custom_slow;
        host.slow.capacity_bytes = spec.slow_bytes;
    } else {
        host.slow = mem::throttledSpec(spec.slow_lat_factor,
                                       spec.slow_bw_factor,
                                       spec.slow_bytes);
    }
    if (spec.approach == Approach::SlowMemOnly) {
        // The naive floor never touches FastMem; don't even give the
        // guest a fast node.
        host.has_fast = false;
    }
    return host;
}

std::unique_ptr<HeteroSystem>
systemFor(const RunSpec &spec)
{
    auto sys = std::make_unique<HeteroSystem>(hostFor(spec));
    GuestSizing sizing;
    sizing.seed = spec.seed;
    sys->addVm(makePolicy(spec.approach), sizing);
    return sys;
}

workload::Workload::Result
runFactory(const workload::WorkloadFactory &factory, const RunSpec &spec)
{
    auto sys = systemFor(spec);
    return sys->runOne(sys->slot(0), factory);
}

workload::Workload::Result
runApp(workload::AppId app, const RunSpec &spec)
{
    return runFactory(workload::makeApp(app, spec.scale), spec);
}

} // namespace hos::core
