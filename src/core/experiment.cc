#include "core/experiment.hh"

#include "policy/baselines.hh"
#include "policy/coordinated.hh"
#include "policy/heap_io_slab_od.hh"
#include "policy/heap_od.hh"
#include "policy/hetero_lru_policy.hh"
#include "policy/vmm_exclusive.hh"
#include "sim/log.hh"

namespace hos::core {

std::unique_ptr<policy::ManagementPolicy>
makePolicy(Approach a)
{
    switch (a) {
      case Approach::SlowMemOnly:
        return std::make_unique<policy::SlowMemOnlyPolicy>();
      case Approach::FastMemOnly:
        return std::make_unique<policy::FastMemOnlyPolicy>();
      case Approach::Random:
        return std::make_unique<policy::RandomPolicy>();
      case Approach::NumaPreferred:
        return std::make_unique<policy::NumaPreferredPolicy>();
      case Approach::HeapOd:
        return std::make_unique<policy::HeapOdPolicy>();
      case Approach::HeapIoSlabOd:
        return std::make_unique<policy::HeapIoSlabOdPolicy>();
      case Approach::HeteroLru:
        return std::make_unique<policy::HeteroLruPolicy>();
      case Approach::VmmExclusive:
        return std::make_unique<policy::VmmExclusivePolicy>();
      case Approach::Coordinated:
        return std::make_unique<policy::CoordinatedPolicy>();
    }
    sim::panic("unknown approach");
}

std::unique_ptr<policy::ManagementPolicy>
makePolicy(const Scenario &s)
{
    switch (s.approach) {
      case Approach::VmmExclusive:
        return std::make_unique<policy::VmmExclusivePolicy>(
            s.hotness.apply(vmm::HotnessConfig{}));
      case Approach::Coordinated: {
        policy::CoordinatedConfig cfg;
        cfg.hotness =
            s.hotness.apply(policy::CoordinatedConfig::defaultHotness());
        // The ablation switch and the hotness knob are the same bit;
        // an explicit hotness.adaptive override wins.
        cfg.adaptive_interval = cfg.hotness.adaptive;
        return std::make_unique<policy::CoordinatedPolicy>(cfg);
      }
      default:
        return makePolicy(s.approach);
    }
}

std::unique_ptr<HeteroSystem>
systemFor(const Scenario &s)
{
    auto sys = std::make_unique<HeteroSystem>(s.host());
    sys->setLegacyPlacementSampling(
        s.hotness.legacy_placement_sampling);
    if (s.profiling)
        sys->enableProfiling();
    if (s.xray)
        sys->enableXray();
    if (s.metrics)
        sys->enableMetrics();
    sys->addVm(makePolicy(s), s.sizing());
    return sys;
}

workload::Workload::Result
run(const Scenario &s, const workload::WorkloadFactory &factory)
{
    auto sys = systemFor(s);
    return sys->runOne(sys->slot(0), factory);
}

workload::Workload::Result
run(const Scenario &s)
{
    return run(s, workload::makeApp(s.app, s.scale));
}

} // namespace hos::core
