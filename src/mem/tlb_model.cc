#include "mem/tlb_model.hh"

#include <algorithm>

#include "sim/log.hh"

namespace hos::mem {

TlbModel::TlbModel(TlbConfig cfg) : cfg_(cfg)
{
    hos_assert(cfg_.entries > 0 && cfg_.cpus > 0, "bad TLB config");
}

sim::Duration
TlbModel::scanFlushCost(std::uint64_t pages_scanned,
                        std::uint64_t live_pages)
{
    flushes_.inc();
    // Only translations actually resident get re-walked; the resident
    // set is bounded by TLB reach and by what the scan touched.
    const std::uint64_t resident =
        std::min<std::uint64_t>({live_pages, cfg_.entries, pages_scanned});
    refills_.inc(resident);
    const double cost = cfg_.flush_cost_ns +
                        static_cast<double>(resident) * cfg_.walk_cost_ns;
    return static_cast<sim::Duration>(cost);
}

sim::Duration
TlbModel::shootdownCost(std::uint64_t pages)
{
    flushes_.inc();
    // One IPI round per batch, then per-page invalidations on each CPU
    // plus the eventual refill walk by the owner.
    const double per_page = 15.0; // invlpg-equivalent on each CPU
    const double cost =
        cfg_.flush_cost_ns +
        static_cast<double>(pages) * per_page *
            static_cast<double>(cfg_.cpus) +
        static_cast<double>(std::min<std::uint64_t>(pages, cfg_.entries)) *
            cfg_.walk_cost_ns;
    return static_cast<sim::Duration>(cost);
}

void
TlbModel::resetStats()
{
    flushes_.reset();
    refills_.reset();
}

} // namespace hos::mem
