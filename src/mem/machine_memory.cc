#include "mem/machine_memory.hh"

#include <algorithm>

#include "sim/log.hh"

namespace hos::mem {

MachineNode::MachineNode(unsigned node_id, MemType type, MemTierSpec spec,
                         Mfn mfn_base)
    : node_id_(node_id), type_(type), spec_(spec), device_(spec),
      mfn_base_(mfn_base), total_frames_(spec.capacityPages())
{
    hos_assert(total_frames_ > 0, "node must have at least one frame");
    free_.reserve(total_frames_);
    // Hand frames out in ascending order: push in reverse so the stack
    // pops low MFNs first (deterministic, friendlier to inspection).
    for (std::uint64_t i = total_frames_; i-- > 0;)
        free_.push_back(mfn_base_ + i);
    owner_.assign(total_frames_, ownerNone);
}

bool
MachineNode::containsMfn(Mfn mfn) const
{
    return mfn >= mfn_base_ && mfn < mfn_base_ + total_frames_;
}

std::size_t
MachineNode::indexOf(Mfn mfn) const
{
    hos_assert(containsMfn(mfn), "MFN %llu not in node %u",
               static_cast<unsigned long long>(mfn), node_id_);
    return static_cast<std::size_t>(mfn - mfn_base_);
}

std::optional<Mfn>
MachineNode::allocFrame(OwnerId owner)
{
    hos_assert(owner != ownerNone, "frames need a real owner");
    if (free_.empty())
        return std::nullopt;
    const Mfn mfn = free_.back();
    free_.pop_back();
    owner_[indexOf(mfn)] = owner;
    if (owner >= owned_count_.size())
        owned_count_.resize(owner + 1, 0);
    ++owned_count_[owner];
    return mfn;
}

std::vector<Mfn>
MachineNode::allocFrames(OwnerId owner, std::uint64_t n)
{
    std::vector<Mfn> out;
    out.reserve(std::min<std::uint64_t>(n, free_.size()));
    for (std::uint64_t i = 0; i < n; ++i) {
        auto mfn = allocFrame(owner);
        if (!mfn)
            break;
        out.push_back(*mfn);
    }
    return out;
}

void
MachineNode::freeFrame(Mfn mfn)
{
    const std::size_t idx = indexOf(mfn);
    hos_assert(owner_[idx] != ownerNone, "double free of MFN %llu",
               static_cast<unsigned long long>(mfn));
    const OwnerId owner = owner_[idx];
    hos_assert(owned_count_[owner] > 0, "owner accounting underflow");
    --owned_count_[owner];
    owner_[idx] = ownerNone;
    free_.push_back(mfn);
}

OwnerId
MachineNode::frameOwner(Mfn mfn) const
{
    return owner_[indexOf(mfn)];
}

std::uint64_t
MachineNode::framesOwnedBy(OwnerId owner) const
{
    if (owner >= owned_count_.size())
        return 0;
    return owned_count_[owner];
}

unsigned
MachineMemory::addNode(MemType type, MemTierSpec spec)
{
    const auto id = static_cast<unsigned>(nodes_.size());
    const std::uint64_t frames = spec.capacityPages();
    nodes_.push_back(
        std::make_unique<MachineNode>(id, type, std::move(spec),
                                      next_mfn_base_));
    next_mfn_base_ += frames;
    return id;
}

MachineNode &
MachineMemory::node(unsigned id)
{
    hos_assert(id < nodes_.size(), "bad node id %u", id);
    return *nodes_[id];
}

const MachineNode &
MachineMemory::node(unsigned id) const
{
    hos_assert(id < nodes_.size(), "bad node id %u", id);
    return *nodes_[id];
}

MachineNode &
MachineMemory::nodeByType(MemType type)
{
    for (auto &n : nodes_) {
        if (n->type() == type)
            return *n;
    }
    sim::panic("no node of type %s", memTypeName(type));
}

const MachineNode &
MachineMemory::nodeByType(MemType type) const
{
    for (const auto &n : nodes_) {
        if (n->type() == type)
            return *n;
    }
    sim::panic("no node of type %s", memTypeName(type));
}

bool
MachineMemory::hasType(MemType type) const
{
    for (const auto &n : nodes_) {
        if (n->type() == type)
            return true;
    }
    return false;
}

MachineNode &
MachineMemory::nodeOfMfn(Mfn mfn)
{
    for (auto &n : nodes_) {
        if (n->containsMfn(mfn))
            return *n;
    }
    sim::panic("MFN %llu belongs to no node",
               static_cast<unsigned long long>(mfn));
}

} // namespace hos::mem
