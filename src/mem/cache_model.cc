#include "mem/cache_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"

namespace hos::mem {

double
CacheConfig::efficiency() const
{
    // A 16-way cache behaves close to fully associative for streaming
    // and blocked kernels; lower associativity loses usable capacity
    // to conflicts. The constants follow the classic 30% rule of thumb
    // for conflict misses in low-associativity caches.
    const double a = static_cast<double>(associativity);
    return 1.0 - 0.30 / std::sqrt(a);
}

CacheModel::CacheModel(CacheConfig cfg)
    : cfg_(cfg), efficiency_(cfg.efficiency())
{
    hos_assert(cfg_.size_bytes > 0, "cache needs capacity");
    hos_assert(cfg_.associativity > 0, "cache needs associativity");
}

double
CacheModel::hitRatio(const RegionLocality &region,
                     std::uint64_t llc_claim_bytes) const
{
    if (region.wss_bytes == 0)
        return 1.0;

    const std::uint64_t claim =
        llc_claim_bytes == 0 ? cfg_.size_bytes : llc_claim_bytes;
    for (const HitMemo &m : memo_) {
        if (m.valid && m.wss_bytes == region.wss_bytes &&
            m.temporal == region.temporal && m.claim == claim) {
            return m.hit;
        }
    }

    const double t = std::clamp(region.temporal, 0.0, 1.0);
    const double usable = static_cast<double>(claim) * efficiency_;
    const double coverage =
        std::min(1.0, usable / static_cast<double>(region.wss_bytes));
    const double hit = t + (1.0 - t) * coverage;

    HitMemo &slot = memo_[memo_next_];
    memo_next_ = (memo_next_ + 1) % memoSlots;
    slot.wss_bytes = region.wss_bytes;
    slot.temporal = region.temporal;
    slot.claim = claim;
    slot.hit = hit;
    slot.valid = true;
    return hit;
}

std::uint64_t
CacheModel::access(const RegionLocality &region, std::uint64_t accesses,
                   std::uint64_t llc_claim_bytes)
{
    const double hr = hitRatio(region, llc_claim_bytes);
    const auto misses = static_cast<std::uint64_t>(
        std::llround(static_cast<double>(accesses) * (1.0 - hr)));
    accesses_.inc(accesses);
    misses_.inc(misses);
    return misses;
}

double
CacheModel::mpki(std::uint64_t instructions) const
{
    if (instructions == 0)
        return 0.0;
    return static_cast<double>(misses_.value()) * 1000.0 /
           static_cast<double>(instructions);
}

void
CacheModel::resetStats()
{
    accesses_.reset();
    misses_.reset();
}

} // namespace hos::mem
