/**
 * @file
 * Page-migration software cost model (Table 6).
 *
 * The paper measures, per migrated page, the data-copy cost
 * (T_page_move) and the page-table walk cost (T_page_walk), and shows
 * both amortize with migration batch size:
 *
 *   batch   T_page_move   T_page_walk
 *   8K      25.5 us       43.21 us
 *   64K     15.7 us       26.32 us
 *   128K    11.12 us      10.25 us
 *
 * The model interpolates those anchors piecewise-linearly in
 * log2(batch) and clamps outside the measured range, so bench_table6
 * reproduces the table exactly and every migration path (guest or
 * VMM) charges consistent costs.
 */

#ifndef HOS_MEM_MIGRATION_COST_HH
#define HOS_MEM_MIGRATION_COST_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "sim/time.hh"

namespace hos::mem {

/** Per-page migration costs as a function of batch size. */
class MigrationCostModel
{
  public:
    /** Per-page data-copy cost in microseconds for a batch. */
    static double
    pageMoveUs(std::uint64_t batch_pages)
    {
        return interp(batch_pages, moveAnchors);
    }

    /** Per-page page-walk cost in microseconds for a batch. */
    static double
    pageWalkUs(std::uint64_t batch_pages)
    {
        return interp(batch_pages, walkAnchors);
    }

    /** Total cost to migrate a batch (walk + move for every page). */
    static sim::Duration
    batchCost(std::uint64_t batch_pages)
    {
        if (batch_pages == 0)
            return 0;
        const double us =
            static_cast<double>(batch_pages) *
            (pageMoveUs(batch_pages) + pageWalkUs(batch_pages));
        return static_cast<sim::Duration>(us * 1000.0);
    }

  private:
    struct Anchor
    {
        double log2_batch;
        double us;
    };

    // Table 6 anchors at log2(8K)=13, log2(64K)=16, log2(128K)=17.
    static constexpr Anchor moveAnchors[3] = {
        {13.0, 25.5}, {16.0, 15.7}, {17.0, 11.12}};
    static constexpr Anchor walkAnchors[3] = {
        {13.0, 43.21}, {16.0, 26.32}, {17.0, 10.25}};

    static double
    interp(std::uint64_t batch_pages, const Anchor (&a)[3])
    {
        const double x =
            std::log2(static_cast<double>(std::max<std::uint64_t>(
                1, batch_pages)));
        if (x <= a[0].log2_batch)
            return a[0].us;
        if (x >= a[2].log2_batch)
            return a[2].us;
        const Anchor &lo = x <= a[1].log2_batch ? a[0] : a[1];
        const Anchor &hi = x <= a[1].log2_batch ? a[1] : a[2];
        const double f = (x - lo.log2_batch) /
                         (hi.log2_batch - lo.log2_batch);
        return lo.us + f * (hi.us - lo.us);
    }
};

} // namespace hos::mem

#endif // HOS_MEM_MIGRATION_COST_HH
