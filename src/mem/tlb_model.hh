/**
 * @file
 * TLB cost model.
 *
 * Hotness tracking by access-bit scanning (Section 2.3, Observation 4)
 * must flush TLB entries so the hardware re-sets accessed bits on the
 * next touch; migration requires shootdowns. Both costs land on the
 * application as stalls, and the paper identifies them as the dominant
 * software overhead (Figure 8). The model charges:
 *
 *  - a fixed per-flush cost (IPI + microcode),
 *  - a refill cost: each flushed-and-live translation is re-walked on
 *    next use (4-level walk),
 *  - a per-CPU shootdown multiplier for migrations.
 */

#ifndef HOS_MEM_TLB_MODEL_HH
#define HOS_MEM_TLB_MODEL_HH

#include <cstdint>

#include "sim/stats.hh"
#include "sim/time.hh"

namespace hos::mem {

/** Parameters of the modelled TLB and page-walk hardware. */
struct TlbConfig
{
    unsigned entries = 1536;        ///< combined L2 TLB entries
    double flush_cost_ns = 800.0;   ///< full flush / IPI round trip
    double walk_cost_ns = 80.0;     ///< one 4-level page-table walk
    unsigned cpus = 16;             ///< cores receiving shootdown IPIs
};

/** Charges TLB flush / refill / shootdown costs. */
class TlbModel
{
  public:
    explicit TlbModel(TlbConfig cfg);

    const TlbConfig &config() const { return cfg_; }

    /**
     * Cost of invalidating translations for a scan over
     * `pages_scanned` pages of a working set with `live_pages`
     * currently-hot translations: a flush plus refills for the live
     * entries that were resident (bounded by TLB reach).
     */
    sim::Duration scanFlushCost(std::uint64_t pages_scanned,
                                std::uint64_t live_pages);

    /** Cost of shooting down `pages` translations on all CPUs. */
    sim::Duration shootdownCost(std::uint64_t pages);

    std::uint64_t flushes() const { return flushes_.value(); }
    std::uint64_t refills() const { return refills_.value(); }

    void resetStats();

  private:
    TlbConfig cfg_;
    sim::Counter flushes_;
    sim::Counter refills_;
};

} // namespace hos::mem

#endif // HOS_MEM_TLB_MODEL_HH
