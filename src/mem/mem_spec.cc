#include "mem/mem_spec.hh"

#include <cstdio>

#include "sim/log.hh"

namespace hos::mem {

const char *
memTypeName(MemType t)
{
    switch (t) {
      case MemType::FastMem:
        return "FastMem";
      case MemType::SlowMem:
        return "SlowMem";
      case MemType::MediumMem:
        return "MediumMem";
    }
    return "?";
}

MemTierSpec
dramSpec(std::uint64_t capacity_bytes)
{
    MemTierSpec s;
    s.name = "DRAM(L:1,B:1)";
    s.load_latency_ns = 60.0;
    s.store_latency_ns = 60.0;
    s.bandwidth_gbps = 24.0;
    s.capacity_bytes = capacity_bytes;
    return s;
}

MemTierSpec
throttledSpec(double lat_factor, double bw_factor,
              std::uint64_t capacity_bytes)
{
    hos_assert(lat_factor >= 1.0 && bw_factor >= 1.0,
               "throttling cannot speed memory up");
    MemTierSpec s = dramSpec(capacity_bytes);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "Throttled(L:%g,B:%g)", lat_factor,
                  bw_factor);
    s.name = buf;
    s.load_latency_ns *= lat_factor;
    s.store_latency_ns *= lat_factor;
    s.bandwidth_gbps /= bw_factor;
    return s;
}

MemTierSpec
stacked3dSpec(std::uint64_t capacity_bytes)
{
    MemTierSpec s;
    s.name = "Stacked3D";
    s.load_latency_ns = 40.0;
    s.store_latency_ns = 40.0;
    s.bandwidth_gbps = 160.0;
    s.capacity_bytes = capacity_bytes;
    return s;
}

MemTierSpec
nvmSpec(std::uint64_t capacity_bytes)
{
    MemTierSpec s;
    s.name = "NVM(PCM)";
    s.load_latency_ns = 150.0;
    s.store_latency_ns = 450.0;
    s.bandwidth_gbps = 2.0;
    s.capacity_bytes = capacity_bytes;
    return s;
}

MemTierSpec
defaultSlowMemSpec(std::uint64_t capacity_bytes)
{
    return throttledSpec(5.0, 9.0, capacity_bytes);
}

} // namespace hos::mem
