/**
 * @file
 * Analytic last-level-cache model.
 *
 * Figures 1-3 of the paper hinge on how much of each application's
 * traffic reaches memory, which depends on the working set of each
 * memory region relative to the LLC. Rather than simulating individual
 * cache lines (intractable for second-scale application runs), the
 * model computes a per-region hit ratio from:
 *
 *  - the region's resident working-set size,
 *  - the region's temporal locality (fraction of accesses that re-touch
 *    recently used lines regardless of working-set size), and
 *  - the LLC capacity share the region can hold.
 *
 * hit = t + (1 - t) * min(1, llc_share / wss)
 *
 * where t is the temporal-locality parameter. The same model with a
 * 16 MiB LLC reproduces Figure 1 (local emulator, Xeon X5560) and with
 * a 48 MiB LLC reproduces Figure 2 (Intel NVM emulator, E5-4620 v2),
 * including the paper's observation that the larger LLC lowers every
 * application's slowdown factor.
 */

#ifndef HOS_MEM_CACHE_MODEL_HH
#define HOS_MEM_CACHE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/mem_spec.hh"
#include "sim/stats.hh"

namespace hos::mem {

/** Cache-line size used for traffic accounting. */
constexpr std::uint64_t cacheLineSize = 64;

/** Configuration of the modelled LLC. */
struct CacheConfig
{
    std::uint64_t size_bytes = 16 * mib;
    unsigned associativity = 16;
    /**
     * Fraction of nominal capacity that is usable before conflict and
     * sharing effects bite (higher associativity -> closer to 1).
     */
    double efficiency() const;
};

/** A memory region's cache behaviour descriptor. */
struct RegionLocality
{
    std::uint64_t wss_bytes = 0;   ///< hot bytes the region re-touches
    double temporal = 0.0;         ///< locality independent of capacity
};

/** Analytic LLC: converts accesses to misses region-by-region. */
class CacheModel
{
  public:
    explicit CacheModel(CacheConfig cfg);

    const CacheConfig &config() const { return cfg_; }

    /**
     * Hit ratio for a region, given how many bytes of LLC the region
     * can claim. `llc_claim_bytes` defaults to the whole cache; when
     * several regions are live the caller apportions capacity.
     */
    double hitRatio(const RegionLocality &region,
                    std::uint64_t llc_claim_bytes = 0) const;

    /**
     * Record `accesses` to a region and return the number that miss.
     * Accumulates hit/miss statistics for MPKI reporting.
     */
    std::uint64_t access(const RegionLocality &region,
                         std::uint64_t accesses,
                         std::uint64_t llc_claim_bytes = 0);

    /** Misses per kilo-instruction given a retired instruction count. */
    double mpki(std::uint64_t instructions) const;

    std::uint64_t totalAccesses() const { return accesses_.value(); }
    std::uint64_t totalMisses() const { return misses_.value(); }

    void resetStats();

  private:
    /**
     * Memoized hit-ratio curve points. Workload phases evaluate the
     * same handful of (wss, temporal, claim) triples thousands of
     * times; caching the exact doubles keeps results bit-identical
     * while skipping the recomputation (and its divide). Entries are
     * invalidated by replacement when any key component changes.
     */
    struct HitMemo
    {
        std::uint64_t wss_bytes = 0;
        double temporal = 0.0;
        std::uint64_t claim = 0;
        double hit = 0.0;
        bool valid = false;
    };
    static constexpr std::size_t memoSlots = 8;

    CacheConfig cfg_;
    double efficiency_; ///< cfg_.efficiency(), fixed at construction
    mutable HitMemo memo_[memoSlots];
    mutable std::size_t memo_next_ = 0;
    sim::Counter accesses_;
    sim::Counter misses_;
};

} // namespace hos::mem

#endif // HOS_MEM_CACHE_MODEL_HH
