#include "mem/mem_device.hh"

#include <algorithm>
#include <cmath>

#include "sim/log.hh"
#include "trace/trace.hh"

namespace hos::mem {

MemDevice::MemDevice(MemTierSpec spec) : spec_(std::move(spec))
{
    hos_assert(spec_.bandwidth_gbps > 0.0, "device needs bandwidth");
    hos_assert(spec_.load_latency_ns > 0.0, "device needs latency");
}

sim::Duration
MemDevice::estimate(const AccessBatch &batch, unsigned sharers) const
{
    hos_assert(sharers >= 1, "at least one client");

    const double mlp = std::max(1.0, batch.mlp);
    const double lat_ns =
        (static_cast<double>(batch.loads) * spec_.load_latency_ns +
         static_cast<double>(batch.stores) * spec_.store_latency_ns) / mlp;

    const double share = spec_.bytesPerNs() / static_cast<double>(sharers);
    const double bw_ns = static_cast<double>(batch.bytes) / share;

    // Latency and bandwidth phases overlap in a pipelined memory
    // system; the longer one dominates. Near saturation
    // (bandwidth-bound batches), queueing inflates service time — the
    // utilization here is the fraction of the batch's service window
    // the device spends moving data. The inflation is smooth and
    // bounded (~1.75x at full saturation) so crossing from latency-
    // to bandwidth-bound behaviour has no cliff.
    double t = std::max(lat_ns, bw_ns);
    if (t > 0.0) {
        const double util = std::min(1.0, bw_ns / t);
        t *= 1.0 + 0.75 * util * util * util;
    }
    return static_cast<sim::Duration>(t);
}

sim::Duration
MemDevice::service(const AccessBatch &batch, unsigned sharers)
{
    loads_.inc(batch.loads);
    stores_.inc(batch.stores);
    bytes_.inc(batch.bytes);

    const sim::Duration d = estimate(batch, sharers);
    busy_ns_ += d;
    // Devices have no clock of their own; the global tick is the
    // caller's (per-phase) simulated time.
    trace::emit(trace::EventType::DeviceBatch, sim::currentTick(),
                batch.loads, batch.stores, batch.bytes, d);
    return d;
}

double
MemDevice::loadedLatencyNs(double utilization) const
{
    const double u = std::clamp(utilization, 0.0, 0.95);
    return spec_.load_latency_ns * (1.0 + 0.35 * u * u / (1.0 - u));
}

double
MemDevice::achievedBandwidthGbps() const
{
    if (busy_ns_ == 0)
        return 0.0;
    return static_cast<double>(bytes_.value()) /
           static_cast<double>(busy_ns_);
}

void
MemDevice::resetStats()
{
    loads_.reset();
    stores_.reset();
    bytes_.reset();
    busy_ns_ = 0;
}

} // namespace hos::mem
