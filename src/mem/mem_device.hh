/**
 * @file
 * Memory-device service model.
 *
 * A MemDevice turns a batch of LLC misses into simulated service time.
 * The model has two components:
 *
 *  - a latency component: misses are serviced at the tier's load/store
 *    latency, overlapped by the workload's memory-level parallelism
 *    (MLP) — a pointer-chasing app (MLP~1) pays nearly the full
 *    latency per miss, while a batched graph kernel (MLP 4-8) hides
 *    most of it;
 *  - a bandwidth component: the bytes moved, divided by the tier's
 *    bandwidth, scaled by how many concurrent clients share the device.
 *
 * Service time is max(latency, bandwidth) — the two overlap in a
 * pipelined memory system — inflated by an M/M/1-style queueing factor
 * as utilization approaches saturation. This reproduces the paper's
 * Figure 1/2 separation between latency-sensitive and
 * bandwidth-sensitive applications and Table 3's loaded latencies.
 */

#ifndef HOS_MEM_MEM_DEVICE_HH
#define HOS_MEM_MEM_DEVICE_HH

#include <cstdint>

#include "mem/mem_spec.hh"
#include "sim/stats.hh"
#include "sim/time.hh"

namespace hos::mem {

/** A batch of memory traffic to be serviced by one device. */
struct AccessBatch
{
    std::uint64_t loads = 0;   ///< LLC load misses reaching this device
    std::uint64_t stores = 0;  ///< LLC store misses / writebacks
    std::uint64_t bytes = 0;   ///< total bytes moved (lines or pages)
    double mlp = 1.0;          ///< workload memory-level parallelism
};

/** One physical memory tier's timing model plus service statistics. */
class MemDevice
{
  public:
    explicit MemDevice(MemTierSpec spec);

    const MemTierSpec &spec() const { return spec_; }

    /**
     * Simulated time to service `batch`, with `sharers` concurrent
     * clients splitting the device bandwidth. Also accumulates
     * utilization statistics.
     */
    sim::Duration service(const AccessBatch &batch, unsigned sharers = 1);

    /**
     * The service time `service(batch, sharers)` would charge, without
     * accumulating statistics or emitting trace events. The metrics
     * layer prices counterfactual placements (the all-fast ideal
     * baseline) through this, so telemetry never perturbs device
     * state.
     */
    sim::Duration estimate(const AccessBatch &batch,
                           unsigned sharers = 1) const;

    /**
     * Effective (loaded) access latency at a given utilization in
     * [0,1) — the number Table 3 reports for each throttle setting.
     */
    double loadedLatencyNs(double utilization) const;

    /** Average achieved bandwidth over everything serviced, GB/s. */
    double achievedBandwidthGbps() const;

    /** Raw time spent servicing batches (ns). */
    sim::Duration busyTime() const { return busy_ns_; }

    std::uint64_t totalLoads() const { return loads_.value(); }
    std::uint64_t totalStores() const { return stores_.value(); }
    std::uint64_t totalBytes() const { return bytes_.value(); }

    void resetStats();

  private:
    MemTierSpec spec_;
    sim::Counter loads_;
    sim::Counter stores_;
    sim::Counter bytes_;
    sim::Duration busy_ns_ = 0;
};

} // namespace hos::mem

#endif // HOS_MEM_MEM_DEVICE_HH
