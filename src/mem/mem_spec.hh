/**
 * @file
 * Memory-tier specifications.
 *
 * Encodes Table 1 (technology characteristics) and Table 3 (the paper's
 * DRAM-throttling configurations, written L:x,B:y for a latency increase
 * factor x and bandwidth reduction factor y relative to DRAM).
 */

#ifndef HOS_MEM_MEM_SPEC_HH
#define HOS_MEM_MEM_SPEC_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace hos::mem {

/** 4 KiB pages throughout, as in the paper's Linux/Xen substrate. */
constexpr std::uint64_t pageSize = 4096;
constexpr std::uint64_t pageShift = 12;

constexpr std::uint64_t kib = 1024ull;
constexpr std::uint64_t mib = 1024ull * kib;
constexpr std::uint64_t gib = 1024ull * mib;

/** Convert a byte count to whole pages (rounding up). */
constexpr std::uint64_t
bytesToPages(std::uint64_t bytes)
{
    return (bytes + pageSize - 1) / pageSize;
}

/** Role a memory tier plays in the two-tier HeteroOS configuration. */
enum class MemType : std::uint8_t {
    FastMem = 0,   ///< high-bandwidth, low-latency, limited capacity
    SlowMem = 1,   ///< low-bandwidth, high-latency, large capacity
    MediumMem = 2, ///< optional middle tier (paper §4.3 future work)
};

constexpr std::size_t numMemTypes = 3;

/** Printable name for a memory type. */
const char *memTypeName(MemType t);

/** Performance/capacity description of one memory tier. */
struct MemTierSpec
{
    std::string name;
    double load_latency_ns = 60.0;
    double store_latency_ns = 60.0;
    double bandwidth_gbps = 24.0;
    std::uint64_t capacity_bytes = 8 * gib;

    /** Bandwidth in bytes per simulated nanosecond. */
    double bytesPerNs() const { return bandwidth_gbps; }

    /** Capacity in 4 KiB pages. */
    std::uint64_t capacityPages() const { return capacity_bytes / pageSize; }
};

/**
 * DRAM baseline: the paper's FastMem reference point L:1,B:1
 * (60 ns loads, 24 GB/s per socket; Table 3 first column).
 */
MemTierSpec dramSpec(std::uint64_t capacity_bytes);

/**
 * A throttled tier L:x,B:y per Table 3: latency multiplied by
 * `lat_factor`, bandwidth divided by `bw_factor`, relative to DRAM.
 */
MemTierSpec throttledSpec(double lat_factor, double bw_factor,
                          std::uint64_t capacity_bytes);

/** Stacked 3D-DRAM per Table 1 (40 ns, 160 GB/s midpoints). */
MemTierSpec stacked3dSpec(std::uint64_t capacity_bytes);

/**
 * PCM-like NVM per Table 1 (150 ns loads, 450 ns stores midpoint,
 * 2 GB/s).
 */
MemTierSpec nvmSpec(std::uint64_t capacity_bytes);

/**
 * The paper's main SlowMem emulation point: L:5,B:9
 * (Section 5.1: bandwidth reduced ~9x, latency increased ~5x).
 */
MemTierSpec defaultSlowMemSpec(std::uint64_t capacity_bytes);

} // namespace hos::mem

#endif // HOS_MEM_MEM_SPEC_HH
