/**
 * @file
 * Machine (host-physical) memory: frames grouped into per-tier nodes.
 *
 * The VMM owns machine memory. Each heterogeneous tier is one
 * MachineNode holding a frame allocator and the tier's timing device.
 * Guests never see machine frame numbers (MFNs) directly; the VMM's
 * P2M layer maps guest page frames onto MFNs (vmm/p2m.hh).
 */

#ifndef HOS_MEM_MACHINE_MEMORY_HH
#define HOS_MEM_MACHINE_MEMORY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "mem/mem_device.hh"
#include "mem/mem_spec.hh"
#include "sim/stats.hh"

namespace hos::mem {

/** Machine frame number. Globally unique across nodes. */
using Mfn = std::uint64_t;

constexpr Mfn invalidMfn = ~Mfn(0);

/** Owner id for frames (a VM id, or ownerVmm for VMM-held frames). */
using OwnerId = std::uint32_t;
constexpr OwnerId ownerNone = 0;
constexpr OwnerId ownerVmm = 1;
constexpr OwnerId firstVmOwner = 2;

/** One memory tier's frames plus its timing device. */
class MachineNode
{
  public:
    /**
     * @param node_id host node index (also the guest NUMA node id)
     * @param type    role of this tier (FastMem/SlowMem/...)
     * @param spec    capacity and timing
     * @param mfn_base first MFN of this node's contiguous frame range
     */
    MachineNode(unsigned node_id, MemType type, MemTierSpec spec,
                Mfn mfn_base);

    unsigned nodeId() const { return node_id_; }
    MemType type() const { return type_; }
    const MemTierSpec &spec() const { return spec_; }
    MemDevice &device() { return device_; }
    const MemDevice &device() const { return device_; }

    std::uint64_t totalFrames() const { return total_frames_; }
    std::uint64_t freeFrames() const { return free_.size(); }
    std::uint64_t usedFrames() const { return total_frames_ - free_.size(); }

    Mfn mfnBase() const { return mfn_base_; }
    bool containsMfn(Mfn mfn) const;

    /** Allocate one frame for `owner`; nullopt when exhausted. */
    std::optional<Mfn> allocFrame(OwnerId owner);

    /** Allocate up to `n` frames; returns what was available. */
    std::vector<Mfn> allocFrames(OwnerId owner, std::uint64_t n);

    /** Return a frame. Panics on double-free or foreign MFN. */
    void freeFrame(Mfn mfn);

    /** Owner of a frame (ownerNone when free). */
    OwnerId frameOwner(Mfn mfn) const;

    /** Frames currently owned by `owner`. */
    std::uint64_t framesOwnedBy(OwnerId owner) const;

  private:
    std::size_t indexOf(Mfn mfn) const;

    unsigned node_id_;
    MemType type_;
    MemTierSpec spec_;
    MemDevice device_;
    Mfn mfn_base_;
    std::uint64_t total_frames_;
    std::vector<Mfn> free_;
    std::vector<OwnerId> owner_;
    std::vector<std::uint64_t> owned_count_;
};

/** The host's collection of memory nodes (one per tier instance). */
class MachineMemory
{
  public:
    MachineMemory() = default;

    /** Append a node; returns its node id. MFN ranges never overlap. */
    unsigned addNode(MemType type, MemTierSpec spec);

    std::size_t numNodes() const { return nodes_.size(); }
    MachineNode &node(unsigned id);
    const MachineNode &node(unsigned id) const;

    /** First node of the given type; panics if absent. */
    MachineNode &nodeByType(MemType type);
    const MachineNode &nodeByType(MemType type) const;
    bool hasType(MemType type) const;

    /** Node owning an MFN; panics for an unmapped MFN. */
    MachineNode &nodeOfMfn(Mfn mfn);

  private:
    std::vector<std::unique_ptr<MachineNode>> nodes_;
    Mfn next_mfn_base_ = 0;
};

} // namespace hos::mem

#endif // HOS_MEM_MACHINE_MEMORY_HH
