#!/usr/bin/env bash
#
# Static hygiene gate for the HeteroOS simulator.
#
#   tools/lint.sh          run every check
#   tools/lint.sh --fast   skip the header self-sufficiency compiles
#
# Checks:
#   1. Banned constructs in src/:
#        - raw assert()        -> use hos_assert (active in release,
#                                 sim-tick stamped, throwable)
#        - naked new           -> use std::make_unique / containers
#        - wall-clock calls    -> simulation code must use sim time
#                                 (sim::currentTick / EventQueue) only,
#                                 or parallel-vs-serial runs diverge
#   2. clang-tidy over src/ when a compile database and clang-tidy
#      exist (skipped with a note otherwise; CI installs it).
#   3. Header self-sufficiency: every header under src/ compiles as a
#      standalone translation unit.
#
# Exit status: 0 clean, 1 findings.

set -u
cd "$(dirname "$0")/.."

FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

fail=0
red() { printf '\033[31m%s\033[0m\n' "$*"; }
note() { printf '%s\n' "$*"; }

findings() {
    # findings <label> <matches>
    if [ -n "$2" ]; then
        red "lint: $1"
        printf '%s\n' "$2"
        fail=1
    fi
}

# --- 1. Banned constructs -------------------------------------------------

# Raw assert(): hos_assert only (static_assert is fine).
matches=$(grep -rnE '(^|[^_a-zA-Z.])assert\(' src \
    --include='*.cc' --include='*.hh' \
    | grep -vE 'hos_assert|static_assert|assertFail|//|\*' || true)
findings "raw assert() — use hos_assert" "$matches"

# Naked new: ownership must be typed (make_unique, containers).
matches=$(grep -rnE '(=|return)[[:space:]]+new[[:space:]]' src \
    --include='*.cc' --include='*.hh' || true)
findings "naked new — use std::make_unique" "$matches"

# Wall-clock time in simulation code: nondeterminism under the
# parallel sweep runner. (Anchored on full names; "synchronous"
# contains "chrono".) src/prof is the one sanctioned wall-clock site:
# prof.cc samples steady_clock for host-time span costs at
# HOS_PROF=host, and that time never enters determinism-checked
# output (see prof/report.cc).
matches=$(grep -rnE \
    'std::chrono|gettimeofday|clock_gettime|[^_a-zA-Z]time\(NULL\)|[^_a-zA-Z]time\(nullptr\)|[^_a-zA-Z]time\(0\)' \
    src --include='*.cc' --include='*.hh' \
    | grep -v '^src/prof/' || true)
findings "wall-clock call in sim code — use sim time" "$matches"

# Clock types by name, in case they arrive without the std::chrono
# qualifier (using-directives, aliases).
matches=$(grep -rnE \
    'steady_clock|system_clock|high_resolution_clock' \
    src --include='*.cc' --include='*.hh' \
    | grep -v '^src/prof/' || true)
findings "host clock outside src/prof/ — use sim time" "$matches"

# Retired pre-Scenario API names: the deprecated RunSpec/runApp/
# runFactory/hostFor shims were deleted; nothing may reintroduce them.
# (-w: whole words, so benchmark::RunSpecifiedBenchmarks is fine.)
matches=$(grep -rnwE 'RunSpec|runApp|runFactory|hostFor' \
    src tests bench examples \
    --include='*.cc' --include='*.hh' || true)
findings "retired pre-Scenario API name — use core::Scenario/run()" \
    "$matches"

# --- 2. clang-tidy --------------------------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
    if [ -f build/compile_commands.json ]; then
        note "lint: running clang-tidy (this can take a while)"
        if ! find src -name '*.cc' -print0 \
            | xargs -0 -P "$(nproc)" -n 4 clang-tidy -p build --quiet \
                2>/dev/null; then
            red "lint: clang-tidy reported findings"
            fail=1
        fi
    else
        note "lint: skipping clang-tidy (no build/compile_commands.json;" \
             "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
    fi
else
    note "lint: skipping clang-tidy (not installed)"
fi

# --- 3. Header self-sufficiency -------------------------------------------

if [ "$FAST" -eq 0 ]; then
    cxx=${CXX:-c++}
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir"' EXIT
    note "lint: checking header self-sufficiency with $cxx"
    while IFS= read -r hdr; do
        rel=${hdr#src/}
        printf '#include "%s"\n' "$rel" > "$tmpdir/tu.cc"
        # src/xray headers gate their API on HOS_XRAY_LEVEL; they must
        # be self-sufficient at every compiled level, not just the
        # in-header default.
        case $hdr in
        src/xray/*) levels="0 1 2" ;;
        *) levels="default" ;;
        esac
        for level in $levels; do
            if [ "$level" = "default" ]; then
                leveldef=""
            else
                leveldef="-DHOS_XRAY_LEVEL=$level"
            fi
            # shellcheck disable=SC2086
            if ! "$cxx" -std=c++20 -fsyntax-only -Isrc $leveldef \
                "$tmpdir/tu.cc" 2> "$tmpdir/err"; then
                red "lint: header is not self-sufficient: $hdr${leveldef:+ ($leveldef)}"
                cat "$tmpdir/err"
                fail=1
            fi
        done
    done < <(find src -name '*.hh' | sort)
fi

if [ "$fail" -ne 0 ]; then
    red "lint: FAILED"
    exit 1
fi
note "lint: OK"
