#!/usr/bin/env bash
#
# Static hygiene gate for the HeteroOS simulator.
#
#   tools/lint.sh          run every check
#   tools/lint.sh --fast   skip the header self-sufficiency compiles
#
# Checks:
#   1. hos-analyze (tools/analyze/): the codebase-specific analyzer.
#      This replaced the old grep-based banned-construct section —
#      raw assert(), naked new, wall-clock calls, and retired API
#      names are now token-aware rules there, alongside the
#      determinism, instrumentation-completeness, and telemetry-purity
#      rules greps could never express. See DESIGN.md "Static
#      analysis" for the catalog.
#   2. clang-tidy over src/ when a compile database and clang-tidy
#      exist (skipped with a note otherwise; CI installs it).
#   3. Header self-sufficiency: every header under src/ compiles as a
#      standalone translation unit.
#
# Exit status: 0 clean, 1 findings.

set -u
cd "$(dirname "$0")/.."

FAST=0
[ "${1:-}" = "--fast" ] && FAST=1

fail=0
red() { printf '\033[31m%s\033[0m\n' "$*"; }
note() { printf '%s\n' "$*"; }

# --- 1. hos-analyze -------------------------------------------------------

cxx=${CXX:-c++}
analyzer=""
for candidate in build/tools/analyze/hos-analyze \
                 build*/tools/analyze/hos-analyze; do
    if [ -x "$candidate" ]; then
        analyzer=$candidate
        break
    fi
done
if [ -z "$analyzer" ]; then
    # No configured build yet: the analyzer is dependency-free by
    # design, so bootstrap it with the bare compiler.
    bootdir=$(mktemp -d)
    trap 'rm -rf "$bootdir"' EXIT
    note "lint: bootstrapping hos-analyze with $cxx"
    if "$cxx" -std=c++20 -O1 -Itools/analyze \
        tools/analyze/lexer.cc tools/analyze/rules.cc \
        tools/analyze/main.cc -o "$bootdir/hos-analyze"; then
        analyzer=$bootdir/hos-analyze
    else
        red "lint: could not build hos-analyze"
        fail=1
    fi
fi
if [ -n "$analyzer" ]; then
    note "lint: running hos-analyze"
    if ! "$analyzer" --root=.; then
        red "lint: hos-analyze reported findings"
        fail=1
    fi
fi

# --- 2. clang-tidy --------------------------------------------------------

if command -v clang-tidy >/dev/null 2>&1; then
    if [ -f build/compile_commands.json ]; then
        note "lint: running clang-tidy (this can take a while)"
        if ! find src -name '*.cc' -print0 \
            | xargs -0 -P "$(nproc)" -n 4 clang-tidy -p build --quiet \
                2>/dev/null; then
            red "lint: clang-tidy reported findings"
            fail=1
        fi
    else
        note "lint: skipping clang-tidy (no build/compile_commands.json;" \
             "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)"
    fi
else
    note "lint: skipping clang-tidy (not installed)"
fi

# --- 3. Header self-sufficiency -------------------------------------------

if [ "$FAST" -eq 0 ]; then
    tmpdir=$(mktemp -d)
    trap 'rm -rf "$tmpdir" ${bootdir:-}' EXIT
    note "lint: checking header self-sufficiency with $cxx"
    while IFS= read -r hdr; do
        rel=${hdr#src/}
        printf '#include "%s"\n' "$rel" > "$tmpdir/tu.cc"
        # src/xray headers gate their API on HOS_XRAY_LEVEL; they must
        # be self-sufficient at every compiled level, not just the
        # in-header default.
        case $hdr in
        src/xray/*) levels="0 1 2" ;;
        *) levels="default" ;;
        esac
        for level in $levels; do
            if [ "$level" = "default" ]; then
                leveldef=""
            else
                leveldef="-DHOS_XRAY_LEVEL=$level"
            fi
            # shellcheck disable=SC2086
            if ! "$cxx" -std=c++20 -fsyntax-only -Isrc $leveldef \
                "$tmpdir/tu.cc" 2> "$tmpdir/err"; then
                red "lint: header is not self-sufficient: $hdr${leveldef:+ ($leveldef)}"
                cat "$tmpdir/err"
                fail=1
            fi
        done
    done < <(find src -name '*.hh' | sort)
fi

if [ "$fail" -ne 0 ]; then
    red "lint: FAILED"
    exit 1
fi
note "lint: OK"
