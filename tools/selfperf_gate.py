#!/usr/bin/env python3
"""Fail when the fresh selfperf summary regressed against the prior record.

Reads a hos-selfperf-2 summary (BENCH_selfperf.json) whose `history`
array carries the previous record — seed the bench's output path with
the checked-in summary before running bench_selfperf, and its
history-append behavior preserves the prior top level — then compares
each optimized run's sim_ns_per_host_s (simulated nanoseconds advanced
per host second; higher is better) against the most recent history
record that measured the same run. A drop beyond the threshold
(default 15%) fails the gate.

Legacy cross-check runs (`<name>/legacy`) are exempt: they pin the
pre-optimization implementation, whose cost is not a product property.

Usage: selfperf_gate.py [summary.json] [--threshold=0.15]
"""

import json
import sys


def main(argv):
    path = "BENCH_selfperf.json"
    threshold = 0.15
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            path = arg

    with open(path) as f:
        summary = json.load(f)
    if summary.get("schema") != "hos-selfperf-2":
        print(f"selfperf-gate: unexpected schema {summary.get('schema')!r}")
        return 1

    history = [r for r in summary.get("history", []) if "runs" in r]
    if not history:
        print("selfperf-gate: no prior record in history; nothing to gate")
        return 0
    prev = history[-1]["runs"]

    regressions = []
    compared = 0
    for name, run in summary.get("runs", {}).items():
        if name.endswith("/legacy") or name not in prev:
            continue
        before = prev[name].get("sim_ns_per_host_s", 0.0)
        after = run.get("sim_ns_per_host_s", 0.0)
        if before <= 0.0:
            continue
        compared += 1
        change = after / before - 1.0
        marker = "REGRESSION" if after < (1.0 - threshold) * before else "ok"
        print(f"selfperf-gate: {name}: {before:.4g} -> {after:.4g} "
              f"sim-ns/host-s ({change:+.1%}) {marker}")
        if marker == "REGRESSION":
            regressions.append(name)

    if not compared:
        print("selfperf-gate: prior record shares no runs; nothing to gate")
        return 0
    if regressions:
        print(f"selfperf-gate: FAILED, >{threshold:.0%} slower on: "
              + ", ".join(regressions))
        return 1
    print(f"selfperf-gate: passed ({compared} runs within "
          f"{threshold:.0%} of the prior record)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
