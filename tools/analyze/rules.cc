#include "rules.hh"

#include <algorithm>
#include <array>
#include <cctype>
#include <cstddef>

namespace hos::analyze {

namespace {

using TokVec = std::vector<Token>;

const std::vector<std::string> kRuleIds = {
    "unordered-iter",   "ptr-key-ordered",   "ptr-hash",
    "raw-assert",       "naked-new",         "wall-clock",
    "charge-span",      "tier-xray",         "telemetry-purity",
    "xray-int",         "metrics-purity",    "loose-hotness-key",
    "retired-api",      "soa-field-write",
};

const std::array<const char *, 4> kUnorderedContainers = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

/** Sim-state APIs that telemetry-only regions must never call. */
const std::array<const char *, 14> kMutators = {
    "charge",        "retarget",        "allocFrame",
    "freeFrame",     "allocPage",       "freePage",
    "mapPage",       "evictPage",       "populatePages",
    "unpopulatePages", "schedulePeriodic", "migrateBatch",
    "promoteWithEviction", "demotePage"};

struct LooseKey {
    const char *key;
    const char *structured;
};
const std::array<LooseKey, 6> kLooseKeys = {{
    {"interval", "hotness.interval_ms"},
    {"pages_per_scan", "hotness.pages_per_scan"},
    {"hot_threshold", "hotness.hot_threshold"},
    {"adaptive", "hotness.adaptive"},
    {"free_run_skip", "hotness.free_run_skip"},
    {"legacy_placement_sampling", "hotness.legacy_placement_sampling"},
}};

const std::array<const char *, 4> kRetiredApis = {"RunSpec", "runApp",
                                                 "runFactory", "hostFor"};

/**
 * PageArray's SoA columns (trailing-underscore members) and the page
 * fields they own. Writes go through PageRef setters (or
 * PageArray::setAllocated); only guestos/page.{hh,cc} may touch the
 * columns directly.
 */
const std::array<const char *, 6> kSoaColumns = {
    "pte_accessed_", "allocated_", "heat_",
    "last_touch_",   "meta_",      "rmap_"};
const std::array<const char *, 12> kSoaFields = {
    "pte_accessed", "last_touch",  "on_list",   "in_buddy",
    "buddy_order",  "under_io",    "unevictable", "owner_process",
    "link_next",    "link_prev",   "list_id",   "mem_type"};

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
underDir(const std::string &path, const std::string &dir)
{
    return startsWith(path, dir + "/");
}

bool
isUnorderedContainerName(const std::string &s)
{
    return std::find(kUnorderedContainers.begin(),
                     kUnorderedContainers.end(),
                     s) != kUnorderedContainers.end();
}

std::string
squeeze(const std::string &s)
{
    std::string out;
    bool in_ws = true;
    for (char c : s) {
        if (c == ' ' || c == '\t') {
            if (!in_ws)
                out += ' ';
            in_ws = true;
        } else {
            out += c;
            in_ws = false;
        }
    }
    while (!out.empty() && out.back() == ' ')
        out.pop_back();
    return out;
}

/** Index of the matching close bracket, or ts.size(). Open/close are
 *  single-char punct ("(", ")", "{", "}", "<", ">"). */
std::size_t
matchForward(const TokVec &ts, std::size_t i, const char *open,
             const char *close)
{
    int depth = 0;
    for (std::size_t j = i; j < ts.size(); ++j) {
        if (ts[j].kind != Token::Kind::Punct)
            continue;
        if (ts[j].text == open) {
            ++depth;
        } else if (ts[j].text == close) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return ts.size();
}

/** Index of the matching open bracket scanning backwards, or npos. */
std::size_t
matchBackward(const TokVec &ts, std::size_t i, const char *open,
              const char *close)
{
    int depth = 0;
    for (std::size_t j = i + 1; j-- > 0;) {
        if (ts[j].kind != Token::Kind::Punct)
            continue;
        if (ts[j].text == close) {
            ++depth;
        } else if (ts[j].text == open) {
            --depth;
            if (depth == 0)
                return j;
        }
    }
    return static_cast<std::size_t>(-1);
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == Token::Kind::Punct && t.text == text;
}

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == Token::Kind::Ident && t.text == text;
}

/**
 * Outermost function-body token ranges [open_brace, close_brace].
 * A `{` starts a function body when we are not already inside one
 * and the previous token closes a parameter list or a trailing
 * qualifier: `)`, `const`, `noexcept`, `override`, `final`. Class,
 * namespace, and initializer braces never match that shape; control
 * flow braces only occur inside an already-open body.
 */
std::vector<std::pair<std::size_t, std::size_t>>
functionRanges(const TokVec &ts)
{
    std::vector<std::pair<std::size_t, std::size_t>> out;
    int depth = 0;
    int fn_depth = 0;
    bool in_fn = false;
    std::size_t fn_start = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (isPunct(ts[i], "{")) {
            if (!in_fn && i > 0) {
                const Token &p = ts[i - 1];
                if (isPunct(p, ")") || isIdent(p, "const") ||
                    isIdent(p, "noexcept") || isIdent(p, "override") ||
                    isIdent(p, "final")) {
                    in_fn = true;
                    fn_depth = depth;
                    fn_start = i;
                }
            }
            ++depth;
        } else if (isPunct(ts[i], "}")) {
            --depth;
            if (in_fn && depth == fn_depth) {
                out.emplace_back(fn_start, i);
                in_fn = false;
            }
        }
    }
    return out;
}

/** Names bound in the parameter list belonging to the function body
 *  opening at ts[open] — they shadow same-named sim-state members
 *  collected from headers. */
std::set<std::string>
parameterNames(const TokVec &ts, std::size_t open)
{
    std::set<std::string> out;
    // Walk back over trailing qualifiers to the `)` of the signature.
    std::size_t j = open;
    while (j > 0) {
        --j;
        if (isPunct(ts[j], ")"))
            break;
        if (ts[j].kind != Token::Kind::Ident)
            return out; // not a plain signature; give up quietly
    }
    if (j == 0 || !isPunct(ts[j], ")"))
        return out;
    const std::size_t lp = matchBackward(ts, j, "(", ")");
    if (lp == static_cast<std::size_t>(-1))
        return out;
    // A parameter name is the identifier immediately before `,`, `)`,
    // or `=` (default argument) at paren depth 1.
    int depth = 0;
    for (std::size_t k = lp; k <= j; ++k) {
        if (isPunct(ts[k], "(")) {
            ++depth;
        } else if (isPunct(ts[k], ")")) {
            --depth;
        }
        if (depth != 1 || k + 1 > j)
            continue;
        if (ts[k].kind == Token::Kind::Ident &&
            (isPunct(ts[k + 1], ",") || isPunct(ts[k + 1], ")") ||
             isPunct(ts[k + 1], "="))) {
            out.insert(ts[k].text);
        }
    }
    return out;
}

/** Scan one file for unordered-container declarations. Appends
 *  variable names, accessor function names, and using-aliases. */
void
collectFromFile(const LexedFile &f, GlobalNames &g, bool header_only)
{
    const TokVec &ts = f.tokens;
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (ts[i].kind != Token::Kind::Ident ||
            !isUnorderedContainerName(ts[i].text)) {
            continue;
        }
        if (i < 2 || !isPunct(ts[i - 1], "::") ||
            !isIdent(ts[i - 2], "std")) {
            continue;
        }
        if (i + 1 >= ts.size() || !isPunct(ts[i + 1], "<"))
            continue;
        // `using Alias = std::unordered_map<...>;`
        if (i >= 5 && isPunct(ts[i - 3], "=") &&
            ts[i - 4].kind == Token::Kind::Ident &&
            isIdent(ts[i - 5], "using")) {
            g.unordered_types.insert(ts[i - 4].text);
            continue;
        }
        const std::size_t close = matchForward(ts, i + 1, "<", ">");
        if (close >= ts.size())
            continue;
        std::size_t j = close + 1;
        while (j < ts.size() &&
               (isPunct(ts[j], "&") || isPunct(ts[j], "*") ||
                isIdent(ts[j], "const"))) {
            ++j;
        }
        if (j + 1 >= ts.size() || ts[j].kind != Token::Kind::Ident)
            continue;
        const Token &next = ts[j + 1];
        if (isPunct(next, "(")) {
            if (!header_only)
                g.unordered_fns.insert(ts[j].text);
        } else if (isPunct(next, ";") || isPunct(next, "=") ||
                   isPunct(next, "{") || isPunct(next, ",") ||
                   isPunct(next, ")")) {
            if (!header_only)
                g.unordered_vars.insert(ts[j].text);
        }
    }
}

/** Alias-typed declarations: `Alias name ;` for a known alias. */
void
collectAliasDecls(const LexedFile &f, GlobalNames &g)
{
    const TokVec &ts = f.tokens;
    for (std::size_t i = 0; i + 2 < ts.size(); ++i) {
        if (ts[i].kind != Token::Kind::Ident ||
            g.unordered_types.count(ts[i].text) == 0) {
            continue;
        }
        if (ts[i + 1].kind == Token::Kind::Ident &&
            (isPunct(ts[i + 2], ";") || isPunct(ts[i + 2], "=") ||
             isPunct(ts[i + 2], "{"))) {
            g.unordered_vars.insert(ts[i + 1].text);
        }
    }
}

/**
 * Per-file analysis context: findings, suppression filtering, and
 * the per-function shadow/taint machinery for unordered-iter.
 */
class FileAnalysis
{
  public:
    FileAnalysis(const LexedFile &f, const GlobalNames &names,
                 const Options &opts)
        : f_(f), names_(names), opts_(opts), fns_(functionRanges(f.tokens))
    {
    }

    std::vector<Finding> run()
    {
        collectLocalTaint();
        if (on("unordered-iter"))
            unorderedIter();
        if (on("ptr-key-ordered"))
            ptrKeyOrdered();
        if (on("ptr-hash"))
            ptrHash();
        if (on("raw-assert"))
            rawAssert();
        if (on("naked-new"))
            nakedNew();
        if (on("wall-clock"))
            wallClock();
        if (on("charge-span"))
            chargeSpan();
        if (on("tier-xray"))
            tierXray();
        if (on("telemetry-purity"))
            telemetryPurity();
        if (on("xray-int"))
            xrayInt();
        if (on("metrics-purity"))
            metricsPurity();
        if (on("loose-hotness-key"))
            looseHotnessKey();
        if (on("retired-api"))
            retiredApi();
        if (on("soa-field-write"))
            soaFieldWrite();
        std::sort(out_.begin(), out_.end(),
                  [](const Finding &a, const Finding &b) {
                      if (a.line != b.line)
                          return a.line < b.line;
                      if (a.col != b.col)
                          return a.col < b.col;
                      return a.rule < b.rule;
                  });
        return std::move(out_);
    }

  private:
    bool on(const std::string &rule) const
    {
        return opts_.disabled.count(rule) == 0 &&
               ruleAppliesTo(rule, f_.path);
    }

    bool suppressed(const std::string &rule, int line) const
    {
        for (int l : {line, line - 1}) {
            auto it = f_.suppressions.find(l);
            if (it == f_.suppressions.end())
                continue;
            if (it->second.count(rule) || it->second.count("all"))
                return true;
        }
        return false;
    }

    void emit(const std::string &rule, const Token &t,
              std::string message)
    {
        if (suppressed(rule, t.line))
            return;
        Finding fi;
        fi.rule = rule;
        fi.file = f_.path;
        fi.line = t.line;
        fi.col = t.col;
        fi.message = std::move(message);
        if (t.line >= 1 &&
            static_cast<std::size_t>(t.line) <= f_.lines.size()) {
            fi.excerpt = squeeze(f_.lines[t.line - 1]);
        }
        out_.push_back(std::move(fi));
    }

    const TokVec &ts() const { return f_.tokens; }

    /** Enclosing outermost function range, or (npos, npos). */
    std::pair<std::size_t, std::size_t> enclosingFn(std::size_t i) const
    {
        for (const auto &r : fns_) {
            if (i > r.first && i < r.second)
                return r;
        }
        return {static_cast<std::size_t>(-1),
                static_cast<std::size_t>(-1)};
    }

    // ---- unordered-iter taint machinery --------------------------

    void collectLocalTaint()
    {
        // Local/param declarations of unordered type in this file.
        GlobalNames local;
        local.unordered_types = names_.unordered_types;
        collectFromFile(f_, local, /*header_only=*/false);
        collectAliasDecls(f_, local);
        local_vars_ = std::move(local.unordered_vars);
        local_fns_ = std::move(local.unordered_fns);

        // One level of reference-alias taint:
        //   auto &alias = <expr touching unordered state>;
        const TokVec &t = ts();
        for (std::size_t i = 0; i + 3 < t.size(); ++i) {
            if (!isIdent(t[i], "auto"))
                continue;
            std::size_t j = i + 1;
            while (j < t.size() &&
                   (isIdent(t[j], "const") || isPunct(t[j], "&") ||
                    isPunct(t[j], "*"))) {
                ++j;
            }
            if (j + 1 >= t.size() || t[j].kind != Token::Kind::Ident ||
                !isPunct(t[j + 1], "=")) {
                continue;
            }
            int depth = 0;
            for (std::size_t k = j + 2;
                 k < t.size() && !isPunct(t[k], ";"); ++k) {
                // Stay inside the initializer: an unbalanced `)`
                // closes an enclosing if-condition, and what follows
                // is a different statement.
                if (isPunct(t[k], "(")) {
                    ++depth;
                } else if (isPunct(t[k], ")")) {
                    if (--depth < 0)
                        break;
                }
                if (t[k].kind != Token::Kind::Ident)
                    continue;
                // A tainted name followed by `.`/`->` is a method
                // call on the container (find, count, ...): the
                // alias binds the result, not the container.
                const bool derived =
                    k + 1 < t.size() && (isPunct(t[k + 1], ".") ||
                                         isPunct(t[k + 1], "-"));
                if ((tainted(t[k].text, i) && !derived) ||
                    (unorderedFn(t[k].text) && k + 1 < t.size() &&
                     isPunct(t[k + 1], "("))) {
                    local_vars_.insert(t[j].text);
                    break;
                }
            }
        }
    }

    bool unorderedFn(const std::string &name) const
    {
        return local_fns_.count(name) != 0 ||
               names_.unordered_fns.count(name) != 0;
    }

    /** Is `name` unordered sim state at token index `at`? Parameters
     *  of the enclosing function shadow header-declared members. */
    bool tainted(const std::string &name, std::size_t at) const
    {
        if (local_vars_.count(name))
            return true;
        if (names_.unordered_vars.count(name) == 0)
            return false;
        const auto fn = enclosingFn(at);
        if (fn.first == static_cast<std::size_t>(-1))
            return true;
        auto it = shadow_cache_.find(fn.first);
        if (it == shadow_cache_.end()) {
            it = shadow_cache_
                     .emplace(fn.first, parameterNames(ts(), fn.first))
                     .first;
        }
        return it->second.count(name) == 0;
    }

    // ---- determinism rules ---------------------------------------

    void unorderedIter()
    {
        const TokVec &t = ts();
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
            // Range-for whose range expression touches unordered state.
            if (isIdent(t[i], "for") && isPunct(t[i + 1], "(")) {
                const std::size_t close =
                    matchForward(t, i + 1, "(", ")");
                if (close >= t.size())
                    continue;
                std::size_t colon = t.size();
                int depth = 0;
                for (std::size_t k = i + 1; k < close; ++k) {
                    if (isPunct(t[k], "(")) {
                        ++depth;
                    } else if (isPunct(t[k], ")")) {
                        --depth;
                    } else if (depth == 1 && isPunct(t[k], ":")) {
                        colon = k;
                        break;
                    }
                }
                if (colon == t.size())
                    continue;
                for (std::size_t k = colon + 1; k < close; ++k) {
                    if (t[k].kind != Token::Kind::Ident)
                        continue;
                    const bool var_hit = tainted(t[k].text, k);
                    const bool fn_hit = unorderedFn(t[k].text) &&
                                        k + 1 < close &&
                                        isPunct(t[k + 1], "(");
                    if (var_hit || fn_hit) {
                        emit("unordered-iter", t[i],
                             "iteration order of '" + t[k].text +
                                 "' (std::unordered_*) can leak into "
                                 "results; use an ordered walk or "
                                 "annotate `// hos-analyze: "
                                 "ordered-insensitive (why)`");
                        break;
                    }
                }
                continue;
            }
            // explicit .begin()/.cbegin()/... on unordered state
            if (t[i].kind == Token::Kind::Ident &&
                (t[i].text == "begin" || t[i].text == "cbegin" ||
                 t[i].text == "rbegin" || t[i].text == "crbegin") &&
                i >= 2 && isPunct(t[i - 1], ".") &&
                isPunct(t[i + 1], "(")) {
                const Token &recv = t[i - 2];
                bool hit = false;
                std::string what;
                if (recv.kind == Token::Kind::Ident &&
                    tainted(recv.text, i - 2)) {
                    hit = true;
                    what = recv.text;
                } else if (isPunct(recv, ")")) {
                    const std::size_t lp =
                        matchBackward(t, i - 2, "(", ")");
                    if (lp != static_cast<std::size_t>(-1) && lp > 0 &&
                        t[lp - 1].kind == Token::Kind::Ident &&
                        unorderedFn(t[lp - 1].text)) {
                        hit = true;
                        what = t[lp - 1].text;
                    }
                }
                if (hit) {
                    emit("unordered-iter", t[i],
                         "explicit iterator over unordered '" + what +
                             "'; traversal order is not part of the "
                             "simulation contract");
                }
            }
        }
    }

    void ptrKeyOrdered()
    {
        const TokVec &t = ts();
        for (std::size_t i = 2; i + 1 < t.size(); ++i) {
            if (t[i].kind != Token::Kind::Ident ||
                (t[i].text != "map" && t[i].text != "set" &&
                 t[i].text != "multimap" && t[i].text != "multiset")) {
                continue;
            }
            if (!isPunct(t[i - 1], "::") || !isIdent(t[i - 2], "std") ||
                !isPunct(t[i + 1], "<")) {
                continue;
            }
            if (firstTemplateArgIsPointer(i + 1)) {
                emit("ptr-key-ordered", t[i],
                     "std::" + t[i].text +
                         " keyed on a raw pointer: ordering follows "
                         "allocation addresses, which vary run to run");
            }
        }
    }

    void ptrHash()
    {
        const TokVec &t = ts();
        for (std::size_t i = 2; i + 1 < t.size(); ++i) {
            if (!isIdent(t[i], "hash") || !isPunct(t[i - 1], "::") ||
                !isIdent(t[i - 2], "std") || !isPunct(t[i + 1], "<")) {
                continue;
            }
            if (firstTemplateArgIsPointer(i + 1)) {
                emit("ptr-hash", t[i],
                     "std::hash of a pointer hashes the address, not "
                     "the object: bucket order varies run to run");
            }
        }
    }

    /** ts[open] == "<"; true when the first template argument's last
     *  token is `*` (a raw pointer type). */
    bool firstTemplateArgIsPointer(std::size_t open) const
    {
        const TokVec &t = ts();
        const std::size_t close = matchForward(t, open, "<", ">");
        if (close >= t.size())
            return false;
        std::size_t last = open;
        int depth = 0;
        for (std::size_t k = open + 1; k < close; ++k) {
            if (isPunct(t[k], "<")) {
                ++depth;
            } else if (isPunct(t[k], ">")) {
                --depth;
            } else if (depth == 0 && isPunct(t[k], ",")) {
                break;
            }
            last = k;
        }
        return last > open && isPunct(t[last], "*");
    }

    void rawAssert()
    {
        const TokVec &t = ts();
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
            if (isIdent(t[i], "assert") && isPunct(t[i + 1], "(")) {
                emit("raw-assert", t[i],
                     "raw assert() compiles out in release; use "
                     "hos_assert (sim-tick stamped, always active)");
            }
        }
    }

    void nakedNew()
    {
        const TokVec &t = ts();
        for (std::size_t i = 1; i < t.size(); ++i) {
            if (isIdent(t[i], "new") &&
                (isPunct(t[i - 1], "=") || isIdent(t[i - 1], "return"))) {
                emit("naked-new", t[i],
                     "naked new transfers ownership untyped; use "
                     "std::make_unique or a container");
            }
        }
    }

    void wallClock()
    {
        const TokVec &t = ts();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != Token::Kind::Ident)
                continue;
            const std::string &id = t[i].text;
            const bool clock_name =
                id == "gettimeofday" || id == "clock_gettime" ||
                id == "steady_clock" || id == "system_clock" ||
                id == "high_resolution_clock";
            const bool std_chrono =
                id == "chrono" && i >= 2 && isPunct(t[i - 1], "::") &&
                isIdent(t[i - 2], "std");
            const bool time_call =
                id == "time" && i + 3 < t.size() &&
                isPunct(t[i + 1], "(") &&
                (isIdent(t[i + 2], "NULL") ||
                 isIdent(t[i + 2], "nullptr") ||
                 (t[i + 2].kind == Token::Kind::Number &&
                  t[i + 2].text == "0")) &&
                isPunct(t[i + 3], ")");
            if (clock_name || std_chrono || time_call) {
                emit("wall-clock", t[i],
                     "host time in simulation code diverges under the "
                     "parallel sweep runner; use sim time "
                     "(EventQueue::now)");
            }
        }
    }

    // ---- instrumentation completeness ----------------------------

    void chargeSpan()
    {
        const TokVec &t = ts();
        for (const auto &fn : fns_) {
            bool has_span = false;
            for (std::size_t i = fn.first; i < fn.second; ++i) {
                if (isIdent(t[i], "HOS_PROF_SPAN")) {
                    has_span = true;
                    break;
                }
            }
            if (has_span)
                continue;
            for (std::size_t i = fn.first; i < fn.second; ++i) {
                if (!isIdent(t[i], "charge") || i + 1 >= fn.second ||
                    !isPunct(t[i + 1], "(")) {
                    continue;
                }
                // A call passes an enumerator (OverheadKind::X); a
                // declaration binds a parameter (OverheadKind kind).
                for (std::size_t k = i + 2;
                     k < std::min(i + 6, fn.second); ++k) {
                    if (isIdent(t[k], "OverheadKind") &&
                        k + 1 < fn.second && isPunct(t[k + 1], "::")) {
                        emit("charge-span", t[i],
                             "kernel charge() outside any "
                             "HOS_PROF_SPAN: the cost lands in the "
                             "ledger with no span to attribute it to");
                        break;
                    }
                }
            }
        }
    }

    void tierXray()
    {
        const TokVec &t = ts();
        for (const auto &fn : fns_) {
            bool has_ring = false;
            for (std::size_t i = fn.first; i < fn.second; ++i) {
                if (isIdent(t[i], "onTierChange") ||
                    isIdent(t[i], "onGuestMove")) {
                    has_ring = true;
                    break;
                }
            }
            if (has_ring)
                continue;
            for (std::size_t i = fn.first; i < fn.second; ++i) {
                if (t[i].kind != Token::Kind::Ident ||
                    (t[i].text != "set" && t[i].text != "clear") ||
                    i < 2 || !isPunct(t[i - 1], ".") ||
                    i + 1 >= fn.second || !isPunct(t[i + 1], "(")) {
                    continue;
                }
                if (receiverMentionsP2m(i - 2, fn.first)) {
                    emit("tier-xray",
                         t[i],
                         "P2M " + t[i].text +
                             "() retargets a page's tier without "
                             "ringing xray (onTierChange/onGuestMove); "
                             "placement telemetry goes blind here");
                }
            }
        }
    }

    /** Walk the receiver chain left of a `.set(` / `.clear(` call a
     *  few tokens back looking for a p2m-ish identifier. */
    bool receiverMentionsP2m(std::size_t i, std::size_t floor) const
    {
        const TokVec &t = ts();
        std::size_t steps = 0;
        std::size_t j = i + 1;
        while (j-- > floor && steps++ < 8) {
            const Token &tok = t[j];
            if (tok.kind == Token::Kind::Ident) {
                std::string low;
                for (char c : tok.text)
                    low += static_cast<char>(std::tolower(
                        static_cast<unsigned char>(c)));
                if (startsWith(low, "p2m"))
                    return true;
                continue;
            }
            if (isPunct(tok, ".") || isPunct(tok, "(") ||
                isPunct(tok, ")") || isPunct(tok, "::") ||
                isPunct(tok, ">") || isPunct(tok, "-")) {
                continue; // still in the receiver chain (incl. ->)
            }
            break;
        }
        return false;
    }

    // ---- telemetry purity ----------------------------------------

    bool bannedMutator(const std::string &id) const
    {
        return std::find(kMutators.begin(), kMutators.end(), id) !=
               kMutators.end();
    }

    void telemetryPurity()
    {
        const TokVec &t = ts();
        // (a) preprocessor-guarded telemetry regions
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
            if (t[i].kind != Token::Kind::Ident ||
                !bannedMutator(t[i].text) || !isPunct(t[i + 1], "(")) {
                continue;
            }
            if (f_.guardMentions(t[i], "HOS_XRAY_LEVEL") ||
                f_.guardMentions(t[i], "HOS_PROF_LEVEL") ||
                f_.guardMentions(t[i], "HOS_CHECK_LEVEL")) {
                emit("telemetry-purity", t[i],
                     "mutating call '" + t[i].text +
                         "()' inside a telemetry-level guard: the "
                         "telemetry-off build would behave "
                         "differently");
            }
        }
        // (b) `if (... xray::active() ...) { ... }` observation blocks
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
            if (!isIdent(t[i], "if") || !isPunct(t[i + 1], "("))
                continue;
            const std::size_t close = matchForward(t, i + 1, "(", ")");
            if (close >= t.size())
                continue;
            bool is_xray_cond = false;
            for (std::size_t k = i + 2; k + 2 < close; ++k) {
                if (isIdent(t[k], "xray") && isPunct(t[k + 1], "::") &&
                    isIdent(t[k + 2], "active")) {
                    is_xray_cond = true;
                    break;
                }
            }
            if (!is_xray_cond || close + 1 >= t.size())
                continue;
            std::size_t body_end;
            std::size_t body_begin = close + 1;
            if (isPunct(t[body_begin], "{")) {
                body_end = matchForward(t, body_begin, "{", "}");
            } else {
                body_end = body_begin;
                while (body_end < t.size() &&
                       !isPunct(t[body_end], ";")) {
                    ++body_end;
                }
            }
            for (std::size_t k = body_begin;
                 k < std::min(body_end, t.size()); ++k) {
                if (t[k].kind == Token::Kind::Ident &&
                    bannedMutator(t[k].text) && k + 1 < t.size() &&
                    isPunct(t[k + 1], "(")) {
                    emit("telemetry-purity", t[k],
                         "mutating call '" + t[k].text +
                             "()' inside an xray::active() "
                             "observation block: telemetry must "
                             "observe decisions, never make them");
                }
            }
        }
    }

    void xrayInt()
    {
        const TokVec &t = ts();
        for (const Token &tok : t) {
            if (tok.kind == Token::Kind::Ident &&
                (tok.text == "float" || tok.text == "double")) {
                emit("xray-int", tok,
                     "src/xray is integer-only: floating point "
                     "introduces rounding that varies across "
                     "build flags; use fixed-point (basis points)");
            }
        }
    }

    /**
     * hos::metrics purity: the collector is integer-only (reports
     * must serialize bit-identically across build flags) and its
     * observation regions must never steer the simulation (the
     * metrics-off results.json byte-identity gate depends on it).
     */
    void metricsPurity()
    {
        const TokVec &t = ts();
        // (a) float/double anywhere under src/metrics.
        if (startsWith(f_.path, "src/metrics/")) {
            for (const Token &tok : t) {
                if (tok.kind == Token::Kind::Ident &&
                    (tok.text == "float" || tok.text == "double")) {
                    emit("metrics-purity", tok,
                         "src/metrics is integer-only: floating point "
                         "breaks bit-identical report serialization; "
                         "use ticks, counts, or ppm ratios");
                }
            }
        }
        // (b) mutating sim-state calls inside HOS_METRICS_LEVEL
        // preprocessor guards.
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
            if (t[i].kind != Token::Kind::Ident ||
                !bannedMutator(t[i].text) || !isPunct(t[i + 1], "(")) {
                continue;
            }
            if (f_.guardMentions(t[i], "HOS_METRICS_LEVEL")) {
                emit("metrics-purity", t[i],
                     "mutating call '" + t[i].text +
                         "()' inside a HOS_METRICS_LEVEL guard: the "
                         "metrics-off build would behave differently");
            }
        }
        // (c) `if (... metrics::active() ...) { ... }` observation
        // blocks — sampling must be read-only.
        for (std::size_t i = 0; i + 1 < t.size(); ++i) {
            if (!isIdent(t[i], "if") || !isPunct(t[i + 1], "("))
                continue;
            const std::size_t close = matchForward(t, i + 1, "(", ")");
            if (close >= t.size())
                continue;
            bool is_metrics_cond = false;
            for (std::size_t k = i + 2; k + 2 < close; ++k) {
                if (isIdent(t[k], "metrics") &&
                    isPunct(t[k + 1], "::") &&
                    isIdent(t[k + 2], "active")) {
                    is_metrics_cond = true;
                    break;
                }
            }
            if (!is_metrics_cond || close + 1 >= t.size())
                continue;
            std::size_t body_end;
            std::size_t body_begin = close + 1;
            if (isPunct(t[body_begin], "{")) {
                body_end = matchForward(t, body_begin, "{", "}");
            } else {
                body_end = body_begin;
                while (body_end < t.size() &&
                       !isPunct(t[body_end], ";")) {
                    ++body_end;
                }
            }
            for (std::size_t k = body_begin;
                 k < std::min(body_end, t.size()); ++k) {
                if (t[k].kind == Token::Kind::Ident &&
                    bannedMutator(t[k].text) && k + 1 < t.size() &&
                    isPunct(t[k + 1], "(")) {
                    emit("metrics-purity", t[k],
                         "mutating call '" + t[k].text +
                             "()' inside a metrics::active() "
                             "observation block: metrics observes "
                             "the run, it never steers it");
                }
            }
        }
    }

    // ---- hygiene -------------------------------------------------

    void looseHotnessKey()
    {
        const TokVec &t = ts();
        for (const Token &tok : t) {
            if (tok.kind != Token::Kind::Str)
                continue;
            for (const LooseKey &lk : kLooseKeys) {
                if (looseKeyInLiteral(tok.text, lk.key)) {
                    emit("loose-hotness-key", tok,
                         std::string("deprecated loose hotness key '") +
                             lk.key + "'; use the structured '" +
                             lk.structured + "' spelling");
                    break;
                }
            }
        }
    }

    static bool looseKeyInLiteral(const std::string &s,
                                  const std::string &key)
    {
        if (s == key)
            return true;
        // JSON spelling: `"key":` (the structured form nests under
        // "hotness", so a top-level quoted key is the loose shim).
        if (s.find("\"" + key + "\":") != std::string::npos)
            return true;
        // `key=value` spelling (CLI --set / sweep axes). A dot right
        // before the key is the structured `hotness.` prefix.
        std::size_t at = 0;
        const std::string needle = key + "=";
        while ((at = s.find(needle, at)) != std::string::npos) {
            // '.' = structured prefix, '-'/'_'/alnum = part of a
            // longer word (--stats-interval=, scan_interval=, ...).
            const char before = at == 0 ? '\0' : s[at - 1];
            if (before != '.' && before != '_' && before != '-' &&
                !(std::isalnum(static_cast<unsigned char>(before)))) {
                return true;
            }
            at += needle.size();
        }
        return false;
    }

    void retiredApi()
    {
        const TokVec &t = ts();
        for (const Token &tok : t) {
            if (tok.kind != Token::Kind::Ident)
                continue;
            for (const char *name : kRetiredApis) {
                if (tok.text == name) {
                    emit("retired-api", tok,
                         std::string("retired pre-Scenario API name '") +
                             name + "'; use core::Scenario / run()");
                    break;
                }
            }
        }
    }

    void soaFieldWrite()
    {
        const TokVec &t = ts();
        for (std::size_t i = 0; i < t.size(); ++i) {
            if (t[i].kind != Token::Kind::Ident)
                continue;
            // Direct indexing of a PageArray SoA column.
            for (const char *col : kSoaColumns) {
                if (t[i].text == col && i + 1 < t.size() &&
                    isPunct(t[i + 1], "[")) {
                    emit("soa-field-write", t[i],
                         std::string("direct access to SoA column '") +
                             col +
                             "'; page state goes through PageRef "
                             "accessors (or PageArray::setAllocated)");
                    break;
                }
            }
            // AoS-style member write through a retired Page field:
            // `x.field =`, `x->field =`, and compound assignments.
            if (i == 0 || i + 1 >= t.size())
                continue;
            const bool member =
                isPunct(t[i - 1], ".") ||
                (isPunct(t[i - 1], ">") && i >= 2 &&
                 isPunct(t[i - 2], "-"));
            if (!member)
                continue;
            bool writes = false;
            if (isPunct(t[i + 1], "=") &&
                !(i + 2 < t.size() && isPunct(t[i + 2], "="))) {
                writes = true; // plain `=` but not `==`
            } else if (i + 2 < t.size() && isPunct(t[i + 2], "=") &&
                       (isPunct(t[i + 1], "+") ||
                        isPunct(t[i + 1], "-") ||
                        isPunct(t[i + 1], "|") ||
                        isPunct(t[i + 1], "&") ||
                        isPunct(t[i + 1], "^"))) {
                writes = true; // compound assignment
            }
            if (!writes)
                continue;
            for (const char *field : kSoaFields) {
                if (t[i].text == field) {
                    emit("soa-field-write", t[i],
                         std::string("direct write to page field '") +
                             field +
                             "'; use the PageRef setter (set" +
                             "...) so the SoA layout stays owned "
                             "by guestos/page.hh");
                    break;
                }
            }
        }
    }

    const LexedFile &f_;
    const GlobalNames &names_;
    const Options &opts_;
    std::vector<std::pair<std::size_t, std::size_t>> fns_;
    std::set<std::string> local_vars_;
    std::set<std::string> local_fns_;
    mutable std::map<std::size_t, std::set<std::string>> shadow_cache_;
    std::vector<Finding> out_;
};

} // namespace

const std::vector<std::string> &
ruleIds()
{
    return kRuleIds;
}

bool
ruleAppliesTo(const std::string &rule, const std::string &path)
{
    const bool in_src = underDir(path, "src");
    const bool in_harness = underDir(path, "tests") ||
                            underDir(path, "bench") ||
                            underDir(path, "examples");
    if (rule == "xray-int")
        return startsWith(path, "src/xray/");
    if (rule == "metrics-purity")
        return in_src;
    if (rule == "loose-hotness-key")
        return in_harness;
    if (rule == "retired-api")
        return in_src || in_harness;
    if (rule == "soa-field-write")
        return (in_src || in_harness) &&
               path != "src/guestos/page.hh" &&
               path != "src/guestos/page.cc";
    if (rule == "wall-clock")
        return in_src && !startsWith(path, "src/prof/");
    return in_src;
}

GlobalNames
collectNames(const std::vector<LexedFile> &files)
{
    GlobalNames g;
    // Cross-file taint comes only from headers: that is where shared
    // sim-state members and accessors are declared. Locals inside a
    // .cc are collected per file during analysis, where parameter
    // shadowing can be applied.
    for (const LexedFile &f : files) {
        if (f.path.size() >= 3 &&
            f.path.compare(f.path.size() - 3, 3, ".hh") == 0) {
            collectFromFile(f, g, /*header_only=*/false);
        }
    }
    for (const LexedFile &f : files)
        collectAliasDecls(f, g);
    return g;
}

std::vector<Finding>
analyzeFile(const LexedFile &file, const GlobalNames &names,
            const Options &opts)
{
    return FileAnalysis(file, names, opts).run();
}

std::string
baselineKey(const Finding &f)
{
    return f.rule + "|" + f.file + "|" + f.excerpt;
}

std::set<std::string>
parseBaseline(const std::string &text)
{
    std::set<std::string> out;
    std::string line;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == '\n') {
            std::size_t b = line.find_first_not_of(" \t");
            if (b != std::string::npos && line[b] != '#') {
                std::size_t e = line.find_last_not_of(" \t\r");
                out.insert(line.substr(b, e - b + 1));
            }
            line.clear();
        } else {
            line += text[i];
        }
    }
    return out;
}

} // namespace hos::analyze
