/**
 * @file
 * hos-analyze — codebase-aware static analyzer for the HeteroOS
 * simulator. See rules.hh for the rule catalog and DESIGN.md
 * ("Static analysis") for rationale, suppression, and baseline
 * policy.
 *
 * Usage:
 *   hos-analyze [options] [paths...]
 *     --root=DIR             repo root (default: .)
 *     --json[=FILE]          emit the hos-analyze-1 JSON report
 *                            (stdout when FILE is omitted)
 *     --baseline=FILE        grandfathered findings to ignore
 *     --write-baseline=FILE  write current findings as a baseline
 *     --disable=RULE[,RULE]  switch rules off (fixture tests use this
 *                            to prove each rule is live)
 *     --list-rules           print rule ids and exit
 *     -q                     suppress the per-finding text report
 *
 * With no paths, scans src/, tests/, bench/, examples/ under --root
 * (tests/analyze_fixtures/ is skipped: those files are deliberately
 * bad). Exit status: 0 clean, 1 findings, 2 usage/IO error.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hh"

namespace fs = std::filesystem;
using namespace hos::analyze;

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
readFile(const fs::path &p, std::string &out)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh";
}

/** Repo-relative path with '/' separators. */
std::string
relPath(const fs::path &p, const fs::path &root)
{
    std::string s = fs::relative(p, root).generic_string();
    return s;
}

void
gather(const fs::path &dir, const fs::path &root,
       std::vector<fs::path> &out)
{
    if (!fs::exists(dir))
        return;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_directory()) {
            const std::string name = it->path().filename().string();
            if (name == "analyze_fixtures" || name[0] == '.' ||
                name.rfind("build", 0) == 0) {
                it.disable_recursion_pending();
            }
            continue;
        }
        if (it->is_regular_file() && isSourceFile(it->path()))
            out.push_back(it->path());
    }
    (void)root;
}

struct Args {
    fs::path root = ".";
    bool json = false;
    std::string json_file;   // empty = stdout
    std::string baseline;    // file to read
    std::string write_baseline;
    std::set<std::string> disabled;
    bool quiet = false;
    bool list_rules = false;
    std::vector<std::string> paths;
};

bool
parseArgs(int argc, char **argv, Args &a)
{
    auto eat = [](const std::string &arg, const char *prefix,
                  std::string &out) {
        const std::size_t n = std::string(prefix).size();
        if (arg.compare(0, n, prefix) == 0) {
            out = arg.substr(n);
            return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string v;
        if (eat(arg, "--root=", v)) {
            a.root = v;
        } else if (arg == "--json") {
            a.json = true;
        } else if (eat(arg, "--json=", v)) {
            a.json = true;
            a.json_file = v;
        } else if (eat(arg, "--baseline=", v)) {
            a.baseline = v;
        } else if (eat(arg, "--write-baseline=", v)) {
            a.write_baseline = v;
        } else if (eat(arg, "--disable=", v)) {
            std::size_t b = 0;
            while (b < v.size()) {
                std::size_t e = v.find(',', b);
                if (e == std::string::npos)
                    e = v.size();
                if (e > b)
                    a.disabled.insert(v.substr(b, e - b));
                b = e + 1;
            }
        } else if (arg == "--list-rules") {
            a.list_rules = true;
        } else if (arg == "-q") {
            a.quiet = true;
        } else if (arg.size() > 1 && arg[0] == '-') {
            std::fprintf(stderr, "hos-analyze: unknown option %s\n",
                         arg.c_str());
            return false;
        } else {
            a.paths.push_back(arg);
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parseArgs(argc, argv, args))
        return 2;
    if (args.list_rules) {
        for (const std::string &r : ruleIds())
            std::printf("%s\n", r.c_str());
        return 0;
    }

    Options opts;
    opts.disabled = args.disabled;
    for (const std::string &r : opts.disabled) {
        if (std::find(ruleIds().begin(), ruleIds().end(), r) ==
            ruleIds().end()) {
            std::fprintf(stderr, "hos-analyze: unknown rule '%s'\n",
                         r.c_str());
            return 2;
        }
    }

    std::vector<fs::path> files;
    if (args.paths.empty()) {
        for (const char *d : {"src", "tests", "bench", "examples"})
            gather(args.root / d, args.root, files);
    } else {
        for (const std::string &p : args.paths) {
            const fs::path fp = args.root / p;
            if (fs::is_directory(fp))
                gather(fp, args.root, files);
            else
                files.push_back(fp);
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<LexedFile> lexed;
    lexed.reserve(files.size());
    for (const fs::path &p : files) {
        std::string text;
        if (!readFile(p, text)) {
            std::fprintf(stderr, "hos-analyze: cannot read %s\n",
                         p.string().c_str());
            return 2;
        }
        lexed.push_back(lex(relPath(p, args.root), text));
    }

    const GlobalNames names = collectNames(lexed);
    std::vector<Finding> findings;
    for (const LexedFile &f : lexed) {
        auto fs_ = analyzeFile(f, names, opts);
        findings.insert(findings.end(), fs_.begin(), fs_.end());
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.col != b.col)
                      return a.col < b.col;
                  return a.rule < b.rule;
              });

    std::set<std::string> baseline;
    if (!args.baseline.empty()) {
        std::string text;
        if (!readFile(args.baseline, text)) {
            std::fprintf(stderr, "hos-analyze: cannot read baseline %s\n",
                         args.baseline.c_str());
            return 2;
        }
        baseline = parseBaseline(text);
    }

    std::vector<const Finding *> active;
    std::size_t grandfathered = 0;
    for (const Finding &f : findings) {
        if (baseline.count(baselineKey(f))) {
            ++grandfathered;
        } else {
            active.push_back(&f);
        }
    }

    if (!args.write_baseline.empty()) {
        std::ofstream out(args.write_baseline);
        if (!out) {
            std::fprintf(stderr, "hos-analyze: cannot write %s\n",
                         args.write_baseline.c_str());
            return 2;
        }
        out << "# hos-analyze baseline: grandfathered findings.\n"
            << "# One `rule|file|excerpt` key per line; remove lines\n"
            << "# as the findings they cover are fixed.\n";
        for (const Finding &f : findings)
            out << baselineKey(f) << "\n";
    }

    if (!args.quiet) {
        for (const Finding *f : active) {
            std::printf("%s:%d:%d: [%s] %s\n    %s\n", f->file.c_str(),
                        f->line, f->col, f->rule.c_str(),
                        f->message.c_str(), f->excerpt.c_str());
        }
        std::printf("hos-analyze: %zu file(s), %zu finding(s)",
                    lexed.size(), active.size());
        if (grandfathered > 0)
            std::printf(" (+%zu grandfathered)", grandfathered);
        std::printf("\n");
    }

    if (args.json) {
        std::map<std::string, std::size_t> counts;
        for (const Finding *f : active)
            ++counts[f->rule];
        std::ostringstream j;
        j << "{\n  \"schema\": \"hos-analyze-1\",\n";
        j << "  \"files_scanned\": " << lexed.size() << ",\n";
        j << "  \"grandfathered\": " << grandfathered << ",\n";
        j << "  \"counts\": {";
        bool first = true;
        for (const auto &kv : counts) {
            j << (first ? "" : ", ") << "\"" << jsonEscape(kv.first)
              << "\": " << kv.second;
            first = false;
        }
        j << "},\n  \"findings\": [";
        first = true;
        for (const Finding *f : active) {
            j << (first ? "\n" : ",\n");
            first = false;
            j << "    {\"rule\": \"" << jsonEscape(f->rule)
              << "\", \"file\": \"" << jsonEscape(f->file)
              << "\", \"line\": " << f->line << ", \"col\": " << f->col
              << ", \"message\": \"" << jsonEscape(f->message)
              << "\", \"excerpt\": \"" << jsonEscape(f->excerpt)
              << "\"}";
        }
        j << (active.empty() ? "" : "\n  ") << "]\n}\n";
        if (args.json_file.empty()) {
            std::fputs(j.str().c_str(), stdout);
        } else {
            std::ofstream out(args.json_file);
            if (!out) {
                std::fprintf(stderr, "hos-analyze: cannot write %s\n",
                             args.json_file.c_str());
                return 2;
            }
            out << j.str();
        }
    }

    return active.empty() ? 0 : 1;
}
