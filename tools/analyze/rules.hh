/**
 * @file
 * Rule catalog and analysis driver for hos-analyze.
 *
 * Fourteen codebase-specific rules over the token stream, grouped by
 * the invariant they defend (see DESIGN.md "Static analysis"):
 *
 * Determinism (bit-identical serial/parallel sweeps):
 *   unordered-iter   iteration over std::unordered_* sim state
 *   ptr-key-ordered  std::map/std::set keyed on a raw pointer
 *   ptr-hash         std::hash over a raw pointer type
 *   raw-assert       assert() instead of hos_assert
 *   naked-new        `= new` / `return new` instead of make_unique
 *   wall-clock       host time in sim code (std::chrono & friends)
 *
 * Instrumentation completeness (prof/xray coverage at every site):
 *   charge-span      kernel charge() outside any HOS_PROF_SPAN scope
 *   tier-xray        P2M retarget without ringing the xray recorder
 *
 * Telemetry purity ("off" builds stay byte-identical):
 *   telemetry-purity mutating API call inside a telemetry-only region
 *   xray-int         float/double tokens inside src/xray
 *   metrics-purity   float/double inside src/metrics, or mutating API
 *                    calls under HOS_METRICS_LEVEL guards /
 *                    metrics::active() observation blocks
 *
 * Hygiene (API lifecycle):
 *   loose-hotness-key deprecated loose hotness keys in scenario
 *                     literals (tests/bench/examples)
 *   retired-api      retired pre-Scenario API names anywhere
 *   soa-field-write  page-metadata writes bypassing the PageRef
 *                    facade (direct SoA column access or AoS-style
 *                    field assignment)
 *
 * Rules are path-scoped (ruleAppliesTo), individually disableable
 * (Options::disabled — how fixture tests prove each rule is live),
 * suppressible per line (`// hos-analyze: <rule> (why)`), and
 * grandfatherable via a baseline file of `rule|file|excerpt` keys.
 */

#ifndef HOS_TOOLS_ANALYZE_RULES_HH
#define HOS_TOOLS_ANALYZE_RULES_HH

#include <set>
#include <string>
#include <vector>

#include "lexer.hh"

namespace hos::analyze {

struct Finding {
    std::string rule;
    std::string file;
    int line = 0;
    int col = 0;
    std::string message;
    std::string excerpt; ///< the source line, trimmed
};

struct Options {
    std::set<std::string> disabled; ///< rule ids switched off
};

/** All rule ids, in catalog order. */
const std::vector<std::string> &ruleIds();

/** Whether `rule` runs on the file at repo-relative `path`. */
bool ruleAppliesTo(const std::string &rule, const std::string &path);

/**
 * Names collected across the whole tree before per-file analysis:
 * identifiers whose declared type is an unordered container (members,
 * locals, aliases) and functions declared to return one. Collected
 * globally because members declared in a header are iterated from
 * sibling .cc files.
 */
struct GlobalNames {
    std::set<std::string> unordered_vars;
    std::set<std::string> unordered_fns;
    std::set<std::string> unordered_types; ///< using-aliases
};

GlobalNames collectNames(const std::vector<LexedFile> &files);

/** Run every applicable rule over one file. Suppression comments are
 *  honored here; baseline matching is the caller's layer. */
std::vector<Finding> analyzeFile(const LexedFile &file,
                                 const GlobalNames &names,
                                 const Options &opts);

/** Stable grandfathering key: "rule|file|squeezed excerpt" — line
 *  numbers are deliberately absent so baselines survive edits above
 *  the finding. */
std::string baselineKey(const Finding &f);

/** Parse a baseline file body (one key per line, '#' comments). */
std::set<std::string> parseBaseline(const std::string &text);

} // namespace hos::analyze

#endif // HOS_TOOLS_ANALYZE_RULES_HH
