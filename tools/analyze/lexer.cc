#include "lexer.hh"

#include <cctype>

namespace hos::analyze {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** One rule id: lower-case letters, digits, dashes. */
bool
isRuleId(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!(std::islower(static_cast<unsigned char>(c)) ||
              std::isdigit(static_cast<unsigned char>(c)) || c == '-')) {
            return false;
        }
    }
    return true;
}

std::string
trim(const std::string &s)
{
    std::size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos)
        return "";
    std::size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

/**
 * Incremental lexer state. Walks the raw text once; lines, tokens,
 * suppressions, and the preprocessor stack are built in the same
 * pass so every token is stamped with line/column/guard.
 */
class Lexer
{
  public:
    Lexer(std::string path, const std::string &text)
        : text_(text)
    {
        out_.path = std::move(path);
        out_.guards.push_back({}); // guard 0: empty stack
        splitLines();
    }

    LexedFile run()
    {
        while (pos_ < text_.size())
            step();
        return std::move(out_);
    }

  private:
    void splitLines()
    {
        std::string cur;
        for (char c : text_) {
            if (c == '\n') {
                out_.lines.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!cur.empty())
            out_.lines.push_back(cur);
    }

    char peek(std::size_t ahead = 0) const
    {
        return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
    }

    char take()
    {
        char c = text_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    std::uint32_t guardId()
    {
        if (stack_dirty_) {
            // Intern the current stack (linear scan; stacks are tiny
            // and distinct stacks per file are few).
            for (std::size_t i = 0; i < out_.guards.size(); ++i) {
                if (out_.guards[i] == cond_stack_) {
                    guard_id_ = static_cast<std::uint32_t>(i);
                    stack_dirty_ = false;
                    return guard_id_;
                }
            }
            out_.guards.push_back(cond_stack_);
            guard_id_ =
                static_cast<std::uint32_t>(out_.guards.size() - 1);
            stack_dirty_ = false;
        }
        return guard_id_;
    }

    void emit(Token::Kind k, std::string text, int line, int col)
    {
        Token t;
        t.kind = k;
        t.text = std::move(text);
        t.line = line;
        t.col = col;
        t.guard = guardId();
        out_.tokens.push_back(std::move(t));
    }

    /** Record `hos-analyze:` markers found in comment text. Rule ids
     *  are read until the first word that is not a bare id, so a
     *  trailing `(rationale ...)` never parses as a rule name. */
    void recordSuppressions(const std::string &comment, int line)
    {
        const std::string marker = "hos-analyze:";
        std::size_t at = comment.find(marker);
        if (at == std::string::npos)
            return;
        std::size_t p = at + marker.size();
        std::set<std::string> &ids = out_.suppressions[line];
        while (p < comment.size()) {
            while (p < comment.size() &&
                   (comment[p] == ' ' || comment[p] == ',' ||
                    comment[p] == '\t')) {
                ++p;
            }
            std::size_t e = p;
            while (e < comment.size() && comment[e] != ' ' &&
                   comment[e] != ',' && comment[e] != '\t') {
                ++e;
            }
            if (e == p)
                break;
            std::string id = comment.substr(p, e - p);
            if (!isRuleId(id))
                break; // rationale text starts here
            if (id == "ordered-insensitive")
                id = "unordered-iter";
            ids.insert(id);
            p = e;
        }
        if (ids.empty())
            out_.suppressions.erase(line);
    }

    void lineComment()
    {
        const int start = line_;
        std::string body;
        take(); // '/'
        take(); // '/'
        while (pos_ < text_.size() && peek() != '\n')
            body += take();
        recordSuppressions(body, start);
    }

    void blockComment()
    {
        const int start = line_;
        std::string body;
        take(); // '/'
        take(); // '*'
        while (pos_ < text_.size()) {
            if (peek() == '*' && peek(1) == '/') {
                take();
                take();
                break;
            }
            body += take();
        }
        recordSuppressions(body, start);
    }

    void stringLit()
    {
        const int line = line_, col = col_;
        std::string body;
        take(); // opening quote
        while (pos_ < text_.size()) {
            char c = peek();
            if (c == '\\') {
                body += take();
                if (pos_ < text_.size())
                    body += take();
                continue;
            }
            if (c == '"') {
                take();
                break;
            }
            body += take();
        }
        emit(Token::Kind::Str, body, line, col);
    }

    void rawStringLit()
    {
        const int line = line_, col = col_;
        take(); // 'R'
        take(); // '"'
        std::string delim;
        while (pos_ < text_.size() && peek() != '(')
            delim += take();
        if (pos_ < text_.size())
            take(); // '('
        const std::string close = ")" + delim + "\"";
        std::string body;
        while (pos_ < text_.size()) {
            if (text_.compare(pos_, close.size(), close) == 0) {
                for (std::size_t i = 0; i < close.size(); ++i)
                    take();
                break;
            }
            body += take();
        }
        emit(Token::Kind::Str, body, line, col);
    }

    void charLit()
    {
        const int line = line_, col = col_;
        std::string body;
        take(); // opening quote
        while (pos_ < text_.size()) {
            char c = peek();
            if (c == '\\') {
                body += take();
                if (pos_ < text_.size())
                    body += take();
                continue;
            }
            if (c == '\'') {
                take();
                break;
            }
            body += take();
        }
        emit(Token::Kind::CharLit, body, line, col);
    }

    /** Consume one logical preprocessor line (with continuations) and
     *  update the conditional stack. Directive tokens are not emitted:
     *  rules reason about compiled code, not macro bodies. */
    void directive()
    {
        std::string body;
        while (pos_ < text_.size()) {
            char c = peek();
            if (c == '\\' && peek(1) == '\n') {
                take();
                take();
                body += ' ';
                continue;
            }
            if (c == '\n')
                break;
            // Strip comments inside the directive.
            if (c == '/' && peek(1) == '/') {
                lineComment();
                break;
            }
            if (c == '/' && peek(1) == '*') {
                blockComment();
                body += ' ';
                continue;
            }
            body += take();
        }
        body = trim(body);
        if (body.empty() || body[0] != '#')
            return;
        std::string rest = trim(body.substr(1));
        auto word = [&](const std::string &w) {
            return rest.compare(0, w.size(), w) == 0 &&
                   (rest.size() == w.size() ||
                    !identChar(rest[w.size()]));
        };
        auto arg = [&](std::size_t skip) {
            return trim(rest.substr(skip));
        };
        if (word("ifdef")) {
            push("defined(" + arg(5) + ")");
        } else if (word("ifndef")) {
            push("!defined(" + arg(6) + ")");
        } else if (word("if")) {
            push(arg(2));
        } else if (word("elif")) {
            replaceTop(arg(4));
        } else if (word("else")) {
            if (!cond_stack_.empty())
                replaceTop("!(" + cond_stack_.back() + ")");
        } else if (word("endif")) {
            if (!cond_stack_.empty()) {
                cond_stack_.pop_back();
                stack_dirty_ = true;
            }
        }
    }

    void push(std::string cond)
    {
        cond_stack_.push_back(std::move(cond));
        stack_dirty_ = true;
    }

    void replaceTop(std::string cond)
    {
        if (cond_stack_.empty())
            cond_stack_.push_back(std::move(cond));
        else
            cond_stack_.back() = std::move(cond);
        stack_dirty_ = true;
    }

    void step()
    {
        char c = peek();
        if (c == '/' && peek(1) == '/') {
            lineComment();
            return;
        }
        if (c == '/' && peek(1) == '*') {
            blockComment();
            return;
        }
        if (c == '#' && at_line_start_token_) {
            directive();
            return;
        }
        if (c == '"') {
            stringLit();
            at_line_start_token_ = false;
            return;
        }
        if (c == 'R' && peek(1) == '"') {
            rawStringLit();
            at_line_start_token_ = false;
            return;
        }
        if (c == '\'') {
            charLit();
            at_line_start_token_ = false;
            return;
        }
        if (c == '\n') {
            take();
            at_line_start_token_ = true;
            return;
        }
        if (c == ' ' || c == '\t' || c == '\r') {
            take();
            return;
        }
        at_line_start_token_ = false;
        if (identStart(c)) {
            const int line = line_, col = col_;
            std::string id;
            while (pos_ < text_.size() && identChar(peek()))
                id += take();
            emit(Token::Kind::Ident, std::move(id), line, col);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' &&
             std::isdigit(static_cast<unsigned char>(peek(1))))) {
            const int line = line_, col = col_;
            std::string num;
            while (pos_ < text_.size() &&
                   (identChar(peek()) || peek() == '.' ||
                    ((peek() == '+' || peek() == '-') && !num.empty() &&
                     (num.back() == 'e' || num.back() == 'E' ||
                      num.back() == 'p' || num.back() == 'P')))) {
                num += take();
            }
            emit(Token::Kind::Number, std::move(num), line, col);
            return;
        }
        // Punctuation. `::` is kept whole (rules match qualified
        // names constantly); everything else is a single character.
        const int line = line_, col = col_;
        if (c == ':' && peek(1) == ':') {
            take();
            take();
            emit(Token::Kind::Punct, "::", line, col);
            return;
        }
        emit(Token::Kind::Punct, std::string(1, take()), line, col);
    }

    const std::string &text_;
    LexedFile out_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
    bool at_line_start_token_ = true;
    std::vector<std::string> cond_stack_;
    bool stack_dirty_ = true;
    std::uint32_t guard_id_ = 0;
};

} // namespace

bool
LexedFile::guardMentions(const Token &t, const std::string &macro) const
{
    if (t.guard >= guards.size())
        return false;
    for (const std::string &cond : guards[t.guard]) {
        if (cond.empty() || cond[0] == '!')
            continue; // negated branch: the telemetry-OFF side
        if (cond.find(macro) != std::string::npos)
            return true;
    }
    return false;
}

LexedFile
lex(std::string path, const std::string &text)
{
    return Lexer(std::move(path), text).run();
}

} // namespace hos::analyze
