/**
 * @file
 * C++ tokenizer for hos-analyze.
 *
 * A real lexer, not a grep: comments, string/char literals (including
 * raw strings), and preprocessor directives are recognized, so rules
 * never fire on text inside a comment or a string, and never miss a
 * construct because of line-wrapping. Three side channels ride along
 * with the token stream:
 *
 *  - suppressions: `// hos-analyze: <rule>[, <rule>...] (rationale)`
 *    comments, recorded per line. A finding is suppressed when its
 *    line or the line above carries a matching rule id (or `all`).
 *    `ordered-insensitive` is an alias for `unordered-iter`, matching
 *    the annotation language used in sim-state code.
 *  - preprocessor conditionals: every token knows the stack of
 *    `#if`/`#ifdef` conditions that guard it, so rules can reason
 *    about telemetry-gated regions (HOS_PROF_LEVEL and friends).
 *  - source lines: kept verbatim for excerpts in findings.
 *
 * Deliberately dependency-free (standard library only) so the gate
 * can be bootstrapped by compiling the three .cc files with a bare
 * `c++ -std=c++20` — no configure step needed.
 */

#ifndef HOS_TOOLS_ANALYZE_LEXER_HH
#define HOS_TOOLS_ANALYZE_LEXER_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace hos::analyze {

struct Token {
    enum class Kind : std::uint8_t {
        Ident,   ///< identifiers and keywords
        Number,  ///< numeric literals
        Str,     ///< string literal; text holds the *contents*
        CharLit, ///< character literal
        Punct,   ///< punctuation; `::` is one token, others one char
    };

    Kind kind;
    std::string text;
    int line = 0; ///< 1-based
    int col = 0;  ///< 1-based
    /** Index into LexedFile::guards for the active #if stack. */
    std::uint32_t guard = 0;
};

struct LexedFile {
    /** Path relative to the repo root ("src/vmm/vmm.cc"). */
    std::string path;
    std::vector<std::string> lines;
    std::vector<Token> tokens;
    /** line -> rule ids suppressed on that line. */
    std::map<int, std::set<std::string>> suppressions;
    /**
     * Interned #if-condition stacks; guards[0] is the empty stack.
     * Conditions are normalized text: `#ifdef X` -> "defined(X)",
     * `#ifndef X` -> "!defined(X)", `#else` of C -> "!(C)".
     */
    std::vector<std::vector<std::string>> guards;

    /** True when any condition guarding `t` mentions `macro` without
     *  leading negation (i.e. the telemetry-ON branch). */
    bool guardMentions(const Token &t, const std::string &macro) const;
};

/** Tokenize one translation unit. `path` is the repo-relative name
 *  used in findings and for path-scoped rules. */
LexedFile lex(std::string path, const std::string &text);

} // namespace hos::analyze

#endif // HOS_TOOLS_ANALYZE_LEXER_HH
