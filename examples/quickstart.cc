/**
 * @file
 * Quickstart: boot a heterogeneous host, run one application under
 * HeteroOS, and compare it with the naive SlowMem-only placement.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/table.hh"

using namespace hos;

int
main()
{
    // A host with 1 GiB of FastMem (DRAM-class) and 4 GiB of SlowMem
    // (the paper's L:5,B:9 throttled tier), and the runs we want to
    // compare. scale=0.25 keeps the demo quick.
    const auto scenario = core::Scenario{}
                              .withApp(workload::AppId::GraphChi)
                              .withCapacity(1 * mem::gib, 4 * mem::gib)
                              .withScale(0.25);

    sim::Table table("Quickstart: GraphChi PageRank, 1GiB FastMem");
    table.header({"approach", "runtime(s)", "gain vs SlowMem-only"});

    const auto slow = core::run(
        core::Scenario(scenario).withApproach(
            core::Approach::SlowMemOnly));
    table.row({"SlowMem-only", sim::Table::num(slow.seconds()), "-"});

    const auto hos_run = core::run(
        core::Scenario(scenario).withApproach(core::Approach::HeteroLru));
    table.row({"HeteroOS-LRU", sim::Table::num(hos_run.seconds()),
               sim::Table::pct(core::gainPercent(slow, hos_run))});

    const auto coord = core::run(
        core::Scenario(scenario).withApproach(
            core::Approach::Coordinated));
    table.row({"HeteroOS-coordinated", sim::Table::num(coord.seconds()),
               sim::Table::pct(core::gainPercent(slow, coord))});

    table.print();
    std::puts("HeteroOS places hot pages in FastMem proactively; the\n"
              "coordinated mode adds OS-guided hotness tracking on top.");
    return 0;
}
