/**
 * @file
 * Scenario: two tenants sharing one heterogeneous-memory host.
 *
 * An out-of-core graph job (GraphChi, Twitter preset: large heap,
 * drifting 1.5 GB working set, SlowMem-dominant) shares the box with
 * a memory-hungry analytics job (Metis, FastMem-dominant). The
 * example contrasts single-resource max-min fairness with the
 * paper's weighted DRF: under max-min the analytics job can balloon
 * away the graph job's SlowMem while staying "fair" on FastMem; DRF
 * treats SlowMem as the graph job's dominant resource and protects
 * its guarantee (the paper's Figure 13 scenario, as an operator
 * would configure it).
 *
 * Run: ./build/examples/multi_tenant_drf [--metrics]
 *        [--backend=pte_scan|region]
 *        [--results=FILE]
 *
 * --metrics enables the hos::metrics collector on both runs;
 * --results writes the DRF run's telemetry as a results JSON whose
 * top-level "metrics" object hos-timeline consumes directly.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/experiment.hh"
#include "core/report.hh"
#include "metrics/metrics.hh"
#include "metrics/report.hh"
#include "sim/table.hh"
#include "vmm/drf.hh"
#include "vmm/max_min.hh"

using namespace hos;

namespace {

struct TenantResult
{
    workload::Workload::Result graph;
    workload::Workload::Result metis;
    std::uint64_t graph_slow_mb; ///< final SlowMem holding
    metrics::MetricsReport metrics; ///< empty unless --metrics
};

TenantResult
runShared(bool use_drf, double scale, bool with_metrics,
          const std::string &backend)
{
    core::HostConfig host;
    host.fast = mem::dramSpec(static_cast<std::uint64_t>(
        scale * 4.0 * static_cast<double>(mem::gib)));
    host.slow = mem::defaultSlowMemSpec(static_cast<std::uint64_t>(
        scale * 8.0 * static_cast<double>(mem::gib)));
    core::HeteroSystem sys(host);
    if (use_drf)
        sys.vmm().setFairness(std::make_unique<vmm::DrfFairness>());
    else
        sys.vmm().setFairness(std::make_unique<vmm::MaxMinFairness>());

    // The store is provisioned tightly (its working set just fits its
    // SlowMem share); the analytics tenant is under-provisioned and
    // will balloon for more — the fairness policy decides at whose
    // expense.
    core::GuestSizing graph_sizing;
    graph_sizing.name = "graph-vm";
    graph_sizing.fast_max = host.fast.capacity_bytes;
    graph_sizing.fast_initial = host.fast.capacity_bytes / 4;
    graph_sizing.slow_max = host.slow.capacity_bytes;
    graph_sizing.slow_initial = host.slow.capacity_bytes / 2;

    core::GuestSizing metis_sizing = graph_sizing;
    metis_sizing.name = "metis-vm";
    metis_sizing.fast_initial = host.fast.capacity_bytes * 3 / 4;
    metis_sizing.slow_initial = host.slow.capacity_bytes / 2;
    metis_sizing.seed = 11;

    if (with_metrics)
        sys.enableMetrics();

    // Route policy construction through the scenario overlay so the
    // hotness backend is swappable (per-VM slowdown comparison in
    // EXPERIMENTS.md).
    core::Scenario policy_spec =
        core::Scenario{}
            .withApproach(core::Approach::Coordinated)
            .withHotnessBackend(backend);
    auto &graph_vm =
        sys.addVm(core::makePolicy(policy_spec), graph_sizing);
    auto &metis_vm =
        sys.addVm(core::makePolicy(policy_spec), metis_sizing);

    auto results = sys.runMany(
        {{&graph_vm, workload::makeGraphchiTwitter(scale)},
         {&metis_vm, workload::makeMetisLarge(scale)}});
    const auto slow_mb =
        sys.vmm().vm(graph_vm.id).framesOf(mem::MemType::SlowMem) *
        mem::pageSize / mem::mib;
    TenantResult tenant{results[0], results[1], slow_mb, {}};
    if (with_metrics)
        tenant.metrics = sys.metricsCollector().report();
    return tenant;
}

} // namespace

int
main(int argc, char **argv)
{
    const double scale = 0.25;
    bool with_metrics = false;
    std::string results_file;
    std::string backend = "pte_scan";

    for (int arg = 1; arg < argc; ++arg) {
        const std::string a = argv[arg];
        if (a == "--metrics") {
            with_metrics = true;
        } else if (a.rfind("--results=", 0) == 0) {
            results_file = a.substr(10);
            with_metrics = true;
        } else if (a.rfind("--backend=", 0) == 0) {
            backend = a.substr(10);
        } else {
            std::fprintf(stderr,
                         "unknown option '%s'\nusage: multi_tenant_drf "
                         "[--metrics] [--results=FILE] "
                         "[--backend=pte_scan|region]\n",
                         argv[arg]);
            return 2;
        }
    }
    if (with_metrics && !metrics::metricsCompiled) {
        std::fprintf(stderr,
                     "--metrics requested but this build has "
                     "HOS_METRICS=off\n");
        with_metrics = false;
    }

    const auto maxmin = runShared(false, scale, with_metrics, backend);
    const auto drf = runShared(true, scale, with_metrics, backend);

    sim::Table table("Two tenants, 4:8 FastMem:SlowMem host");
    table.header({"fairness", "GraphChi (runtime s)",
                  "GraphChi SlowMem (MB)", "Metis (runtime s)"});
    table.row({"single-resource max-min",
               sim::Table::num(maxmin.graph.seconds()),
               sim::Table::num(maxmin.graph_slow_mb),
               sim::Table::num(maxmin.metis.seconds())});
    table.row({"weighted DRF", sim::Table::num(drf.graph.seconds()),
               sim::Table::num(drf.graph_slow_mb),
               sim::Table::num(drf.metis.seconds())});
    table.print();

    std::printf("GraphChi runtime under DRF vs max-min: %+.1f%%\n",
                (maxmin.graph.seconds() / drf.graph.seconds() - 1.0) *
                    100.0);
    std::puts("DRF treats each memory type as its own resource: the\n"
              "analytics tenant cannot drain the graph job's dominant\n"
              "SlowMem while staying nominally 'fair' on FastMem.");

    if (!results_file.empty() && !drf.metrics.empty()) {
        std::ofstream os(results_file);
        if (!os) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         results_file.c_str());
            return 2;
        }
        sim::JsonWriter w(os);
        w.beginObject();
        w.kv("example", "multi_tenant_drf");
        w.kv("fairness", "drf");
        w.key("metrics");
        metrics::writeMetricsReport(w, drf.metrics);
        w.endObject();
        os << '\n';
        std::printf("results: %s\n", results_file.c_str());
    }
    return 0;
}
