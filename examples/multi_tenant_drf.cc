/**
 * @file
 * Scenario: two tenants sharing one heterogeneous-memory host.
 *
 * An out-of-core graph job (GraphChi, Twitter preset: large heap,
 * drifting 1.5 GB working set, SlowMem-dominant) shares the box with
 * a memory-hungry analytics job (Metis, FastMem-dominant). The
 * example contrasts single-resource max-min fairness with the
 * paper's weighted DRF: under max-min the analytics job can balloon
 * away the graph job's SlowMem while staying "fair" on FastMem; DRF
 * treats SlowMem as the graph job's dominant resource and protects
 * its guarantee (the paper's Figure 13 scenario, as an operator
 * would configure it).
 *
 * Run: ./build/examples/multi_tenant_drf
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/table.hh"
#include "vmm/drf.hh"
#include "vmm/max_min.hh"

using namespace hos;

namespace {

struct TenantResult
{
    workload::Workload::Result graph;
    workload::Workload::Result metis;
    std::uint64_t graph_slow_mb; ///< final SlowMem holding
};

TenantResult
runShared(bool use_drf, double scale)
{
    core::HostConfig host;
    host.fast = mem::dramSpec(static_cast<std::uint64_t>(
        scale * 4.0 * static_cast<double>(mem::gib)));
    host.slow = mem::defaultSlowMemSpec(static_cast<std::uint64_t>(
        scale * 8.0 * static_cast<double>(mem::gib)));
    core::HeteroSystem sys(host);
    if (use_drf)
        sys.vmm().setFairness(std::make_unique<vmm::DrfFairness>());
    else
        sys.vmm().setFairness(std::make_unique<vmm::MaxMinFairness>());

    // The store is provisioned tightly (its working set just fits its
    // SlowMem share); the analytics tenant is under-provisioned and
    // will balloon for more — the fairness policy decides at whose
    // expense.
    core::GuestSizing graph_sizing;
    graph_sizing.name = "graph-vm";
    graph_sizing.fast_max = host.fast.capacity_bytes;
    graph_sizing.fast_initial = host.fast.capacity_bytes / 4;
    graph_sizing.slow_max = host.slow.capacity_bytes;
    graph_sizing.slow_initial = host.slow.capacity_bytes / 2;

    core::GuestSizing metis_sizing = graph_sizing;
    metis_sizing.name = "metis-vm";
    metis_sizing.fast_initial = host.fast.capacity_bytes * 3 / 4;
    metis_sizing.slow_initial = host.slow.capacity_bytes / 2;
    metis_sizing.seed = 11;

    auto &graph_vm = sys.addVm(
        core::makePolicy(core::Approach::Coordinated), graph_sizing);
    auto &metis_vm = sys.addVm(
        core::makePolicy(core::Approach::Coordinated), metis_sizing);

    auto results = sys.runMany(
        {{&graph_vm, workload::makeGraphchiTwitter(scale)},
         {&metis_vm, workload::makeMetisLarge(scale)}});
    const auto slow_mb =
        sys.vmm().vm(graph_vm.id).framesOf(mem::MemType::SlowMem) *
        mem::pageSize / mem::mib;
    return {results[0], results[1], slow_mb};
}

} // namespace

int
main()
{
    const double scale = 0.25;

    const auto maxmin = runShared(false, scale);
    const auto drf = runShared(true, scale);

    sim::Table table("Two tenants, 4:8 FastMem:SlowMem host");
    table.header({"fairness", "GraphChi (runtime s)",
                  "GraphChi SlowMem (MB)", "Metis (runtime s)"});
    table.row({"single-resource max-min",
               sim::Table::num(maxmin.graph.seconds()),
               sim::Table::num(maxmin.graph_slow_mb),
               sim::Table::num(maxmin.metis.seconds())});
    table.row({"weighted DRF", sim::Table::num(drf.graph.seconds()),
               sim::Table::num(drf.graph_slow_mb),
               sim::Table::num(drf.metis.seconds())});
    table.print();

    std::printf("GraphChi runtime under DRF vs max-min: %+.1f%%\n",
                (maxmin.graph.seconds() / drf.graph.seconds() - 1.0) *
                    100.0);
    std::puts("DRF treats each memory type as its own resource: the\n"
              "analytics tenant cannot drain the graph job's dominant\n"
              "SlowMem while staying nominally 'fair' on FastMem.");
    return 0;
}
