/**
 * @file
 * hos-profdiff: compare the span-profiler ledgers of two runs and
 * gate on regressions.
 *
 * Usage:
 *   hos-profdiff [options] BEFORE.json AFTER.json
 *
 *   BEFORE/AFTER  results JSON from `run_experiment --prof --results=`
 *                 (top-level "profile" object) or a sweep aggregate
 *                 ("runs"[]."record"."profile" — summed across runs)
 *
 * Options:
 *   --threshold=PCT  fail (exit 1) when any per-kind sim-time total
 *                    grew by more than PCT percent (default 5)
 *   --exact          fail on ANY sim-time difference — the CI
 *                    determinism gate (same scenario run twice must
 *                    produce bit-identical ledgers)
 *   --json=FILE      also write the diff as hos-profdiff-1 JSON
 *
 * Exit codes: 0 within threshold, 1 regression (or any difference
 * under --exact), 2 usage or load error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "prof/diff.hh"
#include "prof/report.hh"
#include "sim/json.hh"

using namespace hos;

namespace {

void
usage()
{
    std::puts(
        "usage: hos-profdiff [options] BEFORE.json AFTER.json\n"
        "options:\n"
        "  --threshold=PCT  max allowed per-kind growth in percent "
        "(default 5)\n"
        "  --exact          fail on any sim-time difference\n"
        "  --json=FILE      write the diff as JSON");
}

/**
 * Pull the profile ledger out of a results file: either a single
 * record's top-level "profile", or the sum over a sweep aggregate's
 * "runs"[]."record"."profile".
 */
bool
loadProfile(const std::string &path, prof::ProfileReport &out,
            std::string &error)
{
    const auto doc = sim::jsonParseFile(path, &error);
    if (!doc)
        return false;
    if (!doc->isObject()) {
        error = "top level is not an object";
        return false;
    }

    if (const auto *profile = doc->find("profile")) {
        out = prof::profileReportFromJson(*profile, &error);
        return error.empty();
    }

    if (const auto *runs = doc->find("runs")) {
        if (!runs->isArray()) {
            error = "\"runs\" is not an array";
            return false;
        }
        bool found = false;
        for (const auto &run : runs->array) {
            const auto *record = run.find("record");
            const auto *profile =
                record != nullptr ? record->find("profile") : nullptr;
            if (profile == nullptr)
                continue;
            auto one = prof::profileReportFromJson(*profile, &error);
            if (!error.empty())
                return false;
            prof::mergeInto(out, one);
            found = true;
        }
        if (!found) {
            error = "no run in \"runs\" carries a profile "
                    "(was the sweep run with profiling on?)";
            return false;
        }
        return true;
    }

    error = "no \"profile\" object and no \"runs\" array "
            "(produce input with run_experiment --prof --results=...)";
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    double threshold_pct = 5.0;
    bool exact = false;
    std::string json_file;

    int arg = 1;
    for (; arg < argc && std::strncmp(argv[arg], "--", 2) == 0; ++arg) {
        const std::string a = argv[arg];
        if (a.rfind("--threshold=", 0) == 0) {
            threshold_pct = std::atof(a.c_str() + 12);
            if (threshold_pct < 0.0) {
                std::fprintf(stderr, "bad threshold '%s'\n",
                             argv[arg]);
                return 2;
            }
        } else if (a == "--exact") {
            exact = true;
        } else if (a.rfind("--json=", 0) == 0) {
            json_file = a.substr(7);
        } else {
            usage();
            return 2;
        }
    }
    if (argc - arg != 2) {
        usage();
        return 2;
    }

    prof::ProfileReport before, after;
    std::string error;
    if (!loadProfile(argv[arg], before, error)) {
        std::fprintf(stderr, "%s: %s\n", argv[arg], error.c_str());
        return 2;
    }
    if (!loadProfile(argv[arg + 1], after, error)) {
        std::fprintf(stderr, "%s: %s\n", argv[arg + 1], error.c_str());
        return 2;
    }

    const auto diff = prof::diffProfiles(before, after);
    prof::printDiff(diff, std::cout);

    if (!json_file.empty()) {
        std::ofstream os(json_file);
        if (!os) {
            std::fprintf(stderr, "cannot open '%s'\n",
                         json_file.c_str());
            return 2;
        }
        prof::writeDiffJson(diff, threshold_pct, os);
    }

    if (exact) {
        if (!diff.identical()) {
            std::printf("FAIL: ledgers differ (--exact)\n");
            return 1;
        }
        std::printf("OK: ledgers identical\n");
        return 0;
    }
    if (prof::hasRegression(diff, threshold_pct)) {
        std::printf("FAIL: per-kind growth exceeds %.1f%%\n",
                    threshold_pct);
        return 1;
    }
    std::printf("OK: within %.1f%% threshold\n", threshold_pct);
    return 0;
}
