/**
 * @file
 * Declarative sweep runner: expand a scenario × axes product and run
 * it across a thread pool, writing one aggregate results.json.
 *
 * Usage:
 *   run_sweep [options]
 *   run_sweep --list
 *
 *   --scenario=FILE    base scenario JSON (see DESIGN.md schema)
 *   --sweep=FILE       sweep JSON: {"base": {...}, "axes": {...}}
 *   --set=KEY=VALUE    override one base-scenario field (repeatable)
 *   --axis=KEY=V1,V2   add one sweep axis (repeatable)
 *   --jobs=N           worker threads (default 1; 0 = all cores)
 *   --results=FILE     aggregate results JSON (default results.json)
 *   --log-level=N      0 quiet, 1 inform, 2 debug
 *
 * Examples:
 *   # Figure-9-style matrix, 8 points, all cores:
 *   run_sweep --set=scale=0.1 --axis=approach=od,lru,vmm,coord \
 *             --axis=slow_lat_factor=2,5 --jobs=0
 *
 * Results are bit-identical for any --jobs value: every point is an
 * isolated simulation with a spec-derived seed, so parallelism only
 * changes the wall-clock, never a byte of results.json.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/sweep.hh"
#include "sim/log.hh"

using namespace hos;

namespace {

void
usage()
{
    std::puts(
        "usage: run_sweep [options]\n"
        "  --scenario=FILE    base scenario JSON\n"
        "  --sweep=FILE       sweep JSON ({\"base\":{...},\"axes\":{...}})\n"
        "  --set=KEY=VALUE    override a base scenario field (repeatable)\n"
        "  --axis=KEY=V1,V2   add a sweep axis (repeatable)\n"
        "  --jobs=N           worker threads (default 1; 0 = all cores)\n"
        "  --results=FILE     aggregate results JSON (default results.json)\n"
        "  --log-level=N      0 quiet, 1 inform, 2 debug\n"
        "  --list             print the sweepable keys and values");
}

void
listKeys()
{
    std::puts("scenario keys (all sweepable via --axis / --set):\n"
              "  app approach slow_lat_factor slow_bw_factor fast_bytes\n"
              "  slow_bytes llc_bytes scale seed cpus name\n"
              "hotness spec keys (hotness.<key>):\n"
              "  backend (pte_scan|region) interval_ms pages_per_scan\n"
              "  hot_threshold adaptive free_run_skip region_min\n"
              "  region_max region_probes region_min_pages\n"
              "  region_split_threshold region_merge_heat_delta\n"
              "  legacy_placement_sampling\n"
              "  e.g. --axis=hotness.backend=pte_scan,region");
    std::fputs("approaches:", stdout);
    for (core::Approach a : core::allApproaches)
        std::printf(" %s", core::approachKey(a));
    std::fputs("\napps:", stdout);
    for (workload::AppId id : workload::allApps)
        std::printf(" %s", core::appKey(id));
    std::puts("");
}

/** Split "KEY=V1,V2,V3" into key and values. */
bool
splitAxis(const std::string &arg, std::string &key,
          std::vector<std::string> &values)
{
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    key = arg.substr(0, eq);
    values.clear();
    std::size_t pos = eq + 1;
    while (pos <= arg.size()) {
        std::size_t comma = arg.find(',', pos);
        if (comma == std::string::npos)
            comma = arg.size();
        if (comma > pos)
            values.push_back(arg.substr(pos, comma - pos));
        pos = comma + 1;
    }
    return !values.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string scenario_file, sweep_file;
    std::string results_file = "results.json";
    std::vector<std::pair<std::string, std::string>> sets;
    std::vector<std::pair<std::string, std::vector<std::string>>> axes;
    unsigned jobs = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&](const char *prefix) -> const char * {
            const std::size_t n = std::strlen(prefix);
            return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n
                                                  : nullptr;
        };
        if (arg == "--list") {
            listKeys();
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (const char *v = value("--scenario=")) {
            scenario_file = v;
        } else if (const char *v = value("--sweep=")) {
            sweep_file = v;
        } else if (const char *v = value("--results=")) {
            results_file = v;
        } else if (const char *v = value("--jobs=")) {
            jobs = static_cast<unsigned>(std::atoi(v));
        } else if (const char *v = value("--log-level=")) {
            sim::setLogLevel(std::atoi(v));
        } else if (const char *v = value("--set=")) {
            const std::string kv = v;
            const std::size_t eq = kv.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr, "bad --set '%s'\n", v);
                return 1;
            }
            sets.emplace_back(kv.substr(0, eq), kv.substr(eq + 1));
        } else if (const char *v = value("--axis=")) {
            std::string key;
            std::vector<std::string> values;
            if (!splitAxis(v, key, values)) {
                std::fprintf(stderr, "bad --axis '%s'\n", v);
                return 1;
            }
            axes.emplace_back(std::move(key), std::move(values));
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", argv[i]);
            usage();
            return 1;
        }
    }

    // --- Assemble the sweep ----------------------------------------
    std::string error;
    core::Sweep sweep;
    if (!sweep_file.empty()) {
        auto loaded = core::loadSweep(sweep_file, &error);
        if (!loaded) {
            std::fprintf(stderr, "cannot load sweep '%s': %s\n",
                         sweep_file.c_str(), error.c_str());
            return 1;
        }
        sweep = std::move(*loaded);
    } else if (!scenario_file.empty()) {
        auto base = core::loadScenario(scenario_file, &error);
        if (!base) {
            std::fprintf(stderr, "cannot load scenario '%s': %s\n",
                         scenario_file.c_str(), error.c_str());
            return 1;
        }
        sweep = core::Sweep(*base);
    }

    for (const auto &[key, value] : sets) {
        if (!core::applyScenarioParam(sweep.base(), key, value,
                                      &error)) {
            std::fprintf(stderr, "--set %s: %s\n", key.c_str(),
                         error.c_str());
            return 1;
        }
    }
    for (auto &[key, values] : axes)
        sweep.axis(key, std::move(values));

    const auto points = sweep.points(&error);
    if (points.empty()) {
        std::fprintf(stderr, "sweep expansion failed: %s\n",
                     error.c_str());
        return 1;
    }

    std::printf("sweep: %zu point%s", points.size(),
                points.size() == 1 ? "" : "s");
    for (const auto &a : sweep.axes())
        std::printf(" × %s[%zu]", a.key.c_str(), a.values.size());
    std::printf(", --jobs %u\n", jobs);

    // --- Run --------------------------------------------------------
    core::SweepRunner runner(sweep);
    runner.onPointDone([&](const core::SweepResult &r) {
        std::string params;
        for (const auto &[key, value] : r.point.params) {
            if (!params.empty())
                params += " ";
            params += key + "=" + value;
        }
        std::printf("  [%zu/%zu] %-40s %8.2fs sim\n", r.point.index + 1,
                    points.size(), params.c_str(), r.record.runtime_s);
        std::fflush(stdout);
    });

    const auto t0 = std::chrono::steady_clock::now();
    const auto results = runner.run(jobs);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall_s =
        std::chrono::duration<double>(t1 - t0).count();

    // Wall-clock goes to stdout only; results.json stays free of it
    // so identical sweeps produce identical bytes.
    std::printf("completed %zu points in %.2fs wall\n", results.size(),
                wall_s);

    if (!core::writeSweepResultsJson(results_file, sweep, results))
        return 1;
    std::printf("results: %s\n", results_file.c_str());
    return 0;
}
