/**
 * @file
 * Scenario: pick a management policy for your workload.
 *
 * Runs every application under every approach at a fixed capacity
 * ratio and prints the full gain matrix plus each approach's
 * management overhead breakdown — the view an operator would use to
 * choose a configuration.
 *
 * Run: ./build/examples/policy_explorer [scale]
 */

#include <cstdio>
#include <cstdlib>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/table.hh"

using namespace hos;

int
main(int argc, char **argv)
{
    const double scale = argc > 1 ? std::atof(argv[1]) : 0.15;

    const core::Approach approaches[] = {
        core::Approach::NumaPreferred, core::Approach::HeapOd,
        core::Approach::HeapIoSlabOd,  core::Approach::HeteroLru,
        core::Approach::VmmExclusive,  core::Approach::Coordinated};

    sim::Table table("Gain vs SlowMem-only (1/4 capacity ratio, "
                     "scale=" + sim::Table::num(scale) + ")");
    std::vector<std::string> header = {"app"};
    for (auto a : approaches)
        header.push_back(core::approachName(a));
    table.header(header);

    core::Scenario base;
    base.scale = scale;
    base.slow_bytes = static_cast<std::uint64_t>(
        scale * 8.0 * static_cast<double>(mem::gib));
    base.fast_bytes = base.slow_bytes / 4;

    for (auto app : workload::allApps) {
        auto spec = core::Scenario(base).withApp(app);
        spec.approach = core::Approach::SlowMemOnly;
        const auto slow_run = core::run(spec);

        std::vector<std::string> row = {workload::appName(app)};
        for (auto a : approaches) {
            spec.approach = a;
            const auto r = core::run(spec);
            row.push_back(
                sim::Table::pct(core::gainPercent(slow_run, r), 0));
        }
        table.row(row);
    }
    table.print();

    // Overhead anatomy for one representative run.
    auto spec = base;
    spec.approach = core::Approach::Coordinated;
    auto sys = core::systemFor(spec);
    auto &slot = sys->slot(0);
    sys->runOne(slot, workload::makeApp(workload::AppId::GraphChi, scale));

    sim::Table ov("HeteroOS-coordinated overhead anatomy (GraphChi)");
    ov.header({"account", "time (ms)"});
    for (int i = 0; i < static_cast<int>(guestos::numOverheadKinds); ++i) {
        const auto kind = static_cast<guestos::OverheadKind>(i);
        const double ms =
            sim::toMilliseconds(slot.kernel->overheadTotal(kind));
        if (ms > 0.01) {
            ov.row({guestos::overheadKindName(kind),
                    sim::Table::num(ms, 1)});
        }
    }
    ov.print();
    return 0;
}
