/**
 * @file
 * Scenario: out-of-core graph analytics on tiered memory.
 *
 * The workload the paper's introduction motivates: GraphChi-style
 * PageRank whose shard churn and vertex state fight for a small
 * FastMem tier. The example sweeps the FastMem:SlowMem capacity
 * ratio and shows how each management layer earns its keep:
 * on-demand placement, HeteroOS-LRU, and coordinated tracking.
 *
 * Run: ./build/examples/graph_analytics
 */

#include <cstdio>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/table.hh"

using namespace hos;

int
main()
{
    const double scale = 0.25;
    const std::uint64_t slow = static_cast<std::uint64_t>(
        8.0 * scale * static_cast<double>(mem::gib));

    sim::Table table("Graph analytics: gains vs SlowMem-only, by "
                     "FastMem:SlowMem ratio");
    table.header({"ratio", "Heap-IO-Slab-OD", "HeteroOS-LRU",
                  "HeteroOS-coordinated"});

    const auto base = core::Scenario{}
                          .withApp(workload::AppId::GraphChi)
                          .withScale(scale)
                          .withSlowBytes(slow);

    const auto slow_run = core::run(
        core::Scenario(base).withApproach(core::Approach::SlowMemOnly));

    for (double ratio : {0.5, 0.25, 0.125}) {
        std::vector<std::string> row = {
            ratio == 0.5 ? "1/2" : (ratio == 0.25 ? "1/4" : "1/8")};
        for (auto a : {core::Approach::HeapIoSlabOd,
                       core::Approach::HeteroLru,
                       core::Approach::Coordinated}) {
            const auto r = core::run(
                core::Scenario(base).withApproach(a).withFastBytes(
                    static_cast<std::uint64_t>(
                        static_cast<double>(slow) * ratio)));
            row.push_back(
                sim::Table::pct(core::gainPercent(slow_run, r), 0));
        }
        table.row(row);
    }
    table.print();

    std::puts("Reading the table: gains shrink as FastMem shrinks, and\n"
              "the LRU/coordinated mechanisms matter most at 1/8 where\n"
              "proactive placement alone cannot hold the working set.");
    return 0;
}
