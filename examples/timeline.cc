/**
 * @file
 * hos-timeline: render a run's windowed metrics — per-VM slowdown
 * percentiles, signal sparklines, and cross-run percentile diffs.
 *
 * Usage:
 *   hos-timeline [options] RESULTS.json
 *   hos-timeline --diff A.json B.json
 *
 *   RESULTS.json  results from `run_experiment --metrics --results=`
 *                 (top-level "metrics" object) or a sweep aggregate
 *                 ("runs"[]."record"."metrics"; pick one with --run=N)
 *
 * Options:
 *   --vm=N        restrict output to one VM id
 *   --run=N       sweep aggregate: which run's metrics to read
 *                 (default 0)
 *   --csv=FILE    dump every series as CSV (vm,series,kind,t_ns,value)
 *   --diff A B    compare per-VM P50/P99 slowdown between two results
 *                 files: exit 0 when every percentile is within 5% of
 *                 file A, 1 when any shifted more
 *
 * Exit codes: 0 ok / no shift, 1 no metrics found or --diff shift
 * beyond 5%, 2 usage or load error.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "metrics/metrics.hh"
#include "metrics/report.hh"
#include "sim/json.hh"
#include "sim/table.hh"

using namespace hos;

namespace {

void
usage()
{
    std::puts(
        "usage: hos-timeline [options] RESULTS.json\n"
        "       hos-timeline --diff A.json B.json\n"
        "options:\n"
        "  --vm=N      restrict output to one VM id\n"
        "  --run=N     sweep aggregate: which run to read (default 0)\n"
        "  --csv=FILE  dump every series as CSV\n"
        "  --diff A B  exit 1 when per-VM P50/P99 slowdown shifted "
        "more than 5%");
}

const char *const kKnownFlags[] = {
    "--vm=", "--run=", "--csv=", "--diff",
};

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
            diag = up;
        }
    }
    return row[b.size()];
}

std::string
nearestFlag(const std::string &arg)
{
    const std::string name = arg.substr(0, arg.find('='));
    std::string best;
    std::size_t best_d = ~std::size_t(0);
    for (const char *f : kKnownFlags) {
        std::string fname = f;
        if (!fname.empty() && fname.back() == '=')
            fname.pop_back();
        const std::size_t d = editDistance(name, fname);
        if (d < best_d) {
            best_d = d;
            best = fname;
        }
    }
    return best;
}

/**
 * Pull the metrics section out of a results file: the top-level
 * "metrics" object of a single run, or the --run'th metrics-carrying
 * entry of a sweep aggregate's "runs" array.
 */
bool
loadMetrics(const std::string &path, std::size_t run_idx,
            metrics::MetricsReport &out, std::string &error)
{
    const auto doc = sim::jsonParseFile(path, &error);
    if (!doc)
        return false;
    if (!doc->isObject()) {
        error = "top level is not an object";
        return false;
    }
    if (const auto *m = doc->find("metrics")) {
        out = metrics::metricsReportFromJson(*m, &error);
        return error.empty();
    }
    if (const auto *runs = doc->find("runs")) {
        if (!runs->isArray()) {
            error = "\"runs\" is not an array";
            return false;
        }
        std::size_t idx = 0;
        for (const auto &run : runs->array) {
            const auto *record = run.find("record");
            const auto *m =
                record != nullptr ? record->find("metrics") : nullptr;
            if (m == nullptr)
                continue;
            if (idx++ != run_idx)
                continue;
            out = metrics::metricsReportFromJson(*m, &error);
            return error.empty();
        }
        error = idx == 0
                    ? "no run in \"runs\" carries a metrics section "
                      "(was the sweep run with metrics on?)"
                    : "--run index past the " + std::to_string(idx) +
                          " metrics-carrying run(s)";
        return false;
    }
    error = "no \"metrics\" object and no \"runs\" array (produce "
            "input with run_experiment --metrics --results=...)";
    return false;
}

/** Unicode sparkline of a series, min..max scaled to 8 block levels. */
std::string
sparkline(const std::vector<std::pair<sim::Tick, std::int64_t>> &points,
          std::size_t width = 48)
{
    static const char *const kBlocks[] = {"▁", "▂", "▃", "▄",
                                          "▅", "▆", "▇", "█"};
    if (points.empty())
        return "(empty)";
    std::int64_t lo = points.front().second, hi = lo;
    for (const auto &[t, v] : points) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    // Downsample to `width` columns, bucket-averaging.
    const std::size_t n = points.size();
    const std::size_t cols = std::min(width, n);
    std::string out;
    for (std::size_t c = 0; c < cols; ++c) {
        const std::size_t begin = c * n / cols;
        const std::size_t end = std::max(begin + 1, (c + 1) * n / cols);
        double sum = 0.0;
        for (std::size_t i = begin; i < end; ++i)
            sum += static_cast<double>(points[i].second);
        const double avg = sum / static_cast<double>(end - begin);
        std::size_t level = 0;
        if (hi > lo) {
            level = static_cast<std::size_t>(
                (avg - static_cast<double>(lo)) /
                static_cast<double>(hi - lo) * 7.0 + 0.5);
            level = std::min<std::size_t>(level, 7);
        }
        out += kBlocks[level];
    }
    return out;
}

double
ppmToFactor(std::uint64_t ppm)
{
    return static_cast<double>(ppm) /
           static_cast<double>(metrics::ppmScale);
}

bool
vmSelected(const metrics::MetricsVm &vm, std::optional<unsigned> vm_id)
{
    return !vm_id || vm.vm == *vm_id;
}

void
printReport(const metrics::MetricsReport &report,
            std::optional<unsigned> vm_id)
{
    std::printf("windowed metrics (sample interval %" PRIu64 " ns)\n",
                report.sample_interval_ns);
    for (const auto &vm : report.vms) {
        if (!vmSelected(vm, vm_id))
            continue;
        std::printf("\nvm %u: %" PRIu64 " phases, %" PRIu64
                    " samples, %" PRIu64 " slowdown windows\n",
                    vm.vm, vm.phases, vm.samples, vm.windows);

        sim::Table t("slowdown vs all-fast ideal (x)");
        t.header({"p50", "p90", "p99", "p99.9", "min", "max", "mean"});
        const auto &h = vm.slowdown;
        const double mean =
            h.totalCount() > 0
                ? ppmToFactor(h.valueSum() / h.totalCount())
                : 0.0;
        t.row({sim::Table::num(ppmToFactor(h.valueAtPermyriad(5000)), 3),
               sim::Table::num(ppmToFactor(h.valueAtPermyriad(9000)), 3),
               sim::Table::num(ppmToFactor(h.valueAtPermyriad(9900)), 3),
               sim::Table::num(ppmToFactor(h.valueAtPermyriad(9990)), 3),
               sim::Table::num(ppmToFactor(h.minValue()), 3),
               sim::Table::num(ppmToFactor(h.maxValue()), 3),
               sim::Table::num(mean, 3)});
        t.print();

        std::printf("  %-16s %s\n", "slowdown_ppm",
                    sparkline(vm.slowdown_series.points).c_str());
        for (const auto &s : vm.series) {
            std::printf("  %-16s %s", s.name.c_str(),
                        sparkline(s.points).c_str());
            if (!s.points.empty()) {
                std::printf("  last=%" PRId64, s.points.back().second);
                if (s.stride > 1)
                    std::printf(" (1/%" PRIu64 " decimated)", s.stride);
            }
            std::printf("\n");
        }
        std::printf("  totals: actual=%" PRIu64 "ns ideal=%" PRIu64
                    "ns overhead=%" PRIu64 "ns\n",
                    vm.actual_ns, vm.ideal_ns, vm.overhead_ns);
    }
}

const metrics::MetricsVm *
findVm(const metrics::MetricsReport &r, std::uint16_t tag)
{
    for (const auto &vm : r.vms) {
        if (vm.vm == tag)
            return &vm;
    }
    return nullptr;
}

/**
 * Percentile shift gate: returns 1 (and explains) when any per-VM
 * P50/P99 slowdown moved more than 5% relative to the baseline `a`.
 */
int
diffReports(const metrics::MetricsReport &a,
            const metrics::MetricsReport &b)
{
    bool shifted = false;
    sim::Table t("slowdown percentile diff (B vs A)");
    t.header({"vm", "pct", "A", "B", "shift", "verdict"});
    for (const auto &va : a.vms) {
        const auto *vb = findVm(b, va.vm);
        if (vb == nullptr) {
            std::fprintf(stderr, "vm %u present in A but not in B\n",
                         va.vm);
            shifted = true;
            continue;
        }
        const std::pair<const char *, std::uint64_t> pcts[] = {
            {"p50", 5000}, {"p99", 9900}};
        for (const auto &[label, q] : pcts) {
            const std::uint64_t pa = va.slowdown.valueAtPermyriad(q);
            const std::uint64_t pb = vb->slowdown.valueAtPermyriad(q);
            const double base = pa > 0 ? static_cast<double>(pa) : 1.0;
            const double shift_pct =
                (static_cast<double>(pb) - static_cast<double>(pa)) /
                base * 100.0;
            const bool over = shift_pct > 5.0 || shift_pct < -5.0;
            shifted = shifted || over;
            t.row({sim::Table::num(std::uint64_t{va.vm}), label,
                   sim::Table::num(ppmToFactor(pa), 3),
                   sim::Table::num(ppmToFactor(pb), 3),
                   sim::Table::pct(shift_pct),
                   over ? "SHIFT" : "ok"});
        }
    }
    for (const auto &vb : b.vms) {
        if (findVm(a, vb.vm) == nullptr) {
            std::fprintf(stderr, "vm %u present in B but not in A\n",
                         vb.vm);
            shifted = true;
        }
    }
    t.print();
    return shifted ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::optional<unsigned> vm_id;
    std::size_t run_idx = 0;
    std::string csv_file;
    bool diff = false;
    std::vector<const char *> files;

    for (int arg = 1; arg < argc; ++arg) {
        const std::string a = argv[arg];
        if (std::strncmp(argv[arg], "--", 2) != 0) {
            files.push_back(argv[arg]);
        } else if (a.rfind("--vm=", 0) == 0) {
            vm_id = static_cast<unsigned>(
                std::strtoul(a.c_str() + 5, nullptr, 0));
        } else if (a.rfind("--run=", 0) == 0) {
            run_idx = std::strtoull(a.c_str() + 6, nullptr, 0);
        } else if (a.rfind("--csv=", 0) == 0) {
            csv_file = a.substr(6);
        } else if (a == "--diff") {
            diff = true;
        } else {
            std::fprintf(stderr,
                         "unknown option '%s' (did you mean '%s'?)\n",
                         argv[arg], nearestFlag(a).c_str());
            usage();
            return 2;
        }
    }
    if ((diff && files.size() != 2) || (!diff && files.size() != 1)) {
        usage();
        return 2;
    }

    metrics::MetricsReport report;
    std::string error;
    if (!loadMetrics(files[0], run_idx, report, error)) {
        std::fprintf(stderr, "%s: %s\n", files[0], error.c_str());
        return 2;
    }
    if (report.empty()) {
        std::fprintf(stderr,
                     "metrics section is empty (HOS_METRICS=off "
                     "build?)\n");
        return 1;
    }

    if (diff) {
        metrics::MetricsReport other;
        if (!loadMetrics(files[1], run_idx, other, error)) {
            std::fprintf(stderr, "%s: %s\n", files[1], error.c_str());
            return 2;
        }
        if (other.empty()) {
            std::fprintf(stderr, "%s: metrics section is empty\n",
                         files[1]);
            return 1;
        }
        return diffReports(report, other);
    }

    if (!csv_file.empty()) {
        std::ofstream os(csv_file);
        if (!os) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         csv_file.c_str());
            return 2;
        }
        metrics::writeMetricsCsv(os, report);
        std::printf("csv: %s\n", csv_file.c_str());
    }
    printReport(report, vm_id);
    return 0;
}
