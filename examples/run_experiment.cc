/**
 * @file
 * Command-line experiment runner: any application under any
 * management approach at any capacity ratio, with the full result
 * and overhead breakdown — the Swiss-army knife for exploring the
 * system beyond the canned benches.
 *
 * Usage:
 *   run_experiment [options] [app] [approach] [fast_ratio] [scale]
 *   run_experiment --list
 *
 *   app        graphchi|xstream|metis|leveldb|redis|nginx (default graphchi)
 *   approach   slow|fast|random|numa|heap-od|od|lru|vmm|coord (default lru)
 *   fast_ratio FastMem:SlowMem capacity ratio, e.g. 0.25 (default 0.25)
 *   scale      workload scale 0..1 (default 0.2)
 *
 * Observability options:
 *   --trace=FILE            Chrome trace_event JSON (chrome://tracing)
 *   --trace-csv=FILE        same events as compact CSV
 *   --trace-categories=CSV  e.g. migration,scan,balloon (default all)
 *   --stats-interval=MS     periodic stats snapshots every MS of sim time
 *   --stats-out=FILE        snapshot time-series JSON
 *                           (default stats_timeseries.json)
 *   --results=FILE          machine-readable results JSON
 *   --set=KEY=VALUE         scenario override (repeatable): any
 *                           applyScenarioParam key, including the
 *                           dotted hotness spec, e.g.
 *                           --set=hotness.backend=region
 *   --log-level=N           0 quiet, 1 inform, 2 debug (tick-stamped)
 *
 * Profiling options (need -DHOS_PROF=sim or host):
 *   --prof                  span profiler: per-subsystem cost ledger,
 *                           printed after the run and embedded in
 *                           --results output under "profile"
 *   --prof-collapsed=FILE   collapsed-stack export for flamegraph.pl
 *                           or speedscope (implies --prof)
 *
 * Placement telemetry (needs -DHOS_XRAY=sampled or full):
 *   --xray                  placement-quality x-ray: misplaced-hotness
 *                           summary printed after the run and the full
 *                           report embedded in --results output under
 *                           "xray" (feed that file to hos-explain)
 *
 * Windowed metrics (needs -DHOS_METRICS=on, the default):
 *   --metrics               per-VM windowed series + slowdown SLO
 *                           percentiles, printed after the run and
 *                           embedded in --results output under
 *                           "metrics" (feed that file to hos-timeline)
 *
 * Unknown or misplaced --flags anywhere on the command line fail with
 * exit status 2 and a nearest-valid-flag suggestion.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "metrics/metrics.hh"
#include "metrics/report.hh"
#include "prof/prof.hh"
#include "prof/report.hh"
#include "sim/log.hh"
#include "sim/table.hh"
#include "trace/exporters.hh"
#include "trace/stats_snapshot.hh"
#include "trace/trace.hh"
#include "xray/report.hh"
#include "xray/xray.hh"

using namespace hos;

namespace {

void
usage()
{
    std::puts(
        "usage: run_experiment [options] [app] [approach] [fast_ratio] "
        "[scale]\n"
        "  app:      graphchi xstream metis leveldb redis nginx\n"
        "  approach: slow fast random numa heap-od od lru vmm coord\n"
        "  fast_ratio: FastMem as a fraction of SlowMem (default 0.25)\n"
        "  scale:      workload scale (default 0.2)\n"
        "options:\n"
        "  --trace=FILE            Chrome trace JSON (chrome://tracing)\n"
        "  --trace-csv=FILE        trace as compact CSV\n"
        "  --trace-categories=CSV  alloc,migration,scan,balloon,swap,\n"
        "                          hypercall,fairness,device,stats,all\n"
        "  --stats-interval=MS     stats snapshot cadence in sim ms\n"
        "  --stats-out=FILE        snapshot JSON "
        "(default stats_timeseries.json)\n"
        "  --results=FILE          results JSON\n"
        "  --set=KEY=VALUE         scenario override (repeatable), e.g.\n"
        "                          --set=hotness.backend=region\n"
        "  --log-level=N           0 quiet, 1 inform, 2 debug\n"
        "  --prof                  span-profiler cost attribution\n"
        "  --prof-collapsed=FILE   flamegraph collapsed-stack export\n"
        "  --xray                  placement-quality telemetry "
        "(hos-explain input)\n"
        "  --metrics               windowed series + slowdown SLO "
        "(hos-timeline input)");
}

/** Every flag this tool understands ('=' marks value-taking forms). */
const char *const kKnownFlags[] = {
    "--trace=",      "--trace-csv=",      "--trace-categories=",
    "--stats-interval=", "--stats-out=",  "--results=",
    "--set=",        "--log-level=",      "--prof",
    "--prof-collapsed=", "--xray",        "--metrics",
    "--list",
};

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
            diag = up;
        }
    }
    return row[b.size()];
}

/** The known flag nearest to `arg` (compared on the name, sans '='). */
std::string
nearestFlag(const std::string &arg)
{
    const std::string name = arg.substr(0, arg.find('='));
    std::string best;
    std::size_t best_d = ~std::size_t(0);
    for (const char *f : kKnownFlags) {
        std::string fname = f;
        if (!fname.empty() && fname.back() == '=')
            fname.pop_back();
        const std::size_t d = editDistance(name, fname);
        if (d < best_d) {
            best_d = d;
            best = fname;
        }
    }
    return best;
}

/** Exit status 2 with a did-you-mean hint — unknown/misplaced flags. */
int
rejectFlag(const char *arg, const char *why)
{
    std::fprintf(stderr, "%s '%s' (did you mean '%s'?)\n", why, arg,
                 nearestFlag(arg).c_str());
    usage();
    return 2;
}

/** The observability flags, parsed off the front of argv. */
struct Options
{
    std::string trace_file;
    std::string trace_csv_file;
    std::string trace_categories;
    double stats_interval_ms = 0.0;
    std::string stats_out = "stats_timeseries.json";
    std::string results_file;
    bool prof = false;
    std::string prof_collapsed_file;
    bool xray = false;
    bool metrics = false;
    /** --set=KEY=VALUE scenario overrides, applied in order. */
    std::vector<std::pair<std::string, std::string>> sets;
};

/** Consume every leading --flag; returns 0, or an exit status. */
int
parseOptions(int &argc, char **&argv, Options &opt)
{
    while (argc > 1 && std::strncmp(argv[1], "--", 2) == 0 &&
           std::strcmp(argv[1], "--list") != 0) {
        const std::string arg = argv[1];
        const auto eat = [&](const char *prefix,
                             std::string &dst) -> bool {
            const std::size_t n = std::strlen(prefix);
            if (arg.compare(0, n, prefix) != 0)
                return false;
            dst = arg.substr(n);
            return true;
        };
        std::string interval;
        if (eat("--trace=", opt.trace_file) ||
            eat("--trace-csv=", opt.trace_csv_file) ||
            eat("--trace-categories=", opt.trace_categories)) {
            // handled
        } else if (eat("--stats-interval=", interval)) {
            static bool warned = false;
            if (!warned) {
                warned = true;
                std::fprintf(stderr,
                             "warning: --stats-interval is deprecated; "
                             "the snapshotter now rides the shared "
                             "windowed-series clock (prefer --metrics "
                             "for per-VM telemetry)\n");
            }
            opt.stats_interval_ms = std::atof(interval.c_str());
            if (opt.stats_interval_ms <= 0.0) {
                std::fprintf(stderr,
                             "--stats-interval wants a positive ms "
                             "value\n");
                usage();
                return 1;
            }
        } else if (eat("--stats-out=", opt.stats_out)) {
            // handled
        } else if (eat("--results=", opt.results_file)) {
            // handled
        } else if (arg == "--prof") {
            opt.prof = true;
        } else if (eat("--prof-collapsed=", opt.prof_collapsed_file)) {
            opt.prof = true;
        } else if (arg == "--xray") {
            opt.xray = true;
        } else if (arg == "--metrics") {
            opt.metrics = true;
        } else if (eat("--set=", interval)) {
            const auto eq = interval.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr, "--set wants KEY=VALUE\n");
                usage();
                return 1;
            }
            opt.sets.emplace_back(interval.substr(0, eq),
                                  interval.substr(eq + 1));
        } else if (eat("--log-level=", interval)) {
            sim::setLogLevel(std::atoi(interval.c_str()));
        } else {
            return rejectFlag(argv[1], "unknown option");
        }
        --argc;
        ++argv;
    }
    // A --flag after the first positional never reached the loop
    // above; accepting it silently would drop the user's request.
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) == 0 &&
            std::strcmp(argv[i], "--list") != 0) {
            return rejectFlag(argv[i],
                              "option after positional arguments");
        }
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (const int status = parseOptions(argc, argv, opt))
        return status;
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        usage();
        return 0;
    }

    const auto app = core::parseApp(argc > 1 ? argv[1] : "graphchi");
    const auto approach =
        core::parseApproach(argc > 2 ? argv[2] : "lru");
    const double ratio = argc > 3 ? std::atof(argv[3]) : 0.25;
    const double scale = argc > 4 ? std::atof(argv[4]) : 0.2;
    if (!app || !approach || ratio <= 0.0 || scale <= 0.0 ||
        scale > 1.0) {
        usage();
        return 1;
    }

    core::Scenario spec;
    spec.app = *app;
    spec.approach = *approach;
    spec.scale = scale;
    spec.slow_bytes = static_cast<std::uint64_t>(
        scale * 8.0 * static_cast<double>(mem::gib));
    spec.fast_bytes = static_cast<std::uint64_t>(
        static_cast<double>(spec.slow_bytes) * ratio);
    if (opt.prof) {
        if (!prof::profilingCompiled)
            std::fprintf(stderr,
                         "warning: built with -DHOS_PROF=off; "
                         "--prof output will be empty\n");
        spec.profiling = true;
    }
    if (opt.xray) {
        if (!xray::xrayCompiled)
            std::fprintf(stderr,
                         "warning: built with -DHOS_XRAY=off; "
                         "--xray output will be empty\n");
        spec.xray = true;
    }
    if (opt.metrics) {
        if (!metrics::metricsCompiled)
            std::fprintf(stderr,
                         "warning: built with -DHOS_METRICS=off; "
                         "--metrics output will be empty\n");
        spec.metrics = true;
    }
    // Scenario overrides land after the positionals so --set wins
    // (e.g. --set=hotness.backend=region swaps the tracker backend).
    for (const auto &[key, value] : opt.sets) {
        std::string err;
        if (!core::applyScenarioParam(spec, key, value, &err)) {
            std::fprintf(stderr, "--set=%s=%s: %s\n", key.c_str(),
                         value.c_str(), err.c_str());
            return 1;
        }
    }

    // Baseline for the gain column (runs untraced — its events would
    // only pollute the main run's timeline).
    auto base_spec = spec;
    base_spec.approach = core::Approach::SlowMemOnly;
    base_spec.profiling = false;
    base_spec.xray = false;
    base_spec.metrics = false;
    const auto base = core::run(base_spec);

    const bool tracing =
        !opt.trace_file.empty() || !opt.trace_csv_file.empty();

    auto sys = core::systemFor(spec);
    auto &slot = sys->slot(0);
    // The system's own sink, not the process-wide tracer: another
    // system in this process would not interleave with this timeline.
    if (tracing)
        sys->enableTracing(trace::parseCategories(opt.trace_categories));

    std::unique_ptr<trace::StatsSnapshotter> snapshotter;
    if (opt.stats_interval_ms > 0.0) {
        snapshotter = std::make_unique<trace::StatsSnapshotter>(
            sys->statRegistry(), slot.kernel->events(),
            static_cast<sim::Duration>(opt.stats_interval_ms * 1e6));
        snapshotter->start();
    }

    const auto res =
        sys->runOne(slot, workload::makeApp(spec.app, spec.scale));

    sim::Table t("Result: " + res.workload + " under " +
                 core::approachName(spec.approach));
    t.header({"metric", "value"});
    t.row({"runtime (s)", sim::Table::num(res.seconds())});
    t.row({res.metric_name, sim::Table::num(res.metric)});
    t.row({"gain vs SlowMem-only",
           sim::Table::pct(core::gainPercent(base, res))});
    t.row({"phases", sim::Table::num(res.phases)});
    t.row({"MPKI", sim::Table::num(res.mpki, 1)});
    t.print();

    auto &k = *slot.kernel;
    sim::Table ov("Management overhead breakdown");
    ov.header({"account", "ms"});
    for (int i = 0; i < static_cast<int>(guestos::numOverheadKinds); ++i) {
        const auto kind = static_cast<guestos::OverheadKind>(i);
        const double ms =
            sim::toMilliseconds(k.overheadTotal(kind));
        if (ms > 0.005)
            ov.row({guestos::overheadKindName(kind),
                    sim::Table::num(ms, 2)});
    }
    ov.print();

    sim::Table pg("Page allocations by type");
    pg.header({"type", "pages"});
    for (int i = 1; i < static_cast<int>(guestos::numPageTypes); ++i) {
        const auto type = static_cast<guestos::PageType>(i);
        const auto n = k.allocCount(type);
        if (n > 0)
            pg.row({guestos::pageTypeName(type), sim::Table::num(n)});
    }
    pg.row({"FastMem alloc miss ratio",
            sim::Table::num(k.allocator().overallFastMissRatio(), 3)});
    pg.print();

    prof::ProfileReport profile;
    if (opt.prof) {
        profile = sys->profiler().report();
        sim::Table pt("Span-profiler cost attribution");
        pt.header({"subsystem", "ms", "share"});
        const double total =
            static_cast<double>(profile.simGrandTotal());
        for (const auto &[kind, sim_ns] : profile.kindTotals()) {
            const double ms =
                sim::toMilliseconds(static_cast<sim::Duration>(sim_ns));
            const double share =
                total > 0.0 ? static_cast<double>(sim_ns) / total * 100.0
                            : 0.0;
            pt.row({kind, sim::Table::num(ms, 2),
                    sim::Table::pct(share)});
        }
        pt.print();
    }

    xray::XrayReport xr_report;
    if (opt.xray) {
        xr_report = sys->xrayRecorder().report();
        sim::Table xt("Placement x-ray (per VM)");
        xt.header({"vm", "hot", "hot misplaced", "cold in fast",
                   "ping-pongs"});
        for (const auto &vm : xr_report.vms) {
            xt.row({sim::Table::num(std::uint64_t{vm.vm}),
                    sim::Table::num(vm.hotTotal()),
                    sim::Table::num(vm.hotMisplaced()),
                    sim::Table::num(vm.coldInFast()),
                    sim::Table::num(vm.pingpong_events)});
        }
        xt.print();
    }

    metrics::MetricsReport mx_report;
    if (opt.metrics) {
        mx_report = sys->metricsCollector().report();
    }
    if (!mx_report.empty()) {
        sim::Table mt("Windowed metrics: slowdown vs all-fast ideal");
        mt.header({"vm", "windows", "p50", "p99", "max", "overhead ms"});
        for (const auto &vm : mx_report.vms) {
            const auto x = [](std::uint64_t ppm) {
                return sim::Table::num(
                    static_cast<double>(ppm) /
                        static_cast<double>(metrics::ppmScale),
                    3);
            };
            mt.row({sim::Table::num(std::uint64_t{vm.vm}),
                    sim::Table::num(vm.windows),
                    x(vm.slowdown.valueAtPermyriad(5000)),
                    x(vm.slowdown.valueAtPermyriad(9900)),
                    x(vm.slowdown.maxValue()),
                    sim::Table::num(
                        sim::toMilliseconds(static_cast<sim::Duration>(
                            vm.overhead_ns)),
                        2)});
        }
        mt.print();
    }

    // --- Observability exports -------------------------------------
    trace::Tracer &sink = sys->traceSink();
    if (!opt.trace_file.empty() &&
        trace::writeChromeJson(sink, opt.trace_file)) {
        std::printf("trace: %s (%llu events, %llu dropped)\n",
                    opt.trace_file.c_str(),
                    static_cast<unsigned long long>(sink.size()),
                    static_cast<unsigned long long>(sink.dropped()));
    }
    if (!opt.trace_csv_file.empty() &&
        trace::writeCsv(sink, opt.trace_csv_file)) {
        std::printf("trace csv: %s\n", opt.trace_csv_file.c_str());
    }
    if (!opt.prof_collapsed_file.empty() &&
        prof::writeCollapsed(profile, opt.prof_collapsed_file)) {
        std::printf("prof collapsed: %s (%zu rows)\n",
                    opt.prof_collapsed_file.c_str(),
                    profile.entries.size());
    }
    if (snapshotter && snapshotter->writeJson(opt.stats_out)) {
        std::printf("stats: %s (%llu snapshots)\n", opt.stats_out.c_str(),
                    static_cast<unsigned long long>(
                        snapshotter->snapshots().size()));
    }
    if (!opt.results_file.empty()) {
        auto record =
            core::makeRunRecord(res, core::approachName(spec.approach));
        record.gain_pct = core::gainPercent(base, res);
        for (int i = 0; i < static_cast<int>(guestos::numOverheadKinds);
             ++i) {
            const auto kind = static_cast<guestos::OverheadKind>(i);
            record.extra.emplace_back(
                std::string("overhead_ms.") +
                    guestos::overheadKindName(kind),
                sim::toMilliseconds(k.overheadTotal(kind)));
        }
        record.extra.emplace_back("fast_miss_ratio",
                                  k.allocator().overallFastMissRatio());
        record.profile = profile;
        record.xray = xr_report;
        record.metrics = mx_report;
        if (core::writeResultsJson(opt.results_file, record))
            std::printf("results: %s\n", opt.results_file.c_str());
    }
    return 0;
}
