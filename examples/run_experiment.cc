/**
 * @file
 * Command-line experiment runner: any application under any
 * management approach at any capacity ratio, with the full result
 * and overhead breakdown — the Swiss-army knife for exploring the
 * system beyond the canned benches.
 *
 * Usage:
 *   run_experiment [app] [approach] [fast_ratio] [scale]
 *   run_experiment --list
 *
 *   app        graphchi|xstream|metis|leveldb|redis|nginx (default graphchi)
 *   approach   slow|fast|random|numa|heap-od|od|lru|vmm|coord (default lru)
 *   fast_ratio FastMem:SlowMem capacity ratio, e.g. 0.25 (default 0.25)
 *   scale      workload scale 0..1 (default 0.2)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/table.hh"

using namespace hos;

namespace {

std::optional<workload::AppId>
parseApp(const char *s)
{
    const struct
    {
        const char *name;
        workload::AppId id;
    } apps[] = {{"graphchi", workload::AppId::GraphChi},
                {"xstream", workload::AppId::XStream},
                {"metis", workload::AppId::Metis},
                {"leveldb", workload::AppId::LevelDb},
                {"redis", workload::AppId::Redis},
                {"nginx", workload::AppId::Nginx}};
    for (const auto &a : apps) {
        if (std::strcmp(s, a.name) == 0)
            return a.id;
    }
    return std::nullopt;
}

std::optional<core::Approach>
parseApproach(const char *s)
{
    const struct
    {
        const char *name;
        core::Approach a;
    } approaches[] = {{"slow", core::Approach::SlowMemOnly},
                      {"fast", core::Approach::FastMemOnly},
                      {"random", core::Approach::Random},
                      {"numa", core::Approach::NumaPreferred},
                      {"heap-od", core::Approach::HeapOd},
                      {"od", core::Approach::HeapIoSlabOd},
                      {"lru", core::Approach::HeteroLru},
                      {"vmm", core::Approach::VmmExclusive},
                      {"coord", core::Approach::Coordinated}};
    for (const auto &e : approaches) {
        if (std::strcmp(s, e.name) == 0)
            return e.a;
    }
    return std::nullopt;
}

void
usage()
{
    std::puts(
        "usage: run_experiment [app] [approach] [fast_ratio] [scale]\n"
        "  app:      graphchi xstream metis leveldb redis nginx\n"
        "  approach: slow fast random numa heap-od od lru vmm coord\n"
        "  fast_ratio: FastMem as a fraction of SlowMem (default 0.25)\n"
        "  scale:      workload scale (default 0.2)");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        usage();
        return 0;
    }

    const auto app = parseApp(argc > 1 ? argv[1] : "graphchi");
    const auto approach = parseApproach(argc > 2 ? argv[2] : "lru");
    const double ratio = argc > 3 ? std::atof(argv[3]) : 0.25;
    const double scale = argc > 4 ? std::atof(argv[4]) : 0.2;
    if (!app || !approach || ratio <= 0.0 || scale <= 0.0 ||
        scale > 1.0) {
        usage();
        return 1;
    }

    core::RunSpec spec;
    spec.approach = *approach;
    spec.scale = scale;
    spec.slow_bytes = static_cast<std::uint64_t>(
        scale * 8.0 * static_cast<double>(mem::gib));
    spec.fast_bytes = static_cast<std::uint64_t>(
        static_cast<double>(spec.slow_bytes) * ratio);

    // Baseline for the gain column.
    auto base_spec = spec;
    base_spec.approach = core::Approach::SlowMemOnly;
    const auto base = core::runApp(*app, base_spec);

    auto sys = core::systemFor(spec);
    auto &slot = sys->slot(0);
    const auto res =
        sys->runOne(slot, workload::makeApp(*app, spec.scale));

    sim::Table t("Result: " + res.workload + " under " +
                 core::approachName(*approach));
    t.header({"metric", "value"});
    t.row({"runtime (s)", sim::Table::num(res.seconds())});
    t.row({res.metric_name, sim::Table::num(res.metric)});
    t.row({"gain vs SlowMem-only",
           sim::Table::pct(core::gainPercent(base, res))});
    t.row({"phases", sim::Table::num(res.phases)});
    t.row({"MPKI", sim::Table::num(res.mpki, 1)});
    t.print();

    auto &k = *slot.kernel;
    sim::Table ov("Management overhead breakdown");
    ov.header({"account", "ms"});
    for (int i = 0; i < static_cast<int>(guestos::numOverheadKinds); ++i) {
        const auto kind = static_cast<guestos::OverheadKind>(i);
        const double ms =
            sim::toMilliseconds(k.overheadTotal(kind));
        if (ms > 0.005)
            ov.row({guestos::overheadKindName(kind),
                    sim::Table::num(ms, 2)});
    }
    ov.print();

    sim::Table pg("Page allocations by type");
    pg.header({"type", "pages"});
    for (int i = 1; i < static_cast<int>(guestos::numPageTypes); ++i) {
        const auto type = static_cast<guestos::PageType>(i);
        const auto n = k.allocCount(type);
        if (n > 0)
            pg.row({guestos::pageTypeName(type), sim::Table::num(n)});
    }
    pg.row({"FastMem alloc miss ratio",
            sim::Table::num(k.allocator().overallFastMissRatio(), 3)});
    pg.print();
    return 0;
}
