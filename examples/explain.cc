/**
 * @file
 * hos-explain: interrogate a run's placement x-ray — why pages landed
 * where they did, and how good placement was overall.
 *
 * Usage:
 *   hos-explain [options] RESULTS.json
 *
 *   RESULTS.json  results from `run_experiment --xray --results=`
 *                 (top-level "xray" object) or a sweep aggregate
 *                 ("runs"[]."record"."xray"; pick one with --run=N)
 *
 * Options:
 *   --page=GPFN   the page's full decision history: every recorded
 *                 alloc/heat-crossing/promote/demote/skip with the
 *                 policy inputs (heat, threshold, candidate rank) the
 *                 decision saw
 *   --vm=N        restrict --page / listings to one VM id
 *   --at=TICK     with --page: also resolve "where was the page and
 *                 why" as of sim tick TICK
 *   --top=N       top-N misplaced pages (hottest first; default 10)
 *   --promoted    every recorded promotion with its decision inputs
 *   --demoted     every recorded demotion with its decision inputs
 *   --run=N       which sweep run's xray section to read (default 0)
 *
 * With no option beyond the file, prints the per-VM quality summary:
 * misplaced-hotness mass, cold-in-fast, lag histograms, ping-pongs
 * and the decision mix.
 *
 * Exit codes: 0 ok, 1 requested page/records not found, 2 usage or
 * load error. Note: in HOS_XRAY=sampled builds only a deterministic
 * 1-in-64 gpfn sample carries a ring (aggregates cover every page);
 * build with -DHOS_XRAY=full for per-page history of everything.
 */

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "sim/json.hh"
#include "xray/report.hh"
#include "xray/xray.hh"

using namespace hos;

namespace {

void
usage()
{
    std::puts(
        "usage: hos-explain [options] RESULTS.json\n"
        "options:\n"
        "  --page=GPFN   full decision history of one page\n"
        "  --vm=N        restrict to one VM id\n"
        "  --at=TICK     with --page: placement as of this sim tick\n"
        "  --top=N       top-N misplaced pages (default 10)\n"
        "  --promoted    all recorded promotions with decision inputs\n"
        "  --demoted     all recorded demotions with decision inputs\n"
        "  --run=N       sweep aggregate: which run to read (default 0)");
}

const char *const kKnownFlags[] = {
    "--page=", "--vm=", "--at=", "--top=", "--top",
    "--promoted", "--demoted", "--run=",
};

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> row(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        row[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        std::size_t diag = row[0];
        row[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t up = row[j];
            const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
            row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
            diag = up;
        }
    }
    return row[b.size()];
}

/** The known flag nearest to `arg` (compared on the name, sans '='). */
std::string
nearestFlag(const std::string &arg)
{
    const std::string name = arg.substr(0, arg.find('='));
    std::string best;
    std::size_t best_d = ~std::size_t(0);
    for (const char *f : kKnownFlags) {
        std::string fname = f;
        if (!fname.empty() && fname.back() == '=')
            fname.pop_back();
        const std::size_t d = editDistance(name, fname);
        if (d < best_d) {
            best_d = d;
            best = fname;
        }
    }
    return best;
}

bool
loadXray(const std::string &path, std::size_t run_idx,
         xray::XrayReport &out, std::string &error)
{
    const auto doc = sim::jsonParseFile(path, &error);
    if (!doc)
        return false;
    if (!doc->isObject()) {
        error = "top level is not an object";
        return false;
    }
    if (const auto *x = doc->find("xray")) {
        out = xray::xrayReportFromJson(*x, &error);
        return error.empty();
    }
    if (const auto *runs = doc->find("runs")) {
        if (!runs->isArray()) {
            error = "\"runs\" is not an array";
            return false;
        }
        std::size_t idx = 0;
        for (const auto &run : runs->array) {
            const auto *record = run.find("record");
            const auto *x =
                record != nullptr ? record->find("xray") : nullptr;
            if (x == nullptr)
                continue;
            if (idx++ != run_idx)
                continue;
            out = xray::xrayReportFromJson(*x, &error);
            return error.empty();
        }
        error = idx == 0
                    ? "no run in \"runs\" carries an xray section "
                      "(was the sweep run with xray on?)"
                    : "--run index past the " + std::to_string(idx) +
                          " xray-carrying run(s)";
        return false;
    }
    error = "no \"xray\" object and no \"runs\" array "
            "(produce input with run_experiment --xray --results=...)";
    return false;
}

const char *
dirArrow(const xray::Event &e)
{
    if (e.tier_from == xray::noTier || e.tier_to == xray::noTier)
        return "";
    return xray::tierRank(e.tier_to) < xray::tierRank(e.tier_from)
               ? " (promotion)"
               : " (demotion)";
}

void
printEvent(const xray::Event &e)
{
    std::printf("  t=%-12" PRIu64 " %-14s", e.tick,
                xray::eventKindName(e.kind));
    if (e.tier_from != xray::noTier || e.tier_to != xray::noTier) {
        std::printf(" %s->%s%s", xray::tierName(e.tier_from),
                    xray::tierName(e.tier_to), dirArrow(e));
    }
    switch (e.kind) {
      case xray::EventKind::Promote:
      case xray::EventKind::Demote:
        std::printf(" heat=%u threshold=%u rank=%u lag_ns=%" PRIu64
                    " bounces=%" PRIu64,
                    e.heat, e.threshold, e.rank, e.a0, e.a1);
        break;
      case xray::EventKind::HotCross:
      case xray::EventKind::Cooled:
        std::printf(" heat=%u threshold=%u", e.heat, e.threshold);
        break;
      case xray::EventKind::DrfReclaim:
        std::printf(" victim_vm=%u frames=%" PRIu64
                    " req_share_ppm=%" PRIu64 " victim_share_ppm=%" PRIu64,
                    e.rank, e.a0, e.a1 >> 32,
                    e.a1 & 0xffffffff);
        break;
      case xray::EventKind::Throttle:
        std::printf(" candidates=%" PRIu64 " budget=%" PRIu64, e.a0,
                    e.a1);
        break;
      case xray::EventKind::BalloonOut:
        std::printf(" surrendered=%" PRIu64 " requested=%" PRIu64,
                    e.a0, e.a1);
        break;
      default:
        if (e.heat != 0 || e.rank != 0)
            std::printf(" heat=%u rank=%u", e.heat, e.rank);
        break;
    }
    std::printf("\n");
}

void
printSummary(const xray::XrayReport &report)
{
    std::printf("placement x-ray (ring_depth=%u, pingpong_window=%"
                PRIu64 " ns)\n",
                report.ring_depth, report.pingpong_window_ns);
    for (const auto &vm : report.vms) {
        const std::uint64_t hot = vm.hotTotal();
        const std::uint64_t mis = vm.hotMisplaced();
        std::printf("\nvm %u (hot threshold %u)\n", vm.vm,
                    vm.threshold);
        for (std::size_t t = 0; t < xray::numTiers; ++t) {
            const auto &tier = vm.tiers[t];
            if (tier.pages == 0 && tier.heat_mass == 0)
                continue;
            std::printf("  %-6s pages=%-8" PRIu64 " hot=%-8" PRIu64
                        " heat_mass=%-10" PRIu64 " hot_heat_mass=%"
                        PRIu64 "\n",
                        xray::tierName(static_cast<std::uint8_t>(t)),
                        tier.pages, tier.hot_pages, tier.heat_mass,
                        tier.hot_heat_mass);
        }
        std::printf("  quality: hot=%" PRIu64 " misplaced=%" PRIu64
                    " (%.1f%%) cold_in_fast=%" PRIu64
                    " misplaced_heat_mass=%" PRIu64 "\n",
                    hot, mis,
                    hot > 0 ? 100.0 * static_cast<double>(mis) /
                                  static_cast<double>(hot)
                            : 0.0,
                    vm.coldInFast(), vm.misplacedHeatMass());
        std::printf("  decisions:");
        bool any = false;
        for (std::size_t k = 0; k < xray::numEventKinds; ++k) {
            if (vm.kind_counts[k] == 0)
                continue;
            std::printf(" %s=%" PRIu64,
                        xray::eventKindName(
                            static_cast<xray::EventKind>(k)),
                        vm.kind_counts[k]);
            any = true;
        }
        std::printf("%s\n", any ? "" : " (none)");
        std::printf("  ping-pong: events=%" PRIu64 " pages=%" PRIu64
                    "\n",
                    vm.pingpong_events, vm.pingpong_pages);
        const auto print_lag =
            [](const char *label,
               const std::vector<std::pair<std::uint64_t,
                                           std::uint64_t>> &lag) {
                if (lag.empty())
                    return;
                std::printf("  %s:", label);
                for (const auto &[lo, n] : lag)
                    std::printf(" [>=%" PRIu64 "ns]=%" PRIu64, lo, n);
                std::printf("\n");
            };
        print_lag("promote lag", vm.promote_lag);
        print_lag("demote lag", vm.demote_lag);
        std::printf("  rings: %" PRIu64 " page(s) recorded, %zu "
                    "exported; %" PRIu64 " vm-level event(s)\n",
                    vm.pages_ringed, vm.pages.size(),
                    vm.vm_events_total);
    }
}

/** VM filter: all VMs when `vm_id` is unset. */
bool
vmSelected(const xray::XrayVm &vm, std::optional<unsigned> vm_id)
{
    return !vm_id || vm.vm == *vm_id;
}

int
explainPage(const xray::XrayReport &report, std::uint64_t gpfn,
            std::optional<unsigned> vm_id,
            std::optional<std::uint64_t> at)
{
    for (const auto &vm : report.vms) {
        if (!vmSelected(vm, vm_id))
            continue;
        for (const auto &page : vm.pages) {
            if (page.gpfn != gpfn)
                continue;
            std::printf("vm %u gpfn %" PRIu64 ": %zu of %" PRIu64
                        " event(s) retained\n",
                        vm.vm, gpfn, page.events.size(),
                        page.total_events);
            for (const auto &e : page.events)
                printEvent(e);
            if (at) {
                const xray::Event *last = nullptr;
                std::uint8_t tier = xray::noTier;
                for (const auto &e : page.events) {
                    if (e.tick > *at)
                        break;
                    last = &e;
                    if (e.tier_to != xray::noTier)
                        tier = e.tier_to;
                    if (e.kind == xray::EventKind::Free)
                        tier = xray::noTier;
                }
                if (!last) {
                    std::printf("at t=%" PRIu64 ": no retained record "
                                "yet\n",
                                *at);
                } else {
                    std::printf(
                        "at t=%" PRIu64 ": in %s — last decision at "
                        "t=%" PRIu64 " was %s (heat=%u threshold=%u "
                        "rank=%u)\n",
                        *at, xray::tierName(tier), last->tick,
                        xray::eventKindName(last->kind), last->heat,
                        last->threshold, last->rank);
                }
            }
            return 0;
        }
    }
    std::fprintf(stderr,
                 "gpfn %" PRIu64 " has no exported ring%s (sampled "
                 "builds ring 1 in 64 pages; use -DHOS_XRAY=full)\n",
                 gpfn, vm_id ? "" : " in any vm");
    return 1;
}

int
listMoves(const xray::XrayReport &report, xray::EventKind kind,
          std::optional<unsigned> vm_id)
{
    std::uint64_t n = 0;
    for (const auto &vm : report.vms) {
        if (!vmSelected(vm, vm_id))
            continue;
        for (const auto &page : vm.pages) {
            for (const auto &e : page.events) {
                if (e.kind != kind)
                    continue;
                std::printf("vm %u gpfn %-10" PRIu64, vm.vm,
                            page.gpfn);
                printEvent(e);
                ++n;
            }
        }
    }
    if (n == 0) {
        std::fprintf(stderr, "no recorded %s events\n",
                     xray::eventKindName(kind));
        return 1;
    }
    return 0;
}

int
listTop(const xray::XrayReport &report, std::uint64_t top,
        std::optional<unsigned> vm_id)
{
    std::uint64_t n = 0;
    for (const auto &vm : report.vms) {
        if (!vmSelected(vm, vm_id))
            continue;
        std::printf("vm %u top misplaced (hot pages outside fast):\n",
                    vm.vm);
        std::uint64_t shown = 0;
        for (const auto &p : vm.top_misplaced) {
            if (shown++ >= top)
                break;
            std::printf("  gpfn %-10" PRIu64 " heat=%-5u tier=%s\n",
                        p.gpfn, p.heat, xray::tierName(p.tier));
            ++n;
        }
        if (shown == 0)
            std::printf("  (none — every hot page is fast-backed)\n");
    }
    return n > 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::optional<std::uint64_t> page;
    std::optional<unsigned> vm_id;
    std::optional<std::uint64_t> at;
    std::optional<std::uint64_t> top;
    bool promoted = false;
    bool demoted = false;
    std::size_t run_idx = 0;

    // Flags and the results file may come in any order.
    const char *file = nullptr;
    for (int arg = 1; arg < argc; ++arg) {
        const std::string a = argv[arg];
        if (std::strncmp(argv[arg], "--", 2) != 0) {
            if (file) {
                usage();
                return 2;
            }
            file = argv[arg];
        } else if (a.rfind("--page=", 0) == 0) {
            page = std::strtoull(a.c_str() + 7, nullptr, 0);
        } else if (a.rfind("--vm=", 0) == 0) {
            vm_id = static_cast<unsigned>(
                std::strtoul(a.c_str() + 5, nullptr, 0));
        } else if (a.rfind("--at=", 0) == 0) {
            at = std::strtoull(a.c_str() + 5, nullptr, 0);
        } else if (a.rfind("--top=", 0) == 0) {
            top = std::strtoull(a.c_str() + 6, nullptr, 0);
        } else if (a == "--top") {
            top = 10;
        } else if (a == "--promoted") {
            promoted = true;
        } else if (a == "--demoted") {
            demoted = true;
        } else if (a.rfind("--run=", 0) == 0) {
            run_idx = std::strtoull(a.c_str() + 6, nullptr, 0);
        } else {
            std::fprintf(stderr,
                         "unknown option '%s' (did you mean '%s'?)\n",
                         argv[arg], nearestFlag(a).c_str());
            usage();
            return 2;
        }
    }
    if (!file) {
        usage();
        return 2;
    }

    xray::XrayReport report;
    std::string error;
    if (!loadXray(file, run_idx, report, error)) {
        std::fprintf(stderr, "%s: %s\n", file, error.c_str());
        return 2;
    }
    if (report.empty()) {
        std::fprintf(stderr,
                     "xray section is empty (HOS_XRAY=off build?)\n");
        return 1;
    }

    if (page)
        return explainPage(report, *page, vm_id, at);
    int rc = 0;
    bool acted = false;
    if (promoted) {
        rc |= listMoves(report, xray::EventKind::Promote, vm_id);
        acted = true;
    }
    if (demoted) {
        rc |= listMoves(report, xray::EventKind::Demote, vm_id);
        acted = true;
    }
    if (top) {
        rc |= listTop(report, *top, vm_id);
        acted = true;
    }
    if (!acted)
        printSummary(report);
    return rc;
}
