/**
 * @file
 * Ablation: NVM read/write asymmetry (paper §4.3).
 *
 * Replaces the throttled-DRAM SlowMem with the Table 1 PCM profile
 * (150 ns loads, 450 ns stores, 2 GB/s) and compares against a
 * symmetric tier of the same load latency. Store-heavy applications
 * pay for the asymmetry; read-mostly ones barely notice — the
 * motivation for the write-aware placement the paper sketches as
 * future work.
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("ablation: NVM store-latency asymmetry");

    sim::Table t("SlowMem-only runtime: symmetric vs PCM-asymmetric "
                 "(same load latency)");
    t.header({"app", "symmetric(s)", "NVM/PCM(s)", "penalty"});

    for (workload::AppId app : workload::allApps) {
        // Symmetric: 150 ns loads and stores, 2 GB/s.
        auto sym_spec = bench::paperSpec(core::Approach::SlowMemOnly);
        sym_spec.use_custom_slow = true;
        sym_spec.custom_slow = mem::nvmSpec(0);
        sym_spec.custom_slow.store_latency_ns =
            sym_spec.custom_slow.load_latency_ns;
        const auto sym = core::runApp(app, sym_spec);

        // Asymmetric: the Table 1 PCM profile (stores 3x loads).
        auto nvm_spec = bench::paperSpec(core::Approach::SlowMemOnly);
        nvm_spec.use_custom_slow = true;
        nvm_spec.custom_slow = mem::nvmSpec(0);
        const auto nvm = core::runApp(app, nvm_spec);

        t.row({workload::appName(app), sim::Table::num(sym.seconds()),
               sim::Table::num(nvm.seconds()),
               sim::Table::pct((nvm.seconds() / sym.seconds() - 1.0) *
                                   100.0,
                               1)});
    }
    t.print();

    std::puts("Expected shape: write-heavy apps (Metis, the graph\n"
              "engines' update phases) pay the largest penalty;\n"
              "read-mostly serving (Redis GETs, Nginx) the least.");
    return 0;
}
