/**
 * @file
 * Ablation: NVM read/write asymmetry (paper §4.3).
 *
 * Replaces the throttled-DRAM SlowMem with the Table 1 PCM profile
 * (150 ns loads, 450 ns stores, 2 GB/s) and compares against a
 * symmetric tier of the same load latency. Store-heavy applications
 * pay for the asymmetry; read-mostly ones barely notice — the
 * motivation for the write-aware placement the paper sketches as
 * future work.
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("ablation: NVM store-latency asymmetry");

    sim::Table t("SlowMem-only runtime: symmetric vs PCM-asymmetric "
                 "(same load latency)");
    t.header({"app", "symmetric(s)", "NVM/PCM(s)", "penalty"});

    for (workload::AppId app : workload::allApps) {
        // Symmetric: 150 ns loads and stores, 2 GB/s.
        auto sym_tier = mem::nvmSpec(0);
        sym_tier.store_latency_ns = sym_tier.load_latency_ns;
        const auto sym = core::run(
            bench::paperScenario(core::Approach::SlowMemOnly)
                .withApp(app)
                .withSlowSpec(sym_tier));

        // Asymmetric: the Table 1 PCM profile (stores 3x loads).
        const auto nvm = core::run(
            bench::paperScenario(core::Approach::SlowMemOnly)
                .withApp(app)
                .withSlowSpec(mem::nvmSpec(0)));

        t.row({workload::appName(app), sim::Table::num(sym.seconds()),
               sim::Table::num(nvm.seconds()),
               sim::Table::pct((nvm.seconds() / sym.seconds() - 1.0) *
                                   100.0,
                               1)});
    }
    t.print();

    std::puts("Expected shape: write-heavy apps (Metis, the graph\n"
              "engines' update phases) pay the largest penalty;\n"
              "read-mostly serving (Redis GETs, Nginx) the least.");
    return 0;
}
