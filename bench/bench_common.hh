/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Every bench regenerates one table or figure from the paper; these
 * helpers keep the sweeps and scaling uniform. HOS_BENCH_SCALE (env)
 * scales workload sizes globally (default 0.3: large enough for the
 * shapes, small enough for CI-speed runs; use 1.0 for full fidelity).
 */

#ifndef HOS_BENCH_BENCH_COMMON_HH
#define HOS_BENCH_BENCH_COMMON_HH

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/report.hh"
#include "sim/table.hh"

namespace hos::bench {

/** Workload scale for benches (HOS_BENCH_SCALE env, default 0.3). */
double benchScale();

/** A Table 3 throttle point L:x,B:y. */
struct ThrottlePoint
{
    double lat;
    double bw;
    std::string label() const;
};

/** The Figure 1/2 sweep points. */
std::vector<ThrottlePoint> figure1Sweep();

/**
 * Scenario preset: Section 5.1 methodology (L:5,B:9, 16 MiB LLC)
 * with workloads and capacities scaled together by benchScale().
 */
core::Scenario paperScenario(core::Approach a);

/** Scale a capacity with the bench scale (min 1 MiB). */
std::uint64_t scaledBytes(std::uint64_t bytes);

/** Print the standard bench banner. */
void banner(const char *what);

} // namespace hos::bench

#endif // HOS_BENCH_BENCH_COMMON_HH
