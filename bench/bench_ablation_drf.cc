/**
 * @file
 * Ablation: DRF weights (Section 4.2).
 *
 * The paper weights FastMem 2x in the dominant-share computation so
 * the scarce resource is not drowned out by SlowMem page counts.
 * This ablation compares weighted vs unweighted dominant shares in a
 * synthetic two-VM contention loop and reports how the FastMem pool
 * ends up divided.
 */

#include "bench_common.hh"

#include "vmm/ballooning.hh"
#include "vmm/drf.hh"

using namespace hos;

namespace {

struct Outcome
{
    std::uint64_t fast_a, slow_a;
    std::uint64_t fast_b, slow_b;
};

Outcome
contend(double fast_weight)
{
    mem::MachineMemory machine;
    machine.addNode(mem::MemType::FastMem, mem::dramSpec(mem::gib));
    machine.addNode(mem::MemType::SlowMem,
                    mem::defaultSlowMemSpec(4 * mem::gib));
    vmm::Vmm vmm(machine);
    vmm.setFairness(std::make_unique<vmm::DrfFairness>());

    auto make_guest = [&](const char *name, std::uint64_t seed) {
        guestos::GuestConfig cfg;
        cfg.name = name;
        cfg.seed = seed;
        cfg.nodes = {{mem::MemType::FastMem, mem::gib, 64 * mem::mib},
                     {mem::MemType::SlowMem, 4 * mem::gib,
                      256 * mem::mib}};
        return std::make_unique<guestos::GuestKernel>(cfg);
    };

    auto ga = make_guest("vm-a", 1);
    auto gb = make_guest("vm-b", 2);

    vmm::VmConfig ca;
    ca.reservations = {{mem::MemType::FastMem,
                        mem::bytesToPages(64 * mem::mib),
                        mem::bytesToPages(mem::gib), fast_weight},
                       {mem::MemType::SlowMem,
                        mem::bytesToPages(256 * mem::mib),
                        mem::bytesToPages(4 * mem::gib), 1.0}};
    vmm::VmConfig cb = ca;
    // VM-b is SlowMem-hungry: it grabs SlowMem first, then contends
    // for FastMem.
    vmm.registerVm(*ga, ca);
    vmm.registerVm(*gb, cb);

    gb->balloon().requestPages(mem::MemType::SlowMem,
                               mem::bytesToPages(3 * mem::gib));

    // Alternate FastMem demands until the pool is exhausted.
    for (int round = 0; round < 64; ++round) {
        ga->balloon().requestPages(mem::MemType::FastMem, 4096);
        gb->balloon().requestPages(mem::MemType::FastMem, 4096);
    }

    auto &va = vmm.vm(0);
    auto &vb = vmm.vm(1);
    return Outcome{va.framesOf(mem::MemType::FastMem),
                   va.framesOf(mem::MemType::SlowMem),
                   vb.framesOf(mem::MemType::FastMem),
                   vb.framesOf(mem::MemType::SlowMem)};
}

} // namespace

int
main()
{
    bench::banner("ablation: DRF FastMem weight");

    sim::Table t("Final division of a contended 1 GiB FastMem pool");
    t.header({"FastMem weight", "VM-a fast(MB)", "VM-b fast(MB)",
              "VM-b slow(MB)"});
    for (double w : {1.0, 2.0, 4.0}) {
        const auto o = contend(w);
        t.row({sim::Table::num(w, 1),
               sim::Table::num(o.fast_a * mem::pageSize / mem::mib),
               sim::Table::num(o.fast_b * mem::pageSize / mem::mib),
               sim::Table::num(o.slow_b * mem::pageSize / mem::mib)});
    }
    t.print();

    std::puts("Expected shape: with weight 1, the SlowMem-hungry VM-b\n"
              "already has a high dominant share yet still splits\n"
              "FastMem; higher FastMem weights shift the split toward\n"
              "VM-a (holding FastMem becomes 'expensive').");
    return 0;
}
