/**
 * @file
 * Table 6: per-page migration cost (page copy + page-table walk) as
 * a function of the migration batch size — the calibration anchors
 * of the shared migration cost model, printed straight from it.
 */

#include "bench_common.hh"

#include "mem/migration_cost.hh"

using namespace hos;

int
main()
{
    bench::banner("Table 6: per-page migration cost vs batch size");

    sim::Table t("Table 6: batched migration costs");
    t.header({"batch size", "T_page_move (us)", "T_page_walk (us)",
              "batch total (ms)"});

    for (std::uint64_t batch : {std::uint64_t(8) * 1024,
                                std::uint64_t(64) * 1024,
                                std::uint64_t(128) * 1024}) {
        t.row({sim::Table::num(batch / 1024) + "K",
               sim::Table::num(mem::MigrationCostModel::pageMoveUs(batch),
                               2),
               sim::Table::num(mem::MigrationCostModel::pageWalkUs(batch),
                               2),
               sim::Table::num(
                   sim::toMilliseconds(
                       mem::MigrationCostModel::batchCost(batch)),
                   1)});
    }
    t.print();

    std::puts("Paper anchors: move 25.5/15.7/11.12 us, walk\n"
              "43.21/26.32/10.25 us at 8K/64K/128K — matched exactly\n"
              "(the model interpolates between these points).");
    return 0;
}
