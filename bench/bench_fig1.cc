/**
 * @file
 * Figure 1 (+ Tables 1 and 3): bandwidth and latency sensitivity.
 *
 * Every application runs entirely in SlowMem while the throttle point
 * sweeps L:2,B:2 .. L:5,B:12, plus the Remote-NUMA comparison point;
 * bars are the slowdown relative to FastMem-only (L:1,B:1).
 * Testbed model: 16 MiB LLC (Intel X5560-class).
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("Figure 1: slowdown vs SlowMem throttle point");

    // Table 1 context: the tier technologies this sweep abstracts.
    sim::Table t1("Table 1: heterogeneous memory characteristics");
    t1.header({"property", "Stacked-3D", "DRAM", "NVM(PCM)"});
    t1.row({"load latency (ns)", "30-50", "60", "150"});
    t1.row({"store latency (ns)", "30-50", "60", "300-600"});
    t1.row({"BW (GB/s)", "120-200", "15-25", "2"});
    t1.print();

    // Table 3: the throttle configurations (model's loaded latency).
    sim::Table t3("Table 3: throttle configurations");
    t3.header({"config", "latency(ns)", "BW(GB/s)"});
    for (auto pt : {bench::ThrottlePoint{1, 1}, bench::ThrottlePoint{2, 2},
                    bench::ThrottlePoint{5, 5},
                    bench::ThrottlePoint{5, 12}}) {
        mem::MemDevice dev(mem::throttledSpec(pt.lat, pt.bw, mem::gib));
        t3.row({pt.label(),
                sim::Table::num(dev.loadedLatencyNs(
                    pt.bw >= 5 ? 0.85 : 0.55), 0),
                sim::Table::num(dev.spec().bandwidth_gbps, 2)});
    }
    t3.print();

    sim::Table fig("Figure 1: slowdown factor relative to FastMem-only");
    std::vector<std::string> header = {"app"};
    for (auto pt : bench::figure1Sweep())
        header.push_back(pt.label());
    header.push_back("RemoteNUMA");
    fig.header(header);

    for (workload::AppId app : workload::allApps) {
        // FastMem-only baseline.
        const auto base = core::run(
            bench::paperScenario(core::Approach::FastMemOnly)
                .withApp(app));

        std::vector<std::string> row = {workload::appName(app)};
        for (auto pt : bench::figure1Sweep()) {
            const auto r = core::run(
                bench::paperScenario(core::Approach::SlowMemOnly)
                    .withApp(app)
                    .withThrottle(pt.lat, pt.bw));
            row.push_back(
                sim::Table::num(core::slowdownFactor(base, r)));
        }
        // Remote NUMA: FastMem across a QPI hop (~1.6x latency,
        // ~1.5x less bandwidth) — the paper's Observation 2 contrast.
        auto remote = mem::throttledSpec(1.6, 1.5, 0);
        remote.name = "RemoteNUMA";
        const auto r = core::run(
            bench::paperScenario(core::Approach::SlowMemOnly)
                .withApp(app)
                .withSlowSpec(remote));
        row.push_back(sim::Table::num(core::slowdownFactor(base, r)));
        fig.row(row);
    }
    fig.print();
    return 0;
}
