/**
 * @file
 * Ablation: the multi-dimensional per-CPU free lists (Section 3.1).
 *
 * Measures allocation fast-path throughput with the per-CPU caches
 * versus direct buddy allocation, for interleaved FastMem/SlowMem
 * allocation streams — the case the redesigned (per-memory-type)
 * lists exist for.
 */

#include <chrono>

#include "bench_common.hh"

using namespace hos;

namespace {

double
allocRate(bool use_percpu, std::uint64_t rounds)
{
    guestos::GuestConfig cfg;
    cfg.name = "ablation";
    cfg.nodes = {{mem::MemType::FastMem, mem::gib, mem::gib},
                 {mem::MemType::SlowMem, 2 * mem::gib, 2 * mem::gib}};
    cfg.alloc = guestos::heapIoSlabOdConfig();
    guestos::GuestKernel kernel(cfg);

    // Stand-alone guest: donate the pages directly (no VMM).
    for (unsigned nid = 0; nid < kernel.numNodes(); ++nid) {
        auto &node = kernel.node(nid);
        auto gpfns = kernel.takeUnpopulatedGpfns(nid, node.spanPages());
        for (guestos::Gpfn pfn : gpfns) {
            kernel.pageMeta(pfn).setPopulated(true);
            node.zoneOf(pfn).buddy().addFreeRange(pfn, 1);
        }
    }

    std::vector<guestos::Gpfn> held;
    held.reserve(1024);
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t r = 0; r < rounds; ++r) {
        const unsigned cpu = r % kernel.config().cpus;
        const unsigned node = r & 1;
        for (int i = 0; i < 512; ++i) {
            guestos::Gpfn pfn;
            if (use_percpu) {
                pfn = kernel.percpu().alloc(cpu, kernel.node(node));
            } else {
                pfn = kernel.node(node).allocBlock(0);
            }
            if (pfn != guestos::invalidGpfn)
                held.push_back(pfn);
        }
        for (guestos::Gpfn pfn : held) {
            if (use_percpu) {
                kernel.percpu().free(cpu, kernel.nodeOf(pfn), pfn);
            } else {
                kernel.nodeOf(pfn).freeBlock(pfn, 0);
            }
        }
        held.clear();
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double sec =
        std::chrono::duration<double>(t1 - t0).count();
    return static_cast<double>(rounds * 512 * 2) / sec / 1e6;
}

} // namespace

int
main()
{
    bench::banner("ablation: per-CPU multi-type free lists");

    const std::uint64_t rounds = 2000;
    sim::Table t("Allocation fast-path throughput");
    t.header({"configuration", "Mops/s (alloc+free)"});
    t.row({"buddy only", sim::Table::num(allocRate(false, rounds), 1)});
    t.row({"per-CPU multi-type lists",
           sim::Table::num(allocRate(true, rounds), 1)});
    t.print();

    std::puts("Expected shape: the per-CPU lists beat direct buddy\n"
              "calls (no order-list manipulation or coalescing on the\n"
              "hot path).");
    return 0;
}
