/**
 * @file
 * Figure 12 (table): gains exclusively from page migrations,
 * relative to Heap-IO-Slab-OD (pure placement, no migration), with
 * total migrated pages in millions — isolating whether each
 * system's migrations helped or hurt.
 */

#include "bench_common.hh"

#include "policy/coordinated.hh"
#include "policy/vmm_exclusive.hh"

using namespace hos;

namespace {

struct MigrationRun
{
    workload::Workload::Result result;
    double migrated_m = 0.0;
};

MigrationRun
runWithMigrationCount(workload::AppId app, core::Approach a,
                      const core::Scenario &scenario)
{
    auto sys = std::make_unique<core::HeteroSystem>(scenario.host());
    auto policy = core::makePolicy(a);
    auto *raw = policy.get();
    auto &slot = sys->addVm(std::move(policy), scenario.sizing());

    MigrationRun out;
    out.result =
        sys->runOne(slot, workload::makeApp(app, scenario.scale));

    std::uint64_t migrated = 0;
    if (auto *ve = dynamic_cast<policy::VmmExclusivePolicy *>(raw))
        migrated = ve->pagesMigrated();
    else if (auto *co = dynamic_cast<policy::CoordinatedPolicy *>(raw))
        migrated = co->pagesMigrated() +
                   slot.kernel->heteroLru().stats().demoted_anon +
                   slot.kernel->heteroLru().stats().demoted_cache;
    else
        migrated = slot.kernel->heteroLru().stats().demoted_anon +
                   slot.kernel->heteroLru().stats().demoted_cache +
                   slot.kernel->heteroLru().stats().dropped_cache;
    out.migrated_m = static_cast<double>(migrated) / 1e6;
    return out;
}

} // namespace

int
main()
{
    bench::banner("Figure 12: gains exclusively from migrations");

    const workload::AppId apps[] = {workload::AppId::GraphChi,
                                    workload::AppId::Redis,
                                    workload::AppId::LevelDb};
    const core::Approach approaches[] = {core::Approach::VmmExclusive,
                                         core::Approach::HeteroLru,
                                         core::Approach::Coordinated};

    sim::Table fig("Figure 12: % gain vs Heap-IO-Slab-OD "
                   "(migrated pages in M)");
    fig.header({"app", "VMM-exclusive", "HeteroOS-LRU",
                "HeteroOS-coordinated"});

    for (workload::AppId app : apps) {
        auto base_spec =
            bench::paperScenario(core::Approach::HeapIoSlabOd)
                .withApp(app);
        base_spec.fast_bytes = base_spec.slow_bytes / 4;
        const auto base = core::run(base_spec);

        std::vector<std::string> row = {workload::appName(app)};
        for (core::Approach a : approaches) {
            auto s = bench::paperScenario(a);
            s.fast_bytes = s.slow_bytes / 4;
            const auto run = runWithMigrationCount(app, a, s);
            row.push_back(
                sim::Table::num(core::gainPercent(base, run.result), 1) +
                " (" + sim::Table::num(run.migrated_m, 2) + "M)");
        }
        fig.row(row);
    }
    fig.print();

    std::puts("Expected shape (paper): VMM-exclusive *negative*\n"
              "(-30/-20/-10%), HeteroOS-LRU mildly positive, the\n"
              "coordinated approach best (+40/+19/+20%), with far\n"
              "fewer pages moved than VMM-exclusive.");
    return 0;
}
