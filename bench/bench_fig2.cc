/**
 * @file
 * Figure 2: the same throttle sweep as Figure 1, on the Intel NVM
 * emulator platform — an IvyBridge-class host with a 3x larger LLC
 * (48 MiB vs 16 MiB). The paper's point: the bigger cache absorbs
 * more of each application's working set, so every slowdown factor
 * drops relative to Figure 1.
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("Figure 2: Intel NVM emulator (48 MiB LLC) sweep");

    sim::Table fig(
        "Figure 2: slowdown factor relative to FastMem-only, 48 MiB LLC");
    std::vector<std::string> header = {"app"};
    for (auto pt : bench::figure1Sweep())
        header.push_back(pt.label());
    fig.header(header);

    for (workload::AppId app : workload::allApps) {
        const auto base = core::run(
            bench::paperScenario(core::Approach::FastMemOnly)
                .withApp(app)
                .withLlcBytes(48 * mem::mib));

        std::vector<std::string> row = {workload::appName(app)};
        for (auto pt : bench::figure1Sweep()) {
            const auto r = core::run(
                bench::paperScenario(core::Approach::SlowMemOnly)
                    .withApp(app)
                    .withLlcBytes(48 * mem::mib)
                    .withThrottle(pt.lat, pt.bw));
            row.push_back(
                sim::Table::num(core::slowdownFactor(base, r)));
        }
        fig.row(row);
    }
    fig.print();

    std::puts("Expected shape: every factor below its Figure 1\n"
              "counterpart (the 3x larger LLC absorbs more traffic).");
    return 0;
}
