/**
 * @file
 * Figure 6: memlat pointer-chase latency vs working-set size.
 *
 * FastMem capped at 0.5 GiB, SlowMem at 3.5 GiB; the WSS sweeps
 * 0.1-2 GiB under five approaches. Shows why on-demand allocation
 * wins below the FastMem capacity and why migration becomes
 * essential above it.
 */

#include "bench_common.hh"

#include "workload/memlat.hh"

using namespace hos;

namespace {

workload::WorkloadFactory
memlatFactory(std::uint64_t wss)
{
    return [wss](workload::VmEnv env) {
        workload::MemlatBenchmark::Params p;
        p.wss_bytes = wss;
        return std::make_unique<workload::MemlatBenchmark>(
            std::move(env), p);
    };
}

core::Scenario
memlatScenario(core::Approach a)
{
    return bench::paperScenario(a).withCapacity(
        bench::scaledBytes(512 * mem::mib),
        bench::scaledBytes(3584ull * mem::mib));
}

} // namespace

int
main()
{
    bench::banner("Figure 6: memlat latency vs working-set size");

    const double wss_gb[] = {0.1, 0.25, 0.5, 1.0, 1.5, 2.0};
    const core::Approach approaches[] = {
        core::Approach::Random, core::Approach::HeapOd,
        core::Approach::FastMemOnly, core::Approach::VmmExclusive,
        core::Approach::SlowMemOnly};

    sim::Table fig("Figure 6: average access latency (cycles)");
    std::vector<std::string> header = {"WSS(GB)"};
    for (auto a : approaches)
        header.push_back(core::approachName(a));
    fig.header(header);

    for (double gb : wss_gb) {
        const auto wss = bench::scaledBytes(static_cast<std::uint64_t>(
            gb * static_cast<double>(mem::gib)));
        std::vector<std::string> row = {sim::Table::num(gb, 2)};
        for (auto a : approaches) {
            const auto r =
                core::run(memlatScenario(a), memlatFactory(wss));
            row.push_back(sim::Table::num(r.metric, 0));
        }
        fig.row(row);
    }
    fig.print();

    std::puts("Expected shape: Heap-OD tracks FastMem-only while WSS\n"
              "fits in 0.5 GiB then degrades; VMM-exclusive pays\n"
              "migration lag everywhere; SlowMem-only is the ceiling.");
    return 0;
}
