/**
 * @file
 * Table 4: memory intensity of the applications in MPKI
 * (LLC misses per kilo-instruction), measured on the 16 MiB-LLC
 * testbed configuration with everything resident in FastMem.
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("Table 4: application MPKI");

    sim::Table t("Table 4: memory intensity (MPKI)");
    t.header({"app", "MPKI (measured)", "MPKI (paper)"});

    const double paper_mpki[] = {27.4, 24.8, 14.9, 4.7, 11.1, 2.1};

    std::size_t i = 0;
    for (workload::AppId app : workload::allApps) {
        const auto r = core::run(
            bench::paperScenario(core::Approach::FastMemOnly)
                .withApp(app));
        t.row({workload::appName(app), sim::Table::num(r.mpki, 1),
               sim::Table::num(paper_mpki[i++], 1)});
    }
    t.print();

    std::puts("Expected shape: Graphchi > X-Stream > Metis > Redis >\n"
              "LevelDB > Nginx, spanning roughly an order of magnitude.");
    return 0;
}
