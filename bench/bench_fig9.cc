/**
 * @file
 * Figure 9: impact of guest-OS heterogeneity awareness.
 *
 * Five applications x FastMem:SlowMem capacity ratios {1/2, 1/4, 1/8}
 * x four approaches (Heap-OD, Heap-IO-Slab-OD, HeteroOS-LRU,
 * NUMA-preferred), reported as % gain over SlowMem-only, with
 * FastMem-only as the ceiling.
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("Figure 9: guest-OS placement gains vs SlowMem-only");

    const double ratios[] = {0.5, 0.25, 0.125};
    const char *ratio_labels[] = {"1/2", "1/4", "1/8"};
    const core::Approach approaches[] = {
        core::Approach::HeapOd, core::Approach::HeapIoSlabOd,
        core::Approach::HeteroLru, core::Approach::NumaPreferred};

    sim::Table fig("Figure 9: % gain relative to SlowMem-only");
    fig.header({"app", "ratio", "Heap-OD", "Heap-IO-Slab-OD",
                "HeteroOS-LRU", "NUMA-preferred", "FastMem-only"});

    for (workload::AppId app : workload::placementApps) {
        const auto slow = core::run(
            bench::paperScenario(core::Approach::SlowMemOnly)
                .withApp(app));
        const auto fast = core::run(
            bench::paperScenario(core::Approach::FastMemOnly)
                .withApp(app));

        for (std::size_t ri = 0; ri < 3; ++ri) {
            std::vector<std::string> row = {workload::appName(app),
                                            ratio_labels[ri]};
            for (core::Approach a : approaches) {
                auto s = bench::paperScenario(a).withApp(app);
                s.fast_bytes = static_cast<std::uint64_t>(
                    static_cast<double>(s.slow_bytes) * ratios[ri]);
                const auto r = core::run(s);
                row.push_back(
                    sim::Table::pct(core::gainPercent(slow, r), 0));
            }
            row.push_back(
                sim::Table::pct(core::gainPercent(slow, fast), 0));
            fig.row(row);
        }
    }
    fig.print();

    std::puts("Expected shape: Heap-OD strong for Graphchi/Metis;\n"
              "Heap-IO-Slab-OD unlocks X-Stream/LevelDB/Redis;\n"
              "HeteroOS-LRU adds on top; NUMA-preferred competitive\n"
              "only at 1/2 and collapsing at 1/8.");
    return 0;
}
