/**
 * @file
 * Ablation: the Equation 1 adaptive tracking interval.
 *
 * HeteroOS-coordinated with the LLC-miss-adaptive interval versus
 * fixed 50/100/500 ms intervals, on GraphChi at the 1/4 capacity
 * ratio: the adaptive policy should match the best fixed choice
 * without hand tuning.
 */

#include "bench_common.hh"

#include "policy/coordinated.hh"

using namespace hos;

namespace {

workload::Workload::Result
runCoordinated(bool adaptive, sim::Duration fixed_interval)
{
    auto scenario = bench::paperScenario(core::Approach::Coordinated);
    scenario.fast_bytes = scenario.slow_bytes / 4;

    core::HeteroSystem sys(scenario.host());
    policy::CoordinatedConfig cfg;
    cfg.adaptive_interval = adaptive;
    cfg.hotness.interval = fixed_interval;
    auto &slot = sys.addVm(
        std::make_unique<policy::CoordinatedPolicy>(cfg),
        scenario.sizing());
    return sys.runOne(slot,
                      workload::makeApp(workload::AppId::GraphChi,
                                        scenario.scale));
}

} // namespace

int
main()
{
    bench::banner("ablation: Equation 1 adaptive scan interval");

    sim::Table t("Graphchi, HeteroOS-coordinated, 1/4 capacity ratio");
    t.header({"interval policy", "runtime(s)"});

    for (auto ms : {50, 100, 500}) {
        const auto r =
            runCoordinated(false, sim::milliseconds(ms));
        t.row({"fixed " + std::to_string(ms) + "ms",
               sim::Table::num(r.seconds())});
    }
    const auto r = runCoordinated(true, sim::milliseconds(100));
    t.row({"adaptive (Eq. 1)", sim::Table::num(r.seconds())});
    t.print();

    std::puts("Expected shape: adaptive within a few percent of the\n"
              "best fixed interval.");
    return 0;
}
