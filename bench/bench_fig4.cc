/**
 * @file
 * Figure 4: application memory page distribution.
 *
 * Cumulative page allocations by page type (heap/anon, I/O page
 * cache + mapped, network buffers, slab, page table), plus total
 * pages in millions — the evidence behind Observation 3 that OS
 * subsystems, not just the heap, dominate many footprints.
 */

#include "bench_common.hh"

using namespace hos;

int
main()
{
    bench::banner("Figure 4: memory page distribution by type");

    sim::Table fig("Figure 4: page-type shares of all allocations");
    fig.header({"app", "heap/anon", "IO-cache", "NW-buff", "slab",
                "pagetable", "total pages (M)"});

    const workload::AppId apps[] = {
        workload::AppId::Redis, workload::AppId::XStream,
        workload::AppId::GraphChi, workload::AppId::Metis,
        workload::AppId::LevelDb};

    for (workload::AppId app : apps) {
        const auto scenario =
            bench::paperScenario(core::Approach::HeapIoSlabOd)
                .withApp(app);
        auto sys = core::systemFor(scenario);
        auto &slot = sys->slot(0);
        sys->runOne(slot, workload::makeApp(app, scenario.scale));

        auto &k = *slot.kernel;
        using PT = guestos::PageType;
        const std::uint64_t heap = k.allocCount(PT::Anon);
        const std::uint64_t io = k.allocCount(PT::PageCache) +
                                 k.allocCount(PT::BufferCache);
        const std::uint64_t nw = k.allocCount(PT::NetBuf);
        const std::uint64_t slab = k.allocCount(PT::Slab);
        const std::uint64_t pt = k.allocCount(PT::PageTable);
        const double total =
            static_cast<double>(heap + io + nw + slab + pt);

        auto pct = [&](std::uint64_t v) {
            return sim::Table::pct(100.0 * static_cast<double>(v) /
                                   std::max(1.0, total));
        };
        fig.row({workload::appName(app), pct(heap), pct(io), pct(nw),
                 pct(slab), pct(pt),
                 sim::Table::num(total / 1e6, 2)});
    }
    fig.print();

    std::puts("Expected shape: Metis almost all heap; X-Stream and\n"
              "LevelDB I/O-cache heavy; Redis with a large NW-buff\n"
              "share; page tables everywhere negligible. (Totals\n"
              "scale with HOS_BENCH_SCALE; the paper's run-size\n"
              "totals were 0.94/3.34/5.04/1.75/0.53 M pages.)");
    return 0;
}
